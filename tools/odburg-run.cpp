//===- tools/odburg-run.cpp - Batch compile-pipeline driver ---------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch compilation driver: pick a target grammar, a labeling
/// backend, and one or more synthetic workload profiles, generate a corpus
/// of IR functions, and compile it end-to-end (label + reduce + emit)
/// through a CompileSession with a configurable number of worker threads.
/// Reports end-to-end throughput, the per-phase time split, cache
/// behavior (shared transition cache and per-worker L1 micro-cache), and
/// a bit-identity check of the concatenated assembly across thread counts
/// and across backends on the same grammar.
///
/// This is the paper's three-way comparison as one CLI: --backend picks
/// iburg-style DP labeling, burg-style offline tables, the on-demand
/// automaton (default), or the hybrid (offline tables on the grammar's
/// static partition, on-demand for the dyn-cost remainder), and
/// --backend=all runs all four on the target's fixed-cost grammar — the
/// only grammar pure offline tables can encode — so the rows are
/// directly comparable.
///
///   odburg-run --target=x86 --profile=gcc-like --functions=64 --threads=1,4
///   odburg-run --backend=all --target=x86
///
//===----------------------------------------------------------------------===//

#include "ir/Node.h"
#include "pipeline/CompileSession.h"
#include "support/Hashing.h"
#include "support/StringUtil.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

struct DriverOptions {
  std::vector<std::string> Targets = {"x86"};
  std::vector<std::string> Profiles = {"gzip-like"};
  std::vector<BackendKind> Backends = {BackendKind::OnDemand};
  unsigned Functions = 32;
  unsigned NodesPerFunction = 2000;
  std::vector<unsigned> Threads = {1, 0}; // 0 = hardware concurrency.
  unsigned Repeat = 3;
  bool UseCache = true;
  bool UseL1 = true;
  bool UseDense = true;
  /// Attach the self-tuning TierController (ondemand backend).
  bool Adaptive = false;
  unsigned L1Ways = 0; // 0 = auto (2-way on dyn-cost grammars).
  bool ForceFixed = false;
  unsigned MaxStates = 0; // 0 = automaton default.
  /// Write the first reference row's concatenated assembly here (the
  /// batch half of the odburg-serve byte-identity check).
  std::string EmitAsmPath;
  /// Write the first generated corpus here in the serve wire format
  /// (s-expressions, one per statement, blank line between functions).
  std::string DumpCorpusPath;
};

int usage(const char *Argv0, int Exit) {
  std::fprintf(
      Exit == 0 ? stdout : stderr,
      "usage: %s [options]\n"
      "\n"
      "Generates a corpus of synthetic IR functions and compiles it\n"
      "end-to-end (label + reduce + emit) through one shared compile\n"
      "session, concurrently, on a selectable labeling backend.\n"
      "\n"
      "  --target=NAME|all     target grammar (default x86)\n"
      "  --profile=NAME|all    synthetic workload profile (default gzip-like)\n"
      "  --backend=LIST|all    labeling backend(s): dp, offline, ondemand,\n"
      "                        hybrid (default ondemand). offline always\n"
      "                        runs on the target's fixed-cost grammar;\n"
      "                        'all' implies --fixed so the rows are\n"
      "                        comparable. hybrid serves the static\n"
      "                        partition from offline tables and the\n"
      "                        dyn-cost remainder from the automaton\n"
      "  --fixed               use the fixed-cost (stripped) grammar for\n"
      "                        every backend\n"
      "  --functions=N         functions per (target, profile) corpus (default 32)\n"
      "  --nodes=N             approximate IR nodes per function (default 2000)\n"
      "  --threads=N[,N...]    worker counts to run; 0 = hardware concurrency\n"
      "                        (default 1,0)\n"
      "  --repeat=N            warm passes per row, best-of (default 3)\n"
      "  --no-cache            disable the transition cache and the L1\n"
      "                        micro-cache (ablation; ondemand backend)\n"
      "  --no-l1               keep the shared cache but disable the\n"
      "                        per-worker L1 micro-cache (ablation)\n"
      "  --no-dense            disable the adaptive dense-row tier; every\n"
      "                        L1 miss probes the hashed cache (ablation)\n"
      "  --adaptive            attach the self-tuning TierController: tier\n"
      "                        configuration (L1 on/off/ways, dense on/off,\n"
      "                        promotion threshold) is retuned at runtime\n"
      "                        from measured hit rates (ondemand backend;\n"
      "                        see the tier column)\n"
      "  --l1-ways=N           L1 associativity: 1 direct-mapped, 2 two-way\n"
      "                        (default: auto — 2-way on dyn-cost grammars)\n"
      "  --max-states=N        override the automaton state-growth bound\n"
      "  --emit-asm=PATH       write the first reference row's concatenated\n"
      "                        assembly to PATH (for diffing against the\n"
      "                        odburg-serve stream)\n"
      "  --dump-corpus=PATH    write the first generated corpus to PATH in\n"
      "                        the odburg-serve wire format (s-expressions,\n"
      "                        blank line between functions)\n"
      "  --list                list targets and profiles, then exit\n"
      "  --help                this text\n",
      Argv0);
  return Exit;
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Opts, int &ExitCode) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto Value = [&Arg](std::string_view Prefix) {
      return Arg.substr(Prefix.size());
    };
    if (Arg == "--help" || Arg == "-h") {
      ExitCode = usage(Argv[0], 0);
      return false;
    }
    if (Arg == "--list") {
      std::printf("targets:\n");
      for (const std::string &T : targetNames())
        std::printf("  %s\n", T.c_str());
      std::printf("profiles:\n");
      for (const Profile &P : specProfiles())
        std::printf("  %-14s %6u nodes\n", P.Name.c_str(), P.TargetNodes);
      std::printf("backends:\n  dp\n  offline\n  ondemand\n  hybrid\n");
      ExitCode = 0;
      return false;
    }
    if (Arg == "--no-cache") {
      Opts.UseCache = false;
    } else if (Arg == "--no-l1") {
      Opts.UseL1 = false;
    } else if (Arg == "--no-dense") {
      Opts.UseDense = false;
    } else if (Arg == "--adaptive") {
      Opts.Adaptive = true;
    } else if (startsWith(Arg, "--l1-ways=")) {
      if (!parseUnsigned(Value("--l1-ways="), Opts.L1Ways) ||
          Opts.L1Ways < 1 || Opts.L1Ways > 2) {
        std::fprintf(stderr, "invalid --l1-ways value (1 or 2)\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (Arg == "--fixed") {
      Opts.ForceFixed = true;
    } else if (startsWith(Arg, "--backend=")) {
      std::string_view V = Value("--backend=");
      Opts.Backends.clear();
      if (V == "all") {
        Opts.Backends = {BackendKind::DP, BackendKind::Offline,
                         BackendKind::OnDemand, BackendKind::Hybrid};
        // Offline cannot encode dynamic costs; leveling every backend onto
        // the fixed grammar keeps the cross-backend rows comparable.
        Opts.ForceFixed = true;
      } else {
        for (std::string_view Piece : split(V, ',')) {
          Expected<BackendKind> K = parseBackendKind(trim(Piece));
          if (!K) {
            std::fprintf(stderr, "error: %s\n", K.message().c_str());
            ExitCode = usage(Argv[0], 2);
            return false;
          }
          Opts.Backends.push_back(*K);
        }
        if (Opts.Backends.empty()) {
          std::fprintf(stderr, "--backend needs at least one name\n");
          ExitCode = usage(Argv[0], 2);
          return false;
        }
      }
    } else if (startsWith(Arg, "--target=")) {
      std::string_view V = Value("--target=");
      Opts.Targets.clear();
      if (V == "all") {
        Opts.Targets = targetNames();
      } else {
        Opts.Targets.emplace_back(V);
      }
    } else if (startsWith(Arg, "--profile=")) {
      std::string_view V = Value("--profile=");
      Opts.Profiles.clear();
      if (V == "all") {
        for (const Profile &P : specProfiles())
          Opts.Profiles.push_back(P.Name);
      } else {
        Opts.Profiles.emplace_back(V);
      }
    } else if (startsWith(Arg, "--functions=")) {
      if (!parseUnsigned(Value("--functions="), Opts.Functions) ||
          Opts.Functions == 0) {
        std::fprintf(stderr, "invalid --functions value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--nodes=")) {
      if (!parseUnsigned(Value("--nodes="), Opts.NodesPerFunction) ||
          Opts.NodesPerFunction == 0) {
        std::fprintf(stderr, "invalid --nodes value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--repeat=")) {
      if (!parseUnsigned(Value("--repeat="), Opts.Repeat) ||
          Opts.Repeat == 0) {
        std::fprintf(stderr, "invalid --repeat value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--emit-asm=")) {
      Opts.EmitAsmPath = std::string(Value("--emit-asm="));
    } else if (startsWith(Arg, "--dump-corpus=")) {
      Opts.DumpCorpusPath = std::string(Value("--dump-corpus="));
    } else if (startsWith(Arg, "--max-states=")) {
      if (!parseUnsigned(Value("--max-states="), Opts.MaxStates) ||
          Opts.MaxStates == 0) {
        std::fprintf(stderr, "invalid --max-states value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--threads=")) {
      Opts.Threads.clear();
      for (std::string_view Piece : split(Value("--threads="), ',')) {
        unsigned N = 0;
        if (!parseUnsigned(trim(Piece), N)) {
          std::fprintf(stderr, "invalid --threads value\n");
          ExitCode = usage(Argv[0], 2);
          return false;
        }
        Opts.Threads.push_back(N);
      }
      if (Opts.Threads.empty()) {
        std::fprintf(stderr, "--threads needs at least one count\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      ExitCode = usage(Argv[0], 2);
      return false;
    }
  }
  return true;
}

unsigned resolveThreads(unsigned N) {
  if (N != 0)
    return N;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

/// Writes \p Text to \p Path; complains and returns false on failure.
bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::trunc);
  if (Out)
    Out << Text;
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  return true;
}

/// Renders the warm-path tier configuration as one compact cell:
/// "l1x2+dn@64+l2" is a 2-way L1 over the dense tier (promotion threshold
/// 64) over the hashed L2; dropped tiers drop out of the chain. Adaptive
/// configurations carry an "adp:" prefix and the controller's progress as
/// ":wW:rR" (observation windows evaluated, reconfigurations applied).
std::string tierCell(BackendKind Backend, const TierDecisions &D) {
  if (Backend != BackendKind::OnDemand && Backend != BackendKind::Hybrid)
    return "-";
  std::string S = D.Adaptive ? "adp:" : "";
  if (D.Config.L1On)
    S += formatf("l1x%u+", D.Config.L1Ways);
  if (D.Config.DenseOn)
    S += formatf("dn@%u+", D.PromoteThreshold);
  S += "l2";
  if (D.Adaptive)
    S += formatf(":w%llu:r%llu",
                 static_cast<unsigned long long>(D.Windows),
                 static_cast<unsigned long long>(D.Reconfigs));
  return S;
}

/// Renders \p Corpus in the odburg-serve wire format: each statement root
/// as one s-expression line, one blank line between functions.
std::string corpusToWire(const std::vector<ir::IRFunction> &Corpus,
                         const Grammar &G) {
  std::string Out;
  for (const ir::IRFunction &F : Corpus) {
    for (const ir::Node *Root : F.roots()) {
      Out += ir::toSExpr(Root, G);
      Out += '\n';
    }
    Out += '\n';
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts;
  int ExitCode = 0;
  if (!parseArgs(Argc, Argv, Opts, ExitCode))
    return ExitCode;

  TablePrinter Table(formatf(
      "End-to-end compile pipeline: %u functions x ~%u nodes per corpus%s "
      "(repeat=%u, hw=%u)",
      Opts.Functions, Opts.NodesPerFunction,
      Opts.UseCache ? "" : ", transition cache OFF", Opts.Repeat,
      resolveThreads(0)));
  Table.setHeader({"target", "profile", "backend", "gram", "thr", "nodes",
                   "cold ms", "warm ms", "fn/s", "speedup", "lbl/red/emt %",
                   "off%", "l1%", "dn%", "hit%", "tier", "states", "asm KB",
                   "asm"});

  bool AllIdentical = true;
  bool AnyFailed = false;
  bool CorpusDumped = false;
  bool AsmEmitted = false;
  for (const std::string &TargetName : Opts.Targets) {
    Expected<std::unique_ptr<Target>> TOrErr = makeTarget(TargetName);
    if (!TOrErr) {
      std::fprintf(stderr, "error: %s\n", TOrErr.message().c_str());
      return 1;
    }
    Target &T = **TOrErr;

    for (const std::string &ProfileName : Opts.Profiles) {
      const Profile *P = findProfile(ProfileName);
      if (!P) {
        std::fprintf(stderr, "error: unknown profile '%s' (try --list)\n",
                     ProfileName.c_str());
        return 1;
      }

      // Reference assembly/cost per grammar variant: the first row of a
      // variant is the reference; every later row on the same variant —
      // other thread counts AND other backends — must reproduce it bit
      // for bit.
      struct Reference {
        std::uint64_t AsmHash = 0;
        Cost TotalCost = Cost::zero();
      };
      std::map<bool, Reference> RefByFixed;
      std::map<bool, std::vector<ir::IRFunction>> CorpusByFixed;

      for (BackendKind Backend : Opts.Backends) {
        bool Fixed = Opts.ForceFixed || Backend == BackendKind::Offline;
        const Grammar &G = Fixed ? T.Fixed : T.G;
        const DynCostTable *Dyn = Fixed ? nullptr : &T.Dyn;

        if (!CorpusByFixed.count(Fixed)) {
          Expected<std::vector<ir::IRFunction>> CorpusOrErr = generateBatch(
              *P, G, Opts.Functions, Opts.NodesPerFunction);
          if (!CorpusOrErr) {
            std::fprintf(stderr, "error: %s\n", CorpusOrErr.message().c_str());
            return 1;
          }
          CorpusByFixed.emplace(Fixed, std::move(*CorpusOrErr));
          if (!Opts.DumpCorpusPath.empty() && !CorpusDumped) {
            if (!writeFile(Opts.DumpCorpusPath,
                           corpusToWire(CorpusByFixed[Fixed], G)))
              return 1;
            CorpusDumped = true;
          }
        }
        std::vector<ir::IRFunction> &Corpus = CorpusByFixed[Fixed];
        std::vector<ir::IRFunction *> Ptrs;
        std::uint64_t TotalNodes = 0;
        for (ir::IRFunction &F : Corpus) {
          Ptrs.push_back(&F);
          TotalNodes += F.size();
        }

        CompileSession::Options SOpts;
        SOpts.Backend = Backend;
        SOpts.BackendOpts.Automaton.UseTransitionCache = Opts.UseCache;
        SOpts.BackendOpts.Automaton.DenseRows = Opts.UseCache && Opts.UseDense;
        SOpts.BackendOpts.UseL1Cache = Opts.UseCache && Opts.UseL1;
        SOpts.BackendOpts.L1Ways = Opts.L1Ways;
        SOpts.BackendOpts.Adaptive = Opts.Adaptive;
        if (Opts.MaxStates) {
          SOpts.BackendOpts.Automaton.MaxStates = Opts.MaxStates;
          SOpts.BackendOpts.OfflineMaxStates = Opts.MaxStates;
        }

        double BaselineWarmNs = 0;
        for (unsigned ThreadSpec : Opts.Threads) {
          unsigned Threads = resolveThreads(ThreadSpec);
          Expected<std::unique_ptr<CompileSession>> SessionOrErr =
              CompileSession::create(G, Dyn, SOpts);
          if (!SessionOrErr) {
            std::fprintf(stderr, "error: %s backend: %s\n",
                         backendName(Backend), SessionOrErr.message().c_str());
            return 1;
          }
          CompileSession &Session = **SessionOrErr;

          SessionStats Cold;
          std::vector<CompileResult> Results =
              Session.compileFunctions(Ptrs, Threads, &Cold);
          std::uint64_t ColdNs = Cold.WallNs;

          SessionStats Warm;
          std::uint64_t WarmNs = ~0ULL;
          for (unsigned R = 0; R < Opts.Repeat; ++R) {
            SessionStats Pass;
            Results = Session.compileFunctions(Ptrs, Threads, &Pass);
            if (Pass.WallNs < WarmNs) {
              WarmNs = Pass.WallNs;
              Warm = Pass;
            }
          }
          if (BaselineWarmNs == 0)
            BaselineWarmNs = static_cast<double>(WarmNs);

          for (const CompileResult &R : Results)
            if (!R.ok()) {
              std::fprintf(stderr, "error: function failed to compile: %s\n",
                           R.Diagnostic.c_str());
              AnyFailed = true;
            }

          std::string Asm = CompileSession::concatAsm(Results);
          std::uint64_t AsmHash = hashString(Asm);
          Cost TotalCost = CompileSession::totalCost(Results);
          std::string Check;
          if (!RefByFixed.count(Fixed)) {
            RefByFixed[Fixed] = {AsmHash, TotalCost};
            Check = "reference";
            // The corpus and assembly dumps pair up: both come from the
            // first (target, profile, grammar-variant) configuration, so
            // piping the dumped corpus through odburg-serve must
            // reproduce this assembly byte for byte.
            if (!Opts.EmitAsmPath.empty() && !AsmEmitted) {
              if (!writeFile(Opts.EmitAsmPath, Asm))
                return 1;
              AsmEmitted = true;
            }
          } else {
            const Reference &Ref = RefByFixed[Fixed];
            bool Identical =
                AsmHash == Ref.AsmHash && TotalCost == Ref.TotalCost;
            AllIdentical = AllIdentical && Identical;
            Check = Identical ? "identical" : "DIVERGED";
          }

          double HitPct =
              Warm.Label.CacheProbes
                  ? 100.0 * static_cast<double>(Warm.Label.CacheHits) /
                        static_cast<double>(Warm.Label.CacheProbes)
                  : 0.0;
          Table.addRow(
              {TargetName, ProfileName, backendName(Backend),
               Fixed ? "fixed" : "full", std::to_string(Threads),
               formatThousands(TotalNodes),
               formatFixed(static_cast<double>(ColdNs) / 1e6, 1),
               formatFixed(static_cast<double>(WarmNs) / 1e6, 1),
               formatFixed(static_cast<double>(Warm.Functions) * 1e9 /
                               static_cast<double>(WarmNs),
                           1),
               formatFixed(BaselineWarmNs / static_cast<double>(WarmNs), 2),
               phaseSplit(Warm),
               formatFixed(100.0 * Warm.offlineHitRate(), 1),
               formatFixed(100.0 * Warm.l1HitRate(), 1),
               formatFixed(100.0 * Warm.denseHitRate(), 1),
               formatFixed(HitPct, 1), tierCell(Backend, Warm.Tier),
               formatThousands(Session.backend().numStates()),
               formatThousands(Asm.size() / 1024), Check});
        }
      }
      Table.addSeparator();
    }
  }
  Table.print();
  std::printf(
      "\nwarm pass = recompiling the corpus end-to-end against the already-\n"
      "warm backend (the JIT steady state); fn/s and the label/reduce/emit\n"
      "split are from the best warm pass; speedup is relative to the first\n"
      "thread count of the same backend. The tier columns split the warm\n"
      "path (ondemand/hybrid backends): off%% is the share of nodes the\n"
      "hybrid resolved by direct offline-table indexing on the static\n"
      "partition (before any cache tier), l1%% is the per-worker L1 micro-cache,\n"
      "dn%% the shared dense-row tier serving L1 misses by direct array\n"
      "indexing, hit%% the hashed seqlock cache catching the rest. tier is\n"
      "the configuration in effect at batch end (l1x<ways>+dn@<promote\n"
      "threshold>+l2; dropped tiers drop out); with --adaptive it carries\n"
      "an adp: prefix plus :w<windows evaluated>:r<reconfigs applied>.\n"
      "The asm column checks the concatenated assembly and total cost\n"
      "against the first row on the same grammar variant — across thread\n"
      "counts and backends alike, it must never read DIVERGED.\n");
  if (AnyFailed)
    return 1;
  if (!AllIdentical) {
    std::fprintf(stderr,
                 "FAILURE: a run diverged from the reference assembly\n");
    return 1;
  }
  return 0;
}
