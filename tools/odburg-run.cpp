//===- tools/odburg-run.cpp - Batch compile-pipeline driver ---------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch compilation driver: pick a target grammar and one or more
/// synthetic workload profiles, generate a corpus of IR functions, and
/// compile it end-to-end (label + reduce + emit) through a CompileSession
/// with a configurable number of worker threads. Reports end-to-end
/// throughput, the per-phase time split, cache behavior, and a
/// bit-identity check of the concatenated assembly across thread counts.
///
/// This is the JIT-server scenario of the paper writ large: many functions
/// arrive, one automaton amortizes state construction across all of them,
/// and whole compilations fan out across cores because each worker runs
/// all three phases for the functions it pulls.
///
///   odburg-run --target=x86 --profile=gcc-like --functions=64 --threads=1,4
///
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"
#include "support/Hashing.h"
#include "support/StringUtil.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

struct DriverOptions {
  std::vector<std::string> Targets = {"x86"};
  std::vector<std::string> Profiles = {"gzip-like"};
  unsigned Functions = 32;
  unsigned NodesPerFunction = 2000;
  std::vector<unsigned> Threads = {1, 0}; // 0 = hardware concurrency.
  unsigned Repeat = 3;
  bool UseCache = true;
  unsigned MaxStates = 0; // 0 = automaton default.
};

int usage(const char *Argv0, int Exit) {
  std::fprintf(
      Exit == 0 ? stdout : stderr,
      "usage: %s [options]\n"
      "\n"
      "Generates a corpus of synthetic IR functions and compiles it\n"
      "end-to-end (label + reduce + emit) through one shared compile\n"
      "session, concurrently.\n"
      "\n"
      "  --target=NAME|all     target grammar (default x86)\n"
      "  --profile=NAME|all    synthetic workload profile (default gzip-like)\n"
      "  --functions=N         functions per (target, profile) corpus (default 32)\n"
      "  --nodes=N             approximate IR nodes per function (default 2000)\n"
      "  --threads=N[,N...]    worker counts to run; 0 = hardware concurrency\n"
      "                        (default 1,0)\n"
      "  --repeat=N            warm passes per row, best-of (default 3)\n"
      "  --no-cache            disable the transition cache (ablation)\n"
      "  --max-states=N        override the automaton state-growth bound\n"
      "  --list                list targets and profiles, then exit\n"
      "  --help                this text\n",
      Argv0);
  return Exit;
}

bool parseUnsigned(std::string_view S, unsigned &Out) {
  if (S.empty())
    return false;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
    if (V > 0xFFFFFFFFul)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Opts, int &ExitCode) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto Value = [&Arg](std::string_view Prefix) {
      return Arg.substr(Prefix.size());
    };
    if (Arg == "--help" || Arg == "-h") {
      ExitCode = usage(Argv[0], 0);
      return false;
    }
    if (Arg == "--list") {
      std::printf("targets:\n");
      for (const std::string &T : targetNames())
        std::printf("  %s\n", T.c_str());
      std::printf("profiles:\n");
      for (const Profile &P : specProfiles())
        std::printf("  %-14s %6u nodes\n", P.Name.c_str(), P.TargetNodes);
      ExitCode = 0;
      return false;
    }
    if (Arg == "--no-cache") {
      Opts.UseCache = false;
    } else if (startsWith(Arg, "--target=")) {
      std::string_view V = Value("--target=");
      Opts.Targets.clear();
      if (V == "all") {
        Opts.Targets = targetNames();
      } else {
        Opts.Targets.emplace_back(V);
      }
    } else if (startsWith(Arg, "--profile=")) {
      std::string_view V = Value("--profile=");
      Opts.Profiles.clear();
      if (V == "all") {
        for (const Profile &P : specProfiles())
          Opts.Profiles.push_back(P.Name);
      } else {
        Opts.Profiles.emplace_back(V);
      }
    } else if (startsWith(Arg, "--functions=")) {
      if (!parseUnsigned(Value("--functions="), Opts.Functions) ||
          Opts.Functions == 0) {
        std::fprintf(stderr, "invalid --functions value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--nodes=")) {
      if (!parseUnsigned(Value("--nodes="), Opts.NodesPerFunction) ||
          Opts.NodesPerFunction == 0) {
        std::fprintf(stderr, "invalid --nodes value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--repeat=")) {
      if (!parseUnsigned(Value("--repeat="), Opts.Repeat) ||
          Opts.Repeat == 0) {
        std::fprintf(stderr, "invalid --repeat value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--max-states=")) {
      if (!parseUnsigned(Value("--max-states="), Opts.MaxStates) ||
          Opts.MaxStates == 0) {
        std::fprintf(stderr, "invalid --max-states value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--threads=")) {
      Opts.Threads.clear();
      for (std::string_view Piece : split(Value("--threads="), ',')) {
        unsigned N = 0;
        if (!parseUnsigned(trim(Piece), N)) {
          std::fprintf(stderr, "invalid --threads value\n");
          ExitCode = usage(Argv[0], 2);
          return false;
        }
        Opts.Threads.push_back(N);
      }
      if (Opts.Threads.empty()) {
        std::fprintf(stderr, "--threads needs at least one count\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      ExitCode = usage(Argv[0], 2);
      return false;
    }
  }
  return true;
}

unsigned resolveThreads(unsigned N) {
  if (N != 0)
    return N;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts;
  int ExitCode = 0;
  if (!parseArgs(Argc, Argv, Opts, ExitCode))
    return ExitCode;

  CompileSession::Options SOpts;
  SOpts.Automaton.UseTransitionCache = Opts.UseCache;
  if (Opts.MaxStates)
    SOpts.Automaton.MaxStates = Opts.MaxStates;

  TablePrinter Table(formatf(
      "End-to-end compile pipeline: %u functions x ~%u nodes per corpus%s "
      "(repeat=%u, hw=%u)",
      Opts.Functions, Opts.NodesPerFunction,
      Opts.UseCache ? "" : ", transition cache OFF", Opts.Repeat,
      resolveThreads(0)));
  Table.setHeader({"target", "profile", "thr", "nodes", "cold ms", "warm ms",
                   "fn/s", "speedup", "lbl/red/emt %", "hit%", "states",
                   "asm KB", "asm"});

  bool AllIdentical = true;
  bool AnyFailed = false;
  for (const std::string &TargetName : Opts.Targets) {
    Expected<std::unique_ptr<Target>> TOrErr = makeTarget(TargetName);
    if (!TOrErr) {
      std::fprintf(stderr, "error: %s\n", TOrErr.message().c_str());
      return 1;
    }
    Target &T = **TOrErr;

    for (const std::string &ProfileName : Opts.Profiles) {
      const Profile *P = findProfile(ProfileName);
      if (!P) {
        std::fprintf(stderr, "error: unknown profile '%s' (try --list)\n",
                     ProfileName.c_str());
        return 1;
      }
      Expected<std::vector<ir::IRFunction>> CorpusOrErr =
          generateBatch(*P, T.G, Opts.Functions, Opts.NodesPerFunction);
      if (!CorpusOrErr) {
        std::fprintf(stderr, "error: %s\n", CorpusOrErr.message().c_str());
        return 1;
      }
      std::vector<ir::IRFunction> &Corpus = *CorpusOrErr;
      std::vector<ir::IRFunction *> Ptrs;
      std::uint64_t TotalNodes = 0;
      for (ir::IRFunction &F : Corpus) {
        Ptrs.push_back(&F);
        TotalNodes += F.size();
      }

      // Reference assembly/cost from the first thread count; every other
      // row must reproduce them bit for bit.
      bool HaveRef = false;
      std::uint64_t RefAsmHash = 0;
      Cost RefCost = Cost::zero();
      double BaselineWarmNs = 0;
      for (unsigned ThreadSpec : Opts.Threads) {
        unsigned Threads = resolveThreads(ThreadSpec);
        CompileSession Session(T.G, &T.Dyn, SOpts);

        SessionStats Cold;
        std::vector<CompileResult> Results =
            Session.compileFunctions(Ptrs, Threads, &Cold);
        std::uint64_t ColdNs = Cold.WallNs;

        SessionStats Warm;
        std::uint64_t WarmNs = ~0ULL;
        for (unsigned R = 0; R < Opts.Repeat; ++R) {
          SessionStats Pass;
          Results = Session.compileFunctions(Ptrs, Threads, &Pass);
          if (Pass.WallNs < WarmNs) {
            WarmNs = Pass.WallNs;
            Warm = Pass;
          }
        }
        if (BaselineWarmNs == 0)
          BaselineWarmNs = static_cast<double>(WarmNs);

        for (const CompileResult &R : Results)
          if (!R.ok()) {
            std::fprintf(stderr, "error: function failed to compile: %s\n",
                         R.Diagnostic.c_str());
            AnyFailed = true;
          }

        std::string Asm = CompileSession::concatAsm(Results);
        std::uint64_t AsmHash = hashString(Asm);
        Cost TotalCost = CompileSession::totalCost(Results);
        std::string Check;
        if (!HaveRef) {
          HaveRef = true;
          RefAsmHash = AsmHash;
          RefCost = TotalCost;
          Check = "reference";
        } else {
          bool Identical = AsmHash == RefAsmHash && TotalCost == RefCost;
          AllIdentical = AllIdentical && Identical;
          Check = Identical ? "identical" : "DIVERGED";
        }

        double HitPct =
            Warm.Label.CacheProbes
                ? 100.0 * static_cast<double>(Warm.Label.CacheHits) /
                      static_cast<double>(Warm.Label.CacheProbes)
                : 0.0;
        Table.addRow(
            {TargetName, ProfileName, std::to_string(Threads),
             formatThousands(TotalNodes),
             formatFixed(static_cast<double>(ColdNs) / 1e6, 1),
             formatFixed(static_cast<double>(WarmNs) / 1e6, 1),
             formatFixed(static_cast<double>(Warm.Functions) * 1e9 /
                             static_cast<double>(WarmNs),
                         1),
             formatFixed(BaselineWarmNs / static_cast<double>(WarmNs), 2),
             phaseSplit(Warm), formatFixed(HitPct, 1),
             formatThousands(Session.automaton().numStates()),
             formatThousands(Asm.size() / 1024), Check});
      }
      Table.addSeparator();
    }
  }
  Table.print();
  std::printf(
      "\nwarm pass = recompiling the corpus end-to-end against the already-\n"
      "populated automaton (the JIT steady state); fn/s and the\n"
      "label/reduce/emit split are from the best warm pass; speedup is\n"
      "relative to the first thread count listed. The asm column checks the\n"
      "concatenated assembly and total cost against the first thread\n"
      "count's — it must never read DIVERGED.\n");
  if (AnyFailed)
    return 1;
  if (!AllIdentical) {
    std::fprintf(stderr,
                 "FAILURE: a thread count diverged from the reference "
                 "assembly\n");
    return 1;
  }
  return 0;
}
