//===- tools/odburg-run.cpp - Batch-selection driver ----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-selection driver: pick a target grammar and one or more
/// synthetic workload profiles, generate a corpus of IR functions, label it
/// against one shared on-demand automaton with a configurable number of
/// worker threads, and report the work counters and throughput.
///
/// This is the JIT-server scenario of the paper writ large: many functions
/// arrive, one automaton amortizes state construction across all of them,
/// and labeling fans out across cores because the state table and
/// transition cache are sharded.
///
///   odburg-run --target=x86 --profile=gcc-like --functions=64 --threads=1,4
///
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "support/StringUtil.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

struct DriverOptions {
  std::vector<std::string> Targets = {"x86"};
  std::vector<std::string> Profiles = {"gzip-like"};
  unsigned Functions = 32;
  unsigned NodesPerFunction = 2000;
  std::vector<unsigned> Threads = {1, 0}; // 0 = hardware concurrency.
  unsigned Repeat = 3;
  bool UseCache = true;
  unsigned MaxStates = 0; // 0 = automaton default.
};

int usage(const char *Argv0, int Exit) {
  std::fprintf(
      Exit == 0 ? stdout : stderr,
      "usage: %s [options]\n"
      "\n"
      "Generates a corpus of synthetic IR functions and labels it against\n"
      "one shared on-demand automaton, concurrently.\n"
      "\n"
      "  --target=NAME|all     target grammar (default x86)\n"
      "  --profile=NAME|all    synthetic workload profile (default gzip-like)\n"
      "  --functions=N         functions per (target, profile) corpus (default 32)\n"
      "  --nodes=N             approximate IR nodes per function (default 2000)\n"
      "  --threads=N[,N...]    worker counts to run; 0 = hardware concurrency\n"
      "                        (default 1,0)\n"
      "  --repeat=N            warm passes per row, best-of (default 3)\n"
      "  --no-cache            disable the transition cache (ablation)\n"
      "  --max-states=N        override the automaton state-growth bound\n"
      "  --list                list targets and profiles, then exit\n"
      "  --help                this text\n",
      Argv0);
  return Exit;
}

bool parseUnsigned(std::string_view S, unsigned &Out) {
  if (S.empty())
    return false;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
    if (V > 0xFFFFFFFFul)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Opts, int &ExitCode) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto Value = [&Arg](std::string_view Prefix) {
      return Arg.substr(Prefix.size());
    };
    if (Arg == "--help" || Arg == "-h") {
      ExitCode = usage(Argv[0], 0);
      return false;
    }
    if (Arg == "--list") {
      std::printf("targets:\n");
      for (const std::string &T : targetNames())
        std::printf("  %s\n", T.c_str());
      std::printf("profiles:\n");
      for (const Profile &P : specProfiles())
        std::printf("  %-14s %6u nodes\n", P.Name.c_str(), P.TargetNodes);
      ExitCode = 0;
      return false;
    }
    if (Arg == "--no-cache") {
      Opts.UseCache = false;
    } else if (startsWith(Arg, "--target=")) {
      std::string_view V = Value("--target=");
      Opts.Targets.clear();
      if (V == "all") {
        Opts.Targets = targetNames();
      } else {
        Opts.Targets.emplace_back(V);
      }
    } else if (startsWith(Arg, "--profile=")) {
      std::string_view V = Value("--profile=");
      Opts.Profiles.clear();
      if (V == "all") {
        for (const Profile &P : specProfiles())
          Opts.Profiles.push_back(P.Name);
      } else {
        Opts.Profiles.emplace_back(V);
      }
    } else if (startsWith(Arg, "--functions=")) {
      if (!parseUnsigned(Value("--functions="), Opts.Functions) ||
          Opts.Functions == 0) {
        std::fprintf(stderr, "invalid --functions value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--nodes=")) {
      if (!parseUnsigned(Value("--nodes="), Opts.NodesPerFunction) ||
          Opts.NodesPerFunction == 0) {
        std::fprintf(stderr, "invalid --nodes value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--repeat=")) {
      if (!parseUnsigned(Value("--repeat="), Opts.Repeat) ||
          Opts.Repeat == 0) {
        std::fprintf(stderr, "invalid --repeat value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--max-states=")) {
      if (!parseUnsigned(Value("--max-states="), Opts.MaxStates) ||
          Opts.MaxStates == 0) {
        std::fprintf(stderr, "invalid --max-states value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--threads=")) {
      Opts.Threads.clear();
      for (std::string_view Piece : split(Value("--threads="), ',')) {
        unsigned N = 0;
        if (!parseUnsigned(trim(Piece), N)) {
          std::fprintf(stderr, "invalid --threads value\n");
          ExitCode = usage(Argv[0], 2);
          return false;
        }
        Opts.Threads.push_back(N);
      }
      if (Opts.Threads.empty()) {
        std::fprintf(stderr, "--threads needs at least one count\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      ExitCode = usage(Argv[0], 2);
      return false;
    }
  }
  return true;
}

unsigned resolveThreads(unsigned N) {
  if (N != 0)
    return N;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts;
  int ExitCode = 0;
  if (!parseArgs(Argc, Argv, Opts, ExitCode))
    return ExitCode;

  OnDemandAutomaton::Options AOpts;
  AOpts.UseTransitionCache = Opts.UseCache;
  if (Opts.MaxStates)
    AOpts.MaxStates = Opts.MaxStates;

  TablePrinter Table(formatf(
      "Batch selection: %u functions x ~%u nodes per corpus%s (repeat=%u, "
      "hw=%u)",
      Opts.Functions, Opts.NodesPerFunction,
      Opts.UseCache ? "" : ", transition cache OFF", Opts.Repeat,
      resolveThreads(0)));
  Table.setHeader({"target", "profile", "thr", "nodes", "cold ms", "warm ms",
                   "Mnodes/s", "speedup", "states", "trans", "hit%",
                   "mem KB"});

  for (const std::string &TargetName : Opts.Targets) {
    Expected<std::unique_ptr<Target>> TOrErr = makeTarget(TargetName);
    if (!TOrErr) {
      std::fprintf(stderr, "error: %s\n", TOrErr.message().c_str());
      return 1;
    }
    Target &T = **TOrErr;

    for (const std::string &ProfileName : Opts.Profiles) {
      const Profile *P = findProfile(ProfileName);
      if (!P) {
        std::fprintf(stderr, "error: unknown profile '%s' (try --list)\n",
                     ProfileName.c_str());
        return 1;
      }
      Expected<std::vector<ir::IRFunction>> CorpusOrErr =
          generateBatch(*P, T.G, Opts.Functions, Opts.NodesPerFunction);
      if (!CorpusOrErr) {
        std::fprintf(stderr, "error: %s\n", CorpusOrErr.message().c_str());
        return 1;
      }
      std::vector<ir::IRFunction> &Corpus = *CorpusOrErr;
      std::vector<ir::IRFunction *> Ptrs;
      std::uint64_t TotalNodes = 0;
      for (ir::IRFunction &F : Corpus) {
        Ptrs.push_back(&F);
        TotalNodes += F.size();
      }

      double BaselineWarmNs = 0;
      for (unsigned ThreadSpec : Opts.Threads) {
        unsigned Threads = resolveThreads(ThreadSpec);
        OnDemandAutomaton A(T.G, &T.Dyn, AOpts);

        Stopwatch ColdTimer;
        A.labelFunctions(Ptrs, Threads);
        std::uint64_t ColdNs = ColdTimer.elapsedNs();

        SelectionStats Warm;
        std::uint64_t WarmNs = ~0ULL;
        for (unsigned R = 0; R < Opts.Repeat; ++R) {
          Warm.reset();
          Stopwatch WarmTimer;
          A.labelFunctions(Ptrs, Threads, &Warm);
          WarmNs = std::min(WarmNs, WarmTimer.elapsedNs());
        }
        if (BaselineWarmNs == 0)
          BaselineWarmNs = static_cast<double>(WarmNs);

        double HitPct =
            Warm.CacheProbes
                ? 100.0 * static_cast<double>(Warm.CacheHits) /
                      static_cast<double>(Warm.CacheProbes)
                : 0.0;
        Table.addRow(
            {TargetName, ProfileName, std::to_string(Threads),
             formatThousands(TotalNodes),
             formatFixed(static_cast<double>(ColdNs) / 1e6, 1),
             formatFixed(static_cast<double>(WarmNs) / 1e6, 1),
             formatFixed(static_cast<double>(TotalNodes) * 1e3 /
                             static_cast<double>(WarmNs),
                         1),
             formatFixed(BaselineWarmNs / static_cast<double>(WarmNs), 2),
             formatThousands(A.numStates()),
             formatThousands(A.numTransitions()), formatFixed(HitPct, 1),
             formatThousands(A.memoryBytes() / 1024)});
      }
      Table.addSeparator();
    }
  }
  Table.print();
  std::printf(
      "\nwarm pass = relabeling the corpus against the already-populated\n"
      "automaton (the JIT steady state); speedup is relative to the first\n"
      "thread count listed. Labelings are thread-count invariant; see\n"
      "bench_p1_parallel for the bit-identity check.\n");
  return 0;
}
