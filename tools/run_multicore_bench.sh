#!/usr/bin/env bash
# Replays every multicore-sensitive bench (p1 parallel scaling, p2
# pipeline, p4 dense tier, p5 service, p7 adaptive tiers) in one command
# on the current machine and collects their --json reports in one
# directory, each prefixed with the host's core count so reports from
# different machines can sit side by side. Re-run on a many-core host to
# refresh the multicore story that the single-core CI container cannot
# measure (see ROADMAP.md).
#
# usage: tools/run_multicore_bench.sh [results-dir] [--smoke]
#
# Builds into build-bench/ (Release, -O2) unless ODBURG_BENCH_BUILD_DIR
# points at an existing configured build. Compare two result sets with:
#   tools/bench_compare.py old/NN-core_BENCH_p1.json new/NN-core_BENCH_p1.json

set -euo pipefail

cd "$(dirname "$0")/.."

RESULTS=results-multicore
SMOKE=
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=--smoke ;;
    --help|-h)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) RESULTS=$arg ;;
  esac
done

BUILD=${ODBURG_BENCH_BUILD_DIR:-build-bench}
if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-O2 -DNDEBUG" >/dev/null
fi

BENCHES=(bench_p1_parallel bench_p2_pipeline bench_p4_dense \
         bench_p5_service bench_p7_adaptive)
cmake --build "$BUILD" -j "$(nproc)" --target "${BENCHES[@]}"

CORES=$(nproc)
mkdir -p "$RESULTS"
echo "== running ${#BENCHES[@]} benches on ${CORES} cores -> $RESULTS/"
for bench in "${BENCHES[@]}"; do
  short=${bench#bench_}
  short=${short%%_*}
  out="$RESULTS/${CORES}-core_BENCH_${short}.json"
  echo "-- $bench"
  "$BUILD/bench/$bench" $SMOKE --json="$out"
done

echo "== reports:"
ls -l "$RESULTS"/*.json
