#!/usr/bin/env python3
"""Compare two BENCH_*.json reports produced by the bench binaries.

Every bench binary writes, under --json=<path>, a JSON array whose first
element is a "__meta__" host/build object (hardware_concurrency, build,
compiler, os, smoke) followed by one object per recorded table row. This
script pairs up rows between a baseline and a candidate report and flags
metric regressions beyond a tolerance.

Pairing: rows match when their "bench" field and every *string-valued*
field agree (string fields are configuration axes: backend names, tier
configurations, workload names). Numeric fields are the metrics. A
candidate row that misses — because a newer bench records configuration
axes (e.g. robustness flags) an older baseline has never heard of — is
retried with its key restricted to the field names the baseline actually
uses, so adding config axes does not orphan the whole comparison.

Direction heuristics (overridable per run are deliberately not offered —
keep the convention in the field names): a metric is higher-is-better
when its key contains one of fn_per_s/rate/speedup/hit/throughput/ratio,
lower-is-better when it contains one of ns/ms/us/sec/bytes/mb/cost/
states/misses, and ignored otherwise (counts like "functions" are
workload parameters, not outcomes).

Exit status: 0 when no regression beyond --tolerance, 1 when at least one
metric regressed, 2 on usage or file errors (including a build-type
mismatch between the two reports, which makes the numbers incomparable).
"""

import argparse
import json
import sys


def die(msg):
    """Exit 2 — the documented usage/file-error status. sys.exit(str)
    would exit 1, colliding with "a metric regressed"."""
    print(msg, file=sys.stderr)
    sys.exit(2)

HIGHER_BETTER = ("fn_per_s", "per_s", "rate", "speedup", "hit", "throughput",
                 "ratio")
LOWER_BETTER = ("ns", "ms", "us", "sec", "bytes", "mb", "kb", "cost",
                "misses", "states")


def direction(key):
    """+1 higher-is-better, -1 lower-is-better, 0 not a tracked metric."""
    k = key.lower()
    # Token-wise match for the short units so "ms" does not fire inside
    # "mismatches"; substring match for the long descriptive names.
    tokens = k.replace("/", "_").replace("%", "_").split("_")
    for h in HIGHER_BETTER:
        if (len(h) > 3 and h in k) or h in tokens:
            return 1
    for l in LOWER_BETTER:
        if (len(l) > 3 and l in k) or l in tokens:
            return -1
    return 0


def load(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: cannot read {path}: {e}")
    if not isinstance(rows, list):
        die(f"error: {path}: expected a JSON array")
    meta = {}
    data = []
    for row in rows:
        if not isinstance(row, dict):
            continue
        if row.get("bench") == "__meta__":
            meta = row
        else:
            data.append(row)
    return meta, data


# Integer fields that are configuration axes, not outcomes — included in
# the pairing key alongside every string- and bool-valued field.
INT_CONFIG_FIELDS = {"threads", "workers", "ways", "functions", "nodes",
                     "connections", "repeat", "window"}


def row_key(row):
    parts = [("bench", str(row.get("bench", "")))]
    for k in sorted(row):
        if k == "bench":
            continue
        v = row[k]
        if isinstance(v, (str, bool)) or \
                (isinstance(v, int) and k.lower() in INT_CONFIG_FIELDS):
            parts.append((k, str(v)))
    return tuple(parts)


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    ap = argparse.ArgumentParser(
        description="Diff two bench --json reports and flag regressions.")
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", help="candidate BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative change to tolerate before a metric "
                         "counts as a regression (default 0.05 = 5%%)")
    ap.add_argument("--verbose", action="store_true",
                    help="print every compared metric, not just regressions")
    args = ap.parse_args()

    base_meta, base_rows = load(args.baseline)
    cand_meta, cand_rows = load(args.candidate)

    if base_meta and cand_meta:
        if base_meta.get("build") != cand_meta.get("build"):
            die(f"error: build type mismatch: baseline is "
                f"{base_meta.get('build')}, candidate is "
                f"{cand_meta.get('build')} — numbers are incomparable")
        for field in ("hardware_concurrency", "compiler", "os", "smoke"):
            if base_meta.get(field) != cand_meta.get(field):
                print(f"warning: {field} differs: baseline="
                      f"{base_meta.get(field)} candidate="
                      f"{cand_meta.get(field)}", file=sys.stderr)

    base_by_key = {}
    base_fields = set()
    for row in base_rows:
        key = row_key(row)
        base_by_key.setdefault(key, []).append(row)
        base_fields.update(k for k, _ in key)

    compared = 0
    regressions = []
    unmatched = 0
    for row in cand_rows:
        key = row_key(row)
        bucket = base_by_key.get(key)
        if not bucket:
            # Key-restriction fallback: drop config axes the baseline has
            # never recorded (a baseline row's own key only ever uses
            # baseline fields, so restricting the candidate's key to them
            # makes the two comparable again).
            narrowed = tuple(p for p in key if p[0] in base_fields)
            if narrowed != key:
                bucket = base_by_key.get(narrowed)
        if not bucket:
            unmatched += 1
            continue
        base = bucket.pop(0)
        for k, v in row.items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                continue
            bv = base.get(k)
            if not isinstance(bv, (int, float)) or isinstance(bv, bool):
                continue
            d = direction(k)
            if d == 0 or bv == 0:
                continue
            change = (v - bv) / abs(bv)
            compared += 1
            regressed = (d > 0 and change < -args.tolerance) or \
                        (d < 0 and change > args.tolerance)
            if regressed:
                regressions.append((key, k, bv, v, change))
            if args.verbose or regressed:
                tag = "REGRESSION" if regressed else "ok"
                print(f"{tag:10s} {fmt_key(key)} :: {k}: "
                      f"{bv:g} -> {v:g} ({change:+.1%})")

    print(f"compared {compared} metrics across "
          f"{len(cand_rows)} candidate rows "
          f"({unmatched} unmatched), tolerance {args.tolerance:.0%}: "
          f"{len(regressions)} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
