#!/usr/bin/env python3
"""Unit tests for bench_compare.py.

Run directly (python3 tools/test_bench_compare.py) or through CTest,
which registers this file when a Python3 interpreter is found. The
end-to-end cases shell out to bench_compare.py with the same
interpreter, so exit statuses (0 clean / 1 regression / 2 usage) are
tested exactly as CI consumes them.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import bench_compare  # noqa: E402

COMPARE = os.path.join(HERE, "bench_compare.py")


def meta(build="Release", **kw):
    row = {"bench": "__meta__", "build": build, "hardware_concurrency": 8,
           "compiler": "g++", "os": "linux", "smoke": False}
    row.update(kw)
    return row


def run_compare(baseline, candidate, *extra):
    """Writes the two reports to temp files and runs bench_compare.py."""
    with tempfile.TemporaryDirectory() as d:
        bp = os.path.join(d, "base.json")
        cp = os.path.join(d, "cand.json")
        with open(bp, "w") as f:
            json.dump(baseline, f)
        with open(cp, "w") as f:
            json.dump(candidate, f)
        return subprocess.run(
            [sys.executable, COMPARE, bp, cp, *extra],
            capture_output=True, text=True)


class DirectionTest(unittest.TestCase):
    def test_higher_is_better_names(self):
        for key in ("fn_per_s", "labels_per_s", "throughput", "hit_rate",
                    "snapshot_hit", "speedup", "warm_ratio"):
            self.assertEqual(bench_compare.direction(key), 1, key)

    def test_lower_is_better_names(self):
        for key in ("p50_ms", "wall_ns", "resident_bytes", "mem_mb",
                    "total_cost", "states", "misses", "first_batch_us"):
            self.assertEqual(bench_compare.direction(key), -1, key)

    def test_short_units_match_tokenwise_only(self):
        # "ms" must not fire inside "mismatches"; "us" not inside "status".
        self.assertEqual(bench_compare.direction("mismatches"), 0)
        self.assertEqual(bench_compare.direction("status"), 0)
        self.assertEqual(bench_compare.direction("p99_ms"), -1)

    def test_config_parameters_are_ignored(self):
        for key in ("functions", "threads", "epoch", "connections"):
            self.assertEqual(bench_compare.direction(key), 0, key)


class RowKeyTest(unittest.TestCase):
    def test_strings_bools_and_config_ints_form_the_key(self):
        row = {"bench": "registry", "backend": "hybrid", "warm": True,
               "threads": 4, "fn_per_s": 123.0, "p50_ms": 1.5}
        key = dict(bench_compare.row_key(row))
        self.assertEqual(key, {"bench": "registry", "backend": "hybrid",
                               "warm": "True", "threads": "4"})

    def test_metric_ints_stay_out_of_the_key(self):
        a = bench_compare.row_key({"bench": "b", "states": 10})
        b = bench_compare.row_key({"bench": "b", "states": 99})
        self.assertEqual(a, b)

    def test_key_is_order_insensitive(self):
        a = bench_compare.row_key({"bench": "b", "x": "1", "y": "2"})
        b = bench_compare.row_key({"y": "2", "x": "1", "bench": "b"})
        self.assertEqual(a, b)


class LoadTest(unittest.TestCase):
    def test_meta_row_is_split_from_data(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.json")
            with open(p, "w") as f:
                json.dump([meta(), {"bench": "x", "ms": 1}], f)
            m, rows = bench_compare.load(p)
        self.assertEqual(m.get("build"), "Release")
        self.assertEqual(len(rows), 1)
        self.assertEqual(rows[0]["bench"], "x")


class EndToEndTest(unittest.TestCase):
    def test_identical_reports_pass(self):
        rows = [meta(), {"bench": "x", "backend": "dp", "fn_per_s": 100.0}]
        r = run_compare(rows, rows)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("0 regression(s)", r.stdout)

    def test_regression_beyond_tolerance_fails(self):
        base = [meta(), {"bench": "x", "backend": "dp", "fn_per_s": 100.0}]
        cand = [meta(), {"bench": "x", "backend": "dp", "fn_per_s": 80.0}]
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION", r.stdout)

    def test_improvement_and_tolerated_noise_pass(self):
        base = [meta(), {"bench": "x", "p50_ms": 10.0, "fn_per_s": 100.0}]
        cand = [meta(), {"bench": "x", "p50_ms": 10.3, "fn_per_s": 140.0}]
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_wider_tolerance_forgives(self):
        base = [meta(), {"bench": "x", "p50_ms": 10.0}]
        cand = [meta(), {"bench": "x", "p50_ms": 11.5}]
        self.assertEqual(run_compare(base, cand).returncode, 1)
        self.assertEqual(
            run_compare(base, cand, "--tolerance", "0.2").returncode, 0)

    def test_build_type_mismatch_is_a_usage_error(self):
        base = [meta(build="Release"), {"bench": "x", "ms": 1.0}]
        cand = [meta(build="Debug"), {"bench": "x", "ms": 1.0}]
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("incomparable", r.stderr)

    def test_key_restriction_fallback_matches_new_config_axes(self):
        # The candidate records a config axis ("spool") the baseline has
        # never heard of; the row must still pair up — and a regression
        # inside it must still be caught.
        base = [meta(), {"bench": "x", "backend": "dp", "fn_per_s": 100.0}]
        cand = [meta(), {"bench": "x", "backend": "dp", "spool": "warm",
                         "fn_per_s": 50.0}]
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("(0 unmatched)", r.stdout)

    def test_truly_new_rows_count_as_unmatched_not_errors(self):
        base = [meta(), {"bench": "x", "fn_per_s": 100.0}]
        cand = [meta(), {"bench": "x", "fn_per_s": 100.0},
                {"bench": "brand_new", "fn_per_s": 1.0}]
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("(1 unmatched)", r.stdout)

    def test_duplicate_keys_pair_positionally(self):
        # Two rows with the same key (e.g. repeated trials): each candidate
        # row consumes one baseline row instead of comparing both against
        # the first.
        base = [meta(), {"bench": "x", "ms": 10.0}, {"bench": "x", "ms": 50.0}]
        cand = [meta(), {"bench": "x", "ms": 10.0}, {"bench": "x", "ms": 50.0}]
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_unreadable_file_is_a_usage_error(self):
        r = subprocess.run(
            [sys.executable, COMPARE, "/nonexistent.json",
             "/nonexistent.json"], capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)

    def test_non_array_report_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as d:
            p = os.path.join(d, "r.json")
            with open(p, "w") as f:
                json.dump({"bench": "x"}, f)
            r = subprocess.run([sys.executable, COMPARE, p, p],
                               capture_output=True, text=True)
        self.assertEqual(r.returncode, 2)


if __name__ == "__main__":
    unittest.main()
