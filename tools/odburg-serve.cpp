//===- tools/odburg-serve.cpp - Streaming compile-service front -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent-service front: reads s-expression IR functions from
/// stdin (or a file) and streams their compiled assembly back through one
/// long-lived pipeline::CompileService — the paper's amortization argument
/// as a process. Submission and delivery overlap: while later functions
/// are still being read and compiled, earlier results are already written
/// out, strictly in submission order.
///
/// Wire format in: functions separated by blank lines; within a function,
/// each s-expression is one statement root (exactly what
/// odburg-run --dump-corpus writes and ir::toSExpr prints). A malformed
/// function is reported to stderr with line/column, *skipped*, and the
/// stream keeps serving — the parser's typed ErrorKind::MalformedInput
/// makes that distinction safe.
///
/// Wire format out (--format=asm, default): each function's newline-
/// terminated assembly, concatenated in submission order — byte-identical
/// to odburg-run's batch assembly for the same corpus, on every backend.
/// --format=json frames each result as one JSON object per line instead
/// (seq, ok, instructions, cost, asm / error).
///
/// --tables=PATH makes the offline and hybrid backends pay table
/// generation once per grammar across processes: load the tables from
/// PATH when present (validated by fingerprint — and, for the hybrid,
/// by partition membership), generate and save them when not.
///
///   odburg-run --target=x86 --fixed --dump-corpus=c.sexpr --emit-asm=b.s
///   odburg-serve --target=x86 --fixed < c.sexpr | cmp - b.s
///
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"
#include "pipeline/CompileService.h"
#include "registry/GrammarRegistry.h"
#include "serve/TcpServer.h"
#include "support/FaultInjection.h"
#include "support/StringUtil.h"
#include "support/Timer.h"
#include "targets/Target.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include <poll.h>
#include <unistd.h>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;

namespace {

struct ServeOptions {
  std::string Target = "x86";
  BackendKind Backend = BackendKind::OnDemand;
  bool ForceFixed = false;
  unsigned Threads = 0;       // 0 = hardware concurrency.
  unsigned QueueCapacity = 0; // 0 = service default.
  bool Json = false;
  std::string TablesPath;
  unsigned GenThreads = 0;
  std::string InputPath; // Empty = stdin.
  // Network mode (--listen): serve the same wire format over TCP instead
  // of stdin/stdout, one backend lane per connection-selected kind.
  bool Listen = false;
  unsigned Port = 0;
  std::string Host = "127.0.0.1";
  std::string PortFile;
  // Overload control / robustness (all --listen mode; 0 = off).
  unsigned MaxConns = 0;
  unsigned HighWatermark = 0;
  unsigned IdleTimeoutMillis = 0;
  unsigned DeadlineMillis = 0;
  unsigned MemBudgetMb = 0;
  unsigned DrainTimeoutMillis = 10000;
  std::string Faults; // --faults=SPEC, merged over ODBURG_FAULTS.
  // Multi-tenant mode (--listen only): spool directory for a
  // GrammarRegistry serving `GRAMMAR <name>` handshakes.
  std::string RegistryDir;
  bool NoSnapshots = false; // --no-snapshots: skip warm snapshot load/dump.
};

int usage(const char *Argv0, int Exit) {
  std::fprintf(
      Exit == 0 ? stdout : stderr,
      "usage: %s [options] [INPUT]\n"
      "\n"
      "Reads s-expression IR functions (blank-line separated; one\n"
      "s-expression per statement root) from INPUT or stdin, compiles them\n"
      "through a persistent streaming CompileService, and writes each\n"
      "function's assembly to stdout in submission order — while later\n"
      "functions are still being read and compiled. Malformed functions\n"
      "are reported to stderr and skipped; the stream keeps serving.\n"
      "\n"
      "  --target=NAME         target grammar (default x86)\n"
      "  --backend=NAME        labeling backend: dp, offline, ondemand,\n"
      "                        hybrid (default ondemand)\n"
      "  --fixed               use the fixed-cost (stripped) grammar\n"
      "                        (implied by --backend=offline)\n"
      "  --threads=N           service worker pool size (default: hardware\n"
      "                        concurrency)\n"
      "  --queue=N             submission queue bound — backpressure point\n"
      "                        (default: 4x workers)\n"
      "  --format=asm|json     output framing (default asm): raw assembly,\n"
      "                        or one JSON record per result line\n"
      "  --tables=PATH         offline/hybrid backends: load the compiled\n"
      "                        tables from PATH if present (fingerprint-\n"
      "                        and partition-checked), else generate and\n"
      "                        save them there\n"
      "  --gen-threads=N       offline table generation workers (default:\n"
      "                        hardware concurrency)\n"
      "  --listen=PORT         serve over TCP instead of stdin/stdout\n"
      "                        (0 = ephemeral port). Clients speak the same\n"
      "                        wire format, may pick a backend per\n"
      "                        connection with a 'BACKEND dp|offline|\n"
      "                        ondemand|hybrid' first line (default:\n"
      "                        --backend),\n"
      "                        and can request a 'STATS' metrics line.\n"
      "                        Runs until SIGINT/SIGTERM.\n"
      "  --host=ADDR           listen address (default 127.0.0.1)\n"
      "  --port-file=PATH      write the bound port to PATH once listening\n"
      "                        (for scripts using --listen=0)\n"
      "\n"
      "Overload control (--listen mode; 0 disables each):\n"
      "  --max-conns=N         accept-time connection cap; connections past\n"
      "                        it get 'ERROR ResourceExhausted' and a close\n"
      "  --high-watermark=N    per-lane undelivered-submission bound; at it\n"
      "                        functions are shed with an out-of-band\n"
      "                        'ERROR ResourceExhausted ... seq=K' record\n"
      "                        instead of blocking the reader\n"
      "  --idle-timeout=MS     reap connections with no client bytes for MS\n"
      "                        ('ERROR IdleTimeout', then close)\n"
      "  --deadline-ms=MS      per-function compile deadline; expired\n"
      "                        submissions answer 'ERROR DeadlineExceeded'\n"
      "                        in their ordered slot\n"
      "  --mem-budget=MB       backend-memory budget; a governor degrades\n"
      "                        lane tier stacks while usage exceeds it\n"
      "                        (with --registry-dir it also drives LRU\n"
      "                        eviction of idle grammars)\n"
      "  --registry-dir=DIR    multi-tenant mode: serve many grammars from\n"
      "                        one process. Clients pick theirs with a\n"
      "                        'GRAMMAR <name>' first line — a built-in\n"
      "                        target or DIR/<name>.odg — and DIR spools\n"
      "                        compiled tables and warm-automaton\n"
      "                        snapshots across restarts. 'RELOAD <name>'\n"
      "                        hot-swaps an edited grammar\n"
      "  --no-snapshots        registry mode: do not load or dump warm\n"
      "                        automaton snapshots\n"
      "  --drain-timeout=MS    SIGTERM/SIGINT drain budget before in-flight\n"
      "                        work is force-severed (default 10000)\n"
      "  --faults=SPEC         arm fault-injection sites (also read from\n"
      "                        ODBURG_FAULTS). SPEC = site:trigger[,...];\n"
      "                        sites: socket-send, socket-recv,\n"
      "                        socket-accept, service-submit, tables-load,\n"
      "                        state-compute, registry-load,\n"
      "                        registry-evict; triggers: nth=N, every=K,\n"
      "                        p=P[@seed]\n"
      "  --help                this text\n"
      "\n"
      "Exit status: 0 when every function compiled, 1 when any function\n"
      "was skipped (parse error) or failed to compile, 2 on bad usage.\n"
      "In --listen mode: 0 on clean drain (all connections finished within\n"
      "--drain-timeout), 3 when the drain timed out or a second signal\n"
      "forced the stop, 2 on startup failure.\n",
      Argv0);
  return Exit;
}

bool parseArgs(int Argc, char **Argv, ServeOptions &Opts, int &ExitCode) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto Value = [&Arg](std::string_view Prefix) {
      return Arg.substr(Prefix.size());
    };
    if (Arg == "--help" || Arg == "-h") {
      ExitCode = usage(Argv[0], 0);
      return false;
    }
    if (Arg == "--fixed") {
      Opts.ForceFixed = true;
    } else if (startsWith(Arg, "--target=")) {
      Opts.Target = std::string(Value("--target="));
    } else if (startsWith(Arg, "--backend=")) {
      Expected<BackendKind> K = parseBackendKind(trim(Value("--backend=")));
      if (!K) {
        std::fprintf(stderr, "error: %s\n", K.message().c_str());
        ExitCode = usage(Argv[0], 2);
        return false;
      }
      Opts.Backend = *K;
    } else if (startsWith(Arg, "--threads=")) {
      if (!parseUnsigned(Value("--threads="), Opts.Threads)) {
        std::fprintf(stderr, "invalid --threads value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--queue=")) {
      if (!parseUnsigned(Value("--queue="), Opts.QueueCapacity) ||
          Opts.QueueCapacity == 0) {
        std::fprintf(stderr, "invalid --queue value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--format=")) {
      std::string_view V = Value("--format=");
      if (V == "asm") {
        Opts.Json = false;
      } else if (V == "json") {
        Opts.Json = true;
      } else {
        std::fprintf(stderr, "invalid --format (asm or json)\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--tables=")) {
      Opts.TablesPath = std::string(Value("--tables="));
    } else if (startsWith(Arg, "--gen-threads=")) {
      if (!parseUnsigned(Value("--gen-threads="), Opts.GenThreads)) {
        std::fprintf(stderr, "invalid --gen-threads value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--listen=")) {
      if (!parseUnsigned(Value("--listen="), Opts.Port) ||
          Opts.Port > 65535) {
        std::fprintf(stderr, "invalid --listen port\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
      Opts.Listen = true;
    } else if (startsWith(Arg, "--host=")) {
      Opts.Host = std::string(Value("--host="));
    } else if (startsWith(Arg, "--port-file=")) {
      Opts.PortFile = std::string(Value("--port-file="));
    } else if (startsWith(Arg, "--max-conns=")) {
      if (!parseUnsigned(Value("--max-conns="), Opts.MaxConns)) {
        std::fprintf(stderr, "invalid --max-conns value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--high-watermark=")) {
      if (!parseUnsigned(Value("--high-watermark="), Opts.HighWatermark)) {
        std::fprintf(stderr, "invalid --high-watermark value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--idle-timeout=")) {
      if (!parseUnsigned(Value("--idle-timeout="), Opts.IdleTimeoutMillis)) {
        std::fprintf(stderr, "invalid --idle-timeout value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--deadline-ms=")) {
      if (!parseUnsigned(Value("--deadline-ms="), Opts.DeadlineMillis)) {
        std::fprintf(stderr, "invalid --deadline-ms value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--mem-budget=")) {
      if (!parseUnsigned(Value("--mem-budget="), Opts.MemBudgetMb)) {
        std::fprintf(stderr, "invalid --mem-budget value (megabytes)\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--drain-timeout=")) {
      if (!parseUnsigned(Value("--drain-timeout="),
                         Opts.DrainTimeoutMillis)) {
        std::fprintf(stderr, "invalid --drain-timeout value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--faults=")) {
      Opts.Faults = std::string(Value("--faults="));
    } else if (startsWith(Arg, "--registry-dir=")) {
      Opts.RegistryDir = std::string(Value("--registry-dir="));
      if (Opts.RegistryDir.empty()) {
        std::fprintf(stderr, "invalid --registry-dir (empty)\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (Arg == "--no-snapshots") {
      Opts.NoSnapshots = true;
    } else if (!startsWith(Arg, "--")) {
      if (!Opts.InputPath.empty()) {
        std::fprintf(stderr, "more than one INPUT path\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
      Opts.InputPath = std::string(Arg);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      ExitCode = usage(Argv[0], 2);
      return false;
    }
  }
  return true;
}

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Builds the service's backend, honoring --tables for the offline and
/// hybrid kinds: load when the file exists and validates (fingerprint,
/// and for the hybrid the stored partition membership must match this
/// grammar's computed partition), otherwise create normally and save the
/// freshly generated tables.
Expected<std::unique_ptr<LabelerBackend>>
makeBackend(const ServeOptions &Opts, const Grammar &G,
            const DynCostTable *Dyn) {
  LabelerBackend::Options BOpts;
  BOpts.OfflineGenThreads = Opts.GenThreads;
  const bool TabledKind = Opts.Backend == BackendKind::Offline ||
                          Opts.Backend == BackendKind::Hybrid;

  if (TabledKind && !Opts.TablesPath.empty()) {
    if (std::ifstream In{Opts.TablesPath, std::ios::binary}) {
      Expected<CompiledTables> Tables = CompiledTables::load(In, G);
      if (Tables) {
        unsigned NumStates = Tables->stats().NumStates;
        double GenerationMs = Tables->stats().GenerationMs;
        Expected<std::unique_ptr<LabelerBackend>> Loaded =
            Opts.Backend == BackendKind::Offline
                ? Expected<std::unique_ptr<LabelerBackend>>(
                      std::make_unique<OfflineBackend>(std::move(*Tables)))
                : [&]() -> Expected<std::unique_ptr<LabelerBackend>> {
                    Expected<std::unique_ptr<HybridBackend>> H =
                        HybridBackend::createWithTables(G, Dyn, BOpts,
                                                        std::move(*Tables));
                    if (!H)
                      return H.takeError();
                    return std::unique_ptr<LabelerBackend>(std::move(*H));
                  }();
        if (Loaded) {
          std::fprintf(stderr, "odburg-serve: loaded offline tables from %s "
                               "(%u states, %.1f ms)\n",
                       Opts.TablesPath.c_str(), NumStates, GenerationMs);
          return Loaded;
        }
        std::fprintf(stderr,
                     "odburg-serve: ignoring %s (%s); regenerating tables\n",
                     Opts.TablesPath.c_str(), Loaded.message().c_str());
      } else {
        std::fprintf(stderr,
                     "odburg-serve: ignoring %s (%s); regenerating tables\n",
                     Opts.TablesPath.c_str(), Tables.message().c_str());
      }
    }
  }

  Expected<std::unique_ptr<LabelerBackend>> Backend =
      LabelerBackend::create(Opts.Backend, G, Dyn, BOpts);
  if (!Backend)
    return Backend;

  if (TabledKind && !Opts.TablesPath.empty()) {
    const CompiledTables &Tables =
        Opts.Backend == BackendKind::Offline
            ? static_cast<const OfflineBackend &>(**Backend).tables()
            : static_cast<const HybridBackend &>(**Backend).tables();
    std::ofstream Out(Opts.TablesPath, std::ios::binary | std::ios::trunc);
    Error E = Out ? Tables.dump(Out)
                  : Error::make("cannot open '" + Opts.TablesPath +
                                "' for writing");
    if (E)
      std::fprintf(stderr, "odburg-serve: could not save tables: %s\n",
                   E.message().c_str());
    else
      std::fprintf(stderr, "odburg-serve: saved offline tables to %s\n",
                   Opts.TablesPath.c_str());
  }
  return Backend;
}

/// Self-pipe for signal-driven shutdown: the handler writes one byte (the
/// only async-signal-safe notification we need), main blocks in read.
int SignalPipe[2] = {-1, -1};

extern "C" void onStopSignal(int) {
  char B = 1;
  ssize_t R = ::write(SignalPipe[1], &B, 1);
  (void)R;
}

/// The --listen mode: run a TcpServer over the target until SIGINT or
/// SIGTERM, then stop it cleanly (drain connections, join every thread).
int serveNetwork(const ServeOptions &Opts, Target &T) {
  if (!Opts.InputPath.empty()) {
    std::fprintf(stderr, "error: --listen reads from sockets, not INPUT\n");
    return 2;
  }
  if (Opts.Json) {
    std::fprintf(stderr, "error: --format=json is stdin-mode only (the "
                         "socket protocol frames errors in-band)\n");
    return 2;
  }
  if (!Opts.TablesPath.empty())
    std::fprintf(stderr, "odburg-serve: note: --tables is ignored in "
                         "--listen mode (lanes generate their own)\n");

  serve::TcpServer::Options SrvOpts;
  SrvOpts.Host = Opts.Host;
  SrvOpts.Port = static_cast<std::uint16_t>(Opts.Port);
  SrvOpts.ForceFixed = Opts.ForceFixed;
  SrvOpts.Workers = Opts.Threads;
  SrvOpts.QueueCapacity = Opts.QueueCapacity;
  SrvOpts.DefaultBackend = Opts.Backend;
  SrvOpts.BackendOpts.OfflineGenThreads = Opts.GenThreads;
  SrvOpts.MaxConns = Opts.MaxConns;
  SrvOpts.LaneHighWatermark = Opts.HighWatermark;
  SrvOpts.IdleTimeoutMillis = Opts.IdleTimeoutMillis;
  SrvOpts.CompileDeadlineMs = Opts.DeadlineMillis;
  SrvOpts.MemBudgetBytes =
      static_cast<std::size_t>(Opts.MemBudgetMb) * 1024 * 1024;

  // Multi-tenant mode: one registry behind every connection's GRAMMAR
  // handshake, spooling tables and warm snapshots in --registry-dir.
  // Declared before the server so it outlives every lease the server's
  // lanes hold.
  std::unique_ptr<registry::GrammarRegistry> Registry;
  if (!Opts.RegistryDir.empty()) {
    registry::GrammarRegistry::Options RO;
    RO.Dir = Opts.RegistryDir;
    RO.MemBudgetBytes = SrvOpts.MemBudgetBytes;
    RO.BackendOpts = SrvOpts.BackendOpts;
    RO.LoadSnapshots = !Opts.NoSnapshots;
    Registry = std::make_unique<registry::GrammarRegistry>(std::move(RO));
    SrvOpts.Registry = Registry.get();
  }

  Expected<std::unique_ptr<serve::TcpServer>> Server =
      serve::TcpServer::start(T, std::move(SrvOpts));
  if (!Server) {
    std::fprintf(stderr, "error: %s\n", Server.message().c_str());
    return 2;
  }

  if (!Opts.PortFile.empty()) {
    // Write-then-rename so a polling script never reads a half-written
    // file.
    std::string Tmp = Opts.PortFile + ".tmp";
    std::ofstream Out(Tmp, std::ios::trunc);
    Out << (*Server)->port() << "\n";
    Out.close();
    if (!Out || std::rename(Tmp.c_str(), Opts.PortFile.c_str()) != 0) {
      std::fprintf(stderr, "error: cannot write port file '%s'\n",
                   Opts.PortFile.c_str());
      return 2;
    }
  }
  std::fprintf(stderr,
               "odburg-serve: listening on %s:%u (target=%s, default "
               "backend=%s, gram=%s%s%s)\n",
               Opts.Host.c_str(), (*Server)->port(), Opts.Target.c_str(),
               backendName(Opts.Backend),
               Opts.ForceFixed ? "fixed" : "full",
               Registry ? ", registry=" : "",
               Registry ? Opts.RegistryDir.c_str() : "");

  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 2;
  }
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);

  char B;
  while (::read(SignalPipe[0], &B, 1) < 0 && errno == EINTR) {
  }

  // Graceful drain: stop accepting, let in-flight connections finish
  // within the drain budget, then stop. A second signal — or the budget
  // running out — forces the stop (exit 3); a clean drain exits 0.
  std::fprintf(stderr, "odburg-serve: draining (budget %u ms; signal again "
                       "to force)\n",
               Opts.DrainTimeoutMillis);
  (*Server)->beginDrain();
  bool Forced = false;
  Stopwatch DrainClock;
  while (!(*Server)->drained()) {
    if (DrainClock.elapsedNs() / 1000000 >= Opts.DrainTimeoutMillis) {
      Forced = true;
      break;
    }
    struct pollfd P = {SignalPipe[0], POLLIN, 0};
    int R = ::poll(&P, 1, 50);
    if (R > 0) {
      Forced = true; // Second signal: the operator wants out now.
      break;
    }
    if (R < 0 && errno != EINTR) {
      Forced = true;
      break;
    }
  }

  std::fprintf(stderr, "odburg-serve: %s\n",
               Forced ? "drain forced; severing in-flight connections"
                      : "drained clean; shutting down");
  (*Server)->stop();
  if (Registry) {
    // The server is quiescent now; persist the warm automata so the next
    // process serves its first batch out of the warm tiers.
    if (!Opts.NoSnapshots) {
      if (Error E = Registry->dumpWarmSnapshots())
        std::fprintf(stderr, "odburg-serve: warm snapshot dump failed: %s\n",
                     E.message().c_str());
    }
    registry::RegistryStats RS = Registry->statsSnapshot();
    std::fprintf(
        stderr,
        "odburg-serve: registry — %llu resident grammars, %llu acquires, "
        "%llu evictions, %llu hot swaps, %llu snapshot hits, %llu misses, "
        "%llu tables loads\n",
        static_cast<unsigned long long>(RS.ResidentGrammars),
        static_cast<unsigned long long>(RS.Acquires),
        static_cast<unsigned long long>(RS.Evictions),
        static_cast<unsigned long long>(RS.HotSwaps),
        static_cast<unsigned long long>(RS.SnapshotHits),
        static_cast<unsigned long long>(RS.SnapshotMisses),
        static_cast<unsigned long long>(RS.TablesLoads));
  }
  std::fprintf(stderr,
               "odburg-serve: served %llu connections (%llu shed, %llu "
               "submit-shed, %llu idle-reaped, %llu cancelled deliveries, "
               "%llu faults injected)\n",
               static_cast<unsigned long long>(
                   (*Server)->connectionsAccepted()),
               static_cast<unsigned long long>((*Server)->shedConnections()),
               static_cast<unsigned long long>((*Server)->shedSubmits()),
               static_cast<unsigned long long>((*Server)->idleReaped()),
               static_cast<unsigned long long>(
                   (*Server)->cancelledDeliveries()),
               static_cast<unsigned long long>(fault::firedTotal()));
  return Forced ? 3 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opts;
  int ExitCode = 0;
  if (!parseArgs(Argc, Argv, Opts, ExitCode))
    return ExitCode;

  // Arm fault-injection sites: the environment first (so harnesses can
  // inject without touching the command line), then --faults on top.
  if (Error E = fault::configureFromEnv()) {
    std::fprintf(stderr, "error: ODBURG_FAULTS: %s\n", E.message().c_str());
    return 2;
  }
  if (!Opts.Faults.empty()) {
    if (Error E = fault::configure(Opts.Faults)) {
      std::fprintf(stderr, "error: --faults: %s\n", E.message().c_str());
      return 2;
    }
  }

  Expected<std::unique_ptr<Target>> TOrErr = makeTarget(Opts.Target);
  if (!TOrErr) {
    std::fprintf(stderr, "error: %s\n", TOrErr.message().c_str());
    return 2;
  }
  Target &T = **TOrErr;
  if (Opts.Listen)
    return serveNetwork(Opts, T);
  // Offline tables cannot encode dynamic costs, so that backend always
  // serves the stripped grammar; --fixed levels the others onto it for
  // cross-backend byte-identity.
  bool Fixed = Opts.ForceFixed || Opts.Backend == BackendKind::Offline;
  const Grammar &G = Fixed ? T.Fixed : T.G;
  const DynCostTable *Dyn = Fixed ? nullptr : &T.Dyn;

  Expected<std::unique_ptr<LabelerBackend>> Backend =
      makeBackend(Opts, G, Dyn);
  if (!Backend) {
    std::fprintf(stderr, "error: %s backend: %s\n", backendName(Opts.Backend),
                 Backend.message().c_str());
    return 2;
  }

  std::ifstream FileIn;
  if (!Opts.InputPath.empty()) {
    FileIn.open(Opts.InputPath);
    if (!FileIn) {
      std::fprintf(stderr, "error: cannot open input '%s'\n",
                   Opts.InputPath.c_str());
      return 2;
    }
  }
  std::istream &In = Opts.InputPath.empty() ? std::cin : FileIn;

  // Submitted functions stay alive until their result is delivered; the
  // sink frees each one as its assembly goes out, so memory is bounded by
  // the service's queue capacity, not the stream length.
  std::mutex LiveM;
  std::unordered_map<std::size_t, std::unique_ptr<ir::IRFunction>> Live;
  std::uint64_t FailedCompiles = 0;

  CompileService::Options SvcOpts;
  SvcOpts.Backend = Opts.Backend;
  SvcOpts.Workers = Opts.Threads;
  SvcOpts.QueueCapacity = Opts.QueueCapacity;
  const bool Json = Opts.Json;
  SvcOpts.OnResult = [&](std::size_t Seq, const CompileResult &R) {
    // Fired in submission order, one at a time — stdout stays a clean
    // ordered stream with no extra locking.
    if (Json) {
      std::string Rec = "{\"seq\": " + std::to_string(Seq);
      if (R.ok()) {
        Rec += ", \"ok\": true, \"instructions\": " +
               std::to_string(R.Instructions) +
               ", \"cost\": " + std::to_string(R.Sel.TotalCost.value()) +
               ", \"asm\": \"" + jsonEscape(R.Asm) + "\"";
      } else {
        Rec += ", \"ok\": false, \"error\": \"" + jsonEscape(R.Diagnostic) +
               "\"";
      }
      Rec += "}\n";
      std::fwrite(Rec.data(), 1, Rec.size(), stdout);
    } else {
      std::fwrite(R.Asm.data(), 1, R.Asm.size(), stdout);
    }
    std::fflush(stdout);
    std::lock_guard<std::mutex> L(LiveM);
    if (!R.ok()) {
      ++FailedCompiles;
      std::fprintf(stderr, "odburg-serve: function %zu failed: %s\n", Seq,
                   R.Diagnostic.c_str());
    }
    Live.erase(Seq);
  };

  std::unique_ptr<CompileService> Service = CompileService::create(
      G, Dyn, std::move(SvcOpts), std::move(*Backend));

  Stopwatch Wall;
  ir::SExprFunctionStream Stream(In, G);
  std::uint64_t Accepted = 0, Skipped = 0;
  bool StreamBroken = false;
  while (true) {
    auto F = std::make_unique<ir::IRFunction>();
    Expected<bool> Next = Stream.next(*F);
    if (!Next) {
      // Malformed functions are skippable — the stream stays alive. An
      // I/O failure is not: the input is gone, stop serving what's left.
      if (Next.kind() != ErrorKind::MalformedInput) {
        std::fprintf(stderr, "odburg-serve: %s\n", Next.message().c_str());
        StreamBroken = true;
        break;
      }
      ++Skipped;
      std::fprintf(stderr, "odburg-serve: skipping function: %s\n",
                   Next.message().c_str());
      continue;
    }
    if (!*Next)
      break; // Clean end of input.
    // Park the function before submitting: the sink may deliver (and
    // free) it before submit() even returns.
    ir::IRFunction &Ref = *F;
    {
      std::lock_guard<std::mutex> L(LiveM);
      Live.emplace(Accepted, std::move(F));
    }
    Expected<std::future<CompileResult>> Fut = Service->submit(Ref);
    if (!Fut) {
      std::fprintf(stderr, "error: %s\n", Fut.message().c_str());
      return 1;
    }
    ++Accepted;
  }
  Service->drain();
  std::uint64_t ElapsedNs = Wall.elapsedNs();
  unsigned Workers = Service->workers();
  Service->shutdown();

  std::uint64_t Failed;
  {
    std::lock_guard<std::mutex> L(LiveM);
    Failed = FailedCompiles;
  }
  std::fprintf(stderr,
               "odburg-serve: target=%s backend=%s gram=%s workers=%u — "
               "served %llu functions (%llu skipped, %llu failed) in %.1f ms\n",
               Opts.Target.c_str(), backendName(Opts.Backend),
               Fixed ? "fixed" : "full", Workers,
               static_cast<unsigned long long>(Accepted),
               static_cast<unsigned long long>(Skipped),
               static_cast<unsigned long long>(Failed),
               static_cast<double>(ElapsedNs) / 1e6);
  return (Skipped || Failed || StreamBroken) ? 1 : 0;
}
