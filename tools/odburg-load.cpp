//===- tools/odburg-load.cpp - Concurrent load generator for odburg-serve -===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a running `odburg-serve --listen` with N concurrent connections
/// and validates every byte that comes back. Each connection:
///
///   1. optionally sends the `BACKEND <kind>` handshake;
///   2. streams its corpus (blank-line-framed s-expression functions);
///   3. reads exactly the expected assembly and compares it byte-for-byte
///      against the reference — the server's ordered-delivery promise is
///      per connection, so any reordering, loss, or cross-connection
///      bleed is a hard failure;
///   4. requests `STATS` (after all result records arrived, so the
///      out-of-band reply cannot interleave with result bytes) and checks
///      the counters are live;
///   5. half-closes and expects orderly EOF.
///
/// Two corpus modes: `--corpus`/`--reference` replays files produced by
/// odburg-run (`--dump-corpus` / `--emit-asm`) — the CI end-to-end smoke;
/// without them each connection generates its own mixed-size synthetic
/// corpus (profile and function sizes vary by connection index) and
/// computes its reference assembly locally through the same pipeline the
/// server runs, so validation needs no prior artifacts.
///
/// Robustness-aware validation: the self-generating mode knows each
/// function's reference block, so it walks the response record by record
/// — an `ERROR ResourceExhausted ... seq=K` (watermark shed) or
/// `ERROR DeadlineExceeded ... seq=K` record marks block K shed, and
/// every block the server *did* deliver must still match its reference
/// byte-for-byte. Overload refusals (connection-cap shed, watermark shed,
/// torn streams from injected socket faults) are *retryable*: with
/// `--retry=N` the connection backs off (jittered exponential) and tries
/// again; a byte mismatch or an unexpected diagnostic is always a hard
/// failure. `--allow-shed` accepts an attempt whose delivered subset
/// matched even if some blocks were shed.
///
/// Exit status: 0 when every connection validated, 1 on any mismatch,
/// transport error, or dead STATS counters, 2 on bad usage.
///
//===----------------------------------------------------------------------===//

#include "ir/Node.h"
#include "pipeline/CompileSession.h"
#include "serve/Socket.h"
#include "support/RNG.h"
#include "support/StringUtil.h"
#include "support/Timer.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::serve;
using namespace odburg::targets;

namespace {

struct LoadOptions {
  std::string Host = "127.0.0.1";
  unsigned Port = 0;
  unsigned Connections = 8;
  /// Send the BACKEND handshake when set.
  bool PickBackend = false;
  BackendKind Backend = BackendKind::OnDemand;
  /// File mode: replay this corpus and expect exactly this reference.
  std::string CorpusPath;
  std::string ReferencePath;
  /// Self-generating mode: target + per-connection synthetic corpora.
  std::string Target = "x86";
  /// Multi-tenant mode: cycle connections over these grammars, each
  /// opening with a `GRAMMAR <name>` handshake (requires a server running
  /// --registry-dir). Self-generating mode only.
  std::vector<std::string> Grammars;
  bool ForceFixed = false;
  unsigned Functions = 24;
  /// Request and validate a STATS line per connection.
  bool Stats = true;
  unsigned TimeoutMillis = 60000;
  /// Retries per connection on retryable outcomes (overload sheds, torn
  /// streams), with jittered exponential backoff between attempts.
  unsigned Retries = 0;
  /// Accept an attempt whose delivered blocks all matched even though
  /// some blocks were shed (self-generating mode only; corpus mode has
  /// no block map to skip against).
  bool AllowShed = false;
  /// Print each connection's STATS line to stdout (for harness greps).
  bool PrintStats = false;
};

int usage(const char *Argv0, int Exit) {
  std::fprintf(
      Exit == 0 ? stdout : stderr,
      "usage: %s --connect=HOST:PORT [options]\n"
      "\n"
      "Load-tests a running `odburg-serve --listen` server: N concurrent\n"
      "connections, each validating its responses byte-for-byte against\n"
      "reference assembly, then checking a STATS snapshot.\n"
      "\n"
      "  --connect=HOST:PORT   the server (required)\n"
      "  --connections=N       concurrent connections (default 8)\n"
      "  --backend=NAME        send a 'BACKEND NAME' handshake per\n"
      "                        connection (dp, offline, ondemand);\n"
      "                        default: none (server default lane)\n"
      "  --corpus=PATH         replay this wire-format corpus on every\n"
      "                        connection (from odburg-run --dump-corpus)\n"
      "  --reference=PATH      the assembly every connection must receive\n"
      "                        (from odburg-run --emit-asm); required with\n"
      "                        --corpus\n"
      "  --target=NAME         self-generating mode: target grammar the\n"
      "                        server runs (default x86)\n"
      "  --grammars=A,B,...    multi-tenant mode: cycle connections over\n"
      "                        these grammars, each starting with a\n"
      "                        'GRAMMAR <name>' handshake against a\n"
      "                        server running --registry-dir; references\n"
      "                        are computed per grammar (self-generating\n"
      "                        mode only)\n"
      "  --fixed               self-generating mode: the server serves the\n"
      "                        fixed-cost grammar (--fixed /\n"
      "                        --backend=offline); compute references\n"
      "                        against it\n"
      "  --functions=N         self-generating mode: functions per\n"
      "                        connection (default 24)\n"
      "  --no-stats            skip the per-connection STATS check\n"
      "  --timeout=MILLIS      per-read socket timeout (default 60000)\n"
      "  --retry=N             retry a connection up to N times on\n"
      "                        retryable outcomes — ResourceExhausted\n"
      "                        sheds, torn streams — with jittered\n"
      "                        exponential backoff (default 0)\n"
      "  --allow-shed          accept attempts with shed blocks as long\n"
      "                        as every delivered block matched its\n"
      "                        reference (self-generating mode)\n"
      "  --print-stats         print each connection's STATS line to\n"
      "                        stdout\n"
      "  --help                this text\n",
      Argv0);
  return Exit;
}

bool parseArgs(int Argc, char **Argv, LoadOptions &Opts, int &ExitCode) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto Value = [&Arg](std::string_view Prefix) {
      return Arg.substr(Prefix.size());
    };
    if (Arg == "--help" || Arg == "-h") {
      ExitCode = usage(Argv[0], 0);
      return false;
    }
    if (startsWith(Arg, "--connect=")) {
      std::string_view V = Value("--connect=");
      std::size_t Colon = V.rfind(':');
      if (Colon == std::string_view::npos ||
          !parseUnsigned(V.substr(Colon + 1), Opts.Port) || Opts.Port == 0 ||
          Opts.Port > 65535) {
        std::fprintf(stderr, "invalid --connect (need HOST:PORT)\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
      Opts.Host = std::string(V.substr(0, Colon));
    } else if (startsWith(Arg, "--connections=")) {
      if (!parseUnsigned(Value("--connections="), Opts.Connections) ||
          Opts.Connections == 0) {
        std::fprintf(stderr, "invalid --connections value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--backend=")) {
      Expected<BackendKind> K = parseBackendKind(trim(Value("--backend=")));
      if (!K) {
        std::fprintf(stderr, "error: %s\n", K.message().c_str());
        ExitCode = usage(Argv[0], 2);
        return false;
      }
      Opts.Backend = *K;
      Opts.PickBackend = true;
    } else if (startsWith(Arg, "--corpus=")) {
      Opts.CorpusPath = std::string(Value("--corpus="));
    } else if (startsWith(Arg, "--reference=")) {
      Opts.ReferencePath = std::string(Value("--reference="));
    } else if (startsWith(Arg, "--target=")) {
      Opts.Target = std::string(Value("--target="));
    } else if (startsWith(Arg, "--grammars=")) {
      std::string_view V = Value("--grammars=");
      while (!V.empty()) {
        std::size_t Comma = V.find(',');
        std::string_view Name = trim(V.substr(0, Comma));
        if (!Name.empty())
          Opts.Grammars.emplace_back(Name);
        V = Comma == std::string_view::npos ? std::string_view()
                                            : V.substr(Comma + 1);
      }
      if (Opts.Grammars.empty()) {
        std::fprintf(stderr, "invalid --grammars (no names)\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (Arg == "--fixed") {
      Opts.ForceFixed = true;
    } else if (startsWith(Arg, "--functions=")) {
      if (!parseUnsigned(Value("--functions="), Opts.Functions) ||
          Opts.Functions == 0) {
        std::fprintf(stderr, "invalid --functions value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (Arg == "--no-stats") {
      Opts.Stats = false;
    } else if (startsWith(Arg, "--timeout=")) {
      if (!parseUnsigned(Value("--timeout="), Opts.TimeoutMillis)) {
        std::fprintf(stderr, "invalid --timeout value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (startsWith(Arg, "--retry=")) {
      if (!parseUnsigned(Value("--retry="), Opts.Retries)) {
        std::fprintf(stderr, "invalid --retry value\n");
        ExitCode = usage(Argv[0], 2);
        return false;
      }
    } else if (Arg == "--allow-shed") {
      Opts.AllowShed = true;
    } else if (Arg == "--print-stats") {
      Opts.PrintStats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      ExitCode = usage(Argv[0], 2);
      return false;
    }
  }
  if (Opts.Port == 0) {
    std::fprintf(stderr, "--connect is required\n");
    ExitCode = usage(Argv[0], 2);
    return false;
  }
  if (Opts.CorpusPath.empty() != Opts.ReferencePath.empty()) {
    std::fprintf(stderr, "--corpus and --reference go together\n");
    ExitCode = usage(Argv[0], 2);
    return false;
  }
  if (!Opts.Grammars.empty() && !Opts.CorpusPath.empty()) {
    std::fprintf(stderr, "--grammars is self-generating mode only (a file "
                         "corpus is single-grammar)\n");
    ExitCode = usage(Argv[0], 2);
    return false;
  }
  return true;
}

/// One connection's workload: the bytes to send and the reference blocks
/// to expect back. BlockAware means Blocks maps one-to-one onto submitted
/// functions (self-generating mode), so a shed record can be matched to
/// the exact block it skips; corpus replay treats the whole reference as
/// one opaque block, and only a shed-free attempt can validate.
struct ConnPlan {
  std::string Wire;
  std::vector<std::string> Blocks;
  bool BlockAware = false;
  /// Multi-tenant mode: send `GRAMMAR <this>` before anything else.
  std::string GrammarName;
};

/// Renders a corpus in the wire format (one s-expression line per root,
/// blank line between functions) — mirrors odburg-run's --dump-corpus.
std::string corpusToWire(const std::vector<ir::IRFunction> &Corpus,
                         const Grammar &G) {
  std::string Out;
  for (const ir::IRFunction &F : Corpus) {
    for (const ir::Node *Root : F.roots()) {
      Out += ir::toSExpr(Root, G);
      Out += '\n';
    }
    Out += '\n';
  }
  return Out;
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ps;
  Ps.reserve(Fns.size());
  for (ir::IRFunction &F : Fns)
    Ps.push_back(&F);
  return Ps;
}

/// Self-generating mode: a per-connection synthetic corpus with mixed
/// function sizes (profile and node budget cycle with the connection
/// index) and its locally computed reference assembly over \p G.
Expected<ConnPlan> makePlan(const LoadOptions &Opts, const Grammar &G,
                            const DynCostTable *Dyn, unsigned ConnIdx) {
  const std::vector<workload::Profile> &Profiles = workload::specProfiles();
  workload::Profile P = Profiles[ConnIdx % Profiles.size()];
  // Distinct seeds and sizes per connection: small, medium, and large
  // functions in the same run exercise the scheduler's interleaving.
  P.Seed += 1000 + ConnIdx;
  unsigned Nodes = 60 + (ConnIdx % 5) * 120;
  Expected<std::vector<ir::IRFunction>> Corpus =
      workload::generateBatch(P, G, Opts.Functions, Nodes);
  if (!Corpus)
    return Corpus.takeError();

  ConnPlan Plan;
  Plan.Wire = corpusToWire(*Corpus, G);

  pipeline::CompileSession::Options SOpts;
  // DP reference: byte-identity across backends holds for the same
  // grammar, and the DP session needs no table generation.
  SOpts.Backend = BackendKind::DP;
  Expected<std::unique_ptr<pipeline::CompileSession>> Session =
      pipeline::CompileSession::create(G, Dyn, SOpts);
  if (!Session)
    return Session.takeError();
  std::vector<ir::IRFunction *> Ps = pointers(*Corpus);
  std::vector<pipeline::CompileResult> Results =
      (*Session)->compileFunctions(Ps, /*Threads=*/1);
  Plan.BlockAware = true;
  Plan.Blocks.reserve(Results.size());
  for (const pipeline::CompileResult &R : Results) {
    if (!R.ok())
      return Error::make("reference compile failed: " + R.Diagnostic);
    Plan.Blocks.push_back(R.Asm);
  }
  return Plan;
}

/// Per-attempt classification: retryable failures are transient overload
/// outcomes (the next attempt may land clean); hard failures are
/// correctness violations no number of retries can fix.
struct ConnOutcome {
  bool Ok = false;
  bool Retryable = false; ///< Meaningful when !Ok.
  std::string Detail;
  std::uint64_t BytesIn = 0;
  unsigned ShedBlocks = 0; ///< Blocks the final attempt saw shed.
  unsigned Attempts = 1;   ///< Set by the retry wrapper.
  std::string StatsLine;   ///< Captured STATS reply, if any.
};

/// Reads exactly \p Want bytes (bounded by the socket timeout).
bool readExactly(Socket &S, std::string &Out, std::size_t Want) {
  char Buf[8192];
  while (Out.size() < Want) {
    std::size_t Chunk = std::min(sizeof(Buf), Want - Out.size());
    long N = S.readSome(Buf, Chunk);
    if (N <= 0)
      return false;
    Out.append(Buf, static_cast<std::size_t>(N));
  }
  return true;
}

/// Reads one '\n'-terminated line. Returns 1 on a line, 0 on orderly EOF
/// at a record boundary, -1 on a transport error, timeout, or EOF
/// mid-line (torn framing).
int readLineOr(Socket &S, std::string &Line) {
  Line.clear();
  char C;
  for (;;) {
    long N = S.readSome(&C, 1);
    if (N == 0)
      return Line.empty() ? 0 : -1;
    if (N < 0)
      return -1;
    if (C == '\n')
      return 1;
    Line.push_back(C);
  }
}

/// Extracts K from a `... seq=K ...` diagnostic record; false if absent.
bool parseSeqField(const std::string &Line, unsigned &Seq) {
  std::size_t At = Line.find("seq=");
  if (At == std::string::npos)
    return false;
  At += 4;
  Seq = 0;
  bool Any = false;
  while (At < Line.size() && Line[At] >= '0' && Line[At] <= '9') {
    Seq = Seq * 10 + static_cast<unsigned>(Line[At] - '0');
    ++At;
    Any = true;
  }
  return Any;
}

/// Whether the one-line STATS JSON carries \p Key at all. The tier
/// telemetry fields are doubles/booleans, so presence is the contract the
/// load generator can check without a JSON parser.
bool statsHasField(const std::string &Json, const std::string &Key) {
  return Json.find("\"" + Key + "\":") != std::string::npos;
}

/// Pulls an integer field out of the one-line STATS JSON; -1 if absent.
long long statsField(const std::string &Json, const std::string &Key) {
  std::size_t At = Json.find("\"" + Key + "\":");
  if (At == std::string::npos)
    return -1;
  At += Key.size() + 3;
  long long V = 0;
  bool Any = false;
  while (At < Json.size() && Json[At] >= '0' && Json[At] <= '9') {
    V = V * 10 + (Json[At] - '0');
    ++At;
    Any = true;
  }
  return Any ? V : -1;
}

/// One attempt at a full send/validate cycle on a fresh connection.
ConnOutcome runAttempt(const LoadOptions &Opts, const ConnPlan &Plan,
                       unsigned ConnIdx) {
  ConnOutcome Out;
  Out.Retryable = true; // Transport-level failures below are transient.
  Expected<Socket> S =
      Socket::connectTo(Opts.Host, static_cast<std::uint16_t>(Opts.Port));
  if (!S) {
    Out.Detail = S.message();
    return Out;
  }
  S->setRecvTimeout(Opts.TimeoutMillis);

  if (!Plan.GrammarName.empty()) {
    // The multi-tenant handshake must precede BACKEND and the corpus.
    // The server answers errors only, so nothing to read here.
    if (!S->writeAll("GRAMMAR " + Plan.GrammarName + "\n")) {
      Out.Detail = "GRAMMAR handshake write failed";
      return Out;
    }
  }
  if (Opts.PickBackend) {
    std::string Handshake =
        std::string("BACKEND ") + backendName(Opts.Backend) + "\n";
    if (!S->writeAll(Handshake)) {
      Out.Detail = "handshake write failed";
      return Out;
    }
  }
  if (!S->writeAll(Plan.Wire)) {
    Out.Detail = "corpus write failed";
    return Out;
  }

  // Walk the response record by record until every block is accounted
  // for — delivered and byte-compared, or shed. A shed record for block
  // K is enqueued at read time and the per-connection output queue is
  // FIFO, so it always travels ahead of the assembly of any later block:
  // when assembly arrives, it belongs to the smallest unaccounted index.
  const std::size_t NumBlocks = Plan.Blocks.size();
  std::vector<bool> Shed(NumBlocks, false);
  std::size_t Next = 0; // Smallest block neither delivered nor shed.
  unsigned WatermarkShed = 0, DeadlineShed = 0;
  std::string Line;
  while (Next < NumBlocks) {
    int R = readLineOr(*S, Line);
    if (R == 0) {
      Out.Detail = "connection ended with block " + std::to_string(Next) +
                   " of " + std::to_string(NumBlocks) + " unaccounted";
      return Out; // Retryable: the server (or a fault) severed the stream.
    }
    if (R < 0) {
      Out.Detail = "transport error or timeout mid-stream";
      return Out;
    }
    Out.BytesIn += Line.size() + 1;
    if (startsWith(Line, "ERROR ")) {
      unsigned Seq = 0;
      bool HasSeq = parseSeqField(Line, Seq);
      bool IsShed = startsWith(Line, "ERROR ResourceExhausted:");
      bool IsDeadline = startsWith(Line, "ERROR DeadlineExceeded:");
      if (IsShed && !HasSeq) {
        // Accept-time refusal: the whole connection was turned away.
        Out.Detail = "admission shed: " + Line;
        return Out;
      }
      if ((IsShed || IsDeadline) && HasSeq) {
        if (!Plan.BlockAware) {
          // Corpus replay has no block map to skip against; only a
          // clean attempt can validate, so back off and retry.
          Out.Detail = "shed under corpus replay: " + Line;
          return Out;
        }
        if (Seq >= NumBlocks || Seq < Next || Shed[Seq]) {
          Out.Retryable = false;
          Out.Detail = "bogus shed record: " + Line;
          return Out;
        }
        Shed[Seq] = true;
        ++(IsShed ? WatermarkShed : DeadlineShed);
        while (Next < NumBlocks && Shed[Next])
          ++Next;
        continue;
      }
      Out.Retryable = false;
      Out.Detail = "server diagnostic: " + Line;
      return Out;
    }
    // The first line of block Next's assembly.
    const std::string &Ref = Plan.Blocks[Next];
    std::string Got = Line + "\n";
    std::size_t Before = Got.size();
    if (Got.size() > Ref.size() || Ref.compare(0, Got.size(), Got) != 0) {
      Out.Retryable = false;
      Out.Detail = "block " + std::to_string(Next) +
                   " diverges from reference in its first line (connection " +
                   std::to_string(ConnIdx) + ")";
      return Out;
    }
    bool Full = readExactly(*S, Got, Ref.size());
    Out.BytesIn += Got.size() - Before;
    if (!Full) {
      Out.Detail = "short block " + std::to_string(Next) + ": got " +
                   std::to_string(Got.size()) + " of " +
                   std::to_string(Ref.size()) + " bytes";
      return Out; // Retryable: torn mid-stream.
    }
    if (Got != Ref) {
      std::size_t At = 0;
      while (At < Got.size() && Got[At] == Ref[At])
        ++At;
      Out.Retryable = false;
      Out.Detail = "block " + std::to_string(Next) +
                   " diverges from reference at byte " + std::to_string(At) +
                   " (connection " + std::to_string(ConnIdx) + ")";
      return Out;
    }
    ++Next;
    while (Next < NumBlocks && Shed[Next])
      ++Next;
  }
  Out.ShedBlocks = WatermarkShed + DeadlineShed;

  if (Opts.Stats) {
    // Every block is accounted for, so the out-of-band STATS reply is
    // the only thing left on the wire — no interleaving hazard.
    if (!S->writeAll(std::string_view("STATS\n"))) {
      Out.Detail = "STATS write failed";
      return Out;
    }
    if (readLineOr(*S, Line) != 1) {
      Out.Detail = "no STATS reply";
      return Out;
    }
    Out.BytesIn += Line.size() + 1;
    if (!startsWith(Line, "STATS {")) {
      Out.Retryable = false;
      Out.Detail = "unexpected STATS reply: " + Line;
      return Out;
    }
    Out.StatsLine = Line;
    long long Submitted = statsField(Line, "connSubmitted");
    long long Delivered = statsField(Line, "connDelivered");
    // Every frame the server accepted must be delivered by now (this side
    // has read every block), and watermark sheds are the only gap between
    // sent and accepted — deadline-expired frames were accepted and
    // delivered as their error record.
    bool Dead =
        Plan.BlockAware
            ? Submitted != static_cast<long long>(NumBlocks - WatermarkShed) ||
                  Delivered != Submitted
            : Submitted <= 0 || Delivered != Submitted;
    if (Dead) {
      Out.Retryable = false;
      Out.Detail = "dead STATS counters: " + Line;
      return Out;
    }
    // The warm-path tier telemetry must always be present — per-tier hit
    // rates plus the (adaptive or static) controller decisions.
    for (const char *Key :
         {"l1HitRate", "denseHitRate", "cacheHitRate", "adaptive",
          "tierL1On", "tierL1Ways", "tierDenseOn", "tierPromoteThreshold",
          "tierWindows", "tierReconfigs"})
      if (!statsHasField(Line, Key)) {
        Out.Retryable = false;
        Out.Detail = std::string("STATS missing tier field '") + Key +
                     "': " + Line;
        return Out;
      }
  }

  // Input done; expect orderly EOF, nothing extra on the wire.
  S->shutdownWrite();
  char C;
  long N = S->readSome(&C, 1);
  if (N != 0) {
    Out.Retryable = N < 0;
    Out.Detail = N > 0 ? std::string("unexpected trailing bytes")
                       : std::string("transport error at EOF");
    return Out;
  }
  if (Out.ShedBlocks && !Opts.AllowShed) {
    // The delivered subset matched, but the run demands full delivery —
    // only a clean attempt passes, so keep this retryable.
    Out.Detail = std::to_string(Out.ShedBlocks) + " of " +
                 std::to_string(NumBlocks) + " blocks shed";
    return Out;
  }
  Out.Ok = true;
  return Out;
}

/// Runs one connection to completion: up to 1 + Retries attempts, with
/// jittered exponential backoff between retryable failures
/// (deterministically seeded per connection index).
ConnOutcome runConnection(const LoadOptions &Opts, const ConnPlan &Plan,
                          unsigned ConnIdx) {
  RNG Jitter(0x6c6f6164ull * 2654435761ull + ConnIdx);
  ConnOutcome Out;
  for (unsigned Attempt = 0;; ++Attempt) {
    Out = runAttempt(Opts, Plan, ConnIdx);
    Out.Attempts = Attempt + 1;
    if (Out.Ok || !Out.Retryable || Attempt >= Opts.Retries)
      return Out;
    // ~50ms * 2^attempt, +/-50% jitter, capped so a deep retry ladder
    // stays within the same order as the server's recovery time.
    std::uint64_t Base =
        std::min<std::uint64_t>(50ull << std::min(Attempt, 5u), 1600);
    std::uint64_t Ms = Base / 2 + Jitter.nextBelow(Base + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  LoadOptions Opts;
  int ExitCode = 0;
  if (!parseArgs(Argc, Argv, Opts, ExitCode))
    return ExitCode;

  // Build every connection's plan up front: connect-time work should be
  // pure traffic, not corpus generation.
  std::vector<ConnPlan> Plans(Opts.Connections);
  if (!Opts.CorpusPath.empty()) {
    std::ostringstream Corpus, Reference;
    std::ifstream CIn(Opts.CorpusPath), RIn(Opts.ReferencePath);
    if (!CIn || !RIn) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   (!CIn ? Opts.CorpusPath : Opts.ReferencePath).c_str());
      return 2;
    }
    Corpus << CIn.rdbuf();
    Reference << RIn.rdbuf();
    ConnPlan Shared;
    Shared.Wire = Corpus.str();
    // One opaque block: the whole reference, delivered shed-free or not
    // at all (BlockAware stays false — no per-function map to skip with).
    std::string Ref = Reference.str();
    if (!Ref.empty())
      Shared.Blocks.push_back(std::move(Ref));
    // Every connection must end its stream at a function boundary.
    if (!Shared.Wire.empty() && Shared.Wire.back() != '\n')
      Shared.Wire += '\n';
    for (ConnPlan &P : Plans)
      P = Shared;
  } else {
    // One target per distinct grammar name: connection I runs grammar
    // Grammars[I % N] (just --target without --grammars) and computes its
    // references against that grammar — cross-grammar bleed on the server
    // side becomes a byte mismatch here.
    std::vector<std::string> Names = Opts.Grammars;
    if (Names.empty())
      Names.push_back(Opts.Target);
    std::map<std::string, std::unique_ptr<Target>> Targets;
    for (const std::string &Name : Names) {
      if (Targets.count(Name))
        continue;
      Expected<std::unique_ptr<Target>> TOrErr = makeTarget(Name);
      if (!TOrErr) {
        std::fprintf(stderr, "error: %s: %s\n", Name.c_str(),
                     TOrErr.message().c_str());
        return 2;
      }
      Targets.emplace(Name, std::move(*TOrErr));
    }
    // Mirror the server's lane-grammar rule: the offline lane (and a
    // --fixed server) serves the stripped grammar.
    bool Fixed = Opts.ForceFixed ||
                 (Opts.PickBackend && Opts.Backend == BackendKind::Offline);
    for (unsigned I = 0; I < Opts.Connections; ++I) {
      const std::string &Name = Names[I % Names.size()];
      Target &T = *Targets.at(Name);
      const Grammar &G = Fixed ? T.Fixed : T.G;
      const DynCostTable *Dyn = Fixed ? nullptr : &T.Dyn;
      Expected<ConnPlan> P = makePlan(Opts, G, Dyn, I);
      if (!P) {
        std::fprintf(stderr, "error: %s\n", P.message().c_str());
        return 2;
      }
      Plans[I] = std::move(*P);
      if (!Opts.Grammars.empty())
        Plans[I].GrammarName = Name;
    }
  }

  Stopwatch Wall;
  std::vector<ConnOutcome> Outcomes(Opts.Connections);
  std::vector<std::thread> Threads;
  Threads.reserve(Opts.Connections);
  for (unsigned I = 0; I < Opts.Connections; ++I)
    Threads.emplace_back([&, I] { Outcomes[I] = runConnection(Opts, Plans[I], I); });
  for (std::thread &T : Threads)
    T.join();
  double Ms = static_cast<double>(Wall.elapsedNs()) / 1e6;

  unsigned Failed = 0;
  std::uint64_t Bytes = 0, Sheds = 0, Retries = 0;
  for (unsigned I = 0; I < Opts.Connections; ++I) {
    Bytes += Outcomes[I].BytesIn;
    Sheds += Outcomes[I].ShedBlocks;
    Retries += Outcomes[I].Attempts - 1;
    if (Opts.PrintStats && !Outcomes[I].StatsLine.empty())
      std::printf("%s\n", Outcomes[I].StatsLine.c_str());
    if (!Outcomes[I].Ok) {
      ++Failed;
      std::fprintf(stderr, "odburg-load: connection %u FAILED (%u attempt%s, "
                           "%s): %s\n",
                   I, Outcomes[I].Attempts, Outcomes[I].Attempts == 1 ? "" : "s",
                   Outcomes[I].Retryable ? "retryable" : "hard",
                   Outcomes[I].Detail.c_str());
    }
  }
  std::fprintf(stderr,
               "odburg-load: %u connections%s — %u ok, %u failed, %llu "
               "bytes validated, %llu blocks shed, %llu retries in %.1f ms\n",
               Opts.Connections,
               Opts.PickBackend
                   ? (std::string(" (backend ") + backendName(Opts.Backend) +
                      ")")
                         .c_str()
                   : "",
               Opts.Connections - Failed, Failed,
               static_cast<unsigned long long>(Bytes),
               static_cast<unsigned long long>(Sheds),
               static_cast<unsigned long long>(Retries), Ms);
  return Failed ? 1 : 0;
}
