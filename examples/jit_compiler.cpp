//===- examples/jit_compiler.cpp - a JIT-style compilation loop --------------===//
//
// Part of the odburg project.
//
// Plays the role the CACAO second stage plays in the papers: compile a
// stream of methods (the MiniC corpus) through one persistent
// CompileSession and watch its automaton warm up — states are only
// created for the first few methods, after which labeling is pure cache
// hits and each method costs label + reduce + emit with no table growth.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"
#include "support/StringUtil.h"
#include "support/TablePrinter.h"
#include "targets/Target.h"
#include "workload/Corpus.h"

#include <cstdio>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::workload;

int main() {
  auto T = cantFail(targets::makeTarget("vm64"));
  CompileSession Session(*T);

  TablePrinter Table("JIT compilation with a persistent compile session "
                     "(target: vm64)");
  Table.setHeader({"method", "IR nodes", "asm instrs", "cost", "states total",
                   "new states", "hit rate %", "l1 hit %"});

  unsigned PrevStates = 0;
  for (const CorpusProgram &P : corpus()) {
    ir::IRFunction F = cantFail(compileCorpusProgram(P, T->G));
    CompileResult R = Session.compileFunction(F);
    if (!R.ok()) {
      std::fprintf(stderr, "error compiling %s: %s\n", P.Name.c_str(),
                   R.Diagnostic.c_str());
      return 1;
    }
    unsigned States = Session.automaton().numStates();
    // Nodes resolved from either cache level (the worker's private L1
    // micro-cache fronts the shared transition cache) over all nodes.
    double HitRate = 100.0 *
                     static_cast<double>(R.Stats.L1Hits + R.Stats.CacheHits) /
                     static_cast<double>(R.Stats.NodesLabeled);
    double L1Rate = R.Stats.L1Probes
                        ? 100.0 * static_cast<double>(R.Stats.L1Hits) /
                              static_cast<double>(R.Stats.L1Probes)
                        : 0.0;
    Table.addRow({P.Name, std::to_string(F.size()),
                  std::to_string(R.Instructions),
                  std::to_string(R.Sel.TotalCost.value()),
                  std::to_string(States),
                  std::to_string(States - PrevStates),
                  formatFixed(HitRate, 1), formatFixed(L1Rate, 1)});
    PrevStates = States;
  }
  Table.print();

  // Show the code for one small method, as a JIT log would.
  const CorpusProgram *Fact = findCorpusProgram("Fact");
  ir::IRFunction F = cantFail(compileCorpusProgram(*Fact, T->G));
  CompileResult R = Session.compileFunction(F);
  if (!R.ok()) {
    std::fprintf(stderr, "error compiling Fact: %s\n", R.Diagnostic.c_str());
    return 1;
  }
  std::printf("\ngenerated code for Fact:\n%s", R.Asm.c_str());
  return 0;
}
