//===- examples/jit_compiler.cpp - a JIT-style compilation loop --------------===//
//
// Part of the odburg project.
//
// Plays the role the CACAO second stage plays in the papers: feed a
// stream of methods (the MiniC corpus) through one persistent
// CompileService and watch its automaton warm up — states are only
// created for the first few methods, after which labeling is pure cache
// hits and each method costs label + reduce + emit with no table growth.
//
// Where the old batch loop compiled one method at a time, this is the
// service shape a real JIT has: methods are *submitted* as they arrive
// and the ordered streaming sink consumes each method's code the moment
// it is ready — while later methods are still queued or compiling. One
// worker keeps the warm-up narrative exact (each row's "new states" is
// attributable to its method); the API is the same at any pool size.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileService.h"
#include "support/StringUtil.h"
#include "support/TablePrinter.h"
#include "targets/Target.h"
#include "workload/Corpus.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::workload;

int main() {
  auto T = cantFail(targets::makeTarget("vm64"));

  TablePrinter Table("JIT compilation with a persistent compile service "
                     "(target: vm64)");
  Table.setHeader({"method", "IR nodes", "asm instrs", "cost", "states total",
                   "new states", "hit rate %", "l1 hit %"});

  // Lower the whole corpus up front (the "bytecode" arriving at the JIT);
  // the functions must outlive their in-flight compilations.
  std::vector<std::string> Names;
  std::vector<ir::IRFunction> Methods;
  for (const CorpusProgram &P : corpus()) {
    Names.push_back(P.Name);
    Methods.push_back(cantFail(compileCorpusProgram(P, T->G)));
  }

  // Declared before the options so the streaming sink can observe the
  // service's shared automaton; the sink only fires after submissions,
  // long after the pointer is set.
  std::unique_ptr<CompileService> Service;
  bool AnyFailed = false;
  unsigned PrevStates = 0;
  CompileService::Options Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 4; // Small bound: results stream while we submit.
  Opts.OnResult = [&](std::size_t Seq, const CompileResult &R) {
    if (Seq >= Names.size())
      return; // The demo submission after the table (Fact, below).
    if (!R.ok()) {
      std::fprintf(stderr, "error compiling %s: %s\n", Names[Seq].c_str(),
                   R.Diagnostic.c_str());
      AnyFailed = true;
      return;
    }
    // Fired in submission order from the worker thread; with one worker
    // the automaton's growth since the previous row belongs to this
    // method alone.
    unsigned States =
        static_cast<const OnDemandBackend &>(Service->backend())
            .automaton()
            .numStates();
    // Nodes resolved from any warm tier (the worker's private L1
    // micro-cache, the shared dense rows, the hashed cache) over all
    // nodes.
    double HitRate = 100.0 *
                     static_cast<double>(R.Stats.L1Hits + R.Stats.DenseHits +
                                         R.Stats.CacheHits) /
                     static_cast<double>(R.Stats.NodesLabeled);
    double L1Rate = R.Stats.L1Probes
                        ? 100.0 * static_cast<double>(R.Stats.L1Hits) /
                              static_cast<double>(R.Stats.L1Probes)
                        : 0.0;
    Table.addRow({Names[Seq], std::to_string(Methods[Seq].size()),
                  std::to_string(R.Instructions),
                  std::to_string(R.Sel.TotalCost.value()),
                  std::to_string(States),
                  std::to_string(States - PrevStates),
                  formatFixed(HitRate, 1), formatFixed(L1Rate, 1)});
    PrevStates = States;
  };
  Service = cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  for (ir::IRFunction &M : Methods)
    cantFail(Service->submit(M));
  Service->drain();
  Table.print();
  if (AnyFailed)
    return 1;

  // Show the code for one small method, as a JIT log would — the future
  // side of the API: submit, then block on exactly that result.
  const CorpusProgram *Fact = findCorpusProgram("Fact");
  ir::IRFunction F = cantFail(compileCorpusProgram(*Fact, T->G));
  std::future<CompileResult> Code = cantFail(Service->submit(F));
  CompileResult R = Code.get();
  if (!R.ok()) {
    std::fprintf(stderr, "error compiling Fact: %s\n", R.Diagnostic.c_str());
    return 1;
  }
  std::printf("\ngenerated code for Fact:\n%s", R.Asm.c_str());
  Service->shutdown();
  return 0;
}
