//===- examples/jit_compiler.cpp - a JIT-style compilation loop --------------===//
//
// Part of the odburg project.
//
// Plays the role the CACAO second stage plays in the papers: compile a
// stream of methods (the MiniC corpus) with one persistent on-demand
// automaton and watch it warm up — states are only created for the first
// few methods, after which labeling is pure cache hits.
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "select/Reducer.h"
#include "support/StringUtil.h"
#include "support/TablePrinter.h"
#include "targets/AsmEmitter.h"
#include "targets/Target.h"
#include "workload/Corpus.h"

#include <cstdio>

using namespace odburg;
using namespace odburg::workload;

int main() {
  auto T = cantFail(targets::makeTarget("vm64"));
  OnDemandAutomaton A(T->G, &T->Dyn);

  TablePrinter Table("JIT compilation with a persistent on-demand automaton "
                     "(target: vm64)");
  Table.setHeader({"method", "IR nodes", "asm instrs", "states total",
                   "new states", "hit rate %"});

  unsigned PrevStates = 0;
  for (const CorpusProgram &P : corpus()) {
    ir::IRFunction F = cantFail(compileCorpusProgram(P, T->G));
    SelectionStats Stats;
    A.labelFunction(F, &Stats);
    Selection S = cantFail(reduce(T->G, F, A, &T->Dyn));
    targets::AsmOutput Asm = cantFail(targets::emitAsm(T->G, F, S));
    double HitRate = 100.0 * static_cast<double>(Stats.CacheHits) /
                     static_cast<double>(Stats.CacheProbes);
    Table.addRow({P.Name, std::to_string(F.size()),
                  std::to_string(Asm.instructions()),
                  std::to_string(A.numStates()),
                  std::to_string(A.numStates() - PrevStates),
                  formatFixed(HitRate, 1)});
    PrevStates = A.numStates();
  }
  Table.print();

  // Show the code for one small method, as a JIT log would.
  const CorpusProgram *Fact = findCorpusProgram("Fact");
  ir::IRFunction F = cantFail(compileCorpusProgram(*Fact, T->G));
  A.labelFunction(F);
  Selection S = cantFail(reduce(T->G, F, A, &T->Dyn));
  targets::AsmOutput Asm = cantFail(targets::emitAsm(T->G, F, S));
  std::printf("\ngenerated code for Fact:\n%s", Asm.text().c_str());
  return 0;
}
