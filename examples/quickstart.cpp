//===- examples/quickstart.cpp - odburg in 60 lines --------------------------===//
//
// Part of the odburg project.
//
// The minimal end-to-end flow: write a tree grammar, build an IR tree,
// label it with the on-demand automaton, reduce, and look at the result.
// This is the running example of the paper (rules 1-6, Fig. 1-5).
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "grammar/GrammarParser.h"
#include "select/Reducer.h"

#include <cstdio>

using namespace odburg;

int main() {
  // 1. A machine description: burg-style rules with costs. Rule 6 is the
  //    read-modify-write pattern; `?memop` makes it apply only when the
  //    load and store address trees are identical.
  Grammar G = cantFail(parseGrammar(R"brg(
    %start stmt
    addr: reg              = 1 (0);
    reg:  Reg              = 2 (0);
    reg:  Load(addr)       = 3 (1);
    reg:  Plus(reg, reg)   = 4 (1);
    stmt: Store(addr, reg) = 5 (1);
    stmt: Store(addr, Plus(Load(addr), reg)) = 6 (1) ?memop;
  )brg"));

  // 2. Bind the dynamic-cost hook the grammar declares.
  std::unordered_map<std::string, DynCostFn> Hooks;
  Hooks["memop"] = [](const ir::Node &N) {
    if (N.numChildren() != 2 || N.child(1)->numChildren() < 1)
      return Cost::infinity();
    const ir::Node *Ld = N.child(1)->child(0);
    if (Ld->numChildren() != 1)
      return Cost::infinity();
    return ir::structurallyEqual(N.child(0), Ld->child(0))
               ? Cost::zero()
               : Cost::infinity();
  };
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));

  // 3. Build the subject tree: Store(r1, Plus(Load(r1), r2)) — "add r2 to
  //    the memory cell r1 points to".
  ir::IRFunction F;
  OperatorId Reg = G.findOperator("Reg");
  ir::Node *Dst = F.makeLeaf(Reg, 1);
  ir::Node *Src = F.makeLeaf(Reg, 1);
  SmallVector<ir::Node *, 1> LC{Src};
  ir::Node *Ld = F.makeNode(G.findOperator("Load"), LC);
  ir::Node *Inc = F.makeLeaf(Reg, 2);
  SmallVector<ir::Node *, 2> PC{Ld, Inc};
  ir::Node *Plus = F.makeNode(G.findOperator("Plus"), PC);
  SmallVector<ir::Node *, 2> SC{Dst, Plus};
  F.addRoot(F.makeNode(G.findOperator("Store"), SC));

  // 4. Label with the on-demand automaton and reduce.
  OnDemandAutomaton A(G, &Dyn);
  SelectionStats Stats;
  A.labelFunction(F, &Stats);
  Selection S = cantFail(reduce(G, F, A, &Dyn));

  // 5. Inspect the selected cover.
  std::printf("subject tree: %s\n",
              ir::toSExpr(F.roots()[0], G).c_str());
  std::printf("selected rules (bottom-up):");
  for (const Match &M : S.Matches)
    std::printf(" #%u", G.sourceRule(M.Source).ExtNumber);
  std::printf("\ntotal cost: %u (the RMW rule won: one instruction)\n",
              S.TotalCost.value());
  std::printf("automaton after one tree: %u states, %zu transitions, "
              "%llu cache probes, %llu states computed\n",
              A.numStates(), A.numTransitions(),
              static_cast<unsigned long long>(Stats.CacheProbes),
              static_cast<unsigned long long>(Stats.StatesComputed));
  return 0;
}
