//===- examples/automaton_explorer.cpp - look inside the automaton ------------===//
//
// Part of the odburg project.
//
// Developer tooling: labels a workload and dumps every automaton state
// that materialized — its operator, and per nonterminal the normalized
// cost and chosen rule. This is Fig. 5 of the paper, generated from live
// data. Optionally takes a grammar file path as argv[1] (leaf payloads are
// then random trees over that grammar's operators).
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "grammar/Analysis.h"
#include "grammar/GrammarParser.h"
#include "support/TablePrinter.h"
#include "targets/Target.h"
#include "workload/Corpus.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace odburg;

static void dumpStates(const Grammar &G, const OnDemandAutomaton &A) {
  std::printf("%u states materialized:\n", A.numStates());
  for (const State *S : A.stateTable().states()) {
    std::printf("  state %u [%s]:", S->Id, G.operatorName(S->Op).c_str());
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      if (S->costOf(Nt).isInfinite())
        continue;
      const NormRule &R = G.normRule(S->ruleOf(Nt));
      std::printf(" %s:c%u+d/r#%u", G.nonterminalName(Nt).c_str(),
                  S->costOf(Nt).value(),
                  G.sourceRule(R.Source).ExtNumber);
    }
    std::printf("\n");
  }
}

int main(int argc, char **argv) {
  if (argc > 1) {
    // Explore a user-provided grammar file.
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open grammar file '%s'\n", argv[1]);
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Expected<Grammar> G = parseGrammar(Buf.str());
    if (!G) {
      std::fprintf(stderr, "error: %s\n", G.message().c_str());
      return 1;
    }
    if (G->hasDynCosts()) {
      std::fprintf(stderr, "error: grammar files with dynamic-cost hooks "
                           "need bound hook functions; use the built-in "
                           "targets for that\n");
      return 1;
    }
    GrammarStats S = G->stats();
    std::printf("grammar: %u rules (%u in normal form), %u nonterminals, "
                "%u operators\n",
                S.SourceRules, S.NormRules, S.Nonterminals, S.Operators);
    GrammarDiagnostics D = analyzeGrammar(*G);
    if (D.Warnings.empty()) {
      std::printf("diagnostics: clean (all rules useful, all nonterminals "
                  "reachable and productive)\n");
    } else {
      for (const std::string &W : D.Warnings)
        std::printf("warning: %s\n", W.c_str());
    }
    return 0;
  }

  // Default: the vm64 target on one corpus program.
  auto T = cantFail(targets::makeTarget("vm64"));
  const workload::CorpusProgram *P = workload::findCorpusProgram("Sqrt");
  ir::IRFunction F = cantFail(workload::compileCorpusProgram(*P, T->G));
  OnDemandAutomaton A(T->G, &T->Dyn);
  SelectionStats Stats;
  A.labelFunction(F, &Stats);
  std::printf("labeled %s (%u IR nodes) for vm64: %llu probes, %llu hits, "
              "%llu states computed\n\n",
              P->Name.c_str(), F.size(),
              static_cast<unsigned long long>(Stats.CacheProbes),
              static_cast<unsigned long long>(Stats.CacheHits),
              static_cast<unsigned long long>(Stats.StatesComputed));
  dumpStates(T->G, A);
  std::printf("\n('cN+d' = delta-normalized cost, 'r#N' = source rule that\n"
              "starts the derivation; compare the paper's Fig. 5.)\n");
  return 0;
}
