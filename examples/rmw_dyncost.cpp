//===- examples/rmw_dyncost.cpp - what dynamic costs buy ----------------------===//
//
// Part of the odburg project.
//
// The motivating example of the whole line of work: `x = x + 1` can be one
// read-modify-write instruction, but only if the load and the store
// address the same location — a condition no fixed-cost tree grammar can
// express. This example selects the same statement shape with matching and
// non-matching addresses, with and without the dynamic-cost rules, and
// prints the resulting code.
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "select/Reducer.h"
#include "targets/AsmEmitter.h"
#include "targets/Target.h"

#include <cstdio>

using namespace odburg;
using namespace odburg::targets;

/// Builds Store(AddrL StoreOff, Add(Load(AddrL LoadOff), Const 1)).
static void buildIncrement(ir::IRFunction &F, const CanonicalOps &Ops,
                           std::int64_t StoreOff, std::int64_t LoadOff) {
  ir::Node *SAddr = F.makeLeaf(Ops.AddrL, StoreOff);
  ir::Node *LAddr = F.makeLeaf(Ops.AddrL, LoadOff);
  SmallVector<ir::Node *, 1> LC{LAddr};
  ir::Node *Ld = F.makeNode(Ops.Load, LC);
  ir::Node *One = F.makeLeaf(Ops.Const, 1);
  SmallVector<ir::Node *, 2> AC{Ld, One};
  ir::Node *Sum = F.makeNode(Ops.Add, AC);
  SmallVector<ir::Node *, 2> SC{SAddr, Sum};
  F.addRoot(F.makeNode(Ops.Store, SC));
}

static void show(const char *Title, const Grammar &G, const DynCostTable *Dyn,
                 std::int64_t StoreOff, std::int64_t LoadOff,
                 const CanonicalOps &Ops) {
  ir::IRFunction F;
  buildIncrement(F, Ops, StoreOff, LoadOff);
  OnDemandAutomaton A(G, Dyn);
  A.labelFunction(F);
  Selection S = cantFail(reduce(G, F, A, Dyn));
  AsmOutput Asm = cantFail(emitAsm(G, F, S));
  std::printf("%s (cost %u, %u instructions):\n%s\n", Title,
              S.TotalCost.value(), Asm.instructions(), Asm.text().c_str());
}

int main() {
  auto T = cantFail(makeTarget("x86"));
  CanonicalOps Ops = cantFail(resolveCanonicalOps(T->G));

  std::printf("statement: mem[a] = mem[b] + 1 on x86\n\n");
  show("same address (a == b), dynamic costs ON", T->G, &T->Dyn, 16, 16, Ops);
  show("different address (a != b), dynamic costs ON", T->G, &T->Dyn, 16, 24,
       Ops);
  show("same address, dynamic costs stripped (fixed-cost grammar)", T->Fixed,
       nullptr, 16, 16, Ops);

  std::printf("The RMW rule fires only in the first case: same code quality\n"
              "as lburg's dynamic costs, but the labeler is an automaton.\n");
  return 0;
}
