//===- examples/retarget.cpp - one program, five machine descriptions --------===//
//
// Part of the odburg project.
//
// Retargetability demo: the same MiniC program is selected for all five
// built-in targets. The IR is identical; only the grammar (and its
// dynamic-cost hooks) changes, which is the whole point of grammar-driven
// instruction selection.
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "frontend/Lowering.h"
#include "select/Reducer.h"
#include "support/TablePrinter.h"
#include "targets/AsmEmitter.h"
#include "targets/Target.h"

#include <cstdio>

using namespace odburg;

static const char *Source = R"(
// Sum an array, adding a bias to every element in place.
int a[8]; int i; int sum;
i = 0;
while (i < 8) { a[i] = a[i] + 1000; i = i + 1; }
sum = 0;
i = 0;
while (i < 8) { sum = sum + a[i]; i = i + 1; }
return sum;
)";

int main() {
  TablePrinter Table("One MiniC kernel selected for every target");
  Table.setHeader({"target", "IR nodes", "asm instrs", "cover cost",
                   "automaton states"});

  for (const std::string &Name : targets::targetNames()) {
    auto T = cantFail(targets::makeTarget(Name));
    ir::IRFunction F = cantFail(minic::compileMiniC(Source, T->G));
    OnDemandAutomaton A(T->G, &T->Dyn);
    A.labelFunction(F);
    Selection S = cantFail(reduce(T->G, F, A, &T->Dyn));
    targets::AsmOutput Asm = cantFail(targets::emitAsm(T->G, F, S));
    Table.addRow({Name, std::to_string(F.size()),
                  std::to_string(Asm.instructions()),
                  std::to_string(S.TotalCost.value()),
                  std::to_string(A.numStates())});
  }
  Table.print();

  // Print the x86 and mips code of the first loop body side by side in
  // sequence, so the addressing-mode / RMW differences are visible.
  for (const char *Name : {"x86", "mips"}) {
    auto T = cantFail(targets::makeTarget(Name));
    ir::IRFunction F = cantFail(minic::compileMiniC(Source, T->G));
    OnDemandAutomaton A(T->G, &T->Dyn);
    A.labelFunction(F);
    Selection S = cantFail(reduce(T->G, F, A, &T->Dyn));
    targets::AsmOutput Asm = cantFail(targets::emitAsm(T->G, F, S));
    std::printf("\n--- %s (%u instructions) ---\n%s", Name,
                Asm.instructions(), Asm.text().c_str());
  }
  return 0;
}
