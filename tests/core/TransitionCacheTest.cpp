//===- tests/core/TransitionCacheTest.cpp ------------------------------------===//
//
// Part of the odburg project.
//
// The transition cache's seqlock read path. Readers take no lock, so the
// property to establish is that a lookup racing inserts and table growth
// returns either a clean miss or the exact value that was inserted for
// that key — never a torn or stale-wrong answer — and that every key is
// found once its insert completes.
//
// The single-shard tests steer every key onto shard 0 through forced hash
// collisions (hashKey is exposed for exactly this), so all the races —
// lookup vs. insert, lookup vs. grow, insert vs. insert — happen on one
// seqlock. Run under -fsanitize=thread (cmake -DODBURG_SANITIZE=thread)
// to validate the memory ordering, not just the values.
//
//===----------------------------------------------------------------------===//

#include "core/TransitionCache.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

using namespace odburg;

namespace {

using Key = std::array<std::uint32_t, 2>;

/// Keys whose hash lands on shard \p Shard, so every operation contends
/// on one seqlock (and the shard grows several times: 64 slots seed, 3/4
/// load factor, Count keys => Count/64ish doublings).
std::vector<Key> keysOnShard(unsigned Shard, std::size_t Count) {
  std::vector<Key> Keys;
  std::uint32_t Salt = 0;
  while (Keys.size() < Count) {
    Key K{TransitionCache::packHeader(/*Op=*/1, /*NumChildren=*/1,
                                      /*NumDyn=*/0),
          Salt++};
    if ((TransitionCache::hashKey(K.data(), 2) &
         (TransitionCache::NumShards - 1)) == Shard)
      Keys.push_back(K);
  }
  return Keys;
}

} // namespace

TEST(TransitionCacheSeqlock, LookupFindsWhatInsertPublished) {
  TransitionCache C;
  std::vector<Key> Keys = keysOnShard(0, 500);
  for (std::size_t I = 0; I < Keys.size(); ++I) {
    EXPECT_EQ(C.lookup(Keys[I].data(), 2), InvalidState);
    C.insert(Keys[I].data(), 2, static_cast<StateId>(I));
  }
  // Everything survives the grows the 500 inserts forced.
  for (std::size_t I = 0; I < Keys.size(); ++I)
    EXPECT_EQ(C.lookup(Keys[I].data(), 2), static_cast<StateId>(I));
  EXPECT_EQ(C.size(), Keys.size());
}

TEST(TransitionCacheSeqlock, ConcurrentLookupsRacingInsertsOnOneShard) {
  TransitionCache C;
  const std::vector<Key> Keys = keysOnShard(0, 3000);

  std::atomic<std::size_t> Published{0};
  std::atomic<std::uint64_t> WrongValues{0};
  std::atomic<std::uint64_t> MissedPublished{0};
  std::atomic<bool> Stop{false};

  // Readers sweep all keys continuously. A key's lookup may miss while
  // its insert is in flight, but (a) a returned value must be the one
  // inserted for that key and (b) a key published before the sweep began
  // must never miss.
  auto Reader = [&] {
    while (!Stop.load(std::memory_order_acquire)) {
      std::size_t Floor = Published.load(std::memory_order_acquire);
      for (std::size_t I = 0; I < Keys.size(); ++I) {
        StateId V = C.lookup(Keys[I].data(), 2);
        if (V == InvalidState) {
          if (I < Floor)
            MissedPublished.fetch_add(1, std::memory_order_relaxed);
        } else if (V != static_cast<StateId>(I)) {
          WrongValues.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };

  // One writer publishes keys in order (insert-if-absent dedups make a
  // second writer redundant here; InsertRace below covers that).
  auto Writer = [&] {
    for (std::size_t I = 0; I < Keys.size(); ++I) {
      C.insert(Keys[I].data(), 2, static_cast<StateId>(I));
      Published.store(I + 1, std::memory_order_release);
    }
  };

  std::vector<std::thread> Threads;
  for (int R = 0; R < 4; ++R)
    Threads.emplace_back(Reader);
  std::thread W(Writer);
  W.join();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(WrongValues.load(), 0u);
  EXPECT_EQ(MissedPublished.load(), 0u);
  for (std::size_t I = 0; I < Keys.size(); ++I)
    EXPECT_EQ(C.lookup(Keys[I].data(), 2), static_cast<StateId>(I));
  EXPECT_EQ(C.size(), Keys.size());
}

TEST(TransitionCacheSeqlock, RacingInsertsOfSameKeysConverge) {
  // Two writers inserting the same key set (the racing-miss scenario of
  // real labeling: both compute the same canonical state) while readers
  // spin. Insert-if-absent must keep the table consistent: one entry per
  // key, the agreed value.
  TransitionCache C;
  const std::vector<Key> Keys = keysOnShard(0, 1500);

  std::atomic<std::uint64_t> WrongValues{0};
  std::atomic<bool> Stop{false};
  auto Reader = [&] {
    while (!Stop.load(std::memory_order_acquire))
      for (std::size_t I = 0; I < Keys.size(); ++I) {
        StateId V = C.lookup(Keys[I].data(), 2);
        if (V != InvalidState && V != static_cast<StateId>(I))
          WrongValues.fetch_add(1, std::memory_order_relaxed);
      }
  };
  auto Writer = [&] {
    for (std::size_t I = 0; I < Keys.size(); ++I)
      C.insert(Keys[I].data(), 2, static_cast<StateId>(I));
  };

  std::vector<std::thread> Threads;
  for (int R = 0; R < 2; ++R)
    Threads.emplace_back(Reader);
  std::thread W1(Writer), W2(Writer);
  W1.join();
  W2.join();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(WrongValues.load(), 0u);
  EXPECT_EQ(C.size(), Keys.size());
  for (std::size_t I = 0; I < Keys.size(); ++I)
    EXPECT_EQ(C.lookup(Keys[I].data(), 2), static_cast<StateId>(I));
}

TEST(TransitionCacheSeqlock, AllShardsStorm) {
  // Unfiltered keys spread over all shards: the common case, where
  // readers and writers mostly touch different seqlocks.
  TransitionCache C;
  std::vector<Key> Keys;
  for (std::uint32_t I = 0; I < 20000; ++I)
    Keys.push_back(Key{TransitionCache::packHeader(2, 1, 0), I});

  std::atomic<std::uint64_t> WrongValues{0};
  std::atomic<bool> Stop{false};
  auto Reader = [&] {
    while (!Stop.load(std::memory_order_acquire))
      for (std::size_t I = 0; I < Keys.size(); ++I) {
        StateId V = C.lookup(Keys[I].data(), 2);
        if (V != InvalidState && V != static_cast<StateId>(I))
          WrongValues.fetch_add(1, std::memory_order_relaxed);
      }
  };
  auto Writer = [&](bool Forward) {
    for (std::size_t N = 0; N < Keys.size(); ++N) {
      std::size_t I = Forward ? N : Keys.size() - 1 - N;
      C.insert(Keys[I].data(), 2, static_cast<StateId>(I));
    }
  };

  std::vector<std::thread> Threads;
  for (int R = 0; R < 2; ++R)
    Threads.emplace_back(Reader);
  std::thread W1(Writer, true), W2(Writer, false);
  W1.join();
  W2.join();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(WrongValues.load(), 0u);
  EXPECT_EQ(C.size(), Keys.size());
  EXPECT_GT(C.memoryBytes(), 0u);
}
