//===- tests/core/TierControllerTest.cpp --------------------------------------===//
//
// Part of the odburg project.
//
// The self-tuning warm-path controller. Contracts under test: with pinned
// probe costs every decision is a pure function of the observed counters
// (below break-even disables a tier, recovery probes re-enable it when
// the workload shifts back); decisions depend on what was observed, not
// on how the observations were chunked across calls or threads; a tier
// the session was built without is never "recovered" into existence; and
// — the invariant that makes runtime reconfiguration safe at all — any
// configuration the controller can pick labels byte-identically, even
// while it reconfigures under concurrent labeling (the TSan job runs
// this file).
//
//===----------------------------------------------------------------------===//

#include "core/TierController.h"

#include "pipeline/CompileSession.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

/// Pinned costs making the arithmetic easy: a dense hit saves a 10ns
/// hashed probe for a 2ns probe tax (break-even hit rate 0.2); an L1 hit
/// saves the downstream stack for a 1ns tax.
TierController::Options pinnedOpts() {
  TierController::Options Opts;
  Opts.PinnedCosts = {/*L1ProbeNs=*/1.0, /*DenseProbeNs=*/2.0,
                      /*HashedProbeNs=*/10.0};
  Opts.WindowNodes = 1000;
  Opts.RecoveryWindows = 2;
  return Opts;
}

/// One full observation window with the given per-tier counters.
SelectionStats window(std::uint64_t L1P, std::uint64_t L1H, std::uint64_t DnP,
                      std::uint64_t DnH) {
  SelectionStats S;
  S.NodesLabeled = 1000;
  S.L1Probes = L1P;
  S.L1Hits = L1H;
  S.DenseProbes = DnP;
  S.DenseHits = DnH;
  S.CacheProbes = L1P - L1H - DnH;
  S.CacheHits = S.CacheProbes;
  return S;
}

} // namespace

TEST(TierController, BelowBreakEvenDisablesDense) {
  // DnRate 0.1: expected saving 0.1 * 10 = 1ns < 2ns probe cost — the
  // dense tier loses money and must be switched off. The L1 at 90% easily
  // pays (0.9 * downstream >> 1ns) and stays.
  TierController C({true, 1, true}, 64, pinnedOpts());
  C.observe(window(1000, 900, 100, 10));
  EXPECT_TRUE(C.config().L1On);
  EXPECT_FALSE(C.config().DenseOn);
  EXPECT_EQ(C.decisions().Windows, 1u);
  EXPECT_EQ(C.decisions().Reconfigs, 1u);
}

TEST(TierController, AboveBreakEvenKeepsBothTiers) {
  // DnRate 0.6: saving 6ns > 2ns. L1Rate 0.9: well above break-even and
  // above the exploration threshold, so the ways setting stays put too.
  TierController C({true, 1, true}, 64, pinnedOpts());
  C.observe(window(1000, 900, 100, 60));
  EXPECT_TRUE(C.config().L1On);
  EXPECT_EQ(C.config().L1Ways, 1u);
  EXPECT_TRUE(C.config().DenseOn);
  EXPECT_EQ(C.decisions().Reconfigs, 0u);
}

TEST(TierController, BelowBreakEvenDisablesL1) {
  // Dense off in the initial config; downstream is the 10ns hashed probe.
  // L1Rate 0.05: saving 0.5ns < 1ns probe cost — off it goes.
  TierController::Options Opts = pinnedOpts();
  Opts.DenseExists = false;
  TierController C({true, 1, false}, 64, Opts);
  C.observe(window(1000, 50, 0, 0));
  EXPECT_FALSE(C.config().L1On);
  EXPECT_EQ(C.decisions().Reconfigs, 1u);
}

TEST(TierController, RecoveryProbeReenablesWhenWorkloadShifts) {
  TierController::Options Opts = pinnedOpts();
  Opts.L1Exists = false; // Isolate the dense tier's recovery cycle.
  TierController C({false, 1, true}, 64, Opts);

  // Window 1: cold dense tier, disabled.
  C.observe(window(0, 0, 100, 5));
  ASSERT_FALSE(C.config().DenseOn);

  // RecoveryWindows=2 cooloff windows tick down with the tier off (it
  // produces no probes while disabled).
  C.observe(window(0, 0, 0, 0));
  EXPECT_FALSE(C.config().DenseOn);
  C.observe(window(0, 0, 0, 0));
  EXPECT_FALSE(C.config().DenseOn);

  // Cooloff spent: the next boundary opens a recovery probe window.
  C.observe(window(0, 0, 0, 0));
  EXPECT_TRUE(C.config().DenseOn);

  // The workload shifted — the tier now hits 80% and the probe sticks.
  std::uint64_t FlapsBefore = C.decisions().Reconfigs;
  C.observe(window(0, 0, 1000, 800));
  EXPECT_TRUE(C.config().DenseOn);
  EXPECT_EQ(C.decisions().Reconfigs, FlapsBefore);

  // And it keeps paying in steady state.
  C.observe(window(0, 0, 1000, 800));
  EXPECT_TRUE(C.config().DenseOn);
}

TEST(TierController, FailedRecoveryProbeRevertsWithoutFlapping) {
  TierController::Options Opts = pinnedOpts();
  Opts.L1Exists = false;
  TierController C({false, 1, true}, 64, Opts);
  C.observe(window(0, 0, 100, 5)); // Disable (reconfig #1).
  std::uint64_t Flaps = C.decisions().Reconfigs;
  for (int Round = 0; Round < 3; ++Round) {
    C.observe(window(0, 0, 0, 0)); // Cooloff.
    C.observe(window(0, 0, 0, 0)); // Cooloff.
    C.observe(window(0, 0, 0, 0)); // Probe window opens.
    ASSERT_TRUE(C.config().DenseOn);
    C.observe(window(0, 0, 100, 5)); // Still cold: revert.
    ASSERT_FALSE(C.config().DenseOn);
  }
  // Failed probes are not configuration flaps.
  EXPECT_EQ(C.decisions().Reconfigs, Flaps);
}

TEST(TierController, AbsentTiersAreNeverRecovered) {
  // A session built without an L1 (or dense rows) must not have the
  // controller conjure one: the recovery path is gated on existence.
  TierController::Options Opts = pinnedOpts();
  Opts.L1Exists = false;
  Opts.DenseExists = false;
  TierController C({false, 1, false}, 64, Opts);
  for (int W = 0; W < 10; ++W) {
    C.observe(window(0, 0, 0, 0));
    EXPECT_FALSE(C.config().L1On);
    EXPECT_FALSE(C.config().DenseOn);
  }
  EXPECT_EQ(C.decisions().Reconfigs, 0u);
}

TEST(TierController, ColdDenseTierLowersPromoteThreshold) {
  // Paying but cold (rate 0.3 in [0.2, 0.5)): promote more aggressively,
  // halving toward the floor.
  TierController::Options Opts = pinnedOpts();
  Opts.MinPromoteThreshold = 8;
  TierController C({true, 1, true}, 64, Opts);
  C.observe(window(1000, 900, 100, 30));
  EXPECT_EQ(C.promoteThreshold(), 32u);
  C.observe(window(1000, 900, 100, 30));
  EXPECT_EQ(C.promoteThreshold(), 16u);
  C.observe(window(1000, 900, 100, 30));
  C.observe(window(1000, 900, 100, 30));
  EXPECT_EQ(C.promoteThreshold(), 8u); // Clamped at the floor.
}

TEST(TierController, DecisionsInvariantUnderObservationChunking) {
  // The same window fed as one delta, as many small deltas, or as
  // interleaved per-"worker" shares must close on the same decision —
  // this is what makes node-count windows thread-count-invariant for
  // uniform workloads.
  SelectionStats Full = window(1000, 900, 100, 10);

  TierController A({true, 1, true}, 64, pinnedOpts());
  A.observe(Full);

  TierController B({true, 1, true}, 64, pinnedOpts());
  for (int I = 0; I < 10; ++I) {
    SelectionStats Tenth;
    Tenth.NodesLabeled = Full.NodesLabeled / 10;
    Tenth.L1Probes = Full.L1Probes / 10;
    Tenth.L1Hits = Full.L1Hits / 10;
    Tenth.DenseProbes = Full.DenseProbes / 10;
    Tenth.DenseHits = Full.DenseHits / 10;
    B.observe(Tenth);
  }

  EXPECT_EQ(A.config().pack(), B.config().pack());
  EXPECT_EQ(A.decisions().Windows, B.decisions().Windows);
  EXPECT_EQ(A.decisions().Reconfigs, B.decisions().Reconfigs);
}

TEST(TierController, ObserveIsSafeFromConcurrentWorkers) {
  // Many threads hammer observe() while a reader polls config() and
  // decisions() — the TSan job's target. Decisions themselves are
  // workload-dependent here (window composition races by design); the
  // contract is memory safety plus monotonically advancing windows.
  TierController::Options Opts = pinnedOpts();
  Opts.WindowNodes = 256;
  TierController C({true, 1, true}, 64, Opts);

  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      (void)C.config();
      (void)C.decisions();
      (void)C.costModel();
    }
  });
  std::vector<std::thread> Workers;
  for (int W = 0; W < 4; ++W)
    Workers.emplace_back([&] {
      SelectionStats Delta = window(64, 48, 8, 4);
      Delta.NodesLabeled = 64;
      for (int I = 0; I < 2000; ++I)
        C.observe(Delta);
    });
  for (std::thread &T : Workers)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Reader.join();

  // The count of evaluated windows is unbounded below under contention —
  // the reader's costModel() holds EvalM, and on a single-core host every
  // crossing's try_lock can lose to it. The contract here is memory
  // safety under the race (the TSan job's target) plus liveness once the
  // contention is gone: one uncontended full window must evaluate.
  SelectionStats Final = window(64, 48, 8, 4);
  Final.NodesLabeled = Opts.WindowNodes;
  std::uint64_t Before = C.decisions().Windows;
  C.observe(Final);
  EXPECT_GT(C.decisions().Windows, Before);
}

TEST(TierController, MeasuredCostModelIsSane) {
  TierController::Costs C = TierController::measureProbeCosts();
  EXPECT_TRUE(C.valid());
  // The clamp guarantees nothing reads as free.
  EXPECT_GE(C.L1ProbeNs, 0.5);
  EXPECT_GE(C.DenseProbeNs, 0.5);
  EXPECT_GE(C.HashedProbeNs, 0.5);
}

namespace {

std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "gcc-like", "twolf-like"}) {
    const Profile *P = findProfile(Name);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/4, /*TargetNodes=*/800));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Fns)
    Ptrs.push_back(&F);
  return Ptrs;
}

} // namespace

TEST(TierController, AdaptiveLabelingIsByteIdenticalUnderReconfiguration) {
  // End-to-end: an adaptive session with a tiny window (so the controller
  // reconfigures repeatedly mid-run) over several threads must reproduce
  // the DP backend's assembly byte-for-byte on both grammars — the "every
  // tier is a pure accelerator" invariant under live reconfiguration,
  // with TSan watching the worker/controller interaction.
  auto T = cantFail(makeTarget("x86"));
  for (bool FullGrammar : {false, true}) {
    const Grammar &G = FullGrammar ? T->G : T->Fixed;
    const DynCostTable *Dyn = FullGrammar ? &T->Dyn : nullptr;
    std::vector<ir::IRFunction> Corpus = makeCorpus(G);
    std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

    CompileSession::Options DPOpts;
    DPOpts.Backend = BackendKind::DP;
    CompileSession DP(G, Dyn, DPOpts);
    std::string Ref = CompileSession::concatAsm(DP.compileFunctions(Ptrs, 2));

    CompileSession::Options Opts;
    Opts.Backend = BackendKind::OnDemand;
    Opts.BackendOpts.Adaptive = true;
    Opts.BackendOpts.AdaptiveOpts.WindowNodes = 512;
    Opts.BackendOpts.AdaptiveOpts.RecoveryWindows = 1;
    CompileSession Session(G, Dyn, Opts);
    for (unsigned Pass = 0; Pass < 4; ++Pass) {
      SessionStats Stats;
      std::vector<CompileResult> Results =
          Session.compileFunctions(Ptrs, 4, &Stats);
      for (const CompileResult &R : Results)
        ASSERT_TRUE(R.ok()) << R.Diagnostic;
      EXPECT_EQ(CompileSession::concatAsm(Results), Ref)
          << "pass " << Pass << " diverged under adaptive reconfiguration";
      EXPECT_TRUE(Stats.Tier.Adaptive);
    }
    // The tiny window over ~10k nodes/pass guarantees the controller
    // actually ran — this is a reconfiguration test, not a no-op.
    const auto &B = static_cast<const OnDemandBackend &>(Session.backend());
    ASSERT_NE(B.tierController(), nullptr);
    EXPECT_GT(B.tierController()->decisions().Windows, 0u);
  }
}

TEST(TierController, StaticConfigMatrixIsByteIdentical) {
  // Disabling or re-enabling any tier statically never changes the
  // emitted assembly — the acceptance clause behind the controller's
  // freedom to pick any cell at any time.
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  std::string Ref;
  bool HaveRef = false;
  for (bool UseL1 : {true, false})
    for (bool Dense : {true, false})
      for (unsigned Ways : {1u, 2u}) {
        CompileSession::Options Opts;
        Opts.BackendOpts.UseL1Cache = UseL1;
        Opts.BackendOpts.L1Ways = Ways;
        Opts.BackendOpts.Automaton.DenseRows = Dense;
        CompileSession Session(T->G, &T->Dyn, Opts);
        std::vector<CompileResult> Results =
            Session.compileFunctions(Ptrs, 2);
        for (const CompileResult &R : Results)
          ASSERT_TRUE(R.ok()) << R.Diagnostic;
        std::string Asm = CompileSession::concatAsm(Results);
        if (!HaveRef) {
          HaveRef = true;
          Ref = std::move(Asm);
        } else {
          EXPECT_EQ(Asm, Ref)
              << "l1=" << UseL1 << " ways=" << Ways << " dense=" << Dense;
        }
      }
}
