//===- tests/core/OnDemandTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
// The central correctness tests of the reproduction: the on-demand
// automaton must select exactly what the DP labeler selects, while doing
// its work through the transition cache.
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

using test::expectEquivalent;

TEST(OnDemand, MatchesDPOnPaperExample) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  DPLabeling Ref = DPLabeler(G).label(F);
  OnDemandAutomaton A(G);
  A.labelFunction(F);
  expectEquivalent(G, F, Ref, A);
}

TEST(OnDemand, PaperExampleMaterializesFourStates) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  OnDemandAutomaton A(G);
  A.labelFunction(F);
  // One state each for Reg, Load, Plus, Store: the three Reg leaves share
  // a state (that is the whole point of hash consing).
  EXPECT_EQ(A.numStates(), 4u);
  EXPECT_EQ(A.numTransitions(), 4u);
}

TEST(OnDemand, SecondLabelingIsAllHits) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  OnDemandAutomaton A(G);
  SelectionStats Cold;
  A.labelFunction(F, &Cold);
  unsigned StatesAfterCold = A.numStates();
  EXPECT_LT(Cold.CacheHits, Cold.CacheProbes);

  SelectionStats Warm;
  A.labelFunction(F, &Warm);
  EXPECT_EQ(A.numStates(), StatesAfterCold); // Nothing new.
  EXPECT_EQ(Warm.CacheHits, Warm.CacheProbes); // Pure fast path.
  EXPECT_EQ(Warm.StatesComputed, 0u);
}

TEST(OnDemand, DynCostsSelectRmwOnlyWhenAddressesMatch) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  OnDemandAutomaton A(G, &Dyn);
  NonterminalId Stmt = G.findNonterminal("stmt");

  ir::IRFunction F1;
  ir::Node *Same = test::buildStoreTree(F1, G, 1, 1, 2);
  A.labelFunction(F1);
  EXPECT_EQ(G.sourceRule(G.normRule(A.ruleFor(*Same, Stmt)).Source).ExtNumber,
            6u);

  ir::IRFunction F2;
  ir::Node *Diff = test::buildStoreTree(F2, G, 1, 7, 2);
  A.labelFunction(F2);
  EXPECT_EQ(G.sourceRule(G.normRule(A.ruleFor(*Diff, Stmt)).Source).ExtNumber,
            5u);
}

TEST(OnDemand, DynOutcomesSplitStates) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  OnDemandAutomaton A(G, &Dyn);

  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2); // memop applicable
  test::buildStoreTree(F, G, 1, 7, 2); // memop not applicable
  A.labelFunction(F);
  // Store now owns two states (the constrained one and its fallback), like
  // states 15 and 14 of the paper's Fig. 5; Reg/Load/Plus contribute one
  // state each.
  EXPECT_EQ(A.numStates(), 5u);
  EXPECT_EQ(A.numTransitions(), 5u);
}

TEST(OnDemand, MatchesDPUnderDynCosts) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  test::buildStoreTree(F, G, 1, 7, 2);
  test::buildStoreTree(F, G, 3, 3, 3);
  DPLabeling Ref = DPLabeler(G, &Dyn).label(F);
  OnDemandAutomaton A(G, &Dyn);
  A.labelFunction(F);
  expectEquivalent(G, F, Ref, A);
}

class OnDemandProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnDemandProperty, MatchesDPOnRandomTrees) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  ir::IRFunction F;
  test::RandomTreeBuilder B(G, GetParam());
  for (int I = 0; I < 8; ++I)
    F.addRoot(B.build(F, 40));
  DPLabeling Ref = DPLabeler(G, &Dyn).label(F);
  OnDemandAutomaton A(G, &Dyn);
  A.labelFunction(F);
  expectEquivalent(G, F, Ref, A);
}

TEST_P(OnDemandProperty, SelectionsIdenticalToDP) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  // Roots must derive stmt: wrap Store-free random value subtrees in
  // stores (a Store below a value position has no derivation).
  test::RandomTreeBuilder B(G, GetParam() ^ 0xABCDEF, 8, "Store");
  OperatorId RegOp = G.findOperator("Reg");
  OperatorId StoreOp = G.findOperator("Store");
  for (int I = 0; I < 4; ++I) {
    ir::Node *Dst = F.makeLeaf(RegOp, I);
    ir::Node *Val = B.build(F, 30);
    SmallVector<ir::Node *, 2> C{Dst, Val};
    F.addRoot(F.makeNode(StoreOp, C));
  }
  DPLabeling Ref = DPLabeler(G).label(F);
  Selection SRef = cantFail(reduce(G, F, Ref));
  OnDemandAutomaton A(G);
  A.labelFunction(F);
  Selection SAuto = cantFail(reduce(G, F, A));
  ASSERT_EQ(SRef.Matches.size(), SAuto.Matches.size());
  for (std::size_t I = 0; I < SRef.Matches.size(); ++I) {
    EXPECT_EQ(SRef.Matches[I].Where, SAuto.Matches[I].Where);
    EXPECT_EQ(SRef.Matches[I].Source, SAuto.Matches[I].Source);
  }
  EXPECT_EQ(SRef.TotalCost, SAuto.TotalCost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnDemandProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(OnDemand, StatesAreSharedAcrossFunctions) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  OnDemandAutomaton A(G);
  ir::IRFunction F1;
  test::buildStoreTree(F1, G, 1, 1, 2);
  A.labelFunction(F1);
  unsigned After1 = A.numStates();
  ir::IRFunction F2;
  test::buildStoreTree(F2, G, 5, 5, 6); // Same shape, different payloads.
  SelectionStats S2;
  A.labelFunction(F2, &S2);
  EXPECT_EQ(A.numStates(), After1);
  EXPECT_EQ(S2.CacheHits, S2.CacheProbes);
}

TEST(OnDemand, CacheDisabledStillCorrect) {
  // Ablation mode: without the transition cache every node recomputes its
  // state, but hash consing still unifies them and selection is unchanged.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  DPLabeling Ref = DPLabeler(G).label(F);
  OnDemandAutomaton::Options Opts;
  Opts.UseTransitionCache = false;
  OnDemandAutomaton A(G, nullptr, Opts);
  SelectionStats S;
  A.labelFunction(F, &S);
  expectEquivalent(G, F, Ref, A);
  EXPECT_EQ(S.CacheProbes, 0u);
  EXPECT_EQ(S.StatesComputed, F.size()); // Recomputed per node.
  EXPECT_EQ(A.numStates(), 4u);          // Still hash-consed.
  EXPECT_EQ(A.numTransitions(), 0u);
}

TEST(OnDemand, MemoryGrowsWithStates) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  OnDemandAutomaton A(G);
  std::size_t Empty = A.memoryBytes();
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  A.labelFunction(F);
  EXPECT_GT(A.memoryBytes(), Empty);
}

namespace {

/// A grammar whose relative costs never converge: each Un level widens the
/// a/b cost gap by one, so every depth materializes a fresh state and the
/// automaton grows without bound. This is exactly the degenerate shape the
/// Options::MaxStates safety bound exists for.
const char *divergentGrammarText() {
  return R"(
    %start a
    a: Leaf = 1 (0);
    b: Leaf = 2 (1);
    a: Un(a) = 3 (1);
    b: Un(b) = 4 (2);
    a: Pair(a,b) = 5 (1);
  )";
}

/// Builds Un(Un(...Un(Leaf))) of \p Depth levels and roots it.
void buildUnChain(ir::IRFunction &F, const Grammar &G, unsigned Depth) {
  ir::Node *N = F.makeLeaf(G.findOperator("Leaf"));
  OperatorId Un = G.findOperator("Un");
  for (unsigned I = 0; I < Depth; ++I) {
    SmallVector<ir::Node *, 1> C{N};
    N = F.makeNode(Un, C);
  }
  F.addRoot(N);
}

} // namespace

TEST(OnDemandOptions, StateLimitStopsDivergentGrammar) {
  Grammar G = cantFail(parseGrammar(divergentGrammarText()));
  ir::IRFunction F;
  buildUnChain(F, G, 64);
  OnDemandAutomaton::Options Opts;
  Opts.MaxStates = 16;
  OnDemandAutomaton A(G, nullptr, Opts);
  EXPECT_DEATH(A.labelFunction(F), "state limit");
}

TEST(OnDemandOptions, StateLimitAlsoGuardsTheNoCachePath) {
  // The bound must hold on the ablation path too: with the cache off every
  // node recomputes its state, but growth is still capped.
  Grammar G = cantFail(parseGrammar(divergentGrammarText()));
  ir::IRFunction F;
  buildUnChain(F, G, 64);
  OnDemandAutomaton::Options Opts;
  Opts.MaxStates = 16;
  Opts.UseTransitionCache = false;
  OnDemandAutomaton A(G, nullptr, Opts);
  EXPECT_DEATH(A.labelFunction(F), "state limit");
}

TEST(OnDemandOptions, TightButSufficientStateLimitIsUntouched) {
  // The paper example needs exactly four states; a limit of four must not
  // fire (the bound is "exceeded", not "reached").
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  OnDemandAutomaton::Options Opts;
  Opts.MaxStates = 4;
  OnDemandAutomaton A(G, nullptr, Opts);
  A.labelFunction(F);
  EXPECT_EQ(A.numStates(), 4u);
}

TEST(OnDemandOptions, ConvergentDeepChainStaysBounded) {
  // Sanity check on the divergence diagnosis: the same chain shape over
  // the running example's grammar converges to a handful of states, so a
  // small limit suffices no matter how deep the input is.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  OperatorId Load = G.findOperator("Load");
  ir::Node *N = F.makeLeaf(G.findOperator("Reg"), 1);
  for (unsigned I = 0; I < 128; ++I) {
    SmallVector<ir::Node *, 1> C{N};
    N = F.makeNode(Load, C);
  }
  SmallVector<ir::Node *, 2> C{F.makeLeaf(G.findOperator("Reg"), 0), N};
  F.addRoot(F.makeNode(G.findOperator("Store"), C));
  OnDemandAutomaton::Options Opts;
  Opts.MaxStates = 8;
  OnDemandAutomaton A(G, nullptr, Opts);
  A.labelFunction(F);
  EXPECT_LE(A.numStates(), 8u);
}

TEST(OnDemandOptions, CacheDisabledMatchesDPUnderDynCosts) {
  // The UseTransitionCache=false ablation must stay correct when dynamic
  // costs are in play: hook outcomes feed the state computation directly
  // rather than through a memoized transition.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2); // memop applicable
  test::buildStoreTree(F, G, 1, 7, 2); // memop not applicable
  DPLabeling Ref = DPLabeler(G, &Dyn).label(F);
  OnDemandAutomaton::Options Opts;
  Opts.UseTransitionCache = false;
  OnDemandAutomaton A(G, &Dyn, Opts);
  SelectionStats S;
  A.labelFunction(F, &S);
  expectEquivalent(G, F, Ref, A);
  EXPECT_EQ(S.CacheProbes, 0u);
  EXPECT_EQ(S.StatesComputed, S.NodesLabeled);
  EXPECT_EQ(A.numTransitions(), 0u);
  EXPECT_EQ(A.numStates(), 5u); // Same five states as the cached run.
}
