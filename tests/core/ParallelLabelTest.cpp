//===- tests/core/ParallelLabelTest.cpp --------------------------------------===//
//
// Part of the odburg project.
//
// Concurrent batch labeling over one shared automaton. The contract: the
// thread count is a pure throughput knob — rules and normalized costs per
// node are bit-identical to a serial pass, and the state table converges
// to the same set of states (hash consing is order-independent).
//
// Run these under -fsanitize=thread (cmake -DODBURG_SANITIZE=thread) to
// validate the sharded tables' synchronization.
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"

#include "select/DPLabeler.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <vector>

using namespace odburg;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

/// A mixed corpus: three profiles with different operator mixes and RMW
/// rates, several functions each, small enough to keep the suite fast.
std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "mcf-like", "art-like"}) {
    const Profile *P = findProfile(Name);
    EXPECT_NE(P, nullptr);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/4, /*TargetNodes=*/1500));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Fns)
    Ptrs.push_back(&F);
  return Ptrs;
}

/// The corpus-wide labeling, one labelingSnapshot per function, so a
/// later relabeling can be compared against it bit for bit.
using Snapshot = std::vector<std::vector<std::pair<RuleId, std::uint32_t>>>;

Snapshot snapshot(const Grammar &G, const std::vector<ir::IRFunction> &Fns,
                  const Labeling &L) {
  Snapshot Snap;
  for (const ir::IRFunction &F : Fns)
    Snap.push_back(labelingSnapshot(F, G.numNonterminals(), L));
  return Snap;
}

} // namespace

TEST(ParallelLabel, FourThreadsBitIdenticalToSerial) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  OnDemandAutomaton Serial(T->G, &T->Dyn);
  SelectionStats SerialStats;
  Serial.labelFunctions(Ptrs, 1, &SerialStats);
  Snapshot Ref = snapshot(T->G, Corpus, Serial);

  OnDemandAutomaton Parallel(T->G, &T->Dyn);
  SelectionStats ParStats;
  Parallel.labelFunctions(Ptrs, 4, &ParStats);
  Snapshot Got = snapshot(T->G, Corpus, Parallel);

  EXPECT_EQ(Ref, Got);
  // Same corpus, same content-addressed states: the tables converge to the
  // same size regardless of interleaving.
  EXPECT_EQ(Serial.numStates(), Parallel.numStates());
  EXPECT_EQ(Serial.numTransitions(), Parallel.numTransitions());
  EXPECT_EQ(SerialStats.NodesLabeled, ParStats.NodesLabeled);
}

TEST(ParallelLabel, MatchesDPLabelerPerFunction) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  // DP references first: DPLabeling owns its table (indexed by node id),
  // so the automaton relabeling the nodes afterwards does not disturb it.
  std::vector<DPLabeling> Refs;
  for (ir::IRFunction &F : Corpus)
    Refs.push_back(DPLabeler(T->G, &T->Dyn).label(F));

  OnDemandAutomaton A(T->G, &T->Dyn);
  A.labelFunctions(Ptrs, 4);
  for (std::size_t I = 0; I < Corpus.size(); ++I)
    test::expectEquivalent(T->G, Corpus[I], Refs[I], A);
}

TEST(ParallelLabel, WarmSecondPassIsAllHitsUnderThreads) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  OnDemandAutomaton A(T->G, &T->Dyn);
  A.labelFunctions(Ptrs, 4);
  unsigned ColdStates = A.numStates();
  std::size_t ColdTransitions = A.numTransitions();

  SelectionStats Warm;
  A.labelFunctions(Ptrs, 4, &Warm);
  EXPECT_EQ(A.numStates(), ColdStates);
  EXPECT_EQ(A.numTransitions(), ColdTransitions);
  EXPECT_EQ(Warm.StatesComputed, 0u);
  EXPECT_EQ(Warm.CacheHits, Warm.CacheProbes);
}

TEST(ParallelLabel, ManySmallFunctionsStress) {
  // Lots of tiny functions maximize hand-out churn and shard contention;
  // eight workers on the shared automaton must still converge to the same
  // state set as a serial pass.
  auto T = cantFail(makeTarget("vm64"));
  const Profile *P = findProfile("gzip-like");
  ASSERT_NE(P, nullptr);
  std::vector<ir::IRFunction> Corpus =
      cantFail(generateBatch(*P, T->G, /*Count=*/64, /*TargetNodes=*/120));
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  OnDemandAutomaton Serial(T->G, &T->Dyn);
  Serial.labelFunctions(Ptrs, 1);
  Snapshot Ref = snapshot(T->G, Corpus, Serial);

  OnDemandAutomaton Parallel(T->G, &T->Dyn);
  Parallel.labelFunctions(Ptrs, 8);
  EXPECT_EQ(Ref, snapshot(T->G, Corpus, Parallel));
  EXPECT_EQ(Serial.numStates(), Parallel.numStates());
}

// Threads=0 resolves to hardware concurrency inside labelFunctions; the
// resolved count is not externally observable, so this asserts the
// contract's outcome: the auto-selected count labels the whole corpus.
TEST(ParallelLabel, ZeroThreadsAutoSelectsAndLabelsWholeCorpus) {
  auto T = cantFail(makeTarget("mips"));
  const Profile *P = findProfile("art-like");
  ASSERT_NE(P, nullptr);
  std::vector<ir::IRFunction> Corpus =
      cantFail(generateBatch(*P, T->G, /*Count=*/3, /*TargetNodes=*/400));
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  OnDemandAutomaton A(T->G, &T->Dyn);
  SelectionStats Stats;
  A.labelFunctions(Ptrs, 0, &Stats);
  std::uint64_t Total = 0;
  for (const ir::IRFunction &F : Corpus)
    Total += F.size();
  EXPECT_EQ(Stats.NodesLabeled, Total);
}
