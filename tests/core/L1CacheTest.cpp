//===- tests/core/L1CacheTest.cpp --------------------------------------------===//
//
// Part of the odburg project.
//
// The per-worker L1 transition micro-cache. Contracts under test: the L1
// is a pure accelerator — labels, rules and costs are bit-identical with
// and without it, under any collision pattern; its hit/miss counters are
// monotone and consistent with the shared TransitionCache's counters
// (every L1 miss on a cacheable key becomes exactly one shared probe);
// epoch invalidation on rebinding ensures a scratch reused across
// automatons never serves stale state ids; and per-worker L1s under
// concurrent labeling (the ParallelLabelTest pattern — run under TSan)
// preserve bit-identical results.
//
//===----------------------------------------------------------------------===//

#include "core/L1Cache.h"

#include "core/OnDemandAutomaton.h"
#include "select/DPLabeler.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "mcf-like", "art-like"}) {
    const Profile *P = findProfile(Name);
    EXPECT_NE(P, nullptr);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/4, /*TargetNodes=*/1200));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

using Snapshot = std::vector<std::vector<std::pair<RuleId, std::uint32_t>>>;

Snapshot snapshot(const Grammar &G, const std::vector<ir::IRFunction> &Fns,
                  const Labeling &L) {
  Snapshot Snap;
  for (const ir::IRFunction &F : Fns)
    Snap.push_back(labelingSnapshot(F, G.numNonterminals(), L));
  return Snap;
}

} // namespace

TEST(L1Cache, UnitInsertLookup) {
  L1TransitionCache C(/*Log2Entries=*/4);
  std::uint32_t KeyA[3] = {1, 2, 3};
  std::uint32_t KeyB[3] = {1, 2, 4};
  std::uint64_t HA = TransitionCache::hashKey(KeyA, 3);
  std::uint64_t HB = TransitionCache::hashKey(KeyB, 3);
  EXPECT_EQ(C.lookup(KeyA, 3, HA), InvalidState);
  C.insert(KeyA, 3, HA, 7);
  C.insert(KeyB, 3, HB, 9);
  EXPECT_EQ(C.lookup(KeyA, 3, HA), 7u);
  EXPECT_EQ(C.lookup(KeyB, 3, HB), 9u);
}

TEST(L1Cache, ForcedCollisionEvictsNeverLies) {
  // A one-entry cache: every distinct key collides with every other. The
  // cache may evict at will but must never return a wrong value.
  L1TransitionCache C(/*Log2Entries=*/1);
  std::uint32_t Keys[8][2];
  std::uint64_t Hashes[8];
  for (std::uint32_t I = 0; I < 8; ++I) {
    Keys[I][0] = 100 + I;
    Keys[I][1] = 200 + I;
    Hashes[I] = TransitionCache::hashKey(Keys[I], 2);
  }
  for (std::uint32_t Round = 0; Round < 4; ++Round) {
    for (std::uint32_t I = 0; I < 8; ++I) {
      StateId Hit = C.lookup(Keys[I], 2, Hashes[I]);
      // A hit must be exactly the value this key was inserted with.
      if (Hit != InvalidState) {
        EXPECT_EQ(Hit, I);
      }
      C.insert(Keys[I], 2, Hashes[I], I);
      EXPECT_EQ(C.lookup(Keys[I], 2, Hashes[I]), I);
    }
  }
}

TEST(L1Cache, TwoWayHoldsBothKeysOfACollidingPair) {
  // One set of two ways: every key lands in the same set, which thrashes
  // a direct-mapped cache but lets two hot keys coexist in the 2-way
  // variant.
  L1TransitionCache C(/*Log2Entries=*/1, /*Ways=*/2);
  EXPECT_EQ(C.ways(), 2u);
  std::uint32_t K1[2] = {1, 10}, K2[2] = {2, 20}, K3[2] = {3, 30};
  std::uint64_t H1 = TransitionCache::hashKey(K1, 2);
  std::uint64_t H2 = TransitionCache::hashKey(K2, 2);
  std::uint64_t H3 = TransitionCache::hashKey(K3, 2);

  C.insert(K1, 2, H1, 101);
  C.insert(K2, 2, H2, 102);
  EXPECT_EQ(C.lookup(K1, 2, H1), 101u);
  EXPECT_EQ(C.lookup(K2, 2, H2), 102u);

  // A third key evicts the round-robin victim (the first way), never
  // both residents.
  C.insert(K3, 2, H3, 103);
  EXPECT_EQ(C.lookup(K3, 2, H3), 103u);
  EXPECT_EQ(C.lookup(K2, 2, H2), 102u);
  EXPECT_EQ(C.lookup(K1, 2, H1), InvalidState);

  // Re-inserting an already-resident key updates in place; the other
  // resident survives.
  C.insert(K3, 2, H3, 104);
  EXPECT_EQ(C.lookup(K3, 2, H3), 104u);
  EXPECT_EQ(C.lookup(K2, 2, H2), 102u);
}

TEST(L1Cache, TwoWayForcedCollisionEvictsNeverLies) {
  // The one-entry thrash test of the direct-mapped path, on the 2-way
  // variant: one set, eight keys, arbitrary eviction allowed — but a hit
  // must always be the value its key was inserted with.
  L1TransitionCache C(/*Log2Entries=*/1, /*Ways=*/2);
  std::uint32_t Keys[8][2];
  std::uint64_t Hashes[8];
  for (std::uint32_t I = 0; I < 8; ++I) {
    Keys[I][0] = 100 + I;
    Keys[I][1] = 200 + I;
    Hashes[I] = TransitionCache::hashKey(Keys[I], 2);
  }
  for (std::uint32_t Round = 0; Round < 4; ++Round) {
    for (std::uint32_t I = 0; I < 8; ++I) {
      StateId Hit = C.lookup(Keys[I], 2, Hashes[I]);
      if (Hit != InvalidState) {
        EXPECT_EQ(Hit, I);
      }
      C.insert(Keys[I], 2, Hashes[I], I);
      EXPECT_EQ(C.lookup(Keys[I], 2, Hashes[I]), I);
    }
  }
}

TEST(L1Cache, TwoWayRebindInvalidatesBothWays) {
  L1TransitionCache C(/*Log2Entries=*/1, /*Ways=*/2);
  C.bindTo(1);
  std::uint32_t K1[2] = {1, 10}, K2[2] = {2, 20};
  std::uint64_t H1 = TransitionCache::hashKey(K1, 2);
  std::uint64_t H2 = TransitionCache::hashKey(K2, 2);
  C.insert(K1, 2, H1, 7);
  C.insert(K2, 2, H2, 8);
  C.bindTo(2);
  EXPECT_EQ(C.lookup(K1, 2, H1), InvalidState);
  EXPECT_EQ(C.lookup(K2, 2, H2), InvalidState);
}

TEST(L1Cache, SameSlotDifferentLengthMisses) {
  // Two keys that share a prefix but differ in length must never alias,
  // even when direct-mapping puts them in the same entry.
  L1TransitionCache C(/*Log2Entries=*/1);
  std::uint32_t Short[2] = {5, 6};
  std::uint32_t Long[3] = {5, 6, 0};
  std::uint64_t HS = TransitionCache::hashKey(Short, 2);
  std::uint64_t HL = TransitionCache::hashKey(Long, 3);
  C.insert(Short, 2, HS, 11);
  EXPECT_EQ(C.lookup(Long, 3, HL), InvalidState);
}

TEST(L1Cache, RebindInvalidatesAllEntries) {
  L1TransitionCache C(/*Log2Entries=*/4);
  C.bindTo(1);
  std::uint32_t Key[2] = {1, 2};
  std::uint64_t H = TransitionCache::hashKey(Key, 2);
  C.insert(Key, 2, H, 42);
  EXPECT_EQ(C.lookup(Key, 2, H), 42u);
  // Rebinding to the same owner keeps entries; a new owner drops them.
  C.bindTo(1);
  EXPECT_EQ(C.lookup(Key, 2, H), 42u);
  C.bindTo(2);
  EXPECT_EQ(C.lookup(Key, 2, H), InvalidState);
}

TEST(L1Cache, GenerationTokensAreNeverRecycled) {
  // The owner token is a generation counter, not `this`: a destroyed
  // automaton's address can be reused by the very next allocation, so a
  // scratch that outlives its automaton must still rebind-invalidate.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  std::uint64_t First, Second;
  {
    OnDemandAutomaton A(G);
    First = A.generation();
  }
  {
    OnDemandAutomaton B(G);
    Second = B.generation();
  }
  EXPECT_NE(First, Second);
  EXPECT_NE(First, 0u);
  EXPECT_NE(Second, 0u);
}

TEST(L1Cache, ScratchSurvivesAutomatonReplacementAtSameAddress) {
  // The concrete replay of the recycled-address hazard: label through an
  // L1 against automaton A, destroy A, construct B (frequently at A's
  // old address), relabel the same function against B. B's labeling must
  // be correct — its state ids come from its own (fresh, differently
  // ordered) table, not from the L1's memories of A.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  test::buildStoreTree(F, G, 2, 9, 4);
  DPLabeling Ref = DPLabeler(G).label(F);

  L1TransitionCache L1;
  auto A = std::make_unique<OnDemandAutomaton>(G);
  A->labelFunction(F, &L1, nullptr);
  A.reset();

  // Seed B's table in a different order so any stale L1 id would visibly
  // disagree, then label the original function through the reused L1.
  auto B = std::make_unique<OnDemandAutomaton>(G);
  ir::IRFunction Other;
  test::buildStoreTree(Other, G, 7, 5, 6);
  B->labelFunction(Other, nullptr, nullptr);
  B->labelFunction(F, &L1, nullptr);
  test::expectEquivalent(G, F, Ref, *B);
}

TEST(L1Cache, OversizedKeysAreNotCacheable) {
  EXPECT_TRUE(L1TransitionCache::cacheable(L1TransitionCache::MaxKeyWords));
  EXPECT_FALSE(
      L1TransitionCache::cacheable(L1TransitionCache::MaxKeyWords + 1));
}

TEST(L1Cache, LabelingIdenticalWithTinyAndDefaultL1) {
  // Forced collisions/evictions (a 2-entry L1) against the paper's
  // running example: rules and costs must match labeling without any L1.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn = cantFail(DynCostTable::build(G, test::runningExampleHooks()));

  std::vector<ir::IRFunction> Corpus(4);
  for (std::uint64_t I = 0; I < Corpus.size(); ++I) {
    test::RandomTreeBuilder B(G, /*Seed=*/I + 1, /*PayloadRange=*/4, "Store");
    for (int R = 0; R < 5; ++R) {
      SmallVector<ir::Node *, 2> C{
          Corpus[I].makeLeaf(G.findOperator("Reg"), R),
          B.build(Corpus[I], 30)};
      Corpus[I].addRoot(Corpus[I].makeNode(G.findOperator("Store"), C));
    }
  }

  OnDemandAutomaton Plain(G, &Dyn);
  Snapshot Ref;
  for (ir::IRFunction &F : Corpus) {
    Plain.labelFunction(F);
    Ref.push_back(labelingSnapshot(F, G.numNonterminals(), Plain));
  }

  for (auto [Log2, Ways] :
       {std::pair{1u, 1u}, {10u, 1u}, {1u, 2u}, {10u, 2u}}) {
    OnDemandAutomaton A(G, &Dyn);
    L1TransitionCache L1(Log2, Ways);
    SelectionStats Stats;
    Snapshot Got;
    for (ir::IRFunction &F : Corpus) {
      A.labelFunction(F, &L1, &Stats);
      Got.push_back(labelingSnapshot(F, G.numNonterminals(), A));
    }
    EXPECT_EQ(Got, Ref) << "L1 log2 size " << Log2 << " ways " << Ways;
    EXPECT_LE(Stats.L1Hits, Stats.L1Probes);
    // Every cacheable L1 miss went to the dense tier or the shared cache;
    // nothing is counted twice. (All running-example keys fit inline:
    // header + <=2 children + <=1 dyn outcome.)
    EXPECT_EQ(Stats.L1Probes, Stats.NodesLabeled);
    EXPECT_EQ(Stats.CacheProbes,
              Stats.L1Probes - Stats.L1Hits - Stats.DenseHits);
  }
}

TEST(L1Cache, CountersMonotoneAndConsistentWithSharedCache) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);

  OnDemandAutomaton A(T->G, &T->Dyn);
  L1TransitionCache L1; // Default size.
  SelectionStats Total;
  std::uint64_t LastProbes = 0, LastHits = 0;
  for (int Pass = 0; Pass < 3; ++Pass) {
    for (ir::IRFunction &F : Corpus)
      A.labelFunction(F, &L1, &Total);
    // Monotone: the cumulative counters never step backwards.
    EXPECT_GE(Total.L1Probes, LastProbes);
    EXPECT_GE(Total.L1Hits, LastHits);
    LastProbes = Total.L1Probes;
    LastHits = Total.L1Hits;
    EXPECT_LE(Total.L1Hits, Total.L1Probes);
    // Consistency across the tiers: every node hit the L1, hit a dense
    // row, or probed the shared cache (keys too long for the L1 skip it
    // and fall through to the lower tiers directly).
    EXPECT_EQ(Total.NodesLabeled,
              Total.L1Hits + Total.DenseHits + Total.CacheProbes);
    EXPECT_GE(Total.L1Probes, Total.L1Hits);
  }

  // Warm single-function pass: after labeling F once with this L1, an
  // immediate relabel of the same function hits the L1 for every
  // cacheable key and computes nothing.
  std::uint64_t TransitionsBefore = A.numTransitions();
  SelectionStats Warm;
  A.labelFunction(*(&Corpus[0]), &L1, &Warm);
  EXPECT_EQ(Warm.StatesComputed, 0u);
  EXPECT_EQ(Warm.CacheHits, Warm.CacheProbes);
  EXPECT_EQ(A.numTransitions(), TransitionsBefore);
  EXPECT_GT(Warm.L1Hits, 0u);
}

TEST(L1Cache, ScratchReboundAcrossAutomatonsStaysCorrect) {
  // The dangerous reuse: one L1 serving automaton A, then automaton B over
  // a *different* grammar whose state ids mean different things. The
  // rebind epoch-invalidates, so B must label exactly as if the L1 were
  // fresh.
  auto TX = cantFail(makeTarget("x86"));
  auto TM = cantFail(makeTarget("mips"));
  std::vector<ir::IRFunction> CX = makeCorpus(TX->G);
  std::vector<ir::IRFunction> CM = makeCorpus(TM->G);

  OnDemandAutomaton AX(TX->G, &TX->Dyn);
  OnDemandAutomaton AM(TM->G, &TM->Dyn);
  OnDemandAutomaton AMRef(TM->G, &TM->Dyn);

  L1TransitionCache Shared;
  for (ir::IRFunction &F : CX)
    AX.labelFunction(F, &Shared, nullptr);

  L1TransitionCache Fresh;
  for (std::size_t I = 0; I < CM.size(); ++I) {
    AM.labelFunction(CM[I], &Shared, nullptr);
    Snapshot Got{labelingSnapshot(CM[I], TM->G.numNonterminals(), AM)};
    AMRef.labelFunction(CM[I], &Fresh, nullptr);
    Snapshot Want{labelingSnapshot(CM[I], TM->G.numNonterminals(), AMRef)};
    EXPECT_EQ(Got, Want) << "function " << I;
  }
}

TEST(L1Cache, PerWorkerL1sUnderConcurrencyBitIdentical) {
  // The ParallelLabelTest pattern with a private L1 per worker — the TSan
  // target for the L1 path: all shared-cache traffic goes through the
  // seqlock, the L1s are worker-local, results must be bit-identical to a
  // serial pass without L1s.
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);

  OnDemandAutomaton Serial(T->G, &T->Dyn);
  for (ir::IRFunction &F : Corpus)
    Serial.labelFunction(F);
  Snapshot Ref = snapshot(T->G, Corpus, Serial);

  OnDemandAutomaton Parallel(T->G, &T->Dyn);
  constexpr unsigned NumWorkers = 4;
  std::atomic<std::size_t> Next{0};
  std::vector<SelectionStats> Stats(NumWorkers);
  auto Work = [&](unsigned W) {
    L1TransitionCache L1; // Worker-private, like CompileSession's scratch.
    std::size_t I;
    while ((I = Next.fetch_add(1, std::memory_order_relaxed)) < Corpus.size())
      Parallel.labelFunction(Corpus[I], &L1, &Stats[W]);
  };
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < NumWorkers; ++W)
    Workers.emplace_back(Work, W);
  for (std::thread &Th : Workers)
    Th.join();

  EXPECT_EQ(snapshot(T->G, Corpus, Parallel), Ref);
  EXPECT_EQ(Serial.numStates(), Parallel.numStates());
  SelectionStats Sum;
  for (const SelectionStats &S : Stats)
    Sum += S;
  EXPECT_EQ(Sum.NodesLabeled, Sum.L1Hits + Sum.DenseHits + Sum.CacheProbes);
}
