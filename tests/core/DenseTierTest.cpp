//===- tests/core/DenseTierTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
// The adaptive dense-row transition tier. Contracts under test: the tier
// is a pure accelerator — labels, rules and costs are bit-identical with
// dense rows on and off, serial and under promotion races (the TSan
// target); operators with dynamic-cost hooks are permanently ineligible;
// rows promote only after the hot-counter threshold and then serve
// direct-indexed hits; row regrowth retires (never frees) superseded
// arrays and the memory accounting reports live + retired bytes so
// memory benches stay honest; and the byte budget stops promotion
// without affecting correctness.
//
//===----------------------------------------------------------------------===//

#include "core/DenseTransitionTier.h"

#include "core/OnDemandAutomaton.h"
#include "pipeline/CompileSession.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "mcf-like", "art-like"}) {
    const Profile *P = findProfile(Name);
    EXPECT_NE(P, nullptr);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/4, /*TargetNodes=*/1200));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

using Snapshot = std::vector<std::vector<std::pair<RuleId, std::uint32_t>>>;

Snapshot snapshot(const Grammar &G, const std::vector<ir::IRFunction> &Fns,
                  const Labeling &L) {
  Snapshot Snap;
  for (const ir::IRFunction &F : Fns)
    Snap.push_back(labelingSnapshot(F, G.numNonterminals(), L));
  return Snap;
}

} // namespace

TEST(DenseTier, EligibilityFollowsArityAndDynRules) {
  // Fixed grammar: every unary/binary operator is eligible, leaves never.
  Grammar Fixed = cantFail(parseGrammar(test::runningExampleFixedText()));
  DenseTransitionTier TFixed(Fixed, {});
  EXPECT_FALSE(TFixed.eligible(Fixed.findOperator("Reg"))); // Leaf.
  EXPECT_TRUE(TFixed.eligible(Fixed.findOperator("Load")));
  EXPECT_TRUE(TFixed.eligible(Fixed.findOperator("Plus")));
  EXPECT_TRUE(TFixed.eligible(Fixed.findOperator("Store")));

  // Full grammar: Store carries the ?memop hook — its outcomes are part
  // of the transition key, so Store can never be row-indexed.
  Grammar Full = cantFail(parseGrammar(test::runningExampleText()));
  DenseTransitionTier TFull(Full, {});
  EXPECT_TRUE(TFull.eligible(Full.findOperator("Load")));
  EXPECT_FALSE(TFull.eligible(Full.findOperator("Store")));
}

TEST(DenseTier, PromotesAfterThresholdThenBackfills) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  DenseTransitionTier::Options Opts;
  Opts.PromoteThreshold = 3;
  DenseTransitionTier T(G, Opts);
  OperatorId Load = G.findOperator("Load");
  std::uint32_t Child[1] = {5};

  // Below the threshold: resolutions only count; no row, no hits.
  T.noteResolved(Load, 1, Child, 42, /*StateCountHint=*/10);
  T.noteResolved(Load, 1, Child, 42, 10);
  EXPECT_EQ(T.lookup(Load, 1, Child), InvalidState);
  EXPECT_EQ(T.numRows(), 0u);

  // Crossing it: the row is built and the trigger transition published.
  T.noteResolved(Load, 1, Child, 42, 10);
  EXPECT_EQ(T.lookup(Load, 1, Child), 42u);
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_EQ(T.promotions(), 1u);

  // Another child of the same row backfills on first resolution — the
  // whole row is hot, not just one entry.
  std::uint32_t Other[1] = {6};
  EXPECT_EQ(T.lookup(Load, 1, Other), InvalidState);
  T.noteResolved(Load, 1, Other, 43, 10);
  EXPECT_EQ(T.lookup(Load, 1, Other), 43u);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(DenseTier, BinaryRowsAreKeyedByLeftState) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  DenseTransitionTier::Options Opts;
  Opts.PromoteThreshold = 1;
  DenseTransitionTier T(G, Opts);
  OperatorId Plus = G.findOperator("Plus");

  std::uint32_t K34[2] = {3, 4};
  T.noteResolved(Plus, 2, K34, 9, 10);
  EXPECT_EQ(T.lookup(Plus, 2, K34), 9u);

  // Same right child, different left: a different row, still cold.
  std::uint32_t K24[2] = {2, 4};
  EXPECT_EQ(T.lookup(Plus, 2, K24), InvalidState);
  T.noteResolved(Plus, 2, K24, 11, 10);
  EXPECT_EQ(T.lookup(Plus, 2, K24), 11u);
  EXPECT_EQ(T.numRows(), 2u);

  // Same left, different right: same row, lazily backfilled.
  std::uint32_t K35[2] = {3, 5};
  EXPECT_EQ(T.lookup(Plus, 2, K35), InvalidState);
  T.noteResolved(Plus, 2, K35, 12, 10);
  EXPECT_EQ(T.lookup(Plus, 2, K35), 12u);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(DenseTier, RegrowthRetiresOldArraysAndKeepsEntries) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  DenseTransitionTier::Options Opts;
  Opts.PromoteThreshold = 1;
  DenseTransitionTier T(G, Opts);
  OperatorId Load = G.findOperator("Load");

  std::uint32_t Small[1] = {5};
  T.noteResolved(Load, 1, Small, 42, /*StateCountHint=*/10);
  EXPECT_EQ(T.lookup(Load, 1, Small), 42u);
  std::size_t BytesBefore = T.memoryBytes();
  EXPECT_EQ(T.retiredBytes(), 0u);

  // A child far beyond the row's coverage forces a regrow: the old array
  // is retired (still reader-reachable), its entries are carried over,
  // and the accounting reports both.
  std::uint32_t Big[1] = {1000};
  EXPECT_EQ(T.lookup(Load, 1, Big), InvalidState);
  T.noteResolved(Load, 1, Big, 77, 10);
  EXPECT_EQ(T.lookup(Load, 1, Big), 77u);
  EXPECT_EQ(T.lookup(Load, 1, Small), 42u) << "entries survive regrowth";
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_GT(T.retiredBytes(), 0u);
  EXPECT_GT(T.memoryBytes(), BytesBefore);
  EXPECT_GT(T.memoryBytes(), T.retiredBytes());
}

TEST(DenseTier, ByteBudgetStopsPromotionNotLookup) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  DenseTransitionTier::Options Opts;
  Opts.PromoteThreshold = 1;
  Opts.MaxBytes = 1; // No row can ever fit.
  DenseTransitionTier T(G, Opts);
  OperatorId Load = G.findOperator("Load");
  std::uint32_t Child[1] = {5};
  for (int I = 0; I < 16; ++I)
    T.noteResolved(Load, 1, Child, 42, 10);
  EXPECT_EQ(T.lookup(Load, 1, Child), InvalidState);
  EXPECT_EQ(T.numRows(), 0u);
  EXPECT_EQ(T.promotions(), 0u);
}

TEST(DenseTier, LabelingBitIdenticalDenseOnAndOff) {
  // The pure-accelerator contract on a real target: aggressive promotion
  // (threshold 1) against the same corpus labeled without the tier.
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);

  OnDemandAutomaton::Options Off;
  Off.DenseRows = false;
  OnDemandAutomaton Plain(T->G, &T->Dyn, Off);
  for (ir::IRFunction &F : Corpus)
    Plain.labelFunction(F);
  Snapshot Ref = snapshot(T->G, Corpus, Plain);

  OnDemandAutomaton::Options On;
  On.DensePromoteThreshold = 1;
  OnDemandAutomaton Dense(T->G, &T->Dyn, On);
  SelectionStats Stats;
  for (int Pass = 0; Pass < 3; ++Pass)
    for (ir::IRFunction &F : Corpus)
      Dense.labelFunction(F, nullptr, &Stats);
  EXPECT_EQ(snapshot(T->G, Corpus, Dense), Ref);
  EXPECT_EQ(Plain.numStates(), Dense.numStates());

  // The tier must have really served hits, and the three-tier accounting
  // must cover every node exactly once (no L1 here).
  ASSERT_NE(Dense.denseTier(), nullptr);
  EXPECT_GT(Stats.DenseHits, 0u);
  EXPECT_GT(Dense.denseTier()->numRows(), 0u);
  EXPECT_EQ(Stats.NodesLabeled, Stats.DenseHits + Stats.CacheProbes);

  // Warm relabel: everything resolves in the dense tier or the hashed
  // cache; nothing is recomputed.
  SelectionStats Warm;
  Dense.labelFunction(Corpus[0], nullptr, &Warm);
  EXPECT_EQ(Warm.StatesComputed, 0u);
  EXPECT_EQ(Warm.CacheHits, Warm.CacheProbes);
}

TEST(DenseTier, DynCostOperatorsBypassTheTier) {
  // On the running example the only binary operators are Plus and Store;
  // with ?memop on Store, dense probes can only come from Load/Plus and
  // dyn evaluations still happen per node.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  test::buildStoreTree(F, G, 2, 9, 4);

  OnDemandAutomaton::Options Opts;
  Opts.DensePromoteThreshold = 1;
  OnDemandAutomaton A(G, &Dyn, Opts);
  SelectionStats Stats;
  for (int Pass = 0; Pass < 8; ++Pass)
    A.labelFunction(F, nullptr, &Stats);

  ASSERT_NE(A.denseTier(), nullptr);
  EXPECT_FALSE(A.denseTier()->eligible(G.findOperator("Store")));
  // Store nodes keep evaluating their hook on every pass — the tier never
  // short-circuits a dynamic cost.
  EXPECT_EQ(Stats.DynCostEvals,
            Stats.NodesLabeled / F.size() * 2 /*Store nodes*/);
}

TEST(DenseTier, AutomatonAndSessionMemoryAccountDenseRows) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed);
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Corpus)
    Ptrs.push_back(&F);

  pipeline::CompileSession::Options SOpts;
  SOpts.BackendOpts.Automaton.DensePromoteThreshold = 1;
  pipeline::CompileSession Session(T->Fixed, nullptr, SOpts);
  pipeline::SessionStats Stats;
  Session.compileFunctions(Ptrs, 2, &Stats);
  Session.compileFunctions(Ptrs, 2, &Stats);

  const OnDemandAutomaton &A = Session.automaton();
  ASSERT_NE(A.denseTier(), nullptr);
  ASSERT_GT(A.denseTier()->numRows(), 0u);
  // The automaton's footprint includes the tier (live + retired rows),
  // and the session surfaces the same number.
  EXPECT_GT(A.denseTier()->memoryBytes(), 0u);
  EXPECT_GE(A.memoryBytes(), A.denseTier()->memoryBytes());
  EXPECT_EQ(Stats.BackendBytes, Session.backend().memoryBytes());
  EXPECT_EQ(A.memoryBytes(), Session.backend().memoryBytes());
}

TEST(DenseTier, RacingPromotionStaysBitIdentical) {
  // The TSan target: many workers race promotion of the same rows (a
  // threshold of 2 promotes mid-flight on every hot row) while others
  // read them, against one shared automaton. Labels must be bit-identical
  // to a serial dense-off pass, across several passes so readers hit rows
  // in every promotion state.
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);

  OnDemandAutomaton::Options Off;
  Off.DenseRows = false;
  OnDemandAutomaton Serial(T->G, &T->Dyn, Off);
  for (ir::IRFunction &F : Corpus)
    Serial.labelFunction(F);
  Snapshot Ref = snapshot(T->G, Corpus, Serial);

  OnDemandAutomaton::Options On;
  On.DensePromoteThreshold = 2;
  OnDemandAutomaton Shared(T->G, &T->Dyn, On);
  constexpr unsigned NumWorkers = 4;
  constexpr unsigned NumPasses = 3;
  std::vector<SelectionStats> Stats(NumWorkers);
  for (unsigned Pass = 0; Pass < NumPasses; ++Pass) {
    std::atomic<std::size_t> Next{0};
    auto Work = [&](unsigned W) {
      L1TransitionCache L1; // Worker-private, as in the pipeline.
      std::size_t I;
      while ((I = Next.fetch_add(1, std::memory_order_relaxed)) <
             Corpus.size())
        Shared.labelFunction(Corpus[I], &L1, &Stats[W]);
    };
    std::vector<std::thread> Workers;
    for (unsigned W = 0; W < NumWorkers; ++W)
      Workers.emplace_back(Work, W);
    for (std::thread &Th : Workers)
      Th.join();
    EXPECT_EQ(snapshot(T->G, Corpus, Shared), Ref) << "pass " << Pass;
  }
  EXPECT_EQ(Serial.numStates(), Shared.numStates());

  SelectionStats Sum;
  for (const SelectionStats &S : Stats)
    Sum += S;
  EXPECT_GT(Sum.DenseHits, 0u);
  EXPECT_EQ(Sum.NodesLabeled, Sum.L1Hits + Sum.DenseHits + Sum.CacheProbes);
}
