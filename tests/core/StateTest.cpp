//===- tests/core/StateTest.cpp ---------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "core/State.h"

#include "core/TransitionCache.h"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>
#include <vector>

using namespace odburg;

namespace {

struct VecPair {
  SmallVector<Cost, 4> Costs;
  SmallVector<RuleId, 4> Rules;
};

VecPair makeVectors(std::initializer_list<std::uint32_t> Cs,
                    std::initializer_list<RuleId> Rs) {
  VecPair P;
  for (std::uint32_t C : Cs)
    P.Costs.push_back(C == 0xFFFFFFFFu ? Cost::infinity() : Cost(C));
  for (RuleId R : Rs)
    P.Rules.push_back(R);
  return P;
}

} // namespace

TEST(StateTable, InternIsIdempotent) {
  StateTable T(3);
  VecPair P = makeVectors({0, 1, 0xFFFFFFFFu}, {1, 2, InvalidRule});
  const State *A = T.intern(0, P.Costs.data(), P.Rules.data());
  const State *B = T.intern(0, P.Costs.data(), P.Rules.data());
  EXPECT_EQ(A, B);
  EXPECT_EQ(T.size(), 1u);
}

TEST(StateTable, DifferentContentDifferentState) {
  StateTable T(2);
  VecPair P1 = makeVectors({0, 1}, {1, 2});
  VecPair P2 = makeVectors({0, 2}, {1, 2});
  VecPair P3 = makeVectors({0, 1}, {1, 3});
  const State *A = T.intern(0, P1.Costs.data(), P1.Rules.data());
  const State *B = T.intern(0, P2.Costs.data(), P2.Rules.data());
  const State *C = T.intern(0, P3.Costs.data(), P3.Rules.data());
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(B, C);
  EXPECT_EQ(T.size(), 3u);
}

TEST(StateTable, OperatorIsPartOfIdentity) {
  StateTable T(2);
  VecPair P = makeVectors({0, 1}, {1, 2});
  const State *A = T.intern(0, P.Costs.data(), P.Rules.data());
  const State *B = T.intern(1, P.Costs.data(), P.Rules.data());
  EXPECT_NE(A, B);
}

TEST(StateTable, IdsAreDenseAndStable) {
  StateTable T(1);
  for (std::uint32_t I = 0; I < 100; ++I) {
    VecPair P = makeVectors({I}, {I});
    const State *S = T.intern(0, P.Costs.data(), P.Rules.data());
    EXPECT_EQ(S->Id, I);
    EXPECT_EQ(T.byId(I), S);
  }
  EXPECT_EQ(T.size(), 100u);
  EXPECT_GT(T.memoryBytes(), 0u);
}

TEST(StateTable, SurvivesRehash) {
  StateTable T(1);
  std::vector<const State *> All;
  for (std::uint32_t I = 0; I < 1000; ++I) {
    VecPair P = makeVectors({I}, {I % 7});
    All.push_back(T.intern(0, P.Costs.data(), P.Rules.data()));
  }
  // Every state still findable by content after many rehashes.
  for (std::uint32_t I = 0; I < 1000; ++I) {
    VecPair P = makeVectors({I}, {I % 7});
    EXPECT_EQ(T.intern(0, P.Costs.data(), P.Rules.data()), All[I]);
  }
  EXPECT_EQ(T.size(), 1000u);
}

TEST(TransitionCache, MissThenHit) {
  TransitionCache C;
  std::uint32_t Key[] = {TransitionCache::packHeader(3, 2, 0), 7, 9};
  EXPECT_EQ(C.lookup(Key, 3), InvalidState);
  C.insert(Key, 3, 42);
  EXPECT_EQ(C.lookup(Key, 3), 42u);
  EXPECT_EQ(C.size(), 1u);
}

TEST(TransitionCache, KeysAreFullyCompared) {
  TransitionCache C;
  std::uint32_t K1[] = {TransitionCache::packHeader(3, 2, 0), 7, 9};
  std::uint32_t K2[] = {TransitionCache::packHeader(3, 2, 0), 7, 10};
  std::uint32_t K3[] = {TransitionCache::packHeader(4, 2, 0), 7, 9};
  C.insert(K1, 3, 1);
  C.insert(K2, 3, 2);
  C.insert(K3, 3, 3);
  EXPECT_EQ(C.lookup(K1, 3), 1u);
  EXPECT_EQ(C.lookup(K2, 3), 2u);
  EXPECT_EQ(C.lookup(K3, 3), 3u);
}

TEST(TransitionCache, DynOutcomesDistinguishKeys) {
  TransitionCache C;
  // Same op and children, different dynamic-cost outcome word.
  std::uint32_t K1[] = {TransitionCache::packHeader(5, 2, 1), 1, 2, 0};
  std::uint32_t K2[] = {TransitionCache::packHeader(5, 2, 1), 1, 2,
                        0xFFFFFFFFu};
  C.insert(K1, 4, 10);
  C.insert(K2, 4, 11);
  EXPECT_EQ(C.lookup(K1, 4), 10u);
  EXPECT_EQ(C.lookup(K2, 4), 11u);
}

TEST(TransitionCache, SurvivesRehash) {
  TransitionCache C;
  for (std::uint32_t I = 0; I < 5000; ++I) {
    std::uint32_t Key[] = {TransitionCache::packHeader(1, 2, 0), I, I * 3};
    C.insert(Key, 3, I);
  }
  for (std::uint32_t I = 0; I < 5000; ++I) {
    std::uint32_t Key[] = {TransitionCache::packHeader(1, 2, 0), I, I * 3};
    ASSERT_EQ(C.lookup(Key, 3), I);
  }
  EXPECT_GT(C.memoryBytes(), 5000u * 3 * 4);
}

TEST(StateTable, ConcurrentInternYieldsCanonicalStates) {
  // Eight threads hammer the sharded table with heavily overlapping
  // contents: each distinct content must intern exactly once, ids must
  // stay dense, and re-interning must return the canonical pointer.
  constexpr unsigned Distinct = 64;
  constexpr unsigned Threads = 8;
  StateTable T(2);
  auto Content = [](unsigned V) {
    return makeVectors({V % 7, V % 13}, {V % 5, V % 11});
  };
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      for (unsigned I = 0; I < 512; ++I) {
        unsigned V = (I * Threads + W) % Distinct;
        VecPair P = Content(V);
        const State *S = T.intern(0, P.Costs.data(), P.Rules.data());
        ASSERT_NE(S, nullptr);
        ASSERT_EQ(T.byId(S->Id), S);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  std::unordered_set<unsigned> DistinctContents;
  for (unsigned V = 0; V < Distinct; ++V)
    DistinctContents.insert((V % 7) << 16 | (V % 13) << 8 | (V % 5) << 4 |
                            (V % 11));
  EXPECT_EQ(T.size(), DistinctContents.size());
  for (unsigned V = 0; V < Distinct; ++V) {
    VecPair P = Content(V);
    const State *S = T.intern(0, P.Costs.data(), P.Rules.data());
    EXPECT_LT(S->Id, T.size());
    EXPECT_EQ(T.byId(S->Id), S);
  }
  // Snapshot is dense and in id order.
  std::vector<const State *> All = T.states();
  ASSERT_EQ(All.size(), T.size());
  for (StateId Id = 0; Id < All.size(); ++Id)
    EXPECT_EQ(All[Id]->Id, Id);
}

TEST(TransitionCache, ConcurrentInsertAndLookupConverge) {
  // Racing threads repeatedly miss, insert and re-look-up overlapping
  // keys; the insert-if-absent contract keeps one entry per key.
  constexpr unsigned Distinct = 128;
  constexpr unsigned Threads = 8;
  TransitionCache C;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      for (unsigned I = 0; I < 512; ++I) {
        std::uint32_t V = (I * Threads + W) % Distinct;
        std::uint32_t Key[] = {TransitionCache::packHeader(1, 2, 0), V, V * 3};
        if (C.lookup(Key, 3) == InvalidState)
          C.insert(Key, 3, V);
        ASSERT_EQ(C.lookup(Key, 3), V);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.size(), Distinct);
  for (std::uint32_t V = 0; V < Distinct; ++V) {
    std::uint32_t Key[] = {TransitionCache::packHeader(1, 2, 0), V, V * 3};
    EXPECT_EQ(C.lookup(Key, 3), V);
  }
}
