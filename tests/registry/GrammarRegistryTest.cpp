//===- tests/registry/GrammarRegistryTest.cpp -----------------------------===//
//
// Part of the odburg project.
//
// The multi-tenant registry's contracts: name resolution (built-in
// targets, spool-directory grammar text, resident fingerprints — and
// nothing path-shaped), backend sharing across acquires, budget-driven
// LRU eviction with the pressure fallback when pinned entries alone
// exceed the budget, epoch-based hot swap that keeps old leases on the
// version they started with, and the spool round trips (compiled tables,
// warm snapshots) that let a restarted process skip regeneration and
// re-warming.
//
//===----------------------------------------------------------------------===//

#include "registry/GrammarRegistry.h"

#include "grammar/GrammarParser.h"
#include "select/DynCost.h"
#include "support/FaultInjection.h"
#include "targets/Target.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

using namespace odburg;
using namespace odburg::registry;

namespace {

/// A throwaway spool directory, removed with everything in it.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/odburg-registry-test-XXXXXX";
    const char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = P ? P : "";
  }
  ~TempDir() {
    std::error_code EC;
    if (!Path.empty())
      std::filesystem::remove_all(Path, EC);
  }
};

void writeFile(const std::string &Path, const char *Text) {
  std::ofstream OS(Path, std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(OS));
  OS << Text;
}

std::string hexFingerprint(std::uint64_t Fp) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Fp));
  return Buf;
}

/// Creates the entry's backend of kind \p K and labels one tree through
/// it, so the entry holds warm, nonzero-byte state. A random tree keeps
/// this grammar-agnostic (built-in targets and the running example name
/// their operators differently).
void warmBackend(const Lease &L, BackendKind K) {
  LabelerBackend *B = cantFail(L->backend(K));
  LabelerScratch Scratch;
  ir::IRFunction F;
  test::RandomTreeBuilder Builder(L->grammar(K), /*Seed=*/42);
  F.addRoot(Builder.build(F, 40));
  B->labelFunction(F, Scratch);
}

} // namespace

TEST(GrammarRegistry, FingerprintIsStableAndContentSensitive) {
  Grammar A = cantFail(parseGrammar(test::runningExampleText()));
  Grammar B = cantFail(parseGrammar(test::runningExampleText()));
  Grammar C = cantFail(parseGrammar(test::runningExampleFixedText()));
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  EXPECT_NE(A.fingerprint(), C.fingerprint());
}

TEST(GrammarRegistry, AcquireSharesOneEntryAndItsBackends) {
  GrammarRegistry R({});
  Lease L1 = cantFail(R.acquire("x86"));
  Lease L2 = cantFail(R.acquire("x86"));
  EXPECT_EQ(L1.entry(), L2.entry());
  EXPECT_EQ(L1->name(), "x86");
  EXPECT_EQ(L1->epoch(), 1u);

  // The backend is per-entry shared state: both leases see one object.
  LabelerBackend *B1 = cantFail(L1->backend(BackendKind::OnDemand));
  LabelerBackend *B2 = cantFail(L2->backend(BackendKind::OnDemand));
  EXPECT_EQ(B1, B2);

  RegistryStats S = R.statsSnapshot();
  EXPECT_EQ(S.ResidentGrammars, 1u);
  EXPECT_EQ(S.Acquires, 2u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(GrammarRegistry, ResolvesResidentEntriesByFingerprint) {
  GrammarRegistry R({});
  Lease L = cantFail(R.acquire("mips"));
  Lease ByFp = cantFail(R.acquire(hexFingerprint(L->fingerprint())));
  EXPECT_EQ(ByFp.entry(), L.entry());
}

TEST(GrammarRegistry, LoadsGrammarTextFromTheSpoolDirectory) {
  TempDir D;
  writeFile(D.Path + "/example.odg", test::runningExampleText());
  GrammarRegistry::Options O;
  O.Dir = D.Path;
  GrammarRegistry R(std::move(O));

  Lease L = cantFail(R.acquire("example"));
  EXPECT_EQ(L->name(), "example");
  Grammar Parsed = cantFail(parseGrammar(test::runningExampleText()));
  EXPECT_EQ(L->fingerprint(), Parsed.fingerprint());

  // The ?memop hook binds from targets::standardHooks(), so the dyn-cost
  // rule is live: on-demand labeling through the registry entry matches
  // the DP reference from the same entry.
  LabelerBackend *DP = cantFail(L->backend(BackendKind::DP));
  LabelerBackend *OD = cantFail(L->backend(BackendKind::OnDemand));
  LabelerScratch S1, S2;
  ir::IRFunction F;
  test::buildStoreTree(F, L->grammar(BackendKind::OnDemand), 0, 0, 1);
  const Labeling &Ref = DP->labelFunction(F, S1);
  const Labeling &Got = OD->labelFunction(F, S2);
  test::expectEquivalent(L->grammar(BackendKind::OnDemand), F, Ref, Got);
}

TEST(GrammarRegistry, RejectsPathShapedAndUnknownNames) {
  TempDir D;
  GrammarRegistry::Options O;
  O.Dir = D.Path;
  GrammarRegistry R(std::move(O));

  for (const char *Bad : {"../etc/passwd", "a/b", "a.b", "", "spaces here"}) {
    Expected<Lease> L = R.acquire(Bad);
    ASSERT_FALSE(static_cast<bool>(L)) << "name '" << Bad << "'";
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput) << "name '" << Bad << "'";
  }
  // Well-formed but absent: a typed failure, not MalformedInput.
  Expected<Lease> Missing = R.acquire("no-such-grammar");
  ASSERT_FALSE(static_cast<bool>(Missing));

  // No spool directory at all: only built-ins resolve.
  GrammarRegistry Bare({});
  EXPECT_FALSE(static_cast<bool>(Bare.acquire("no-such-grammar")));
  EXPECT_TRUE(static_cast<bool>(Bare.acquire("x86")));
}

TEST(GrammarRegistry, PinnedEntriesDegradeToPressureNotEviction) {
  GrammarRegistry::Options O;
  O.MemBudgetBytes = 1; // Anything resident is over budget.
  GrammarRegistry R(std::move(O));
  Lease L = cantFail(R.acquire("x86"));
  warmBackend(L, BackendKind::OnDemand);
  ASSERT_GT(L->backendBytes(), 0u);

  R.maintain();
  RegistryStats S = R.statsSnapshot();
  EXPECT_EQ(S.Evictions, 0u) << "pinned entries must never be evicted";
  EXPECT_TRUE(S.MemoryPressure)
      << "over budget with everything pinned falls back to pressure";
  EXPECT_GT(L->backendBytes(), 0u);
}

TEST(GrammarRegistry, EvictsUnpinnedEntriesAndRebuildsOnReaccess) {
  GrammarRegistry::Options O;
  O.MemBudgetBytes = 1;
  GrammarRegistry R(std::move(O));
  {
    Lease L = cantFail(R.acquire("x86"));
    warmBackend(L, BackendKind::OnDemand);
  }
  R.maintain();
  RegistryStats S = R.statsSnapshot();
  EXPECT_GE(S.Evictions, 1u);
  EXPECT_EQ(R.backendBytes(), 0u);
  EXPECT_FALSE(S.MemoryPressure)
      << "pressure releases once eviction brings the total under budget";
  // The entry survives eviction; only its backends were dropped. A
  // re-access cold-starts a fresh backend.
  Lease L = cantFail(R.acquire("x86"));
  EXPECT_EQ(L->backendBytes(), 0u);
  warmBackend(L, BackendKind::OnDemand);
  EXPECT_GT(L->backendBytes(), 0u);
}

TEST(GrammarRegistry, EvictionIsLeastRecentlyUsedFirst) {
  // Size both backends with an unbudgeted registry, then replay into one
  // whose budget fits everything but one byte: only the LRU entry (x86,
  // used first) must go.
  std::size_t X86Bytes = 0, MipsBytes = 0;
  {
    GrammarRegistry R({});
    Lease X = cantFail(R.acquire("x86"));
    warmBackend(X, BackendKind::OnDemand);
    X86Bytes = X->backendBytes();
    Lease M = cantFail(R.acquire("mips"));
    warmBackend(M, BackendKind::OnDemand);
    MipsBytes = M->backendBytes();
  }
  ASSERT_GT(X86Bytes, 0u);
  ASSERT_GT(MipsBytes, 0u);

  GrammarRegistry::Options O;
  O.MemBudgetBytes = X86Bytes + MipsBytes - 1;
  GrammarRegistry R(std::move(O));
  {
    Lease X = cantFail(R.acquire("x86"));
    warmBackend(X, BackendKind::OnDemand);
  }
  {
    Lease M = cantFail(R.acquire("mips"));
    warmBackend(M, BackendKind::OnDemand);
  }
  R.maintain();
  EXPECT_EQ(R.statsSnapshot().Evictions, 1u);
  Lease X = cantFail(R.acquire("x86"));
  Lease M = cantFail(R.acquire("mips"));
  EXPECT_EQ(X->backendBytes(), 0u) << "the older entry should be evicted";
  EXPECT_GT(M->backendBytes(), 0u) << "the newer entry should survive";
}

TEST(GrammarRegistry, FaultSiteForcesEvictionWithoutBudget) {
  GrammarRegistry R({});
  {
    Lease L = cantFail(R.acquire("x86"));
    warmBackend(L, BackendKind::OnDemand);
  }
  ASSERT_GT(R.backendBytes(), 0u);
  cantFail(fault::configure("registry-evict:nth=1"));
  R.maintain();
  fault::reset();
  EXPECT_GE(R.statsSnapshot().Evictions, 1u);
  EXPECT_EQ(R.backendBytes(), 0u);
  // Eviction is a performance event, not a correctness one: re-access
  // still serves.
  Lease L = cantFail(R.acquire("x86"));
  warmBackend(L, BackendKind::OnDemand);
}

TEST(GrammarRegistry, HotSwapKeepsOldLeasesOnTheirEpoch) {
  GrammarRegistry R({});
  Grammar V1 = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable D1 = cantFail(DynCostTable::build(V1, test::runningExampleHooks()));
  Lease Old = cantFail(R.registerGrammar("g", std::move(V1), std::move(D1)));
  EXPECT_EQ(Old->epoch(), 1u);
  std::uint64_t OldFp = Old->fingerprint();

  // Same content again: not a swap, same entry.
  Grammar V1b = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable D1b =
      cantFail(DynCostTable::build(V1b, test::runningExampleHooks()));
  Lease Same = cantFail(R.registerGrammar("g", std::move(V1b), std::move(D1b)));
  EXPECT_EQ(Same.entry(), Old.entry());
  EXPECT_EQ(R.statsSnapshot().HotSwaps, 0u);

  // Different content: epoch bumps for new acquires, the old lease keeps
  // its version alive and untouched.
  Grammar V2 = cantFail(parseGrammar(test::runningExampleFixedText()));
  DynCostTable D2 = cantFail(DynCostTable::build(V2, {}));
  Lease New = cantFail(R.registerGrammar("g", std::move(V2), std::move(D2)));
  EXPECT_EQ(New->epoch(), 2u);
  EXPECT_NE(New.entry(), Old.entry());
  EXPECT_EQ(R.statsSnapshot().HotSwaps, 1u);
  EXPECT_EQ(Old->epoch(), 1u);
  EXPECT_EQ(Old->fingerprint(), OldFp);
  warmBackend(Old, BackendKind::OnDemand); // Old version still labels.

  Lease Fresh = cantFail(R.acquire("g"));
  EXPECT_EQ(Fresh.entry(), New.entry());
  EXPECT_EQ(R.statsSnapshot().ResidentGrammars, 1u);
}

TEST(GrammarRegistry, ReloadHotSwapsWhenTheSpoolFileChanges) {
  TempDir D;
  writeFile(D.Path + "/g.odg", test::runningExampleText());
  GrammarRegistry::Options O;
  O.Dir = D.Path;
  GrammarRegistry R(std::move(O));

  Lease Old = cantFail(R.acquire("g"));
  EXPECT_EQ(Old->epoch(), 1u);

  // Unchanged file: reload is a no-op on the resident entry.
  Lease Same = cantFail(R.reload("g"));
  EXPECT_EQ(Same.entry(), Old.entry());
  EXPECT_EQ(R.statsSnapshot().HotSwaps, 0u);

  writeFile(D.Path + "/g.odg", test::runningExampleFixedText());
  Lease New = cantFail(R.reload("g"));
  EXPECT_EQ(New->epoch(), 2u);
  EXPECT_NE(New.entry(), Old.entry());
  EXPECT_EQ(R.statsSnapshot().HotSwaps, 1u);
  EXPECT_EQ(Old->epoch(), 1u);
}

TEST(GrammarRegistry, LeaseCloneKeepsTheEntryPinned) {
  GrammarRegistry::Options O;
  O.MemBudgetBytes = 1;
  GrammarRegistry R(std::move(O));
  Lease Pin;
  {
    Lease L = cantFail(R.acquire("x86"));
    warmBackend(L, BackendKind::OnDemand);
    Pin = L.clone();
  }
  // The original lease is gone; the clone alone must keep the backends.
  R.maintain();
  EXPECT_EQ(R.statsSnapshot().Evictions, 0u);
  EXPECT_GT(Pin->backendBytes(), 0u);
  Pin.release();
  R.maintain();
  EXPECT_GE(R.statsSnapshot().Evictions, 1u);
}

TEST(GrammarRegistry, SpoolsCompiledTablesAndLoadsThemOnRestart) {
  TempDir D;
  {
    GrammarRegistry::Options O;
    O.Dir = D.Path;
    GrammarRegistry R(std::move(O));
    Lease L = cantFail(R.acquire("x86"));
    cantFail(L->backend(BackendKind::Offline));
    EXPECT_EQ(R.statsSnapshot().TablesLoads, 0u) << "first build generates";
  }
  EXPECT_TRUE(std::filesystem::exists(D.Path + "/x86.tables"));
  {
    GrammarRegistry::Options O;
    O.Dir = D.Path;
    GrammarRegistry R(std::move(O));
    Lease L = cantFail(R.acquire("x86"));
    cantFail(L->backend(BackendKind::Offline));
    EXPECT_EQ(R.statsSnapshot().TablesLoads, 1u)
        << "the restart should load the spooled tables, not regenerate";
  }
}

TEST(GrammarRegistry, WarmSnapshotsSurviveARestart) {
  TempDir D;
  writeFile(D.Path + "/example.odg", test::runningExampleText());
  unsigned WarmStates = 0;
  {
    GrammarRegistry::Options O;
    O.Dir = D.Path;
    GrammarRegistry R(std::move(O));
    Lease L = cantFail(R.acquire("example"));
    warmBackend(L, BackendKind::OnDemand);
    WarmStates = cantFail(L->backend(BackendKind::OnDemand))->numStates();
    ASSERT_GT(WarmStates, 0u);
    RegistryStats S = R.statsSnapshot();
    EXPECT_EQ(S.SnapshotHits, 0u);
    EXPECT_EQ(S.SnapshotMisses, 1u) << "nothing spooled yet: a cold start";
    cantFail(R.dumpWarmSnapshots());
  }
  EXPECT_TRUE(std::filesystem::exists(D.Path + "/example.warm"));
  {
    GrammarRegistry::Options O;
    O.Dir = D.Path;
    GrammarRegistry R(std::move(O));
    Lease L = cantFail(R.acquire("example"));
    LabelerBackend *B = cantFail(L->backend(BackendKind::OnDemand));
    RegistryStats S = R.statsSnapshot();
    EXPECT_EQ(S.SnapshotHits, 1u);
    EXPECT_EQ(S.SnapshotMisses, 0u);
    EXPECT_EQ(B->numStates(), WarmStates)
        << "the restarted backend starts as warm as the drained one ended";
  }
}

TEST(GrammarRegistry, FaultInjectedSnapshotLoadDegradesToColdStart) {
  TempDir D;
  writeFile(D.Path + "/example.odg", test::runningExampleText());
  {
    GrammarRegistry::Options O;
    O.Dir = D.Path;
    GrammarRegistry R(std::move(O));
    Lease L = cantFail(R.acquire("example"));
    warmBackend(L, BackendKind::OnDemand);
    cantFail(R.dumpWarmSnapshots());
  }
  cantFail(fault::configure("registry-load:nth=1"));
  {
    GrammarRegistry::Options O;
    O.Dir = D.Path;
    GrammarRegistry R(std::move(O));
    Lease L = cantFail(R.acquire("example"));
    warmBackend(L, BackendKind::OnDemand); // Serves despite the fault.
    RegistryStats S = R.statsSnapshot();
    EXPECT_EQ(S.SnapshotHits, 0u);
    EXPECT_EQ(S.SnapshotMisses, 1u) << "the injected fault is a miss";
  }
  fault::reset();
}
