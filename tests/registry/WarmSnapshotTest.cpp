//===- tests/registry/WarmSnapshotTest.cpp --------------------------------===//
//
// Part of the odburg project.
//
// The warm-snapshot persistence format (registry/WarmSnapshot.h) under
// friendly and hostile input: a clean round trip restores every state and
// memoized transition; truncation at EVERY byte boundary and bit flips
// anywhere in the file yield a typed MalformedInput and leave the
// automaton untouched (the ASan+UBSan CI job runs this binary — "never
// UB" is asserted, not assumed); a snapshot never loads against the wrong
// grammar or stale hybrid tables; and the registry-load fault site fails
// the load exactly like corruption would.
//
//===----------------------------------------------------------------------===//

#include "registry/WarmSnapshot.h"

#include "core/OnDemandAutomaton.h"
#include "select/DPLabeler.h"
#include "select/LabelerBackend.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

using namespace odburg;
using namespace odburg::registry;

namespace {

struct Fixture {
  Grammar G;
  DynCostTable Dyn;

  Fixture()
      : G(cantFail(parseGrammar(test::runningExampleText()))),
        Dyn(cantFail(DynCostTable::build(G, test::runningExampleHooks()))) {}
};

/// Labels a deterministic mixed corpus so the automaton holds several
/// states and memoized transitions worth snapshotting.
void warmUp(OnDemandAutomaton &A, const Grammar &G) {
  {
    ir::IRFunction F;
    test::buildStoreTree(F, G, 0, 0, 1); // memop hook applies
    A.labelFunction(F);
  }
  {
    ir::IRFunction F;
    test::buildStoreTree(F, G, 0, 2, 1); // memop hook rejects
    A.labelFunction(F);
  }
  for (std::uint64_t Seed : {7u, 21u, 99u}) {
    ir::IRFunction F;
    test::RandomTreeBuilder B(G, Seed);
    F.addRoot(B.build(F, 40));
    A.labelFunction(F);
  }
}

std::string snapshotBlob(const OnDemandAutomaton &A, const Grammar &G) {
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(dumpWarmSnapshot(A, G, SS));
  return SS.str();
}

Expected<WarmSnapshotStats> loadBlob(OnDemandAutomaton &A, const Grammar &G,
                                     const std::string &Blob) {
  std::istringstream IS(Blob);
  return loadWarmSnapshot(A, G, IS);
}

/// Header layout of the v1 format: 8-byte magic, u32 version, u64
/// fingerprint, u32 numNts, u32 numStates, u64 numTransitions,
/// u64 payloadWords, then the u64 checksum at 44 and the payload at 52.
constexpr std::size_t ChecksumOff = 8 + 4 + 8 + 4 + 4 + 8 + 8;
constexpr std::size_t PayloadOff = ChecksumOff + 8;
constexpr std::uint64_t ChecksumSeed = 0x0DB09A28u;

/// Rewrites the stored checksum to match the (possibly tampered) payload,
/// so tests can reach the validation layers *behind* the checksum.
void resealChecksum(std::string &Blob) {
  ASSERT_GE(Blob.size(), PayloadOff);
  ASSERT_EQ((Blob.size() - PayloadOff) % sizeof(std::uint32_t), 0u);
  std::vector<std::uint32_t> Payload((Blob.size() - PayloadOff) /
                                     sizeof(std::uint32_t));
  std::memcpy(Payload.data(), Blob.data() + PayloadOff,
              Blob.size() - PayloadOff);
  std::uint64_t Sum = hashRange(Payload.data(),
                                Payload.data() + Payload.size(), ChecksumSeed);
  std::memcpy(Blob.data() + ChecksumOff, &Sum, sizeof(Sum));
}

} // namespace

TEST(WarmSnapshot, RoundTripRestoresStatesAndTransitions) {
  Fixture FX;
  OnDemandAutomaton Warm(FX.G, &FX.Dyn);
  warmUp(Warm, FX.G);
  ASSERT_GT(Warm.numStates(), 0u);
  ASSERT_GT(Warm.numTransitions(), 0u);
  std::string Blob = snapshotBlob(Warm, FX.G);

  OnDemandAutomaton Fresh(FX.G, &FX.Dyn);
  WarmSnapshotStats S = cantFail(loadBlob(Fresh, FX.G, Blob));
  EXPECT_EQ(S.NumStates, Warm.numStates());
  EXPECT_EQ(S.NumTransitions, Warm.numTransitions());
  EXPECT_EQ(Fresh.numStates(), Warm.numStates());
  EXPECT_EQ(Fresh.numTransitions(), Warm.numTransitions());

  // The restored automaton is genuinely warm: replaying the same corpus
  // creates no new states or transitions, and labels correctly.
  unsigned States = Fresh.numStates();
  std::size_t Transitions = Fresh.numTransitions();
  warmUp(Fresh, FX.G);
  EXPECT_EQ(Fresh.numStates(), States);
  EXPECT_EQ(Fresh.numTransitions(), Transitions);

  ir::IRFunction F;
  test::buildStoreTree(F, FX.G, 3, 3, 4);
  DPLabeler Ref(FX.G, &FX.Dyn);
  DPLabeling RefL;
  Ref.labelInto(F, RefL);
  Fresh.labelFunction(F);
  test::expectEquivalent(FX.G, F, RefL, Fresh);
}

TEST(WarmSnapshot, EmptyAutomatonRoundTrips) {
  Fixture FX;
  OnDemandAutomaton Empty(FX.G, &FX.Dyn);
  std::string Blob = snapshotBlob(Empty, FX.G);
  OnDemandAutomaton Fresh(FX.G, &FX.Dyn);
  WarmSnapshotStats S = cantFail(loadBlob(Fresh, FX.G, Blob));
  EXPECT_EQ(S.NumStates, 0u);
  EXPECT_EQ(S.NumTransitions, 0u);
}

TEST(WarmSnapshot, TruncationAtEveryByteBoundaryIsTypedAndHarmless) {
  Fixture FX;
  OnDemandAutomaton Warm(FX.G, &FX.Dyn);
  warmUp(Warm, FX.G);
  std::string Blob = snapshotBlob(Warm, FX.G);

  OnDemandAutomaton Victim(FX.G, &FX.Dyn);
  for (std::size_t Len = 0; Len < Blob.size(); ++Len) {
    Expected<WarmSnapshotStats> L =
        loadBlob(Victim, FX.G, Blob.substr(0, Len));
    ASSERT_FALSE(static_cast<bool>(L)) << "length " << Len;
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput) << "length " << Len;
    // Validation precedes import: a failed load never half-populates.
    ASSERT_EQ(Victim.numStates(), 0u) << "length " << Len;
    ASSERT_EQ(Victim.numTransitions(), 0u) << "length " << Len;
  }
  // The untouched victim still accepts the intact snapshot.
  cantFail(loadBlob(Victim, FX.G, Blob));
  EXPECT_EQ(Victim.numStates(), Warm.numStates());
}

TEST(WarmSnapshot, BitFlipsNeverCorruptTheAutomaton) {
  Fixture FX;
  OnDemandAutomaton Warm(FX.G, &FX.Dyn);
  warmUp(Warm, FX.G);
  std::string Blob = snapshotBlob(Warm, FX.G);

  ir::IRFunction Probe;
  test::buildStoreTree(Probe, FX.G, 5, 5, 6);
  DPLabeler Ref(FX.G, &FX.Dyn);
  DPLabeling RefL;
  Ref.labelInto(Probe, RefL);

  // Walk the whole file, a different bit at each step. A flip must either
  // be rejected typed or — should some header flip slip past every check —
  // load an automaton that still labels correctly. Anything else (crash,
  // sanitizer report, wrong labels) fails the test.
  for (std::size_t Off = 0; Off < Blob.size();
       Off += (Off < PayloadOff ? 1 : 3)) {
    std::string Corrupt = Blob;
    Corrupt[Off] ^= static_cast<char>(1u << (Off % 8));
    OnDemandAutomaton Victim(FX.G, &FX.Dyn);
    Expected<WarmSnapshotStats> L = loadBlob(Victim, FX.G, Corrupt);
    if (!L) {
      EXPECT_EQ(L.kind(), ErrorKind::MalformedInput) << "offset " << Off;
      EXPECT_EQ(Victim.numStates(), 0u) << "offset " << Off;
      continue;
    }
    Victim.labelFunction(Probe);
    test::expectEquivalent(FX.G, Probe, RefL, Victim);
  }
}

TEST(WarmSnapshot, RejectsWrongGrammarFingerprint) {
  Fixture FX;
  OnDemandAutomaton Warm(FX.G, &FX.Dyn);
  warmUp(Warm, FX.G);
  std::string Blob = snapshotBlob(Warm, FX.G);

  Grammar Other = cantFail(parseGrammar(test::runningExampleFixedText()));
  ASSERT_NE(Other.fingerprint(), FX.G.fingerprint());
  OnDemandAutomaton Victim(Other);
  Expected<WarmSnapshotStats> L = loadBlob(Victim, Other, Blob);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(L.message().find("fingerprint"), std::string::npos) << L.message();
}

TEST(WarmSnapshot, HybridSeededAutomatonRoundTrips) {
  Fixture FX;
  LabelerBackend::Options Opts;
  auto Warm = cantFail(HybridBackend::create(FX.G, &FX.Dyn, Opts));
  unsigned Seeded = Warm->automaton().numStates();
  ASSERT_GT(Seeded, 0u) << "hybrid automaton should be table-seeded";
  LabelerScratch Scratch;
  ir::IRFunction F;
  test::buildStoreTree(F, FX.G, 0, 0, 1);
  Warm->labelFunction(F, Scratch, nullptr);
  std::string Blob = snapshotBlob(Warm->automaton(), FX.G);

  auto Fresh = cantFail(HybridBackend::create(FX.G, &FX.Dyn, Opts));
  WarmSnapshotStats S = cantFail(loadBlob(Fresh->automaton(), FX.G, Blob));
  EXPECT_EQ(S.NumStates, Warm->automaton().numStates());
  EXPECT_EQ(Fresh->automaton().numStates(), Warm->automaton().numStates());
}

TEST(WarmSnapshot, RejectsSnapshotSmallerThanSeededTables) {
  // A snapshot with fewer states than the automaton's seeded prefix can
  // only be stale (older tables). The empty snapshot is the extreme case.
  Fixture FX;
  OnDemandAutomaton Empty(FX.G, &FX.Dyn);
  std::string Blob = snapshotBlob(Empty, FX.G);

  LabelerBackend::Options Opts;
  auto Hybrid = cantFail(HybridBackend::create(FX.G, &FX.Dyn, Opts));
  ASSERT_GT(Hybrid->automaton().numStates(), 0u);
  Expected<WarmSnapshotStats> L = loadBlob(Hybrid->automaton(), FX.G, Blob);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(L.message().find("stale"), std::string::npos) << L.message();
}

TEST(WarmSnapshot, RejectsTamperedSeededPrefix) {
  // Behind the checksum sits the hybrid staleness check: a snapshot whose
  // state prefix disagrees with the seeded tables is rejected even when
  // it is internally consistent. Tamper a seeded state's cost word and
  // reseal the checksum to reach that layer.
  Fixture FX;
  LabelerBackend::Options Opts;
  auto Warm = cantFail(HybridBackend::create(FX.G, &FX.Dyn, Opts));
  std::string Blob = snapshotBlob(Warm->automaton(), FX.G);

  // State 0's record starts at the payload: op word, then the costs. The
  // guard pins the layout so a format change fails loudly here.
  ASSERT_GE(Blob.size(), PayloadOff + 2 * sizeof(std::uint32_t));
  std::uint32_t Op0 = 0;
  std::memcpy(&Op0, Blob.data() + PayloadOff, sizeof(Op0));
  ASSERT_EQ(Op0, Warm->automaton().stateTable().byId(0)->Op)
      << "snapshot payload layout changed; update PayloadOff";
  std::uint32_t Cost0 = 0;
  std::memcpy(&Cost0, Blob.data() + PayloadOff + 4, sizeof(Cost0));
  ++Cost0;
  std::memcpy(Blob.data() + PayloadOff + 4, &Cost0, sizeof(Cost0));
  resealChecksum(Blob);

  auto Fresh = cantFail(HybridBackend::create(FX.G, &FX.Dyn, Opts));
  Expected<WarmSnapshotStats> L = loadBlob(Fresh->automaton(), FX.G, Blob);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(L.message().find("stale"), std::string::npos) << L.message();
}

TEST(WarmSnapshot, FaultInjectedLoadFailsLikeCorruption) {
  Fixture FX;
  OnDemandAutomaton Warm(FX.G, &FX.Dyn);
  warmUp(Warm, FX.G);
  std::string Blob = snapshotBlob(Warm, FX.G);

  cantFail(fault::configure("registry-load:nth=1"));
  OnDemandAutomaton Victim(FX.G, &FX.Dyn);
  Expected<WarmSnapshotStats> L = loadBlob(Victim, FX.G, Blob);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(L.message().find("fault"), std::string::npos) << L.message();
  EXPECT_EQ(Victim.numStates(), 0u);
  fault::reset();

  // Disarmed, the same automaton cold-starts into a clean load.
  cantFail(loadBlob(Victim, FX.G, Blob));
  EXPECT_EQ(Victim.numStates(), Warm.numStates());
}
