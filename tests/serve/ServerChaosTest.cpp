//===- tests/serve/ServerChaosTest.cpp ---------------------------------------===//
//
// Part of the odburg project.
//
// Chaos suite for the socket server: every ugly thing a network peer can
// do, asserted not to corrupt the clean connections next to it. Contracts
// under test: a client that disconnects mid-stream has its undelivered
// results cancelled while concurrent clients stream on undisturbed;
// stop() under full backpressure (slow consumers, saturated queues)
// releases every blocked thread and joins them all — no deadlock, no
// leak; a slow consumer never pushes the service's undelivered count past
// its bound (memory stays bounded, the channel just backpressures); a
// malformed function mid-stream produces a diagnostic record and the
// connection keeps serving; a partial frame followed by an abrupt close
// neither crashes nor wedges the server. The TSan CI job runs this whole
// binary — every scenario must also be race-clean.
//
//===----------------------------------------------------------------------===//

#include "serve/TcpServer.h"

#include "ir/Node.h"
#include "pipeline/CompileSession.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::serve;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

std::vector<ir::IRFunction> makeCorpus(const Grammar &G, unsigned Count,
                                       unsigned Nodes = 120) {
  const Profile *P = findProfile("gzip-like");
  EXPECT_NE(P, nullptr);
  return cantFail(generateBatch(*P, G, Count, Nodes));
}

std::string functionToWire(const ir::IRFunction &F, const Grammar &G) {
  std::string Out;
  for (const ir::Node *Root : F.roots()) {
    Out += ir::toSExpr(Root, G);
    Out += '\n';
  }
  Out += '\n';
  return Out;
}

std::string corpusToWire(const std::vector<ir::IRFunction> &Corpus,
                         const Grammar &G) {
  std::string Out;
  for (const ir::IRFunction &F : Corpus)
    Out += functionToWire(F, G);
  return Out;
}

std::string referenceAsm(const Grammar &G,
                         std::vector<ir::IRFunction> &Corpus) {
  pipeline::CompileSession Session(G);
  std::vector<ir::IRFunction *> Ps;
  for (ir::IRFunction &F : Corpus)
    Ps.push_back(&F);
  std::vector<pipeline::CompileResult> Rs =
      Session.compileFunctions(Ps, /*Threads=*/1);
  return pipeline::CompileSession::concatAsm(Rs);
}

/// Reads from \p S until orderly EOF (or error, which also ends it).
std::string readToEof(Socket &S) {
  std::string Out;
  char Buf[4096];
  for (long N = S.readSome(Buf, sizeof(Buf)); N > 0;
       N = S.readSome(Buf, sizeof(Buf)))
    Out.append(Buf, static_cast<std::size_t>(N));
  return Out;
}

/// A full healthy round trip: send, half-close, read everything.
std::string roundTrip(std::uint16_t Port, const std::string &Wire) {
  Socket S = cantFail(Socket::connectTo("127.0.0.1", Port));
  EXPECT_TRUE(S.writeAll(Wire));
  S.shutdownWrite();
  return readToEof(S);
}

/// Server options tuned so chaos bites fast: tiny queues mean every
/// scenario actually exercises the backpressure chain.
TcpServer::Options chaosOptions() {
  TcpServer::Options O;
  // The fixed grammar on every lane: references computed locally against
  // T.Fixed match any backend the scenarios pick.
  O.ForceFixed = true;
  O.Workers = 2;
  O.QueueCapacity = 4;
  O.MaxPendingWrites = 4;
  return O;
}

} // namespace

TEST(ServerChaos, DisconnectMidStreamCancelsOnlyThatClient) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Healthy = makeCorpus(T->Fixed, 12);
  std::string HealthyWire = corpusToWire(Healthy, T->Fixed);
  std::string HealthyRef = referenceAsm(T->Fixed, Healthy);

  std::vector<ir::IRFunction> VictimCorpus = makeCorpus(T->Fixed, 40, 80);
  std::string VictimWire = corpusToWire(VictimCorpus, T->Fixed);

  // The victims submit plenty, read nothing, and vanish abruptly —
  // mid-stream, with results queued, parked, and in flight. Concurrent
  // healthy clients must still get byte-exact ordered responses.
  std::vector<std::thread> Victims;
  for (int I = 0; I < 4; ++I)
    Victims.emplace_back([&] {
      Expected<Socket> V = Socket::connectTo("127.0.0.1", Srv->port());
      if (!V)
        return;
      // The write itself may fail partway: with nothing being read, the
      // backpressure chain eventually stalls the server's reader and the
      // socket buffers fill. Either way, close abruptly.
      V->writeAll(VictimWire);
      V->close();
    });
  std::vector<std::thread> Healthies;
  std::vector<std::string> Got(3);
  for (int I = 0; I < 3; ++I)
    Healthies.emplace_back(
        [&, I] { Got[I] = roundTrip(Srv->port(), HealthyWire); });

  for (std::thread &Th : Victims)
    Th.join();
  for (std::thread &Th : Healthies)
    Th.join();
  for (const std::string &G : Got)
    EXPECT_EQ(G, HealthyRef);

  Srv->stop();
  // Every accepted submission resolved — delivered to a live client or
  // dropped against a dead one; nothing leaked, nothing wedged.
  const pipeline::CompileService *Lane =
      Srv->laneService(BackendKind::OnDemand);
  ASSERT_NE(Lane, nullptr);
  pipeline::ServiceStats S = Lane->statsSnapshot();
  EXPECT_EQ(S.Submitted, S.Delivered);
  EXPECT_EQ(S.QueueDepth, 0u);
  // The victims' undelivered results were cancelled, promptly and
  // countedly — the "peer vanished mid-write" ledger the STATS line
  // surfaces as cancelledDeliveries.
  EXPECT_GT(Srv->cancelledDeliveries(), 0u);
}

TEST(ServerChaos, StopUnderFullBackpressureReleasesEverything) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 60, 80);
  std::string Wire = corpusToWire(Corpus, T->Fixed);

  // Saturate: several connections submit far more than QueueCapacity +
  // MaxPendingWrites and read nothing, so writers block in send, the
  // delivery sink blocks on full Out queues, and readers block in
  // submit(). Then stop() — it must release the whole chain and join.
  std::vector<Socket> Clients;
  for (int I = 0; I < 4; ++I) {
    Expected<Socket> C = Socket::connectTo("127.0.0.1", Srv->port());
    ASSERT_TRUE(static_cast<bool>(C));
    Clients.push_back(std::move(*C));
  }
  std::vector<std::thread> Writers;
  for (Socket &C : Clients)
    Writers.emplace_back([&C, &Wire] {
      // Blocks once the server stops consuming; stop() severing the
      // connection fails it out — that is the release being tested.
      C.writeAll(Wire);
    });

  // Let the pipeline actually fill (undelivered results parked against
  // unread sockets), then pull the plug while everything is blocked.
  const pipeline::CompileService *Lane = nullptr;
  for (int Spin = 0; Spin < 200; ++Spin) {
    Lane = Srv->laneService(BackendKind::OnDemand);
    if (Lane && Lane->statsSnapshot().QueueDepth >= 4)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Srv->stop(); // Deadlock here = test timeout = failure.

  for (std::thread &Th : Writers)
    Th.join();
  ASSERT_NE(Lane, nullptr);
  pipeline::ServiceStats S = Lane->statsSnapshot();
  EXPECT_EQ(S.Submitted, S.Delivered);
  EXPECT_EQ(Srv->connectionsActive(), 0u);
}

TEST(ServerChaos, SlowConsumerIsBoundedNotDropped) {
  auto T = cantFail(makeTarget("x86"));
  TcpServer::Options O = chaosOptions();
  auto Srv = cantFail(TcpServer::start(*T, O));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 40, 80);
  std::string Wire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
  ASSERT_TRUE(S.writeAll(Wire));
  S.shutdownWrite();

  // Drain the response a trickle at a time. The service must never hold
  // more than QueueCapacity undelivered submissions — the slow consumer
  // translates into backpressure, not into unbounded buffering — and the
  // full byte-exact response must still arrive.
  std::string Got;
  char Buf[256];
  std::size_t MaxDepth = 0;
  for (long N = S.readSome(Buf, sizeof(Buf)); N > 0;
       N = S.readSome(Buf, sizeof(Buf))) {
    Got.append(Buf, static_cast<std::size_t>(N));
    if (const pipeline::CompileService *Lane =
            Srv->laneService(BackendKind::OnDemand))
      MaxDepth = std::max(MaxDepth, Lane->statsSnapshot().QueueDepth);
    if (Got.size() % 4096 < sizeof(Buf)) // Occasional stall.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(Got, Ref);
  EXPECT_LE(MaxDepth, O.QueueCapacity);
  Srv->stop();
}

TEST(ServerChaos, MalformedFunctionMidStreamYieldsDiagnosticAndServingContinues) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 2);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  // Good function, then a frame with an unknown operator, then another
  // good function. The bad frame is skipped with one diagnostic record;
  // both good functions compile in order.
  std::string Wire = functionToWire(Corpus[0], T->Fixed) +
                     "(Bogus (Const 1))\n\n" +
                     functionToWire(Corpus[1], T->Fixed);
  std::string Got = roundTrip(Srv->port(), Wire);

  // The parse diagnostic is pushed out-of-band the moment the reader hits
  // it, so its position relative to the ordered assembly stream is not
  // fixed — extract it, then the rest must be exactly the reference.
  std::size_t ErrAt = Got.find("ERROR parse: ");
  ASSERT_NE(ErrAt, std::string::npos) << Got;
  std::size_t ErrEnd = Got.find('\n', ErrAt);
  ASSERT_NE(ErrEnd, std::string::npos);
  std::string ErrLine = Got.substr(ErrAt, ErrEnd - ErrAt);
  EXPECT_NE(ErrLine.find("Bogus"), std::string::npos) << ErrLine;
  Got.erase(ErrAt, ErrEnd - ErrAt + 1);
  EXPECT_EQ(Got, Ref);
  EXPECT_EQ(Got.find("ERROR"), std::string::npos);
  Srv->stop();
}

TEST(ServerChaos, PartialFrameThenAbruptCloseLeavesServerServing) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 6);
  std::string Wire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  // Half an s-expression, no frame terminator, then a hard close — the
  // classic torn write. And a variant that dies inside a multi-function
  // stream after submitting real work.
  {
    Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
    EXPECT_TRUE(S.writeAll(std::string_view("(Store (AddrL 8) (Ad")));
    S.close();
  }
  {
    Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
    std::string Torn = Wire.substr(0, Wire.size() / 2);
    S.writeAll(Torn);
    S.close();
  }

  // The server shrugs: a fresh connection gets a full, exact response.
  EXPECT_EQ(roundTrip(Srv->port(), Wire), Ref);
  Srv->stop();
  const pipeline::CompileService *Lane =
      Srv->laneService(BackendKind::OnDemand);
  ASSERT_NE(Lane, nullptr);
  pipeline::ServiceStats S = Lane->statsSnapshot();
  EXPECT_EQ(S.Submitted, S.Delivered);
}

TEST(ServerChaos, ProtocolMisuseGetsDiagnosticsNotDisconnects) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 1);
  std::string FnWire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  // Unknown request, bad backend name, and a BACKEND line after the first
  // function: each earns one diagnostic record; the function still
  // compiles and the connection still ends cleanly.
  std::string Wire = std::string("FROBNICATE\n") + "BACKEND warp9\n" +
                     FnWire + "BACKEND dp\n";
  std::string Got = roundTrip(Srv->port(), Wire);

  EXPECT_NE(Got.find("ERROR protocol: unknown request 'FROBNICATE'"),
            std::string::npos)
      << Got;
  EXPECT_NE(Got.find("ERROR protocol: unknown labeler backend 'warp9'"),
            std::string::npos)
      << Got;
  EXPECT_NE(Got.find("ERROR protocol: BACKEND must precede"),
            std::string::npos)
      << Got;
  // Strip the three diagnostic lines; the assembly is byte-exact.
  std::string Asm;
  std::size_t Pos = 0;
  while (Pos < Got.size()) {
    std::size_t End = Got.find('\n', Pos);
    if (End == std::string::npos)
      End = Got.size() - 1;
    std::string_view Line(Got.data() + Pos, End - Pos);
    if (Line.substr(0, 6) != "ERROR ")
      Asm.append(Line).push_back('\n');
    Pos = End + 1;
  }
  EXPECT_EQ(Asm, Ref);
  Srv->stop();
}

TEST(ServerChaos, AdmissionStormIsShedDeterministicallyAtTheCap) {
  auto T = cantFail(makeTarget("x86"));
  TcpServer::Options O = chaosOptions();
  O.MaxConns = 4;
  auto Srv = cantFail(TcpServer::start(*T, O));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 4);
  std::string Wire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  // Four squatters occupy every admission slot and hold them open.
  std::vector<Socket> Squatters;
  for (unsigned I = 0; I < 4; ++I)
    Squatters.push_back(cantFail(Socket::connectTo("127.0.0.1", Srv->port())));
  while (Srv->connectionsAccepted() < 4)
    std::this_thread::yield();

  // A 4x connection storm against the full server: every storm client is
  // turned away with the admission record and a close — deterministic,
  // because the squatters never leave and never finish.
  for (unsigned I = 0; I < 12; ++I) {
    Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
    std::string Got = readToEof(S);
    EXPECT_NE(Got.find("ERROR ResourceExhausted: server at connection cap (4)"),
              std::string::npos)
        << Got;
    EXPECT_NE(Got.find("retry-after-ms="), std::string::npos) << Got;
  }
  EXPECT_EQ(Srv->shedConnections(), 12u);

  // The squatters leave; their slots free up (the accept loop reaps dead
  // connections before judging admission) and a fresh client round-trips
  // a byte-exact response. The reader threads notice the closes
  // asynchronously, so admission may still answer busy for a moment.
  for (Socket &S : Squatters)
    S.close();
  std::string Got;
  for (int Try = 0; Try < 200; ++Try) {
    Got = roundTrip(Srv->port(), Wire);
    if (Got == Ref)
      break;
    ASSERT_NE(Got.find("ERROR ResourceExhausted"), std::string::npos) << Got;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(Got, Ref);
  Srv->stop();
}

TEST(ServerChaos, IdleConnectionIsReapedWithClientVisibleDiagnostic) {
  auto T = cantFail(makeTarget("x86"));
  TcpServer::Options O = chaosOptions();
  O.IdleTimeoutMillis = 250;
  auto Srv = cantFail(TcpServer::start(*T, O));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 3);
  std::string Wire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  // A connection that opens and then goes silent: the server must reap
  // it — with a diagnostic the client actually sees before the close,
  // not a bare RST.
  {
    Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
    std::string Got = readToEof(S); // Blocks until the reaper acts.
    EXPECT_NE(Got.find("ERROR IdleTimeout: no input for 250 ms"),
              std::string::npos)
        << Got;
  }
  EXPECT_EQ(Srv->idleReaped(), 1u);

  // A half-way variant: real work, then silence. The delivered assembly
  // precedes the reaper's diagnostic.
  {
    Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
    ASSERT_TRUE(S.writeAll(Wire)); // No half-close: the connection idles.
    std::string Got = readToEof(S);
    std::size_t ErrAt = Got.find("ERROR IdleTimeout");
    ASSERT_NE(ErrAt, std::string::npos) << Got;
    EXPECT_EQ(Got.substr(0, ErrAt), Ref);
  }
  EXPECT_EQ(Srv->idleReaped(), 2u);

  // An active client is never reaped: a plain round trip (half-close, so
  // EOF beats the timeout) stays byte-exact.
  EXPECT_EQ(roundTrip(Srv->port(), Wire), Ref);
  EXPECT_EQ(Srv->idleReaped(), 2u);
  Srv->stop();
}

TEST(ServerChaos, GracefulDrainFinishesInFlightWorkThenStops) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 16);
  std::string Wire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  // A client with work in flight when the drain begins must still get its
  // complete byte-exact response; a connect attempt after beginDrain()
  // must be refused (the listener is gone).
  Socket S = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
  ASSERT_TRUE(S.writeAll(Wire));
  S.shutdownWrite();
  std::uint16_t Port = Srv->port();
  // connectTo() only proves the kernel finished the handshake; wait until
  // the server actually accepted, or the drain races our own connection
  // into the void.
  while (Srv->connectionsAccepted() < 1)
    std::this_thread::yield();

  ASSERT_TRUE(Srv->beginDrain());
  EXPECT_FALSE(Srv->beginDrain()); // Second drain reports already begun.
  Expected<Socket> Late = Socket::connectTo("127.0.0.1", Port);
  if (Late) {
    // A connect may still complete against the dying listen queue, but it
    // gets no service: EOF with no bytes.
    char C;
    EXPECT_LE(Late->readSome(&C, 1), 0l);
  }

  EXPECT_EQ(readToEof(S), Ref); // In-flight work finished under drain.
  S.close();
  for (int Spin = 0; Spin < 2000 && !Srv->drained(); ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(Srv->drained());
  Srv->stop();
}

TEST(ServerChaos, BackendHandshakeSelectsLaneAndStatsReportIt) {
  auto T = cantFail(makeTarget("x86"));
  auto Srv = cantFail(TcpServer::start(*T, chaosOptions()));

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 4);
  std::string FnWire = corpusToWire(Corpus, T->Fixed);
  std::string Ref = referenceAsm(T->Fixed, Corpus);

  for (const char *Name : {"dp", "offline", "ondemand"}) {
    std::string Got = roundTrip(
        Srv->port(), std::string("BACKEND ") + Name + "\n" + FnWire + "STATS\n");
    // The STATS line names the connection's lane; everything else is the
    // byte-exact assembly (STATS is requested after the last function, and
    // the single-threaded round trip already drained the deliveries... or
    // not — it is out-of-band, so only extract and check it).
    std::size_t At = Got.find("STATS {");
    ASSERT_NE(At, std::string::npos) << Got;
    std::size_t End = Got.find('\n', At);
    std::string Line = Got.substr(At, End - At);
    EXPECT_NE(Line.find(std::string("\"backend\":\"") + Name + "\""),
              std::string::npos)
        << Line;
    // Tier telemetry is present for every lane; only the on-demand lane's
    // warm path actually probes, so its hit rates are live while the DP
    // and offline lanes report the zero-guarded 0.
    for (const char *Field :
         {"\"l1HitRate\":", "\"denseHitRate\":", "\"cacheHitRate\":",
          "\"adaptive\":", "\"tierL1On\":", "\"tierL1Ways\":",
          "\"tierDenseOn\":", "\"tierPromoteThreshold\":",
          "\"tierWindows\":", "\"tierReconfigs\":"})
      EXPECT_NE(Line.find(Field), std::string::npos) << Field << " " << Line;
    if (std::string_view(Name) == "ondemand") {
      EXPECT_NE(Line.find("\"tierL1On\":true"), std::string::npos) << Line;
      EXPECT_NE(Line.find("\"tierDenseOn\":true"), std::string::npos) << Line;
    } else {
      EXPECT_NE(Line.find("\"tierL1On\":false"), std::string::npos) << Line;
      EXPECT_NE(Line.find("\"l1HitRate\":0.0000"), std::string::npos) << Line;
    }
    Got.erase(At, End - At + 1);
    EXPECT_EQ(Got, Ref);
  }
  // All three lanes exist now and did work.
  for (BackendKind K :
       {BackendKind::DP, BackendKind::Offline, BackendKind::OnDemand}) {
    const pipeline::CompileService *Lane = Srv->laneService(K);
    ASSERT_NE(Lane, nullptr);
    EXPECT_EQ(Lane->statsSnapshot().Submitted, Corpus.size());
  }
  Srv->stop();
}
