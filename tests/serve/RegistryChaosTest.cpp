//===- tests/serve/RegistryChaosTest.cpp ----------------------------------===//
//
// Part of the odburg project.
//
// Multi-tenant serving drills over the GRAMMAR/RELOAD protocol: clients
// on different grammars multiplexed through one server must each get the
// byte-exact assembly their grammar's standalone pipeline produces —
// while the governor evicts behind them, while fault injection kills
// snapshot loads, and while an admin hot-swaps a grammar mid-stream.
// The TSan CI job runs this binary: every drill must also be race-clean.
//
//===----------------------------------------------------------------------===//

#include "serve/TcpServer.h"

#include "ir/Node.h"
#include "pipeline/CompileSession.h"
#include "registry/GrammarRegistry.h"
#include "support/FaultInjection.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::serve;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/odburg-regchaos-XXXXXX";
    const char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = P ? P : "";
  }
  ~TempDir() {
    std::error_code EC;
    if (!Path.empty())
      std::filesystem::remove_all(Path, EC);
  }
};

std::vector<ir::IRFunction> makeCorpus(const Grammar &G, unsigned Count,
                                       unsigned Nodes = 100) {
  const Profile *P = findProfile("gzip-like");
  EXPECT_NE(P, nullptr);
  return cantFail(generateBatch(*P, G, Count, Nodes));
}

std::string corpusToWire(const std::vector<ir::IRFunction> &Corpus,
                         const Grammar &G) {
  std::string Out;
  for (const ir::IRFunction &F : Corpus) {
    for (const ir::Node *Root : F.roots()) {
      Out += ir::toSExpr(Root, G);
      Out += '\n';
    }
    Out += '\n';
  }
  return Out;
}

/// The standalone answer for \p Corpus over the *full* (dynamic-cost)
/// grammar — what a registry lane on any backend must reproduce.
std::string referenceAsm(const Grammar &G, const DynCostTable &Dyn,
                         std::vector<ir::IRFunction> &Corpus) {
  pipeline::CompileSession Session(G, &Dyn);
  std::vector<ir::IRFunction *> Ps;
  for (ir::IRFunction &F : Corpus)
    Ps.push_back(&F);
  std::vector<pipeline::CompileResult> Rs =
      Session.compileFunctions(Ps, /*Threads=*/1);
  return pipeline::CompileSession::concatAsm(Rs);
}

std::string readToEof(Socket &S) {
  std::string Out;
  char Buf[4096];
  for (long N = S.readSome(Buf, sizeof(Buf)); N > 0;
       N = S.readSome(Buf, sizeof(Buf)))
    Out.append(Buf, static_cast<std::size_t>(N));
  return Out;
}

/// Reads until \p Needle appears in the accumulated output (or EOF).
std::string readUntil(Socket &S, const std::string &Needle) {
  std::string Out;
  char Buf[4096];
  while (Out.find(Needle) == std::string::npos) {
    long N = S.readSome(Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<std::size_t>(N));
  }
  return Out;
}

std::string roundTrip(std::uint16_t Port, const std::string &Wire) {
  Socket S = cantFail(Socket::connectTo("127.0.0.1", Port));
  EXPECT_TRUE(S.writeAll(Wire));
  S.shutdownWrite();
  return readToEof(S);
}

TcpServer::Options registryOptions(registry::GrammarRegistry &R) {
  TcpServer::Options O;
  O.Workers = 2;
  O.QueueCapacity = 8;
  O.Registry = &R;
  return O;
}

} // namespace

TEST(RegistryChaos, ConcurrentClientsOnDifferentGrammarsAreByteIdentical) {
  auto Srv_T = cantFail(makeTarget("x86"));
  registry::GrammarRegistry R({});
  auto Srv = cantFail(TcpServer::start(*Srv_T, registryOptions(R)));

  // Per-grammar corpora and standalone references.
  auto Mips = cantFail(makeTarget("mips"));
  auto Sparc = cantFail(makeTarget("sparc"));
  std::vector<ir::IRFunction> MipsCorpus = makeCorpus(Mips->G, 10);
  std::vector<ir::IRFunction> SparcCorpus = makeCorpus(Sparc->G, 10);
  std::vector<ir::IRFunction> HostCorpus = makeCorpus(Srv_T->G, 10);
  std::string MipsWire =
      "GRAMMAR mips\n" + corpusToWire(MipsCorpus, Mips->G);
  std::string SparcWire =
      "GRAMMAR sparc\nBACKEND hybrid\n" + corpusToWire(SparcCorpus, Sparc->G);
  std::string HostWire = corpusToWire(HostCorpus, Srv_T->G);
  std::string MipsRef = referenceAsm(Mips->G, Mips->Dyn, MipsCorpus);
  std::string SparcRef = referenceAsm(Sparc->G, Sparc->Dyn, SparcCorpus);
  std::string HostRef = referenceAsm(Srv_T->G, Srv_T->Dyn, HostCorpus);
  ASSERT_NE(MipsRef, SparcRef) << "grammars too alike to prove isolation";

  // Two clients per grammar plus a handshake-free client on the server's
  // own target, all concurrent — lanes must never cross.
  std::vector<std::thread> Clients;
  std::vector<std::string> Got(5);
  for (int I = 0; I < 2; ++I)
    Clients.emplace_back(
        [&, I] { Got[I] = roundTrip(Srv->port(), MipsWire); });
  for (int I = 2; I < 4; ++I)
    Clients.emplace_back(
        [&, I] { Got[I] = roundTrip(Srv->port(), SparcWire); });
  Clients.emplace_back([&] { Got[4] = roundTrip(Srv->port(), HostWire); });
  for (std::thread &Th : Clients)
    Th.join();

  EXPECT_EQ(Got[0], MipsRef);
  EXPECT_EQ(Got[1], MipsRef);
  EXPECT_EQ(Got[2], SparcRef);
  EXPECT_EQ(Got[3], SparcRef);
  EXPECT_EQ(Got[4], HostRef);

  registry::RegistryStats S = R.statsSnapshot();
  EXPECT_EQ(S.ResidentGrammars, 2u);
  EXPECT_GE(S.Acquires, 4u);
  Srv->stop();
}

TEST(RegistryChaos, EvictionRacesLiveTrafficWithoutCorruption) {
  // A one-byte budget keeps the governor evicting everything the moment
  // it goes unpinned; lanes reap almost immediately after their last
  // connection. Traffic across rounds must stay byte-identical through
  // every evict/rebuild cycle.
  auto Srv_T = cantFail(makeTarget("x86"));
  registry::GrammarRegistry::Options RO;
  RO.MemBudgetBytes = 1;
  registry::GrammarRegistry R(std::move(RO));
  TcpServer::Options SO = registryOptions(R);
  SO.MemBudgetBytes = 1;
  SO.RegistryLaneIdleMillis = 1;
  auto Srv = cantFail(TcpServer::start(*Srv_T, SO));

  auto Mips = cantFail(makeTarget("mips"));
  auto Sparc = cantFail(makeTarget("sparc"));
  std::vector<ir::IRFunction> MipsCorpus = makeCorpus(Mips->G, 6, 60);
  std::vector<ir::IRFunction> SparcCorpus = makeCorpus(Sparc->G, 6, 60);
  std::string MipsWire = "GRAMMAR mips\n" + corpusToWire(MipsCorpus, Mips->G);
  std::string SparcWire =
      "GRAMMAR sparc\n" + corpusToWire(SparcCorpus, Sparc->G);
  std::string MipsRef = referenceAsm(Mips->G, Mips->Dyn, MipsCorpus);
  std::string SparcRef = referenceAsm(Sparc->G, Sparc->Dyn, SparcCorpus);

  for (int Round = 0; Round < 4; ++Round) {
    std::vector<std::thread> Clients;
    std::vector<std::string> Got(2);
    Clients.emplace_back([&] { Got[0] = roundTrip(Srv->port(), MipsWire); });
    Clients.emplace_back([&] { Got[1] = roundTrip(Srv->port(), SparcWire); });
    for (std::thread &Th : Clients)
      Th.join();
    EXPECT_EQ(Got[0], MipsRef) << "round " << Round;
    EXPECT_EQ(Got[1], SparcRef) << "round " << Round;
    // Let lanes go idle, get reaped, and the entries evicted before the
    // next round cold-starts them again.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }

  Srv->stop();
  registry::RegistryStats S = R.statsSnapshot();
  EXPECT_GE(S.Evictions, 1u)
      << "a one-byte budget must have evicted between rounds";
}

TEST(RegistryChaos, ForcedEvictionFaultSiteKeepsTrafficCorrect) {
  // registry-evict fires on every maintain() tick: backends are dropped
  // as soon as they go unpinned even with no budget at all. Correctness
  // must not depend on residency.
  auto Srv_T = cantFail(makeTarget("x86"));
  registry::GrammarRegistry R({});
  TcpServer::Options SO = registryOptions(R);
  SO.RegistryLaneIdleMillis = 1;
  auto Srv = cantFail(TcpServer::start(*Srv_T, SO));

  auto Mips = cantFail(makeTarget("mips"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(Mips->G, 6, 60);
  std::string Wire = "GRAMMAR mips\n" + corpusToWire(Corpus, Mips->G);
  std::string Ref = referenceAsm(Mips->G, Mips->Dyn, Corpus);

  cantFail(fault::configure("registry-evict:every=1"));
  for (int Round = 0; Round < 3; ++Round) {
    EXPECT_EQ(roundTrip(Srv->port(), Wire), Ref) << "round " << Round;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  fault::reset();
  Srv->stop();
  EXPECT_GE(R.statsSnapshot().Evictions, 1u);
}

TEST(RegistryChaos, SnapshotRoundTripAndFaultedLoadColdStart) {
  auto Srv_T = cantFail(makeTarget("x86"));
  auto Mips = cantFail(makeTarget("mips"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(Mips->G, 8, 60);
  std::string Wire = "GRAMMAR mips\n" + corpusToWire(Corpus, Mips->G);
  std::string Ref = referenceAsm(Mips->G, Mips->Dyn, Corpus);
  TempDir D;

  // Round 1: cold start, then drain the warm state to the spool.
  {
    registry::GrammarRegistry::Options RO;
    RO.Dir = D.Path;
    registry::GrammarRegistry R(std::move(RO));
    auto Srv = cantFail(TcpServer::start(*Srv_T, registryOptions(R)));
    EXPECT_EQ(roundTrip(Srv->port(), Wire), Ref);
    Srv->stop();
    cantFail(R.dumpWarmSnapshots());
    EXPECT_EQ(R.statsSnapshot().SnapshotHits, 0u);
  }
  ASSERT_TRUE(std::filesystem::exists(D.Path + "/mips.warm"));

  // Round 2: the snapshot load is fault-injected — the server must cold
  // start (a counted miss), never crash or serve another grammar's state.
  cantFail(fault::configure("registry-load:every=1"));
  {
    registry::GrammarRegistry::Options RO;
    RO.Dir = D.Path;
    registry::GrammarRegistry R(std::move(RO));
    auto Srv = cantFail(TcpServer::start(*Srv_T, registryOptions(R)));
    EXPECT_EQ(roundTrip(Srv->port(), Wire), Ref);
    Srv->stop();
    registry::RegistryStats S = R.statsSnapshot();
    EXPECT_EQ(S.SnapshotHits, 0u);
    EXPECT_GE(S.SnapshotMisses, 1u);
  }
  fault::reset();

  // Round 3: disarmed, the restart serves out of the warm snapshot.
  {
    registry::GrammarRegistry::Options RO;
    RO.Dir = D.Path;
    registry::GrammarRegistry R(std::move(RO));
    auto Srv = cantFail(TcpServer::start(*Srv_T, registryOptions(R)));
    EXPECT_EQ(roundTrip(Srv->port(), Wire), Ref);
    Srv->stop();
    EXPECT_GE(R.statsSnapshot().SnapshotHits, 1u);
  }
}

namespace {

/// Store(Reg a, Add(Load(Reg b), Reg c)) — the read-modify-write shape
/// whose selection the ?memop hook gates (fused only when a == b).
void buildRmwTree(ir::IRFunction &F, const Grammar &G, std::int64_t A,
                  std::int64_t B, std::int64_t C) {
  OperatorId RegOp = G.findOperator("Reg");
  OperatorId LoadOp = G.findOperator("Load");
  OperatorId AddOp = G.findOperator("Add");
  OperatorId StoreOp = G.findOperator("Store");
  ir::Node *Dst = F.makeLeaf(RegOp, A);
  ir::Node *Src = F.makeLeaf(RegOp, B);
  SmallVector<ir::Node *, 2> C1{Src};
  ir::Node *Ld = F.makeNode(LoadOp, C1);
  SmallVector<ir::Node *, 2> C2{Ld, F.makeLeaf(RegOp, C)};
  ir::Node *Add = F.makeNode(AddOp, C2);
  SmallVector<ir::Node *, 2> C3{Dst, Add};
  F.addRoot(F.makeNode(StoreOp, C3));
}

/// The x86 grammar text with every `?memop` guard stripped: same
/// operators and rules, but the RMW patterns apply unconditionally — a
/// content change whose output difference is easy to provoke.
std::string unguardedX86Text() {
  std::string Text = x86GrammarText();
  for (std::size_t At = Text.find("?memop"); At != std::string::npos;
       At = Text.find("?memop"))
    Text.erase(At, 6);
  return Text;
}

} // namespace

TEST(RegistryChaos, ReloadHotSwapMidStreamCompletesOnTheOldEpoch) {
  auto Srv_T = cantFail(makeTarget("x86"));
  TempDir D;
  {
    std::ofstream OS(D.Path + "/g.odg", std::ios::trunc);
    OS << x86GrammarText();
  }
  registry::GrammarRegistry::Options RO;
  RO.Dir = D.Path;
  registry::GrammarRegistry R(std::move(RO));
  auto Srv = cantFail(TcpServer::start(*Srv_T, registryOptions(R)));

  // Corpus where v1 (?memop guarded) and v2 (unguarded) disagree: a
  // store tree with UNEQUAL addresses still shape-matches the RMW rule,
  // so v2 fuses it where v1 must decompose.
  Grammar V1 = cantFail(parseGrammar(x86GrammarText()));
  DynCostTable Dyn1 = cantFail(DynCostTable::build(V1, standardHooks()));
  Grammar V2 = cantFail(parseGrammar(unguardedX86Text()));
  DynCostTable Dyn2 = cantFail(DynCostTable::build(V2, standardHooks()));
  ASSERT_NE(V1.fingerprint(), V2.fingerprint());
  std::vector<ir::IRFunction> Corpus(2);
  buildRmwTree(Corpus[0], V1, 0, 0, 1); // equal addresses
  buildRmwTree(Corpus[1], V1, 0, 2, 1); // unequal addresses
  std::string Wire = corpusToWire(Corpus, V1);
  std::string RefV1 = referenceAsm(V1, Dyn1, Corpus);
  std::string RefV2 = referenceAsm(V2, Dyn2, Corpus);
  ASSERT_NE(RefV1, RefV2) << "corpus cannot distinguish the two versions";

  // Client A binds to v1 (STATS both binds the lane and proves, by its
  // arrival, that the server processed the handshake) and then stays
  // connected across the swap.
  Socket A = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
  ASSERT_TRUE(A.writeAll("GRAMMAR g\nSTATS\n"));
  std::string AHead = readUntil(A, "}\n");
  ASSERT_NE(AHead.find("STATS {"), std::string::npos);
  ASSERT_NE(AHead.find("\"grammar\":\"g\""), std::string::npos) << AHead;

  // The admin rewrites the grammar and pokes the server.
  {
    std::ofstream OS(D.Path + "/g.odg", std::ios::trunc);
    OS << unguardedX86Text();
  }
  Socket B = cantFail(Socket::connectTo("127.0.0.1", Srv->port()));
  ASSERT_TRUE(B.writeAll("RELOAD g\n"));
  B.shutdownWrite();
  std::string BGot = readToEof(B);
  EXPECT_NE(BGot.find("OK RELOAD g epoch=2"), std::string::npos) << BGot;
  EXPECT_EQ(R.statsSnapshot().HotSwaps, 1u);

  // A streams on, after the swap — and must finish on the version it
  // started with, byte-identically.
  ASSERT_TRUE(A.writeAll(Wire));
  A.shutdownWrite();
  EXPECT_EQ(readToEof(A), RefV1);

  // A fresh client sees the new epoch.
  EXPECT_EQ(roundTrip(Srv->port(), "GRAMMAR g\n" + Wire), RefV2);
  Srv->stop();
}

TEST(RegistryChaos, ProtocolErrorsAreTypedAndContained) {
  // Without a registry, GRAMMAR/RELOAD are protocol errors; with one,
  // binding order and unknown names fail with diagnostics while the
  // connection (and its neighbors) keep working.
  auto T = cantFail(makeTarget("x86"));
  {
    TcpServer::Options O;
    O.Workers = 2;
    auto Srv = cantFail(TcpServer::start(*T, O));
    std::string Got = roundTrip(Srv->port(), "GRAMMAR mips\n");
    EXPECT_NE(Got.find("ERROR protocol: no grammar registry configured"),
              std::string::npos)
        << Got;
    Srv->stop();
  }
  registry::GrammarRegistry R({});
  auto Srv = cantFail(TcpServer::start(*T, registryOptions(R)));

  std::string Unknown = roundTrip(Srv->port(), "GRAMMAR ../escape\n");
  EXPECT_NE(Unknown.find("ERROR grammar:"), std::string::npos) << Unknown;

  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 2, 40);
  std::string FnWire = corpusToWire(Corpus, T->G);
  std::string Late =
      roundTrip(Srv->port(), FnWire + "GRAMMAR mips\n");
  EXPECT_NE(Late.find("ERROR protocol: GRAMMAR must precede"),
            std::string::npos)
      << Late;

  // A healthy multi-tenant client right after the abuse.
  auto Mips = cantFail(makeTarget("mips"));
  std::vector<ir::IRFunction> MipsCorpus = makeCorpus(Mips->G, 4, 60);
  std::string Ref = referenceAsm(Mips->G, Mips->Dyn, MipsCorpus);
  EXPECT_EQ(roundTrip(Srv->port(),
                      "GRAMMAR mips\n" + corpusToWire(MipsCorpus, Mips->G)),
            Ref);
  Srv->stop();
}
