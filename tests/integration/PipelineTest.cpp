//===- tests/integration/PipelineTest.cpp ------------------------------------===//
//
// Part of the odburg project.
//
// End-to-end: MiniC source -> IR -> all three labeling engines -> reducer
// -> assembly. The engines must produce byte-identical code — the paper's
// equivalence claim at system level.
//
//===----------------------------------------------------------------------===//

#include "core/OnDemandAutomaton.h"
#include "frontend/Lowering.h"
#include "offline/OfflineTables.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "targets/AsmEmitter.h"
#include "targets/Target.h"
#include "workload/Corpus.h"
#include "workload/Synthetic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

struct PipelineCase {
  std::string TargetName;
  std::string ProgramName;
};

std::vector<PipelineCase> allCases() {
  std::vector<PipelineCase> Cases;
  for (const std::string &T : targetNames())
    for (const CorpusProgram &P : corpus())
      Cases.push_back({T, P.Name});
  return Cases;
}

std::string caseName(const ::testing::TestParamInfo<PipelineCase> &Info) {
  return Info.param.TargetName + "_" + Info.param.ProgramName;
}

} // namespace

class Pipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(Pipeline, DpAndOnDemandEmitIdenticalCode) {
  auto T = cantFail(makeTarget(GetParam().TargetName));
  const CorpusProgram *P = findCorpusProgram(GetParam().ProgramName);
  ASSERT_NE(P, nullptr);
  ir::IRFunction F = cantFail(compileCorpusProgram(*P, T->G));

  DPLabeling Ref = DPLabeler(T->G, &T->Dyn).label(F);
  Selection SRef = cantFail(reduce(T->G, F, Ref, &T->Dyn));
  AsmOutput AsmRef = cantFail(emitAsm(T->G, F, SRef));

  OnDemandAutomaton A(T->G, &T->Dyn);
  A.labelFunction(F);
  Selection SAuto = cantFail(reduce(T->G, F, A, &T->Dyn));
  AsmOutput AsmAuto = cantFail(emitAsm(T->G, F, SAuto));

  EXPECT_EQ(AsmRef.text(), AsmAuto.text());
  EXPECT_EQ(SRef.TotalCost, SAuto.TotalCost);
}

TEST_P(Pipeline, OfflineEmitsIdenticalCodeOnFixedGrammar) {
  auto T = cantFail(makeTarget(GetParam().TargetName));
  const CorpusProgram *P = findCorpusProgram(GetParam().ProgramName);
  ir::IRFunction F = cantFail(compileCorpusProgram(*P, T->Fixed));

  DPLabeling Ref = DPLabeler(T->Fixed).label(F);
  Selection SRef = cantFail(reduce(T->Fixed, F, Ref));
  AsmOutput AsmRef = cantFail(emitAsm(T->Fixed, F, SRef));

  CompiledTables Tables = cantFail(OfflineTableGen(T->Fixed).generate());
  TableLabeler L(Tables);
  L.labelFunction(F);
  Selection SOff = cantFail(reduce(T->Fixed, F, L));
  AsmOutput AsmOff = cantFail(emitAsm(T->Fixed, F, SOff));

  EXPECT_EQ(AsmRef.text(), AsmOff.text());
}

INSTANTIATE_TEST_SUITE_P(CorpusByTarget, Pipeline,
                         ::testing::ValuesIn(allCases()), caseName);

namespace {

/// The differential matrix: every target grammar crossed with SPEC-like
/// synthetic profiles of different operator mixes. The MiniC corpus above
/// is small and hand-written; the synthetic workloads drive the engines
/// through far more (op, child-state, dyn-outcome) combinations.
struct SyntheticCase {
  std::string TargetName;
  std::string ProfileName;
};

std::vector<SyntheticCase> syntheticCases() {
  std::vector<SyntheticCase> Cases;
  for (const std::string &T : targetNames())
    for (const char *P : {"gzip-like", "gcc-like", "twolf-like"})
      Cases.push_back({T, P});
  return Cases;
}

std::string syntheticCaseName(
    const ::testing::TestParamInfo<SyntheticCase> &Info) {
  std::string Name = Info.param.TargetName + "_" + Info.param.ProfileName;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

class SyntheticDifferential
    : public ::testing::TestWithParam<SyntheticCase> {};

TEST_P(SyntheticDifferential, OnDemandLabelingEquivalentToDP) {
  auto T = cantFail(makeTarget(GetParam().TargetName));
  const Profile *P = findProfile(GetParam().ProfileName);
  ASSERT_NE(P, nullptr);
  // Shrink the profile so the slow DP reference stays test-suite friendly;
  // the operator mix and constant ranges are what matter here.
  Profile Q = *P;
  Q.TargetNodes = 6000;
  ir::IRFunction F = cantFail(generate(Q, T->G));

  DPLabeling Ref = DPLabeler(T->G, &T->Dyn).label(F);
  OnDemandAutomaton A(T->G, &T->Dyn);
  A.labelFunction(F);
  test::expectEquivalent(T->G, F, Ref, A);
}

INSTANTIATE_TEST_SUITE_P(TargetsByProfile, SyntheticDifferential,
                         ::testing::ValuesIn(syntheticCases()),
                         syntheticCaseName);

TEST(PipelineWarm, AutomatonStopsCreatingStatesAcrossCorpus) {
  // A JIT-like sequence: compile the whole corpus twice; the second pass
  // must create no states at all.
  auto T = cantFail(makeTarget("x86"));
  OnDemandAutomaton A(T->G, &T->Dyn);
  for (const CorpusProgram &P : corpus()) {
    ir::IRFunction F = cantFail(compileCorpusProgram(P, T->G));
    A.labelFunction(F);
  }
  unsigned StatesAfterFirstPass = A.numStates();
  SelectionStats Warm;
  for (const CorpusProgram &P : corpus()) {
    ir::IRFunction F = cantFail(compileCorpusProgram(P, T->G));
    A.labelFunction(F, &Warm);
  }
  EXPECT_EQ(A.numStates(), StatesAfterFirstPass);
  EXPECT_EQ(Warm.StatesComputed, 0u);
  EXPECT_EQ(Warm.CacheHits, Warm.CacheProbes);
}

TEST(PipelineDag, SharedSubtreesLabeledOnceEmittedOnce) {
  // Ertl'99 DAG mode on a real target: two statements share one expensive
  // subexpression. Labeling visits the shared node once (it is one node in
  // topological order) and the reducer emits its code once.
  auto T = cantFail(makeTarget("x86"));
  CanonicalOps Ops = cantFail(resolveCanonicalOps(T->G));
  ir::IRFunction F;
  // shared = r1 * r2 (multiply is expensive enough to never be folded).
  SmallVector<ir::Node *, 2> MC{F.makeLeaf(Ops.Reg, 1), F.makeLeaf(Ops.Reg, 2)};
  ir::Node *Shared = F.makeNode(Ops.Mul, MC);
  SmallVector<ir::Node *, 2> S1{F.makeLeaf(Ops.AddrL, 0), Shared};
  SmallVector<ir::Node *, 2> S2{F.makeLeaf(Ops.AddrL, 8), Shared};
  F.addRoot(F.makeNode(Ops.Store, S1));
  F.addRoot(F.makeNode(Ops.Store, S2));

  OnDemandAutomaton A(T->G, &T->Dyn);
  SelectionStats Stats;
  A.labelFunction(F, &Stats);
  EXPECT_EQ(Stats.NodesLabeled, F.size()); // 7 nodes, shared Mul once.
  Selection S = cantFail(reduce(T->G, F, A, &T->Dyn));
  AsmOutput Asm = cantFail(emitAsm(T->G, F, S));
  // Exactly one imulq despite two uses; both stores read the same vreg.
  unsigned Muls = 0;
  for (const std::string &L : Asm.Lines)
    Muls += L.find("imulq") != std::string::npos;
  EXPECT_EQ(Muls, 1u);
  ASSERT_EQ(Asm.instructions(), 3u); // imulq + two movq-to-memory.
}

TEST(PipelineQuality, DynamicCostsImproveCorpusCode) {
  // Across the corpus on x86, the dynamic-cost grammar must produce
  // strictly cheaper code than the stripped grammar (there are RMW
  // opportunities in Bubble/Checksum/MatcherArch at least).
  auto T = cantFail(makeTarget("x86"));
  Cost::ValueType FullTotal = 0, FixedTotal = 0;
  for (const CorpusProgram &P : corpus()) {
    ir::IRFunction F1 = cantFail(compileCorpusProgram(P, T->G));
    DPLabeling L1 = DPLabeler(T->G, &T->Dyn).label(F1);
    FullTotal += cantFail(reduce(T->G, F1, L1, &T->Dyn)).TotalCost.value();

    ir::IRFunction F2 = cantFail(compileCorpusProgram(P, T->Fixed));
    DPLabeling L2 = DPLabeler(T->Fixed).label(F2);
    FixedTotal += cantFail(reduce(T->Fixed, F2, L2)).TotalCost.value();
  }
  EXPECT_LT(FullTotal, FixedTotal);
}
