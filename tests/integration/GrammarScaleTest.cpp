//===- tests/integration/GrammarScaleTest.cpp --------------------------------===//
//
// Part of the odburg project.
//
// Grammar-scaling stress: the hand-written targets top out around 25
// operators, so the sharded state table and transition cache never see
// real operator diversity from them. This drives the full pipeline over a
// synthesized grammar with ~10x the operators of Vm64 (250 operators, 6
// nonterminals, 6 rule alternatives per interior operator) — enough
// distinct (op, child-state) transition keys to spread load across all
// cache shards — and checks the usual invariants: every function
// compiles, and the selection is bit-identical for any thread count, cold
// and warm.
//
//===----------------------------------------------------------------------===//

#include "grammar/Synthesize.h"
#include "pipeline/CompileSession.h"
#include "support/RNG.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <vector>

using namespace odburg;
using namespace odburg::pipeline;

namespace {

SynthesisParams scaleParams() {
  SynthesisParams P;
  P.NumLeafOps = 50;
  P.NumUnaryOps = 80;
  P.NumBinaryOps = 120; // 250 operators total, ~10x the vm64 target.
  P.NumNts = 6;
  P.RulesPerOp = 6;
  P.MaxCost = 3;
  P.Seed = 97;
  return P;
}

std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  RNG Rand(0xCAFE);
  std::vector<ir::IRFunction> Corpus(16);
  for (ir::IRFunction &F : Corpus)
    for (int Root = 0; Root < 4; ++Root)
      F.addRoot(workload::synthesizeTree(G, F, Rand, /*Budget=*/600));
  return Corpus;
}

/// Selections as comparable rows (synthesized grammars have no emit
/// templates, so the assembly is empty and the fired-rule sequence is the
/// strongest observable output).
std::vector<std::vector<std::pair<std::uint32_t, RuleId>>>
selectionRows(const std::vector<CompileResult> &Results) {
  std::vector<std::vector<std::pair<std::uint32_t, RuleId>>> Rows;
  for (const CompileResult &R : Results) {
    Rows.emplace_back();
    for (const Match &M : R.Sel.Matches)
      Rows.back().emplace_back(M.Where->id(), M.Source);
  }
  return Rows;
}

} // namespace

TEST(GrammarScale, TenXOperatorGrammarCompilesThreadInvariant) {
  Grammar G = cantFail(synthesizeGrammar(scaleParams()));
  ASSERT_EQ(G.numOperators(), 250u);
  std::vector<ir::IRFunction> Corpus = makeCorpus(G);
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Corpus)
    Ptrs.push_back(&F);

  // Serial reference.
  CompileSession Ref(G);
  std::vector<CompileResult> RefResults = Ref.compileFunctions(Ptrs, 1);
  Cost RefCost = CompileSession::totalCost(RefResults);
  for (const CompileResult &R : RefResults)
    ASSERT_TRUE(R.ok()) << R.Diagnostic;
  auto RefRows = selectionRows(RefResults);

  // The synthesized operator diversity must actually exercise the sharded
  // tables: hundreds of states and transitions, not the handful the
  // hand-written targets produce.
  EXPECT_GT(Ref.automaton().numStates(), 250u);
  EXPECT_GT(Ref.automaton().numTransitions(), 1000u);

  for (unsigned Threads : {2u, 4u, 8u}) {
    CompileSession Session(G);
    SessionStats Cold;
    std::vector<CompileResult> Results =
        Session.compileFunctions(Ptrs, Threads, &Cold);
    EXPECT_EQ(Cold.Failed, 0u);
    EXPECT_EQ(selectionRows(Results), RefRows);
    EXPECT_EQ(CompileSession::totalCost(Results), RefCost);
    // Content-addressed states: the table converges to the same automaton
    // regardless of interleaving.
    EXPECT_EQ(Session.automaton().numStates(), Ref.automaton().numStates());

    // Warm pass: no new states, all hits, same output.
    SessionStats Warm;
    Results = Session.compileFunctions(Ptrs, Threads, &Warm);
    EXPECT_EQ(Warm.Label.StatesComputed, 0u);
    EXPECT_EQ(Warm.Label.CacheHits, Warm.Label.CacheProbes);
    EXPECT_EQ(selectionRows(Results), RefRows);
  }
}
