//===- tests/integration/BackendDifferentialTest.cpp -------------------------===//
//
// Part of the odburg project.
//
// The paper's equivalence claim as a product guarantee: for every built-in
// target's static-cost grammar, compiling the shared synthetic corpus
// through a CompileSession on each of the three labeling backends — DP,
// offline tables, on-demand automaton — yields identical selected rules,
// identical total cover cost, and byte-identical assembly. The backends
// differ only in how fast they find the cover, never in which cover they
// find.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"

#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

/// A mixed-profile corpus over the target's fixed grammar, shared by all
/// three backends of one test instance.
std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "gcc-like", "art-like"}) {
    const Profile *P = findProfile(Name);
    EXPECT_NE(P, nullptr);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/3, /*TargetNodes=*/1200));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Fns)
    Ptrs.push_back(&F);
  return Ptrs;
}

/// The full observable selection of a batch: per function, the fired
/// (node, source rule, lhs) triples in emission order.
std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
selections(const std::vector<CompileResult> &Results) {
  std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
      Rows;
  for (const CompileResult &R : Results) {
    Rows.emplace_back();
    for (const Match &M : R.Sel.Matches)
      Rows.back().emplace_back(M.Where->id(), M.Source, M.Lhs);
  }
  return Rows;
}

} // namespace

class BackendDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendDifferential, AllThreeBackendsEmitIdenticalCode) {
  auto T = cantFail(makeTarget(GetParam()));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  std::string RefAsm;
  Cost RefCost = Cost::zero();
  std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
      RefSel;
  bool HaveRef = false;
  // The on-demand backend runs three times: with its dense-row tier (an
  // aggressive promotion threshold so rows really serve), without it, and
  // under the adaptive TierController with a tiny observation window (so
  // it reconfigures the warm path mid-corpus). Tiers — and the controller
  // reshaping them — are pure accelerators and must never move a single
  // byte of assembly.
  struct Config {
    BackendKind Kind;
    bool DenseRows;
    unsigned PromoteThreshold;
    bool Adaptive;
  };
  for (const Config &C : {Config{BackendKind::DP, false, 0, false},
                          Config{BackendKind::Offline, false, 0, false},
                          Config{BackendKind::OnDemand, true, 1, false},
                          Config{BackendKind::OnDemand, false, 0, false},
                          Config{BackendKind::OnDemand, true, 0, true}}) {
    BackendKind Kind = C.Kind;
    CompileSession::Options Opts;
    Opts.Backend = Kind;
    Opts.BackendOpts.Automaton.DenseRows = C.DenseRows;
    if (C.PromoteThreshold)
      Opts.BackendOpts.Automaton.DensePromoteThreshold = C.PromoteThreshold;
    Opts.BackendOpts.Adaptive = C.Adaptive;
    if (C.Adaptive) {
      Opts.BackendOpts.AdaptiveOpts.WindowNodes = 512;
      Opts.BackendOpts.AdaptiveOpts.RecoveryWindows = 1;
    }
    auto Session = CompileSession::create(T->Fixed, nullptr, Opts);
    ASSERT_TRUE(static_cast<bool>(Session))
        << backendName(Kind) << ": " << Session.message();
    // Two thread counts per backend: the equivalence must hold serial and
    // concurrent alike.
    for (unsigned Threads : {1u, 4u}) {
      std::vector<CompileResult> Results =
          (*Session)->compileFunctions(Ptrs, Threads);
      for (const CompileResult &R : Results)
        ASSERT_TRUE(R.ok()) << backendName(Kind) << ": " << R.Diagnostic;
      std::string Asm = CompileSession::concatAsm(Results);
      Cost Total = CompileSession::totalCost(Results);
      auto Sel = selections(Results);
      if (!HaveRef) {
        HaveRef = true;
        RefAsm = std::move(Asm);
        RefCost = Total;
        RefSel = std::move(Sel);
        EXPECT_FALSE(RefAsm.empty());
      } else {
        EXPECT_EQ(Asm, RefAsm)
            << backendName(Kind) << " x" << Threads << " diverged on "
            << GetParam();
        EXPECT_EQ(Total, RefCost) << backendName(Kind) << " x" << Threads;
        EXPECT_EQ(Sel, RefSel) << backendName(Kind) << " x" << Threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, BackendDifferential,
                         ::testing::ValuesIn(targetNames()));
