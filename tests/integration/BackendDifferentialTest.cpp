//===- tests/integration/BackendDifferentialTest.cpp -------------------------===//
//
// Part of the odburg project.
//
// The paper's equivalence claim as a product guarantee: for every built-in
// target's static-cost grammar, compiling the shared synthetic corpus
// through a CompileSession on each labeling backend — DP, offline tables,
// on-demand automaton, and the hybrid (offline tables on the static
// partition fronting the automaton) — yields identical selected rules,
// identical total cover cost, and byte-identical assembly. The backends
// differ only in how fast they find the cover, never in which cover they
// find. A second suite runs the hybrid against DP on the *full* dyn-cost
// grammars — the configurations pure offline tables reject — across
// 1/2/4/8 worker threads.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"

#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

/// A mixed-profile corpus over the target's fixed grammar, shared by all
/// three backends of one test instance.
std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "gcc-like", "art-like"}) {
    const Profile *P = findProfile(Name);
    EXPECT_NE(P, nullptr);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/3, /*TargetNodes=*/1200));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Fns)
    Ptrs.push_back(&F);
  return Ptrs;
}

/// The full observable selection of a batch: per function, the fired
/// (node, source rule, lhs) triples in emission order.
std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
selections(const std::vector<CompileResult> &Results) {
  std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
      Rows;
  for (const CompileResult &R : Results) {
    Rows.emplace_back();
    for (const Match &M : R.Sel.Matches)
      Rows.back().emplace_back(M.Where->id(), M.Source, M.Lhs);
  }
  return Rows;
}

} // namespace

class BackendDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendDifferential, AllBackendsEmitIdenticalCode) {
  auto T = cantFail(makeTarget(GetParam()));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  std::string RefAsm;
  Cost RefCost = Cost::zero();
  std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
      RefSel;
  bool HaveRef = false;
  // The on-demand backend runs three times: with its dense-row tier (an
  // aggressive promotion threshold so rows really serve), without it, and
  // under the adaptive TierController with a tiny observation window (so
  // it reconfigures the warm path mid-corpus). Tiers — and the controller
  // reshaping them — are pure accelerators and must never move a single
  // byte of assembly.
  struct Config {
    BackendKind Kind;
    bool DenseRows;
    unsigned PromoteThreshold;
    bool Adaptive;
  };
  // The hybrid runs twice: with the dense-row tier and without. On a
  // fixed-cost grammar its partition covers every operator, so both
  // configurations exercise the degenerate all-offline dispatch.
  for (const Config &C : {Config{BackendKind::DP, false, 0, false},
                          Config{BackendKind::Offline, false, 0, false},
                          Config{BackendKind::OnDemand, true, 1, false},
                          Config{BackendKind::OnDemand, false, 0, false},
                          Config{BackendKind::OnDemand, true, 0, true},
                          Config{BackendKind::Hybrid, true, 1, false},
                          Config{BackendKind::Hybrid, false, 0, false}}) {
    BackendKind Kind = C.Kind;
    CompileSession::Options Opts;
    Opts.Backend = Kind;
    Opts.BackendOpts.Automaton.DenseRows = C.DenseRows;
    if (C.PromoteThreshold)
      Opts.BackendOpts.Automaton.DensePromoteThreshold = C.PromoteThreshold;
    Opts.BackendOpts.Adaptive = C.Adaptive;
    if (C.Adaptive) {
      Opts.BackendOpts.AdaptiveOpts.WindowNodes = 512;
      Opts.BackendOpts.AdaptiveOpts.RecoveryWindows = 1;
    }
    auto Session = CompileSession::create(T->Fixed, nullptr, Opts);
    ASSERT_TRUE(static_cast<bool>(Session))
        << backendName(Kind) << ": " << Session.message();
    // Two thread counts per backend: the equivalence must hold serial and
    // concurrent alike.
    for (unsigned Threads : {1u, 4u}) {
      std::vector<CompileResult> Results =
          (*Session)->compileFunctions(Ptrs, Threads);
      for (const CompileResult &R : Results)
        ASSERT_TRUE(R.ok()) << backendName(Kind) << ": " << R.Diagnostic;
      std::string Asm = CompileSession::concatAsm(Results);
      Cost Total = CompileSession::totalCost(Results);
      auto Sel = selections(Results);
      if (!HaveRef) {
        HaveRef = true;
        RefAsm = std::move(Asm);
        RefCost = Total;
        RefSel = std::move(Sel);
        EXPECT_FALSE(RefAsm.empty());
      } else {
        EXPECT_EQ(Asm, RefAsm)
            << backendName(Kind) << " x" << Threads << " diverged on "
            << GetParam();
        EXPECT_EQ(Total, RefCost) << backendName(Kind) << " x" << Threads;
        EXPECT_EQ(Sel, RefSel) << backendName(Kind) << " x" << Threads;
      }
    }
  }
}

// The hybrid's reason to exist: dynamic-cost grammars, which pure offline
// tables reject outright. On every target's *full* grammar (dyn hooks
// active) the hybrid must reproduce DP's and the on-demand automaton's
// selection bit for bit at every thread count — while actually serving a
// nonzero share of nodes from its offline partition tables.
TEST_P(BackendDifferential, HybridMatchesDPOnDynamicCostGrammars) {
  auto T = cantFail(makeTarget(GetParam()));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  std::string RefAsm;
  Cost RefCost = Cost::zero();
  std::vector<std::vector<std::tuple<std::uint32_t, RuleId, NonterminalId>>>
      RefSel;
  bool HaveRef = false;
  for (BackendKind Kind :
       {BackendKind::DP, BackendKind::OnDemand, BackendKind::Hybrid}) {
    CompileSession::Options Opts;
    Opts.Backend = Kind;
    auto Session = CompileSession::create(T->G, &T->Dyn, Opts);
    ASSERT_TRUE(static_cast<bool>(Session))
        << backendName(Kind) << ": " << Session.message();
    std::uint64_t OfflineHits = 0;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      SessionStats Stats;
      std::vector<CompileResult> Results =
          (*Session)->compileFunctions(Ptrs, Threads, &Stats);
      OfflineHits += Stats.Label.OfflineHits;
      for (const CompileResult &R : Results)
        ASSERT_TRUE(R.ok()) << backendName(Kind) << ": " << R.Diagnostic;
      std::string Asm = CompileSession::concatAsm(Results);
      Cost Total = CompileSession::totalCost(Results);
      auto Sel = selections(Results);
      if (!HaveRef) {
        HaveRef = true;
        RefAsm = std::move(Asm);
        RefCost = Total;
        RefSel = std::move(Sel);
        EXPECT_FALSE(RefAsm.empty());
      } else {
        EXPECT_EQ(Asm, RefAsm)
            << backendName(Kind) << " x" << Threads << " diverged on "
            << GetParam() << " (full grammar)";
        EXPECT_EQ(Total, RefCost) << backendName(Kind) << " x" << Threads;
        EXPECT_EQ(Sel, RefSel) << backendName(Kind) << " x" << Threads;
      }
    }
    // Only the hybrid touches the offline dispatch path, and on a real
    // machine grammar the static partition is most of the operator set —
    // the accelerator must actually fire, not silently fall through.
    if (Kind == BackendKind::Hybrid)
      EXPECT_GT(OfflineHits, 0u) << GetParam();
    else
      EXPECT_EQ(OfflineHits, 0u) << backendName(Kind);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, BackendDifferential,
                         ::testing::ValuesIn(targetNames()));
