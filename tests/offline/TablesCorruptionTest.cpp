//===- tests/offline/TablesCorruptionTest.cpp -----------------------------===//
//
// Part of the odburg project.
//
// Exhaustive hostile-input coverage for the CompiledTables v2 container,
// beyond OfflineTest's spot checks: truncation at EVERY byte boundary of
// a dump (so each section edge — header, membership, leaf states, state
// table, representer maps, dense rows — is covered by construction) and
// bit flips across the file, including every partition-membership byte,
// must yield a typed MalformedInput, never UB. The ASan+UBSan CI job
// runs this binary; a flip that parses but reads out of bounds or leaves
// a half-built table would be caught there.
//
//===----------------------------------------------------------------------===//

#include "offline/OfflineTables.h"

#include "grammar/GrammarParser.h"
#include "select/Partition.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

using namespace odburg;

namespace {

std::string dumpBlob(const CompiledTables &T) {
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  return SS.str();
}

/// Loads \p Blob and asserts the all-or-nothing contract: either a typed
/// MalformedInput, or a fully valid table equivalent to \p Reference.
void expectRejectedOrIntact(const std::string &Blob, const Grammar &G,
                            const CompiledTables &Reference,
                            const char *Context, std::size_t Detail) {
  std::istringstream IS(Blob);
  Expected<CompiledTables> L = CompiledTables::load(IS, G);
  if (!L) {
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput)
        << Context << " " << Detail << ": " << L.message();
    return;
  }
  // Nothing in this suite flips a byte without changing content, so a
  // success means the container proved the content unchanged.
  EXPECT_EQ(L->fingerprint(), Reference.fingerprint())
      << Context << " " << Detail;
  EXPECT_EQ(L->stats().NumStates, Reference.stats().NumStates)
      << Context << " " << Detail;
}

} // namespace

TEST(TablesCorruption, TruncationAtEveryByteBoundaryIsTyped) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  std::string Blob = dumpBlob(T);
  ASSERT_GT(Blob.size(), 40u);

  for (std::size_t Len = 0; Len < Blob.size(); ++Len) {
    std::istringstream IS(Blob.substr(0, Len));
    Expected<CompiledTables> L = CompiledTables::load(IS, G);
    ASSERT_FALSE(static_cast<bool>(L)) << "truncated to " << Len << " bytes";
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput)
        << "truncated to " << Len << " bytes";
  }
  // The intact blob still loads — the loop above exercised a damaged
  // container, not a broken one.
  std::istringstream IS(Blob);
  cantFail(CompiledTables::load(IS, G));
}

TEST(TablesCorruption, PartitionedTruncationAtEveryByteBoundaryIsTyped) {
  // The partitioned dump has one more section (membership) and dyn-cost
  // operators with no rows; its boundaries are distinct — walk them too.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  CompiledTables T = cantFail(OfflineTableGen(G).generateSubset(P.InPartition));
  std::string Blob = dumpBlob(T);

  for (std::size_t Len = 0; Len < Blob.size(); ++Len) {
    std::istringstream IS(Blob.substr(0, Len));
    Expected<CompiledTables> L = CompiledTables::load(IS, G);
    ASSERT_FALSE(static_cast<bool>(L)) << "truncated to " << Len << " bytes";
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput)
        << "truncated to " << Len << " bytes";
  }
}

TEST(TablesCorruption, BitFlipsAnywhereNeverYieldACorruptTable) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  std::string Blob = dumpBlob(T);

  // One flipped bit per position, rotating which bit: every byte of the
  // file is attacked at least once.
  for (std::size_t Off = 0; Off < Blob.size(); ++Off) {
    std::string Corrupt = Blob;
    Corrupt[Off] ^= static_cast<char>(1u << (Off % 8));
    expectRejectedOrIntact(Corrupt, G, T, "bit flip at", Off);
  }
}

TEST(TablesCorruption, MembershipBytesFuzzedExhaustively) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  CompiledTables T = cantFail(OfflineTableGen(G).generateSubset(P.InPartition));
  std::string Blob = dumpBlob(T);

  // The membership block sits right after the fixed-size header (8-byte
  // magic, u32 version, two u64 fingerprints, three u32 counts). Guarded:
  // a layout change must fail here, not silently fuzz the wrong bytes.
  constexpr std::size_t MembershipOff = 8 + 4 + 8 + 8 + 3 * 4;
  ASSERT_GE(Blob.size(), MembershipOff + P.InPartition.size());
  ASSERT_TRUE(std::equal(
      P.InPartition.begin(), P.InPartition.end(),
      reinterpret_cast<const std::uint8_t *>(Blob.data()) + MembershipOff))
      << "dump header layout changed; update MembershipOff";

  // Every membership byte, every bit: 0<->1 flips (plausible-looking but
  // fingerprint-breaking) and wild values (shape-breaking) alike must be
  // rejected typed.
  for (std::size_t I = 0; I < P.InPartition.size(); ++I)
    for (unsigned Bit = 0; Bit < 8; ++Bit) {
      std::string Corrupt = Blob;
      Corrupt[MembershipOff + I] ^= static_cast<char>(1u << Bit);
      expectRejectedOrIntact(Corrupt, G, T, "membership byte", I * 8 + Bit);
    }
}

TEST(TablesCorruption, LoadAgainstAMismatchedGrammarShapeIsTyped) {
  // The same validation layers, driven from the other side: an intact
  // dump meeting a grammar whose shape it cannot fit.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  std::string Blob = dumpBlob(T);

  // Operator count mismatch: one extra operator.
  Grammar MoreOps = cantFail(parseGrammar(R"(
    %start stmt
    addr: reg          = 1 (0);
    reg:  Reg          = 2 (0);
    reg:  Load(addr)   = 3 (1);
    reg:  Plus(reg,reg)= 4 (1);
    reg:  Minus(reg,reg) = 7 (1);
    stmt: Store(addr,reg) = 5 (1);
    stmt: Store(addr,Plus(Load(addr),reg)) = 6 (1);
  )"));
  {
    std::istringstream IS(Blob);
    Expected<CompiledTables> L = CompiledTables::load(IS, MoreOps);
    ASSERT_FALSE(static_cast<bool>(L));
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
    EXPECT_NE(L.message().find("mismatch"), std::string::npos) << L.message();
  }

  // Same operator and nonterminal counts, but Load's arity differs.
  Grammar WrongArity = cantFail(parseGrammar(R"(
    %start stmt
    addr: reg          = 1 (0);
    reg:  Reg          = 2 (0);
    reg:  Load(addr,addr) = 3 (1);
    reg:  Plus(reg,reg)= 4 (1);
    stmt: Store(addr,reg) = 5 (1);
    stmt: Store(addr,Plus(Load(addr,addr),reg)) = 6 (1);
  )"));
  {
    std::istringstream IS(Blob);
    Expected<CompiledTables> L = CompiledTables::load(IS, WrongArity);
    ASSERT_FALSE(static_cast<bool>(L));
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  }
}
