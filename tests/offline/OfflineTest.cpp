//===- tests/offline/OfflineTest.cpp ----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "offline/OfflineTables.h"

#include "core/OnDemandAutomaton.h"
#include "grammar/GrammarParser.h"
#include "grammar/Synthesize.h"
#include "grammar/Transform.h"
#include "select/DPLabeler.h"
#include "select/Partition.h"
#include "select/Reducer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

using namespace odburg;

TEST(Offline, RejectsDynamicCosts) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  Expected<CompiledTables> T = OfflineTableGen(G).generate();
  ASSERT_FALSE(static_cast<bool>(T));
  EXPECT_EQ(T.kind(), ErrorKind::UnsupportedDynamicCosts);
  EXPECT_NE(T.message().find("dynamic costs"), std::string::npos);
  // The rejection is actionable: it names the offending operator and
  // points at the hybrid backend.
  EXPECT_NE(T.message().find("'Store'"), std::string::npos) << T.message();
  EXPECT_NE(T.message().find("hybrid"), std::string::npos) << T.message();
}

TEST(Offline, StateLimitErrorIsTyped) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  Expected<CompiledTables> T = OfflineTableGen(G, /*MaxStates=*/1).generate();
  ASSERT_FALSE(static_cast<bool>(T));
  EXPECT_EQ(T.kind(), ErrorKind::StateLimitExceeded);
  EXPECT_NE(T.message().find("state limit"), std::string::npos);
}

TEST(Offline, GeneratesRunningExample) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  EXPECT_GT(T.stats().NumStates, 0u);
  EXPECT_GT(T.stats().NumTransitions, 0u);
  EXPECT_GT(T.stats().TableBytes, 0u);
}

TEST(Offline, GenerationIsDeterministic) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables A = cantFail(OfflineTableGen(G).generate());
  CompiledTables B = cantFail(OfflineTableGen(G).generate());
  EXPECT_EQ(A.stats().NumStates, B.stats().NumStates);
  EXPECT_EQ(A.stats().NumTransitions, B.stats().NumTransitions);
  EXPECT_EQ(A.stats().TableBytes, B.stats().TableBytes);
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
}

TEST(Offline, ParallelGenerationBitIdenticalToSequential) {
  // The tables are the product: representer indices, state ids, dense
  // rows. All of them must be bit-for-bit identical for any worker count,
  // not merely isomorphic.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables Seq = cantFail(OfflineTableGen(G).generate(1));
  for (unsigned Threads : {2u, 4u, 8u}) {
    CompiledTables Par = cantFail(OfflineTableGen(G).generate(Threads));
    EXPECT_EQ(Par.stats().NumStates, Seq.stats().NumStates);
    EXPECT_EQ(Par.stats().NumTransitions, Seq.stats().NumTransitions);
    EXPECT_EQ(Par.stats().StatesComputed, Seq.stats().StatesComputed);
    EXPECT_EQ(Par.fingerprint(), Seq.fingerprint())
        << "thread count " << Threads;
    EXPECT_EQ(Par.stats().GenThreads, Threads);
  }
}

TEST(Offline, ParallelGenerationBitIdenticalOnSynthesizedGrammar) {
  // A synthesized grammar large enough that generation actually rounds
  // through multi-tuple batches (the parallel path), unlike the 6-rule
  // running example.
  SynthesisParams P;
  P.NumLeafOps = 8;
  P.NumUnaryOps = 10;
  P.NumBinaryOps = 14;
  P.NumNts = 5;
  P.RulesPerOp = 5;
  P.Seed = 41;
  Grammar G = cantFail(synthesizeGrammar(P));
  CompiledTables Seq = cantFail(OfflineTableGen(G).generate(1));
  ASSERT_GT(Seq.stats().NumStates, 32u);
  for (unsigned Threads : {2u, 8u}) {
    CompiledTables Par = cantFail(OfflineTableGen(G).generate(Threads));
    EXPECT_EQ(Par.fingerprint(), Seq.fingerprint())
        << "thread count " << Threads;
  }
}

TEST(Offline, FingerprintDiscriminatesGrammars) {
  Grammar A = cantFail(parseGrammar(test::runningExampleFixedText()));
  SynthesisParams P;
  P.Seed = 7;
  Grammar B = cantFail(synthesizeGrammar(P));
  CompiledTables TA = cantFail(OfflineTableGen(A).generate());
  CompiledTables TB = cantFail(OfflineTableGen(B).generate());
  EXPECT_NE(TA.fingerprint(), TB.fingerprint());
}

TEST(Offline, LabelerMatchesDPOnPaperExample) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  DPLabeling Ref = DPLabeler(G).label(F);
  TableLabeler L(T);
  L.labelFunction(F);
  for (const ir::Node *N : F.nodes())
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt)
      EXPECT_EQ(L.ruleFor(*N, Nt), Ref.ruleFor(*N, Nt))
          << "node " << N->id() << " nt " << G.nonterminalName(Nt);
}

class OfflineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineProperty, AgreesWithOnDemandExactly) {
  // Offline and on-demand both produce delta-normalized states, so their
  // costs and rules must agree *exactly* on every node.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  TableLabeler Off(T);
  OnDemandAutomaton A(G);

  ir::IRFunction F;
  test::RandomTreeBuilder B(G, GetParam());
  for (int I = 0; I < 6; ++I)
    F.addRoot(B.build(F, 50));
  A.labelFunction(F);
  std::vector<StateId> OnDemandStates;
  for (const ir::Node *N : F.nodes())
    OnDemandStates.push_back(N->label());
  Off.labelFunction(F);

  for (const ir::Node *N : F.nodes()) {
    const State *SOff = T.stateById(N->label());
    const State *SOn = A.stateTable().byId(OnDemandStates[N->id()]);
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      ASSERT_EQ(SOff->costOf(Nt), SOn->costOf(Nt))
          << "node " << N->id() << " nt " << G.nonterminalName(Nt);
      ASSERT_EQ(SOff->ruleOf(Nt), SOn->ruleOf(Nt));
    }
  }
}

TEST_P(OfflineProperty, OnDemandStatesAreSubsetOfOffline) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  OnDemandAutomaton A(G);
  ir::IRFunction F;
  test::RandomTreeBuilder B(G, GetParam() * 7919);
  for (int I = 0; I < 6; ++I)
    F.addRoot(B.build(F, 40));
  A.labelFunction(F);

  // Collect offline state contents.
  std::set<std::string> OfflineContents;
  for (const State *S : T.stateTable().states()) {
    std::string Sig = std::to_string(S->Op);
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      Sig += ':' + std::to_string(S->costOf(Nt).raw());
      Sig += '/' + std::to_string(S->ruleOf(Nt));
    }
    OfflineContents.insert(Sig);
  }
  EXPECT_LE(A.numStates(), T.stats().NumStates);
  for (const State *S : A.stateTable().states()) {
    std::string Sig = std::to_string(S->Op);
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      Sig += ':' + std::to_string(S->costOf(Nt).raw());
      Sig += '/' + std::to_string(S->ruleOf(Nt));
    }
    EXPECT_TRUE(OfflineContents.count(Sig))
        << "on-demand state not in exhaustive automaton";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Offline, StrippedGrammarRoundTrip) {
  // The standard workflow for grammars with dynamic costs: strip, then
  // generate offline tables for the fixed-cost variant.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  Grammar Fixed = cantFail(withoutDynCostRules(G));
  CompiledTables T = cantFail(OfflineTableGen(Fixed).generate());
  ir::IRFunction F;
  test::buildStoreTree(F, Fixed, 1, 1, 2);
  TableLabeler L(T);
  L.labelFunction(F);
  // Without rule 6, the best stmt cover costs 3 (rules 5+4+3).
  Selection S = cantFail(reduce(Fixed, F, L));
  EXPECT_EQ(S.TotalCost, Cost(3));
}

TEST(Offline, SelectionsMatchDP) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  test::buildStoreTree(F, G, 2, 9, 4);
  DPLabeling Ref = DPLabeler(G).label(F);
  Selection SRef = cantFail(reduce(G, F, Ref));
  TableLabeler L(T);
  L.labelFunction(F);
  Selection SOff = cantFail(reduce(G, F, L));
  ASSERT_EQ(SRef.Matches.size(), SOff.Matches.size());
  for (std::size_t I = 0; I < SRef.Matches.size(); ++I)
    EXPECT_EQ(SRef.Matches[I].Source, SOff.Matches[I].Source);
  EXPECT_EQ(SRef.TotalCost, SOff.TotalCost);
}

TEST(Offline, GenerationTimeRecorded) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  EXPECT_GE(T.stats().GenerationMs, 0.0);
  EXPECT_GT(T.stats().StatesComputed, 0u);
}

TEST(Offline, DumpLoadRoundTripsTheAutomaton) {
  // Serialization is keyed by fingerprint(): load() must reconstruct the
  // exact automaton (states, leaf map, representer maps, dense tables)
  // and prove it by recomputing the stored fingerprint.
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());

  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  CompiledTables L = cantFail(CompiledTables::load(SS, G));

  EXPECT_EQ(L.fingerprint(), T.fingerprint());
  EXPECT_EQ(L.stats().NumStates, T.stats().NumStates);
  EXPECT_EQ(L.stats().NumTransitions, T.stats().NumTransitions);
  EXPECT_EQ(L.stats().TableBytes, T.stats().TableBytes);
  EXPECT_EQ(L.stats().GenThreads, 0u); // Marks loaded-not-generated.

  // Loaded tables label exactly like the generating tables.
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  TableLabeler Ref(T);
  Ref.labelFunction(F);
  std::vector<std::uint32_t> RefLabels;
  for (const ir::Node *N : F.nodes())
    RefLabels.push_back(N->label());
  TableLabeler Loaded(L);
  Loaded.labelFunction(F);
  for (std::size_t I = 0; I < F.nodes().size(); ++I)
    EXPECT_EQ(F.nodes()[I]->label(), RefLabels[I]);
}

TEST(Offline, LoadRejectsWrongGrammar) {
  Grammar A = cantFail(parseGrammar(test::runningExampleFixedText()));
  SynthesisParams P;
  P.Seed = 7;
  Grammar B = cantFail(synthesizeGrammar(P));
  CompiledTables T = cantFail(OfflineTableGen(A).generate());

  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  Expected<CompiledTables> L = CompiledTables::load(SS, B);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
}

TEST(Offline, LoadRejectsDynamicCostGrammar) {
  Grammar Fixed = cantFail(parseGrammar(test::runningExampleFixedText()));
  Grammar Dyn = cantFail(parseGrammar(test::runningExampleText()));
  CompiledTables T = cantFail(OfflineTableGen(Fixed).generate());
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  Expected<CompiledTables> L = CompiledTables::load(SS, Dyn);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::UnsupportedDynamicCosts);
}

TEST(Offline, SubsetGenerationCoversOnlyThePartition) {
  // Partitioned generation over the running example's static set
  // {Reg, Load, Plus}: the dyn-cost Store is excluded, so generation
  // succeeds where the full generator reports UnsupportedDynamicCosts.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  ASSERT_EQ(P.numDynamic(), 1u);
  CompiledTables T =
      cantFail(OfflineTableGen(G).generateSubset(P.InPartition));
  EXPECT_TRUE(T.isPartitioned());
  EXPECT_EQ(T.partitionMembership(), P.InPartition);
  EXPECT_GT(T.stats().NumStates, 0u);
  for (OperatorId Op = 0; Op < G.numOperators(); ++Op)
    EXPECT_EQ(T.inPartition(Op), P.contains(Op)) << G.operatorName(Op);

  // Full-coverage tables (over the fixed variant) are not "partitioned":
  // every operator is a member.
  Grammar Fixed = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables Full = cantFail(OfflineTableGen(Fixed).generate());
  EXPECT_FALSE(Full.isPartitioned());

  // Membership is part of the identity: same grammar, different subset,
  // different fingerprint.
  std::vector<std::uint8_t> Narrower = P.InPartition;
  Narrower[G.findOperator("Plus")] = 0;
  CompiledTables N = cantFail(OfflineTableGen(G).generateSubset(Narrower));
  EXPECT_NE(N.fingerprint(), T.fingerprint());
  EXPECT_NE(N.partitionFingerprint(), T.partitionFingerprint());
}

TEST(Offline, SubsetGenerationIsDeterministicAcrossThreads) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  CompiledTables Seq =
      cantFail(OfflineTableGen(G).generateSubset(P.InPartition, 1));
  for (unsigned Threads : {2u, 8u}) {
    CompiledTables Par =
        cantFail(OfflineTableGen(G).generateSubset(P.InPartition, Threads));
    EXPECT_EQ(Par.fingerprint(), Seq.fingerprint())
        << "thread count " << Threads;
  }
}

TEST(Offline, PartitionedDumpLoadRoundTrips) {
  // The hybrid's persistence path: partitioned tables dump and load over
  // the *dynamic-cost* grammar — legal because every member operator is
  // dyn-free — and the load reconstructs membership, fingerprints, and
  // states exactly, without regenerating (GenThreads == 0 is the marker).
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  CompiledTables T =
      cantFail(OfflineTableGen(G).generateSubset(P.InPartition));

  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  CompiledTables L = cantFail(CompiledTables::load(SS, G));
  EXPECT_EQ(L.fingerprint(), T.fingerprint());
  EXPECT_EQ(L.partitionFingerprint(), T.partitionFingerprint());
  EXPECT_EQ(L.partitionMembership(), P.InPartition);
  EXPECT_TRUE(L.isPartitioned());
  EXPECT_EQ(L.stats().NumStates, T.stats().NumStates);
  EXPECT_EQ(L.stats().GenThreads, 0u); // Loaded, not regenerated.
}

TEST(Offline, LoadRejectsCorruptedPartitionMembership) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  CompiledTables T =
      cantFail(OfflineTableGen(G).generateSubset(P.InPartition));
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  std::string Blob = SS.str();

  // The membership block sits right after the fixed-size header (8-byte
  // magic, u32 version, two u64 fingerprints, three u32 counts = 40
  // bytes). Flipping a static operator's byte to 0 keeps every byte valid
  // (0/1) but breaks the stored partition fingerprint.
  constexpr std::size_t MembershipOff = 8 + 4 + 8 + 8 + 3 * 4;
  ASSERT_GE(Blob.size(), MembershipOff + P.InPartition.size());
  ASSERT_TRUE(std::equal(
      P.InPartition.begin(), P.InPartition.end(),
      reinterpret_cast<const std::uint8_t *>(Blob.data()) + MembershipOff))
      << "dump header layout changed; update MembershipOff";
  std::string Corrupt = Blob;
  for (std::size_t I = 0; I < P.InPartition.size(); ++I)
    if (Corrupt[MembershipOff + I] == 1) {
      Corrupt[MembershipOff + I] = 0;
      break;
    }
  std::istringstream In(Corrupt);
  Expected<CompiledTables> L = CompiledTables::load(In, G);
  ASSERT_FALSE(static_cast<bool>(L));
  EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(L.message().find("partition"), std::string::npos) << L.message();
}

TEST(Offline, LoadRejectsCorruptionAndTruncation) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  CompiledTables T = cantFail(OfflineTableGen(G).generate());
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  cantFail(T.dump(SS));
  std::string Blob = SS.str();

  // Not a dump at all.
  {
    std::istringstream Bad("definitely not a table dump");
    Expected<CompiledTables> L = CompiledTables::load(Bad, G);
    ASSERT_FALSE(static_cast<bool>(L));
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
    EXPECT_NE(L.message().find("magic"), std::string::npos);
  }
  // Truncated mid-stream.
  {
    std::istringstream Trunc(Blob.substr(0, Blob.size() / 2));
    Expected<CompiledTables> L = CompiledTables::load(Trunc, G);
    ASSERT_FALSE(static_cast<bool>(L));
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  }
  // One flipped payload byte: the shape still parses, the fingerprint
  // cannot. (Flip late in the blob, inside the dense tables.)
  {
    std::string Corrupt = Blob;
    Corrupt[Corrupt.size() - 3] ^= 0x40;
    std::istringstream In(Corrupt);
    Expected<CompiledTables> L = CompiledTables::load(In, G);
    ASSERT_FALSE(static_cast<bool>(L));
    EXPECT_EQ(L.kind(), ErrorKind::MalformedInput);
  }
}
