//===- tests/workload/WorkloadTest.cpp --------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "workload/Corpus.h"
#include "workload/Synthetic.h"

#include "core/OnDemandAutomaton.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "targets/Target.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::workload;

TEST(Corpus, HasTheExpectedPrograms) {
  EXPECT_GE(corpus().size(), 10u);
  EXPECT_NE(findCorpusProgram("Fact"), nullptr);
  EXPECT_NE(findCorpusProgram("MatMult"), nullptr);
  EXPECT_NE(findCorpusProgram("BoyerMoore"), nullptr);
  EXPECT_EQ(findCorpusProgram("DoesNotExist"), nullptr);
}

TEST(Corpus, AllProgramsCompileOnAllTargets) {
  for (const std::string &Name : targets::targetNames()) {
    auto T = cantFail(targets::makeTarget(Name));
    for (const CorpusProgram &P : corpus()) {
      Expected<ir::IRFunction> F = compileCorpusProgram(P, T->G);
      ASSERT_TRUE(static_cast<bool>(F))
          << Name << "/" << P.Name << ": " << F.message();
      EXPECT_GT(F->size(), 10u) << P.Name;
      // Every program must be selectable end to end.
      DPLabeling L = DPLabeler(T->G, &T->Dyn).label(*F);
      Expected<Selection> S = reduce(T->G, *F, L, &T->Dyn);
      ASSERT_TRUE(static_cast<bool>(S))
          << Name << "/" << P.Name << ": " << S.message();
    }
  }
}

TEST(Corpus, CompilationIsDeterministic) {
  auto T = cantFail(targets::makeTarget("x86"));
  const CorpusProgram *P = findCorpusProgram("MatMult");
  ir::IRFunction F1 = cantFail(compileCorpusProgram(*P, T->G));
  ir::IRFunction F2 = cantFail(compileCorpusProgram(*P, T->G));
  ASSERT_EQ(F1.size(), F2.size());
  ASSERT_EQ(F1.roots().size(), F2.roots().size());
  for (std::size_t I = 0; I < F1.roots().size(); ++I)
    EXPECT_TRUE(ir::structurallyEqual(F1.roots()[I], F2.roots()[I]));
}

TEST(Synthetic, ProfilesExist) {
  EXPECT_GE(specProfiles().size(), 10u);
  EXPECT_NE(findProfile("gzip-like"), nullptr);
  EXPECT_NE(findProfile("gcc-like"), nullptr);
  EXPECT_EQ(findProfile("nonesuch"), nullptr);
}

TEST(Synthetic, GenerationIsDeterministic) {
  auto T = cantFail(targets::makeTarget("x86"));
  const Profile *P = findProfile("gzip-like");
  ir::IRFunction F1 = cantFail(generate(*P, T->G));
  ir::IRFunction F2 = cantFail(generate(*P, T->G));
  ASSERT_EQ(F1.size(), F2.size());
  ASSERT_EQ(F1.roots().size(), F2.roots().size());
  for (std::size_t I = 0; I < F1.roots().size(); ++I)
    ASSERT_TRUE(ir::structurallyEqual(F1.roots()[I], F2.roots()[I]));
}

TEST(Synthetic, RespectsTargetSize) {
  auto T = cantFail(targets::makeTarget("x86"));
  Profile P = *findProfile("mcf-like");
  ir::IRFunction F = cantFail(generate(P, T->G));
  EXPECT_GE(F.size(), P.TargetNodes);
  EXPECT_LT(F.size(), P.TargetNodes + P.TargetNodes / 2);
}

TEST(Synthetic, AllProfilesSelectableOnAllTargets) {
  for (const std::string &Name : targets::targetNames()) {
    auto T = cantFail(targets::makeTarget(Name));
    OnDemandAutomaton A(T->G, &T->Dyn);
    for (const Profile &P : specProfiles()) {
      Profile Small = P;
      Small.TargetNodes = 1500; // Keep the test fast; shape is what counts.
      ir::IRFunction F = cantFail(generate(Small, T->G));
      A.labelFunction(F);
      Expected<Selection> S = reduce(T->G, F, A, &T->Dyn);
      ASSERT_TRUE(static_cast<bool>(S))
          << Name << "/" << P.Name << ": " << S.message();
    }
  }
}

TEST(Synthetic, RmwPercentControlsMemopOpportunities) {
  auto T = cantFail(targets::makeTarget("x86"));
  auto CountRmw = [&](unsigned Percent) {
    Profile P = *findProfile("gzip-like");
    P.RmwPercent = Percent;
    P.TargetNodes = 8000;
    ir::IRFunction F = cantFail(generate(P, T->G));
    DPLabeling L = DPLabeler(T->G, &T->Dyn).label(F);
    Selection S = cantFail(reduce(T->G, F, L, &T->Dyn));
    unsigned Rmw = 0;
    for (const Match &M : S.Matches)
      Rmw += T->G.sourceRule(M.Source).DynHook != InvalidDynCost &&
             T->G.dynHookName(T->G.sourceRule(M.Source).DynHook) == "memop";
    return Rmw;
  };
  EXPECT_GT(CountRmw(40), CountRmw(5));
  // Random value trees can *coincidentally* form a fusable pattern, so 0%
  // is "almost none", not exactly zero.
  EXPECT_LE(CountRmw(0), CountRmw(5));
  EXPECT_LT(CountRmw(0), 5u);
}
