//===- tests/pipeline/CompileServiceTest.cpp ---------------------------------===//
//
// Part of the odburg project.
//
// The asynchronous streaming submission API. Contracts under test: results
// are delivered strictly in submission order and *stream* — delivery
// begins while the input sequence is still being submitted (asserted via
// the backpressure bound, not just observed); a ready future implies its
// ordered callback already fired; the undelivered-submission count never
// exceeds the configured queue bound; drain() leaves the service usable;
// submissions after shutdown() fail with ErrorKind::ServiceShutdown; the
// streamed concatenation is byte-identical to the batch wrapper's output
// on every backend; and the whole submission surface survives contention
// from many producer threads (the TSan job runs this binary).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileService.h"

#include "pipeline/CompileSession.h"
#include "targets/Target.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

std::vector<ir::IRFunction> makeCorpus(const Grammar &G, unsigned Count,
                                       unsigned Nodes = 600) {
  const Profile *P = findProfile("gzip-like");
  EXPECT_NE(P, nullptr);
  return cantFail(generateBatch(*P, G, Count, Nodes));
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Fns)
    Ptrs.push_back(&F);
  return Ptrs;
}

} // namespace

TEST(CompileService, StreamsInOrderBeforeInputIsExhausted) {
  auto T = cantFail(makeTarget("x86"));
  constexpr unsigned N = 32;
  constexpr std::size_t Capacity = 4;
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, N);

  // Delivery-order log, written only from the (serialized, in-order)
  // sink. Submitted counts how many submit() calls completed when each
  // delivery fired — the streaming evidence.
  std::vector<std::size_t> SeqLog;
  std::vector<std::size_t> SubmittedAtDelivery;
  std::string Streamed;
  std::atomic<std::size_t> Submitted{0};

  CompileService::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = Capacity;
  Opts.OnResult = [&](std::size_t Seq, const CompileResult &R) {
    SeqLog.push_back(Seq);
    SubmittedAtDelivery.push_back(Submitted.load());
    Streamed += R.Asm;
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  for (ir::IRFunction &F : Corpus) {
    cantFail(Svc->submit(F));
    Submitted.fetch_add(1);
  }
  // The backpressure bound *guarantees* streaming: at most Capacity
  // submissions can be undelivered at once, so by the time the last
  // submit() returned, at least N - Capacity results were already out.
  EXPECT_GE(Svc->delivered(), N - Capacity);
  Svc->drain();
  EXPECT_EQ(Svc->delivered(), N);

  // Strict submission order, every seq exactly once.
  ASSERT_EQ(SeqLog.size(), N);
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_EQ(SeqLog[I], I);
  // The streaming evidence, from the delivery side: the first result was
  // delivered while the input sequence was still being submitted.
  EXPECT_LT(SubmittedAtDelivery.front(), N);

  // Byte-identity with the batch wrapper over the same sequence.
  CompileSession Session(*T);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);
  std::string BatchAsm =
      CompileSession::concatAsm(Session.compileFunctions(Ptrs, 2));
  EXPECT_EQ(Streamed, BatchAsm);
}

TEST(CompileService, FuturesCompleteOnlyAfterTheirOrderedCallback) {
  auto T = cantFail(makeTarget("vm64"));
  constexpr unsigned N = 16;
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, N, 400);

  // Flags are written in the sink before the promise is fulfilled; the
  // promise/future pair provides the happens-before edge, so observing a
  // ready future with its flag clear would be a real ordering violation.
  std::vector<int> CallbackFired(N, 0);
  CompileService::Options Opts;
  Opts.Workers = 4;
  Opts.OnResult = [&](std::size_t Seq, const CompileResult &) {
    CallbackFired[Seq] = 1;
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::vector<std::future<CompileResult>> Futures =
      cantFail(Svc->submitBatch(pointers(Corpus)));
  ASSERT_EQ(Futures.size(), N);
  // Wait back to front: even the last future's readiness must imply every
  // callback up to it fired (in-order delivery).
  CompileResult Last = Futures.back().get();
  EXPECT_TRUE(Last.ok()) << Last.Diagnostic;
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_EQ(CallbackFired[I], 1) << "future " << (N - 1)
                                   << " ready before callback " << I;
  for (std::size_t I = 0; I + 1 < N; ++I) {
    CompileResult R = Futures[I].get();
    EXPECT_TRUE(R.ok()) << R.Diagnostic;
    EXPECT_FALSE(R.Asm.empty());
  }
}

TEST(CompileService, BackpressureNeverExceedsQueueCapacity) {
  auto T = cantFail(makeTarget("x86"));
  constexpr std::size_t Capacity = 3;
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 24, 300);

  CompileService *Raw = nullptr;
  std::size_t MaxInFlight = 0;
  CompileService::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = Capacity;
  Opts.OnResult = [&](std::size_t, const CompileResult &) {
    // submitted()/delivered() take the service mutex; the sink runs
    // outside it, so the probe is deadlock-free. delivered() still counts
    // this in-flight delivery as pending.
    std::size_t InFlight = Raw->submitted() - Raw->delivered();
    MaxInFlight = std::max(MaxInFlight, InFlight);
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));
  Raw = Svc.get();

  cantFail(Svc->submitBatch(pointers(Corpus)));
  Svc->drain();
  EXPECT_LE(MaxInFlight, Capacity);
  EXPECT_GE(MaxInFlight, 1u);
}

TEST(CompileService, DrainLeavesTheServiceOpen) {
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 8, 300);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileService::Options Opts;
  Opts.Workers = 2;
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::vector<std::future<CompileResult>> First =
      cantFail(Svc->submitBatch(Ptrs));
  Svc->drain();
  EXPECT_EQ(Svc->delivered(), Corpus.size());
  EXPECT_FALSE(Svc->stopped());

  // A drained service keeps serving, and the warm backend reproduces the
  // first round byte for byte.
  std::vector<std::future<CompileResult>> Second =
      cantFail(Svc->submitBatch(Ptrs));
  Svc->drain();
  EXPECT_EQ(Svc->delivered(), 2 * Corpus.size());
  for (std::size_t I = 0; I < Ptrs.size(); ++I)
    EXPECT_EQ(First[I].get().Asm, Second[I].get().Asm);
}

TEST(CompileService, SubmitAfterShutdownFailsWithTypedError) {
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 4, 200);

  CompileService::Options Opts;
  Opts.Workers = 2;
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));
  std::vector<std::future<CompileResult>> Futures =
      cantFail(Svc->submitBatch(pointers(Corpus)));

  Svc->shutdown();
  EXPECT_TRUE(Svc->stopped());
  // Shutdown drained everything that was accepted before it.
  EXPECT_EQ(Svc->delivered(), Corpus.size());
  for (std::future<CompileResult> &F : Futures)
    EXPECT_TRUE(F.get().ok());

  Expected<std::future<CompileResult>> Rejected = Svc->submit(Corpus[0]);
  ASSERT_FALSE(static_cast<bool>(Rejected));
  EXPECT_EQ(Rejected.kind(), ErrorKind::ServiceShutdown);

  Expected<std::vector<std::future<CompileResult>>> RejectedBatch =
      Svc->submitBatch(pointers(Corpus));
  ASSERT_FALSE(static_cast<bool>(RejectedBatch));
  EXPECT_EQ(RejectedBatch.kind(), ErrorKind::ServiceShutdown);

  // Idempotent; drain on a stopped service returns immediately.
  Svc->shutdown();
  Svc->drain();
}

TEST(CompileService, StreamedOutputIsByteIdenticalAcrossBackends) {
  // The acceptance criterion as a unit test: the same fixed-cost sequence
  // streamed through all three backends yields one identical byte stream,
  // which also equals the batch wrapper's concatenation.
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed, 10, 400);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileSession::Options BatchOpts;
  CompileSession BatchSession(T->Fixed, nullptr, BatchOpts);
  std::string Reference =
      CompileSession::concatAsm(BatchSession.compileFunctions(Ptrs, 2));
  ASSERT_FALSE(Reference.empty());

  for (BackendKind Kind :
       {BackendKind::DP, BackendKind::Offline, BackendKind::OnDemand}) {
    std::string Streamed;
    CompileService::Options Opts;
    Opts.Backend = Kind;
    Opts.Workers = 3;
    Opts.QueueCapacity = 4;
    Opts.OnResult = [&](std::size_t, const CompileResult &R) {
      Streamed += R.Asm;
    };
    std::unique_ptr<CompileService> Svc =
        cantFail(CompileService::create(T->Fixed, nullptr, std::move(Opts)));
    cantFail(Svc->submitBatch(Ptrs));
    Svc->drain();
    EXPECT_EQ(Streamed, Reference) << backendName(Kind);
  }
}

TEST(CompileService, ResizeKeepsWarmScratchAndOutput) {
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 8, 400);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileService::Options Opts;
  Opts.Workers = 1;
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));
  std::vector<std::future<CompileResult>> First =
      cantFail(Svc->submitBatch(Ptrs));
  Svc->drain();
  EXPECT_EQ(Svc->workers(), 1u);

  Svc->resizeWorkers(4);
  EXPECT_EQ(Svc->workers(), 4u);
  std::vector<std::future<CompileResult>> Second =
      cantFail(Svc->submitBatch(Ptrs));
  Svc->drain();
  std::vector<std::string> SecondAsm;
  for (std::size_t I = 0; I < Ptrs.size(); ++I) {
    SecondAsm.push_back(Second[I].get().Asm);
    EXPECT_EQ(First[I].get().Asm, SecondAsm[I]);
  }

  Svc->resizeWorkers(2);
  EXPECT_EQ(Svc->workers(), 2u);
  std::vector<std::future<CompileResult>> Third =
      cantFail(Svc->submitBatch(Ptrs));
  Svc->drain();
  for (std::size_t I = 0; I < Ptrs.size(); ++I)
    EXPECT_EQ(Third[I].get().Asm, SecondAsm[I]);
}

TEST(CompileService, PerFunctionFailureDoesNotPoisonTheStream) {
  // A function whose root has no derivation yields a failed
  // CompileResult in its ordered slot; neighbors are unaffected — same
  // isolation contract as the batch pipeline, now per delivery.
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 3, 200);
  ir::IRFunction Broken;
  Broken.addRoot(Broken.makeLeaf(T->G.findOperator("Reg"), 7));

  std::vector<char> Ok;
  CompileService::Options Opts;
  Opts.Workers = 2;
  Opts.OnResult = [&](std::size_t, const CompileResult &R) {
    Ok.push_back(R.ok() ? 1 : 0);
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));
  std::future<CompileResult> F0 = cantFail(Svc->submit(Corpus[0]));
  std::future<CompileResult> F1 = cantFail(Svc->submit(Broken));
  std::future<CompileResult> F2 = cantFail(Svc->submit(Corpus[1]));
  Svc->drain();

  EXPECT_TRUE(F0.get().ok());
  CompileResult RBroken = F1.get();
  EXPECT_FALSE(RBroken.ok());
  EXPECT_NE(RBroken.Diagnostic.find("no derivation"), std::string::npos);
  EXPECT_TRUE(RBroken.Asm.empty());
  EXPECT_TRUE(F2.get().ok());
  EXPECT_EQ(Ok, (std::vector<char>{1, 0, 1}));
}

TEST(CompileService, DeadlineExpiryOccupiesOrderedSlotWithoutStalling) {
  // Submissions that sit in the queue past Options::DeadlineNs must be
  // delivered as DeadlineExceeded failures *in their ordered slot* — the
  // stream neither stalls nor reorders around them, and fresh submissions
  // afterwards compile normally.
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 6, 200);

  std::promise<void> GatePromise;
  std::shared_future<void> Gate = GatePromise.get_future().share();
  std::atomic<bool> FirstDelivered{false};
  std::vector<std::size_t> SeqLog;
  CompileService::Options Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 8;
  // Generous against sanitizer slowdowns: an idle worker dequeues in
  // microseconds, so job 0 cannot plausibly expire; the gated jobs wait
  // far past it, so they deterministically do.
  Opts.DeadlineNs = 100'000'000; // 100ms.
  Opts.OnResult = [&](std::size_t Seq, const CompileResult &) {
    SeqLog.push_back(Seq);
    if (Seq == 0) {
      FirstDelivered.store(true);
      Gate.wait(); // Park the pipeline with jobs 1..4 stuck in the queue.
    }
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::future<CompileResult> F0 = cantFail(Svc->submit(Corpus[0]));
  while (!FirstDelivered.load())
    std::this_thread::yield();
  std::vector<std::future<CompileResult>> Stuck;
  for (unsigned I = 1; I <= 4; ++I)
    Stuck.push_back(cantFail(Svc->submit(Corpus[I])));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  GatePromise.set_value();
  Svc->drain();

  EXPECT_TRUE(F0.get().ok());
  for (std::future<CompileResult> &F : Stuck) {
    CompileResult R = F.get();
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.Kind, ErrorKind::DeadlineExceeded);
    EXPECT_TRUE(R.Asm.empty());
    EXPECT_NE(R.Diagnostic.find("deadline"), std::string::npos)
        << R.Diagnostic;
  }
  EXPECT_EQ(Svc->statsSnapshot().DeadlineExpired, 4u);

  // The service is still healthy: a fresh submission with an idle worker
  // compiles well inside the deadline.
  std::future<CompileResult> F5 = cantFail(Svc->submit(Corpus[5]));
  Svc->drain();
  EXPECT_TRUE(F5.get().ok());

  // Ordered slots throughout, expirations included.
  ASSERT_EQ(SeqLog.size(), 6u);
  for (std::size_t I = 0; I < SeqLog.size(); ++I)
    EXPECT_EQ(SeqLog[I], I);
}

TEST(CompileService, TrySubmitShedsAtTheHighWatermark) {
  // The server's reader-side shed path: trySubmit() must answer
  // ResourceExhausted immediately once undelivered submissions reach the
  // watermark — never block — and accepted work is unaffected.
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, 4, 200);

  std::promise<void> GatePromise;
  std::shared_future<void> Gate = GatePromise.get_future().share();
  std::atomic<bool> FirstDelivered{false};
  CompileService::Options Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 8;
  Opts.OnResult = [&](std::size_t Seq, const CompileResult &) {
    if (Seq == 0) {
      FirstDelivered.store(true);
      Gate.wait();
    }
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::future<CompileResult> F0 =
      cantFail(Svc->trySubmit(Corpus[0], /*Tag=*/7, /*MaxDepth=*/2));
  while (!FirstDelivered.load())
    std::this_thread::yield();
  // Job 0 is undelivered (parked in the sink); one more fits under the
  // watermark of 2, the next must shed.
  std::future<CompileResult> F1 =
      cantFail(Svc->trySubmit(Corpus[1], 7, 2));
  Expected<std::future<CompileResult>> Shed = Svc->trySubmit(Corpus[2], 7, 2);
  ASSERT_FALSE(static_cast<bool>(Shed));
  EXPECT_EQ(Shed.kind(), ErrorKind::ResourceExhausted);

  GatePromise.set_value();
  Svc->drain();
  EXPECT_TRUE(F0.get().ok());
  EXPECT_TRUE(F1.get().ok());
  // After the drain the depth is back to zero and trySubmit admits again.
  std::future<CompileResult> F3 = cantFail(Svc->trySubmit(Corpus[3], 7, 2));
  Svc->drain();
  EXPECT_TRUE(F3.get().ok());
}

TEST(CompileService, BoundedQueueSurvivesManyProducers) {
  // The TSan stress: several producer threads hammer one service through
  // a small queue while two more threads drain() concurrently. Every
  // producer checks its own futures against a serial reference compile,
  // and the sink checks global delivery order.
  auto T = cantFail(makeTarget("x86"));
  constexpr unsigned Producers = 4;
  constexpr unsigned PerProducer = 12;
  std::vector<std::vector<ir::IRFunction>> Corpora;
  for (unsigned P = 0; P < Producers; ++P)
    Corpora.push_back(makeCorpus(T->G, PerProducer, 200 + 100 * P));

  // Serial reference: one session, one function at a time.
  std::vector<std::vector<std::string>> Reference(Producers);
  {
    CompileSession Session(*T);
    for (unsigned P = 0; P < Producers; ++P)
      for (ir::IRFunction &F : Corpora[P])
        Reference[P].push_back(Session.compileFunction(F).Asm);
  }

  std::atomic<std::size_t> NextExpected{0};
  std::atomic<bool> OrderViolated{false};
  CompileService::Options Opts;
  Opts.Workers = 4;
  Opts.QueueCapacity = 5;
  Opts.OnResult = [&](std::size_t Seq, const CompileResult &) {
    if (Seq != NextExpected.fetch_add(1))
      OrderViolated = true;
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      std::vector<std::future<CompileResult>> Futures;
      for (ir::IRFunction &F : Corpora[P])
        Futures.push_back(cantFail(Svc->submit(F)));
      for (unsigned I = 0; I < Futures.size(); ++I)
        if (Futures[I].get().Asm != Reference[P][I])
          Mismatches.fetch_add(1);
    });
  // Concurrent drains must be safe no matter where submission stands.
  for (unsigned D = 0; D < 2; ++D)
    Threads.emplace_back([&] { Svc->drain(); });
  for (std::thread &Th : Threads)
    Th.join();
  Svc->drain();

  EXPECT_EQ(Svc->delivered(), Producers * PerProducer);
  EXPECT_FALSE(OrderViolated.load());
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(NextExpected.load(), Producers * PerProducer);
}

TEST(CompileService, ShutdownRacesBlockedSubmitters) {
  // Producers block on a tiny queue; shutdown() must release them with
  // the typed error instead of deadlocking, while everything accepted
  // before the cut still compiles and delivers.
  auto T = cantFail(makeTarget("vm64"));
  constexpr unsigned Producers = 3;
  constexpr unsigned PerProducer = 10;
  std::vector<std::vector<ir::IRFunction>> Corpora;
  for (unsigned P = 0; P < Producers; ++P)
    Corpora.push_back(makeCorpus(T->G, PerProducer, 300));

  CompileService::Options Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 2;
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::atomic<unsigned> Accepted{0}, Rejected{0};
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (ir::IRFunction &F : Corpora[P]) {
        Expected<std::future<CompileResult>> Fut = Svc->submit(F);
        if (!Fut) {
          EXPECT_EQ(Fut.kind(), ErrorKind::ServiceShutdown);
          Rejected.fetch_add(1);
        } else {
          Accepted.fetch_add(1);
        }
      }
    });
  // Let some work through, then cut the service while producers are
  // likely parked on backpressure. Two racing shutdown() calls: both
  // must return only once the pool is fully torn down.
  while (Svc->delivered() < 3)
    std::this_thread::yield();
  std::thread OtherShutdown([&] { Svc->shutdown(); });
  Svc->shutdown();
  OtherShutdown.join();
  EXPECT_EQ(Svc->workers(), 0u);
  for (std::thread &Th : Threads)
    Th.join();

  EXPECT_TRUE(Svc->stopped());
  EXPECT_EQ(Svc->delivered(), Svc->submitted());
  EXPECT_EQ(Accepted.load() + Rejected.load(), Producers * PerProducer);
  EXPECT_GE(Accepted.load(), 3u);
}

TEST(CompileService, StatsSnapshotIsMonotonicAndConsistentUnderLoad) {
  // statsSnapshot() taken from a hostile sampler thread while 4 producers
  // hammer the service: every snapshot must be internally consistent
  // (QueueDepth == Submitted - Delivered, within the queue bound) and the
  // counter sequence must be monotone across snapshots — a torn read of
  // the counters would show up as either.
  auto T = cantFail(makeTarget("x86"));
  constexpr unsigned Producers = 4;
  constexpr unsigned PerProducer = 24;
  constexpr std::size_t Capacity = 6;
  std::vector<std::vector<ir::IRFunction>> Corpora;
  for (unsigned P = 0; P < Producers; ++P)
    Corpora.push_back(makeCorpus(T->G, PerProducer, 300));

  CompileService::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = Capacity;
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::atomic<bool> Done{false};
  std::atomic<unsigned> Violations{0};
  std::thread Sampler([&] {
    std::size_t LastSubmitted = 0, LastDelivered = 0;
    while (!Done.load()) {
      ServiceStats S = Svc->statsSnapshot();
      if (S.Delivered > S.Submitted)
        Violations.fetch_add(1);
      if (S.QueueDepth != S.Submitted - S.Delivered)
        Violations.fetch_add(1);
      if (S.QueueDepth > Capacity)
        Violations.fetch_add(1);
      if (S.Submitted < LastSubmitted || S.Delivered < LastDelivered)
        Violations.fetch_add(1);
      if (S.P50Us > S.P90Us || S.P90Us > S.P99Us)
        Violations.fetch_add(1);
      if (S.Workers != 2)
        Violations.fetch_add(1);
      LastSubmitted = S.Submitted;
      LastDelivered = S.Delivered;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (ir::IRFunction &F : Corpora[P])
        cantFail(Svc->submit(F));
    });
  for (std::thread &Th : Threads)
    Th.join();
  Svc->drain();
  Done.store(true);
  Sampler.join();

  EXPECT_EQ(Violations.load(), 0u);
  ServiceStats Final = Svc->statsSnapshot();
  EXPECT_EQ(Final.Submitted, Producers * PerProducer);
  EXPECT_EQ(Final.Delivered, Producers * PerProducer);
  EXPECT_EQ(Final.QueueDepth, 0u);
  EXPECT_EQ(Final.LatencySamples,
            std::min<std::size_t>(Producers * PerProducer,
                                  CompileService::LatencyWindow));
  // Real work happened, so the window has real latencies in order.
  EXPECT_GT(Final.P50Us, 0.0);
  EXPECT_LE(Final.P50Us, Final.P90Us);
  EXPECT_LE(Final.P90Us, Final.P99Us);
}

TEST(CompileService, StatsSnapshotDuringAndAfterShutdownStaysCoherent) {
  // A sampler racing shutdown() must keep seeing coherent snapshots, and
  // the final counts stay readable from the stopped service.
  auto T = cantFail(makeTarget("vm64"));
  constexpr unsigned N = 20;
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G, N, 300);

  CompileService::Options Opts;
  Opts.Workers = 2;
  Opts.QueueCapacity = 4;
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::atomic<bool> Done{false};
  std::atomic<unsigned> Violations{0};
  std::thread Sampler([&] {
    while (!Done.load()) {
      ServiceStats S = Svc->statsSnapshot();
      if (S.Delivered > S.Submitted ||
          S.QueueDepth != S.Submitted - S.Delivered)
        Violations.fetch_add(1);
    }
  });

  std::size_t Accepted = 0;
  std::thread Producer([&] {
    for (ir::IRFunction &F : Corpus) {
      Expected<std::future<CompileResult>> Fut = Svc->submit(F);
      if (!Fut)
        break;
      ++Accepted;
    }
  });
  while (Svc->delivered() < 2)
    std::this_thread::yield();
  Svc->shutdown();
  Producer.join();
  Done.store(true);
  Sampler.join();

  EXPECT_EQ(Violations.load(), 0u);
  ServiceStats Final = Svc->statsSnapshot();
  EXPECT_EQ(Final.Submitted, Accepted);
  EXPECT_EQ(Final.Delivered, Accepted);
  EXPECT_EQ(Final.QueueDepth, 0u);
  EXPECT_EQ(Final.Workers, 0u);
  EXPECT_EQ(Final.LatencySamples, std::min<std::size_t>(
                                      Accepted, CompileService::LatencyWindow));
}

TEST(CompileService, TaggedSinkRoutesEverySubmissionInOrder) {
  // The multiplexing contract under the socket server: OnResultTagged
  // hands back each submission's tag in global submission order, so a
  // server keying tags by connection can rely on per-tag delivery order.
  auto T = cantFail(makeTarget("x86"));
  constexpr unsigned Producers = 3;
  constexpr unsigned PerProducer = 12;
  std::vector<std::vector<ir::IRFunction>> Corpora;
  for (unsigned P = 0; P < Producers; ++P)
    Corpora.push_back(makeCorpus(T->G, PerProducer, 200));

  std::vector<std::vector<std::size_t>> SeqsByTag(Producers);
  CompileService::Options Opts;
  Opts.Workers = 3;
  Opts.QueueCapacity = 4;
  Opts.OnResultTagged = [&](std::size_t Seq, std::uint64_t Tag,
                            const CompileResult &R) {
    // Serialized by the delivery contract (one callback at a time, in
    // seq order), so plain vectors are safe here.
    ASSERT_LT(Tag, Producers);
    ASSERT_TRUE(R.ok());
    SeqsByTag[Tag].push_back(Seq);
  };
  std::unique_ptr<CompileService> Svc =
      cantFail(CompileService::create(T->G, &T->Dyn, std::move(Opts)));

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (ir::IRFunction &F : Corpora[P])
        cantFail(Svc->submit(F, P));
    });
  for (std::thread &Th : Threads)
    Th.join();
  Svc->drain();

  // Every tag saw exactly its own submissions, each tag's seqs ascend
  // (per-tag delivery order == per-tag submission order), and the union
  // covers every seq exactly once.
  std::vector<bool> Seen(Producers * PerProducer, false);
  for (unsigned P = 0; P < Producers; ++P) {
    EXPECT_EQ(SeqsByTag[P].size(), PerProducer);
    for (std::size_t I = 1; I < SeqsByTag[P].size(); ++I)
      EXPECT_LT(SeqsByTag[P][I - 1], SeqsByTag[P][I]);
    for (std::size_t Seq : SeqsByTag[P]) {
      ASSERT_LT(Seq, Seen.size());
      EXPECT_FALSE(Seen[Seq]);
      Seen[Seq] = true;
    }
  }
}
