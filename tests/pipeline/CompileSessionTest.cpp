//===- tests/pipeline/CompileSessionTest.cpp ---------------------------------===//
//
// Part of the odburg project.
//
// The end-to-end compile pipeline. Contracts under test: a CompileSession
// batch is equivalent to the one-off label/reduce/emit calls it replaces;
// the concatenated assembly and total cost are byte-identical for any
// thread count; per-function failures are surfaced as diagnostics without
// poisoning the rest of the batch; and the shared automaton stays warm
// across batches.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "support/SmallVector.h"
#include "targets/Target.h"
#include "workload/Corpus.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

#include <vector>

using namespace odburg;
using namespace odburg::pipeline;
using namespace odburg::targets;
using namespace odburg::workload;

namespace {

std::vector<ir::IRFunction> makeCorpus(const Grammar &G) {
  std::vector<ir::IRFunction> Corpus;
  for (const char *Name : {"gzip-like", "mcf-like", "art-like"}) {
    const Profile *P = findProfile(Name);
    EXPECT_NE(P, nullptr);
    std::vector<ir::IRFunction> Fns =
        cantFail(generateBatch(*P, G, /*Count=*/4, /*TargetNodes=*/1200));
    for (ir::IRFunction &F : Fns)
      Corpus.push_back(std::move(F));
  }
  return Corpus;
}

std::vector<ir::IRFunction *> pointers(std::vector<ir::IRFunction> &Fns) {
  std::vector<ir::IRFunction *> Ptrs;
  for (ir::IRFunction &F : Fns)
    Ptrs.push_back(&F);
  return Ptrs;
}

} // namespace

TEST(CompileSession, MatchesOneOffPipelinePerFunction) {
  // The session must reproduce exactly what the ad-hoc DP pipeline
  // produces (PipelineTest establishes DP == automaton; this establishes
  // batch == one-off, including the buffer-backed emit path).
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileSession Session(*T);
  std::vector<CompileResult> Results = Session.compileFunctions(Ptrs, 1);
  ASSERT_EQ(Results.size(), Corpus.size());

  for (std::size_t I = 0; I < Corpus.size(); ++I) {
    ASSERT_TRUE(Results[I].ok()) << Results[I].Diagnostic;
    DPLabeling Ref = DPLabeler(T->G, &T->Dyn).label(Corpus[I]);
    Selection SRef = cantFail(reduce(T->G, Corpus[I], Ref, &T->Dyn));
    AsmOutput AsmRef = cantFail(emitAsm(T->G, Corpus[I], SRef));
    EXPECT_EQ(Results[I].Asm, AsmRef.text());
    EXPECT_EQ(Results[I].Instructions, AsmRef.instructions());
    EXPECT_EQ(Results[I].Sel.TotalCost, SRef.TotalCost);
  }
}

TEST(CompileSession, AssemblyAndCostInvariantUnderThreadCount) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  std::string RefAsm;
  Cost RefCost = Cost::zero();
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    CompileSession Session(*T);
    std::vector<CompileResult> Results =
        Session.compileFunctions(Ptrs, Threads);
    for (const CompileResult &R : Results)
      ASSERT_TRUE(R.ok()) << R.Diagnostic;
    std::string Asm = CompileSession::concatAsm(Results);
    Cost Total = CompileSession::totalCost(Results);
    EXPECT_FALSE(Asm.empty());
    if (Threads == 1) {
      RefAsm = std::move(Asm);
      RefCost = Total;
    } else {
      EXPECT_EQ(Asm, RefAsm) << "thread count " << Threads
                             << " diverged from serial assembly";
      EXPECT_EQ(Total, RefCost);
    }
  }
}

TEST(CompileSession, WarmSecondBatchComputesNoStates) {
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileSession Session(*T);
  SessionStats Cold;
  std::vector<CompileResult> First =
      Session.compileFunctions(Ptrs, 4, &Cold);
  EXPECT_EQ(Cold.Functions, Corpus.size());
  EXPECT_EQ(Cold.Failed, 0u);
  EXPECT_GT(Cold.Label.StatesComputed, 0u);

  SessionStats Warm;
  std::vector<CompileResult> Second =
      Session.compileFunctions(Ptrs, 4, &Warm);
  EXPECT_EQ(Warm.Label.StatesComputed, 0u);
  EXPECT_EQ(Warm.Label.CacheHits, Warm.Label.CacheProbes);
  // Warm output is identical to cold output, and the stats agree with it.
  EXPECT_EQ(CompileSession::concatAsm(First),
            CompileSession::concatAsm(Second));
  EXPECT_EQ(Warm.TotalCost, CompileSession::totalCost(Second));
  std::uint64_t Instructions = 0;
  for (const CompileResult &R : Second)
    Instructions += R.Instructions;
  EXPECT_EQ(Warm.Instructions, Instructions);
}

TEST(CompileSession, SerialEntryPointMatchesBatch) {
  auto T = cantFail(makeTarget("mips"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileSession Batch(*T);
  std::vector<CompileResult> Results = Batch.compileFunctions(Ptrs, 2);

  CompileSession OneByOne(*T);
  for (std::size_t I = 0; I < Corpus.size(); ++I) {
    CompileResult R = OneByOne.compileFunction(Corpus[I]);
    ASSERT_TRUE(R.ok()) << R.Diagnostic;
    EXPECT_EQ(R.Asm, Results[I].Asm);
    EXPECT_EQ(R.Sel.TotalCost, Results[I].Sel.TotalCost);
  }
}

TEST(CompileSession, BackendOptionSelectsEngineAndPreservesOutput) {
  // The same fixed-cost corpus through all three Options::Backend values:
  // identical assembly and cost, correct backend plumbed, engine-typical
  // stats (DP checks rules, offline only indexes, on-demand probes).
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  std::string RefAsm;
  Cost RefCost = Cost::zero();
  bool HaveRef = false;
  for (BackendKind Kind :
       {BackendKind::DP, BackendKind::Offline, BackendKind::OnDemand}) {
    CompileSession::Options Opts;
    Opts.Backend = Kind;
    auto Session = CompileSession::create(T->Fixed, nullptr, Opts);
    ASSERT_TRUE(static_cast<bool>(Session)) << Session.message();
    EXPECT_EQ((*Session)->backend().kind(), Kind);

    SessionStats Stats;
    std::vector<CompileResult> Results =
        (*Session)->compileFunctions(Ptrs, 2, &Stats);
    for (const CompileResult &R : Results)
      ASSERT_TRUE(R.ok()) << R.Diagnostic;
    std::string Asm = CompileSession::concatAsm(Results);
    Cost Total = CompileSession::totalCost(Results);
    if (!HaveRef) {
      HaveRef = true;
      RefAsm = std::move(Asm);
      RefCost = Total;
    } else {
      EXPECT_EQ(Asm, RefAsm) << backendName(Kind);
      EXPECT_EQ(Total, RefCost) << backendName(Kind);
    }

    switch (Kind) {
    case BackendKind::DP:
      EXPECT_GT(Stats.Label.RuleChecks, 0u);
      EXPECT_EQ(Stats.Label.TableLookups, 0u);
      break;
    case BackendKind::Offline:
      EXPECT_GT(Stats.Label.TableLookups, 0u);
      EXPECT_EQ(Stats.Label.CacheProbes, 0u);
      break;
    case BackendKind::OnDemand:
      EXPECT_GT(Stats.Label.L1Probes + Stats.Label.CacheProbes, 0u);
      break;
    }
  }
}

TEST(CompileSession, CreateReportsTypedErrorForOfflineDynamicCosts) {
  auto T = cantFail(makeTarget("x86"));
  CompileSession::Options Opts;
  Opts.Backend = BackendKind::Offline;
  auto Session = CompileSession::create(T->G, &T->Dyn, Opts);
  ASSERT_FALSE(static_cast<bool>(Session));
  EXPECT_EQ(Session.kind(), ErrorKind::UnsupportedDynamicCosts);
}

TEST(CompileSession, L1HitRateSurfacesInSessionStats) {
  auto T = cantFail(makeTarget("vm64"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileSession Session(*T);
  SessionStats Cold;
  Session.compileFunctions(Ptrs, 2, &Cold);

  // Warm batch: virtually every node resolves in some worker's L1, a
  // dense row, or the shared cache; the L1 must be doing real work and
  // the three tiers must account for every node exactly once.
  SessionStats Warm;
  Session.compileFunctions(Ptrs, 2, &Warm);
  EXPECT_GT(Warm.Label.L1Probes, 0u);
  EXPECT_GT(Warm.l1HitRate(), 0.5);
  EXPECT_EQ(Warm.Label.NodesLabeled, Warm.Label.L1Hits +
                                         Warm.Label.DenseHits +
                                         Warm.Label.CacheProbes);
  EXPECT_EQ(Warm.Label.CacheHits, Warm.Label.CacheProbes);

  // Ablated: no L1 probes at all, all nodes on the dense tier or the
  // shared cache.
  CompileSession::Options NoL1;
  NoL1.BackendOpts.UseL1Cache = false;
  CompileSession Plain(T->G, &T->Dyn, NoL1);
  Plain.compileFunctions(Ptrs, 2);
  SessionStats PlainWarm;
  Plain.compileFunctions(Ptrs, 2, &PlainWarm);
  EXPECT_EQ(PlainWarm.Label.L1Probes, 0u);
  EXPECT_EQ(PlainWarm.l1HitRate(), 0.0);
  EXPECT_EQ(PlainWarm.Label.NodesLabeled,
            PlainWarm.Label.DenseHits + PlainWarm.Label.CacheProbes);

  // Dense rows off: every L1 miss lands on the shared cache, the classic
  // two-level accounting.
  CompileSession::Options NoDense;
  NoDense.BackendOpts.Automaton.DenseRows = false;
  CompileSession TwoTier(T->G, &T->Dyn, NoDense);
  TwoTier.compileFunctions(Ptrs, 2);
  SessionStats TwoTierWarm;
  TwoTier.compileFunctions(Ptrs, 2, &TwoTierWarm);
  EXPECT_EQ(TwoTierWarm.Label.DenseProbes, 0u);
  EXPECT_EQ(TwoTierWarm.denseHitRate(), 0.0);
  EXPECT_EQ(TwoTierWarm.Label.NodesLabeled,
            TwoTierWarm.Label.L1Hits + TwoTierWarm.Label.CacheProbes);
}

TEST(CompileSession, HitRateAccessorsAreZeroNotNaNOnZeroProbes) {
  // A default-constructed stats object has zero probes everywhere; the
  // rate accessors must read 0, not NaN (division by zero would poison
  // every JSON report and comparison downstream).
  SessionStats Empty;
  EXPECT_EQ(Empty.l1HitRate(), 0.0);
  EXPECT_EQ(Empty.denseHitRate(), 0.0);

  // A DP-backend batch never probes any tier: same invariant on a stats
  // object that went through a real compile.
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->G);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);
  CompileSession::Options Opts;
  Opts.Backend = BackendKind::DP;
  CompileSession Session(T->G, &T->Dyn, Opts);
  SessionStats Stats;
  Session.compileFunctions(Ptrs, 2, &Stats);
  EXPECT_GT(Stats.Label.NodesLabeled, 0u);
  EXPECT_EQ(Stats.Label.L1Probes, 0u);
  EXPECT_EQ(Stats.Label.DenseProbes, 0u);
  EXPECT_EQ(Stats.l1HitRate(), 0.0);
  EXPECT_EQ(Stats.denseHitRate(), 0.0);
  // And the tier report for an engine without a tier stack is all-off,
  // not adaptive.
  EXPECT_FALSE(Stats.Tier.Adaptive);
  EXPECT_FALSE(Stats.Tier.Config.L1On);
  EXPECT_FALSE(Stats.Tier.Config.DenseOn);
}

TEST(CompileSession, TierDecisionsReportStaticAndAdaptiveConfigs) {
  auto T = cantFail(makeTarget("x86"));
  std::vector<ir::IRFunction> Corpus = makeCorpus(T->Fixed);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  // Adaptive disabled (the default): the report mirrors the static
  // options and stays constant across batches — no controller churn.
  CompileSession Static(T->Fixed, nullptr);
  SessionStats S1, S2;
  Static.compileFunctions(Ptrs, 2, &S1);
  Static.compileFunctions(Ptrs, 2, &S2);
  EXPECT_FALSE(S1.Tier.Adaptive);
  EXPECT_TRUE(S1.Tier.Config.L1On);
  EXPECT_TRUE(S1.Tier.Config.DenseOn);
  EXPECT_EQ(S1.Tier.Windows, 0u);
  EXPECT_EQ(S2.Tier.Reconfigs, 0u);
  EXPECT_EQ(S1.Tier.Config.pack(), S2.Tier.Config.pack());

  // Adaptive enabled: the flag flips and the same corpus still compiles
  // to the same bytes.
  CompileSession::Options Opts;
  Opts.BackendOpts.Adaptive = true;
  CompileSession Adaptive(T->Fixed, nullptr, Opts);
  SessionStats SA;
  std::vector<CompileResult> RA = Adaptive.compileFunctions(Ptrs, 2, &SA);
  EXPECT_TRUE(SA.Tier.Adaptive);
  std::vector<CompileResult> RS = Static.compileFunctions(Ptrs, 2);
  EXPECT_EQ(CompileSession::concatAsm(RA), CompileSession::concatAsm(RS));
}

namespace {

/// A tiny grammar with emit templates, plus a corpus where the middle
/// function's root has no derivation from the start nonterminal.
const char *brokenBatchGrammar() {
  return R"(
    %start stmt
    stmt: Store(reg, reg) (1) "st %2, %1";
    reg:  Reg (0) "=r%c";
  )";
}

void buildStore(ir::IRFunction &F, const Grammar &G, int Dst, int Src) {
  SmallVector<ir::Node *, 2> C{F.makeLeaf(G.findOperator("Reg"), Dst),
                               F.makeLeaf(G.findOperator("Reg"), Src)};
  F.addRoot(F.makeNode(G.findOperator("Store"), C));
}

} // namespace

TEST(CompileSession, PerFunctionErrorDoesNotPoisonBatch) {
  Grammar G = cantFail(parseGrammar(brokenBatchGrammar()));
  std::vector<ir::IRFunction> Corpus(3);
  buildStore(Corpus[0], G, 1, 2);
  // A bare Reg root: reg is derivable but stmt is not.
  Corpus[1].addRoot(Corpus[1].makeLeaf(G.findOperator("Reg"), 7));
  buildStore(Corpus[2], G, 3, 4);
  std::vector<ir::IRFunction *> Ptrs = pointers(Corpus);

  CompileSession Session(G);
  for (unsigned Threads : {1u, 2u}) {
    SessionStats Stats;
    std::vector<CompileResult> Results =
        Session.compileFunctions(Ptrs, Threads, &Stats);
    ASSERT_EQ(Results.size(), 3u);
    EXPECT_TRUE(Results[0].ok());
    EXPECT_EQ(Results[0].Asm, "st r2, r1\n");
    ASSERT_FALSE(Results[1].ok());
    EXPECT_NE(Results[1].Diagnostic.find("no derivation"), std::string::npos);
    EXPECT_TRUE(Results[1].Asm.empty());
    // The failure is isolated: the function after it compiles normally,
    // including when the same worker scratch handled the failed one.
    EXPECT_TRUE(Results[2].ok());
    EXPECT_EQ(Results[2].Asm, "st r4, r3\n");
    EXPECT_EQ(Stats.Failed, 1u);
    EXPECT_EQ(Stats.Functions, 3u);
    // Failed functions contribute nothing to the batch totals.
    EXPECT_EQ(Stats.Instructions, 2u);
    EXPECT_EQ(CompileSession::concatAsm(Results), "st r2, r1\nst r4, r3\n");
  }
}
