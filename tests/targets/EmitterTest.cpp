//===- tests/targets/EmitterTest.cpp ----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "targets/AsmEmitter.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "targets/Target.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::targets;

namespace {

class EmitterTest : public ::testing::Test {
protected:
  void SetUp() override {
    T = cantFail(makeTarget("x86"));
    Ops = cantFail(resolveCanonicalOps(T->G));
  }

  AsmOutput compile(ir::IRFunction &F) {
    DPLabeling L = DPLabeler(T->G, &T->Dyn).label(F);
    Selection S = cantFail(reduce(T->G, F, L, &T->Dyn));
    return cantFail(emitAsm(T->G, F, S));
  }

  std::unique_ptr<Target> T;
  CanonicalOps Ops;
};

} // namespace

TEST_F(EmitterTest, StoresConstantToFrameSlot) {
  ir::IRFunction F;
  ir::Node *Addr = F.makeLeaf(Ops.AddrL, 24);
  ir::Node *C = F.makeLeaf(Ops.Const, 7);
  SmallVector<ir::Node *, 2> SC{Addr, C};
  F.addRoot(F.makeNode(Ops.Store, SC));
  AsmOutput Out = compile(F);
  ASSERT_EQ(Out.instructions(), 1u);
  EXPECT_EQ(Out.Lines[0], "movq $7, 24(%rbp)");
}

TEST_F(EmitterTest, RmwFusesToSingleInstruction) {
  ir::IRFunction F;
  ir::Node *A1 = F.makeLeaf(Ops.AddrL, 8);
  ir::Node *A2 = F.makeLeaf(Ops.AddrL, 8);
  SmallVector<ir::Node *, 1> LC{A2};
  ir::Node *Ld = F.makeNode(Ops.Load, LC);
  ir::Node *C = F.makeLeaf(Ops.Const, 1);
  SmallVector<ir::Node *, 2> AC{Ld, C};
  ir::Node *Sum = F.makeNode(Ops.Add, AC);
  SmallVector<ir::Node *, 2> SC{A1, Sum};
  F.addRoot(F.makeNode(Ops.Store, SC));
  AsmOutput Out = compile(F);
  // x = x + 1 is one read-modify-write instruction.
  ASSERT_EQ(Out.instructions(), 1u);
  EXPECT_EQ(Out.Lines[0], "addq $1, 8(%rbp)");
}

TEST_F(EmitterTest, MemoryOperandFolding) {
  // r = r2 + mem: the load folds into the add as a memory operand.
  ir::IRFunction F;
  ir::Node *R = F.makeLeaf(Ops.Reg, 3);
  ir::Node *A = F.makeLeaf(Ops.AddrL, 16);
  SmallVector<ir::Node *, 1> LC{A};
  ir::Node *Ld = F.makeNode(Ops.Load, LC);
  SmallVector<ir::Node *, 2> AC{R, Ld};
  ir::Node *Sum = F.makeNode(Ops.Add, AC);
  ir::Node *Dst = F.makeLeaf(Ops.AddrL, 32);
  SmallVector<ir::Node *, 2> SC{Dst, Sum};
  F.addRoot(F.makeNode(Ops.Store, SC));
  AsmOutput Out = compile(F);
  ASSERT_EQ(Out.instructions(), 2u);
  EXPECT_EQ(Out.Lines[0], "addq 16(%rbp), %r3, %v0");
  EXPECT_EQ(Out.Lines[1], "movq %v0, 32(%rbp)");
}

TEST_F(EmitterTest, CompareBranchUsesConditionAlias) {
  ir::IRFunction F;
  ir::Node *L = F.makeLeaf(Ops.Reg, 1);
  ir::Node *R = F.makeLeaf(Ops.Reg, 2);
  SmallVector<ir::Node *, 2> CC{L, R};
  ir::Node *Cmp = F.makeNode(Ops.CmpLT, CC);
  SmallVector<ir::Node *, 1> BC{Cmp};
  F.addRoot(F.makeNode(Ops.CBr, BC, 5));
  AsmOutput Out = compile(F);
  ASSERT_EQ(Out.instructions(), 2u);
  EXPECT_EQ(Out.Lines[0], "cmpq %r2, %r1");
  EXPECT_EQ(Out.Lines[1], "jl .L5");
}

TEST_F(EmitterTest, LabelsAndJumps) {
  ir::IRFunction F;
  F.addRoot(F.makeLeaf(Ops.Label, 3));
  F.addRoot(F.makeLeaf(Ops.Br, 3));
  AsmOutput Out = compile(F);
  ASSERT_EQ(Out.instructions(), 2u);
  EXPECT_EQ(Out.Lines[0], ".L3:");
  EXPECT_EQ(Out.Lines[1], "jmp .L3");
}

TEST_F(EmitterTest, VregsAreDistinct) {
  // (r1 + r2) * (r3 + r4): two adds into distinct vregs, then a multiply.
  ir::IRFunction F;
  SmallVector<ir::Node *, 2> C1{F.makeLeaf(Ops.Reg, 1), F.makeLeaf(Ops.Reg, 2)};
  ir::Node *S1 = F.makeNode(Ops.Add, C1);
  SmallVector<ir::Node *, 2> C2{F.makeLeaf(Ops.Reg, 3), F.makeLeaf(Ops.Reg, 4)};
  ir::Node *S2 = F.makeNode(Ops.Add, C2);
  SmallVector<ir::Node *, 2> C3{S1, S2};
  ir::Node *Prod = F.makeNode(Ops.Mul, C3);
  SmallVector<ir::Node *, 1> RC{Prod};
  F.addRoot(F.makeNode(Ops.Ret, RC));
  AsmOutput Out = compile(F);
  ASSERT_GE(Out.instructions(), 3u);
  EXPECT_NE(Out.Lines[0], Out.Lines[1]);
  EXPECT_NE(Out.text().find("%v0"), std::string::npos);
  EXPECT_NE(Out.text().find("%v1"), std::string::npos);
}

TEST_F(EmitterTest, SizeBytesCountsText) {
  ir::IRFunction F;
  F.addRoot(F.makeLeaf(Ops.Label, 1));
  AsmOutput Out = compile(F);
  EXPECT_EQ(Out.sizeBytes(), Out.text().size());
}

TEST(EmitterErrors, BadPlaceholderIndexReported) {
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    reg:  Reg (0) "=%%r%c";
    stmt: Store(reg, reg) (1) "st %3, %1";
  )"));
  ir::IRFunction F;
  OperatorId RegOp = G.findOperator("Reg");
  OperatorId StoreOp = G.findOperator("Store");
  SmallVector<ir::Node *, 2> C{F.makeLeaf(RegOp, 1), F.makeLeaf(RegOp, 2)};
  F.addRoot(F.makeNode(StoreOp, C));
  DPLabeling L = DPLabeler(G).label(F);
  Selection S = cantFail(reduce(G, F, L));
  Expected<targets::AsmOutput> Out = targets::emitAsm(G, F, S);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_NE(Out.message().find("%3"), std::string::npos);
}
