//===- tests/targets/TargetTest.cpp -----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

#include "core/OnDemandAutomaton.h"
#include "offline/OfflineTables.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::targets;

class TargetSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(TargetSuite, BuildsAndResolvesCanonicalOps) {
  auto T = cantFail(makeTarget(GetParam()));
  EXPECT_EQ(T->Name, GetParam());
  EXPECT_TRUE(T->G.isFinalized());
  EXPECT_TRUE(T->Fixed.isFinalized());
  cantFail(resolveCanonicalOps(T->G));
  cantFail(resolveCanonicalOps(T->Fixed));
}

TEST_P(TargetSuite, HasDynamicCostRules) {
  auto T = cantFail(makeTarget(GetParam()));
  EXPECT_TRUE(T->G.hasDynCosts());
  EXPECT_FALSE(T->Fixed.hasDynCosts());
  GrammarStats S = T->G.stats();
  EXPECT_GT(S.DynCostRules, 0u);
  EXPECT_GT(S.SourceRules, 30u);
  EXPECT_GT(S.ChainRules, 0u);
}

TEST_P(TargetSuite, OperatorIdsStableAcrossStripping) {
  auto T = cantFail(makeTarget(GetParam()));
  ASSERT_EQ(T->G.numOperators(), T->Fixed.numOperators());
  for (OperatorId Op = 0; Op < T->G.numOperators(); ++Op)
    EXPECT_EQ(T->G.operatorName(Op), T->Fixed.operatorName(Op));
}

TEST_P(TargetSuite, OfflineTablesGenerateForFixedGrammar) {
  auto T = cantFail(makeTarget(GetParam()));
  CompiledTables Tables = cantFail(OfflineTableGen(T->Fixed).generate());
  EXPECT_GT(Tables.stats().NumStates, 10u);
  EXPECT_GT(Tables.stats().TableBytes, 1000u);
}

TEST_P(TargetSuite, EnginesAgreeOnSyntheticWorkload) {
  auto T = cantFail(makeTarget(GetParam()));
  workload::Profile P;
  P.Name = "smoke";
  P.TargetNodes = 3000;
  P.Seed = 42;
  ir::IRFunction F = cantFail(workload::generate(P, T->G));

  DPLabeling Ref = DPLabeler(T->G, &T->Dyn).label(F);
  Selection SRef = cantFail(reduce(T->G, F, Ref, &T->Dyn));

  OnDemandAutomaton A(T->G, &T->Dyn);
  A.labelFunction(F);
  Selection SAuto = cantFail(reduce(T->G, F, A, &T->Dyn));

  ASSERT_EQ(SRef.Matches.size(), SAuto.Matches.size());
  for (std::size_t I = 0; I < SRef.Matches.size(); ++I) {
    ASSERT_EQ(SRef.Matches[I].Where, SAuto.Matches[I].Where);
    ASSERT_EQ(SRef.Matches[I].Source, SAuto.Matches[I].Source);
  }
  EXPECT_EQ(SRef.TotalCost, SAuto.TotalCost);
}

TEST_P(TargetSuite, OfflineAgreesOnFixedGrammar) {
  auto T = cantFail(makeTarget(GetParam()));
  workload::Profile P;
  P.Name = "smoke";
  P.TargetNodes = 2000;
  P.Seed = 43;
  ir::IRFunction F = cantFail(workload::generate(P, T->Fixed));

  DPLabeling Ref = DPLabeler(T->Fixed).label(F);
  Selection SRef = cantFail(reduce(T->Fixed, F, Ref));

  CompiledTables Tables = cantFail(OfflineTableGen(T->Fixed).generate());
  TableLabeler L(Tables);
  L.labelFunction(F);
  Selection SOff = cantFail(reduce(T->Fixed, F, L));

  ASSERT_EQ(SRef.Matches.size(), SOff.Matches.size());
  for (std::size_t I = 0; I < SRef.Matches.size(); ++I)
    ASSERT_EQ(SRef.Matches[I].Source, SOff.Matches[I].Source);
  EXPECT_EQ(SRef.TotalCost, SOff.TotalCost);
}

TEST_P(TargetSuite, DynamicCostsNeverHurtCodeQuality) {
  // The full grammar can only improve on the stripped one: its rule set is
  // a superset whose extra rules are applicability-gated.
  auto T = cantFail(makeTarget(GetParam()));
  workload::Profile P;
  P.Name = "smoke";
  P.TargetNodes = 4000;
  P.Seed = 44;
  P.RmwPercent = 30;
  ir::IRFunction F = cantFail(workload::generate(P, T->G));

  DPLabeling Full = DPLabeler(T->G, &T->Dyn).label(F);
  Selection SFull = cantFail(reduce(T->G, F, Full, &T->Dyn));
  DPLabeling Fixed = DPLabeler(T->Fixed).label(F);
  Selection SFixed = cantFail(reduce(T->Fixed, F, Fixed));
  EXPECT_LE(SFull.TotalCost.value(), SFixed.TotalCost.value());
}

INSTANTIATE_TEST_SUITE_P(AllTargets, TargetSuite,
                         ::testing::ValuesIn(targetNames()));

TEST(Target, UnknownNameFails) {
  Expected<std::unique_ptr<Target>> T = makeTarget("pdp11");
  ASSERT_FALSE(static_cast<bool>(T));
  EXPECT_NE(T.message().find("x86"), std::string::npos);
}

TEST(Target, X86RmwNeedsEqualAddresses) {
  auto T = cantFail(makeTarget("x86"));
  CanonicalOps Ops = cantFail(resolveCanonicalOps(T->G));
  OnDemandAutomaton A(T->G, &T->Dyn);

  auto BuildRmw = [&](std::int64_t StoreOff, std::int64_t LoadOff) {
    auto F = std::make_unique<ir::IRFunction>();
    ir::Node *SAddr = F->makeLeaf(Ops.AddrL, StoreOff);
    ir::Node *LAddr = F->makeLeaf(Ops.AddrL, LoadOff);
    SmallVector<ir::Node *, 1> LC{LAddr};
    ir::Node *Ld = F->makeNode(Ops.Load, LC);
    ir::Node *R = F->makeLeaf(Ops.Reg, 2);
    SmallVector<ir::Node *, 2> AC{Ld, R};
    ir::Node *AddN = F->makeNode(Ops.Add, AC);
    SmallVector<ir::Node *, 2> SC{SAddr, AddN};
    F->addRoot(F->makeNode(Ops.Store, SC));
    return F;
  };

  auto FSame = BuildRmw(16, 16);
  A.labelFunction(*FSame);
  Selection SSame = cantFail(reduce(T->G, *FSame, A, &T->Dyn));
  EXPECT_EQ(SSame.TotalCost, Cost(1)); // One fused addq-to-memory.

  auto FDiff = BuildRmw(16, 24);
  A.labelFunction(*FDiff);
  Selection SDiff = cantFail(reduce(T->G, *FDiff, A, &T->Dyn));
  EXPECT_GT(SDiff.TotalCost.value(), 1u); // load + add + store.
}

TEST(Target, ImmediateWidthsDifferAcrossTargets) {
  // 0x3000 fits imm16/imm32 but not imm13/imm8: the same constant is an
  // immediate on mips/x86 and needs materialization on sparc/alpha.
  auto CostOfStoreConst = [](const char *Name) {
    auto T = cantFail(makeTarget(Name));
    CanonicalOps Ops = cantFail(resolveCanonicalOps(T->G));
    ir::IRFunction F;
    ir::Node *Addr = F.makeLeaf(Ops.AddrL, 8);
    ir::Node *Reg = F.makeLeaf(Ops.Reg, 1);
    ir::Node *Big = F.makeLeaf(Ops.Const, 0x3000);
    SmallVector<ir::Node *, 2> AC{Reg, Big};
    ir::Node *Sum = F.makeNode(Ops.Add, AC);
    SmallVector<ir::Node *, 2> SC{Addr, Sum};
    F.addRoot(F.makeNode(Ops.Store, SC));
    DPLabeling L = DPLabeler(T->G, &T->Dyn).label(F);
    return cantFail(reduce(T->G, F, L, &T->Dyn)).TotalCost.value();
  };
  EXPECT_LT(CostOfStoreConst("mips"), CostOfStoreConst("sparc"));
  EXPECT_LE(CostOfStoreConst("sparc"), CostOfStoreConst("alpha"));
}
