//===- tests/support/SmallVectorTest.cpp -----------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/SmallVector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace odburg;

TEST(SmallVector, StartsEmptyInline) {
  SmallVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.size(), 0u);
  EXPECT_EQ(V.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.capacity(), 4u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents) {
  SmallVector<int, 2> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(I * 3);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_GE(V.capacity(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I * 3);
}

TEST(SmallVector, NonTrivialElementType) {
  SmallVector<std::string, 2> V;
  for (int I = 0; I < 20; ++I)
    V.push_back("element-" + std::to_string(I));
  EXPECT_EQ(V[19], "element-19");
  V.pop_back();
  EXPECT_EQ(V.size(), 19u);
  V.clear();
  EXPECT_TRUE(V.empty());
}

TEST(SmallVector, EmplaceBackReturnsReference) {
  SmallVector<std::pair<int, int>, 2> V;
  auto &P = V.emplace_back(1, 2);
  EXPECT_EQ(P.first, 1);
  EXPECT_EQ(V.back().second, 2);
}

TEST(SmallVector, ResizeGrowsValueInitialized) {
  SmallVector<int, 2> V;
  V.resize(10);
  EXPECT_EQ(V.size(), 10u);
  for (int X : V)
    EXPECT_EQ(X, 0);
  V.resize(3);
  EXPECT_EQ(V.size(), 3u);
}

TEST(SmallVector, ResizeWithFillValue) {
  SmallVector<int, 2> V;
  V.resize(5, 7);
  for (int X : V)
    EXPECT_EQ(X, 7);
}

TEST(SmallVector, AssignReplacesContents) {
  SmallVector<int, 4> V{1, 2, 3};
  V.assign(2, 9);
  ASSERT_EQ(V.size(), 2u);
  EXPECT_EQ(V[0], 9);
  EXPECT_EQ(V[1], 9);
}

TEST(SmallVector, CopyConstructAndAssign) {
  SmallVector<int, 2> A{1, 2, 3, 4};
  SmallVector<int, 2> B(A);
  EXPECT_EQ(A, B);
  SmallVector<int, 2> C;
  C = A;
  EXPECT_EQ(A, C);
  C.push_back(5);
  EXPECT_EQ(A.size(), 4u); // Deep copy, no aliasing.
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<int, 2> A;
  for (int I = 0; I < 50; ++I)
    A.push_back(I);
  const int *Data = A.data();
  SmallVector<int, 2> B(std::move(A));
  EXPECT_EQ(B.data(), Data); // Heap buffer transferred, not copied.
  EXPECT_EQ(B.size(), 50u);
  EXPECT_TRUE(A.empty());
}

TEST(SmallVector, MoveInlineCopiesElements) {
  SmallVector<std::string, 4> A{"a", "b"};
  SmallVector<std::string, 4> B(std::move(A));
  ASSERT_EQ(B.size(), 2u);
  EXPECT_EQ(B[0], "a");
  EXPECT_TRUE(A.empty());
}

TEST(SmallVector, EraseShiftsTail) {
  SmallVector<int, 4> V{1, 2, 3, 4};
  V.erase(V.begin() + 1);
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[1], 3);
  EXPECT_EQ(V[2], 4);
}

TEST(SmallVector, InitializerListAndEquality) {
  SmallVector<int, 2> A{1, 2, 3};
  SmallVector<int, 2> B{1, 2, 3};
  SmallVector<int, 2> C{1, 2};
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A == C);
}

TEST(SmallVector, AppendRange) {
  int Raw[] = {5, 6, 7};
  SmallVector<int, 2> V{1};
  V.append(Raw, Raw + 3);
  ASSERT_EQ(V.size(), 4u);
  EXPECT_EQ(V[3], 7);
}

TEST(SmallVector, MoveAssignIntoUsedVector) {
  SmallVector<int, 2> A;
  for (int I = 0; I < 30; ++I)
    A.push_back(I);
  SmallVector<int, 2> B{9, 9, 9, 9, 9};
  B = std::move(A);
  EXPECT_EQ(B.size(), 30u);
  EXPECT_EQ(B[29], 29);
}

TEST(SmallVector, SizeErasedBaseInterface) {
  SmallVector<int, 4> V{1, 2, 3};
  SmallVectorImpl<int> &Base = V;
  Base.push_back(4);
  EXPECT_EQ(V.size(), 4u);
  SmallVector<int, 8> Copy(Base);
  EXPECT_EQ(Copy.size(), 4u);
}
