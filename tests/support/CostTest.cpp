//===- tests/support/CostTest.cpp -------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/Cost.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(Cost, DefaultIsInfinite) {
  Cost C;
  EXPECT_TRUE(C.isInfinite());
  EXPECT_FALSE(C.isFinite());
}

TEST(Cost, FiniteAddition) {
  Cost A(3), B(4);
  EXPECT_EQ((A + B).value(), 7u);
}

TEST(Cost, InfinityAbsorbsAddition) {
  Cost A(3);
  EXPECT_TRUE((A + Cost::infinity()).isInfinite());
  EXPECT_TRUE((Cost::infinity() + A).isInfinite());
  EXPECT_TRUE((Cost::infinity() + Cost::infinity()).isInfinite());
}

TEST(Cost, AdditionSaturatesBelowInfinity) {
  Cost Big(Cost::MaxFinite);
  Cost Sum = Big + Big;
  EXPECT_TRUE(Sum.isFinite()); // Saturates; never wraps into infinity.
  EXPECT_EQ(Sum.value(), Cost::MaxFinite);
}

TEST(Cost, ComparisonOrdersInfinityLast) {
  EXPECT_LT(Cost(5), Cost(6));
  EXPECT_LT(Cost(1000000), Cost::infinity());
  EXPECT_EQ(Cost(5), Cost(5));
}

TEST(Cost, SubtractionForNormalization) {
  Cost A(10), Delta(4);
  EXPECT_EQ((A - Delta).value(), 6u);
  EXPECT_TRUE((Cost::infinity() - Delta).isInfinite());
}

TEST(Cost, PlusEquals) {
  Cost A(1);
  A += Cost(2);
  EXPECT_EQ(A.value(), 3u);
  A += Cost::infinity();
  EXPECT_TRUE(A.isInfinite());
}
