//===- tests/support/HashRngTest.cpp ----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace odburg;

TEST(Hashing, MixIsDeterministic) {
  EXPECT_EQ(hashMix(123), hashMix(123));
  EXPECT_NE(hashMix(123), hashMix(124));
}

TEST(Hashing, CombineOrderSensitive) {
  std::uint64_t A = hashCombine(hashCombine(0, 1), 2);
  std::uint64_t B = hashCombine(hashCombine(0, 2), 1);
  EXPECT_NE(A, B);
}

TEST(Hashing, RangeMatchesManualFold) {
  std::uint32_t Data[] = {10, 20, 30};
  std::uint64_t H1 = hashRange(Data, Data + 3);
  std::uint64_t H2 = 0x5bd1e995u;
  for (std::uint32_t V : Data)
    H2 = hashCombine(H2, V);
  EXPECT_EQ(H1, H2);
}

TEST(Hashing, StringsDistinguished) {
  EXPECT_NE(hashString("reg"), hashString("addr"));
  EXPECT_EQ(hashString("stmt"), hashString("stmt"));
}

TEST(RNG, DeterministicBySeed) {
  RNG A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(RNG, NextBelowStaysInBounds) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RNG, NextInRangeInclusive) {
  RNG R(7);
  std::set<std::int64_t> Seen;
  for (int I = 0; I < 2000; ++I) {
    std::int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u); // All five values hit.
}

TEST(RNG, ChanceExtremes) {
  RNG R(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}
