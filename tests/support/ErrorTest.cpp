//===- tests/support/ErrorTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(Error, SuccessIsFalsy) {
  Error E = Error::success();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(Error, FailureCarriesMessage) {
  Error E = Error::make("something broke");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "something broke");
}

TEST(Error, MoveTransfersFailure) {
  Error E = Error::make("boom");
  Error F = std::move(E);
  ASSERT_TRUE(static_cast<bool>(F));
  EXPECT_EQ(F.message(), "boom");
}

TEST(Error, ConsumeSilencesFailure) {
  Error E = Error::make("ignored on purpose");
  E.consume();
  // Destructor must not abort.
}

TEST(Expected, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
}

TEST(Expected, HoldsError) {
  Expected<int> E(Error::make("no value"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "no value");
}

TEST(Expected, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> E(std::make_unique<int>(7));
  ASSERT_TRUE(static_cast<bool>(E));
  std::unique_ptr<int> P = std::move(*E);
  EXPECT_EQ(*P, 7);
}

TEST(Expected, TakeErrorRoundTrips) {
  Expected<int> E(Error::make("round trip"));
  Error Err = E.takeError();
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.message(), "round trip");
}

TEST(Expected, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(9)), 9);
}
