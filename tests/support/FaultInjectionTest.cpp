//===- tests/support/FaultInjectionTest.cpp ---------------------------------===//
//
// Part of the odburg project.
//
// The deterministic fault-site registry. Contracts under test: nothing
// armed means nothing fires (and the fast path stays silent); nth=N fires
// exactly once, on the Nth hit; every=K fires on every Kth hit; p=P@seed
// is a pure function of (seed, hit index), so the same spec replays the
// same fault sequence; configure() merges — it replaces only the sites a
// spec names and leaves the rest armed; a malformed spec is a typed error
// that leaves the registry untouched; concurrent hits against an armed
// site neither lose counts nor race (the TSan CI job runs this binary).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace odburg;
using namespace odburg::fault;

namespace {

/// The registry is process-global; every test starts and ends disarmed so
/// order (and the rest of this binary) cannot leak state.
class FaultInjectionTest : public ::testing::Test {
protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

} // namespace

TEST_F(FaultInjectionTest, NothingArmedNeverFiresOrCounts) {
  for (unsigned I = 0; I < NumSites; ++I) {
    Site S = static_cast<Site>(I);
    for (int Hit = 0; Hit < 100; ++Hit)
      EXPECT_FALSE(shouldFail(S));
    // The disarmed fast path is one atomic load — it does not even count.
    EXPECT_EQ(hitCount(S), 0u);
    EXPECT_EQ(firedCount(S), 0u);
  }
  EXPECT_EQ(firedTotal(), 0u);
}

TEST_F(FaultInjectionTest, NthFiresExactlyOnceOnTheNthHit) {
  ASSERT_FALSE(configure("service-submit:nth=3"));
  std::vector<bool> Fired;
  for (int Hit = 0; Hit < 10; ++Hit)
    Fired.push_back(shouldFail(Site::ServiceSubmit));
  for (int Hit = 0; Hit < 10; ++Hit)
    EXPECT_EQ(Fired[Hit], Hit == 2) << "hit " << (Hit + 1);
  EXPECT_EQ(hitCount(Site::ServiceSubmit), 10u);
  EXPECT_EQ(firedCount(Site::ServiceSubmit), 1u);
  EXPECT_EQ(firedTotal(), 1u);
}

TEST_F(FaultInjectionTest, EveryKFiresOnEveryKthHit) {
  ASSERT_FALSE(configure("socket-send:every=4"));
  unsigned Fired = 0;
  for (int Hit = 1; Hit <= 12; ++Hit) {
    bool F = shouldFail(Site::SocketSend);
    EXPECT_EQ(F, Hit % 4 == 0) << "hit " << Hit;
    Fired += F;
  }
  EXPECT_EQ(Fired, 3u);
  EXPECT_EQ(firedCount(Site::SocketSend), 3u);
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  ASSERT_FALSE(configure("state-compute:p=0.5@42"));
  std::vector<bool> First;
  for (int Hit = 0; Hit < 64; ++Hit)
    First.push_back(shouldFail(Site::StateCompute));
  // A fair-ish coin: both outcomes occur in 64 draws.
  EXPECT_NE(firedCount(Site::StateCompute), 0u);
  EXPECT_NE(firedCount(Site::StateCompute), 64u);

  // Same seed, fresh counters: the exact same sequence replays.
  reset();
  ASSERT_FALSE(configure("state-compute:p=0.5@42"));
  for (int Hit = 0; Hit < 64; ++Hit)
    EXPECT_EQ(shouldFail(Site::StateCompute), First[Hit]) << "hit " << Hit;

  // A different seed diverges somewhere in 64 draws.
  reset();
  ASSERT_FALSE(configure("state-compute:p=0.5@43"));
  bool AnyDiff = false;
  for (int Hit = 0; Hit < 64; ++Hit)
    AnyDiff |= shouldFail(Site::StateCompute) != First[Hit];
  EXPECT_TRUE(AnyDiff);
}

TEST_F(FaultInjectionTest, ProbabilityExtremesAreCertain) {
  ASSERT_FALSE(configure("tables-load:p=0"));
  for (int Hit = 0; Hit < 32; ++Hit)
    EXPECT_FALSE(shouldFail(Site::TablesLoad));
  ASSERT_FALSE(configure("tables-load:p=1"));
  for (int Hit = 0; Hit < 32; ++Hit)
    EXPECT_TRUE(shouldFail(Site::TablesLoad));
}

TEST_F(FaultInjectionTest, ConfigureMergesWithoutDisarmingOtherSites) {
  // Env-then-CLI layering: the second configure() names a different site
  // and must leave the first one armed.
  ASSERT_FALSE(configure("socket-send:every=2"));
  ASSERT_FALSE(configure("socket-recv:every=2"));
  EXPECT_FALSE(shouldFail(Site::SocketSend));
  EXPECT_TRUE(shouldFail(Site::SocketSend));
  EXPECT_FALSE(shouldFail(Site::SocketRecv));
  EXPECT_TRUE(shouldFail(Site::SocketRecv));
  // Re-speccing an armed site replaces just its trigger.
  ASSERT_FALSE(configure("socket-send:nth=100"));
  for (int Hit = 0; Hit < 8; ++Hit)
    EXPECT_FALSE(shouldFail(Site::SocketSend));
}

TEST_F(FaultInjectionTest, MalformedSpecsFailTypedAndLeaveRegistryUntouched) {
  ASSERT_FALSE(configure("socket-send:every=2"));
  for (const char *Bad :
       {"warp-core:nth=1", "socket-send", "socket-send:sometimes",
        "socket-send:nth=0", "socket-send:p=1.5", "socket-send:p=0.5@zap"}) {
    Error E = configure(Bad);
    ASSERT_TRUE(static_cast<bool>(E)) << Bad;
    EXPECT_EQ(E.kind(), ErrorKind::MalformedInput) << Bad;
    E.consume();
  }
  // The pre-existing trigger survived every failed configure().
  EXPECT_FALSE(shouldFail(Site::SocketSend));
  EXPECT_TRUE(shouldFail(Site::SocketSend));
}

TEST_F(FaultInjectionTest, ConfigureFromEnvReadsAndLayerWithSpecs) {
  ASSERT_EQ(::setenv("ODBURG_FAULTS_TEST", "service-submit:nth=2", 1), 0);
  ASSERT_FALSE(configureFromEnv("ODBURG_FAULTS_TEST"));
  EXPECT_FALSE(shouldFail(Site::ServiceSubmit));
  EXPECT_TRUE(shouldFail(Site::ServiceSubmit));
  ::unsetenv("ODBURG_FAULTS_TEST");
  // Unset (or empty) is success with nothing new armed.
  EXPECT_FALSE(static_cast<bool>(configureFromEnv("ODBURG_FAULTS_TEST")));
}

TEST_F(FaultInjectionTest, ConcurrentHitsNeitherRaceNorLoseCounts) {
  // every=K under contention: exactly Hits/K firings must be recorded no
  // matter how threads interleave — the counters are the chaos runs'
  // ground truth.
  ASSERT_FALSE(configure("state-compute:every=5"));
  constexpr unsigned Threads = 4, PerThread = 500;
  std::atomic<std::uint64_t> SeenFired{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&] {
      for (unsigned I = 0; I < PerThread; ++I)
        if (shouldFail(Site::StateCompute))
          SeenFired.fetch_add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(hitCount(Site::StateCompute), Threads * PerThread);
  EXPECT_EQ(firedCount(Site::StateCompute), Threads * PerThread / 5);
  EXPECT_EQ(SeenFired.load(), Threads * PerThread / 5);
  EXPECT_EQ(firedTotal(), Threads * PerThread / 5);
}
