//===- tests/support/StringUtilTest.cpp -------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, SplitKeepsEmptyPieces) {
  auto Parts = split("a,,b", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(startsWith("%start stmt", "%start"));
  EXPECT_FALSE(startsWith("%st", "%start"));
}

TEST(StringUtil, FormatThousands) {
  EXPECT_EQ(formatThousands(0), "0");
  EXPECT_EQ(formatThousands(999), "999");
  EXPECT_EQ(formatThousands(1000), "1 000");
  EXPECT_EQ(formatThousands(245928597), "245 928 597");
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(formatFixed(2.874, 2), "2.87");
  EXPECT_EQ(formatFixed(1.0, 2), "1.00");
}

TEST(StringUtil, Formatf) {
  EXPECT_EQ(formatf("%s=%d", "x", 5), "x=5");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T("Title");
  T.setHeader({"benchmark", "value"});
  T.addRow({"gzip", "1"});
  T.addRow({"longname", "12345"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Title"), std::string::npos);
  EXPECT_NE(Out.find("benchmark"), std::string::npos);
  // All rows align: every non-separator line has the same width, and the
  // numeric column is right-aligned (its digits end each line).
  auto Lines = split(Out, '\n');
  ASSERT_GE(Lines.size(), 4u);
  EXPECT_EQ(Lines[1].size(), Lines[3].size()); // header vs "gzip" row
  EXPECT_EQ(Lines[3].back(), '1');
  EXPECT_TRUE(startsWith(Lines[3], "gzip "));
}

TEST(TablePrinter, SeparatorLine) {
  TablePrinter T("");
  T.setHeader({"a", "b"});
  T.addRow({"1", "2"});
  T.addSeparator();
  T.addRow({"3", "4"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("----"), std::string::npos);
}
