//===- tests/support/ArenaTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

using namespace odburg;

TEST(Arena, AllocationsAreAligned) {
  Arena A;
  for (std::size_t Align : {1, 2, 4, 8, 16, 64}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena A;
  char *P1 = static_cast<char *>(A.allocate(16, 8));
  char *P2 = static_cast<char *>(A.allocate(16, 8));
  std::memset(P1, 0xAA, 16);
  std::memset(P2, 0xBB, 16);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(static_cast<unsigned char>(P1[I]), 0xAA);
}

TEST(Arena, LargeAllocationGetsOwnSlab) {
  Arena A;
  void *P = A.allocate(1 << 20, 8);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0, 1 << 20);
  EXPECT_GE(A.bytesAllocated(), std::size_t(1) << 20);
}

TEST(Arena, ManySmallAllocationsSpanSlabs) {
  Arena A;
  for (int I = 0; I < 100000; ++I) {
    auto *P = static_cast<std::uint32_t *>(A.allocate(4, 4));
    *P = static_cast<std::uint32_t>(I);
  }
  EXPECT_GT(A.numSlabs(), 1u);
}

TEST(Arena, CreateConstructsObject) {
  Arena A;
  struct Point {
    int X, Y;
  };
  Point *P = A.create<Point>(Point{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(Arena, CopyStringNulTerminates) {
  Arena A;
  const char *S = A.copyString("hello world", 5);
  EXPECT_STREQ(S, "hello");
}

TEST(Arena, MoveTransfersOwnership) {
  Arena A;
  const char *S = A.copyString("persistent", 10);
  Arena B(std::move(A));
  EXPECT_STREQ(S, "persistent"); // Memory still alive, owned by B now.
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_GT(B.bytesAllocated(), 0u);
}
