//===- tests/grammar/GrammarTest.cpp ----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Grammar.h"
#include "grammar/GrammarParser.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

namespace {

Grammar buildTinyGrammar() {
  Grammar G;
  OperatorId RegOp = G.addOperator("Reg", 0);
  OperatorId AddOp = G.addOperator("Add", 2);
  NonterminalId Reg = G.addNonterminal("reg");
  G.addRule(Reg, G.makeLeaf(Reg), Cost(0)); // Placeholder, replaced below.
  (void)RegOp;
  (void)AddOp;
  return G;
}

} // namespace

TEST(Grammar, OperatorRegistrationIsIdempotent) {
  Grammar G;
  OperatorId A = G.addOperator("Add", 2);
  OperatorId B = G.addOperator("Add", 2);
  EXPECT_EQ(A, B);
  EXPECT_EQ(G.numOperators(), 1u);
  EXPECT_EQ(G.operatorArity(A), 2u);
  EXPECT_EQ(G.operatorName(A), "Add");
}

TEST(Grammar, NonterminalRegistrationIsIdempotent) {
  Grammar G;
  NonterminalId A = G.addNonterminal("reg");
  NonterminalId B = G.addNonterminal("reg");
  EXPECT_EQ(A, B);
  EXPECT_EQ(G.numNonterminals(), 1u);
}

TEST(Grammar, FinalizeRejectsEmptyGrammar) {
  Grammar G;
  Error E = G.finalize();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("no rules"), std::string::npos);
}

TEST(Grammar, FinalizeRejectsSelfChain) {
  Grammar G = buildTinyGrammar();
  Error E = G.finalize();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("self-chain"), std::string::npos);
}

TEST(Grammar, FinalizeRejectsUndefinedNonterminal) {
  Grammar G;
  OperatorId Load = G.addOperator("Load", 1);
  NonterminalId Reg = G.addNonterminal("reg");
  NonterminalId Addr = G.addNonterminal("addr"); // Never given a rule.
  SmallVector<PatternNode *, 1> C{G.makeLeaf(Addr)};
  G.addRule(Reg, G.makeNode(Load, C), Cost(1));
  Error E = G.finalize();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("addr"), std::string::npos);
}

TEST(Grammar, NormalFormSplitsNestedPatterns) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  GrammarStats S = G.stats();
  EXPECT_EQ(S.SourceRules, 6u);
  // Rule 6 splits into three normal rules (6a, 6b, 6c): 6 + 2 extra.
  EXPECT_EQ(S.NormRules, 8u);
  EXPECT_EQ(S.HelperNonterminals, 2u);
  EXPECT_EQ(S.ChainRules, 1u); // addr: reg
  EXPECT_EQ(S.BaseRules, 7u);
  EXPECT_EQ(S.DynCostRules, 0u);
}

TEST(Grammar, SplitRuleCostPlacement) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  // Exactly one normal rule of source rule 6 is final and carries cost 1;
  // the helper fragments cost 0.
  unsigned FinalCount = 0, HelperCount = 0;
  for (RuleId R = 0; R < G.numNormRules(); ++R) {
    const NormRule &NR = G.normRule(R);
    if (G.sourceRule(NR.Source).ExtNumber != 6)
      continue;
    if (NR.IsFinal) {
      ++FinalCount;
      EXPECT_EQ(NR.FixedCost, Cost(1));
    } else {
      ++HelperCount;
      EXPECT_EQ(NR.FixedCost, Cost(0));
    }
  }
  EXPECT_EQ(FinalCount, 1u);
  EXPECT_EQ(HelperCount, 2u);
}

TEST(Grammar, DynHookLandsOnFinalFragment) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  EXPECT_TRUE(G.hasDynCosts());
  for (RuleId R = 0; R < G.numNormRules(); ++R) {
    const NormRule &NR = G.normRule(R);
    if (NR.DynHook == InvalidDynCost)
      continue;
    EXPECT_TRUE(NR.IsFinal);
    EXPECT_EQ(G.sourceRule(NR.Source).ExtNumber, 6u);
    EXPECT_EQ(G.dynHookName(NR.DynHook), "memop");
  }
}

TEST(Grammar, BaseRulesIndexedByOperator) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  OperatorId Store = G.findOperator("Store");
  ASSERT_NE(Store, InvalidOperator);
  // Rules 5 and 6c both match Store.
  EXPECT_EQ(G.baseRulesFor(Store).size(), 2u);
  OperatorId Reg = G.findOperator("Reg");
  EXPECT_EQ(G.baseRulesFor(Reg).size(), 1u);
}

TEST(Grammar, DynRulesIndexedByOperator) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  OperatorId Store = G.findOperator("Store");
  EXPECT_EQ(G.dynRulesFor(Store).size(), 1u);
  OperatorId Plus = G.findOperator("Plus");
  EXPECT_EQ(G.dynRulesFor(Plus).size(), 0u);
}

TEST(Grammar, StartNonterminalDefaultsToFirstLhs) {
  Grammar G;
  G.addOperator("Reg", 0);
  NonterminalId Reg = G.addNonterminal("reg");
  SmallVector<PatternNode *, 1> None;
  G.addRule(Reg, G.makeNode(G.findOperator("Reg"), None), Cost(0));
  cantFail(G.finalize());
  EXPECT_EQ(G.startNt(), Reg);
}

TEST(Grammar, NormRuleToStringIsReadable) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  bool FoundChain = false;
  for (RuleId R = 0; R < G.numNormRules(); ++R) {
    std::string S = G.normRuleToString(R);
    if (S.find("addr: reg") != std::string::npos)
      FoundChain = true;
  }
  EXPECT_TRUE(FoundChain);
}
