//===- tests/grammar/AnalysisTest.cpp ----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Analysis.h"

#include "grammar/GrammarParser.h"
#include "targets/Target.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(Analysis, CleanGrammarHasNoWarnings) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  GrammarDiagnostics D = analyzeGrammar(G);
  EXPECT_TRUE(D.Warnings.empty());
  for (RuleId R = 0; R < G.numSourceRules(); ++R)
    EXPECT_TRUE(D.ruleIsUseful(R));
}

TEST(Analysis, MinimalTreeCosts) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  GrammarDiagnostics D = analyzeGrammar(G);
  // reg: cheapest tree is a bare Reg leaf (cost 0); addr chains to it.
  EXPECT_EQ(D.MinTreeCost[G.findNonterminal("reg")], Cost(0));
  EXPECT_EQ(D.MinTreeCost[G.findNonterminal("addr")], Cost(0));
  // stmt: cheapest is Store(addr, reg) at cost 1.
  EXPECT_EQ(D.MinTreeCost[G.findNonterminal("stmt")], Cost(1));
}

TEST(Analysis, DetectsUnreachableNonterminal) {
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    stmt: Store(reg, reg) (1);
    reg:  Reg (0);
    orphan: Load(reg) (1);
  )"));
  GrammarDiagnostics D = analyzeGrammar(G);
  EXPECT_FALSE(D.NtReachable[G.findNonterminal("orphan")]);
  ASSERT_FALSE(D.Warnings.empty());
  bool Found = false;
  for (const std::string &W : D.Warnings)
    Found |= W.find("orphan") != std::string::npos &&
             W.find("unreachable") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(Analysis, DetectsUnproductiveCycle) {
  // 'loop' only derives through itself: no finite tree.
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    stmt: Store(reg, loop) (1);
    stmt: Store(reg, reg) (1);
    reg:  Reg (0);
    loop: Wrap(loop) (1);
  )"));
  GrammarDiagnostics D = analyzeGrammar(G);
  EXPECT_FALSE(D.NtProductive[G.findNonterminal("loop")]);
  EXPECT_TRUE(D.NtProductive[G.findNonterminal("stmt")]);
  // The rule using 'loop' can never fire.
  bool RuleFlagged = false;
  for (RuleId R = 0; R < G.numSourceRules(); ++R)
    if (!D.ruleIsUseful(R))
      RuleFlagged = true;
  EXPECT_TRUE(RuleFlagged);
}

TEST(Analysis, AllTargetGrammarsAreClean) {
  for (const std::string &Name : targets::targetNames()) {
    auto T = cantFail(targets::makeTarget(Name));
    GrammarDiagnostics D = analyzeGrammar(T->G);
    for (const std::string &W : D.Warnings)
      ADD_FAILURE() << Name << ": " << W;
    GrammarDiagnostics DF = analyzeGrammar(T->Fixed);
    for (const std::string &W : DF.Warnings)
      ADD_FAILURE() << Name << " (stripped): " << W;
  }
}

TEST(Analysis, MinCostsMatchOracleOnLeafGrammar) {
  Grammar G = cantFail(parseGrammar(R"(
    %start a
    a: b (2);
    b: Leaf (3);
    a: Pair(a, b) (1);
  )"));
  GrammarDiagnostics D = analyzeGrammar(G);
  EXPECT_EQ(D.MinTreeCost[G.findNonterminal("b")], Cost(3));
  EXPECT_EQ(D.MinTreeCost[G.findNonterminal("a")], Cost(5));
}
