//===- tests/grammar/TransformTest.cpp --------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Transform.h"

#include "grammar/GrammarParser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(Transform, StripsDynamicRules) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  ASSERT_TRUE(G.hasDynCosts());
  Grammar Stripped = cantFail(withoutDynCostRules(G));
  EXPECT_FALSE(Stripped.hasDynCosts());
  EXPECT_EQ(Stripped.numSourceRules(), G.numSourceRules() - 1);
}

TEST(Transform, PreservesOperatorIds) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  Grammar Stripped = cantFail(withoutDynCostRules(G));
  ASSERT_EQ(Stripped.numOperators(), G.numOperators());
  for (OperatorId Op = 0; Op < G.numOperators(); ++Op) {
    EXPECT_EQ(Stripped.operatorName(Op), G.operatorName(Op));
    EXPECT_EQ(Stripped.operatorArity(Op), G.operatorArity(Op));
  }
}

TEST(Transform, PreservesExtNumbersAndStart) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  Grammar Stripped = cantFail(withoutDynCostRules(G));
  EXPECT_EQ(Stripped.nonterminalName(Stripped.startNt()), "stmt");
  // Rule numbers 1-5 survive.
  for (RuleId R = 0; R < Stripped.numSourceRules(); ++R)
    EXPECT_LE(Stripped.sourceRule(R).ExtNumber, 5u);
}

TEST(Transform, FailsWhenNonterminalLosesAllRules) {
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    con:  Const (0) ?imm;
    reg:  Reg (0);
    stmt: Store(reg, con) (1);
  )"));
  Expected<Grammar> Stripped = withoutDynCostRules(G);
  ASSERT_FALSE(static_cast<bool>(Stripped));
}

TEST(Transform, WithoutHookStripsOnlyThatHook) {
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    con:  Const (0);
    imm:  Const (0) ?imm32;
    reg:  Reg (0);
    reg:  con (1);
    stmt: Store(reg, imm) (1);
    stmt: Store(reg, reg) (2);
    stmt: Store(reg, Add(Load(reg), reg)) (1) ?memop;
  )"));
  Grammar NoMemop = cantFail(withoutDynHook(G, "memop"));
  // The imm32 rule survives; only the memop rule is gone.
  EXPECT_EQ(NoMemop.numSourceRules(), G.numSourceRules() - 1);
  EXPECT_TRUE(NoMemop.hasDynCosts());
  Grammar NoImm = cantFail(withoutDynHook(G, "imm32"));
  // Dropping imm32 cascades into the Store(reg, imm) rule.
  EXPECT_EQ(NoImm.numSourceRules(), G.numSourceRules() - 2);
}

TEST(Transform, NoopOnFixedGrammar) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  Grammar Stripped = cantFail(withoutDynCostRules(G));
  EXPECT_EQ(Stripped.numSourceRules(), G.numSourceRules());
  EXPECT_EQ(Stripped.numNormRules(), G.numNormRules());
}
