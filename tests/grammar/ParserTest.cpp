//===- tests/grammar/ParserTest.cpp -----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarParser.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(Parser, ParsesRunningExample) {
  Expected<Grammar> G = parseGrammar(test::runningExampleText());
  ASSERT_TRUE(static_cast<bool>(G)) << G.message();
  EXPECT_EQ(G->numSourceRules(), 6u);
  EXPECT_EQ(G->numOperators(), 4u); // Reg, Load, Plus, Store
  EXPECT_EQ(G->findNonterminal("stmt"), G->startNt());
}

TEST(Parser, CommentsAndWhitespaceIgnored) {
  Expected<Grammar> G = parseGrammar(R"(
    # leading comment
    reg: Reg (0); # trailing comment
  )");
  ASSERT_TRUE(static_cast<bool>(G)) << G.message();
  EXPECT_EQ(G->numSourceRules(), 1u);
}

TEST(Parser, CostDefaultsToZero) {
  Grammar G = cantFail(parseGrammar("reg: Reg;"));
  EXPECT_EQ(G.sourceRule(0).FixedCost, Cost(0));
}

TEST(Parser, ExplicitRuleNumbersPreserved) {
  Grammar G = cantFail(parseGrammar("reg: Reg = 17 (2);"));
  EXPECT_EQ(G.sourceRule(0).ExtNumber, 17u);
  EXPECT_EQ(G.sourceRule(0).FixedCost, Cost(2));
}

TEST(Parser, AutoNumbersContinueAfterExplicit) {
  Grammar G = cantFail(parseGrammar(R"(
    reg: Reg = 5 (0);
    reg: Load(reg) (1);
  )"));
  EXPECT_EQ(G.sourceRule(1).ExtNumber, 6u);
}

TEST(Parser, EmitTemplateCaptured) {
  Grammar G = cantFail(parseGrammar(R"(reg: Reg (0) "movq %c, %0";)"));
  EXPECT_EQ(G.sourceRule(0).EmitTemplate, "movq %c, %0");
}

TEST(Parser, DynHookCaptured) {
  Grammar G = cantFail(parseGrammar(R"(
    con: Const (0);
    imm: Const (0) ?imm16;
  )"));
  EXPECT_EQ(G.numDynHooks(), 1u);
  EXPECT_EQ(G.dynHookName(0), "imm16");
  EXPECT_EQ(G.sourceRule(1).DynHook, 0);
}

TEST(Parser, RejectsDynHookOnChainRule) {
  // Hooks live on base rules; put range tests on the constant leaf rule
  // instead of a chain rule (the automaton keys on leaf outcomes).
  Expected<Grammar> G = parseGrammar(R"(
    con: Const (0);
    reg: con (1) ?imm16;
  )");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("chain rules"), std::string::npos);
}

TEST(Parser, RejectsArityMismatch) {
  Expected<Grammar> G = parseGrammar(R"(
    reg: Add(reg, reg) (1);
    reg: Add(reg) (1);
    reg: Reg (0);
  )");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("arity"), std::string::npos);
}

TEST(Parser, RejectsMissingSemicolon) {
  Expected<Grammar> G = parseGrammar("reg: Reg (0)");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("';'"), std::string::npos);
}

TEST(Parser, RejectsUnterminatedString) {
  Expected<Grammar> G = parseGrammar("reg: Reg (0) \"oops;");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("unterminated"), std::string::npos);
}

TEST(Parser, RejectsOperatorAsLhs) {
  Expected<Grammar> G = parseGrammar("Reg: reg (0);");
  ASSERT_FALSE(static_cast<bool>(G));
}

TEST(Parser, RejectsReservedDollarNames) {
  Expected<Grammar> G = parseGrammar("$h1: Reg (0);");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("reserved"), std::string::npos);
}

TEST(Parser, RejectsUnknownDirective) {
  Expected<Grammar> G = parseGrammar("%terminator stmt\nreg: Reg (0);");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("unknown directive"), std::string::npos);
}

TEST(Parser, RejectsStartWithoutRules) {
  Expected<Grammar> G = parseGrammar("%start other\nreg: Reg (0);");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("other"), std::string::npos);
}

TEST(Parser, ErrorMessagesIncludeLineNumbers) {
  Expected<Grammar> G = parseGrammar("reg: Reg (0);\nreg: ;\n");
  ASSERT_FALSE(static_cast<bool>(G));
  EXPECT_NE(G.message().find("line 2"), std::string::npos);
}

TEST(Parser, NestedPatternsParse) {
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    reg: Reg (0);
    stmt: Store(reg, Add(Load(reg), Add(reg, reg))) (1);
  )"));
  EXPECT_EQ(G.numSourceRules(), 2u);
  // Deeply nested rule splits into 3 extra helper rules.
  EXPECT_EQ(G.numNormRules(), 5u);
}
