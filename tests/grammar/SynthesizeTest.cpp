//===- tests/grammar/SynthesizeTest.cpp --------------------------------------===//
//
// Part of the odburg project.
//
// Grammar-fuzzing: engines must agree on arbitrary valid grammars, not
// just the hand-written ones. Synthesized grammars + random trees give a
// much broader equivalence net (DP vs. oracle vs. on-demand vs. offline).
//
//===----------------------------------------------------------------------===//

#include "grammar/Synthesize.h"

#include "core/OnDemandAutomaton.h"
#include "offline/OfflineTables.h"
#include "select/DPLabeler.h"
#include "select/Oracle.h"
#include "workload/Synthetic.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(Synthesize, ProducesFinalizedGrammar) {
  SynthesisParams P;
  Grammar G = cantFail(synthesizeGrammar(P));
  EXPECT_TRUE(G.isFinalized());
  EXPECT_EQ(G.numOperators(), P.NumLeafOps + P.NumUnaryOps + P.NumBinaryOps);
  EXPECT_EQ(G.numNonterminals(), P.NumNts);
  // Chain cycle + leaf rules + RulesPerOp per interior operator.
  EXPECT_EQ(G.numSourceRules(),
            P.NumNts + P.NumLeafOps +
                P.RulesPerOp * (P.NumUnaryOps + P.NumBinaryOps));
}

TEST(Synthesize, DeterministicInSeed) {
  SynthesisParams P;
  P.Seed = 5;
  Grammar A = cantFail(synthesizeGrammar(P));
  Grammar B = cantFail(synthesizeGrammar(P));
  ASSERT_EQ(A.numNormRules(), B.numNormRules());
  for (RuleId R = 0; R < A.numNormRules(); ++R)
    EXPECT_EQ(A.normRuleToString(R), B.normRuleToString(R));
}

TEST(Synthesize, RejectsDegenerateParams) {
  SynthesisParams P;
  P.NumNts = 1;
  EXPECT_FALSE(static_cast<bool>(synthesizeGrammar(P)));
  SynthesisParams Q;
  Q.NumLeafOps = 0;
  EXPECT_FALSE(static_cast<bool>(synthesizeGrammar(Q)));
}

class SynthFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthFuzz, AllEnginesAgreeOnRandomGrammars) {
  SynthesisParams P;
  P.Seed = GetParam();
  P.NumNts = 2 + GetParam() % 5;
  P.RulesPerOp = 2 + GetParam() % 7;
  Grammar G = cantFail(synthesizeGrammar(P));

  ir::IRFunction F;
  RNG Rand(GetParam() * 31);
  for (int I = 0; I < 5; ++I)
    F.addRoot(workload::synthesizeTree(G, F, Rand, 60));

  DPLabeling Ref = DPLabeler(G).label(F);
  OnDemandAutomaton A(G);
  A.labelFunction(F);
  CompiledTables Tables = cantFail(OfflineTableGen(G).generate());
  TableLabeler Off(Tables);
  std::vector<StateId> OnDemandLabels;
  for (const ir::Node *N : F.nodes())
    OnDemandLabels.push_back(N->label());
  Off.labelFunction(F);

  for (const ir::Node *N : F.nodes()) {
    const State *SOn = A.stateTable().byId(OnDemandLabels[N->id()]);
    const State *SOff = Tables.stateById(N->label());
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      ASSERT_EQ(Ref.ruleFor(*N, Nt), SOn->ruleOf(Nt))
          << "dp vs ondemand, node " << N->id() << " nt " << Nt;
      ASSERT_EQ(SOn->ruleOf(Nt), SOff->ruleOf(Nt))
          << "ondemand vs offline, node " << N->id() << " nt " << Nt;
      ASSERT_EQ(SOn->costOf(Nt), SOff->costOf(Nt));
    }
  }
}

TEST_P(SynthFuzz, DPAgreesWithOracleOnRandomGrammars) {
  SynthesisParams P;
  P.Seed = GetParam() ^ 0xFEED;
  P.NumNts = 2 + GetParam() % 4;
  P.RulesPerOp = 2 + GetParam() % 4;
  // Keep the oracle's exponential enumeration feasible.
  P.NumUnaryOps = 2;
  P.NumBinaryOps = 3;
  Grammar G = cantFail(synthesizeGrammar(P));

  ir::IRFunction F;
  RNG Rand(GetParam() * 17 + 3);
  F.addRoot(workload::synthesizeTree(G, F, Rand, 14));
  DPLabeling Ref = DPLabeler(G).label(F);
  for (const ir::Node *N : F.nodes())
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt)
      ASSERT_EQ(Ref.costFor(*N, Nt), oracleCost(G, *N, Nt))
          << "node " << N->id() << " nt " << Nt;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthFuzz,
                         ::testing::Range<std::uint64_t>(1, 31));
