//===- tests/ir/SExprFuzzTest.cpp --------------------------------------------===//
//
// Part of the odburg project.
//
// Deterministic corpus-driven fuzz harness for the two parsers that face
// untrusted network bytes: the s-expression function stream and the
// grammar parser. The property under test is uniform — for ANY input the
// parser either succeeds or fails with a typed error; it never crashes,
// never hangs, and never allocates past its configured bounds. Mutations
// are seeded (splitmix64), so a failure reproduces bit-for-bit from the
// test name alone: truncations, byte garbage, splices, pathological
// nesting, oversized atoms, out-of-range integers, and an adversarial
// endless-frame generator that streams bytes forever. The ASan+UBSan CI
// job runs this binary; unbounded allocation or recursion fails loudly
// there.
//
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"

#include "grammar/GrammarParser.h"
#include "support/RNG.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

using namespace odburg;
using namespace odburg::ir;

namespace {

class SExprFuzz : public ::testing::Test {
protected:
  void SetUp() override {
    G = std::make_unique<Grammar>(
        cantFail(parseGrammar(test::runningExampleFixedText())));
  }

  /// Valid wire-format seed text: a few functions of random trees.
  std::string seedCorpus(std::uint64_t Seed, unsigned Functions = 4) {
    test::RandomTreeBuilder B(*G, Seed);
    std::string Wire;
    for (unsigned F = 0; F < Functions; ++F) {
      Keep.emplace_back();
      for (int R = 0; R < 3; ++R) {
        Wire += toSExpr(B.build(Keep.back(), 20), *G);
        Wire += '\n';
      }
      Wire += '\n';
    }
    return Wire;
  }

  /// Drives the stream over \p Text to exhaustion. The harness property:
  /// every next() returns a function, a clean end, or a typed error; a
  /// MalformedInput error on an unpoisoned stream allows skipping ahead;
  /// anything else ends the stream. Progress is guaranteed (bounded
  /// iterations assert it), so no input can hang the loop.
  void driveStream(const std::string &Text) {
    std::istringstream In(Text);
    SExprFunctionStream Stream(In, *G);
    // Generous progress bound: one iteration per input byte plus slack —
    // if the stream neither advances nor terminates, this catches it.
    std::size_t MaxIters = Text.size() + 64;
    for (std::size_t I = 0; I < MaxIters; ++I) {
      IRFunction F;
      Expected<bool> Next = Stream.next(F);
      if (!Next) {
        // Typed, line-located diagnostics only — no crashes, no unknown
        // failure shapes.
        if (Next.kind() == ErrorKind::MalformedInput && !Stream.poisoned()) {
          EXPECT_NE(Next.message().find("line"), std::string::npos)
              << Next.message();
          continue; // Skippable: the stream consumed the bad frame.
        }
        return; // Poisoned or I/O: stream over.
      }
      if (!*Next)
        return; // Clean end.
    }
    FAIL() << "stream made no progress on " << Text.size() << " bytes";
  }

  std::unique_ptr<Grammar> G;
  /// Functions backing seed-corpus nodes (toSExpr reads live nodes).
  std::vector<IRFunction> Keep;
};

/// An adversarial istream source: yields an endless supply of \p Fill
/// bytes with no newline and no end — the "malicious peer streams one
/// unterminated frame forever" case. Counts what was consumed so tests
/// can assert the parser stopped reading at its byte cap instead of
/// draining a socket forever.
class EndlessStreamBuf : public std::streambuf {
public:
  explicit EndlessStreamBuf(char Fill) : Fill(Fill) {}

  std::size_t consumed() const { return Consumed; }

protected:
  int_type underflow() override {
    std::fill(Buf, Buf + sizeof(Buf), Fill);
    Consumed += sizeof(Buf);
    setg(Buf, Buf, Buf + sizeof(Buf));
    return traits_type::to_int_type(*gptr());
  }

private:
  char Fill;
  char Buf[1024];
  std::size_t Consumed = 0;
};

} // namespace

TEST_F(SExprFuzz, TruncationsAlwaysParseOrFailTyped) {
  // Every prefix boundary class: mid-atom, mid-frame, at separators.
  for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
    std::string Wire = seedCorpus(Seed);
    RNG Rand(Seed * 977);
    for (int I = 0; I < 40; ++I)
      driveStream(Wire.substr(0, Rand.nextBelow(Wire.size() + 1)));
  }
}

TEST_F(SExprFuzz, ByteGarbageAlwaysParsesOrFailsTyped) {
  for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
    std::string Wire = seedCorpus(Seed);
    RNG Rand(Seed * 1933);
    for (int Round = 0; Round < 30; ++Round) {
      std::string Mutated = Wire;
      // A handful of random byte smashes per round: flips, inserts,
      // deletes — including '\0', '(' , ')' and newline, the framing-
      // sensitive bytes.
      unsigned Edits = 1 + Rand.nextBelow(8);
      for (unsigned E = 0; E < Edits && !Mutated.empty(); ++E) {
        std::size_t At = Rand.nextBelow(Mutated.size());
        char B = static_cast<char>(Rand.nextBelow(256));
        switch (Rand.nextBelow(3)) {
        case 0:
          Mutated[At] = B;
          break;
        case 1:
          Mutated.insert(Mutated.begin() + At, B);
          break;
        default:
          Mutated.erase(Mutated.begin() + At);
          break;
        }
      }
      driveStream(Mutated);
    }
  }
}

TEST_F(SExprFuzz, SplicedFramesAlwaysParseOrFailTyped) {
  // Cross-breed two corpora at random cut points: realistic-looking but
  // structurally wrong inputs (arity mismatches, unbalanced parens).
  for (std::uint64_t Seed = 1; Seed <= 6; ++Seed) {
    std::string A = seedCorpus(Seed), B = seedCorpus(Seed + 100);
    RNG Rand(Seed * 31337);
    for (int I = 0; I < 20; ++I) {
      std::string Spliced = A.substr(0, Rand.nextBelow(A.size() + 1)) +
                            B.substr(Rand.nextBelow(B.size() + 1));
      driveStream(Spliced);
    }
  }
}

TEST_F(SExprFuzz, PathologicalNestingFailsTypedNotByStackOverflow) {
  // Deeper than MaxSExprDepth: the recursive-descent reader must refuse
  // before the call stack is at risk. Real nested operators, so the
  // recursion actually happens.
  std::string Deep;
  for (unsigned I = 0; I < MaxSExprDepth * 2; ++I)
    Deep += "(Load ";
  IRFunction F;
  Expected<Node *> N = parseSExpr(Deep, *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_EQ(N.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(N.message().find("depth limit"), std::string::npos)
      << N.message();

  // Same through the stream (one frame, no blank lines).
  driveStream(Deep + "\n\n");

  // Just-under-the-limit nesting must still be a *parse* judgment (here:
  // arity error at the unclosed end), not a depth refusal.
  std::string Nested;
  for (unsigned I = 0; I < MaxSExprDepth - 2; ++I)
    Nested += "(Load ";
  Expected<Node *> Under = parseSExpr(Nested, *G, F);
  ASSERT_FALSE(static_cast<bool>(Under));
  EXPECT_EQ(Under.message().find("depth limit"), std::string::npos)
      << Under.message();
}

TEST_F(SExprFuzz, OversizedAtomsFailTypedWithBoundedMemory) {
  // Operator-name position and payload position both refuse atoms past
  // MaxSExprAtomBytes.
  std::string HugeOp = "(" + std::string(MaxSExprAtomBytes + 1, 'A') + ")";
  IRFunction F;
  Expected<Node *> N = parseSExpr(HugeOp, *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_EQ(N.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(N.message().find("length limit"), std::string::npos)
      << N.message();

  std::string HugePayload =
      "(Reg " + std::string(MaxSExprAtomBytes + 1, '7') + ")";
  Expected<Node *> P = parseSExpr(HugePayload, *G, F);
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_EQ(P.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(P.message().find("length limit"), std::string::npos)
      << P.message();
}

TEST_F(SExprFuzz, OutOfRangeIntegersFailTypedNotThrow) {
  IRFunction F;
  // One digit past INT64_MAX, far past, and the valid extremes.
  for (const char *Bad :
       {"(Reg 9223372036854775808)", "(Reg -9223372036854775809)",
        "(Reg 99999999999999999999999999999)"}) {
    Expected<Node *> N = parseSExpr(Bad, *G, F);
    ASSERT_FALSE(static_cast<bool>(N)) << Bad;
    EXPECT_EQ(N.kind(), ErrorKind::MalformedInput);
    EXPECT_NE(N.message().find("out of range"), std::string::npos)
        << N.message();
  }
  EXPECT_EQ(cantFail(parseSExpr("(Reg 9223372036854775807)", *G, F))->value(),
            9223372036854775807LL);
  EXPECT_EQ(cantFail(parseSExpr("(Reg -9223372036854775808)", *G, F))->value(),
            std::numeric_limits<std::int64_t>::min());
}

TEST_F(SExprFuzz, EndlessUnterminatedFrameStopsAtByteCap) {
  // A peer streaming '(' forever, never a newline, never EOF. The stream
  // must fail typed at its byte cap having consumed O(cap) bytes — not
  // hang, not buffer the infinity.
  EndlessStreamBuf Endless('(');
  std::istream In(&Endless);
  SExprFunctionStream Stream(In, *G);
  constexpr std::size_t Cap = 64 * 1024;
  Stream.setMaxFunctionBytes(Cap);

  IRFunction F;
  Expected<bool> Next = Stream.next(F);
  ASSERT_FALSE(static_cast<bool>(Next));
  EXPECT_EQ(Next.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(Next.message().find("byte cap"), std::string::npos)
      << Next.message();
  EXPECT_TRUE(Stream.poisoned());
  // Consumption stopped at the cap (plus one read-ahead block), instead
  // of draining the endless source.
  EXPECT_LE(Endless.consumed(), Cap + 4096);
}

TEST_F(SExprFuzz, GrammarParserSurvivesMutatedGrammars) {
  const std::string Seed = test::runningExampleText();
  for (std::uint64_t S = 1; S <= 10; ++S) {
    RNG Rand(S * 7919);
    for (int Round = 0; Round < 30; ++Round) {
      std::string Mutated = Seed;
      unsigned Edits = 1 + Rand.nextBelow(10);
      for (unsigned E = 0; E < Edits && !Mutated.empty(); ++E) {
        std::size_t At = Rand.nextBelow(Mutated.size());
        switch (Rand.nextBelow(4)) {
        case 0:
          Mutated[At] = static_cast<char>(Rand.nextBelow(256));
          break;
        case 1:
          Mutated.insert(At, std::string(1 + Rand.nextBelow(5),
                                         static_cast<char>(
                                             Rand.nextBelow(256))));
          break;
        case 2:
          Mutated.erase(At, 1 + Rand.nextBelow(8));
          break;
        default: {
          // Token-level chaos: splice grammar keywords mid-text.
          static const char *Tokens[] = {"%start", ":", ";", "(", ")",
                                         "?",      "%%", "\n", "reg"};
          Mutated.insert(At, Tokens[Rand.nextBelow(9)]);
          break;
        }
        }
      }
      // Success or typed failure, never a crash; the grammar may even be
      // valid — both outcomes are fine, the property is surviving.
      Expected<Grammar> GOrErr = parseGrammar(Mutated);
      if (!GOrErr) {
        EXPECT_FALSE(GOrErr.message().empty());
      }
    }
  }
}

TEST_F(SExprFuzz, PureNoiseStreams) {
  // No seed structure at all: uniform random bytes, newline-sprinkled so
  // framing code paths run too.
  for (std::uint64_t S = 1; S <= 10; ++S) {
    RNG Rand(S * 50021);
    std::string Noise(2000, '\0');
    for (char &C : Noise) {
      std::uint64_t B = Rand.nextBelow(300);
      C = B < 256 ? static_cast<char>(B) : '\n';
    }
    driveStream(Noise);
  }
}
