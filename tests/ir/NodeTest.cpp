//===- tests/ir/NodeTest.cpp ------------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/Node.h"

#include "grammar/GrammarParser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::ir;

namespace {

class NodeTest : public ::testing::Test {
protected:
  void SetUp() override {
    G = std::make_unique<Grammar>(
        cantFail(parseGrammar(test::runningExampleFixedText())));
  }

  std::unique_ptr<Grammar> G;
  IRFunction F;
};

} // namespace

TEST_F(NodeTest, NodesGetDenseTopologicalIds) {
  Node *St = test::buildStoreTree(F, *G, 1, 1, 2);
  EXPECT_EQ(F.size(), 6u);
  EXPECT_EQ(St->id(), 5u); // Root created last.
  for (const Node *N : F.nodes())
    for (unsigned I = 0; I < N->numChildren(); ++I)
      EXPECT_LT(N->child(I)->id(), N->id());
}

TEST_F(NodeTest, LeafPayloads) {
  Node *N = F.makeLeaf(G->findOperator("Reg"), 42);
  EXPECT_EQ(N->value(), 42);
  EXPECT_EQ(N->numChildren(), 0u);
  EXPECT_EQ(N->symbol(), nullptr);
}

TEST_F(NodeTest, SymbolPayloadInterned) {
  const char *Sym = F.internString("counter");
  Node *N = F.makeLeaf(G->findOperator("Reg"), 0, Sym);
  EXPECT_STREQ(N->symbol(), "counter");
}

TEST_F(NodeTest, RootsTrackProgramOrder) {
  Node *A = test::buildStoreTree(F, *G, 1, 1, 2);
  Node *B = test::buildStoreTree(F, *G, 3, 3, 4);
  ASSERT_EQ(F.roots().size(), 2u);
  EXPECT_EQ(F.roots()[0], A);
  EXPECT_EQ(F.roots()[1], B);
}

TEST_F(NodeTest, StructuralEqualityIgnoresIdentity) {
  Node *A = test::buildStoreTree(F, *G, 1, 1, 2);
  Node *B = test::buildStoreTree(F, *G, 1, 1, 2);
  Node *C = test::buildStoreTree(F, *G, 1, 1, 3);
  EXPECT_NE(A, B);
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, C));
}

TEST_F(NodeTest, StructuralEqualityComparesSymbols) {
  const char *S1 = F.internString("x");
  const char *S2 = F.internString("y");
  Node *A = F.makeLeaf(G->findOperator("Reg"), 0, S1);
  Node *B = F.makeLeaf(G->findOperator("Reg"), 0, S1);
  Node *C = F.makeLeaf(G->findOperator("Reg"), 0, S2);
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, C));
}

TEST_F(NodeTest, StructuralHashConsistentWithEquality) {
  Node *A = test::buildStoreTree(F, *G, 1, 1, 2);
  Node *B = test::buildStoreTree(F, *G, 1, 1, 2);
  Node *C = test::buildStoreTree(F, *G, 9, 1, 2);
  EXPECT_EQ(structuralHash(A), structuralHash(B));
  EXPECT_NE(structuralHash(A), structuralHash(C));
}

TEST_F(NodeTest, SExprDump) {
  Node *St = test::buildStoreTree(F, *G, 1, 2, 3);
  EXPECT_EQ(toSExpr(St, *G),
            "(Store (Reg 1) (Plus (Load (Reg 2)) (Reg 3)))");
}

TEST_F(NodeTest, DagSharingSingleNodeInstance) {
  Node *Shared = F.makeLeaf(G->findOperator("Reg"), 7);
  SmallVector<Node *, 2> C1{Shared};
  Node *Ld = F.makeNode(G->findOperator("Load"), C1);
  SmallVector<Node *, 2> C2{Ld, Shared};
  Node *Plus = F.makeNode(G->findOperator("Plus"), C2);
  EXPECT_EQ(Plus->child(1), Ld->child(0));
  EXPECT_EQ(F.size(), 3u); // Shared leaf counted once.
}

TEST_F(NodeTest, LabelScratchRoundTrips) {
  Node *N = F.makeLeaf(G->findOperator("Reg"), 0);
  N->setLabel(12345);
  EXPECT_EQ(N->label(), 12345u);
}
