//===- tests/ir/SExprParserTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace odburg;
using namespace odburg::ir;

namespace {

class SExprTest : public ::testing::Test {
protected:
  void SetUp() override {
    G = std::make_unique<Grammar>(
        cantFail(parseGrammar(test::runningExampleFixedText())));
  }

  std::unique_ptr<Grammar> G;
  IRFunction F;
};

} // namespace

TEST_F(SExprTest, RoundTripsThePaperTree) {
  const char *Text = "(Store (Reg 1) (Plus (Load (Reg 1)) (Reg 2)))";
  Node *N = cantFail(parseSExpr(Text, *G, F));
  EXPECT_EQ(toSExpr(N, *G), Text);
}

TEST_F(SExprTest, RoundTripsRandomTrees) {
  test::RandomTreeBuilder B(*G, 77);
  for (int I = 0; I < 10; ++I) {
    Node *Original = B.build(F, 40);
    std::string Text = toSExpr(Original, *G);
    Node *Reparsed = cantFail(parseSExpr(Text, *G, F));
    EXPECT_TRUE(structurallyEqual(Original, Reparsed)) << Text;
  }
}

TEST_F(SExprTest, ParsesSymbolsAndNegativeValues) {
  Grammar GS = cantFail(parseGrammar(R"(
    %start reg
    reg: AddrG (0);
    reg: Const (0);
  )"));
  IRFunction FS;
  Node *Sym = cantFail(parseSExpr("(AddrG counter)", GS, FS));
  EXPECT_STREQ(Sym->symbol(), "counter");
  Node *Neg = cantFail(parseSExpr("(Const -42)", GS, FS));
  EXPECT_EQ(Neg->value(), -42);
}

TEST_F(SExprTest, ProgramsAddRoots) {
  cantFail(parseSExprProgram("; two statements\n"
                             "(Store (Reg 1) (Reg 2))\n"
                             "(Store (Reg 3) (Load (Reg 1)))\n",
                             *G, F));
  ASSERT_EQ(F.roots().size(), 2u);
  // The parsed program is immediately selectable.
  DPLabeling L = DPLabeler(*G).label(F);
  Selection S = cantFail(reduce(*G, F, L));
  EXPECT_GT(S.Matches.size(), 0u);
}

TEST_F(SExprTest, RejectsUnknownOperator) {
  Expected<Node *> N = parseSExpr("(Bogus (Reg 1))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("Bogus"), std::string::npos);
}

TEST_F(SExprTest, RejectsArityMismatch) {
  Expected<Node *> N = parseSExpr("(Plus (Reg 1))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
}

TEST_F(SExprTest, InteriorPayloadsRoundTrip) {
  Grammar GB = cantFail(parseGrammar(R"(
    %start stmt
    reg:  Reg (0);
    cnd:  CmpEQ(reg, reg) (1);
    stmt: CBr(cnd) (1);
  )"));
  IRFunction FB;
  const char *Text = "(CBr 7 (CmpEQ (Reg 1) (Reg 2)))";
  Node *N = cantFail(parseSExpr(Text, GB, FB));
  EXPECT_EQ(N->value(), 7);
  EXPECT_EQ(toSExpr(N, GB), Text);
}

TEST_F(SExprTest, ErrorsCarryLineNumbers) {
  Expected<Node *> N = parseSExpr("(Store (Reg 1)\n  (Oops 2))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("line 2"), std::string::npos);
}

TEST_F(SExprTest, ErrorsCarryColumnAndTypedKind) {
  // The unknown operator starts at line 2, column 4; the diagnostic must
  // point there and be machine-dispatchable as MalformedInput so stream
  // consumers can skip the function and keep serving.
  Expected<Node *> N = parseSExpr("(Store (Reg 1)\n  (Oops 2))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_EQ(N.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(N.message().find("line 2, column 4"), std::string::npos)
      << N.message();

  IRFunction F2;
  Expected<Node *> Missing = parseSExpr("   x", *G, F2);
  ASSERT_FALSE(static_cast<bool>(Missing));
  EXPECT_EQ(Missing.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(Missing.message().find("line 1, column 4"), std::string::npos)
      << Missing.message();

  IRFunction F3;
  Expected<Node *> Unclosed = parseSExpr("(Store (Reg 1) (Reg 2)", *G, F3);
  ASSERT_FALSE(static_cast<bool>(Unclosed));
  EXPECT_EQ(Unclosed.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(Unclosed.message().find("column 23"), std::string::npos)
      << Unclosed.message();
}

TEST_F(SExprTest, ProgramErrorsOffsetByFirstLine) {
  Error E = parseSExprProgram("(Store (Reg 1) (Oops))", *G, F,
                              /*FirstLine=*/41);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(E.message().find("line 41"), std::string::npos) << E.message();
}

TEST_F(SExprTest, FunctionStreamReadsBlankLineSeparatedFunctions) {
  std::istringstream In("; corpus header comment\n"
                        "\n"
                        "(Store (Reg 1) (Reg 2))\n"
                        "(Store (Reg 3)\n"
                        "       (Load (Reg 1)))\n"
                        "\n"
                        "\n"
                        "(Store (Reg 4) (Reg 5))\n");
  SExprFunctionStream Stream(In, *G);

  IRFunction F1;
  ASSERT_TRUE(cantFail(Stream.next(F1)));
  EXPECT_EQ(F1.roots().size(), 2u); // Multi-line s-exprs stay one function.

  IRFunction F2;
  ASSERT_TRUE(cantFail(Stream.next(F2)));
  EXPECT_EQ(F2.roots().size(), 1u);

  IRFunction F3;
  EXPECT_FALSE(cantFail(Stream.next(F3)));
  // And again: end of stream is sticky.
  IRFunction F4;
  EXPECT_FALSE(cantFail(Stream.next(F4)));
}

TEST_F(SExprTest, FunctionStreamSkipsBadFunctionAndKeepsServing) {
  std::istringstream In("(Store (Reg 1) (Reg 2))\n"
                        "\n"
                        "(Store (Bogus 1) (Reg 2))\n"
                        "\n"
                        "(Store (Reg 8) (Reg 9))\n");
  SExprFunctionStream Stream(In, *G);

  IRFunction F1;
  ASSERT_TRUE(cantFail(Stream.next(F1)));

  IRFunction F2;
  Expected<bool> Bad = Stream.next(F2);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.kind(), ErrorKind::MalformedInput);
  // Stream-absolute position: the bad operator is on line 3.
  EXPECT_NE(Bad.message().find("line 3"), std::string::npos) << Bad.message();

  // The stream recovered past the bad function's boundary.
  IRFunction F3;
  ASSERT_TRUE(cantFail(Stream.next(F3)));
  ASSERT_EQ(F3.roots().size(), 1u);
  EXPECT_EQ(toSExpr(F3.roots()[0], *G), "(Store (Reg 8) (Reg 9))");

  IRFunction F4;
  EXPECT_FALSE(cantFail(Stream.next(F4)));
}

TEST_F(SExprTest, FunctionStreamRoundTripsGeneratedCorpus) {
  // toSExpr -> stream -> structural equality, the wire-format contract
  // behind the serve-vs-batch byte-identity check.
  test::RandomTreeBuilder B(*G, 1234);
  std::vector<IRFunction> Originals(5);
  std::string Wire;
  for (IRFunction &F : Originals) {
    for (int R = 0; R < 3; ++R) {
      F.addRoot(B.build(F, 25));
      Wire += toSExpr(F.roots().back(), *G);
      Wire += '\n';
    }
    Wire += '\n';
  }

  std::istringstream In(Wire);
  SExprFunctionStream Stream(In, *G);
  for (IRFunction &Original : Originals) {
    IRFunction Parsed;
    ASSERT_TRUE(cantFail(Stream.next(Parsed)));
    ASSERT_EQ(Parsed.roots().size(), Original.roots().size());
    for (std::size_t R = 0; R < Parsed.roots().size(); ++R)
      EXPECT_TRUE(structurallyEqual(Parsed.roots()[R], Original.roots()[R]));
  }
  IRFunction Tail;
  EXPECT_FALSE(cantFail(Stream.next(Tail)));
}

TEST_F(SExprTest, FunctionStreamEnforcesFrameByteCap) {
  // An unterminated frame past the byte cap fails typed, poisons the
  // stream (framing is lost mid-frame), and memory stays bounded by the
  // cap — the guard behind the socket server's untrusted inputs.
  std::string Endless = "(Store (Reg 1) (Reg 2))\n";
  while (Endless.size() < 4096)
    Endless += "(Store (Reg 1) (Reg 2))\n"; // Never a blank line.
  std::istringstream In(Endless);
  SExprFunctionStream Stream(In, *G);
  Stream.setMaxFunctionBytes(512);

  IRFunction F;
  Expected<bool> Next = Stream.next(F);
  ASSERT_FALSE(static_cast<bool>(Next));
  EXPECT_EQ(Next.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(Next.message().find("byte cap"), std::string::npos)
      << Next.message();
  EXPECT_TRUE(Stream.poisoned());

  // Under the cap: the same text chunked into blank-line-separated
  // frames streams through untouched.
  std::istringstream In2(
      "(Store (Reg 1) (Reg 2))\n\n(Store (Reg 3) (Reg 4))\n");
  SExprFunctionStream Ok(In2, *G);
  Ok.setMaxFunctionBytes(512);
  IRFunction F1, F2, F3;
  EXPECT_TRUE(cantFail(Ok.next(F1)));
  EXPECT_TRUE(cantFail(Ok.next(F2)));
  EXPECT_FALSE(cantFail(Ok.next(F3)));
  EXPECT_FALSE(Ok.poisoned());
}

TEST_F(SExprTest, FunctionStreamCapCatchesOneEndlessLine) {
  // The cap must fire even when the frame is a single line with no
  // newline at all (std::getline-style readers balloon here).
  std::string OneLine(8192, 'x');
  std::istringstream In(OneLine);
  SExprFunctionStream Stream(In, *G);
  Stream.setMaxFunctionBytes(1024);

  IRFunction F;
  Expected<bool> Next = Stream.next(F);
  ASSERT_FALSE(static_cast<bool>(Next));
  EXPECT_EQ(Next.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(Next.message().find("byte cap"), std::string::npos);
  EXPECT_TRUE(Stream.poisoned());
}

TEST_F(SExprTest, NextItemRecognizesControlLinesOutsideFramesOnly) {
  // The socket dialect: a line outside any frame that cannot start an
  // s-expression or comment is a control unit — no blank-line separator
  // needed. Inside a frame the same text stays function text (and fails
  // in the parser), so framing is unchanged.
  std::istringstream In("BACKEND dp\n"
                        "(Store (Reg 1) (Reg 2))\n"
                        "STATS\n" // Inside the frame: NOT control.
                        "(Store (Reg 3) (Reg 4))\n"
                        "\n"
                        "STATS\n" // Outside: control, own unit.
                        "(Store (Reg 5) (Reg 6))\n");
  SExprFunctionStream Stream(In, *G);
  using Item = SExprFunctionStream::Item;

  IRFunction F1;
  ASSERT_EQ(cantFail(Stream.nextItem(F1)), Item::Control);
  EXPECT_EQ(Stream.controlLine(), "BACKEND dp");

  // The frame with the embedded "STATS" line is one unit and malformed.
  IRFunction F2;
  Expected<Item> Bad = Stream.nextItem(F2);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.kind(), ErrorKind::MalformedInput);

  IRFunction F3;
  ASSERT_EQ(cantFail(Stream.nextItem(F3)), Item::Control);
  EXPECT_EQ(Stream.controlLine(), "STATS");

  IRFunction F4;
  ASSERT_EQ(cantFail(Stream.nextItem(F4)), Item::Function);
  ASSERT_EQ(F4.roots().size(), 1u);

  IRFunction F5;
  EXPECT_EQ(cantFail(Stream.nextItem(F5)), Item::End);

  // next() (the stdin dialect) must NOT speak control: the same leading
  // line is just a parse error there.
  std::istringstream In2("BACKEND dp\n\n(Store (Reg 1) (Reg 2))\n");
  SExprFunctionStream Plain(In2, *G);
  IRFunction P1;
  Expected<bool> Err = Plain.next(P1);
  ASSERT_FALSE(static_cast<bool>(Err));
  EXPECT_EQ(Err.kind(), ErrorKind::MalformedInput);
  IRFunction P2;
  EXPECT_TRUE(cantFail(Plain.next(P2)));
}

TEST_F(SExprTest, RebindSwitchesGrammarsMidStream) {
  // The server rebinds after a BACKEND handshake picks a lane whose
  // grammar differs (offline serves the stripped grammar). Subsequent
  // frames parse against the new grammar.
  Grammar Other = cantFail(parseGrammar(R"(
    %start reg
    reg: Widget(reg, reg) (1);
    reg: Reg (0);
  )"));
  std::istringstream In("(Store (Reg 1) (Reg 2))\n"
                        "\n"
                        "(Widget (Reg 1) (Reg 2))\n");
  SExprFunctionStream Stream(In, *G);
  IRFunction F1;
  ASSERT_TRUE(cantFail(Stream.next(F1)));

  Stream.rebind(Other);
  IRFunction F2;
  ASSERT_TRUE(cantFail(Stream.next(F2)));
  ASSERT_EQ(F2.roots().size(), 1u);
  EXPECT_EQ(toSExpr(F2.roots()[0], Other), "(Widget (Reg 1) (Reg 2))");
}
