//===- tests/ir/SExprParserTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "select/Reducer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::ir;

namespace {

class SExprTest : public ::testing::Test {
protected:
  void SetUp() override {
    G = std::make_unique<Grammar>(
        cantFail(parseGrammar(test::runningExampleFixedText())));
  }

  std::unique_ptr<Grammar> G;
  IRFunction F;
};

} // namespace

TEST_F(SExprTest, RoundTripsThePaperTree) {
  const char *Text = "(Store (Reg 1) (Plus (Load (Reg 1)) (Reg 2)))";
  Node *N = cantFail(parseSExpr(Text, *G, F));
  EXPECT_EQ(toSExpr(N, *G), Text);
}

TEST_F(SExprTest, RoundTripsRandomTrees) {
  test::RandomTreeBuilder B(*G, 77);
  for (int I = 0; I < 10; ++I) {
    Node *Original = B.build(F, 40);
    std::string Text = toSExpr(Original, *G);
    Node *Reparsed = cantFail(parseSExpr(Text, *G, F));
    EXPECT_TRUE(structurallyEqual(Original, Reparsed)) << Text;
  }
}

TEST_F(SExprTest, ParsesSymbolsAndNegativeValues) {
  Grammar GS = cantFail(parseGrammar(R"(
    %start reg
    reg: AddrG (0);
    reg: Const (0);
  )"));
  IRFunction FS;
  Node *Sym = cantFail(parseSExpr("(AddrG counter)", GS, FS));
  EXPECT_STREQ(Sym->symbol(), "counter");
  Node *Neg = cantFail(parseSExpr("(Const -42)", GS, FS));
  EXPECT_EQ(Neg->value(), -42);
}

TEST_F(SExprTest, ProgramsAddRoots) {
  cantFail(parseSExprProgram("; two statements\n"
                             "(Store (Reg 1) (Reg 2))\n"
                             "(Store (Reg 3) (Load (Reg 1)))\n",
                             *G, F));
  ASSERT_EQ(F.roots().size(), 2u);
  // The parsed program is immediately selectable.
  DPLabeling L = DPLabeler(*G).label(F);
  Selection S = cantFail(reduce(*G, F, L));
  EXPECT_GT(S.Matches.size(), 0u);
}

TEST_F(SExprTest, RejectsUnknownOperator) {
  Expected<Node *> N = parseSExpr("(Bogus (Reg 1))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("Bogus"), std::string::npos);
}

TEST_F(SExprTest, RejectsArityMismatch) {
  Expected<Node *> N = parseSExpr("(Plus (Reg 1))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
}

TEST_F(SExprTest, InteriorPayloadsRoundTrip) {
  Grammar GB = cantFail(parseGrammar(R"(
    %start stmt
    reg:  Reg (0);
    cnd:  CmpEQ(reg, reg) (1);
    stmt: CBr(cnd) (1);
  )"));
  IRFunction FB;
  const char *Text = "(CBr 7 (CmpEQ (Reg 1) (Reg 2)))";
  Node *N = cantFail(parseSExpr(Text, GB, FB));
  EXPECT_EQ(N->value(), 7);
  EXPECT_EQ(toSExpr(N, GB), Text);
}

TEST_F(SExprTest, ErrorsCarryLineNumbers) {
  Expected<Node *> N = parseSExpr("(Store (Reg 1)\n  (Oops 2))", *G, F);
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("line 2"), std::string::npos);
}
