//===- tests/frontend/MiniCTest.cpp -----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"
#include "frontend/Parser.h"

#include "support/Casting.h"
#include "targets/Target.h"

#include <gtest/gtest.h>

using namespace odburg;
using namespace odburg::minic;

TEST(MiniCParser, ParsesDeclarationsAndStatements) {
  Program P = cantFail(parseProgram(R"(
    int x; int a[4];
    x = 1;
    a[0] = x + 2;
    return a[0];
  )"));
  EXPECT_EQ(P.Decls.size(), 2u);
  EXPECT_EQ(P.Decls[1].Size, 4u);
  EXPECT_EQ(P.Stmts.size(), 3u);
}

TEST(MiniCParser, AstKindsAndCasting) {
  Program P = cantFail(parseProgram("int x;\nx = 1 + 2 * 3;"));
  const auto *A = dyn_cast<AssignStmt>(P.Stmts[0].get());
  ASSERT_NE(A, nullptr);
  const auto *Sum = dyn_cast<BinaryExpr>(&A->value());
  ASSERT_NE(Sum, nullptr);
  EXPECT_EQ(Sum->op(), BinOpKind::Add);
  // Precedence: multiplication binds tighter.
  const auto *Prod = dyn_cast<BinaryExpr>(&Sum->rhs());
  ASSERT_NE(Prod, nullptr);
  EXPECT_EQ(Prod->op(), BinOpKind::Mul);
  EXPECT_TRUE(isa<NumberExpr>(&Sum->lhs()));
}

TEST(MiniCParser, ControlFlowNesting) {
  Program P = cantFail(parseProgram(R"(
    int i;
    i = 0;
    while (i < 10) {
      if (i == 5) { i = i + 2; } else { i = i + 1; }
    }
    return i;
  )"));
  const auto *W = dyn_cast<WhileStmt>(P.Stmts[1].get());
  ASSERT_NE(W, nullptr);
  const auto *Body = dyn_cast<BlockStmt>(&W->body());
  ASSERT_NE(Body, nullptr);
  EXPECT_TRUE(isa<IfStmt>(Body->stmts()[0].get()));
}

TEST(MiniCParser, ErrorsCarryLineNumbers) {
  Expected<Program> P = parseProgram("int x;\nx = ;\n");
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.message().find("line 2"), std::string::npos);
}

TEST(MiniCParser, RejectsBadTokens) {
  Expected<Program> P = parseProgram("int x;\nx = 1 @ 2;");
  ASSERT_FALSE(static_cast<bool>(P));
}

namespace {

class LoweringTest : public ::testing::Test {
protected:
  void SetUp() override {
    T = cantFail(targets::makeTarget("x86"));
    Ops = cantFail(targets::resolveCanonicalOps(T->G));
  }

  std::unique_ptr<targets::Target> T;
  targets::CanonicalOps Ops;
};

} // namespace

TEST_F(LoweringTest, ScalarAssignmentShape) {
  ir::IRFunction F = cantFail(minic::compileMiniC("int x;\nx = 5;", T->G));
  ASSERT_EQ(F.roots().size(), 1u);
  EXPECT_EQ(ir::toSExpr(F.roots()[0], T->G), "(Store (AddrL 0) (Const 5))");
}

TEST_F(LoweringTest, ArrayIndexingUsesScaledAddress) {
  ir::IRFunction F =
      cantFail(minic::compileMiniC("int a[8]; int i;\ni = 0;\na[i] = 1;",
                                   T->G));
  ASSERT_EQ(F.roots().size(), 2u);
  // a[i]: base AddrL 0, index = Load(i's slot at offset 64) scaled by 8.
  EXPECT_EQ(ir::toSExpr(F.roots()[1], T->G),
            "(Store (Add (AddrL 0) (Shl (Load (AddrL 64)) (Const 3))) "
            "(Const 1))");
}

TEST_F(LoweringTest, WhileLoopEmitsLabelsAndBranches) {
  ir::IRFunction F = cantFail(minic::compileMiniC(
      "int i;\ni = 0;\nwhile (i < 3) { i = i + 1; }\nreturn i;", T->G));
  // Shape: store, Label(head), CBr(!cond), store, Br(head), Label(end), Ret.
  ASSERT_EQ(F.roots().size(), 7u);
  EXPECT_EQ(F.roots()[1]->op(), Ops.Label);
  EXPECT_EQ(F.roots()[2]->op(), Ops.CBr);
  // `i < 3` negates to `i >= 3` for the branch-if-false.
  EXPECT_EQ(F.roots()[2]->child(0)->op(), Ops.CmpGE);
  EXPECT_EQ(F.roots()[4]->op(), Ops.Br);
  EXPECT_EQ(F.roots()[6]->op(), Ops.Ret);
}

TEST_F(LoweringTest, NonComparisonConditionTestsAgainstZero) {
  ir::IRFunction F = cantFail(minic::compileMiniC(
      "int x;\nx = 3;\nif (x & 1) { x = 0; }\nreturn x;", T->G));
  const ir::Node *CBrNode = F.roots()[1];
  ASSERT_EQ(CBrNode->op(), Ops.CBr);
  EXPECT_EQ(CBrNode->child(0)->op(), Ops.CmpEQ); // branch if (x&1) == 0
}

TEST_F(LoweringTest, UndeclaredVariableFails) {
  Expected<ir::IRFunction> F = minic::compileMiniC("x = 1;", T->G);
  ASSERT_FALSE(static_cast<bool>(F));
  EXPECT_NE(F.message().find("undeclared"), std::string::npos);
}

TEST_F(LoweringTest, ScalarIndexMisuseFails) {
  Expected<ir::IRFunction> F =
      minic::compileMiniC("int x;\nx[0] = 1;", T->G);
  ASSERT_FALSE(static_cast<bool>(F));
  EXPECT_NE(F.message().find("scalar"), std::string::npos);
}

TEST_F(LoweringTest, ArrayWithoutIndexFails) {
  Expected<ir::IRFunction> F =
      minic::compileMiniC("int a[4];\na = 1;", T->G);
  ASSERT_FALSE(static_cast<bool>(F));
  EXPECT_NE(F.message().find("array"), std::string::npos);
}

TEST_F(LoweringTest, DuplicateDeclarationFails) {
  Expected<ir::IRFunction> F =
      minic::compileMiniC("int x; int x;\nx = 1;", T->G);
  ASSERT_FALSE(static_cast<bool>(F));
  EXPECT_NE(F.message().find("duplicate"), std::string::npos);
}
