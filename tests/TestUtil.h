//===- tests/TestUtil.h - Shared test fixtures -----------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared fixtures: the running-example grammar of the on-demand-automata
/// line of papers (lcc-style load/store/add machine with a read-modify-
/// write rule), small IR builders, and a deterministic random tree
/// generator used by property tests.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_TESTS_TESTUTIL_H
#define ODBURG_TESTS_TESTUTIL_H

#include "grammar/GrammarParser.h"
#include "ir/Node.h"
#include "select/DynCost.h"
#include "select/Labeling.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <string>

namespace odburg {
namespace test {

/// Asserts that two labelings agree on \p F: identical rules everywhere,
/// and costs equal up to one per-node delta (automaton engines normalize
/// costs per state, the DP labeler reports absolute costs).
inline void expectEquivalent(const Grammar &G, const ir::IRFunction &F,
                             const Labeling &Reference,
                             const Labeling &Subject) {
  for (const ir::Node *N : F.nodes()) {
    bool HaveDelta = false;
    Cost::ValueType Delta = 0;
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      Cost RC = Reference.costFor(*N, Nt);
      Cost SC = Subject.costFor(*N, Nt);
      ASSERT_EQ(RC.isInfinite(), SC.isInfinite())
          << "node " << N->id() << " nt " << G.nonterminalName(Nt);
      if (RC.isFinite()) {
        ASSERT_GE(RC.raw(), SC.raw());
        Cost::ValueType D = RC.raw() - SC.raw();
        if (!HaveDelta) {
          Delta = D;
          HaveDelta = true;
        }
        ASSERT_EQ(D, Delta) << "non-uniform normalization delta at node "
                            << N->id();
      }
      ASSERT_EQ(Reference.ruleFor(*N, Nt), Subject.ruleFor(*N, Nt))
          << "node " << N->id() << " (" << G.operatorName(N->op()) << ") nt "
          << G.nonterminalName(Nt);
    }
  }
}

/// The running example (Ertl et al. / Thier et al., Fig. 1): rules 1-6,
/// where rule 6 is the read-modify-write pattern whose instruction
/// requires equal load/store addresses (the `?memop` dynamic cost).
inline const char *runningExampleText() {
  return R"(
    %start stmt
    addr: reg          = 1 (0);
    reg:  Reg          = 2 (0);
    reg:  Load(addr)   = 3 (1);
    reg:  Plus(reg,reg)= 4 (1);
    stmt: Store(addr,reg) = 5 (1);
    stmt: Store(addr,Plus(Load(addr),reg)) = 6 (1) ?memop;
  )";
}

/// Same grammar with rule 6 unconstrained (no dynamic costs), for engines
/// that cannot evaluate hooks (offline tables).
inline const char *runningExampleFixedText() {
  return R"(
    %start stmt
    addr: reg          = 1 (0);
    reg:  Reg          = 2 (0);
    reg:  Load(addr)   = 3 (1);
    reg:  Plus(reg,reg)= 4 (1);
    stmt: Store(addr,reg) = 5 (1);
    stmt: Store(addr,Plus(Load(addr),reg)) = 6 (1);
  )";
}

/// The `memop` hook: the RMW instruction applies only when the stored-to
/// and loaded-from address trees are structurally identical.
inline Cost memopHook(const ir::Node &N) {
  if (N.numChildren() != 2)
    return Cost::infinity();
  const ir::Node *Inner = N.child(1);
  if (Inner->numChildren() < 1)
    return Cost::infinity();
  const ir::Node *Ld = Inner->child(0);
  if (Ld->numChildren() != 1)
    return Cost::infinity();
  return ir::structurallyEqual(N.child(0), Ld->child(0)) ? Cost::zero()
                                                         : Cost::infinity();
}

/// Hook registry for the running example.
inline std::unordered_map<std::string, DynCostFn> runningExampleHooks() {
  return {{"memop", memopHook}};
}

/// Builds the paper's example subject tree
/// Store(Reg r0, Plus(Load(Reg r1), Reg r2)) and adds it as a root.
inline ir::Node *buildStoreTree(ir::IRFunction &F, const Grammar &G,
                                std::int64_t StoreReg, std::int64_t LoadReg,
                                std::int64_t AddReg) {
  OperatorId RegOp = G.findOperator("Reg");
  OperatorId LoadOp = G.findOperator("Load");
  OperatorId PlusOp = G.findOperator("Plus");
  OperatorId StoreOp = G.findOperator("Store");
  ir::Node *Dst = F.makeLeaf(RegOp, StoreReg);
  ir::Node *Src = F.makeLeaf(RegOp, LoadReg);
  SmallVector<ir::Node *, 2> C1{Src};
  ir::Node *Ld = F.makeNode(LoadOp, C1);
  ir::Node *Add = F.makeLeaf(RegOp, AddReg);
  SmallVector<ir::Node *, 2> C2{Ld, Add};
  ir::Node *Plus = F.makeNode(PlusOp, C2);
  SmallVector<ir::Node *, 2> C3{Dst, Plus};
  ir::Node *St = F.makeNode(StoreOp, C3);
  F.addRoot(St);
  return St;
}

/// Generates a random tree over the grammar's operators: leaves are random
/// leaf operators with payloads in [0, PayloadRange), interior levels pick
/// random operators. Grows roughly to \p TargetNodes. The tree's root may
/// be any operator; callers that reduce from the start symbol should root
/// the tree appropriately themselves.
class RandomTreeBuilder {
public:
  /// \p ExcludeOp names an operator to keep out of generated trees (e.g.
  /// "Store" when building value subtrees); empty = no exclusion.
  RandomTreeBuilder(const Grammar &G, std::uint64_t Seed,
                    std::int64_t PayloadRange = 8,
                    std::string_view ExcludeOp = {})
      : G(G), Rand(Seed), PayloadRange(PayloadRange) {
    OperatorId Excluded =
        ExcludeOp.empty() ? InvalidOperator : G.findOperator(ExcludeOp);
    for (OperatorId Op = 0; Op < G.numOperators(); ++Op) {
      if (Op == Excluded)
        continue;
      if (G.operatorArity(Op) == 0)
        Leaves.push_back(Op);
      else
        Interior.push_back(Op);
    }
  }

  /// Builds one random subtree of roughly \p Budget nodes in \p F.
  ir::Node *build(ir::IRFunction &F, unsigned Budget) {
    if (Budget <= 1 || Interior.empty()) {
      OperatorId Op = Leaves[Rand.nextBelow(Leaves.size())];
      return F.makeLeaf(Op, Rand.nextInRange(0, PayloadRange - 1));
    }
    OperatorId Op = Interior[Rand.nextBelow(Interior.size())];
    unsigned Arity = G.operatorArity(Op);
    SmallVector<ir::Node *, 4> Children;
    for (unsigned I = 0; I < Arity; ++I)
      Children.push_back(build(F, (Budget - 1) / Arity));
    return F.makeNode(Op, Children, Rand.nextInRange(0, PayloadRange - 1));
  }

private:
  const Grammar &G;
  RNG Rand;
  std::int64_t PayloadRange;
  std::vector<OperatorId> Leaves;
  std::vector<OperatorId> Interior;
};

} // namespace test
} // namespace odburg

#endif // ODBURG_TESTS_TESTUTIL_H
