//===- tests/select/OracleTest.cpp ------------------------------------------===//
//
// Part of the odburg project.
//
// Property tests: the DP labeler must agree with the independent
// brute-force derivation oracle on random subject trees.
//
//===----------------------------------------------------------------------===//

#include "select/Oracle.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

namespace {

/// Exhaustively compares DP labeling against the oracle on a random tree.
void compareAllNodes(const Grammar &G, const DynCostTable *Dyn,
                     std::uint64_t Seed, unsigned Budget) {
  ir::IRFunction F;
  test::RandomTreeBuilder B(G, Seed);
  ir::Node *Root = B.build(F, Budget);
  F.addRoot(Root);
  DPLabeling Lab = DPLabeler(G, Dyn).label(F);
  for (const ir::Node *N : F.nodes()) {
    for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
      Cost Expected = oracleCost(G, *N, Nt, Dyn);
      Cost Actual = Lab.costFor(*N, Nt);
      ASSERT_EQ(Actual, Expected)
          << "seed " << Seed << " node " << N->id() << " ("
          << G.operatorName(N->op()) << ") nt " << G.nonterminalName(Nt);
    }
  }
}

} // namespace

class OracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleProperty, DPAgreesOnFixedGrammar) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  compareAllNodes(G, nullptr, GetParam(), 24);
}

TEST_P(OracleProperty, DPAgreesUnderDynamicCosts) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  compareAllNodes(G, &Dyn, GetParam() ^ 0x9E3779B9u, 20);
}

TEST_P(OracleProperty, DPAgreesOnChainHeavyGrammar) {
  Grammar G = cantFail(parseGrammar(R"(
    %start a
    a: b (1);
    b: c (0);
    c: a (0);
    c: Reg (0);
    b: Wrap(a) (2);
    a: Wrap(c) (1);
    c: Pair(a, b) (3);
  )"));
  compareAllNodes(G, nullptr, GetParam() * 31 + 7, 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(Oracle, HandComputedExample) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  ir::Node *St = test::buildStoreTree(F, G, 1, 1, 2);
  EXPECT_EQ(oracleCost(G, *St, G.findNonterminal("stmt"), nullptr), Cost(1));
  EXPECT_TRUE(oracleCost(G, *St, G.findNonterminal("reg"), nullptr)
                  .isInfinite());
}
