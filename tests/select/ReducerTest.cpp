//===- tests/select/ReducerTest.cpp -----------------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/Reducer.h"

#include "grammar/GrammarParser.h"
#include "select/DPLabeler.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

namespace {

std::vector<unsigned> extSequence(const Grammar &G, const Selection &S) {
  std::vector<unsigned> Out;
  for (const Match &M : S.Matches)
    Out.push_back(G.sourceRule(M.Source).ExtNumber);
  return Out;
}

} // namespace

TEST(Reducer, EmitsOptimalRmwDerivation) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  DPLabeling Lab = DPLabeler(G).label(F);
  Selection S = cantFail(reduce(G, F, Lab));
  // Bottom-up: dst Reg (2), chain to addr (1), src Reg (2), chain (1),
  // add Reg (2), then the RMW store rule (6). Rules 6a/6b are helper
  // fragments and must not fire.
  EXPECT_EQ(extSequence(G, S),
            (std::vector<unsigned>{2, 1, 2, 1, 2, 6}));
  EXPECT_EQ(S.TotalCost, Cost(1));
}

TEST(Reducer, EmitsFallbackDerivationUnderDynCosts) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(G, Hooks));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 7, 2); // Different addresses.
  DPLabeling Lab = DPLabeler(G, &Dyn).label(F);
  Selection S = cantFail(reduce(G, F, Lab, &Dyn));
  EXPECT_EQ(extSequence(G, S),
            (std::vector<unsigned>{2, 1, 2, 1, 3, 2, 4, 5}));
  EXPECT_EQ(S.TotalCost, Cost(3));
}

TEST(Reducer, MultipleRootsInProgramOrder) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  test::buildStoreTree(F, G, 3, 9, 4);
  DPLabeling Lab = DPLabeler(G).label(F);
  Selection S = cantFail(reduce(G, F, Lab));
  // Both statements covered; second one costs 1 too (rule 6 has no
  // constraint in the fixed grammar).
  EXPECT_EQ(S.TotalCost, Cost(2));
  EXPECT_EQ(S.Matches.back().Where, F.roots()[1]);
}

TEST(Reducer, DagSharedSubtreeEmittedOnce) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  // Two stores sharing the same Plus subtree.
  OperatorId RegOp = G.findOperator("Reg");
  OperatorId PlusOp = G.findOperator("Plus");
  OperatorId StoreOp = G.findOperator("Store");
  ir::Node *A = F.makeLeaf(RegOp, 1);
  ir::Node *B = F.makeLeaf(RegOp, 2);
  SmallVector<ir::Node *, 2> CP{A, B};
  ir::Node *Shared = F.makeNode(PlusOp, CP);
  ir::Node *D1 = F.makeLeaf(RegOp, 3);
  ir::Node *D2 = F.makeLeaf(RegOp, 4);
  SmallVector<ir::Node *, 2> C1{D1, Shared};
  SmallVector<ir::Node *, 2> C2{D2, Shared};
  F.addRoot(F.makeNode(StoreOp, C1));
  F.addRoot(F.makeNode(StoreOp, C2));

  DPLabeling Lab = DPLabeler(G).label(F);
  Selection S = cantFail(reduce(G, F, Lab));
  // The shared Plus is matched once: exactly one rule-4 firing.
  unsigned PlusFirings = 0;
  for (const Match &M : S.Matches)
    PlusFirings += G.sourceRule(M.Source).ExtNumber == 4;
  EXPECT_EQ(PlusFirings, 1u);
}

TEST(Reducer, FailsWithoutDerivation) {
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    stmt: Store(reg, reg) (1);
    reg:  Reg (0);
  )"));
  ir::IRFunction F;
  // Root is a bare Reg: no stmt derivation exists.
  F.addRoot(F.makeLeaf(G.findOperator("Reg"), 0));
  DPLabeling Lab = DPLabeler(G).label(F);
  Expected<Selection> S = reduce(G, F, Lab);
  ASSERT_FALSE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("no derivation"), std::string::npos);
}

TEST(Reducer, ScratchReuseAcrossFunctionsBitIdentical) {
  // One ReductionScratch serving many functions (the pipeline's per-worker
  // pattern) must produce exactly what fresh scratch produces, including
  // when a later function is smaller than an earlier one (stale epochs in
  // the oversized visited set must not leak).
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction Big, Small;
  test::buildStoreTree(Big, G, 1, 1, 2);
  test::buildStoreTree(Big, G, 3, 9, 4);
  test::buildStoreTree(Small, G, 5, 5, 6);

  ReductionScratch Scratch;
  for (int Round = 0; Round < 3; ++Round) {
    for (ir::IRFunction *F : {&Big, &Small}) {
      DPLabeling Lab = DPLabeler(G).label(*F);
      Selection Fresh = cantFail(reduce(G, *F, Lab));
      Selection Reused = cantFail(reduce(G, *F, Lab, nullptr, Scratch));
      EXPECT_EQ(extSequence(G, Fresh), extSequence(G, Reused));
      EXPECT_EQ(Fresh.TotalCost, Reused.TotalCost);
    }
  }
}

TEST(Reducer, ScratchReusableAfterError) {
  // A failed reduction must leave the scratch reusable: the next function
  // through the same scratch gets a correct, complete derivation.
  Grammar G = cantFail(parseGrammar(R"(
    %start stmt
    stmt: Store(reg, reg) (1);
    reg:  Reg (0);
  )"));
  ir::IRFunction Bad;
  Bad.addRoot(Bad.makeLeaf(G.findOperator("Reg"), 0));
  ir::IRFunction Good;
  SmallVector<ir::Node *, 2> C{Good.makeLeaf(G.findOperator("Reg"), 1),
                               Good.makeLeaf(G.findOperator("Reg"), 2)};
  Good.addRoot(Good.makeNode(G.findOperator("Store"), C));

  ReductionScratch Scratch;
  DPLabeling BadLab = DPLabeler(G).label(Bad);
  Expected<Selection> Failed = reduce(G, Bad, BadLab, nullptr, Scratch);
  ASSERT_FALSE(static_cast<bool>(Failed));
  EXPECT_NE(Failed.message().find("no derivation"), std::string::npos);

  DPLabeling GoodLab = DPLabeler(G).label(Good);
  Selection Reused = cantFail(reduce(G, Good, GoodLab, nullptr, Scratch));
  Selection Fresh = cantFail(reduce(G, Good, GoodLab));
  EXPECT_EQ(extSequence(G, Fresh), extSequence(G, Reused));
  EXPECT_EQ(Fresh.TotalCost, Reused.TotalCost);
}

TEST(Reducer, MatchLhsRecorded) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  DPLabeling Lab = DPLabeler(G).label(F);
  Selection S = cantFail(reduce(G, F, Lab));
  EXPECT_EQ(G.nonterminalName(S.Matches.back().Lhs), "stmt");
}
