//===- tests/select/LabelerBackendTest.cpp -----------------------------------===//
//
// Part of the odburg project.
//
// The pluggable labeling-backend layer. Contracts under test: names parse
// and round-trip; the factory builds every kind and reports typed errors
// (UnsupportedDynamicCosts for offline x dynamic grammars); each backend
// labels equivalently to the reference DP labeler through the uniform
// labelFunction(F, scratch) shape; and one scratch serves many functions
// and survives rebinding across backends.
//
//===----------------------------------------------------------------------===//

#include "select/LabelerBackend.h"

#include "grammar/GrammarParser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(LabelerBackend, NamesParseAndRoundTrip) {
  for (BackendKind K :
       {BackendKind::DP, BackendKind::Offline, BackendKind::OnDemand}) {
    Expected<BackendKind> Parsed = parseBackendKind(backendName(K));
    ASSERT_TRUE(static_cast<bool>(Parsed)) << backendName(K);
    EXPECT_EQ(*Parsed, K);
  }
  // The CLI also accepts the paper's hyphenation.
  EXPECT_EQ(*parseBackendKind("on-demand"), BackendKind::OnDemand);

  Expected<BackendKind> Bad = parseBackendKind("burg");
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.kind(), ErrorKind::UnknownBackend);
  EXPECT_NE(Bad.message().find("burg"), std::string::npos);
  EXPECT_NE(Bad.message().find("ondemand"), std::string::npos);
}

TEST(LabelerBackend, FactoryBuildsEveryKindOnStaticGrammar) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  for (BackendKind K :
       {BackendKind::DP, BackendKind::Offline, BackendKind::OnDemand}) {
    Expected<std::unique_ptr<LabelerBackend>> B =
        LabelerBackend::create(K, G);
    ASSERT_TRUE(static_cast<bool>(B)) << B.message();
    EXPECT_EQ((*B)->kind(), K);
  }
}

TEST(LabelerBackend, OfflineRejectsDynamicCostsWithTypedError) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  Expected<std::unique_ptr<LabelerBackend>> B =
      LabelerBackend::create(BackendKind::Offline, G, &Dyn);
  ASSERT_FALSE(static_cast<bool>(B));
  EXPECT_EQ(B.kind(), ErrorKind::UnsupportedDynamicCosts);
  EXPECT_NE(B.message().find("dynamic costs"), std::string::npos);

  // The same grammar is fine on the engines that evaluate hooks.
  for (BackendKind K : {BackendKind::DP, BackendKind::OnDemand}) {
    Expected<std::unique_ptr<LabelerBackend>> OK =
        LabelerBackend::create(K, G, &Dyn);
    ASSERT_TRUE(static_cast<bool>(OK)) << OK.message();
    EXPECT_TRUE((*OK)->supportsDynCosts());
  }
}

TEST(LabelerBackend, OfflineStateLimitSurfacesTyped) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  LabelerBackend::Options Opts;
  Opts.OfflineMaxStates = 1;
  Expected<std::unique_ptr<LabelerBackend>> B =
      LabelerBackend::create(BackendKind::Offline, G, nullptr, Opts);
  ASSERT_FALSE(static_cast<bool>(B));
  EXPECT_EQ(B.kind(), ErrorKind::StateLimitExceeded);
}

TEST(LabelerBackend, AllBackendsLabelEquivalentlyThroughOneScratch) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));

  // Several functions through the same scratch per backend — the batch
  // reuse pattern of CompileSession's workers.
  std::vector<ir::IRFunction> Corpus(3);
  test::buildStoreTree(Corpus[0], G, 1, 1, 2);
  test::buildStoreTree(Corpus[1], G, 2, 9, 4);
  test::buildStoreTree(Corpus[2], G, 3, 3, 3);

  DPLabeler Ref(G);
  std::vector<DPLabeling> Refs;
  for (ir::IRFunction &F : Corpus)
    Refs.push_back(Ref.label(F));

  for (BackendKind K :
       {BackendKind::DP, BackendKind::Offline, BackendKind::OnDemand}) {
    auto B = cantFail(LabelerBackend::create(K, G));
    LabelerScratch Scratch;
    for (std::size_t I = 0; I < Corpus.size(); ++I) {
      SelectionStats Stats;
      const Labeling &L = B->labelFunction(Corpus[I], Scratch, &Stats);
      EXPECT_EQ(Stats.NodesLabeled, Corpus[I].size()) << backendName(K);
      test::expectEquivalent(G, Corpus[I], Refs[I], L);
    }
  }
}

TEST(LabelerBackend, DynamicGrammarBackendsAgreeWithHooks) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2); // RMW applies (equal addresses).
  test::buildStoreTree(F, G, 2, 9, 4); // RMW does not apply.

  DPLabeling Ref = DPLabeler(G, &Dyn).label(F);
  for (BackendKind K : {BackendKind::DP, BackendKind::OnDemand}) {
    auto B = cantFail(LabelerBackend::create(K, G, &Dyn));
    LabelerScratch Scratch;
    const Labeling &L = B->labelFunction(F, Scratch);
    test::expectEquivalent(G, F, Ref, L);
  }
}

TEST(LabelerBackend, IntrospectionMatchesEngines) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);

  auto DP = cantFail(LabelerBackend::create(BackendKind::DP, G));
  EXPECT_EQ(DP->numStates(), 0u);
  EXPECT_EQ(DP->memoryBytes(), 0u);

  auto Off = cantFail(LabelerBackend::create(BackendKind::Offline, G));
  EXPECT_FALSE(Off->supportsDynCosts());
  EXPECT_GT(Off->numStates(), 0u);
  EXPECT_GT(Off->memoryBytes(), 0u);
  // Offline tables exist in full before any labeling.
  unsigned Before = Off->numStates();
  LabelerScratch Scratch;
  Off->labelFunction(F, Scratch);
  EXPECT_EQ(Off->numStates(), Before);

  auto OD = cantFail(LabelerBackend::create(BackendKind::OnDemand, G));
  EXPECT_EQ(OD->numStates(), 0u); // Lazy: nothing before the first node.
  OD->labelFunction(F, Scratch);
  EXPECT_GT(OD->numStates(), 0u);
  EXPECT_LE(OD->numStates(), Off->numStates());
}
