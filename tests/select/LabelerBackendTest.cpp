//===- tests/select/LabelerBackendTest.cpp -----------------------------------===//
//
// Part of the odburg project.
//
// The pluggable labeling-backend layer. Contracts under test: names parse
// and round-trip; the factory builds every kind and reports typed errors
// (UnsupportedDynamicCosts for offline x dynamic grammars); each backend
// labels equivalently to the reference DP labeler through the uniform
// labelFunction(F, scratch) shape; and one scratch serves many functions
// and survives rebinding across backends.
//
//===----------------------------------------------------------------------===//

#include "select/LabelerBackend.h"

#include "grammar/GrammarParser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

TEST(LabelerBackend, NamesParseAndRoundTrip) {
  for (BackendKind K : {BackendKind::DP, BackendKind::Offline,
                        BackendKind::OnDemand, BackendKind::Hybrid}) {
    Expected<BackendKind> Parsed = parseBackendKind(backendName(K));
    ASSERT_TRUE(static_cast<bool>(Parsed)) << backendName(K);
    EXPECT_EQ(*Parsed, K);
  }
  // The CLI also accepts the paper's hyphenation.
  EXPECT_EQ(*parseBackendKind("on-demand"), BackendKind::OnDemand);

  Expected<BackendKind> Bad = parseBackendKind("burg");
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.kind(), ErrorKind::UnknownBackend);
  EXPECT_NE(Bad.message().find("burg"), std::string::npos);
  EXPECT_NE(Bad.message().find("ondemand"), std::string::npos);
}

TEST(LabelerBackend, FactoryBuildsEveryKindOnStaticGrammar) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  for (BackendKind K : {BackendKind::DP, BackendKind::Offline,
                        BackendKind::OnDemand, BackendKind::Hybrid}) {
    Expected<std::unique_ptr<LabelerBackend>> B =
        LabelerBackend::create(K, G);
    ASSERT_TRUE(static_cast<bool>(B)) << B.message();
    EXPECT_EQ((*B)->kind(), K);
  }
}

TEST(LabelerBackend, OfflineRejectsDynamicCostsWithTypedError) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  Expected<std::unique_ptr<LabelerBackend>> B =
      LabelerBackend::create(BackendKind::Offline, G, &Dyn);
  ASSERT_FALSE(static_cast<bool>(B));
  EXPECT_EQ(B.kind(), ErrorKind::UnsupportedDynamicCosts);
  EXPECT_NE(B.message().find("dynamic costs"), std::string::npos);

  // The same grammar is fine on the engines that evaluate hooks.
  for (BackendKind K : {BackendKind::DP, BackendKind::OnDemand}) {
    Expected<std::unique_ptr<LabelerBackend>> OK =
        LabelerBackend::create(K, G, &Dyn);
    ASSERT_TRUE(static_cast<bool>(OK)) << OK.message();
    EXPECT_TRUE((*OK)->supportsDynCosts());
  }
}

TEST(LabelerBackend, OfflineStateLimitSurfacesTyped) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  LabelerBackend::Options Opts;
  Opts.OfflineMaxStates = 1;
  Expected<std::unique_ptr<LabelerBackend>> B =
      LabelerBackend::create(BackendKind::Offline, G, nullptr, Opts);
  ASSERT_FALSE(static_cast<bool>(B));
  EXPECT_EQ(B.kind(), ErrorKind::StateLimitExceeded);
}

TEST(LabelerBackend, AllBackendsLabelEquivalentlyThroughOneScratch) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));

  // Several functions through the same scratch per backend — the batch
  // reuse pattern of CompileSession's workers.
  std::vector<ir::IRFunction> Corpus(3);
  test::buildStoreTree(Corpus[0], G, 1, 1, 2);
  test::buildStoreTree(Corpus[1], G, 2, 9, 4);
  test::buildStoreTree(Corpus[2], G, 3, 3, 3);

  DPLabeler Ref(G);
  std::vector<DPLabeling> Refs;
  for (ir::IRFunction &F : Corpus)
    Refs.push_back(Ref.label(F));

  for (BackendKind K : {BackendKind::DP, BackendKind::Offline,
                        BackendKind::OnDemand, BackendKind::Hybrid}) {
    auto B = cantFail(LabelerBackend::create(K, G));
    LabelerScratch Scratch;
    for (std::size_t I = 0; I < Corpus.size(); ++I) {
      SelectionStats Stats;
      const Labeling &L = B->labelFunction(Corpus[I], Scratch, &Stats);
      EXPECT_EQ(Stats.NodesLabeled, Corpus[I].size()) << backendName(K);
      test::expectEquivalent(G, Corpus[I], Refs[I], L);
    }
  }
}

TEST(LabelerBackend, DynamicGrammarBackendsAgreeWithHooks) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2); // RMW applies (equal addresses).
  test::buildStoreTree(F, G, 2, 9, 4); // RMW does not apply.

  DPLabeling Ref = DPLabeler(G, &Dyn).label(F);
  for (BackendKind K :
       {BackendKind::DP, BackendKind::OnDemand, BackendKind::Hybrid}) {
    auto B = cantFail(LabelerBackend::create(K, G, &Dyn));
    LabelerScratch Scratch;
    const Labeling &L = B->labelFunction(F, Scratch);
    test::expectEquivalent(G, F, Ref, L);
  }
}

TEST(LabelerBackend, OfflineErrorNamesDynOperatorsAndSuggestsHybrid) {
  // Satellite of the hybrid work: the offline rejection is actionable —
  // it names the offending operator(s) and points at --backend=hybrid.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  Expected<std::unique_ptr<LabelerBackend>> B =
      LabelerBackend::create(BackendKind::Offline, G);
  ASSERT_FALSE(static_cast<bool>(B));
  EXPECT_EQ(B.kind(), ErrorKind::UnsupportedDynamicCosts);
  EXPECT_NE(B.message().find("'Store'"), std::string::npos) << B.message();
  EXPECT_NE(B.message().find("hybrid"), std::string::npos) << B.message();
}

TEST(LabelerBackend, PartitionSplitsStaticAndDynamicOperators) {
  // Running example: rule 6's ?memop hook is rooted at Store; the interior
  // Plus/Load fragments are 0-cost fixed helper rules, so only Store lands
  // in the dynamic remainder.
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  GrammarPartition P = GrammarPartition::compute(G);
  EXPECT_EQ(P.numStatic() + P.numDynamic(), G.numOperators());
  EXPECT_EQ(P.numDynamic(), 1u);
  ASSERT_EQ(P.DynOps.size(), 1u);
  EXPECT_EQ(G.operatorName(P.DynOps[0]), "Store");
  EXPECT_FALSE(P.contains(P.DynOps[0]));
  EXPECT_TRUE(P.contains(G.findOperator("Plus")));
  EXPECT_EQ(P.describeDynOps(G), "'Store'");

  // On the fixed variant everything is static.
  Grammar Fixed = cantFail(parseGrammar(test::runningExampleFixedText()));
  EXPECT_EQ(GrammarPartition::compute(Fixed).numDynamic(), 0u);
}

TEST(LabelerBackend, HybridServesStaticPartitionFromTables) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  auto B = cantFail(LabelerBackend::create(BackendKind::Hybrid, G, &Dyn));
  EXPECT_TRUE((*B).supportsDynCosts());
  EXPECT_EQ(B->kind(), BackendKind::Hybrid);
  // Table bytes ride on top of the automaton's footprint.
  EXPECT_GT(B->memoryBytes(), 0u);

  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  LabelerScratch Scratch;
  SelectionStats Stats;
  B->labelFunction(F, Scratch, &Stats);
  // Every node except the dyn-remainder Store roots resolves by direct
  // offline-table indexing.
  EXPECT_GT(Stats.OfflineHits, 0u);
  EXPECT_EQ(Stats.OfflineHits + 1, Stats.NodesLabeled);
}

TEST(LabelerBackend, HybridCreateWithTablesChecksPartitionShape) {
  Grammar G = cantFail(parseGrammar(test::runningExampleText()));
  DynCostTable Dyn =
      cantFail(DynCostTable::build(G, test::runningExampleHooks()));
  GrammarPartition P = GrammarPartition::compute(G);

  // Matching membership: accepted, and labels like a freshly built hybrid.
  CompiledTables Good =
      cantFail(OfflineTableGen(G).generateSubset(P.InPartition));
  auto B = cantFail(HybridBackend::createWithTables(
      G, &Dyn, LabelerBackend::Options(), std::move(Good)));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);
  DPLabeling Ref = DPLabeler(G, &Dyn).label(F);
  LabelerScratch Scratch;
  test::expectEquivalent(G, F, Ref, B->labelFunction(F, Scratch, nullptr));

  // A different operator subset (here: Plus also excluded) is a typed
  // mismatch, not a silent mislabel.
  std::vector<std::uint8_t> Wrong = P.InPartition;
  Wrong[G.findOperator("Plus")] = 0;
  CompiledTables Narrow = cantFail(OfflineTableGen(G).generateSubset(Wrong));
  Expected<std::unique_ptr<HybridBackend>> Bad =
      HybridBackend::createWithTables(G, &Dyn, LabelerBackend::Options(),
                                      std::move(Narrow));
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.kind(), ErrorKind::MalformedInput);
  EXPECT_NE(Bad.message().find("partition"), std::string::npos);
}

TEST(LabelerBackend, IntrospectionMatchesEngines) {
  Grammar G = cantFail(parseGrammar(test::runningExampleFixedText()));
  ir::IRFunction F;
  test::buildStoreTree(F, G, 1, 1, 2);

  auto DP = cantFail(LabelerBackend::create(BackendKind::DP, G));
  EXPECT_EQ(DP->numStates(), 0u);
  EXPECT_EQ(DP->memoryBytes(), 0u);

  auto Off = cantFail(LabelerBackend::create(BackendKind::Offline, G));
  EXPECT_FALSE(Off->supportsDynCosts());
  EXPECT_GT(Off->numStates(), 0u);
  EXPECT_GT(Off->memoryBytes(), 0u);
  // Offline tables exist in full before any labeling.
  unsigned Before = Off->numStates();
  LabelerScratch Scratch;
  Off->labelFunction(F, Scratch);
  EXPECT_EQ(Off->numStates(), Before);

  auto OD = cantFail(LabelerBackend::create(BackendKind::OnDemand, G));
  EXPECT_EQ(OD->numStates(), 0u); // Lazy: nothing before the first node.
  OD->labelFunction(F, Scratch);
  EXPECT_GT(OD->numStates(), 0u);
  EXPECT_LE(OD->numStates(), Off->numStates());
}
