//===- tests/select/DPLabelerTest.cpp ---------------------------------------===//
//
// Part of the odburg project.
//
// Verifies the DP labeler against the hand-computed labeling of the
// running example (Fig. 3 of the papers in this line of work).
//
//===----------------------------------------------------------------------===//

#include "select/DPLabeler.h"

#include "grammar/GrammarParser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace odburg;

namespace {

class DPLabelerTest : public ::testing::Test {
protected:
  void SetUp() override {
    G = std::make_unique<Grammar>(
        cantFail(parseGrammar(test::runningExampleFixedText())));
    Reg = G->findNonterminal("reg");
    Addr = G->findNonterminal("addr");
    Stmt = G->findNonterminal("stmt");
  }

  unsigned extOf(const Labeling &L, const ir::Node &N, NonterminalId Nt) {
    RuleId R = L.ruleFor(N, Nt);
    if (R == InvalidRule)
      return 0;
    return G->sourceRule(G->normRule(R).Source).ExtNumber;
  }

  std::unique_ptr<Grammar> G;
  NonterminalId Reg, Addr, Stmt;
};

} // namespace

TEST_F(DPLabelerTest, PaperFigure3Labeling) {
  ir::IRFunction F;
  ir::Node *St = test::buildStoreTree(F, *G, 1, 1, 2);
  ir::Node *Plus = St->child(1);
  ir::Node *Load = Plus->child(0);
  ir::Node *DstReg = St->child(0);

  DPLabeler L(*G);
  DPLabeling Lab = L.label(F);

  // Reg leaf: reg cost 0 (rule 2), addr cost 0 (rule 1).
  EXPECT_EQ(Lab.costFor(*DstReg, Reg), Cost(0));
  EXPECT_EQ(extOf(Lab, *DstReg, Reg), 2u);
  EXPECT_EQ(Lab.costFor(*DstReg, Addr), Cost(0));
  EXPECT_EQ(extOf(Lab, *DstReg, Addr), 1u);

  // Load: reg cost 1 (rule 3), addr cost 1 (rule 1).
  EXPECT_EQ(Lab.costFor(*Load, Reg), Cost(1));
  EXPECT_EQ(extOf(Lab, *Load, Reg), 3u);
  EXPECT_EQ(Lab.costFor(*Load, Addr), Cost(1));
  EXPECT_EQ(extOf(Lab, *Load, Addr), 1u);

  // Plus: reg cost 2 (rule 4), addr cost 2 (rule 1).
  EXPECT_EQ(Lab.costFor(*Plus, Reg), Cost(2));
  EXPECT_EQ(extOf(Lab, *Plus, Reg), 4u);
  EXPECT_EQ(Lab.costFor(*Plus, Addr), Cost(2));

  // Store: stmt cost 1 via the read-modify-write rule 6.
  EXPECT_EQ(Lab.costFor(*St, Stmt), Cost(1));
  EXPECT_EQ(extOf(Lab, *St, Stmt), 6u);
}

TEST_F(DPLabelerTest, NonDerivableCombinationsAreInfinite) {
  ir::IRFunction F;
  ir::Node *St = test::buildStoreTree(F, *G, 1, 1, 2);
  DPLabeling Lab = DPLabeler(*G).label(F);
  // A Store produces no value: reg is not derivable at the root.
  EXPECT_TRUE(Lab.costFor(*St, Reg).isInfinite());
  EXPECT_EQ(Lab.ruleFor(*St, Reg), InvalidRule);
  // A Reg leaf is not a statement.
  EXPECT_TRUE(Lab.costFor(*St->child(0), Stmt).isInfinite());
}

TEST_F(DPLabelerTest, DynamicCostGatesRmwRule) {
  Grammar GD = cantFail(parseGrammar(test::runningExampleText()));
  auto Hooks = test::runningExampleHooks();
  DynCostTable Dyn = cantFail(DynCostTable::build(GD, Hooks));
  NonterminalId StmtD = GD.findNonterminal("stmt");

  // Same address: rule 6 applies, cost 1.
  {
    ir::IRFunction F;
    ir::Node *St = test::buildStoreTree(F, GD, 1, 1, 2);
    DPLabeling Lab = DPLabeler(GD, &Dyn).label(F);
    EXPECT_EQ(Lab.costFor(*St, StmtD), Cost(1));
    EXPECT_EQ(GD.sourceRule(GD.normRule(Lab.ruleFor(*St, StmtD)).Source)
                  .ExtNumber,
              6u);
  }
  // Different address: rule 6 inapplicable, falls back to 5+4+3 (cost 3).
  {
    ir::IRFunction F;
    ir::Node *St = test::buildStoreTree(F, GD, 1, 7, 2);
    DPLabeling Lab = DPLabeler(GD, &Dyn).label(F);
    EXPECT_EQ(Lab.costFor(*St, StmtD), Cost(3));
    EXPECT_EQ(GD.sourceRule(GD.normRule(Lab.ruleFor(*St, StmtD)).Source)
                  .ExtNumber,
              5u);
  }
}

TEST_F(DPLabelerTest, StatsCountWork) {
  ir::IRFunction F;
  test::buildStoreTree(F, *G, 1, 1, 2);
  SelectionStats S;
  DPLabeler(*G).label(F, &S);
  EXPECT_EQ(S.NodesLabeled, 6u);
  EXPECT_GT(S.RuleChecks, 0u);
  EXPECT_GT(S.ChainRelaxations, 0u);
  EXPECT_EQ(S.CacheProbes, 0u); // DP never probes a transition cache.
}

TEST_F(DPLabelerTest, ChainCycleConverges) {
  Grammar GC = cantFail(parseGrammar(R"(
    %start a
    a: b (0);
    b: a (0);
    b: Reg (1);
    a: Wrap(a) (2);
  )"));
  ir::IRFunction F;
  ir::Node *Leaf = F.makeLeaf(GC.findOperator("Reg"), 0);
  SmallVector<ir::Node *, 1> C{Leaf};
  ir::Node *W = F.makeNode(GC.findOperator("Wrap"), C);
  F.addRoot(W);
  DPLabeling Lab = DPLabeler(GC).label(F);
  NonterminalId A = GC.findNonterminal("a");
  NonterminalId B = GC.findNonterminal("b");
  EXPECT_EQ(Lab.costFor(*Leaf, B), Cost(1));
  EXPECT_EQ(Lab.costFor(*Leaf, A), Cost(1));
  EXPECT_EQ(Lab.costFor(*W, A), Cost(3));
  EXPECT_EQ(Lab.costFor(*W, B), Cost(3));
}
