//===- select/Reducer.cpp - Derivation walk and match extraction ----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/Reducer.h"

#include <algorithm>

namespace odburg {

/// Explicit-stack derivation walker (IR trees can be deep enough to make
/// native recursion risky). Visited set and stack live in a caller-owned
/// ReductionScratch so batch drivers can reuse them across functions.
class ReducerWalker {
public:
  ReducerWalker(const Grammar &G, const ir::IRFunction &F, const Labeling &L,
                const DynCostTable *Dyn, Selection &Out,
                ReductionScratch &Scratch)
      : G(G), L(L), Dyn(Dyn), Out(Out), Scratch(Scratch),
        Stride(G.numNonterminals()) {
    std::size_t Needed = static_cast<std::size_t>(F.size()) * Stride;
    if (Scratch.VisitedEpoch.size() < Needed)
      Scratch.VisitedEpoch.resize(Needed, 0);
    if (++Scratch.Epoch == 0) {
      // Epoch wrapped: stale tags could alias the fresh epoch, so pay one
      // full clear every 2^32 reductions.
      std::fill(Scratch.VisitedEpoch.begin(), Scratch.VisitedEpoch.end(), 0);
      Scratch.Epoch = 1;
    }
  }

  Error walkRoot(const ir::Node *Root, NonterminalId Goal) {
    std::vector<Frame> &Stack = Scratch.Stack;
    Stack.clear();
    push(Root, Goal);
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (!F.Resolved) {
        if (Error E = resolve(F))
          return E;
        if (F.Skip) {
          Stack.pop_back();
          continue;
        }
      }
      const NormRule &R = G.normRule(F.Rule);
      if (R.isChain()) {
        if (F.NextChild == 0) {
          F.NextChild = 1;
          push(F.N, R.ChainRhs);
          continue;
        }
        fire(F.N, R);
        Stack.pop_back();
        continue;
      }
      if (F.NextChild < R.Operands.size()) {
        unsigned I = F.NextChild++;
        push(F.N->child(I), R.Operands[I]);
        continue;
      }
      if (R.IsFinal)
        fire(F.N, R);
      accountCost(F.N, R);
      Stack.pop_back();
    }
    return Error::success();
  }

private:
  using Frame = ReductionScratch::Frame;

  void push(const ir::Node *N, NonterminalId Nt) {
    Frame F;
    F.N = N;
    F.Nt = Nt;
    Scratch.Stack.push_back(F);
  }

  Error resolve(Frame &F) {
    F.Resolved = true;
    std::size_t Key = static_cast<std::size_t>(F.N->id()) * Stride + F.Nt;
    if (Scratch.VisitedEpoch[Key] == Scratch.Epoch) {
      // DAG sharing: this (node, nonterminal) was already derived; its code
      // was (or will be) emitted by the first visit.
      F.Skip = true;
      return Error::success();
    }
    Scratch.VisitedEpoch[Key] = Scratch.Epoch;
    F.Rule = L.ruleFor(*F.N, F.Nt);
    if (F.Rule == InvalidRule)
      return Error::make("no derivation of nonterminal '" +
                         G.nonterminalName(F.Nt) + "' at node " +
                         std::to_string(F.N->id()) + " (operator '" +
                         G.operatorName(F.N->op()) + "')");
    return Error::success();
  }

  void fire(const ir::Node *N, const NormRule &R) {
    Out.Matches.push_back({N, R.Source, R.Lhs});
    if (R.isChain())
      accountCost(N, R);
  }

  void accountCost(const ir::Node *N, const NormRule &R) {
    Cost C = R.FixedCost;
    if (R.DynHook != InvalidDynCost) {
      assert(Dyn && "dynamic-cost rule fired without a hook table");
      C += Dyn->evaluate(R.DynHook, *N);
    }
    Out.TotalCost += C;
  }

  const Grammar &G;
  const Labeling &L;
  const DynCostTable *Dyn;
  Selection &Out;
  ReductionScratch &Scratch;
  unsigned Stride;
};

} // namespace odburg

using namespace odburg;

Expected<Selection> odburg::reduce(const Grammar &G, const ir::IRFunction &F,
                                   const Labeling &L, const DynCostTable *Dyn,
                                   ReductionScratch &Scratch) {
  Selection Out;
  ReducerWalker W(G, F, L, Dyn, Out, Scratch);
  for (const ir::Node *Root : F.roots())
    if (Error E = W.walkRoot(Root, G.startNt()))
      return E;
  return Out;
}

Expected<Selection> odburg::reduce(const Grammar &G, const ir::IRFunction &F,
                                   const Labeling &L,
                                   const DynCostTable *Dyn) {
  ReductionScratch Scratch;
  return reduce(G, F, L, Dyn, Scratch);
}
