//===- select/Reducer.cpp - Derivation walk and match extraction ----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/Reducer.h"

#include "support/SmallVector.h"

using namespace odburg;

namespace {

/// Explicit-stack derivation walker (IR trees can be deep enough to make
/// native recursion risky).
class Walker {
public:
  Walker(const Grammar &G, const ir::IRFunction &F, const Labeling &L,
         const DynCostTable *Dyn, Selection &Out)
      : G(G), L(L), Dyn(Dyn), Out(Out),
        Visited(static_cast<std::size_t>(F.size()) * G.numNonterminals(),
                false),
        Stride(G.numNonterminals()) {}

  Error walkRoot(const ir::Node *Root, NonterminalId Goal) {
    Stack.clear();
    push(Root, Goal);
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (!F.Resolved) {
        if (Error E = resolve(F))
          return E;
        if (F.Skip) {
          Stack.pop_back();
          continue;
        }
      }
      const NormRule &R = G.normRule(F.Rule);
      if (R.isChain()) {
        if (F.NextChild == 0) {
          F.NextChild = 1;
          push(F.N, R.ChainRhs);
          continue;
        }
        fire(F.N, R);
        Stack.pop_back();
        continue;
      }
      if (F.NextChild < R.Operands.size()) {
        unsigned I = F.NextChild++;
        push(F.N->child(I), R.Operands[I]);
        continue;
      }
      if (R.IsFinal)
        fire(F.N, R);
      accountCost(F.N, R);
      Stack.pop_back();
    }
    return Error::success();
  }

private:
  struct Frame {
    const ir::Node *N;
    NonterminalId Nt;
    RuleId Rule = InvalidRule;
    unsigned NextChild = 0;
    bool Resolved = false;
    bool Skip = false;
  };

  void push(const ir::Node *N, NonterminalId Nt) {
    Frame F;
    F.N = N;
    F.Nt = Nt;
    Stack.push_back(F);
  }

  Error resolve(Frame &F) {
    F.Resolved = true;
    std::size_t Key = static_cast<std::size_t>(F.N->id()) * Stride + F.Nt;
    if (Visited[Key]) {
      // DAG sharing: this (node, nonterminal) was already derived; its code
      // was (or will be) emitted by the first visit.
      F.Skip = true;
      return Error::success();
    }
    Visited[Key] = true;
    F.Rule = L.ruleFor(*F.N, F.Nt);
    if (F.Rule == InvalidRule)
      return Error::make("no derivation of nonterminal '" +
                         G.nonterminalName(F.Nt) + "' at node " +
                         std::to_string(F.N->id()) + " (operator '" +
                         G.operatorName(F.N->op()) + "')");
    return Error::success();
  }

  void fire(const ir::Node *N, const NormRule &R) {
    Out.Matches.push_back({N, R.Source, R.Lhs});
    if (R.isChain())
      accountCost(N, R);
  }

  void accountCost(const ir::Node *N, const NormRule &R) {
    Cost C = R.FixedCost;
    if (R.DynHook != InvalidDynCost) {
      assert(Dyn && "dynamic-cost rule fired without a hook table");
      C += Dyn->evaluate(R.DynHook, *N);
    }
    Out.TotalCost += C;
  }

  const Grammar &G;
  const Labeling &L;
  const DynCostTable *Dyn;
  Selection &Out;
  std::vector<bool> Visited;
  unsigned Stride;
  std::vector<Frame> Stack;
};

} // namespace

Expected<Selection> odburg::reduce(const Grammar &G, const ir::IRFunction &F,
                                   const Labeling &L,
                                   const DynCostTable *Dyn) {
  Selection Out;
  Walker W(G, F, L, Dyn, Out);
  for (const ir::Node *Root : F.roots())
    if (Error E = W.walkRoot(Root, G.startNt()))
      return E;
  return Out;
}
