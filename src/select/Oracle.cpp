//===- select/Oracle.cpp - Brute-force optimal-derivation oracle -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/Oracle.h"

using namespace odburg;

namespace {

/// \p ActiveChains is a bitmask of nonterminals already expanded via chain
/// rules at the current node; minimal derivations never need to revisit one
/// (rule costs are non-negative), so cutting them preserves optimality.
Cost oracleCostImpl(const Grammar &G, const ir::Node &N, NonterminalId Nt,
                    const DynCostTable *Dyn, std::uint64_t ActiveChains) {
  Cost Best = Cost::infinity();

  for (RuleId RId : G.baseRulesFor(N.op())) {
    const NormRule &R = G.normRule(RId);
    if (R.Lhs != Nt)
      continue;
    Cost C = R.FixedCost;
    if (R.DynHook != InvalidDynCost)
      C += Dyn->evaluate(R.DynHook, N);
    for (unsigned I = 0; I < R.Operands.size() && C.isFinite(); ++I)
      C += oracleCostImpl(G, *N.child(I), R.Operands[I], Dyn, 0);
    Best = std::min(Best, C);
  }

  for (RuleId RId : G.chainRules()) {
    const NormRule &R = G.normRule(RId);
    if (R.Lhs != Nt)
      continue;
    if (ActiveChains & (1ULL << R.ChainRhs))
      continue;
    Cost C = R.FixedCost + oracleCostImpl(G, N, R.ChainRhs, Dyn,
                                          ActiveChains | (1ULL << Nt));
    Best = std::min(Best, C);
  }

  return Best;
}

} // namespace

Cost odburg::oracleCost(const Grammar &G, const ir::Node &N, NonterminalId Nt,
                        const DynCostTable *Dyn) {
  assert(G.numNonterminals() < 64 && "oracle supports < 64 nonterminals");
  return oracleCostImpl(G, N, Nt, Dyn, 1ULL << Nt);
}
