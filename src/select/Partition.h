//===- select/Partition.h - Static/dynamic operator partitioning ----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The grammar-partitioning pass behind the hybrid backend: split the
/// operator set into the *static partition* — operators whose rules all
/// carry fixed costs (and whose arity fits the offline generator's <= 4
/// bound), compilable to burg-style offline tables ahead of time — and
/// the *dynamic remainder*, whose per-node hook outcomes only the
/// on-demand automaton can express. Real machine grammars are ~90%
/// static operators, which is exactly why the hybrid wins: the common
/// path labels at offline-table speed while the paper's dynamic-cost
/// flexibility survives on the remainder.
///
/// The partition is a pure function of the grammar, so two processes
/// (or a dump and a later load) computing it independently agree —
/// membership is compared byte-for-byte when CompiledTables come from
/// disk (see HybridBackend).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_PARTITION_H
#define ODBURG_SELECT_PARTITION_H

#include "grammar/Grammar.h"

#include <cstdint>
#include <string>
#include <vector>

namespace odburg {

/// The computed split of a grammar's operators into the offline-
/// compilable static set and the on-demand dynamic remainder.
struct GrammarPartition {
  /// One byte per operator (indexed by OperatorId), 1 = static partition.
  /// The exact format OfflineTableGen::generateSubset and
  /// CompiledTables::partitionMembership() speak.
  std::vector<std::uint8_t> InPartition;
  /// The static-partition operators, ascending.
  std::vector<OperatorId> StaticOps;
  /// The remainder, ascending: operators with dynamic-cost rules, plus
  /// any operator whose arity exceeds the offline generator's bound.
  std::vector<OperatorId> DynOps;

  bool contains(OperatorId Op) const { return InPartition[Op] != 0; }
  unsigned numStatic() const {
    return static_cast<unsigned>(StaticOps.size());
  }
  unsigned numDynamic() const { return static_cast<unsigned>(DynOps.size()); }

  /// Computes the partition for \p G: an operator is static iff it has
  /// no dynamic-cost rules and arity <= 4. For a grammar without dynamic
  /// costs every (arity-bounded) operator is static and the hybrid
  /// degenerates to pure offline tables fronting an idle automaton.
  static GrammarPartition compute(const Grammar &G);

  /// "'op1', 'op2', ..." over the dynamic remainder — diagnostics fodder.
  std::string describeDynOps(const Grammar &G) const;
};

} // namespace odburg

#endif // ODBURG_SELECT_PARTITION_H
