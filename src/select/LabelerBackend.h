//===- select/LabelerBackend.h - Pluggable labeling engines ---------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central experiment is a three-way comparison: iburg-style
/// selection-time dynamic programming, burg-style offline tables, and
/// on-demand automata. This layer turns that comparison into a runtime-
/// selectable product feature: every labeling engine is wrapped in a
/// LabelerBackend with one shape —
///
///   - *shared state* is built once per grammar at create() time (the
///     offline tables, the on-demand automaton's tables — or nothing, for
///     the DP labeler) and is safe to label against from many threads;
///   - *per-worker state* lives in a LabelerScratch the caller owns, one
///     per worker thread: the DP backend's reusable label table, the
///     on-demand backend's private L1 transition micro-cache;
///   - labelFunction(F, Scratch) labels one function and returns the
///     Labeling view the reducer consumes. The view is valid until the
///     same scratch labels the next function, which is exactly the
///     label→reduce→emit lifetime of the compile pipeline.
///
/// pipeline/CompileService (and its batch wrapper, CompileSession) owns
/// one backend (Options::Backend) and is otherwise engine-agnostic;
/// tools/odburg-run and tools/odburg-serve expose the choice as
/// --backend so the paper's flexibility/speed/generation-cost trade-offs
/// reproduce from one CLI — batch and streaming alike.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_LABELERBACKEND_H
#define ODBURG_SELECT_LABELERBACKEND_H

#include "core/L1Cache.h"
#include "core/OnDemandAutomaton.h"
#include "core/TierController.h"
#include "offline/OfflineTables.h"
#include "select/DPLabeler.h"
#include "select/Partition.h"
#include "select/DynCost.h"
#include "select/Labeling.h"
#include "support/Error.h"
#include "support/Statistic.h"

#include <memory>
#include <string_view>

namespace odburg {

/// The three labeling engines of the paper's comparison, plus the
/// synthesis of its two poles.
enum class BackendKind {
  /// iburg-style selection-time dynamic programming: no shared tables, no
  /// warm-up, full dynamic-cost support; per-node work grows with the
  /// rules-per-operator count.
  DP,
  /// burg-style ahead-of-time tables: all states enumerated before any
  /// input; labeling is pure array indexing; no dynamic costs, ever.
  Offline,
  /// The paper's on-demand automaton: states built lazily at selection
  /// time, one cache probe per node after warm-up, dynamic costs folded
  /// into the transition key.
  OnDemand,
  /// Offline tables on the grammar's static-cost operator partition
  /// (see select/Partition.h), bridged into an on-demand automaton that
  /// serves the dyn-cost remainder: offline lookup speed on the common
  /// path, the paper's dynamic-cost flexibility everywhere else, byte-
  /// identical output to every other backend.
  Hybrid,
};

/// Number of BackendKind values — sizes per-backend arrays (e.g. the TCP
/// server's lanes). Keep in sync with the enum.
inline constexpr unsigned NumBackendKinds = 4;

/// Canonical lower-case name ("dp", "offline", "ondemand", "hybrid").
const char *backendName(BackendKind K);

/// Parses a backend name as accepted by --backend. Fails with
/// ErrorKind::UnknownBackend, listing the known names.
Expected<BackendKind> parseBackendKind(std::string_view Name);

/// Per-worker labeling scratch. Callers (one per worker thread) default-
/// construct it and pass the same object to every labelFunction call; the
/// backends own its contents. Reusable across functions, batches, and —
/// because the L1 micro-cache is epoch-invalidated on rebind — across
/// backends and sessions. The compile service keeps one per pool slot
/// for its whole lifetime (grow-only, surviving pool resizes), so the
/// DP label table's capacity and the L1 micro-cache's contents stay
/// warm for as long as the service runs — the scratch's lifetime is the
/// service's, not the batch's.
class LabelerScratch {
public:
  LabelerScratch() = default;
  LabelerScratch(const LabelerScratch &) = delete;
  LabelerScratch &operator=(const LabelerScratch &) = delete;

private:
  friend class DPBackend;
  friend class OnDemandBackend;

  /// DP backend: the reused per-function label table.
  DPLabeling DP;
  /// On-demand backend: the worker's private transition micro-cache,
  /// created lazily on first use.
  std::unique_ptr<L1TransitionCache> L1;
  /// On-demand backend: the worker's arena-backed SoA node mirror for the
  /// batched labeling path (see core/OnDemandAutomaton.h, LabelBatch).
  LabelBatch Batch;
};

/// A labeling engine behind the uniform create-once / label-per-worker
/// shape. Implementations are safe for concurrent labelFunction calls as
/// long as each call uses a distinct (function, scratch) pair.
class LabelerBackend {
public:
  /// Creation-time tunables; each backend reads only its own.
  struct Options {
    /// On-demand: the automaton's own tunables.
    OnDemandAutomaton::Options Automaton;
    /// On-demand: front the shared transition cache with a per-worker
    /// direct-mapped L1 micro-cache (see core/L1Cache.h).
    bool UseL1Cache = true;
    /// On-demand: log2 of the L1 entry count.
    unsigned L1Log2Entries = 10;
    /// On-demand: L1 associativity. 0 = auto: direct-mapped for
    /// static-cost grammars (shortest probe wins when keys spread well),
    /// 2-way for dyn-cost grammars (outcome words pad keys into fewer
    /// distinct index bits; the extra way recovers those conflict misses
    /// — the winner per grammar class in bench_p4_dense part (c)).
    /// Explicit 1 or 2 overrides.
    unsigned L1Ways = 0;
    /// On-demand: attach a TierController that retunes the warm-path
    /// tier stack at runtime from its measured hit rates (see
    /// core/TierController.h). Off by default — static configuration.
    bool Adaptive = false;
    /// On-demand: the controller's knobs (window size, recovery cadence,
    /// pinned probe costs for deterministic tests). L1Exists/DenseExists
    /// are derived from the static options, not read from here.
    TierController::Options AdaptiveOpts;
    /// Offline: state bound for exhaustive generation.
    unsigned OfflineMaxStates = 1u << 18;
    /// Offline: worker threads for table generation (0 = hardware
    /// concurrency, 1 = sequential). Tables are bit-identical for any
    /// count, so the default uses every core.
    unsigned OfflineGenThreads = 0;
  };

  virtual ~LabelerBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Labels all nodes of \p F using \p Scratch (owned by exactly one
  /// worker) and returns the Labeling the reducer should read. The view
  /// is invalidated by the next labelFunction call on the same scratch.
  virtual const Labeling &labelFunction(ir::IRFunction &F,
                                        LabelerScratch &Scratch,
                                        SelectionStats *Stats = nullptr) = 0;

  /// Whether the engine can evaluate dynamic-cost hooks at all.
  virtual bool supportsDynCosts() const = 0;

  /// States materialized in shared tables (0 for the DP backend).
  virtual unsigned numStates() const = 0;

  /// Approximate shared-state footprint in bytes.
  virtual std::size_t memoryBytes() const = 0;

  /// The warm-path tier configuration in effect, adaptive or static.
  /// Engines without a tier stack (dp, offline) report an all-off
  /// default with Adaptive=false.
  virtual TierDecisions tierDecisions() const {
    TierDecisions D;
    D.Config = TierConfig{false, 1, false};
    D.PromoteThreshold = 0;
    return D;
  }

  /// The memory governor's lever: under pressure the backend sheds
  /// whatever shared state it can regrow later (the on-demand dense tier)
  /// and stops growing more; releasing pressure restores normal policy.
  /// Engines with nothing sheddable (dp, offline) ignore it. Safe from
  /// any thread, idempotent, and — like every tier decision — output-
  /// neutral: labeling stays byte-identical under any pressure history.
  virtual void setMemoryPressure(bool) {}

  /// Builds the backend for \p G. \p Dyn may be null for grammars without
  /// dynamic costs; it must outlive the backend, as must \p G. Fails with
  /// ErrorKind::UnsupportedDynamicCosts when the offline backend is asked
  /// for a dynamic-cost grammar, and propagates generation failures
  /// (e.g. ErrorKind::StateLimitExceeded) otherwise. DP and on-demand
  /// creation cannot fail. (Two overloads rather than a defaulted Options
  /// parameter: a nested class with member initializers cannot be a
  /// default argument inside its enclosing class.)
  static Expected<std::unique_ptr<LabelerBackend>>
  create(BackendKind K, const Grammar &G, const DynCostTable *Dyn = nullptr);
  static Expected<std::unique_ptr<LabelerBackend>>
  create(BackendKind K, const Grammar &G, const DynCostTable *Dyn,
         const Options &Opts);
};

/// iburg-style DP labeling behind the backend interface. All shared state
/// is the grammar itself; the scratch carries the label table.
class DPBackend final : public LabelerBackend {
public:
  DPBackend(const Grammar &G, const DynCostTable *Dyn) : Labeler(G, Dyn) {}

  BackendKind kind() const override { return BackendKind::DP; }
  const Labeling &labelFunction(ir::IRFunction &F, LabelerScratch &Scratch,
                                SelectionStats *Stats) override {
    Labeler.labelInto(F, Scratch.DP, Stats);
    return Scratch.DP;
  }
  bool supportsDynCosts() const override { return true; }
  unsigned numStates() const override { return 0; }
  std::size_t memoryBytes() const override { return 0; }

private:
  DPLabeler Labeler;
};

/// burg-style offline tables behind the backend interface. The tables are
/// generated at create() time; labeling is pure array indexing and the
/// backend itself is the Labeling (states live in node label slots).
class OfflineBackend final : public LabelerBackend {
public:
  explicit OfflineBackend(CompiledTables Tables)
      : Tables(std::move(Tables)), Labeler(this->Tables) {}

  BackendKind kind() const override { return BackendKind::Offline; }
  const Labeling &labelFunction(ir::IRFunction &F, LabelerScratch &,
                                SelectionStats *Stats) override {
    Labeler.labelFunction(F, Stats);
    return Labeler;
  }
  bool supportsDynCosts() const override { return false; }
  unsigned numStates() const override { return Tables.stats().NumStates; }
  std::size_t memoryBytes() const override {
    return Tables.stats().TableBytes;
  }

  const CompiledTables &tables() const { return Tables; }

private:
  CompiledTables Tables;
  TableLabeler Labeler;
};

/// The on-demand automaton behind the backend interface. One shared
/// automaton serves all workers; each worker's scratch fronts the shared
/// transition cache with a private L1 micro-cache and labels through the
/// SoA batched path. With Options::Adaptive, a TierController snapshots
/// per-function tier configurations and retunes them from measured hit
/// rates — any configuration it picks labels byte-identically, so
/// reconfiguration is free of synchronization with in-flight work.
/// HybridBackend derives from this: same labeling loop and controller,
/// with the automaton's offline-partition dispatch armed.
class OnDemandBackend : public LabelerBackend {
public:
  OnDemandBackend(const Grammar &G, const DynCostTable *Dyn,
                  const Options &Opts)
      : A(G, Dyn, Opts.Automaton), UseL1(Opts.UseL1Cache),
        L1Log2Entries(Opts.L1Log2Entries),
        L1Ways(Opts.L1Ways ? Opts.L1Ways : (G.hasDynCosts() ? 2 : 1)) {
    if (Opts.Adaptive) {
      bool HasDense = Opts.Automaton.UseTransitionCache &&
                      Opts.Automaton.DenseRows;
      TierConfig Initial;
      Initial.L1On = UseL1;
      Initial.L1Ways = L1Ways < 2 ? 1 : 2;
      Initial.DenseOn = HasDense;
      TierController::Options COpts = Opts.AdaptiveOpts;
      COpts.L1Exists = UseL1;
      COpts.DenseExists = HasDense;
      Controller = std::make_unique<TierController>(
          Initial, Opts.Automaton.DensePromoteThreshold, COpts);
    }
  }

  BackendKind kind() const override { return BackendKind::OnDemand; }
  const Labeling &labelFunction(ir::IRFunction &F, LabelerScratch &Scratch,
                                SelectionStats *Stats) override {
    // Snapshot the tier configuration once per function: plain data, so
    // the controller can republish mid-function without racing us.
    bool L1On = UseL1;
    unsigned Ways = L1Ways < 2 ? 1u : 2u;
    bool UseDense = true;
    if (Controller) {
      TierConfig C = Controller->config();
      L1On = C.L1On;
      Ways = C.L1Ways;
      UseDense = C.DenseOn;
      A.setDensePromoteThreshold(Controller->promoteThreshold());
    }
    if (MemPressure.load(std::memory_order_relaxed))
      UseDense = false; // Governor override; non-adaptive sessions too.
    L1TransitionCache *L1 = nullptr;
    if (L1On) {
      if (!Scratch.L1 || Scratch.L1->ways() != Ways)
        Scratch.L1 =
            std::make_unique<L1TransitionCache>(L1Log2Entries, Ways);
      L1 = Scratch.L1.get();
    }
    if (Controller) {
      // Always collect counters when adaptive — they are the control
      // signal, not just reporting.
      SelectionStats Local;
      A.labelFunctionBatched(F, L1, Scratch.Batch, UseDense, &Local);
      Controller->observe(Local);
      if (Stats)
        *Stats += Local;
    } else {
      A.labelFunctionBatched(F, L1, Scratch.Batch, UseDense, Stats);
    }
    return A;
  }
  bool supportsDynCosts() const override { return true; }
  unsigned numStates() const override { return A.numStates(); }
  std::size_t memoryBytes() const override { return A.memoryBytes(); }
  TierDecisions tierDecisions() const override {
    if (Controller)
      return Controller->decisions();
    TierDecisions D;
    D.Adaptive = false;
    D.Config.L1On = UseL1;
    D.Config.L1Ways = L1Ways < 2 ? 1 : 2;
    bool Pressure = MemPressure.load(std::memory_order_relaxed);
    D.Config.DenseOn = A.denseTier() != nullptr && !Pressure;
    D.PromoteThreshold =
        A.denseTier() ? A.denseTier()->promoteThreshold() : 0;
    D.Degraded = Pressure;
    return D;
  }

  void setMemoryPressure(bool On) override {
    if (MemPressure.exchange(On, std::memory_order_relaxed) == On)
      return; // Idempotent: the governor polls, transitions are rare.
    if (Controller)
      Controller->setMemoryPressure(On);
    A.setDenseMemoryClamp(On);
  }

  const OnDemandAutomaton &automaton() const { return A; }
  /// Mutable access for the warm-snapshot bridge (registry/WarmSnapshot.h):
  /// state/transition import before the first labeling call, quiescent
  /// transition dumps after.
  OnDemandAutomaton &automaton() { return A; }
  /// The attached controller, or null when not adaptive.
  const TierController *tierController() const { return Controller.get(); }

protected:
  OnDemandAutomaton A;

private:
  bool UseL1;
  unsigned L1Log2Entries;
  unsigned L1Ways;
  std::unique_ptr<TierController> Controller;
  /// The memory governor's current hold (see setMemoryPressure).
  std::atomic<bool> MemPressure{false};
};

/// The hybrid backend: the synthesis of the paper's two poles. The
/// grammar's operators are partitioned (select/Partition.h) into a
/// static-cost set, compiled through OfflineTableGen::generateSubset
/// into the same dense tables the pure offline backend uses, and a
/// dyn-cost remainder the inherited on-demand machinery serves. Before
/// any labeling the automaton's state table is seeded with the
/// partition's offline states in id order, identifying the two id
/// spaces, and the partition view is attached — from then on the
/// automaton's hot loop resolves every static-partition node over
/// offline-known children by one direct table index
/// (SelectionStats::OfflineHits), and everything else through the
/// normal three-tier probe. Output is byte-identical to dp on every
/// grammar, including dyn-cost grammars the pure offline backend
/// rejects.
class HybridBackend final : public OnDemandBackend {
public:
  /// Computes the partition, generates subset tables (propagating typed
  /// generation failures such as StateLimitExceeded), and arms the
  /// automaton. Cannot fail with UnsupportedDynamicCosts: dyn-cost
  /// operators land in the remainder by construction.
  static Expected<std::unique_ptr<HybridBackend>>
  create(const Grammar &G, const DynCostTable *Dyn, const Options &Opts);

  /// As create() over already-generated (typically disk-loaded) tables.
  /// Fails with ErrorKind::MalformedInput when \p Tables' partition
  /// membership differs from the one compute() yields for \p G — a
  /// partition-shape mismatch means the dump belongs to a different
  /// grammar or policy version and must be regenerated.
  static Expected<std::unique_ptr<HybridBackend>>
  createWithTables(const Grammar &G, const DynCostTable *Dyn,
                   const Options &Opts, CompiledTables Tables);

  BackendKind kind() const override { return BackendKind::Hybrid; }
  /// Automaton states (seeded offline states included) plus nothing else:
  /// the tables' states are the seeded ones, already counted.
  std::size_t memoryBytes() const override {
    return OnDemandBackend::memoryBytes() + Tables.stats().TableBytes;
  }

  /// The static partition's compiled tables (dump() these to persist the
  /// partition across processes — odburg-serve --tables).
  const CompiledTables &tables() const { return Tables; }
  const GrammarPartition &partition() const { return Part; }

private:
  HybridBackend(const Grammar &G, const DynCostTable *Dyn,
                const Options &Opts, GrammarPartition P, CompiledTables T)
      : OnDemandBackend(G, Dyn, Opts), Part(std::move(P)),
        Tables(std::move(T)), View(Tables.makePartitionView()) {
    A.seedStatesFrom(Tables.stateTable());
    A.attachOfflinePartition(&View);
  }

  GrammarPartition Part;
  CompiledTables Tables;
  /// Borrows Tables' storage; attached to (and outlives every use by) A,
  /// which this object owns. Never moved after construction.
  OfflinePartitionView View;
};

} // namespace odburg

#endif // ODBURG_SELECT_LABELERBACKEND_H
