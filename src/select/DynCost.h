//===- select/DynCost.h - Dynamic-cost hook table --------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binds the dynamic-cost hook *names* a grammar declares (`?hook`) to the
/// functions that evaluate them on IR nodes. The split keeps the grammar
/// library independent of the IR library.
///
/// A hook receives the node matching the rule's (outermost) operator and
/// returns the cost contribution of the rule at that node —
/// Cost::infinity() meaning "rule not applicable here". Hooks must be
/// defensive: engines may call them on nodes where the rest of the rule
/// pattern does not match (the on-demand automaton evaluates every hook of
/// an operator to form its transition key), so they must check tree shape
/// before navigating into children.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_DYNCOST_H
#define ODBURG_SELECT_DYNCOST_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "support/Cost.h"
#include "support/Error.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace odburg {

/// The evaluation function of one dynamic-cost hook.
using DynCostFn = std::function<Cost(const ir::Node &)>;

/// Hook functions for one grammar, indexed by DynCostId.
class DynCostTable {
public:
  /// Builds a table for \p G, resolving each declared hook name in
  /// \p Registry. Fails if a hook name is unbound.
  static Expected<DynCostTable>
  build(const Grammar &G,
        const std::unordered_map<std::string, DynCostFn> &Registry);

  /// Evaluates hook \p Id on \p N.
  Cost evaluate(DynCostId Id, const ir::Node &N) const {
    assert(Id < Fns.size() && "dynamic-cost hook id out of range");
    return Fns[Id](N);
  }

  unsigned size() const { return static_cast<unsigned>(Fns.size()); }

private:
  std::vector<DynCostFn> Fns;
};

} // namespace odburg

#endif // ODBURG_SELECT_DYNCOST_H
