//===- select/Oracle.h - Brute-force optimal-derivation oracle -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent, brute-force computation of minimal derivation costs,
/// used as ground truth in tests. It enumerates derivations recursively
/// (tracking the chain rules active at the current node to cut cycles)
/// rather than using the labelers' bottom-up relaxation, so agreement with
/// an engine is meaningful evidence of that engine's correctness.
///
/// Exponential in principle; intended for test-sized trees only.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_ORACLE_H
#define ODBURG_SELECT_ORACLE_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "select/DynCost.h"
#include "support/Cost.h"

namespace odburg {

/// Computes the exact minimal cost of deriving the subtree at \p N from
/// \p Nt by exhaustive enumeration. Requires fewer than 64 nonterminals.
Cost oracleCost(const Grammar &G, const ir::Node &N, NonterminalId Nt,
                const DynCostTable *Dyn = nullptr);

} // namespace odburg

#endif // ODBURG_SELECT_ORACLE_H
