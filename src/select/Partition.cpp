//===- select/Partition.cpp - Static/dynamic operator partitioning --------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/Partition.h"

#include <cassert>

using namespace odburg;

GrammarPartition GrammarPartition::compute(const Grammar &G) {
  assert(G.isFinalized() && "grammar must be finalized");
  GrammarPartition P;
  unsigned NumOps = G.numOperators();
  P.InPartition.resize(NumOps, 0);
  for (OperatorId Op = 0; Op < NumOps; ++Op) {
    // Static iff offline tables can fully cover the operator: fixed costs
    // only (dyn hook outcomes are per-node and cannot be tabled) and the
    // offline generator's arity bound. Dyn-cost *chain* rules would poke
    // a hole in every operator at once, but the grammar rejects them at
    // finalize, so per-operator membership is the whole story.
    bool Static = G.dynRulesFor(Op).empty() && G.operatorArity(Op) <= 4;
    P.InPartition[Op] = Static ? 1 : 0;
    (Static ? P.StaticOps : P.DynOps).push_back(Op);
  }
  return P;
}

std::string GrammarPartition::describeDynOps(const Grammar &G) const {
  std::string Out;
  for (OperatorId Op : DynOps) {
    if (!Out.empty())
      Out += ", ";
    Out += "'" + G.operatorName(Op) + "'";
  }
  return Out;
}
