//===- select/Labeling.h - Engine-independent labeling results -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between labeling engines and the reducer. After an engine
/// labels an IRFunction, a Labeling answers, for every (node, nonterminal)
/// pair, which normal-form rule starts the minimal derivation and what that
/// derivation costs. Costs from automaton engines are *relative* (delta-
/// normalized per state) and only comparable within one node.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_LABELING_H
#define ODBURG_SELECT_LABELING_H

#include "grammar/Ids.h"
#include "ir/Node.h"
#include "support/Cost.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace odburg {

/// Read-only view of a labeled function.
class Labeling {
public:
  virtual ~Labeling() = default;

  /// The rule beginning the minimal derivation of \p N from \p Nt, or
  /// InvalidRule if no derivation exists.
  virtual RuleId ruleFor(const ir::Node &N, NonterminalId Nt) const = 0;

  /// The cost of the minimal derivation of \p N from \p Nt. Absolute for
  /// the DP labeler; delta-normalized (per node) for automaton engines.
  virtual Cost costFor(const ir::Node &N, NonterminalId Nt) const = 0;
};

/// Flattens the full observable labeling of \p F — (rule, raw cost) for
/// every node x nonterminal, in node order — so two engines or two runs
/// can be compared bit for bit. \p NumNonterminals is the grammar's
/// nonterminal count.
inline std::vector<std::pair<RuleId, std::uint32_t>>
labelingSnapshot(const ir::IRFunction &F, unsigned NumNonterminals,
                 const Labeling &L) {
  std::vector<std::pair<RuleId, std::uint32_t>> Rows;
  Rows.reserve(static_cast<std::size_t>(F.size()) * NumNonterminals);
  for (const ir::Node *N : F.nodes())
    for (NonterminalId Nt = 0; Nt < NumNonterminals; ++Nt)
      Rows.emplace_back(L.ruleFor(*N, Nt), L.costFor(*N, Nt).raw());
  return Rows;
}

} // namespace odburg

#endif // ODBURG_SELECT_LABELING_H
