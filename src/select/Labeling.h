//===- select/Labeling.h - Engine-independent labeling results -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between labeling engines and the reducer. After an engine
/// labels an IRFunction, a Labeling answers, for every (node, nonterminal)
/// pair, which normal-form rule starts the minimal derivation and what that
/// derivation costs. Costs from automaton engines are *relative* (delta-
/// normalized per state) and only comparable within one node.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_LABELING_H
#define ODBURG_SELECT_LABELING_H

#include "grammar/Ids.h"
#include "ir/Node.h"
#include "support/Cost.h"

namespace odburg {

/// Read-only view of a labeled function.
class Labeling {
public:
  virtual ~Labeling() = default;

  /// The rule beginning the minimal derivation of \p N from \p Nt, or
  /// InvalidRule if no derivation exists.
  virtual RuleId ruleFor(const ir::Node &N, NonterminalId Nt) const = 0;

  /// The cost of the minimal derivation of \p N from \p Nt. Absolute for
  /// the DP labeler; delta-normalized (per node) for automaton engines.
  virtual Cost costFor(const ir::Node &N, NonterminalId Nt) const = 0;
};

} // namespace odburg

#endif // ODBURG_SELECT_LABELING_H
