//===- select/Reducer.h - Derivation walk and match extraction ------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reducer: the second pass of tree parsing. Given a labeled function,
/// it walks the minimal derivation from the start nonterminal at each
/// statement root and produces the selected matches in bottom-up emission
/// order. It is engine-independent — all labeling engines answer through
/// the Labeling interface.
///
/// DAGs are handled per Ertl (POPL'99): every (node, nonterminal)
/// combination is visited at most once, so code for shared subtrees is
/// emitted once per needed nonterminal.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_REDUCER_H
#define ODBURG_SELECT_REDUCER_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "select/DynCost.h"
#include "select/Labeling.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace odburg {

class ReducerWalker;

/// One selected (fired) source rule.
struct Match {
  /// The node where the source rule's pattern root matched.
  const ir::Node *Where = nullptr;
  /// The fired source rule.
  RuleId Source = InvalidRule;
  /// The nonterminal the rule was fired for.
  NonterminalId Lhs = InvalidNonterminal;
};

/// The result of reducing a function: fired source rules in emission order
/// (bottom-up within a statement, statements in program order) and the
/// total cost of the selected cover.
struct Selection {
  std::vector<Match> Matches;
  /// Sum of fired rules' costs with dynamic hooks evaluated; the metric the
  /// code-quality experiments compare.
  Cost TotalCost = Cost::zero();
};

/// Reusable reducer working memory: the per-(node, nonterminal) visited
/// set and the explicit derivation stack. A batch driver keeps one per
/// worker and passes it to every reduce() call, so reducing N functions
/// costs O(largest function) in allocations instead of O(sum). The
/// visited set is epoch-tagged, making the per-function reset O(1).
/// Contents are owned by reduce(); callers only default-construct and
/// hand the same object back in. Always reusable, including after a
/// reduce() that returned an error.
class ReductionScratch {
public:
  ReductionScratch() = default;
  ReductionScratch(const ReductionScratch &) = delete;
  ReductionScratch &operator=(const ReductionScratch &) = delete;

private:
  friend class ReducerWalker;

  struct Frame {
    const ir::Node *N = nullptr;
    NonterminalId Nt = InvalidNonterminal;
    RuleId Rule = InvalidRule;
    unsigned NextChild = 0;
    bool Resolved = false;
    bool Skip = false;
  };

  /// VisitedEpoch[node * numNts + nt] == Epoch means visited this call.
  std::vector<std::uint32_t> VisitedEpoch;
  std::uint32_t Epoch = 0;
  std::vector<Frame> Stack;
};

/// Walks the minimal derivations of all roots of \p F under \p L.
/// \p Dyn is needed (only) to account dynamic costs into TotalCost; pass
/// null for grammars without dynamic costs. Fails if some root has no
/// derivation from the start nonterminal.
Expected<Selection> reduce(const Grammar &G, const ir::IRFunction &F,
                           const Labeling &L,
                           const DynCostTable *Dyn = nullptr);

/// As above, but reusing \p Scratch for the visited set and walk stack —
/// the batch-pipeline overload (see pipeline/CompileSession).
Expected<Selection> reduce(const Grammar &G, const ir::IRFunction &F,
                           const Labeling &L, const DynCostTable *Dyn,
                           ReductionScratch &Scratch);

} // namespace odburg

#endif // ODBURG_SELECT_REDUCER_H
