//===- select/DPLabeler.cpp - iburg-style dynamic-programming labeler -----===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/DPLabeler.h"

using namespace odburg;

DPLabeler::DPLabeler(const Grammar &G, const DynCostTable *Dyn)
    : G(G), Dyn(Dyn) {
  assert(G.isFinalized() && "grammar must be finalized");
  assert((!G.hasDynCosts() || Dyn) &&
         "grammar has dynamic costs but no hook table was supplied");
}

void DPLabeler::labelNode(const ir::Node &N, DPLabeling &L,
                          SelectionStats &Stats) const {
  ++Stats.NodesLabeled;

  // Base rules: the costs of all children are already final (topological
  // order), so one pass over the operator's rules suffices.
  for (RuleId RId : G.baseRulesFor(N.op())) {
    const NormRule &R = G.normRule(RId);
    ++Stats.RuleChecks;
    Cost C = R.FixedCost;
    if (R.DynHook != InvalidDynCost) {
      ++Stats.DynCostEvals;
      C += Dyn->evaluate(R.DynHook, N);
    }
    for (unsigned I = 0; I < R.Operands.size() && C.isFinite(); ++I)
      C += L.costFor(*N.child(I), R.Operands[I]);
    DPLabeling::Entry &E = L.entry(N.id(), R.Lhs);
    if (C < E.C) {
      E.C = C;
      E.R = RId;
    }
  }

  // Chain-rule closure: iterate until no relaxation applies. Realistic
  // grammars converge in one or two passes.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId RId : G.chainRules()) {
      const NormRule &R = G.normRule(RId);
      ++Stats.ChainRelaxations;
      Cost C = L.entry(N.id(), R.ChainRhs).C + R.FixedCost;
      DPLabeling::Entry &E = L.entry(N.id(), R.Lhs);
      if (C < E.C) {
        E.C = C;
        E.R = RId;
        Changed = true;
      }
    }
  }
}

DPLabeling DPLabeler::label(const ir::IRFunction &F,
                            SelectionStats *Stats) const {
  DPLabeling L;
  labelInto(F, L, Stats);
  return L;
}

void DPLabeler::labelInto(const ir::IRFunction &F, DPLabeling &L,
                          SelectionStats *Stats) const {
  L.Stride = G.numNonterminals();
  // assign() resets every reused entry to (infinity, InvalidRule) while
  // keeping the vector's capacity, so relabeling N functions through one
  // DPLabeling allocates O(largest function), not O(sum).
  L.Table.assign(static_cast<std::size_t>(F.size()) * L.Stride, {});
  SelectionStats Local;
  SelectionStats &S = Stats ? *Stats : Local;
  for (const ir::Node *N : F.nodes())
    labelNode(*N, L, S);
}
