//===- select/DynCost.cpp - Dynamic-cost hook table -------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/DynCost.h"

using namespace odburg;

Expected<DynCostTable>
DynCostTable::build(const Grammar &G,
                    const std::unordered_map<std::string, DynCostFn> &Registry) {
  DynCostTable T;
  T.Fns.reserve(G.numDynHooks());
  for (DynCostId Id = 0; Id < G.numDynHooks(); ++Id) {
    auto It = Registry.find(G.dynHookName(Id));
    if (It == Registry.end())
      return Error::make("dynamic-cost hook '" + G.dynHookName(Id) +
                         "' is declared by the grammar but not registered");
    T.Fns.push_back(It->second);
  }
  return T;
}
