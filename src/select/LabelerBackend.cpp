//===- select/LabelerBackend.cpp - Pluggable labeling engines -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/LabelerBackend.h"

using namespace odburg;

const char *odburg::backendName(BackendKind K) {
  switch (K) {
  case BackendKind::DP:
    return "dp";
  case BackendKind::Offline:
    return "offline";
  case BackendKind::OnDemand:
    return "ondemand";
  case BackendKind::Hybrid:
    return "hybrid";
  }
  return "?";
}

Expected<BackendKind> odburg::parseBackendKind(std::string_view Name) {
  if (Name == "dp")
    return BackendKind::DP;
  if (Name == "offline")
    return BackendKind::Offline;
  if (Name == "ondemand" || Name == "on-demand")
    return BackendKind::OnDemand;
  if (Name == "hybrid")
    return BackendKind::Hybrid;
  return Error::make(ErrorKind::UnknownBackend,
                     "unknown labeler backend '" + std::string(Name) +
                         "' (known: dp, offline, ondemand, hybrid)");
}

Expected<std::unique_ptr<LabelerBackend>>
LabelerBackend::create(BackendKind K, const Grammar &G,
                       const DynCostTable *Dyn) {
  return create(K, G, Dyn, Options());
}

Expected<std::unique_ptr<LabelerBackend>>
LabelerBackend::create(BackendKind K, const Grammar &G,
                       const DynCostTable *Dyn, const Options &Opts) {
  switch (K) {
  case BackendKind::DP:
    return std::unique_ptr<LabelerBackend>(new DPBackend(G, Dyn));
  case BackendKind::Offline: {
    // The generator itself reports UnsupportedDynamicCosts for dynamic
    // grammars and StateLimitExceeded past the bound; both propagate with
    // their kind intact so drivers can dispatch (e.g. fall back to the
    // on-demand backend or retry against Target::Fixed).
    Expected<CompiledTables> Tables =
        OfflineTableGen(G, Opts.OfflineMaxStates)
            .generate(Opts.OfflineGenThreads);
    if (!Tables)
      return Tables.takeError();
    return std::unique_ptr<LabelerBackend>(
        new OfflineBackend(std::move(*Tables)));
  }
  case BackendKind::OnDemand:
    return std::unique_ptr<LabelerBackend>(new OnDemandBackend(G, Dyn, Opts));
  case BackendKind::Hybrid: {
    Expected<std::unique_ptr<HybridBackend>> B =
        HybridBackend::create(G, Dyn, Opts);
    if (!B)
      return B.takeError();
    return std::unique_ptr<LabelerBackend>(std::move(*B));
  }
  }
  return Error::make(ErrorKind::UnknownBackend, "invalid backend kind");
}

Expected<std::unique_ptr<HybridBackend>>
HybridBackend::create(const Grammar &G, const DynCostTable *Dyn,
                      const Options &Opts) {
  GrammarPartition P = GrammarPartition::compute(G);
  // Subset generation over the static partition: dyn-cost operators are
  // excluded by construction, so the only reachable failures are the
  // structural ones (state-limit blowouts), which propagate typed.
  Expected<CompiledTables> Tables =
      OfflineTableGen(G, Opts.OfflineMaxStates)
          .generateSubset(P.InPartition, Opts.OfflineGenThreads);
  if (!Tables)
    return Tables.takeError();
  return std::unique_ptr<HybridBackend>(
      new HybridBackend(G, Dyn, Opts, std::move(P), std::move(*Tables)));
}

Expected<std::unique_ptr<HybridBackend>>
HybridBackend::createWithTables(const Grammar &G, const DynCostTable *Dyn,
                                const Options &Opts, CompiledTables Tables) {
  GrammarPartition P = GrammarPartition::compute(G);
  if (Tables.partitionMembership() != P.InPartition)
    return Error::make(
        ErrorKind::MalformedInput,
        "offline tables: partition shape mismatch — the tables cover a "
        "different operator subset than this grammar's static partition "
        "(" + std::to_string(P.numStatic()) +
            " static operators expected); regenerate them");
  return std::unique_ptr<HybridBackend>(
      new HybridBackend(G, Dyn, Opts, std::move(P), std::move(Tables)));
}
