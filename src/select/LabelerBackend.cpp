//===- select/LabelerBackend.cpp - Pluggable labeling engines -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "select/LabelerBackend.h"

using namespace odburg;

const char *odburg::backendName(BackendKind K) {
  switch (K) {
  case BackendKind::DP:
    return "dp";
  case BackendKind::Offline:
    return "offline";
  case BackendKind::OnDemand:
    return "ondemand";
  }
  return "?";
}

Expected<BackendKind> odburg::parseBackendKind(std::string_view Name) {
  if (Name == "dp")
    return BackendKind::DP;
  if (Name == "offline")
    return BackendKind::Offline;
  if (Name == "ondemand" || Name == "on-demand")
    return BackendKind::OnDemand;
  return Error::make(ErrorKind::UnknownBackend,
                     "unknown labeler backend '" + std::string(Name) +
                         "' (known: dp, offline, ondemand)");
}

Expected<std::unique_ptr<LabelerBackend>>
LabelerBackend::create(BackendKind K, const Grammar &G,
                       const DynCostTable *Dyn) {
  return create(K, G, Dyn, Options());
}

Expected<std::unique_ptr<LabelerBackend>>
LabelerBackend::create(BackendKind K, const Grammar &G,
                       const DynCostTable *Dyn, const Options &Opts) {
  switch (K) {
  case BackendKind::DP:
    return std::unique_ptr<LabelerBackend>(new DPBackend(G, Dyn));
  case BackendKind::Offline: {
    // The generator itself reports UnsupportedDynamicCosts for dynamic
    // grammars and StateLimitExceeded past the bound; both propagate with
    // their kind intact so drivers can dispatch (e.g. fall back to the
    // on-demand backend or retry against Target::Fixed).
    Expected<CompiledTables> Tables =
        OfflineTableGen(G, Opts.OfflineMaxStates)
            .generate(Opts.OfflineGenThreads);
    if (!Tables)
      return Tables.takeError();
    return std::unique_ptr<LabelerBackend>(
        new OfflineBackend(std::move(*Tables)));
  }
  case BackendKind::OnDemand:
    return std::unique_ptr<LabelerBackend>(new OnDemandBackend(G, Dyn, Opts));
  }
  return Error::make(ErrorKind::UnknownBackend, "invalid backend kind");
}
