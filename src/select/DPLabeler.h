//===- select/DPLabeler.h - iburg-style dynamic-programming labeler -------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic selection-time dynamic-programming labeler of BEG, iburg and
/// lburg: for every node, walk all base rules applicable at its operator,
/// then close over chain rules. This is the flexible-but-slow baseline the
/// on-demand automaton (core/OnDemandAutomaton.h) is measured against; its
/// per-node work grows with the number of rules per operator, which the
/// automaton replaces with one cache probe.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SELECT_DPLABELER_H
#define ODBURG_SELECT_DPLABELER_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "select/DynCost.h"
#include "select/Labeling.h"
#include "support/Statistic.h"

#include <vector>

namespace odburg {

/// The label table the DP labeler produces: per node and nonterminal, the
/// minimal derivation cost and its first rule. Indexed by node id.
class DPLabeling final : public Labeling {
public:
  RuleId ruleFor(const ir::Node &N, NonterminalId Nt) const override {
    return entry(N.id(), Nt).R;
  }

  Cost costFor(const ir::Node &N, NonterminalId Nt) const override {
    return entry(N.id(), Nt).C;
  }

private:
  friend class DPLabeler;

  struct Entry {
    Cost C = Cost::infinity();
    RuleId R = InvalidRule;
  };

  const Entry &entry(std::uint32_t NodeId, NonterminalId Nt) const {
    assert(NodeId * Stride + Nt < Table.size() && "unlabeled node");
    return Table[NodeId * Stride + Nt];
  }
  Entry &entry(std::uint32_t NodeId, NonterminalId Nt) {
    return Table[NodeId * Stride + Nt];
  }

  std::vector<Entry> Table;
  unsigned Stride = 0;
};

/// Labels functions by per-node dynamic programming. Stateless after
/// construction: one labeler may serve many worker threads concurrently as
/// long as each call labels a distinct function (and the dynamic-cost
/// hooks are thread-safe, which the built-in ones are).
class DPLabeler {
public:
  /// \p Dyn may be null when the grammar has no dynamic-cost rules.
  DPLabeler(const Grammar &G, const DynCostTable *Dyn = nullptr);

  /// Labels all nodes of \p F (children before parents; DAGs are fine since
  /// the node list is topologically ordered).
  DPLabeling label(const ir::IRFunction &F,
                   SelectionStats *Stats = nullptr) const;

  /// As label(), but reusing \p L's table storage — the batch-pipeline
  /// form: a worker keeps one DPLabeling and relabels function after
  /// function without reallocating (see select/LabelerBackend.h).
  void labelInto(const ir::IRFunction &F, DPLabeling &L,
                 SelectionStats *Stats = nullptr) const;

private:
  void labelNode(const ir::Node &N, DPLabeling &L,
                 SelectionStats &Stats) const;

  const Grammar &G;
  const DynCostTable *Dyn;
};

} // namespace odburg

#endif // ODBURG_SELECT_DPLABELER_H
