//===- frontend/Parser.cpp - MiniC lexer and parser -------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cctype>
#include <string>

using namespace odburg;
using namespace odburg::minic;

namespace {

enum class Tok {
  Ident, Number,
  KwInt, KwIf, KwElse, KwWhile, KwReturn,
  Assign, Semi, LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde, Shl, Shr,
  EQ, NE, LT, LE, GT, GE,
  End, Bad,
};

struct Token {
  Tok Kind = Tok::End;
  std::string_view Text;
  std::int64_t Number = 0;
  unsigned Line = 1;
};

class Lexer {
public:
  explicit Lexer(std::string_view S) : S(S) {}

  Token next() {
    skipTrivia();
    Token T;
    T.Line = Line;
    if (Pos >= S.size())
      return T;
    char C = S[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexWord(T);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(T);
    ++Pos;
    switch (C) {
    case ';': T.Kind = Tok::Semi; return T;
    case '(': T.Kind = Tok::LParen; return T;
    case ')': T.Kind = Tok::RParen; return T;
    case '{': T.Kind = Tok::LBrace; return T;
    case '}': T.Kind = Tok::RBrace; return T;
    case '[': T.Kind = Tok::LBracket; return T;
    case ']': T.Kind = Tok::RBracket; return T;
    case '+': T.Kind = Tok::Plus; return T;
    case '-': T.Kind = Tok::Minus; return T;
    case '*': T.Kind = Tok::Star; return T;
    case '/': T.Kind = Tok::Slash; return T;
    case '%': T.Kind = Tok::Percent; return T;
    case '&': T.Kind = Tok::Amp; return T;
    case '|': T.Kind = Tok::Pipe; return T;
    case '^': T.Kind = Tok::Caret; return T;
    case '~': T.Kind = Tok::Tilde; return T;
    case '=':
      if (take('=')) { T.Kind = Tok::EQ; return T; }
      T.Kind = Tok::Assign; return T;
    case '!':
      if (take('=')) { T.Kind = Tok::NE; return T; }
      break;
    case '<':
      if (take('=')) { T.Kind = Tok::LE; return T; }
      if (take('<')) { T.Kind = Tok::Shl; return T; }
      T.Kind = Tok::LT; return T;
    case '>':
      if (take('=')) { T.Kind = Tok::GE; return T; }
      if (take('>')) { T.Kind = Tok::Shr; return T; }
      T.Kind = Tok::GT; return T;
    default:
      break;
    }
    T.Kind = Tok::Bad;
    T.Text = S.substr(Pos - 1, 1);
    return T;
  }

private:
  bool take(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  void skipTrivia() {
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < S.size() && S[Pos + 1] == '/') {
        while (Pos < S.size() && S[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  Token lexWord(Token T) {
    std::size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
      ++Pos;
    T.Text = S.substr(Start, Pos - Start);
    if (T.Text == "int")
      T.Kind = Tok::KwInt;
    else if (T.Text == "if")
      T.Kind = Tok::KwIf;
    else if (T.Text == "else")
      T.Kind = Tok::KwElse;
    else if (T.Text == "while")
      T.Kind = Tok::KwWhile;
    else if (T.Text == "return")
      T.Kind = Tok::KwReturn;
    else
      T.Kind = Tok::Ident;
    return T;
  }

  Token lexNumber(Token T) {
    std::size_t Start = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    T.Kind = Tok::Number;
    T.Text = S.substr(Start, Pos - Start);
    T.Number = std::stoll(std::string(T.Text));
    return T;
  }

  std::string_view S;
  std::size_t Pos = 0;
  unsigned Line = 1;
};

class Parser {
public:
  explicit Parser(std::string_view Source) : Lex(Source) { advance(); }

  Expected<Program> run() {
    Program P;
    while (Tok_.Kind == Tok::KwInt)
      if (Error E = parseDecl(P))
        return E;
    while (Tok_.Kind != Tok::End) {
      StmtPtr S;
      if (Error E = parseStmt(S))
        return E;
      P.Stmts.push_back(std::move(S));
    }
    return P;
  }

private:
  void advance() { Tok_ = Lex.next(); }

  Error err(const std::string &Msg) {
    return Error::make("MiniC: " + Msg + " on line " +
                       std::to_string(Tok_.Line));
  }

  Error expect(Tok K, const char *What) {
    if (Tok_.Kind != K)
      return err(std::string("expected ") + What);
    advance();
    return Error::success();
  }

  Error parseDecl(Program &P) {
    advance(); // 'int'
    if (Tok_.Kind != Tok::Ident)
      return err("expected variable name");
    VarDecl D;
    D.Name = std::string(Tok_.Text);
    advance();
    if (Tok_.Kind == Tok::LBracket) {
      advance();
      if (Tok_.Kind != Tok::Number)
        return err("expected array size");
      D.Size = static_cast<unsigned>(Tok_.Number);
      advance();
      if (Error E = expect(Tok::RBracket, "']'"))
        return E;
    }
    P.Decls.push_back(std::move(D));
    return expect(Tok::Semi, "';'");
  }

  Error parseBlock(StmtPtr &Out) {
    if (Error E = expect(Tok::LBrace, "'{'"))
      return E;
    std::vector<StmtPtr> Stmts;
    while (Tok_.Kind != Tok::RBrace) {
      if (Tok_.Kind == Tok::End)
        return err("unterminated block");
      StmtPtr S;
      if (Error E = parseStmt(S))
        return E;
      Stmts.push_back(std::move(S));
    }
    advance(); // '}'
    Out = std::make_unique<BlockStmt>(std::move(Stmts));
    return Error::success();
  }

  Error parseStmt(StmtPtr &Out) {
    switch (Tok_.Kind) {
    case Tok::LBrace:
      return parseBlock(Out);
    case Tok::KwIf: {
      advance();
      if (Error E = expect(Tok::LParen, "'('"))
        return E;
      ExprPtr Cond;
      if (Error E = parseExpr(Cond))
        return E;
      if (Error E = expect(Tok::RParen, "')'"))
        return E;
      StmtPtr Then, Else;
      if (Error E = parseBlock(Then))
        return E;
      if (Tok_.Kind == Tok::KwElse) {
        advance();
        if (Error E = parseBlock(Else))
          return E;
      }
      Out = std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                     std::move(Else));
      return Error::success();
    }
    case Tok::KwWhile: {
      advance();
      if (Error E = expect(Tok::LParen, "'('"))
        return E;
      ExprPtr Cond;
      if (Error E = parseExpr(Cond))
        return E;
      if (Error E = expect(Tok::RParen, "')'"))
        return E;
      StmtPtr Body;
      if (Error E = parseBlock(Body))
        return E;
      Out = std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
      return Error::success();
    }
    case Tok::KwReturn: {
      advance();
      ExprPtr V;
      if (Error E = parseExpr(V))
        return E;
      if (Error E = expect(Tok::Semi, "';'"))
        return E;
      Out = std::make_unique<ReturnStmt>(std::move(V));
      return Error::success();
    }
    case Tok::Ident: {
      std::string Name(Tok_.Text);
      advance();
      ExprPtr Index;
      if (Tok_.Kind == Tok::LBracket) {
        advance();
        if (Error E = parseExpr(Index))
          return E;
        if (Error E = expect(Tok::RBracket, "']'"))
          return E;
      }
      if (Error E = expect(Tok::Assign, "'='"))
        return E;
      ExprPtr Value;
      if (Error E = parseExpr(Value))
        return E;
      if (Error E = expect(Tok::Semi, "';'"))
        return E;
      Out = std::make_unique<AssignStmt>(std::move(Name), std::move(Index),
                                         std::move(Value));
      return Error::success();
    }
    default:
      return err("expected statement");
    }
  }

  /// expr := sum [relop sum]
  Error parseExpr(ExprPtr &Out) {
    if (Error E = parseSum(Out))
      return E;
    BinOpKind K;
    switch (Tok_.Kind) {
    case Tok::EQ: K = BinOpKind::EQ; break;
    case Tok::NE: K = BinOpKind::NE; break;
    case Tok::LT: K = BinOpKind::LT; break;
    case Tok::LE: K = BinOpKind::LE; break;
    case Tok::GT: K = BinOpKind::GT; break;
    case Tok::GE: K = BinOpKind::GE; break;
    default:
      return Error::success();
    }
    advance();
    ExprPtr Rhs;
    if (Error E = parseSum(Rhs))
      return E;
    Out = std::make_unique<BinaryExpr>(K, std::move(Out), std::move(Rhs));
    return Error::success();
  }

  Error parseSum(ExprPtr &Out) {
    if (Error E = parseProd(Out))
      return E;
    while (true) {
      BinOpKind K;
      switch (Tok_.Kind) {
      case Tok::Plus: K = BinOpKind::Add; break;
      case Tok::Minus: K = BinOpKind::Sub; break;
      case Tok::Pipe: K = BinOpKind::Or; break;
      case Tok::Caret: K = BinOpKind::Xor; break;
      default:
        return Error::success();
      }
      advance();
      ExprPtr Rhs;
      if (Error E = parseProd(Rhs))
        return E;
      Out = std::make_unique<BinaryExpr>(K, std::move(Out), std::move(Rhs));
    }
  }

  Error parseProd(ExprPtr &Out) {
    if (Error E = parseUnary(Out))
      return E;
    while (true) {
      BinOpKind K;
      switch (Tok_.Kind) {
      case Tok::Star: K = BinOpKind::Mul; break;
      case Tok::Slash: K = BinOpKind::Div; break;
      case Tok::Percent: K = BinOpKind::Mod; break;
      case Tok::Amp: K = BinOpKind::And; break;
      case Tok::Shl: K = BinOpKind::Shl; break;
      case Tok::Shr: K = BinOpKind::Shr; break;
      default:
        return Error::success();
      }
      advance();
      ExprPtr Rhs;
      if (Error E = parseUnary(Rhs))
        return E;
      Out = std::make_unique<BinaryExpr>(K, std::move(Out), std::move(Rhs));
    }
  }

  Error parseUnary(ExprPtr &Out) {
    if (Tok_.Kind == Tok::Minus || Tok_.Kind == Tok::Tilde) {
      UnaryExpr::Op O =
          Tok_.Kind == Tok::Minus ? UnaryExpr::Op::Neg : UnaryExpr::Op::Com;
      advance();
      ExprPtr Sub;
      if (Error E = parseUnary(Sub))
        return E;
      Out = std::make_unique<UnaryExpr>(O, std::move(Sub));
      return Error::success();
    }
    return parsePrimary(Out);
  }

  Error parsePrimary(ExprPtr &Out) {
    switch (Tok_.Kind) {
    case Tok::Number: {
      Out = std::make_unique<NumberExpr>(Tok_.Number);
      advance();
      return Error::success();
    }
    case Tok::Ident: {
      std::string Name(Tok_.Text);
      advance();
      if (Tok_.Kind == Tok::LBracket) {
        advance();
        ExprPtr Index;
        if (Error E = parseExpr(Index))
          return E;
        if (Error E = expect(Tok::RBracket, "']'"))
          return E;
        Out = std::make_unique<IndexExpr>(std::move(Name), std::move(Index));
        return Error::success();
      }
      Out = std::make_unique<VarExpr>(std::move(Name));
      return Error::success();
    }
    case Tok::LParen: {
      advance();
      if (Error E = parseExpr(Out))
        return E;
      return expect(Tok::RParen, "')'");
    }
    default:
      return err("expected expression");
    }
  }

  Lexer Lex;
  Token Tok_;
};

} // namespace

Expected<Program> odburg::minic::parseProgram(std::string_view Source) {
  return Parser(Source).run();
}
