//===- frontend/AST.h - MiniC abstract syntax trees -------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC AST. MiniC is the small imperative language the repository
/// uses to produce realistic compiler workloads (integer scalars and
/// arrays, arithmetic, if/while control flow). The hierarchy uses
/// LLVM-style RTTI (support/Casting.h): a kind discriminator plus
/// classof() per class.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_FRONTEND_AST_H
#define ODBURG_FRONTEND_AST_H

#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace odburg {
namespace minic {

/// Binary and comparison operator kinds (shared by lexer and AST).
enum class BinOpKind {
  Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
  EQ, NE, LT, LE, GT, GE,
};

/// True for the six comparison operators.
inline bool isComparison(BinOpKind K) {
  return K >= BinOpKind::EQ;
}

/// Base class of all expressions.
class Expr {
public:
  enum class Kind { Number, Var, Index, Unary, Binary };

  virtual ~Expr() = default;

  Kind kind() const { return K; }

protected:
  explicit Expr(Kind K) : K(K) {}

private:
  const Kind K;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal.
class NumberExpr final : public Expr {
public:
  explicit NumberExpr(std::int64_t Value)
      : Expr(Kind::Number), Value(Value) {}

  std::int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Number; }

private:
  std::int64_t Value;
};

/// A scalar variable reference.
class VarExpr final : public Expr {
public:
  explicit VarExpr(std::string Name) : Expr(Kind::Var), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  std::string Name;
};

/// An array element reference `a[i]`.
class IndexExpr final : public Expr {
public:
  IndexExpr(std::string Name, ExprPtr Index)
      : Expr(Kind::Index), Name(std::move(Name)), Index(std::move(Index)) {}

  const std::string &name() const { return Name; }
  const Expr &index() const { return *Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  std::string Name;
  ExprPtr Index;
};

/// Unary minus or bitwise complement.
class UnaryExpr final : public Expr {
public:
  enum class Op { Neg, Com };

  UnaryExpr(Op O, ExprPtr Sub)
      : Expr(Kind::Unary), O(O), Sub(std::move(Sub)) {}

  Op op() const { return O; }
  const Expr &sub() const { return *Sub; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  Op O;
  ExprPtr Sub;
};

/// A binary arithmetic or comparison expression.
class BinaryExpr final : public Expr {
public:
  BinaryExpr(BinOpKind O, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Binary), O(O), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  BinOpKind op() const { return O; }
  const Expr &lhs() const { return *Lhs; }
  const Expr &rhs() const { return *Rhs; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinOpKind O;
  ExprPtr Lhs, Rhs;
};

/// Base class of all statements.
class Stmt {
public:
  enum class Kind { Assign, If, While, Return, Block };

  virtual ~Stmt() = default;

  Kind kind() const { return K; }

protected:
  explicit Stmt(Kind K) : K(K) {}

private:
  const Kind K;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// `x = e;` or `a[i] = e;`
class AssignStmt final : public Stmt {
public:
  AssignStmt(std::string Name, ExprPtr Index, ExprPtr Value)
      : Stmt(Kind::Assign), Name(std::move(Name)), Index(std::move(Index)),
        Value(std::move(Value)) {}

  const std::string &name() const { return Name; }
  /// Null for scalar assignment.
  const Expr *index() const { return Index.get(); }
  const Expr &value() const { return *Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  std::string Name;
  ExprPtr Index;
  ExprPtr Value;
};

/// `if (c) { … } else { … }`
class IfStmt final : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &cond() const { return *Cond; }
  const Stmt &thenStmt() const { return *Then; }
  const Stmt *elseStmt() const { return Else.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

/// `while (c) { … }`
class WhileStmt final : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While), Cond(std::move(Cond)), Body(std::move(Body)) {}

  const Expr &cond() const { return *Cond; }
  const Stmt &body() const { return *Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// `return e;`
class ReturnStmt final : public Stmt {
public:
  explicit ReturnStmt(ExprPtr Value)
      : Stmt(Kind::Return), Value(std::move(Value)) {}

  const Expr &value() const { return *Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

/// `{ … }`
class BlockStmt final : public Stmt {
public:
  explicit BlockStmt(std::vector<StmtPtr> Stmts)
      : Stmt(Kind::Block), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &stmts() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// A variable declaration: scalar (Size 1) or array.
struct VarDecl {
  std::string Name;
  unsigned Size = 1; ///< Element count; 1 for scalars.
};

/// A parsed MiniC program: declarations followed by statements.
struct Program {
  std::vector<VarDecl> Decls;
  std::vector<StmtPtr> Stmts;
};

} // namespace minic
} // namespace odburg

#endif // ODBURG_FRONTEND_AST_H
