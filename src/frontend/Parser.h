//===- frontend/Parser.h - MiniC lexer and parser ---------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses MiniC source text into an AST:
///
/// \code
///   int n; int a[10];
///   n = 0;
///   while (n < 10) { a[n] = n * n; n = n + 1; }
///   return a[9];
/// \endcode
///
/// Grammar (EBNF):
///   program := { decl } { stmt }
///   decl    := "int" ident [ "[" number "]" ] ";"
///   stmt    := ident [ "[" expr "]" ] "=" expr ";"
///            | "if" "(" expr ")" block [ "else" block ]
///            | "while" "(" expr ")" block
///            | "return" expr ";"
///            | block
///   block   := "{" { stmt } "}"
///   expr    := sum [ relop sum ]
///   sum     := prod { ("+" | "-" | "|" | "^") prod }
///   prod    := unary { ("*" | "/" | "%" | "&" | "<<" | ">>") unary }
///   unary   := ("-" | "~") unary | primary
///   primary := number | ident [ "[" expr "]" ] | "(" expr ")"
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_FRONTEND_PARSER_H
#define ODBURG_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "support/Error.h"

#include <string_view>

namespace odburg {
namespace minic {

/// Parses \p Source; error messages include line numbers.
Expected<Program> parseProgram(std::string_view Source);

} // namespace minic
} // namespace odburg

#endif // ODBURG_FRONTEND_PARSER_H
