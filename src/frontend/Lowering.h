//===- frontend/Lowering.h - MiniC AST to IR lowering -----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a MiniC Program to the canonical IR (targets/Target.h operator
/// vocabulary): scalars and arrays become frame slots addressed through
/// AddrL, control flow becomes Label/Br/CBr statement roots, and
/// expressions become value trees — exactly the node stream an lcc-like
/// front end hands to the instruction selector.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_FRONTEND_LOWERING_H
#define ODBURG_FRONTEND_LOWERING_H

#include "frontend/AST.h"
#include "ir/Node.h"
#include "support/Error.h"
#include "targets/Target.h"

namespace odburg {
namespace minic {

/// Lowers \p P into \p F using \p Ops. Fails on references to undeclared
/// variables or indexing a scalar.
Error lowerProgram(const Program &P, const targets::CanonicalOps &Ops,
                   ir::IRFunction &F);

/// Convenience: parse + lower against \p G (which must contain the
/// canonical operators).
Expected<ir::IRFunction> compileMiniC(std::string_view Source,
                                      const Grammar &G);

} // namespace minic
} // namespace odburg

#endif // ODBURG_FRONTEND_LOWERING_H
