//===- frontend/Lowering.cpp - MiniC AST to IR lowering ---------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"

#include "frontend/Parser.h"
#include "support/Casting.h"

#include <unordered_map>

using namespace odburg;
using namespace odburg::minic;
using odburg::targets::CanonicalOps;

namespace {

/// Statement-by-statement lowering with a frame-slot symbol table.
class Lowerer {
public:
  Lowerer(const CanonicalOps &Ops, ir::IRFunction &F) : Ops(Ops), F(F) {}

  Error run(const Program &P) {
    std::int64_t Offset = 0;
    for (const VarDecl &D : P.Decls) {
      if (Frame.count(D.Name))
        return Error::make("MiniC: duplicate declaration of '" + D.Name + "'");
      Frame[D.Name] = {Offset, D.Size > 1};
      Offset += std::int64_t(8) * D.Size;
    }
    for (const StmtPtr &S : P.Stmts)
      if (Error E = lowerStmt(*S))
        return E;
    return Error::success();
  }

private:
  struct Slot {
    std::int64_t Offset;
    bool IsArray;
  };

  std::int64_t freshLabel() { return NextLabel++; }

  Error addressOf(const std::string &Name, const Expr *Index,
                  ir::Node *&Out) {
    auto It = Frame.find(Name);
    if (It == Frame.end())
      return Error::make("MiniC: use of undeclared variable '" + Name + "'");
    ir::Node *Base = F.makeLeaf(Ops.AddrL, It->second.Offset);
    if (!Index) {
      if (It->second.IsArray)
        return Error::make("MiniC: array '" + Name + "' used without index");
      Out = Base;
      return Error::success();
    }
    if (!It->second.IsArray)
      return Error::make("MiniC: scalar '" + Name + "' used with index");
    ir::Node *Idx = nullptr;
    if (Error E = lowerExpr(*Index, Idx))
      return E;
    // Scale the element index by 8 bytes: base + (idx << 3).
    ir::Node *Three = F.makeLeaf(Ops.Const, 3);
    SmallVector<ir::Node *, 2> ShC{Idx, Three};
    ir::Node *Scaled = F.makeNode(Ops.Shl, ShC);
    SmallVector<ir::Node *, 2> AddC{Base, Scaled};
    Out = F.makeNode(Ops.Add, AddC);
    return Error::success();
  }

  OperatorId binOp(BinOpKind K) const {
    switch (K) {
    case BinOpKind::Add: return Ops.Add;
    case BinOpKind::Sub: return Ops.Sub;
    case BinOpKind::Mul: return Ops.Mul;
    case BinOpKind::Div: return Ops.Div;
    case BinOpKind::Mod: return Ops.Mod;
    case BinOpKind::And: return Ops.And;
    case BinOpKind::Or:  return Ops.Or;
    case BinOpKind::Xor: return Ops.Xor;
    case BinOpKind::Shl: return Ops.Shl;
    case BinOpKind::Shr: return Ops.Shr;
    case BinOpKind::EQ:  return Ops.CmpEQ;
    case BinOpKind::NE:  return Ops.CmpNE;
    case BinOpKind::LT:  return Ops.CmpLT;
    case BinOpKind::LE:  return Ops.CmpLE;
    case BinOpKind::GT:  return Ops.CmpGT;
    case BinOpKind::GE:  return Ops.CmpGE;
    }
    return Ops.Add;
  }

  static BinOpKind negateComparison(BinOpKind K) {
    switch (K) {
    case BinOpKind::EQ: return BinOpKind::NE;
    case BinOpKind::NE: return BinOpKind::EQ;
    case BinOpKind::LT: return BinOpKind::GE;
    case BinOpKind::LE: return BinOpKind::GT;
    case BinOpKind::GT: return BinOpKind::LE;
    case BinOpKind::GE: return BinOpKind::LT;
    default: return K;
    }
  }

  Error lowerExpr(const Expr &E, ir::Node *&Out) {
    if (const auto *Num = dyn_cast<NumberExpr>(&E)) {
      Out = F.makeLeaf(Ops.Const, Num->value());
      return Error::success();
    }
    if (const auto *Var = dyn_cast<VarExpr>(&E)) {
      ir::Node *Addr = nullptr;
      if (Error Err = addressOf(Var->name(), nullptr, Addr))
        return Err;
      SmallVector<ir::Node *, 1> C{Addr};
      Out = F.makeNode(Ops.Load, C);
      return Error::success();
    }
    if (const auto *Idx = dyn_cast<IndexExpr>(&E)) {
      ir::Node *Addr = nullptr;
      if (Error Err = addressOf(Idx->name(), &Idx->index(), Addr))
        return Err;
      SmallVector<ir::Node *, 1> C{Addr};
      Out = F.makeNode(Ops.Load, C);
      return Error::success();
    }
    if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
      ir::Node *Sub = nullptr;
      if (Error Err = lowerExpr(U->sub(), Sub))
        return Err;
      SmallVector<ir::Node *, 1> C{Sub};
      Out = F.makeNode(U->op() == UnaryExpr::Op::Neg ? Ops.Neg : Ops.Com, C);
      return Error::success();
    }
    const auto *B = cast<BinaryExpr>(&E);
    ir::Node *L = nullptr, *R = nullptr;
    if (Error Err = lowerExpr(B->lhs(), L))
      return Err;
    if (Error Err = lowerExpr(B->rhs(), R))
      return Err;
    SmallVector<ir::Node *, 2> C{L, R};
    Out = F.makeNode(binOp(B->op()), C);
    return Error::success();
  }

  /// Lowers `if (!Cond) goto Target` — the shape both `if` and `while`
  /// need. Comparisons are negated structurally; other expressions branch
  /// on `e == 0`.
  Error lowerBranchIfFalse(const Expr &Cond, std::int64_t Target) {
    ir::Node *CondNode = nullptr;
    if (const auto *B = dyn_cast<BinaryExpr>(&Cond);
        B && isComparison(B->op())) {
      ir::Node *L = nullptr, *R = nullptr;
      if (Error Err = lowerExpr(B->lhs(), L))
        return Err;
      if (Error Err = lowerExpr(B->rhs(), R))
        return Err;
      SmallVector<ir::Node *, 2> C{L, R};
      CondNode = F.makeNode(binOp(negateComparison(B->op())), C);
    } else {
      ir::Node *V = nullptr;
      if (Error Err = lowerExpr(Cond, V))
        return Err;
      ir::Node *Zero = F.makeLeaf(Ops.Const, 0);
      SmallVector<ir::Node *, 2> C{V, Zero};
      CondNode = F.makeNode(Ops.CmpEQ, C);
    }
    SmallVector<ir::Node *, 1> C{CondNode};
    F.addRoot(F.makeNode(Ops.CBr, C, Target));
    return Error::success();
  }

  Error lowerStmt(const Stmt &S) {
    if (const auto *A = dyn_cast<AssignStmt>(&S)) {
      ir::Node *Addr = nullptr;
      if (Error Err = addressOf(A->name(), A->index(), Addr))
        return Err;
      ir::Node *Value = nullptr;
      if (Error Err = lowerExpr(A->value(), Value))
        return Err;
      SmallVector<ir::Node *, 2> C{Addr, Value};
      F.addRoot(F.makeNode(Ops.Store, C));
      return Error::success();
    }
    if (const auto *I = dyn_cast<IfStmt>(&S)) {
      std::int64_t ElseLabel = freshLabel();
      if (Error Err = lowerBranchIfFalse(I->cond(), ElseLabel))
        return Err;
      if (Error Err = lowerStmt(I->thenStmt()))
        return Err;
      if (const Stmt *Else = I->elseStmt()) {
        std::int64_t EndLabel = freshLabel();
        F.addRoot(F.makeLeaf(Ops.Br, EndLabel));
        F.addRoot(F.makeLeaf(Ops.Label, ElseLabel));
        if (Error Err = lowerStmt(*Else))
          return Err;
        F.addRoot(F.makeLeaf(Ops.Label, EndLabel));
      } else {
        F.addRoot(F.makeLeaf(Ops.Label, ElseLabel));
      }
      return Error::success();
    }
    if (const auto *W = dyn_cast<WhileStmt>(&S)) {
      std::int64_t HeadLabel = freshLabel();
      std::int64_t EndLabel = freshLabel();
      F.addRoot(F.makeLeaf(Ops.Label, HeadLabel));
      if (Error Err = lowerBranchIfFalse(W->cond(), EndLabel))
        return Err;
      if (Error Err = lowerStmt(W->body()))
        return Err;
      F.addRoot(F.makeLeaf(Ops.Br, HeadLabel));
      F.addRoot(F.makeLeaf(Ops.Label, EndLabel));
      return Error::success();
    }
    if (const auto *R = dyn_cast<ReturnStmt>(&S)) {
      ir::Node *V = nullptr;
      if (Error Err = lowerExpr(R->value(), V))
        return Err;
      SmallVector<ir::Node *, 1> C{V};
      F.addRoot(F.makeNode(Ops.Ret, C));
      return Error::success();
    }
    const auto *B = cast<BlockStmt>(&S);
    for (const StmtPtr &Sub : B->stmts())
      if (Error Err = lowerStmt(*Sub))
        return Err;
    return Error::success();
  }

  const CanonicalOps &Ops;
  ir::IRFunction &F;
  std::unordered_map<std::string, Slot> Frame;
  std::int64_t NextLabel = 0;
};

} // namespace

Error odburg::minic::lowerProgram(const Program &P, const CanonicalOps &Ops,
                                  ir::IRFunction &F) {
  return Lowerer(Ops, F).run(P);
}

Expected<ir::IRFunction> odburg::minic::compileMiniC(std::string_view Source,
                                                     const Grammar &G) {
  Expected<Program> P = parseProgram(Source);
  if (!P)
    return P.takeError();
  Expected<CanonicalOps> Ops = targets::resolveCanonicalOps(G);
  if (!Ops)
    return Ops.takeError();
  ir::IRFunction F;
  if (Error E = lowerProgram(*P, *Ops, F))
    return E;
  return F;
}
