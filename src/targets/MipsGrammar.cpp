//===- targets/MipsGrammar.cpp - MIPS machine description -------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIPS-flavored RISC grammar: 16-bit immediates (`?imm16`), simple
/// reg+disp addressing, fused compare-and-branch for the equality forms,
/// and compare-into-register for the rest.
///
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

const char *odburg::targets::mipsGrammarText() {
  return R"brg(
# MIPS-flavored machine description.
%start stmt

# --- leaves -----------------------------------------------------------
con:  Const (0) "=%c";
imm:  Const (0) ?imm16 "=%c";
sh:   Const (0) ?imm8  "=%c";
reg:  Reg (0) "=$%c";
reg:  imm (1) "ori %0, $zero, %1";
reg:  con (2) "lui $at, hi(%1)\nori %0, $at, lo(%1)";
reg:  AddrL (1) "addiu %0, $fp, %c";
reg:  AddrG (2) "lui $at, hi(%c)\naddiu %0, $at, lo(%c)";

# --- addressing --------------------------------------------------------
addr: reg (0) "=0(%1)";
addr: AddrL (0) "=%c($fp)";
addr: AddrG (0) "=%c($gp)";
addr: Add(reg, imm) (0) "=%2(%1)";

# --- loads and stores ---------------------------------------------------
reg:  Load(addr) (1) "lw %0, %1";
stmt: Store(addr, reg) (1) "sw %2, %1";

# --- arithmetic ----------------------------------------------------------
reg:  Add(reg, reg) (1) "addu %0, %1, %2";
reg:  Add(reg, imm) (1) "addiu %0, %1, %2";
reg:  Sub(reg, reg) (1) "subu %0, %1, %2";
reg:  And(reg, reg) (1) "and %0, %1, %2";
reg:  And(reg, imm) (1) "andi %0, %1, %2";
reg:  Or(reg, reg)  (1) "or %0, %1, %2";
reg:  Or(reg, imm)  (1) "ori %0, %1, %2";
reg:  Xor(reg, reg) (1) "xor %0, %1, %2";
reg:  Xor(reg, imm) (1) "xori %0, %1, %2";
reg:  Mul(reg, reg) (5)  "mult %1, %2\nmflo %0";
reg:  Div(reg, reg) (35) "div %1, %2\nmflo %0";
reg:  Mod(reg, reg) (35) "div %1, %2\nmfhi %0";
reg:  Shl(reg, sh)  (1) "sll %0, %1, %2";
reg:  Shl(reg, reg) (1) "sllv %0, %1, %2";
reg:  Shr(reg, sh)  (1) "sra %0, %1, %2";
reg:  Shr(reg, reg) (1) "srav %0, %1, %2";
reg:  Neg(reg) (1) "subu %0, $zero, %1";
reg:  Com(reg) (1) "nor %0, %1, $zero";

# --- compares into a register -------------------------------------------
reg:  CmpLT(reg, reg) (1) "slt %0, %1, %2";
reg:  CmpLT(reg, imm) (1) "slti %0, %1, %2";
reg:  CmpGT(reg, reg) (1) "slt %0, %2, %1";
reg:  CmpLE(reg, reg) (2) "slt %0, %2, %1\nxori %0, %0, 1";
reg:  CmpGE(reg, reg) (2) "slt %0, %1, %2\nxori %0, %0, 1";
reg:  CmpEQ(reg, reg) (2) "xor %0, %1, %2\nsltiu %0, %0, 1";
reg:  CmpNE(reg, reg) (2) "xor %0, %1, %2\nsltu %0, $zero, %0";

# --- branches ------------------------------------------------------------
stmt: CBr(CmpEQ(reg, reg)) (1) "beq %1, %2, .L%c";
stmt: CBr(CmpNE(reg, reg)) (1) "bne %1, %2, .L%c";
stmt: CBr(CmpLT(reg, reg)) (2) "slt $at, %1, %2\nbne $at, $zero, .L%c";
stmt: CBr(CmpGE(reg, reg)) (2) "slt $at, %1, %2\nbeq $at, $zero, .L%c";
stmt: CBr(CmpGT(reg, reg)) (2) "slt $at, %2, %1\nbne $at, $zero, .L%c";
stmt: CBr(CmpLE(reg, reg)) (2) "slt $at, %2, %1\nbeq $at, $zero, .L%c";
stmt: CBr(reg) (1) "bne %1, $zero, .L%c";

# --- control flow ----------------------------------------------------------
stmt: Label (0) ".L%c:";
stmt: Br (1) "j .L%c";
stmt: Ret(reg) (1) "move $v0, %1\njr $ra";
)brg";
}
