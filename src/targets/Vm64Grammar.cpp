//===- targets/Vm64Grammar.cpp - JIT-flavored AMD64 subset ------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JIT-flavored AMD64 machine description, playing the role of the
/// CACAO second-stage grammar in the papers: far fewer rules than the full
/// x86 description (which changes the DP-vs-automaton gap — fewer rules
/// per operator make dynamic programming relatively cheaper), but still
/// with immediate tests and one read-modify-write pattern.
///
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

const char *odburg::targets::vm64GrammarText() {
  return R"brg(
# JIT-flavored AMD64 subset.
%start stmt

con:  Const (0) "=$%c";
imm:  Const (0) ?imm32 "=$%c";
reg:  Reg (0) "=%%r%c";
reg:  con (1) "movq %1, %0";

addr: reg (0) "=(%1)";
addr: AddrL (0) "=%c(%%rbp)";
addr: AddrG (0) "=%c(%%rip)";
addr: Add(reg, imm) (0) "=%2(%1)";
reg:  addr (1) "leaq %1, %0";

reg:  Load(addr) (1) "movq %1, %0";
stmt: Store(addr, reg) (1) "movq %2, %1";
stmt: Store(addr, imm) (1) "movq %2, %1";

reg:  Add(reg, reg) (1) "addq %2, %1, %0";
reg:  Add(reg, imm) (1) "addq %2, %1, %0";
reg:  Sub(reg, reg) (1) "subq %2, %1, %0";
reg:  And(reg, reg) (1) "andq %2, %1, %0";
reg:  Or(reg, reg)  (1) "orq %2, %1, %0";
reg:  Xor(reg, reg) (1) "xorq %2, %1, %0";
reg:  Mul(reg, reg) (3)  "imulq %2, %1, %0";
reg:  Div(reg, reg) (24) "cqto\nidivq %2, %1, %0";
reg:  Mod(reg, reg) (24) "cqto\nidivq %2, %1, %0(rdx)";
reg:  Shl(reg, imm) (1) "salq %2, %1, %0";
reg:  Shl(reg, reg) (2) "movq %2, %%rcx\nsalq %%cl, %1, %0";
reg:  Shr(reg, imm) (1) "sarq %2, %1, %0";
reg:  Shr(reg, reg) (2) "movq %2, %%rcx\nsarq %%cl, %1, %0";
reg:  Neg(reg) (1) "negq %1, %0";
reg:  Com(reg) (1) "notq %1, %0";

stmt: Store(addr, Add(Load(addr), reg)) (1) ?memop "addq %3, %1";
stmt: Store(addr, Sub(Load(addr), reg)) (1) ?memop "subq %3, %1";

cnd:  CmpEQ(reg, reg) (1) "cmpq %2, %1\n=e";
cnd:  CmpNE(reg, reg) (1) "cmpq %2, %1\n=ne";
cnd:  CmpLT(reg, reg) (1) "cmpq %2, %1\n=l";
cnd:  CmpLE(reg, reg) (1) "cmpq %2, %1\n=le";
cnd:  CmpGT(reg, reg) (1) "cmpq %2, %1\n=g";
cnd:  CmpGE(reg, reg) (1) "cmpq %2, %1\n=ge";
cnd:  CmpEQ(reg, imm) (1) "cmpq %2, %1\n=e";
cnd:  CmpNE(reg, imm) (1) "cmpq %2, %1\n=ne";
cnd:  CmpLT(reg, imm) (1) "cmpq %2, %1\n=l";
stmt: CBr(cnd) (1) "j%1 .L%c";

stmt: Label (0) ".L%c:";
stmt: Br (1) "jmp .L%c";
stmt: Ret(reg) (1) "movq %1, %%rax\nret";
)brg";
}
