//===- targets/AsmEmitter.h - Template-driven code emission ----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Selection (the reducer's fired rules) into pseudo-assembly
/// using the emission templates attached to grammar rules.
///
/// Template language (inside the rule's quoted string):
///   \n        instruction separator (two characters, backslash + 'n')
///   =...      a line starting with '=' defines the match's *operand
///             string* (what parent rules see as %N) instead of emitting
///             an instruction — used for constants, addressing modes and
///             condition codes
///   %0        the match's destination: a fresh virtual register; also
///             becomes the operand string if no '=' line is present
///   %1..%9    operand strings of the rule pattern's nonterminal leaves,
///             numbered left to right
///   %c        the matched node's payload (symbol if present, else the
///             integer value)
///   %%        a literal '%'
///
/// An empty template passes operand 1 through (the usual chain-rule case).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_TARGETS_ASMEMITTER_H
#define ODBURG_TARGETS_ASMEMITTER_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "select/Reducer.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace odburg {
namespace targets {

/// The emitted code for one function.
struct AsmOutput {
  /// Instruction lines, in emission order.
  std::vector<std::string> Lines;
  /// Instruction count (== Lines.size(), kept for clarity at call sites).
  unsigned instructions() const { return static_cast<unsigned>(Lines.size()); }
  /// Total character count, the code-size proxy used in experiments.
  std::size_t sizeBytes() const;
  /// All lines joined with newlines.
  std::string text() const;
};

/// Renders \p S (produced against \p G and \p F) into assembly.
/// Fails on malformed templates (bad placeholder indices).
Expected<AsmOutput> emitAsm(const Grammar &G, const ir::IRFunction &F,
                            const Selection &S);

/// A flat emit target: instruction lines are appended to Text,
/// newline-terminated, instead of being materialized as one string each.
/// This is the batch-pipeline form — each worker emits a function into a
/// private buffer and the session concatenates the buffers in corpus
/// order, which is byte-identical to emitting everything serially.
struct AsmBuffer {
  /// Newline-terminated instruction lines, in emission order.
  std::string Text;
  /// Instruction count (== number of lines in Text).
  unsigned Instructions = 0;

  void clear() {
    Text.clear();
    Instructions = 0;
  }
  std::size_t sizeBytes() const { return Text.size(); }
};

/// Renders \p S into \p Out, appending. Virtual-register numbering starts
/// fresh per call, so per-function output is independent of what else the
/// buffer holds. Fails on malformed templates, leaving \p Out with the
/// lines emitted before the failure.
Error emitAsm(const Grammar &G, const ir::IRFunction &F, const Selection &S,
              AsmBuffer &Out);

} // namespace targets
} // namespace odburg

#endif // ODBURG_TARGETS_ASMEMITTER_H
