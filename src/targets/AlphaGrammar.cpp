//===- targets/AlphaGrammar.cpp - Alpha machine description -----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alpha-flavored RISC grammar: 8-bit literal operands (`?imm8`), scaled
/// add (s4addq/s8addq via `?scale23`), compares producing 0/1 registers
/// and branches testing registers against zero.
///
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

const char *odburg::targets::alphaGrammarText() {
  return R"brg(
# Alpha-flavored machine description.
%start stmt

# --- leaves -----------------------------------------------------------
con:  Const (0) "=%c";
lit:  Const (0) ?imm8 "=%c";
k:    Const (0) ?scale23 "=%c";
reg:  Reg (0) "=$%c";
reg:  lit (1) "mov %1, %0";
reg:  con (2) "ldah %0, hi(%1)\nlda %0, lo(%1)(%0)";
reg:  AddrL (1) "lda %0, %c($fp)";
reg:  AddrG (1) "lda %0, %c($gp)";

# --- addressing --------------------------------------------------------
addr: reg (0) "=0(%1)";
addr: AddrL (0) "=%c($fp)";
addr: AddrG (0) "=%c($gp)";
addr: Add(reg, lit) (0) "=%2(%1)";

# --- loads and stores ---------------------------------------------------
reg:  Load(addr) (1) "ldq %0, %1";
stmt: Store(addr, reg) (1) "stq %2, %1";

# --- arithmetic ----------------------------------------------------------
reg:  Add(reg, reg) (1) "addq %1, %2, %0";
reg:  Add(reg, lit) (1) "addq %1, %2, %0";
reg:  Add(reg, Shl(reg, k)) (1) "saddq %1, %2<<%3, %0";
reg:  Sub(reg, reg) (1) "subq %1, %2, %0";
reg:  Sub(reg, lit) (1) "subq %1, %2, %0";
reg:  And(reg, reg) (1) "and %1, %2, %0";
reg:  And(reg, lit) (1) "and %1, %2, %0";
reg:  Or(reg, reg)  (1) "bis %1, %2, %0";
reg:  Or(reg, lit)  (1) "bis %1, %2, %0";
reg:  Xor(reg, reg) (1) "xor %1, %2, %0";
reg:  Xor(reg, lit) (1) "xor %1, %2, %0";
reg:  Mul(reg, reg) (8)  "mulq %1, %2, %0";
reg:  Mul(reg, lit) (8)  "mulq %1, %2, %0";
reg:  Div(reg, reg) (40) "divq %1, %2, %0";
reg:  Mod(reg, reg) (42) "remq %1, %2, %0";
reg:  Shl(reg, lit) (1) "sll %1, %2, %0";
reg:  Shl(reg, reg) (1) "sll %1, %2, %0";
reg:  Shr(reg, lit) (1) "sra %1, %2, %0";
reg:  Shr(reg, reg) (1) "sra %1, %2, %0";
reg:  Neg(reg) (1) "subq $31, %1, %0";
reg:  Com(reg) (1) "ornot $31, %1, %0";

# --- compares into a register -------------------------------------------
reg:  CmpEQ(reg, reg) (1) "cmpeq %1, %2, %0";
reg:  CmpEQ(reg, lit) (1) "cmpeq %1, %2, %0";
reg:  CmpNE(reg, reg) (2) "cmpeq %1, %2, %0\nxor %0, 1, %0";
reg:  CmpLT(reg, reg) (1) "cmplt %1, %2, %0";
reg:  CmpLT(reg, lit) (1) "cmplt %1, %2, %0";
reg:  CmpLE(reg, reg) (1) "cmple %1, %2, %0";
reg:  CmpLE(reg, lit) (1) "cmple %1, %2, %0";
reg:  CmpGT(reg, reg) (1) "cmplt %2, %1, %0";
reg:  CmpGE(reg, reg) (1) "cmple %2, %1, %0";

# --- branches: fused forms test a compare result against zero ------------
stmt: CBr(CmpEQ(reg, reg)) (2) "cmpeq %1, %2, $at\nbne $at, .L%c";
stmt: CBr(CmpNE(reg, reg)) (2) "cmpeq %1, %2, $at\nbeq $at, .L%c";
stmt: CBr(CmpLT(reg, reg)) (2) "cmplt %1, %2, $at\nbne $at, .L%c";
stmt: CBr(CmpLE(reg, reg)) (2) "cmple %1, %2, $at\nbne $at, .L%c";
stmt: CBr(CmpGT(reg, reg)) (2) "cmplt %2, %1, $at\nbne $at, .L%c";
stmt: CBr(CmpGE(reg, reg)) (2) "cmple %2, %1, $at\nbne $at, .L%c";
stmt: CBr(reg) (1) "bne %1, .L%c";

# --- control flow ----------------------------------------------------------
stmt: Label (0) ".L%c:";
stmt: Br (1) "br .L%c";
stmt: Ret(reg) (2) "mov %1, $0\nret ($26)";
)brg";
}
