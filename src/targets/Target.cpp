//===- targets/Target.cpp - Machine descriptions ----------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

#include "grammar/GrammarParser.h"
#include "grammar/Transform.h"
#include "ir/Node.h"

using namespace odburg;
using namespace odburg::targets;

const std::vector<std::string> &odburg::targets::targetNames() {
  static const std::vector<std::string> Names = {"x86", "mips", "sparc",
                                                 "alpha", "vm64"};
  return Names;
}

namespace {

/// True if \p V fits a signed \p Bits-bit immediate.
bool fitsSigned(std::int64_t V, unsigned Bits) {
  std::int64_t Lo = -(std::int64_t(1) << (Bits - 1));
  std::int64_t Hi = (std::int64_t(1) << (Bits - 1)) - 1;
  return V >= Lo && V <= Hi;
}

/// Immediate-range hook over a constant leaf's payload. The classic use of
/// dynamic costs: the rule applies only when the constant fits.
DynCostFn immHook(unsigned Bits) {
  return [Bits](const ir::Node &N) {
    return fitsSigned(N.value(), Bits) ? Cost::zero() : Cost::infinity();
  };
}

/// Shift amounts that index-scale addressing supports (1, 2, 3 = scale
/// 2, 4, 8).
Cost scale123Hook(const ir::Node &N) {
  return N.value() >= 1 && N.value() <= 3 ? Cost::zero() : Cost::infinity();
}

/// Shift amount for Alpha's s4addq/s8addq (2 = *4, 3 = *8).
Cost scale23Hook(const ir::Node &N) {
  return N.value() == 2 || N.value() == 3 ? Cost::zero() : Cost::infinity();
}

/// The read-modify-write applicability test: the rule pattern is
/// Store(addr, BinOp(Load(addr), …)); the instruction exists only when
/// both `addr` occurrences denote the same location. Called on every Store
/// node (also ones not matching the shape), so it checks shape first.
Cost memopHook(const ir::Node &N) {
  if (N.numChildren() != 2)
    return Cost::infinity();
  const ir::Node *Inner = N.child(1);
  if (Inner->numChildren() < 1)
    return Cost::infinity();
  const ir::Node *Ld = Inner->child(0);
  if (Ld->numChildren() != 1)
    return Cost::infinity();
  return ir::structurallyEqual(N.child(0), Ld->child(0)) ? Cost::zero()
                                                         : Cost::infinity();
}

const char *grammarTextFor(std::string_view Name) {
  if (Name == "x86")
    return x86GrammarText();
  if (Name == "mips")
    return mipsGrammarText();
  if (Name == "sparc")
    return sparcGrammarText();
  if (Name == "alpha")
    return alphaGrammarText();
  if (Name == "vm64")
    return vm64GrammarText();
  return nullptr;
}

} // namespace

const std::unordered_map<std::string, DynCostFn> &
odburg::targets::standardHooks() {
  static const std::unordered_map<std::string, DynCostFn> Registry = {
      {"imm8", immHook(8)},     {"imm13", immHook(13)},
      {"imm16", immHook(16)},   {"imm32", immHook(32)},
      {"scale123", scale123Hook}, {"scale23", scale23Hook},
      {"memop", memopHook},
  };
  return Registry;
}

Expected<std::unique_ptr<Target>>
odburg::targets::makeTarget(std::string_view Name) {
  const char *Text = grammarTextFor(Name);
  if (!Text) {
    std::string Known;
    for (const std::string &N : targetNames())
      Known += (Known.empty() ? "" : ", ") + N;
    return Error::make("unknown target '" + std::string(Name) +
                       "' (known targets: " + Known + ")");
  }
  Expected<Grammar> G = parseGrammar(Text);
  if (!G)
    return Error::make("target '" + std::string(Name) +
                       "' grammar failed to parse: " + G.message());
  Expected<DynCostTable> Dyn = DynCostTable::build(*G, standardHooks());
  if (!Dyn)
    return Dyn.takeError();
  Expected<Grammar> Fixed = withoutDynCostRules(*G);
  if (!Fixed)
    return Error::make("target '" + std::string(Name) +
                       "' cannot be stripped: " + Fixed.message());
  auto T = std::make_unique<Target>();
  T->Name = std::string(Name);
  T->G = std::move(*G);
  T->Dyn = std::move(*Dyn);
  T->Fixed = std::move(*Fixed);
  return T;
}

Expected<CanonicalOps> odburg::targets::resolveCanonicalOps(const Grammar &G) {
  CanonicalOps Ops;
  struct Entry {
    const char *Name;
    OperatorId CanonicalOps::*Member;
  };
  static const Entry Entries[] = {
      {"Const", &CanonicalOps::Const}, {"AddrL", &CanonicalOps::AddrL},
      {"AddrG", &CanonicalOps::AddrG}, {"Reg", &CanonicalOps::Reg},
      {"Label", &CanonicalOps::Label}, {"Br", &CanonicalOps::Br},
      {"Load", &CanonicalOps::Load},   {"Neg", &CanonicalOps::Neg},
      {"Com", &CanonicalOps::Com},     {"Ret", &CanonicalOps::Ret},
      {"CBr", &CanonicalOps::CBr},     {"Store", &CanonicalOps::Store},
      {"Add", &CanonicalOps::Add},     {"Sub", &CanonicalOps::Sub},
      {"Mul", &CanonicalOps::Mul},     {"Div", &CanonicalOps::Div},
      {"Mod", &CanonicalOps::Mod},     {"And", &CanonicalOps::And},
      {"Or", &CanonicalOps::Or},       {"Xor", &CanonicalOps::Xor},
      {"Shl", &CanonicalOps::Shl},     {"Shr", &CanonicalOps::Shr},
      {"CmpEQ", &CanonicalOps::CmpEQ}, {"CmpNE", &CanonicalOps::CmpNE},
      {"CmpLT", &CanonicalOps::CmpLT}, {"CmpLE", &CanonicalOps::CmpLE},
      {"CmpGT", &CanonicalOps::CmpGT}, {"CmpGE", &CanonicalOps::CmpGE},
  };
  for (const Entry &E : Entries) {
    OperatorId Op = G.findOperator(E.Name);
    if (Op == InvalidOperator)
      return Error::make("grammar does not mention canonical operator '" +
                         std::string(E.Name) + "'");
    Ops.*E.Member = Op;
  }
  return Ops;
}
