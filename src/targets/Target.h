//===- targets/Target.h - Machine descriptions ------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine descriptions: a named bundle of grammar, dynamic-cost hooks and
/// the fixed-cost (stripped) grammar variant. Five targets mirror the lcc
/// grammar family the papers evaluate on:
///
///   x86    CISC: addressing modes, memory operands, read-modify-write
///          memops (`?memop`), 32-bit immediates
///   mips   RISC, 16-bit immediates, fused compare-and-branch
///   sparc  RISC, 13-bit immediates
///   alpha  RISC, 8-bit literals, scaled-add (s4addq/s8addq)
///   vm64   small JIT-flavored AMD64 subset (CACAO-style second stage)
///
/// All grammars share one canonical IR operator vocabulary (see below), so
/// the same IR can be selected for any target.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_TARGETS_TARGET_H
#define ODBURG_TARGETS_TARGET_H

#include "grammar/Grammar.h"
#include "select/DynCost.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace odburg {
namespace targets {

/// A machine description ready for any labeling engine.
struct Target {
  std::string Name;
  /// The full grammar (with dynamic-cost rules).
  Grammar G;
  /// Hook table bound to \p G.
  DynCostTable Dyn;
  /// The grammar with dynamic rules (and their dependents) stripped; what
  /// offline table generation and the "fixed costs only" comparisons use.
  Grammar Fixed;
};

/// Names of all built-in targets.
const std::vector<std::string> &targetNames();

/// The hook functions the built-in grammars use (imm8/13/16/32,
/// scale123/scale23, memop). Exposed so experiments can rebind hooks after
/// grammar transformations (e.g. grammar::withoutDynHook).
const std::unordered_map<std::string, DynCostFn> &standardHooks();

/// Builds the named target. Fails on unknown names (listing the known
/// ones) or if a grammar fails to parse — the latter is a bug.
Expected<std::unique_ptr<Target>> makeTarget(std::string_view Name);

/// Grammar text accessors (exposed for tests and the grammar-stats bench).
const char *x86GrammarText();
const char *mipsGrammarText();
const char *sparcGrammarText();
const char *alphaGrammarText();
const char *vm64GrammarText();

/// The canonical IR operator names shared by all targets, with arities.
/// The frontend and workload generators emit exactly these.
struct CanonicalOps {
  OperatorId Const, AddrL, AddrG, Reg, Label, Br;
  OperatorId Load, Neg, Com, Ret, CBr;
  OperatorId Store, Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr;
  OperatorId CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE;
};

/// Resolves the canonical operators in \p G; fails if any is missing
/// (every target grammar must mention all of them).
Expected<CanonicalOps> resolveCanonicalOps(const Grammar &G);

} // namespace targets
} // namespace odburg

#endif // ODBURG_TARGETS_TARGET_H
