//===- targets/SparcGrammar.cpp - SPARC machine description -----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPARC-flavored RISC grammar: 13-bit immediates (`?imm13`), reg+reg and
/// reg+simm13 addressing, condition codes set by `subcc` and consumed by
/// conditional branches.
///
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

const char *odburg::targets::sparcGrammarText() {
  return R"brg(
# SPARC-flavored machine description.
%start stmt

# --- leaves -----------------------------------------------------------
con:  Const (0) "=%c";
imm:  Const (0) ?imm13 "=%c";
sh:   Const (0) ?imm8  "=%c";
reg:  Reg (0) "=%%g%c";
reg:  imm (1) "mov %1, %0";
reg:  con (2) "sethi %%hi(%1), %0\nor %0, %%lo(%1), %0";
reg:  AddrL (1) "add %%fp, %c, %0";
reg:  AddrG (2) "sethi %%hi(%c), %0\nor %0, %%lo(%c), %0";

# --- addressing --------------------------------------------------------
addr: reg (0) "=[%1]";
addr: AddrL (0) "=[%%fp+%c]";
addr: Add(reg, imm) (0) "=[%1+%2]";
addr: Add(reg, reg) (0) "=[%1+%2]";

# --- loads and stores ---------------------------------------------------
reg:  Load(addr) (1) "ld %1, %0";
stmt: Store(addr, reg) (1) "st %2, %1";

# --- arithmetic ----------------------------------------------------------
reg:  Add(reg, reg) (1) "add %1, %2, %0";
reg:  Add(reg, imm) (1) "add %1, %2, %0";
reg:  Sub(reg, reg) (1) "sub %1, %2, %0";
reg:  Sub(reg, imm) (1) "sub %1, %2, %0";
reg:  And(reg, reg) (1) "and %1, %2, %0";
reg:  And(reg, imm) (1) "and %1, %2, %0";
reg:  Or(reg, reg)  (1) "or %1, %2, %0";
reg:  Or(reg, imm)  (1) "or %1, %2, %0";
reg:  Xor(reg, reg) (1) "xor %1, %2, %0";
reg:  Xor(reg, imm) (1) "xor %1, %2, %0";
reg:  Mul(reg, reg) (6)  "smul %1, %2, %0";
reg:  Mul(reg, imm) (6)  "smul %1, %2, %0";
reg:  Div(reg, reg) (36) "sdiv %1, %2, %0";
reg:  Mod(reg, reg) (38) "sdiv %1, %2, %0\nsmul %0, %2, %0\nsub %1, %0, %0";
reg:  Shl(reg, sh)  (1) "sll %1, %2, %0";
reg:  Shl(reg, reg) (1) "sll %1, %2, %0";
reg:  Shr(reg, sh)  (1) "sra %1, %2, %0";
reg:  Shr(reg, reg) (1) "sra %1, %2, %0";
reg:  Neg(reg) (1) "sub %%g0, %1, %0";
reg:  Com(reg) (1) "xnor %1, %%g0, %0";

# --- compare and branch ---------------------------------------------------
cnd:  CmpEQ(reg, reg) (1) "cmp %1, %2\n=e";
cnd:  CmpEQ(reg, imm) (1) "cmp %1, %2\n=e";
cnd:  CmpNE(reg, reg) (1) "cmp %1, %2\n=ne";
cnd:  CmpNE(reg, imm) (1) "cmp %1, %2\n=ne";
cnd:  CmpLT(reg, reg) (1) "cmp %1, %2\n=l";
cnd:  CmpLT(reg, imm) (1) "cmp %1, %2\n=l";
cnd:  CmpLE(reg, reg) (1) "cmp %1, %2\n=le";
cnd:  CmpLE(reg, imm) (1) "cmp %1, %2\n=le";
cnd:  CmpGT(reg, reg) (1) "cmp %1, %2\n=g";
cnd:  CmpGT(reg, imm) (1) "cmp %1, %2\n=g";
cnd:  CmpGE(reg, reg) (1) "cmp %1, %2\n=ge";
cnd:  CmpGE(reg, imm) (1) "cmp %1, %2\n=ge";
stmt: CBr(cnd) (2) "b%1 .L%c\nnop";

# --- control flow ----------------------------------------------------------
stmt: Label (0) ".L%c:";
stmt: Br (2) "ba .L%c\nnop";
stmt: Ret(reg) (2) "mov %1, %%o0\nretl\nnop";
)brg";
}
