//===- targets/X86Grammar.cpp - CISC machine description -------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x86-flavored grammar: rich addressing modes (base, base+disp,
/// base+index, base+index*scale), memory operands for arithmetic,
/// read-modify-write memops gated by the `?memop` dynamic cost, and 32-bit
/// immediates gated by `?imm32`. This is the grammar where dynamic costs
/// buy the most — the role lcc's x86linux.md (45 of 305 rules dynamic)
/// plays in the papers.
///
/// Emission templates are illustrative three-operand pseudo-assembly in
/// AT&T flavor; `\n` separates instructions, a leading `=` defines an
/// operand alias instead of emitting code (see targets/AsmEmitter.h).
///
//===----------------------------------------------------------------------===//

#include "targets/Target.h"

const char *odburg::targets::x86GrammarText() {
  return R"brg(
# x86-flavored machine description.
%start stmt

# --- leaves -----------------------------------------------------------
con:  Const (0) "=$%c";
imm:  Const (0) ?imm32 "=$%c";
sh:   Const (0) ?imm8  "=$%c";
k:    Const (0) ?scale123 "=%c";
reg:  Reg (0) "=%%r%c";
reg:  con (1) "movq %1, %0";

# --- addressing modes -------------------------------------------------
addr: reg (0) "=(%1)";
addr: AddrL (0) "=%c(%%rbp)";
addr: AddrG (0) "=%c(%%rip)";
addr: Add(reg, imm) (0) "=%2(%1)";
addr: Add(reg, reg) (0) "=(%1,%2)";
idx:  Shl(reg, k) (0) "=%1,%2";
addr: Add(reg, idx) (0) "=(%1,%2)";
reg:  addr (1) "leaq %1, %0";

# --- loads and stores -------------------------------------------------
mem:  Load(addr) (0) "=%1";
reg:  Load(addr) (1) "movq %1, %0";
stmt: Store(addr, reg) (1) "movq %2, %1";
stmt: Store(addr, imm) (1) "movq %2, %1";

# --- two-operand arithmetic: rr / ri / rm forms ------------------------
reg:  Add(reg, reg) (1) "addq %2, %1, %0";
reg:  Add(reg, imm) (1) "addq %2, %1, %0";
reg:  Add(reg, mem) (1) "addq %2, %1, %0";
reg:  Sub(reg, reg) (1) "subq %2, %1, %0";
reg:  Sub(reg, imm) (1) "subq %2, %1, %0";
reg:  Sub(reg, mem) (1) "subq %2, %1, %0";
reg:  And(reg, reg) (1) "andq %2, %1, %0";
reg:  And(reg, imm) (1) "andq %2, %1, %0";
reg:  And(reg, mem) (1) "andq %2, %1, %0";
reg:  Or(reg, reg)  (1) "orq %2, %1, %0";
reg:  Or(reg, imm)  (1) "orq %2, %1, %0";
reg:  Or(reg, mem)  (1) "orq %2, %1, %0";
reg:  Xor(reg, reg) (1) "xorq %2, %1, %0";
reg:  Xor(reg, imm) (1) "xorq %2, %1, %0";
reg:  Xor(reg, mem) (1) "xorq %2, %1, %0";

# --- multiply / divide -------------------------------------------------
reg:  Mul(reg, reg) (3)  "imulq %2, %1, %0";
reg:  Mul(reg, imm) (3)  "imulq %2, %1, %0";
reg:  Mul(reg, mem) (3)  "imulq %2, %1, %0";
reg:  Div(reg, reg) (24) "cqto\nidivq %2, %1, %0";
reg:  Mod(reg, reg) (24) "cqto\nidivq %2, %1, %0(rdx)";

# --- shifts ------------------------------------------------------------
reg:  Shl(reg, sh)  (1) "salq %2, %1, %0";
reg:  Shl(reg, reg) (2) "movq %2, %%rcx\nsalq %%cl, %1, %0";
reg:  Shr(reg, sh)  (1) "sarq %2, %1, %0";
reg:  Shr(reg, reg) (2) "movq %2, %%rcx\nsarq %%cl, %1, %0";

# --- unary -------------------------------------------------------------
reg:  Neg(reg) (1) "negq %1, %0";
reg:  Com(reg) (1) "notq %1, %0";

# --- read-modify-write memops (the dynamic-cost showpiece) -------------
stmt: Store(addr, Add(Load(addr), reg)) (1) ?memop "addq %3, %1";
stmt: Store(addr, Add(Load(addr), imm)) (1) ?memop "addq %3, %1";
stmt: Store(addr, Sub(Load(addr), reg)) (1) ?memop "subq %3, %1";
stmt: Store(addr, Sub(Load(addr), imm)) (1) ?memop "subq %3, %1";
stmt: Store(addr, And(Load(addr), reg)) (1) ?memop "andq %3, %1";
stmt: Store(addr, And(Load(addr), imm)) (1) ?memop "andq %3, %1";
stmt: Store(addr, Or(Load(addr), reg))  (1) ?memop "orq %3, %1";
stmt: Store(addr, Or(Load(addr), imm))  (1) ?memop "orq %3, %1";
stmt: Store(addr, Xor(Load(addr), reg)) (1) ?memop "xorq %3, %1";
stmt: Store(addr, Xor(Load(addr), imm)) (1) ?memop "xorq %3, %1";
stmt: Store(addr, Shl(Load(addr), sh))  (1) ?memop "salq %3, %1";
stmt: Store(addr, Shr(Load(addr), sh))  (1) ?memop "sarq %3, %1";

# --- compare and branch -------------------------------------------------
cnd:  CmpEQ(reg, reg) (1) "cmpq %2, %1\n=e";
cnd:  CmpEQ(reg, imm) (1) "cmpq %2, %1\n=e";
cnd:  CmpEQ(reg, mem) (1) "cmpq %2, %1\n=e";
cnd:  CmpNE(reg, reg) (1) "cmpq %2, %1\n=ne";
cnd:  CmpNE(reg, imm) (1) "cmpq %2, %1\n=ne";
cnd:  CmpNE(reg, mem) (1) "cmpq %2, %1\n=ne";
cnd:  CmpLT(reg, reg) (1) "cmpq %2, %1\n=l";
cnd:  CmpLT(reg, imm) (1) "cmpq %2, %1\n=l";
cnd:  CmpLT(reg, mem) (1) "cmpq %2, %1\n=l";
cnd:  CmpLE(reg, reg) (1) "cmpq %2, %1\n=le";
cnd:  CmpLE(reg, imm) (1) "cmpq %2, %1\n=le";
cnd:  CmpLE(reg, mem) (1) "cmpq %2, %1\n=le";
cnd:  CmpGT(reg, reg) (1) "cmpq %2, %1\n=g";
cnd:  CmpGT(reg, imm) (1) "cmpq %2, %1\n=g";
cnd:  CmpGT(reg, mem) (1) "cmpq %2, %1\n=g";
cnd:  CmpGE(reg, reg) (1) "cmpq %2, %1\n=ge";
cnd:  CmpGE(reg, imm) (1) "cmpq %2, %1\n=ge";
cnd:  CmpGE(reg, mem) (1) "cmpq %2, %1\n=ge";
stmt: CBr(cnd) (1) "j%1 .L%c";

# --- control flow -------------------------------------------------------
stmt: Label (0) ".L%c:";
stmt: Br (1) "jmp .L%c";
stmt: Ret(reg) (1) "movq %1, %%rax\nret";
stmt: Ret(imm) (1) "movq %1, %%rax\nret";
)brg";
}
