//===- targets/AsmEmitter.cpp - Template-driven code emission --------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "targets/AsmEmitter.h"

#include <unordered_map>

using namespace odburg;
using namespace odburg::targets;

std::size_t AsmOutput::sizeBytes() const {
  std::size_t Total = 0;
  for (const std::string &L : Lines)
    Total += L.size() + 1;
  return Total;
}

std::string AsmOutput::text() const {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

namespace {

/// Pairs each nonterminal leaf of \p P (in left-to-right order) with the
/// subject node it matched, walking pattern and subject in lockstep.
void collectOperands(const PatternNode *P, const ir::Node *N,
                     SmallVectorImpl<std::pair<const ir::Node *,
                                               NonterminalId>> &Out) {
  if (P->isLeaf()) {
    Out.push_back({N, P->Nt});
    return;
  }
  for (unsigned I = 0; I < P->NumChildren; ++I)
    collectOperands(P->Children[I], N->child(I), Out);
}

/// Emission engine: processes matches bottom-up, tracking operand strings
/// per (node, nonterminal). Writes to exactly one of the two emit
/// targets: per-line strings (AsmOutput) or a flat buffer (AsmBuffer).
class Emitter {
public:
  Emitter(const Grammar &G, AsmOutput &Out) : G(G), Lines(&Out) {}
  Emitter(const Grammar &G, AsmBuffer &Out) : G(G), Buf(&Out) {}

  Error emitMatch(const Match &M) {
    const SourceRule &R = G.sourceRule(M.Source);
    SmallVector<std::pair<const ir::Node *, NonterminalId>, 8> Operands;
    collectOperands(R.Pattern, M.Where, Operands);

    std::string Alias;
    bool HaveAlias = false;
    std::string Dest;

    // Split the template on the two-character sequence "\n".
    std::string_view Tmpl = R.EmitTemplate;
    while (!Tmpl.empty()) {
      std::size_t Split = Tmpl.find("\\n");
      std::string_view Line = Tmpl.substr(0, Split);
      Tmpl = Split == std::string_view::npos ? std::string_view()
                                             : Tmpl.substr(Split + 2);
      std::string Rendered;
      if (Error E = renderLine(Line, M, Operands, Dest, Rendered))
        return E;
      if (!Line.empty() && Line[0] == '=') {
        Alias = Rendered.substr(1); // Drop the '='.
        HaveAlias = true;
      } else {
        appendLine(std::move(Rendered));
      }
    }

    // Determine the operand string this match exposes to its consumers.
    std::string Value;
    if (HaveAlias)
      Value = std::move(Alias);
    else if (!Dest.empty())
      Value = Dest;
    else if (!Operands.empty())
      Value = operandString(Operands[0].first, Operands[0].second);
    setOperandString(M.Where, M.Lhs, std::move(Value));
    return Error::success();
  }

private:
  void appendLine(std::string &&L) {
    if (Lines) {
      Lines->Lines.push_back(std::move(L));
      return;
    }
    Buf->Text += L;
    Buf->Text += '\n';
    ++Buf->Instructions;
  }

  std::string freshVreg() { return "%v" + std::to_string(NextVreg++); }

  std::uint64_t key(const ir::Node *N, NonterminalId Nt) const {
    return static_cast<std::uint64_t>(N->id()) * G.numNonterminals() + Nt;
  }

  std::string operandString(const ir::Node *N, NonterminalId Nt) const {
    auto It = Strings.find(key(N, Nt));
    return It == Strings.end() ? std::string("?") : It->second;
  }

  void setOperandString(const ir::Node *N, NonterminalId Nt, std::string S) {
    Strings[key(N, Nt)] = std::move(S);
  }

  Error renderLine(std::string_view Line, const Match &M,
                   const SmallVectorImpl<std::pair<const ir::Node *,
                                                   NonterminalId>> &Operands,
                   std::string &Dest, std::string &Out) {
    for (std::size_t I = 0; I < Line.size(); ++I) {
      char C = Line[I];
      if (C != '%') {
        Out.push_back(C);
        continue;
      }
      if (++I >= Line.size())
        return Error::make("dangling '%' in template of rule #" +
                           std::to_string(G.sourceRule(M.Source).ExtNumber));
      char D = Line[I];
      if (D == '%') {
        Out.push_back('%');
        continue;
      }
      if (D == 'c') {
        const ir::Node *N = M.Where;
        if (N->symbol())
          Out += N->symbol();
        else
          Out += std::to_string(N->value());
        continue;
      }
      if (D == '0') {
        if (Dest.empty())
          Dest = freshVreg();
        Out += Dest;
        continue;
      }
      if (D >= '1' && D <= '9') {
        unsigned Idx = static_cast<unsigned>(D - '1');
        if (Idx >= Operands.size())
          return Error::make(
              "template of rule #" +
              std::to_string(G.sourceRule(M.Source).ExtNumber) +
              " references operand %" + std::string(1, D) + " but only " +
              std::to_string(Operands.size()) + " operands exist");
        Out += operandString(Operands[Idx].first, Operands[Idx].second);
        continue;
      }
      return Error::make("unknown template placeholder '%" +
                         std::string(1, D) + "' in rule #" +
                         std::to_string(G.sourceRule(M.Source).ExtNumber));
    }
    return Error::success();
  }

  const Grammar &G;
  AsmOutput *Lines = nullptr;
  AsmBuffer *Buf = nullptr;
  std::unordered_map<std::uint64_t, std::string> Strings;
  unsigned NextVreg = 0;
};

} // namespace

Expected<AsmOutput>
odburg::targets::emitAsm(const Grammar &G, const ir::IRFunction &F,
                         const Selection &S) {
  (void)F;
  AsmOutput Out;
  Emitter E(G, Out);
  for (const Match &M : S.Matches)
    if (Error Err = E.emitMatch(M))
      return Err;
  return Out;
}

Error odburg::targets::emitAsm(const Grammar &G, const ir::IRFunction &F,
                               const Selection &S, AsmBuffer &Out) {
  (void)F;
  Emitter E(G, Out);
  for (const Match &M : S.Matches)
    if (Error Err = E.emitMatch(M))
      return Err;
  return Error::success();
}
