//===- support/Timer.h - Wall-clock timing ---------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin steady-clock timing helpers used by the benchmark harness. The paper
/// reports hardware instruction/cycle counts; we substitute wall time plus
/// deterministic software work counters (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_TIMER_H
#define ODBURG_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace odburg {

/// Monotonic timestamp in nanoseconds.
inline std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Measures the wall time of a region; read with elapsedNs().
class Stopwatch {
public:
  Stopwatch() : Start(nowNs()) {}

  void restart() { Start = nowNs(); }

  std::uint64_t elapsedNs() const { return nowNs() - Start; }

  double elapsedMs() const { return static_cast<double>(elapsedNs()) / 1e6; }

private:
  std::uint64_t Start;
};

} // namespace odburg

#endif // ODBURG_SUPPORT_TIMER_H
