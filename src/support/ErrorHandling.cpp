//===- support/ErrorHandling.cpp - Fatal error reporting ------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace odburg;

void odburg::reportFatalError(const char *Reason) {
  std::fprintf(stderr, "odburg fatal error: %s\n", Reason);
  std::abort();
}

void odburg::unreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
