//===- support/Cost.h - Saturating rule-cost arithmetic -------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rule costs with an explicit infinity. Dynamic-cost hooks signal "rule not
/// applicable" by returning Cost::infinity(); addition saturates so a
/// derivation through an inapplicable rule can never look cheap.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_COST_H
#define ODBURG_SUPPORT_COST_H

#include <cassert>
#include <compare>
#include <cstdint>

namespace odburg {

/// A saturating cost value. The representation reserves the max value for
/// infinity; finite costs must stay below Cost::MaxFinite (asserted), which
/// is far beyond any realistic derivation cost.
class Cost {
public:
  using ValueType = std::uint32_t;
  static constexpr ValueType InfinityValue = 0xFFFFFFFFu;
  /// Finite costs saturate here; picked so that two addends below the bound
  /// cannot wrap around 32 bits.
  static constexpr ValueType MaxFinite = 0x3FFFFFFFu;

  constexpr Cost() : Value(InfinityValue) {}
  constexpr explicit Cost(ValueType V) : Value(V) {}

  static constexpr Cost infinity() { return Cost(InfinityValue); }
  static constexpr Cost zero() { return Cost(0); }

  constexpr bool isInfinite() const { return Value == InfinityValue; }
  constexpr bool isFinite() const { return Value != InfinityValue; }

  /// The raw value; only meaningful for finite costs.
  constexpr ValueType value() const {
    assert(isFinite() && "value() on infinite cost");
    return Value;
  }

  /// Raw representation including the infinity encoding (for hashing and
  /// normalized state vectors).
  constexpr ValueType raw() const { return Value; }

  friend constexpr Cost operator+(Cost A, Cost B) {
    if (A.isInfinite() || B.isInfinite())
      return infinity();
    ValueType Sum = A.Value + B.Value;
    if (Sum > MaxFinite)
      Sum = MaxFinite;
    return Cost(Sum);
  }

  Cost &operator+=(Cost B) {
    *this = *this + B;
    return *this;
  }

  /// Subtracts a finite delta; used for state normalization. Infinity stays
  /// infinity.
  friend constexpr Cost operator-(Cost A, Cost B) {
    if (A.isInfinite())
      return infinity();
    assert(B.isFinite() && A.Value >= B.Value && "invalid cost subtraction");
    return Cost(A.Value - B.Value);
  }

  friend constexpr bool operator==(Cost A, Cost B) = default;
  friend constexpr auto operator<=>(Cost A, Cost B) {
    return A.Value <=> B.Value;
  }

private:
  ValueType Value;
};

} // namespace odburg

#endif // ODBURG_SUPPORT_COST_H
