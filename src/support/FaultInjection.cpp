//===- support/FaultInjection.cpp - Deterministic fault-site registry -----===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/StringUtil.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace odburg {
namespace fault {

std::atomic<bool> detail::AnyArmed{false};

namespace {

enum Trigger : int { Off = 0, Nth, EveryK, Probability };

/// All state is atomic: configuration usually happens once at startup,
/// but tests reconfigure live and sites fire from many threads at once.
struct SiteState {
  std::atomic<int> Mode{Off};
  /// Nth: N. EveryK: K. Probability: P scaled to [0, 2^32].
  std::atomic<std::uint64_t> Param{0};
  std::atomic<std::uint64_t> Seed{0};
  std::atomic<std::uint64_t> Hits{0};
  std::atomic<std::uint64_t> Fired{0};
};

SiteState Sites[NumSites];
std::atomic<std::uint64_t> FiredTotal{0};

/// splitmix64 finalizer — the probability trigger's per-hit decision is a
/// pure function of (seed, hit index), so a seeded chaos run replays the
/// exact same fault sequence.
std::uint64_t mix(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

Expected<Site> parseSite(std::string_view Name) {
  for (unsigned I = 0; I < NumSites; ++I)
    if (Name == siteName(static_cast<Site>(I)))
      return static_cast<Site>(I);
  return Error::make(ErrorKind::MalformedInput,
                     "unknown fault site '" + std::string(Name) +
                         "' (known: socket-send, socket-recv, socket-accept, "
                         "service-submit, tables-load, state-compute, "
                         "registry-load, registry-evict)");
}

} // namespace

const char *siteName(Site S) {
  switch (S) {
  case Site::SocketSend:
    return "socket-send";
  case Site::SocketRecv:
    return "socket-recv";
  case Site::SocketAccept:
    return "socket-accept";
  case Site::ServiceSubmit:
    return "service-submit";
  case Site::TablesLoad:
    return "tables-load";
  case Site::StateCompute:
    return "state-compute";
  case Site::RegistryLoad:
    return "registry-load";
  case Site::RegistryEvict:
    return "registry-evict";
  }
  return "?";
}

bool detail::shouldFailSlow(Site S) {
  SiteState &St = Sites[static_cast<unsigned>(S)];
  int Mode = St.Mode.load(std::memory_order_relaxed);
  if (Mode == Off)
    return false;
  std::uint64_t Hit = St.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool Fire = false;
  switch (Mode) {
  case Nth:
    Fire = Hit == St.Param.load(std::memory_order_relaxed);
    break;
  case EveryK: {
    std::uint64_t K = St.Param.load(std::memory_order_relaxed);
    Fire = K != 0 && Hit % K == 0;
    break;
  }
  case Probability: {
    std::uint64_t R = mix(St.Seed.load(std::memory_order_relaxed) ^ Hit);
    Fire = (R >> 32) < St.Param.load(std::memory_order_relaxed);
    break;
  }
  default:
    break;
  }
  if (Fire) {
    St.Fired.fetch_add(1, std::memory_order_relaxed);
    FiredTotal.fetch_add(1, std::memory_order_relaxed);
  }
  return Fire;
}

Error configure(std::string_view Spec) {
  // Parse everything into a staging copy first so a bad spec leaves the
  // registry untouched.
  struct Staged {
    Site S;
    int Mode;
    std::uint64_t Param;
    std::uint64_t Seed;
  };
  std::vector<Staged> Parsed;
  for (std::string_view Part : split(Spec, ',')) {
    Part = trim(Part);
    if (Part.empty())
      continue;
    std::size_t Colon = Part.find(':');
    if (Colon == std::string_view::npos)
      return Error::make(ErrorKind::MalformedInput,
                         "fault spec '" + std::string(Part) +
                             "' is missing ':' (want site:trigger)");
    Expected<Site> S = parseSite(trim(Part.substr(0, Colon)));
    if (!S)
      return S.takeError();
    std::string_view T = trim(Part.substr(Colon + 1));
    Staged St{*S, Off, 0, 0};
    if (startsWith(T, "nth=") || startsWith(T, "every=")) {
      bool IsNth = startsWith(T, "nth=");
      unsigned N = 0;
      if (!parseUnsigned(T.substr(IsNth ? 4 : 6), N) || N == 0)
        return Error::make(ErrorKind::MalformedInput,
                           "fault trigger '" + std::string(T) +
                               "' needs a positive count");
      St.Mode = IsNth ? Nth : EveryK;
      St.Param = N;
    } else if (startsWith(T, "p=")) {
      std::string_view V = T.substr(2);
      St.Seed = 1;
      if (std::size_t At = V.find('@'); At != std::string_view::npos) {
        unsigned Seed = 0;
        if (!parseUnsigned(V.substr(At + 1), Seed))
          return Error::make(ErrorKind::MalformedInput,
                             "fault trigger '" + std::string(T) +
                                 "' has a malformed @seed");
        St.Seed = Seed;
        V = V.substr(0, At);
      }
      std::string Num(V);
      char *End = nullptr;
      double P = std::strtod(Num.c_str(), &End);
      if (Num.empty() || End != Num.c_str() + Num.size() || P < 0.0 ||
          P > 1.0)
        return Error::make(ErrorKind::MalformedInput,
                           "fault trigger '" + std::string(T) +
                               "' needs a probability in [0,1]");
      St.Mode = Probability;
      St.Param = static_cast<std::uint64_t>(P * 4294967296.0);
    } else {
      return Error::make(ErrorKind::MalformedInput,
                         "unknown fault trigger '" + std::string(T) +
                             "' (want nth=N, every=K, or p=P[@seed])");
    }
    Parsed.push_back(St);
  }

  for (const Staged &St : Parsed) {
    SiteState &Slot = Sites[static_cast<unsigned>(St.S)];
    Slot.Param.store(St.Param, std::memory_order_relaxed);
    Slot.Seed.store(St.Seed, std::memory_order_relaxed);
    Slot.Mode.store(St.Mode, std::memory_order_relaxed);
  }
  bool Any = false;
  for (const SiteState &S : Sites)
    Any = Any || S.Mode.load(std::memory_order_relaxed) != Off;
  detail::AnyArmed.store(Any, std::memory_order_release);
  return Error::success();
}

Error configureFromEnv(const char *Var) {
  const char *V = std::getenv(Var);
  if (!V || !*V)
    return Error::success();
  return configure(V);
}

void reset() {
  detail::AnyArmed.store(false, std::memory_order_relaxed);
  for (SiteState &S : Sites) {
    S.Mode.store(Off, std::memory_order_relaxed);
    S.Param.store(0, std::memory_order_relaxed);
    S.Seed.store(0, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
    S.Fired.store(0, std::memory_order_relaxed);
  }
  FiredTotal.store(0, std::memory_order_relaxed);
}

std::uint64_t hitCount(Site S) {
  return Sites[static_cast<unsigned>(S)].Hits.load(std::memory_order_relaxed);
}

std::uint64_t firedCount(Site S) {
  return Sites[static_cast<unsigned>(S)].Fired.load(std::memory_order_relaxed);
}

std::uint64_t firedTotal() {
  return FiredTotal.load(std::memory_order_relaxed);
}

void injectLatency() {
  std::this_thread::sleep_for(std::chrono::microseconds(200));
}

} // namespace fault
} // namespace odburg
