//===- support/ErrorHandling.h - Fatal error reporting --------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal (programmatic) error reporting. Recoverable errors use
/// support/Error.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_ERRORHANDLING_H
#define ODBURG_SUPPORT_ERRORHANDLING_H

namespace odburg {

/// Prints \p Reason to stderr and aborts. Use for invariant violations that
/// must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const char *Reason);

/// Internal implementation of the odburg_unreachable macro.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace odburg

/// Marks a point in control flow that must never be reached; prints \p MSG
/// and aborts if it is.
#define odburg_unreachable(MSG)                                               \
  ::odburg::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // ODBURG_SUPPORT_ERRORHANDLING_H
