//===- support/Compiler.h - Compiler abstraction macros ------------------===//
//
// Part of the odburg project, an implementation of instruction selection
// with on-demand tree-parsing automata (Ertl, Casey, Gregg; PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-portability macros used throughout the library.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_COMPILER_H
#define ODBURG_SUPPORT_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)
#define ODBURG_LIKELY(X) __builtin_expect(!!(X), 1)
#define ODBURG_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define ODBURG_NOINLINE __attribute__((noinline))
#define ODBURG_ALWAYS_INLINE inline __attribute__((always_inline))
/// Read-prefetch with high temporal locality — a pure heat hint; the
/// address need not be dereferenceable.
#define ODBURG_PREFETCH(ADDR) __builtin_prefetch((ADDR), 0, 3)
#else
#define ODBURG_LIKELY(X) (X)
#define ODBURG_UNLIKELY(X) (X)
#define ODBURG_NOINLINE
#define ODBURG_ALWAYS_INLINE inline
#define ODBURG_PREFETCH(ADDR) ((void)(ADDR))
#endif

#endif // ODBURG_SUPPORT_COMPILER_H
