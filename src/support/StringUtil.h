//===- support/StringUtil.h - String helpers -------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String utilities shared by the grammar parser, emitters and the bench
/// table printers.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_STRINGUTIL_H
#define ODBURG_SUPPORT_STRINGUTIL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace odburg {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep; empty pieces are kept.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Parses a non-empty all-digit string into \p Out; false on anything
/// else (sign, spaces, overflow past 2^32-1). The CLI-flag number parser
/// of odburg-run and odburg-serve.
bool parseUnsigned(std::string_view S, unsigned &Out);

/// Formats an integer with thin thousands separators ("1 234 567"), as used
/// in the paper's tables.
std::string formatThousands(std::uint64_t V);

/// Formats a double with \p Decimals digits after the point.
std::string formatFixed(double V, unsigned Decimals);

/// printf-style formatting into a std::string.
std::string formatf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace odburg

#endif // ODBURG_SUPPORT_STRINGUTIL_H
