//===- support/TablePrinter.cpp - Aligned text tables -----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>

using namespace odburg;

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), false});
}

void TablePrinter::addSeparator() { Rows.push_back({{}, true}); }

std::string TablePrinter::render() const {
  // Compute column widths across the header and all rows.
  std::vector<std::size_t> Widths;
  auto Widen = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (std::size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Widen(Header);
  for (const Row &R : Rows)
    Widen(R.Cells);

  std::string Out;
  if (!Title.empty()) {
    Out += Title;
    Out += '\n';
  }

  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      std::size_t Pad = Widths[I] - Cell.size();
      if (I == 0) {
        // Left-align the label column.
        Out += Cell;
        Out.append(Pad, ' ');
      } else {
        Out.append(Pad, ' ');
        Out += Cell;
      }
      Out += I + 1 == Widths.size() ? "" : "  ";
    }
    Out += '\n';
  };

  auto EmitSeparator = [&] {
    std::size_t Total = 0;
    for (std::size_t W : Widths)
      Total += W;
    if (!Widths.empty())
      Total += 2 * (Widths.size() - 1);
    Out.append(Total, '-');
    Out += '\n';
  };

  if (!Header.empty()) {
    EmitRow(Header);
    EmitSeparator();
  }
  for (const Row &R : Rows) {
    if (R.Separator)
      EmitSeparator();
    else
      EmitRow(R.Cells);
  }
  return Out;
}

void TablePrinter::print(std::FILE *Out) const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), Out);
  std::fflush(Out);
}
