//===- support/Error.h - Recoverable error handling -----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable errors, modeled on llvm::Error / llvm::Expected.
/// The library does not use exceptions; fallible operations (grammar
/// parsing, table generation) return Expected<T> or Error. Errors must be
/// consumed: destroying an unchecked error aborts (in assert builds), which
/// keeps failure paths honest.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_ERROR_H
#define ODBURG_SUPPORT_ERROR_H

#include "support/ErrorHandling.h"

#include <cassert>
#include <new>
#include <string>
#include <utility>

namespace odburg {

/// Machine-checkable failure categories. Most errors are Generic (the
/// message is the diagnostic); a few contracts are worth dispatching on in
/// code — e.g. a driver that falls back to the on-demand backend when the
/// offline generator reports UnsupportedDynamicCosts rather than treating
/// every failure the same.
enum class ErrorKind {
  Generic,
  /// The offline table generator (or a backend wrapping it) was given a
  /// grammar with dynamic-cost rules, which fixed tables cannot encode.
  UnsupportedDynamicCosts,
  /// Automaton/table generation exceeded its configured state bound.
  StateLimitExceeded,
  /// A backend name did not parse (CLI/config surface).
  UnknownBackend,
  /// External input (s-expression IR, serialized tables) failed to parse
  /// or validate. A streaming front end skips the offending unit and keeps
  /// serving; everything else about the stream stays intact.
  MalformedInput,
  /// A submission reached a CompileService after shutdown() stopped it
  /// from accepting work.
  ServiceShutdown,
  /// Work was refused because a resource limit is currently exceeded —
  /// the server's connection cap, a lane's queue high-watermark. Nothing
  /// was started; the request is safe to retry after backing off.
  ResourceExhausted,
  /// A queued submission sat past its deadline before a worker could
  /// start it. The result slot carries this diagnostic instead of output;
  /// later submissions are unaffected.
  DeadlineExceeded,
};

/// A recoverable error carrying a message and kind, or success. Move-only.
class [[nodiscard]] Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a Generic failure with \p Msg.
  static Error make(std::string Msg) {
    return make(ErrorKind::Generic, std::move(Msg));
  }

  /// Creates a failure of \p Kind with \p Msg.
  static Error make(ErrorKind Kind, std::string Msg) {
    Error E;
    E.Msg = std::move(Msg);
    E.Kind = Kind;
    E.Failed = true;
    return E;
  }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  Error(Error &&RHS) noexcept
      : Msg(std::move(RHS.Msg)), Kind(RHS.Kind), Failed(RHS.Failed),
        Checked(RHS.Checked) {
    RHS.Failed = false;
    RHS.Checked = true;
  }

  Error &operator=(Error &&RHS) noexcept {
    assertChecked();
    Msg = std::move(RHS.Msg);
    Kind = RHS.Kind;
    Failed = RHS.Failed;
    Checked = RHS.Checked;
    RHS.Failed = false;
    RHS.Checked = true;
    return *this;
  }

  ~Error() { assertChecked(); }

  /// True if this holds a failure. Marks the error as checked.
  explicit operator bool() {
    Checked = true;
    return Failed;
  }

  /// The failure message. Only valid when the error is a failure.
  const std::string &message() const {
    assert(Failed && "message() on success value");
    return Msg;
  }

  /// The failure kind. Only valid when the error is a failure.
  ErrorKind kind() const {
    assert(Failed && "kind() on success value");
    return Kind;
  }

  /// Consumes the error regardless of state (use when failure is ignorable).
  void consume() { Checked = true; }

private:
  Error() = default;

  void assertChecked() {
    if (!Checked && Failed)
      reportFatalError("unchecked odburg::Error dropped");
  }

  std::string Msg;
  ErrorKind Kind = ErrorKind::Generic;
  bool Failed = false;
  bool Checked = true;
};

/// Either a T or an Error. Check with operator bool before dereferencing.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : HasValue(true) { new (&Storage.Value) T(std::move(Value)); }

  Expected(Error E) : HasValue(false) {
    assert(static_cast<bool>(E) && "constructing Expected from success Error");
    new (&Storage.Err) std::string(E.message());
    EK = E.kind();
    E.consume();
  }

  Expected(const Expected &) = delete;
  Expected &operator=(const Expected &) = delete;

  Expected(Expected &&RHS) noexcept : EK(RHS.EK), HasValue(RHS.HasValue) {
    if (HasValue)
      new (&Storage.Value) T(std::move(RHS.Storage.Value));
    else
      new (&Storage.Err) std::string(std::move(RHS.Storage.Err));
  }

  ~Expected() {
    if (HasValue)
      Storage.Value.~T();
    else
      Storage.Err.~basic_string();
  }

  explicit operator bool() const { return HasValue; }

  T &operator*() {
    assert(HasValue && "dereferencing failed Expected");
    return Storage.Value;
  }
  const T &operator*() const {
    assert(HasValue && "dereferencing failed Expected");
    return Storage.Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// The failure message; only valid when !*this.
  const std::string &message() const {
    assert(!HasValue && "message() on successful Expected");
    return Storage.Err;
  }

  /// The failure kind; only valid when !*this.
  ErrorKind kind() const {
    assert(!HasValue && "kind() on successful Expected");
    return EK;
  }

  /// Converts the failure into an Error; only valid when !*this.
  Error takeError() const {
    assert(!HasValue && "takeError() on successful Expected");
    return Error::make(EK, Storage.Err);
  }

private:
  union StorageT {
    StorageT() {}
    ~StorageT() {}
    T Value;
    std::string Err;
  } Storage;
  ErrorKind EK = ErrorKind::Generic;
  bool HasValue;
};

/// Unwraps an Expected, aborting with its message on failure. For callers
/// (tests, examples) where failure is a bug.
template <typename T> T cantFail(Expected<T> E) {
  if (!E)
    reportFatalError(E.message().c_str());
  return std::move(*E);
}

/// Asserts success of an Error-returning call.
inline void cantFail(Error E) {
  if (E)
    reportFatalError(E.message().c_str());
}

} // namespace odburg

#endif // ODBURG_SUPPORT_ERROR_H
