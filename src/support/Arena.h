//===- support/Arena.h - Bump-pointer slab allocator ----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena. IR nodes, grammar patterns and automaton states are
/// allocated here: allocation is a pointer bump, and everything is released
/// at once when the arena dies. Destructors of allocated objects are NOT
/// run, so only trivially-destructible payloads (or externally owned ones)
/// belong in an arena.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_ARENA_H
#define ODBURG_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace odburg {

/// A slab-based bump allocator.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  Arena(Arena &&RHS) noexcept
      : Current(RHS.Current), Ptr(RHS.Ptr), End(RHS.End),
        BytesAllocated(RHS.BytesAllocated), NumSlabs(RHS.NumSlabs) {
    RHS.Current = nullptr;
    RHS.Ptr = RHS.End = nullptr;
    RHS.BytesAllocated = 0;
    RHS.NumSlabs = 0;
  }

  Arena &operator=(Arena &&RHS) noexcept {
    if (this == &RHS)
      return *this;
    this->~Arena();
    new (this) Arena(std::move(RHS));
    return *this;
  }

  ~Arena();

  /// Allocates \p Bytes bytes aligned to \p Alignment.
  void *allocate(std::size_t Bytes, std::size_t Alignment);

  /// Allocates and default-constructs a T. T must be trivially destructible
  /// (the arena never runs destructors).
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must not need destruction");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<ArgTs>(Args)...);
  }

  /// Allocates an uninitialized array of \p Count Ts.
  template <typename T> T *allocateArray(std::size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must not need destruction");
    return static_cast<T *>(allocate(sizeof(T) * Count, alignof(T)));
  }

  /// Copies \p Str (length \p Len, not necessarily NUL-terminated) into the
  /// arena and returns a NUL-terminated copy.
  const char *copyString(const char *Str, std::size_t Len);

  /// Discards every allocation but keeps the newest slab for reuse, so a
  /// per-iteration arena (e.g. one function's SoA labeling scratch)
  /// reaches a steady state with zero malloc traffic. All previously
  /// returned pointers are invalidated.
  void reset();

  /// Total bytes obtained from malloc (capacity, not live data).
  std::size_t bytesAllocated() const { return BytesAllocated; }

  /// Number of slabs allocated so far.
  unsigned numSlabs() const { return NumSlabs; }

private:
  struct Slab {
    Slab *Prev;
    std::size_t Size;
    // Payload follows the header.
  };

  void newSlab(std::size_t MinBytes);

  static constexpr std::size_t SlabSize = 64 * 1024;

  Slab *Current = nullptr;
  char *Ptr = nullptr;
  char *End = nullptr;
  std::size_t BytesAllocated = 0;
  unsigned NumSlabs = 0;
};

} // namespace odburg

#endif // ODBURG_SUPPORT_ARENA_H
