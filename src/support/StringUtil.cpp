//===- support/StringUtil.cpp - String helpers -----------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdarg>
#include <cstdio>

using namespace odburg;

std::string_view odburg::trim(std::string_view S) {
  const char *WS = " \t\r\n";
  std::size_t B = S.find_first_not_of(WS);
  if (B == std::string_view::npos)
    return {};
  std::size_t E = S.find_last_not_of(WS);
  return S.substr(B, E - B + 1);
}

std::vector<std::string_view> odburg::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  std::size_t Pos = 0;
  while (true) {
    std::size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Parts.push_back(S.substr(Pos));
      return Parts;
    }
    Parts.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

bool odburg::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string odburg::formatThousands(std::uint64_t V) {
  std::string Digits = std::to_string(V);
  std::string Out;
  Out.reserve(Digits.size() + Digits.size() / 3);
  unsigned Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (std::size_t I = 0; I < Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Out.push_back(' ');
    Out.push_back(Digits[I]);
  }
  return Out;
}

std::string odburg::formatFixed(double V, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Decimals), V);
  return Buf;
}

std::string odburg::formatf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out(static_cast<std::size_t>(Len), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

bool odburg::parseUnsigned(std::string_view S, unsigned &Out) {
  if (S.empty())
    return false;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
    if (V > 0xFFFFFFFFul)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}
