//===- support/TablePrinter.h - Aligned text tables -------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints paper-style aligned text tables. Every bench binary regenerating a
/// table of the evaluation uses this so the output is uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_TABLEPRINTER_H
#define ODBURG_SUPPORT_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace odburg {

/// Collects rows of string cells and prints them column-aligned.
class TablePrinter {
public:
  /// \p Title is printed above the table; may be empty.
  explicit TablePrinter(std::string Title) : Title(std::move(Title)) {}

  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Inserts a horizontal separator before the next row.
  void addSeparator();

  /// Renders the table to a string (right-aligned cells except column 0).
  std::string render() const;

  /// Renders and writes to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  /// \name Machine-readable access (bench --json re-emission)
  /// @{
  const std::string &title() const { return Title; }
  const std::vector<std::string> &header() const { return Header; }
  /// All data rows' cells, in insertion order (separators are a rendering
  /// detail and do not appear).
  std::vector<std::vector<std::string>> dataRows() const {
    std::vector<std::vector<std::string>> Out;
    Out.reserve(Rows.size());
    for (const Row &R : Rows)
      Out.push_back(R.Cells);
    return Out;
  }
  /// @}

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  std::string Title;
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace odburg

#endif // ODBURG_SUPPORT_TABLEPRINTER_H
