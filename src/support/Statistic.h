//===- support/Statistic.h - Selection work counters -----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic software counters for the work the selectors perform. The
/// PLDI'06 evaluation uses hardware performance counters; these counters are
/// the software analogue: they count exactly the operations whose number the
/// competing algorithms trade off (rule checks, chain relaxations, hash
/// probes, state computations).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_STATISTIC_H
#define ODBURG_SUPPORT_STATISTIC_H

#include <cstdint>

namespace odburg {

/// Work counters shared by all labeling engines. Engines bump only the
/// counters meaningful for them; the rest stay zero.
struct SelectionStats {
  /// Nodes labeled.
  std::uint64_t NodesLabeled = 0;
  /// Base-rule applicability checks performed (DP labeler work).
  std::uint64_t RuleChecks = 0;
  /// Chain-rule relaxation steps performed.
  std::uint64_t ChainRelaxations = 0;
  /// Transition-cache probes (on-demand automaton fast path). With a
  /// per-worker L1 micro-cache in front, only L1 misses reach the shared
  /// cache, so CacheProbes == L1Probes - L1Hits + uncacheable probes.
  std::uint64_t CacheProbes = 0;
  /// Transition-cache hits.
  std::uint64_t CacheHits = 0;
  /// Per-worker L1 micro-cache probes (zero when labeling without one).
  std::uint64_t L1Probes = 0;
  /// Per-worker L1 micro-cache hits; each saves one seqlock probe of the
  /// shared transition cache.
  std::uint64_t L1Hits = 0;
  /// Dense-row tier probes (on-demand automaton; eligible operators on an
  /// L1 miss). With the dense tier in front of the shared cache,
  /// CacheProbes == NodesLabeled - L1Hits - DenseHits.
  std::uint64_t DenseProbes = 0;
  /// Dense-row tier hits; each resolves a transition by direct array
  /// indexing (offline-table style) instead of a hashed seqlock probe.
  std::uint64_t DenseHits = 0;
  /// States computed from scratch (on-demand slow path / offline generator).
  std::uint64_t StatesComputed = 0;
  /// Dynamic-cost hook evaluations.
  std::uint64_t DynCostEvals = 0;
  /// Dense-table lookups (offline labeler fast path).
  std::uint64_t TableLookups = 0;
  /// Hybrid backend: nodes resolved by direct offline-partition table
  /// indexing, skipping key construction and every warm-path tier.
  std::uint64_t OfflineHits = 0;

  void reset() { *this = SelectionStats(); }

  SelectionStats &operator+=(const SelectionStats &R) {
    NodesLabeled += R.NodesLabeled;
    RuleChecks += R.RuleChecks;
    ChainRelaxations += R.ChainRelaxations;
    CacheProbes += R.CacheProbes;
    CacheHits += R.CacheHits;
    L1Probes += R.L1Probes;
    L1Hits += R.L1Hits;
    DenseProbes += R.DenseProbes;
    DenseHits += R.DenseHits;
    StatesComputed += R.StatesComputed;
    DynCostEvals += R.DynCostEvals;
    TableLookups += R.TableLookups;
    OfflineHits += R.OfflineHits;
    return *this;
  }

  /// Total per-node "work units": the sum of all counted operations. A
  /// software stand-in for the executed-instructions metric of the paper.
  std::uint64_t workUnits() const {
    return RuleChecks + ChainRelaxations + CacheProbes + L1Probes +
           DenseProbes + StatesComputed + DynCostEvals + TableLookups +
           OfflineHits;
  }
};

} // namespace odburg

#endif // ODBURG_SUPPORT_STATISTIC_H
