//===- support/Arena.cpp - Bump-pointer slab allocator --------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include "support/ErrorHandling.h"

#include <cstdlib>
#include <cstring>

using namespace odburg;

Arena::~Arena() {
  Slab *S = Current;
  while (S) {
    Slab *Prev = S->Prev;
    std::free(S);
    S = Prev;
  }
}

void Arena::newSlab(std::size_t MinBytes) {
  std::size_t PayloadBytes = SlabSize - sizeof(Slab);
  if (MinBytes > PayloadBytes)
    PayloadBytes = MinBytes;
  std::size_t Total = sizeof(Slab) + PayloadBytes;
  Slab *S = static_cast<Slab *>(std::malloc(Total));
  if (!S)
    reportFatalError("arena slab allocation failed");
  S->Prev = Current;
  S->Size = Total;
  Current = S;
  Ptr = reinterpret_cast<char *>(S) + sizeof(Slab);
  End = reinterpret_cast<char *>(S) + Total;
  BytesAllocated += Total;
  ++NumSlabs;
}

void *Arena::allocate(std::size_t Bytes, std::size_t Alignment) {
  // Align the bump pointer. Alignment is a power of two.
  std::uintptr_t P = reinterpret_cast<std::uintptr_t>(Ptr);
  std::uintptr_t Aligned = (P + Alignment - 1) & ~(Alignment - 1);
  std::size_t Padding = Aligned - P;
  if (!Current || Ptr + Padding + Bytes > End) {
    // A fresh slab payload is maximally aligned, so no padding is needed.
    newSlab(Bytes + Alignment);
    P = reinterpret_cast<std::uintptr_t>(Ptr);
    Aligned = (P + Alignment - 1) & ~(Alignment - 1);
    Padding = Aligned - P;
  }
  char *Result = Ptr + Padding;
  Ptr = Result + Bytes;
  return Result;
}

void Arena::reset() {
  if (!Current)
    return;
  // Free every slab but the newest (largest, in the common growth
  // pattern) and rewind its bump pointer.
  Slab *S = Current->Prev;
  while (S) {
    Slab *Prev = S->Prev;
    BytesAllocated -= S->Size;
    --NumSlabs;
    std::free(S);
    S = Prev;
  }
  Current->Prev = nullptr;
  Ptr = reinterpret_cast<char *>(Current) + sizeof(Slab);
  End = reinterpret_cast<char *>(Current) + Current->Size;
}

const char *Arena::copyString(const char *Str, std::size_t Len) {
  char *Mem = static_cast<char *>(allocate(Len + 1, 1));
  std::memcpy(Mem, Str, Len);
  Mem[Len] = '\0';
  return Mem;
}
