//===- support/FaultInjection.h - Deterministic fault-site registry -------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named fault sites for rehearsing failures
/// the serving stack must survive: transport errors, admission rejection,
/// table-load corruption, slow state computation. Production code plants
/// a site with one shouldFail(Site) call on its failure path; chaos runs
/// arm sites with deterministic triggers via the ODBURG_FAULTS
/// environment variable (or configure() from a CLI flag):
///
///   ODBURG_FAULTS=site:trigger[,site:trigger...]
///
///   sites     socket-send | socket-recv | socket-accept |
///             service-submit | tables-load | state-compute |
///             registry-load | registry-evict
///   triggers  nth=N     fire exactly once, on the Nth hit (1-based)
///             every=K   fire on every Kth hit
///             p=P[@S]   fire with probability P in [0,1], decided by a
///                       deterministic hash of (seed S, hit index) — the
///                       same seed replays the same fault sequence
///
/// Cost discipline: with nothing armed, shouldFail() is a single relaxed
/// atomic load and a predictable branch — cheap enough to leave compiled
/// into release hot paths. Armed or not, all bookkeeping is atomic, so
/// sites in concurrent code stay TSan-clean.
///
/// What a firing site *does* is the call site's business: the socket
/// sites fail the I/O, the submit site rejects with
/// ErrorKind::ResourceExhausted, the state-compute site injects latency
/// (injectLatency()) rather than failing — slowness is the fault being
/// rehearsed there.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_FAULTINJECTION_H
#define ODBURG_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <string_view>

namespace odburg {
namespace fault {

/// The registered fault sites. Keep NumSites and siteName() in sync.
enum class Site : unsigned {
  SocketSend,     ///< Socket::writeAll reports a transport failure.
  SocketRecv,     ///< Socket::readSome reports a transport failure.
  SocketAccept,   ///< Socket::accept fails (the accept loop backs off).
  ServiceSubmit,  ///< CompileService submission rejected ResourceExhausted.
  TablesLoad,     ///< CompiledTables::load fails MalformedInput.
  StateCompute,   ///< StateComputer gains injected latency.
  RegistryLoad,   ///< GrammarRegistry spool/snapshot load fails (cold start).
  RegistryEvict,  ///< GrammarRegistry eviction fires regardless of budget.
};
inline constexpr unsigned NumSites = 8;

/// The spec-grammar name of \p S ("socket-send", ...).
const char *siteName(Site S);

namespace detail {
/// True iff any site has a trigger configured; the fast path's only load.
extern std::atomic<bool> AnyArmed;
bool shouldFailSlow(Site S);
} // namespace detail

/// True when the armed trigger for \p S fires on this hit. One relaxed
/// atomic load when no site is armed anywhere in the process.
inline bool shouldFail(Site S) {
  if (!detail::AnyArmed.load(std::memory_order_relaxed))
    return false;
  return detail::shouldFailSlow(S);
}

/// Parses and installs a spec (see file comment); replaces the triggers
/// of the sites it names and leaves others untouched. Fails typed
/// (MalformedInput) on an unknown site or trigger, leaving the registry
/// unchanged.
Error configure(std::string_view Spec);

/// configure()s from the environment variable \p Var (default
/// ODBURG_FAULTS). An unset or empty variable is success with nothing
/// armed.
Error configureFromEnv(const char *Var = "ODBURG_FAULTS");

/// Disarms every site and zeroes all counters (tests).
void reset();

/// Times the armed trigger of \p S was consulted / fired.
std::uint64_t hitCount(Site S);
std::uint64_t firedCount(Site S);
/// Lifetime fired count across all sites — the STATS "faultsInjected"
/// counter.
std::uint64_t firedTotal();

/// The latency payload for delay-style sites (state-compute): sleeps a
/// fixed few hundred microseconds — enough to overwhelm a millisecond
/// deadline under load, small enough to keep chaos runs fast.
void injectLatency();

} // namespace fault
} // namespace odburg

#endif // ODBURG_SUPPORT_FAULTINJECTION_H
