//===- support/Hashing.h - Hash combinators --------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple, fast hash combinators. The transition cache of the on-demand
/// automaton hashes small integer tuples on the hot path, so these are kept
/// branch-free and inlineable (a 64-bit mix derived from splitmix64).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_HASHING_H
#define ODBURG_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace odburg {

/// Finalizing 64-bit mixer (splitmix64's finalizer).
inline std::uint64_t hashMix(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Folds \p Value into the running hash \p Seed.
inline std::uint64_t hashCombine(std::uint64_t Seed, std::uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// Hashes a contiguous range of integral values.
template <typename T>
std::uint64_t hashRange(const T *First, const T *Last,
                        std::uint64_t Seed = 0x5bd1e995u) {
  std::uint64_t H = Seed;
  for (; First != Last; ++First)
    H = hashCombine(H, static_cast<std::uint64_t>(*First));
  return H;
}

/// FNV-1a over bytes; fine for identifier-sized strings.
inline std::uint64_t hashString(std::string_view S) {
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace odburg

#endif // ODBURG_SUPPORT_HASHING_H
