//===- support/Error.cpp - Recoverable error handling ---------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
// Error and Expected are header-only; this file anchors the library.

#include "support/Error.h"
