//===- support/RNG.h - Deterministic random number generation -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64) for workload generation.
/// std::mt19937 output is standardized, but distributions are not; we need
/// bit-for-bit reproducible workloads across platforms, so all sampling goes
/// through this class.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_RNG_H
#define ODBURG_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace odburg {

/// splitmix64-based deterministic PRNG.
class RNG {
public:
  explicit RNG(std::uint64_t Seed) : State(Seed) {}

  /// The next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0)");
    // Multiply-shift rejection-free mapping; bias is negligible for our
    // bounds (all far below 2^32) and determinism is what matters.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform value in [Lo, Hi] inclusive.
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability \p Num / \p Den.
  bool chance(std::uint64_t Num, std::uint64_t Den) {
    return nextBelow(Den) < Num;
  }

private:
  std::uint64_t State;
};

} // namespace odburg

#endif // ODBURG_SUPPORT_RNG_H
