//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A class hierarchy opts in by giving
/// the base class a kind discriminator and each derived class a static
/// `classof(const Base *)`. Used by the MiniC AST.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_CASTING_H
#define ODBURG_SUPPORT_CASTING_H

#include <cassert>

namespace odburg {

/// True if \p V is an instance of To (or a subclass). \p V must be non-null.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

/// Checked downcast (const).
template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast: returns null if \p V is not a To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

/// Checking downcast (const).
template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace odburg

#endif // ODBURG_SUPPORT_CASTING_H
