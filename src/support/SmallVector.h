//===- support/SmallVector.h - Small-size-optimized vector ----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for its first N elements, in the spirit of
/// llvm::SmallVector. Instruction selection allocates many tiny child/cost
/// arrays on hot paths; keeping them out of the heap matters.
///
/// SmallVectorImpl<T> is the size-erased base class; pass it by reference in
/// APIs so callers can pick their own inline capacity.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SUPPORT_SMALLVECTOR_H
#define ODBURG_SUPPORT_SMALLVECTOR_H

#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace odburg {

/// Size-erased interface to a SmallVector. Holds the data pointer, size and
/// capacity; derived classes provide the inline buffer.
template <typename T> class SmallVectorImpl {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using size_type = unsigned;

  SmallVectorImpl(const SmallVectorImpl &) = delete;

  iterator begin() { return Data; }
  const_iterator begin() const { return Data; }
  iterator end() { return Data + Size; }
  const_iterator end() const { return Data + Size; }

  size_type size() const { return Size; }
  size_type capacity() const { return Capacity; }
  bool empty() const { return Size == 0; }

  T &operator[](size_type I) {
    assert(I < Size && "SmallVector index out of range");
    return Data[I];
  }
  const T &operator[](size_type I) const {
    assert(I < Size && "SmallVector index out of range");
    return Data[I];
  }

  T &front() {
    assert(!empty() && "front() on empty SmallVector");
    return Data[0];
  }
  const T &front() const {
    assert(!empty() && "front() on empty SmallVector");
    return Data[0];
  }
  T &back() {
    assert(!empty() && "back() on empty SmallVector");
    return Data[Size - 1];
  }
  const T &back() const {
    assert(!empty() && "back() on empty SmallVector");
    return Data[Size - 1];
  }

  T *data() { return Data; }
  const T *data() const { return Data; }

  void push_back(const T &V) {
    if (ODBURG_UNLIKELY(Size == Capacity))
      grow(Size + 1);
    new (Data + Size) T(V);
    ++Size;
  }

  void push_back(T &&V) {
    if (ODBURG_UNLIKELY(Size == Capacity))
      grow(Size + 1);
    new (Data + Size) T(std::move(V));
    ++Size;
  }

  template <typename... ArgTs> T &emplace_back(ArgTs &&...Args) {
    if (ODBURG_UNLIKELY(Size == Capacity))
      grow(Size + 1);
    T *Slot = new (Data + Size) T(std::forward<ArgTs>(Args)...);
    ++Size;
    return *Slot;
  }

  void pop_back() {
    assert(!empty() && "pop_back() on empty SmallVector");
    --Size;
    Data[Size].~T();
  }

  /// Removes all elements; keeps the current allocation.
  void clear() {
    destroyRange(Data, Data + Size);
    Size = 0;
  }

  void reserve(size_type N) {
    if (N > Capacity)
      grow(N);
  }

  /// Grows or shrinks to exactly \p N elements; new elements are
  /// value-initialized.
  void resize(size_type N) {
    if (N < Size) {
      destroyRange(Data + N, Data + Size);
      Size = N;
      return;
    }
    reserve(N);
    for (; Size < N; ++Size)
      new (Data + Size) T();
  }

  /// Grows or shrinks to exactly \p N elements; new elements are copies of
  /// \p V.
  void resize(size_type N, const T &V) {
    if (N < Size) {
      destroyRange(Data + N, Data + Size);
      Size = N;
      return;
    }
    reserve(N);
    for (; Size < N; ++Size)
      new (Data + Size) T(V);
  }

  /// Sets the contents to \p N copies of \p V.
  void assign(size_type N, const T &V) {
    clear();
    reserve(N);
    for (; Size < N; ++Size)
      new (Data + Size) T(V);
  }

  template <typename ItT>
    requires(!std::is_integral_v<ItT>)
  void assign(ItT First, ItT Last) {
    clear();
    append(First, Last);
  }

  template <typename ItT>
    requires(!std::is_integral_v<ItT>)
  void append(ItT First, ItT Last) {
    size_type N = static_cast<size_type>(std::distance(First, Last));
    reserve(Size + N);
    for (; First != Last; ++First) {
      new (Data + Size) T(*First);
      ++Size;
    }
  }

  /// Removes the element at \p Pos, shifting later elements down.
  iterator erase(iterator Pos) {
    assert(Pos >= begin() && Pos < end() && "erase() out of range");
    std::move(Pos + 1, end(), Pos);
    pop_back();
    return Pos;
  }

  SmallVectorImpl &operator=(const SmallVectorImpl &RHS) {
    if (this == &RHS)
      return *this;
    assign(RHS.begin(), RHS.end());
    return *this;
  }

  bool operator==(const SmallVectorImpl &RHS) const {
    return Size == RHS.Size && std::equal(begin(), end(), RHS.begin());
  }

protected:
  SmallVectorImpl(T *InlineData, size_type InlineCapacity)
      : Data(InlineData), Capacity(InlineCapacity) {}

  ~SmallVectorImpl() {
    destroyRange(Data, Data + Size);
    if (!isInline())
      freeHeapBuffer(Data);
  }

  /// Frees a spilled heap buffer. Kept out-of-line of the callers'
  /// `isInline()` checks so GCC's -Wfree-nonheap-object heuristic (a known
  /// false positive with inline-storage vectors) does not fire.
  static void freeHeapBuffer(T *P) {
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif
    std::free(P);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  }

  bool isInline() const {
    return Data == reinterpret_cast<const T *>(
                       reinterpret_cast<const char *>(this) +
                       sizeof(SmallVectorImpl));
  }

  void destroyRange(T *First, T *Last) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (; First != Last; ++First)
        First->~T();
  }

  ODBURG_NOINLINE void grow(size_type MinCapacity) {
    size_type NewCapacity = std::max<size_type>(Capacity * 2, 4);
    NewCapacity = std::max(NewCapacity, MinCapacity);
    T *NewData = static_cast<T *>(std::malloc(sizeof(T) * NewCapacity));
    if (!NewData)
      std::abort();
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (Size)
        std::memcpy(static_cast<void *>(NewData), Data, sizeof(T) * Size);
    } else {
      std::uninitialized_move(Data, Data + Size, NewData);
      destroyRange(Data, Data + Size);
    }
    if (!isInline())
      freeHeapBuffer(Data);
    Data = NewData;
    Capacity = NewCapacity;
  }

  T *Data;
  size_type Size = 0;
  size_type Capacity;
};

/// A vector storing up to \p N elements inline before spilling to the heap.
template <typename T, unsigned N> class SmallVector : public SmallVectorImpl<T> {
  static_assert(N > 0, "SmallVector requires a nonzero inline capacity");

public:
  SmallVector() : SmallVectorImpl<T>(inlineBuffer(), N) {}

  explicit SmallVector(unsigned Count) : SmallVector() { this->resize(Count); }

  SmallVector(unsigned Count, const T &V) : SmallVector() {
    this->assign(Count, V);
  }

  SmallVector(std::initializer_list<T> IL) : SmallVector() {
    this->append(IL.begin(), IL.end());
  }

  template <typename ItT>
    requires(!std::is_integral_v<ItT>)
  SmallVector(ItT First, ItT Last) : SmallVector() {
    this->append(First, Last);
  }

  SmallVector(const SmallVector &RHS) : SmallVector() {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(const SmallVectorImpl<T> &RHS) : SmallVector() {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(SmallVector &&RHS) : SmallVector() { stealFrom(RHS); }

  SmallVector &operator=(const SmallVector &RHS) {
    SmallVectorImpl<T>::operator=(RHS);
    return *this;
  }

  SmallVector &operator=(const SmallVectorImpl<T> &RHS) {
    SmallVectorImpl<T>::operator=(RHS);
    return *this;
  }

  SmallVector &operator=(SmallVector &&RHS) {
    if (this == &RHS)
      return *this;
    this->clear();
    stealFrom(RHS);
    return *this;
  }

private:
  T *inlineBuffer() { return reinterpret_cast<T *>(Storage); }

  /// Takes RHS's heap buffer if it has one; copies element-wise otherwise.
  void stealFrom(SmallVector &RHS) {
    if (RHS.isInline()) {
      this->reserve(RHS.size());
      std::uninitialized_move(RHS.begin(), RHS.end(), this->begin());
      this->Size = RHS.Size;
      RHS.clear();
      return;
    }
    if (!this->isInline())
      this->freeHeapBuffer(this->Data);
    this->Data = RHS.Data;
    this->Size = RHS.Size;
    this->Capacity = RHS.Capacity;
    RHS.Data = RHS.inlineBuffer();
    RHS.Size = 0;
    RHS.Capacity = N;
  }

  alignas(T) char Storage[sizeof(T) * N];
};

} // namespace odburg

#endif // ODBURG_SUPPORT_SMALLVECTOR_H
