//===- workload/Corpus.h - Built-in MiniC benchmark corpus ------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC benchmark corpus: the small-kernel programs the CACAO-style
/// evaluation uses (Fact, Permut, Sqrt, PiSpigot, BoyerMoore, MatAdd,
/// MatMult, …), written in MiniC and compiled to IR on demand.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_WORKLOAD_CORPUS_H
#define ODBURG_WORKLOAD_CORPUS_H

#include "ir/Node.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace odburg {

class Grammar;

namespace workload {

/// One corpus entry.
struct CorpusProgram {
  std::string Name;
  std::string Description;
  const char *Source; ///< MiniC text.
};

/// All built-in programs, in evaluation order.
const std::vector<CorpusProgram> &corpus();

/// Finds a program by name; null if absent.
const CorpusProgram *findCorpusProgram(std::string_view Name);

/// Compiles a corpus program against \p G (via the MiniC frontend).
Expected<ir::IRFunction> compileCorpusProgram(const CorpusProgram &P,
                                              const Grammar &G);

} // namespace workload
} // namespace odburg

#endif // ODBURG_WORKLOAD_CORPUS_H
