//===- workload/Synthetic.h - SPEC-like synthetic IR workloads --------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic IR generation standing in for compiling SPEC
/// CPU2000 with lcc (which we cannot do — see DESIGN.md substitutions).
/// What matters to labeling cost is the *stream of operators and shapes*
/// the selector sees, so each named profile fixes an operator mix, tree
/// shapes, constant ranges (which drive the immediate-range dynamic
/// costs), and an address-reuse rate (which drives memop/RMW
/// applicability). Profiles are seeded, so every run and every engine sees
/// bit-identical input.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_WORKLOAD_SYNTHETIC_H
#define ODBURG_WORKLOAD_SYNTHETIC_H

#include "ir/Node.h"
#include "support/Error.h"
#include "support/RNG.h"
#include "targets/Target.h"

#include <string>
#include <vector>

namespace odburg {
namespace workload {

/// Tunables of one synthetic workload.
struct Profile {
  std::string Name;
  /// Approximate total IR nodes to generate.
  unsigned TargetNodes = 10000;
  /// RNG seed (fixed per profile for reproducibility).
  std::uint64_t Seed = 1;
  /// Average value-tree height (expression complexity).
  unsigned ExprDepth = 4;
  /// Percent of statements that are stores of the form x = x op e with
  /// matching addresses (read-modify-write opportunities).
  unsigned RmwPercent = 20;
  /// Percent of constants that are small (fit the narrowest immediate).
  unsigned SmallConstPercent = 80;
  /// Percent of leaves that are memory loads (vs. constants/registers).
  unsigned LoadPercent = 40;
  /// Percent of statements that are compare-and-branch.
  unsigned BranchPercent = 15;
  /// Relative weights of arithmetic operators
  /// {Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr}.
  std::vector<unsigned> OpWeights = {40, 15, 8, 2, 8, 8, 5, 7, 7};
};

/// The built-in SPEC CPU2000-flavored profiles (gzip-like, gcc-like, …).
const std::vector<Profile> &specProfiles();

/// Finds a profile by name; null if absent.
const Profile *findProfile(std::string_view Name);

/// Generates one function of statement roots according to \p P, using the
/// canonical operators of \p G.
Expected<ir::IRFunction> generate(const Profile &P, const Grammar &G);

/// Generates a corpus of \p Count functions for \p P against \p G, one per
/// seed P.Seed, P.Seed+1, …. \p TargetNodes overrides the profile's size
/// per function when nonzero (batch drivers want many smaller functions
/// rather than one big one). Deterministic like generate().
Expected<std::vector<ir::IRFunction>>
generateBatch(const Profile &P, const Grammar &G, unsigned Count,
              unsigned TargetNodes = 0);

/// Builds a random subject tree of roughly \p Budget nodes over the
/// operators of an arbitrary grammar (used with grammar/Synthesize.h for
/// the scaling experiment and grammar-fuzzing property tests). Returns
/// the root; the caller decides whether to add it as a function root.
ir::Node *synthesizeTree(const Grammar &G, ir::IRFunction &F, RNG &Rand,
                         unsigned Budget);

} // namespace workload
} // namespace odburg

#endif // ODBURG_WORKLOAD_SYNTHETIC_H
