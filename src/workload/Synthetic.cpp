//===- workload/Synthetic.cpp - SPEC-like synthetic IR workloads ------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "workload/Synthetic.h"

#include "support/RNG.h"

using namespace odburg;
using namespace odburg::workload;
using odburg::targets::CanonicalOps;

namespace {

/// Statement-stream generator for one profile.
class Generator {
public:
  Generator(const Profile &P, const CanonicalOps &Ops, ir::IRFunction &F)
      : P(P), Ops(Ops), F(F), Rand(P.Seed) {}

  void run() {
    while (F.size() < P.TargetNodes) {
      unsigned Kind = static_cast<unsigned>(Rand.nextBelow(100));
      if (Kind < P.BranchPercent)
        genBranch();
      else if (Kind < P.BranchPercent + 5)
        genLabelOrJump();
      else
        genStore();
    }
    // Every function ends with a return.
    SmallVector<ir::Node *, 1> C{genValue(P.ExprDepth)};
    F.addRoot(F.makeNode(Ops.Ret, C));
  }

private:
  std::int64_t genConstValue() {
    if (Rand.chance(P.SmallConstPercent, 100))
      return Rand.nextInRange(0, 100);
    // Large constants exercise the immediate-range hooks: beyond imm8 for
    // sure, often beyond imm13/imm16, sometimes beyond imm32.
    if (Rand.chance(1, 10))
      return Rand.nextInRange(std::int64_t(1) << 33, std::int64_t(1) << 34);
    return Rand.nextInRange(1 << 14, 1 << 20);
  }

  ir::Node *genAddress() {
    // Frame slots dominate; occasionally a global or computed address.
    unsigned Kind = static_cast<unsigned>(Rand.nextBelow(10));
    if (Kind < 6)
      return F.makeLeaf(Ops.AddrL, 8 * Rand.nextInRange(0, 63));
    if (Kind < 8)
      return F.makeLeaf(Ops.AddrG, 8 * Rand.nextInRange(0, 31));
    // base + index*8: the scaled-addressing pattern.
    ir::Node *Base = F.makeLeaf(Ops.Reg, Rand.nextInRange(0, 7));
    ir::Node *Index = F.makeLeaf(Ops.Reg, Rand.nextInRange(0, 7));
    ir::Node *Three = F.makeLeaf(Ops.Const, 3);
    SmallVector<ir::Node *, 2> ShC{Index, Three};
    ir::Node *Scaled = F.makeNode(Ops.Shl, ShC);
    SmallVector<ir::Node *, 2> AddC{Base, Scaled};
    return F.makeNode(Ops.Add, AddC);
  }

  ir::Node *genLeaf() {
    unsigned Kind = static_cast<unsigned>(Rand.nextBelow(100));
    if (Kind < P.LoadPercent) {
      SmallVector<ir::Node *, 1> C{genAddress()};
      return F.makeNode(Ops.Load, C);
    }
    if (Kind < P.LoadPercent + 30)
      return F.makeLeaf(Ops.Const, genConstValue());
    return F.makeLeaf(Ops.Reg, Rand.nextInRange(0, 11));
  }

  OperatorId pickArithOp() {
    static const std::size_t NumOps = 9;
    OperatorId Table[NumOps] = {Ops.Add, Ops.Sub, Ops.Mul,
                                Ops.Div, Ops.And, Ops.Or,
                                Ops.Xor, Ops.Shl, Ops.Shr};
    unsigned Total = 0;
    for (std::size_t I = 0; I < NumOps; ++I)
      Total += P.OpWeights[I];
    unsigned Pick = static_cast<unsigned>(Rand.nextBelow(Total));
    for (std::size_t I = 0; I < NumOps; ++I) {
      if (Pick < P.OpWeights[I])
        return Table[I];
      Pick -= P.OpWeights[I];
    }
    return Ops.Add;
  }

  ir::Node *genValue(unsigned Depth) {
    if (Depth == 0 || Rand.chance(1, 4))
      return genLeaf();
    if (Rand.chance(1, 10)) {
      SmallVector<ir::Node *, 1> C{genValue(Depth - 1)};
      return F.makeNode(Rand.chance(1, 2) ? Ops.Neg : Ops.Com, C);
    }
    OperatorId Op = pickArithOp();
    ir::Node *L = genValue(Depth - 1);
    ir::Node *R;
    if ((Op == Ops.Shl || Op == Ops.Shr) && Rand.chance(3, 4))
      R = F.makeLeaf(Ops.Const, Rand.nextInRange(1, 7));
    else
      R = genValue(Depth - 1);
    SmallVector<ir::Node *, 2> C{L, R};
    return F.makeNode(Op, C);
  }

  /// Clones an address subtree so that a read-modify-write store uses two
  /// structurally equal (but distinct) trees, like lcc's split trees.
  ir::Node *cloneAddress(const ir::Node *A) {
    if (A->numChildren() == 0)
      return F.makeLeaf(A->op(), A->value(), A->symbol());
    SmallVector<ir::Node *, 2> C;
    for (unsigned I = 0; I < A->numChildren(); ++I)
      C.push_back(cloneAddress(A->child(I)));
    return F.makeNode(A->op(), C, A->value(), A->symbol());
  }

  void genStore() {
    ir::Node *Addr = genAddress();
    ir::Node *Value;
    if (Rand.chance(P.RmwPercent, 100)) {
      // x = x op e with matching addresses: the memop pattern.
      SmallVector<ir::Node *, 1> LC{cloneAddress(Addr)};
      ir::Node *Ld = F.makeNode(Ops.Load, LC);
      OperatorId RmwOps[5] = {Ops.Add, Ops.Sub, Ops.And, Ops.Or, Ops.Xor};
      OperatorId Op = RmwOps[Rand.nextBelow(5)];
      ir::Node *Rhs = Rand.chance(1, 2)
                          ? F.makeLeaf(Ops.Const, genConstValue())
                          : F.makeLeaf(Ops.Reg, Rand.nextInRange(0, 11));
      SmallVector<ir::Node *, 2> BC{Ld, Rhs};
      Value = F.makeNode(Op, BC);
    } else {
      Value = genValue(P.ExprDepth);
    }
    SmallVector<ir::Node *, 2> C{Addr, Value};
    F.addRoot(F.makeNode(Ops.Store, C));
  }

  void genBranch() {
    OperatorId CmpOps[6] = {Ops.CmpEQ, Ops.CmpNE, Ops.CmpLT,
                            Ops.CmpLE, Ops.CmpGT, Ops.CmpGE};
    OperatorId Cmp = CmpOps[Rand.nextBelow(6)];
    ir::Node *L = genValue(P.ExprDepth > 1 ? P.ExprDepth - 1 : 1);
    ir::Node *R = Rand.chance(1, 2) ? F.makeLeaf(Ops.Const, genConstValue())
                                    : genLeaf();
    SmallVector<ir::Node *, 2> CC{L, R};
    ir::Node *Cond = F.makeNode(Cmp, CC);
    SmallVector<ir::Node *, 1> BC{Cond};
    F.addRoot(F.makeNode(Ops.CBr, BC, NextLabel));
    ++NextLabel;
  }

  void genLabelOrJump() {
    if (Rand.chance(1, 2))
      F.addRoot(F.makeLeaf(Ops.Label, Rand.nextBelow(NextLabel + 1)));
    else
      F.addRoot(F.makeLeaf(Ops.Br, Rand.nextBelow(NextLabel + 1)));
  }

  const Profile &P;
  const CanonicalOps &Ops;
  ir::IRFunction &F;
  RNG Rand;
  std::int64_t NextLabel = 0;
};

} // namespace

const std::vector<Profile> &odburg::workload::specProfiles() {
  static const std::vector<Profile> Profiles = [] {
    std::vector<Profile> Ps;
    auto Mk = [&Ps](const char *Name, unsigned Nodes, std::uint64_t Seed,
                    unsigned Depth, unsigned Rmw, unsigned SmallConst,
                    unsigned Load, unsigned Branch,
                    std::vector<unsigned> Weights) {
      Profile P;
      P.Name = Name;
      P.TargetNodes = Nodes;
      P.Seed = Seed;
      P.ExprDepth = Depth;
      P.RmwPercent = Rmw;
      P.SmallConstPercent = SmallConst;
      P.LoadPercent = Load;
      P.BranchPercent = Branch;
      P.OpWeights = std::move(Weights);
      Ps.push_back(std::move(P));
    };
    // Sizes scale with the relative instruction counts of the paper's
    // SPEC table; op mixes reflect the benchmarks' characters.
    Mk("gzip-like", 24000, 101, 3, 28, 85, 45, 18,
       {40, 20, 4, 1, 12, 8, 6, 12, 10});  // bit-twiddling compressor
    Mk("vpr-like", 40000, 102, 4, 18, 80, 40, 14,
       {42, 16, 12, 3, 6, 6, 4, 5, 5});    // placement arithmetic
    Mk("gcc-like", 96000, 103, 5, 15, 75, 42, 20,
       {38, 15, 6, 2, 10, 10, 8, 6, 5});   // branchy, irregular
    Mk("mcf-like", 16000, 104, 3, 12, 85, 55, 16,
       {50, 20, 4, 2, 4, 4, 2, 2, 2});     // pointer chasing, loads
    Mk("crafty-like", 48000, 105, 4, 22, 70, 38, 15,
       {30, 12, 4, 1, 16, 14, 12, 14, 12});// bitboards: logic + shifts
    Mk("parser-like", 36000, 106, 3, 16, 85, 48, 22,
       {45, 18, 3, 1, 8, 8, 5, 4, 4});     // dictionary walks
    Mk("vortex-like", 64000, 107, 3, 20, 85, 50, 18,
       {48, 16, 4, 1, 8, 8, 4, 4, 3});     // object store, loads/stores
    Mk("bzip2-like", 20000, 108, 4, 26, 80, 44, 14,
       {36, 18, 6, 2, 10, 8, 6, 10, 8});   // sorting + bit stream
    Mk("twolf-like", 44000, 109, 5, 14, 75, 40, 12,
       {34, 16, 18, 6, 6, 6, 4, 5, 5});    // multiply-heavy layout
    Mk("art-like", 12000, 110, 4, 10, 80, 46, 10,
       {46, 20, 14, 4, 4, 4, 2, 3, 3});    // neural-net accumulation
    return Ps;
  }();
  return Profiles;
}

const Profile *odburg::workload::findProfile(std::string_view Name) {
  for (const Profile &P : specProfiles())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

ir::Node *odburg::workload::synthesizeTree(const Grammar &G,
                                           ir::IRFunction &F, RNG &Rand,
                                           unsigned Budget) {
  SmallVector<OperatorId, 8> Leaves, Interior;
  for (OperatorId Op = 0; Op < G.numOperators(); ++Op) {
    if (G.operatorArity(Op) == 0)
      Leaves.push_back(Op);
    else
      Interior.push_back(Op);
  }
  assert(!Leaves.empty() && "grammar has no leaf operators");

  struct Builder {
    const Grammar &G;
    ir::IRFunction &F;
    RNG &Rand;
    const SmallVectorImpl<OperatorId> &Leaves;
    const SmallVectorImpl<OperatorId> &Interior;

    ir::Node *build(unsigned B) {
      if (B <= 1 || Interior.empty())
        return F.makeLeaf(Leaves[Rand.nextBelow(Leaves.size())],
                          Rand.nextInRange(0, 7));
      OperatorId Op = Interior[Rand.nextBelow(Interior.size())];
      unsigned Arity = G.operatorArity(Op);
      SmallVector<ir::Node *, 4> Children;
      for (unsigned I = 0; I < Arity; ++I)
        Children.push_back(build((B - 1) / Arity));
      return F.makeNode(Op, Children);
    }
  };
  Builder B{G, F, Rand, Leaves, Interior};
  return B.build(Budget);
}

Expected<ir::IRFunction> odburg::workload::generate(const Profile &P,
                                                    const Grammar &G) {
  Expected<CanonicalOps> Ops = targets::resolveCanonicalOps(G);
  if (!Ops)
    return Ops.takeError();
  ir::IRFunction F;
  Generator(P, *Ops, F).run();
  return F;
}

Expected<std::vector<ir::IRFunction>>
odburg::workload::generateBatch(const Profile &P, const Grammar &G,
                                unsigned Count, unsigned TargetNodes) {
  std::vector<ir::IRFunction> Fns;
  Fns.reserve(Count);
  Profile Q = P;
  if (TargetNodes)
    Q.TargetNodes = TargetNodes;
  for (unsigned I = 0; I < Count; ++I) {
    Q.Seed = P.Seed + I;
    Expected<ir::IRFunction> F = generate(Q, G);
    if (!F)
      return F.takeError();
    Fns.push_back(std::move(*F));
  }
  return Fns;
}
