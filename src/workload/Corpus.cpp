//===- workload/Corpus.cpp - Built-in MiniC benchmark corpus ----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "workload/Corpus.h"

#include "frontend/Lowering.h"

using namespace odburg;
using namespace odburg::workload;

namespace {

const char *FactSource = R"(
// Iterative factorial.
int n; int result;
n = 10;
result = 1;
while (n > 1) {
  result = result * n;
  n = n - 1;
}
return result;
)";

const char *SqrtSource = R"(
// Integer square-root approximation by Newton iteration.
int x; int guess; int next; int i;
x = 44521;
guess = x / 2;
i = 0;
while (i < 20) {
  next = (guess + x / guess) / 2;
  guess = next;
  i = i + 1;
}
return guess;
)";

const char *PermutSource = R"(
// Lexicographic permutation stepping over a small array.
int a[8]; int i; int j; int k; int tmp; int count;
i = 0;
while (i < 8) { a[i] = i; i = i + 1; }
count = 0;
k = 0;
while (k < 100) {
  // Find the largest i with a[i] < a[i+1].
  i = 6;
  while (i >= 0) {
    if (a[i] < a[i + 1]) {
      j = 7;
      while (a[j] <= a[i]) { j = j - 1; }
      tmp = a[i]; a[i] = a[j]; a[j] = tmp;
      // Reverse the suffix.
      j = 7;
      i = i + 1;
      while (i < j) {
        tmp = a[i]; a[i] = a[j]; a[j] = tmp;
        i = i + 1; j = j - 1;
      }
      i = 0 - 1;
    } else {
      i = i - 1;
    }
  }
  count = count + 1;
  k = k + 1;
}
return count;
)";

const char *PiSpigotSource = R"(
// Spigot digits of pi (integer-only inner loop).
int r[32]; int i; int k; int carry; int digit; int sum;
i = 0;
while (i < 32) { r[i] = 2; i = i + 1; }
sum = 0;
k = 0;
while (k < 8) {
  carry = 0;
  i = 31;
  while (i > 0) {
    digit = r[i] * 10 + carry;
    r[i] = digit % (2 * i + 1);
    carry = (digit / (2 * i + 1)) * i;
    i = i - 1;
  }
  digit = r[0] * 10 + carry;
  r[0] = digit % 10;
  sum = sum + digit / 10;
  k = k + 1;
}
return sum;
)";

const char *BoyerMooreSource = R"(
// Boyer-Moore-Horspool string search over byte arrays.
int text[64]; int pat[4]; int skip[16]; int i; int j; int pos; int found;
i = 0;
while (i < 64) { text[i] = (i * 7 + 3) & 15; i = i + 1; }
pat[0] = 3; pat[1] = 10; pat[2] = 1; pat[3] = 8;
i = 0;
while (i < 16) { skip[i] = 4; i = i + 1; }
i = 0;
while (i < 3) { skip[pat[i]] = 3 - i; i = i + 1; }
found = 0 - 1;
pos = 0;
while (pos <= 60) {
  j = 3;
  while (j >= 0) {
    if (text[pos + j] == pat[j]) {
      j = j - 1;
    } else {
      j = 0 - 2;
    }
  }
  if (j == 0 - 1) {
    found = pos;
    pos = 61;
  } else {
    pos = pos + skip[text[pos + 3]];
  }
}
return found;
)";

const char *MatAddSource = R"(
// 8x8 matrix addition.
int a[64]; int b[64]; int c[64]; int i; int j;
i = 0;
while (i < 64) { a[i] = i; b[i] = 64 - i; i = i + 1; }
i = 0;
while (i < 8) {
  j = 0;
  while (j < 8) {
    c[i * 8 + j] = a[i * 8 + j] + b[i * 8 + j];
    j = j + 1;
  }
  i = i + 1;
}
return c[63];
)";

const char *MatMultSource = R"(
// 8x8 matrix multiplication.
int a[64]; int b[64]; int c[64]; int i; int j; int k; int acc;
i = 0;
while (i < 64) { a[i] = i & 7; b[i] = (i >> 3) + 1; i = i + 1; }
i = 0;
while (i < 8) {
  j = 0;
  while (j < 8) {
    acc = 0;
    k = 0;
    while (k < 8) {
      acc = acc + a[i * 8 + k] * b[k * 8 + j];
      k = k + 1;
    }
    c[i * 8 + j] = acc;
    j = j + 1;
  }
  i = i + 1;
}
return c[0];
)";

const char *BubbleSource = R"(
// Bubble sort, the classic RMW-heavy kernel.
int a[32]; int i; int j; int tmp; int swaps;
i = 0;
while (i < 32) { a[i] = (31 - i) ^ 5; i = i + 1; }
swaps = 0;
i = 0;
while (i < 31) {
  j = 0;
  while (j < 31 - i) {
    if (a[j] > a[j + 1]) {
      tmp = a[j]; a[j] = a[j + 1]; a[j + 1] = tmp;
      swaps = swaps + 1;
    }
    j = j + 1;
  }
  i = i + 1;
}
return swaps;
)";

const char *ChecksumSource = R"(
// Adler-like checksum with shifts, masks and read-modify-write updates.
int data[48]; int s1; int s2; int i;
i = 0;
while (i < 48) { data[i] = (i * 31 + 7) & 255; i = i + 1; }
s1 = 1; s2 = 0;
i = 0;
while (i < 48) {
  s1 = (s1 + data[i]) % 65521;
  s2 = (s2 + s1) % 65521;
  i = i + 1;
}
return (s2 << 16) | s1;
)";

const char *MatcherArchSource = R"(
// Addressing-mode and memop stress: the MatcherArch analogue — scaled
// indexing, constant folding opportunities, and x = x op k updates that
// only a memop-aware selector fuses.
int m[128]; int i; int base; int acc;
i = 0;
while (i < 128) { m[i] = i; i = i + 1; }
acc = 0;
base = 16;
i = 0;
while (i < 64) {
  m[i] = m[i] + 1;
  m[i + 1] = m[i + 1] - 2;
  m[base + (i & 7)] = m[base + (i & 7)] ^ 255;
  m[i] = m[i] & 4095;
  m[i] = m[i] | 64;
  acc = acc + m[(i << 1) & 127];
  i = i + 1;
}
return acc;
)";

const char *FibSource = R"(
// Iterative Fibonacci.
int a; int b; int t; int n;
a = 0; b = 1;
n = 40;
while (n > 0) {
  t = a + b;
  a = b;
  b = t;
  n = n - 1;
}
return a;
)";

const char *GcdSource = R"(
// Binary GCD (shifts and parity tests instead of division).
int u; int v; int shift; int t;
u = 48720; v = 33264; shift = 0;
while (((u | v) & 1) == 0) { u = u >> 1; v = v >> 1; shift = shift + 1; }
while ((u & 1) == 0) { u = u >> 1; }
while (v != 0) {
  while ((v & 1) == 0) { v = v >> 1; }
  if (u > v) { t = u; u = v; v = t; }
  v = v - u;
}
return u << shift;
)";

const char *Crc32Source = R"(
// Bitwise CRC-32 over a small buffer (xor/shift heavy).
int data[24]; int crc; int i; int j; int byte;
i = 0;
while (i < 24) { data[i] = (i * 13 + 5) & 255; i = i + 1; }
crc = 0 - 1;
i = 0;
while (i < 24) {
  byte = data[i];
  crc = crc ^ byte;
  j = 0;
  while (j < 8) {
    if ((crc & 1) == 1) {
      crc = (crc >> 1) ^ 79764919;
    } else {
      crc = crc >> 1;
    }
    j = j + 1;
  }
  i = i + 1;
}
return ~crc;
)";

const char *HistogramSource = R"(
// Histogram with read-modify-write bucket updates.
int data[96]; int hist[16]; int i;
i = 0;
while (i < 96) { data[i] = (i * 37 + 11) & 15; i = i + 1; }
i = 0;
while (i < 16) { hist[i] = 0; i = i + 1; }
i = 0;
while (i < 96) {
  hist[data[i]] = hist[data[i]] + 1;
  i = i + 1;
}
i = 1;
while (i < 16) { hist[0] = hist[0] + hist[i]; i = i + 1; }
return hist[0];
)";

const char *BinSearchSource = R"(
// Binary search over a sorted array.
int a[64]; int lo; int hi; int mid; int key; int found;
lo = 0;
while (lo < 64) { a[lo] = lo * 3 + 1; lo = lo + 1; }
key = 100;
lo = 0; hi = 63; found = 0 - 1;
while (lo <= hi) {
  mid = (lo + hi) >> 1;
  if (a[mid] == key) {
    found = mid;
    lo = hi + 1;
  } else {
    if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }
  }
}
return found;
)";

} // namespace

const std::vector<CorpusProgram> &odburg::workload::corpus() {
  static const std::vector<CorpusProgram> Programs = {
      {"Fact", "iterative factorial", FactSource},
      {"Permut", "array permutation stepping", PermutSource},
      {"Sqrt", "Newton square-root approximation", SqrtSource},
      {"PiSpigot", "spigot digits of pi", PiSpigotSource},
      {"BoyerMoore", "Boyer-Moore-Horspool search", BoyerMooreSource},
      {"MatAdd", "8x8 matrix addition", MatAddSource},
      {"MatMult", "8x8 matrix multiplication", MatMultSource},
      {"Bubble", "bubble sort", BubbleSource},
      {"Checksum", "Adler-like checksum", ChecksumSource},
      {"MatcherArch", "addressing-mode and memop stress", MatcherArchSource},
      {"Fib", "iterative Fibonacci", FibSource},
      {"Gcd", "binary GCD", GcdSource},
      {"Crc32", "bitwise CRC-32", Crc32Source},
      {"Histogram", "histogram with RMW bucket updates", HistogramSource},
      {"BinSearch", "binary search", BinSearchSource},
  };
  return Programs;
}

const CorpusProgram *
odburg::workload::findCorpusProgram(std::string_view Name) {
  for (const CorpusProgram &P : corpus())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

Expected<ir::IRFunction>
odburg::workload::compileCorpusProgram(const CorpusProgram &P,
                                       const Grammar &G) {
  return minic::compileMiniC(P.Source, G);
}
