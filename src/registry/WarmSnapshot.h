//===- registry/WarmSnapshot.h - Warm on-demand automaton persistence -----===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dump/load of a *warm* on-demand automaton: every hash-consed state and
/// every memoized transition, so a restarted server resumes with the warm
/// path already populated instead of re-deriving it from traffic. This is
/// the registry's second persistence format, next to CompiledTables v2
/// (offline/OfflineTables.h): tables persist what was generated ahead of
/// time, snapshots persist what on-demand traffic taught the automaton.
///
/// The format is versioned little-endian binary, keyed by
/// Grammar::fingerprint(): a snapshot only ever loads against the exact
/// grammar that produced it. The whole payload is read into memory and
/// checksum-verified *before* anything is imported, so a truncated or
/// bit-flipped file yields a typed ErrorKind::MalformedInput and leaves
/// the automaton untouched — it can never half-populate shared state.
/// Loading replays states in id order through
/// OnDemandAutomaton::importWarmState, which also covers table-seeded
/// (hybrid) automata: the snapshot's state prefix must reproduce the
/// seeded states, and a stale snapshot is rejected typed.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_REGISTRY_WARMSNAPSHOT_H
#define ODBURG_REGISTRY_WARMSNAPSHOT_H

#include "core/OnDemandAutomaton.h"
#include "grammar/Grammar.h"
#include "support/Error.h"

#include <cstdint>
#include <iosfwd>

namespace odburg {
namespace registry {

/// What a snapshot load restored.
struct WarmSnapshotStats {
  /// States in the snapshot (including any table-seeded prefix).
  unsigned NumStates = 0;
  /// Memoized transitions replayed into the cache.
  std::uint64_t NumTransitions = 0;
};

/// Serializes \p A's states and memoized transitions to \p OS, stamped
/// with \p G's fingerprint. Quiescent use only: no labeling may run
/// concurrently. Fails on stream write errors.
Error dumpWarmSnapshot(const OnDemandAutomaton &A, const Grammar &G,
                       std::ostream &OS);

/// Restores a snapshot dumped by dumpWarmSnapshot into \p A, which must
/// not have labeled anything yet (freshly created, or table-seeded for
/// hybrid — the snapshot's prefix must then match the seeded states).
/// Validates magic, version, \p G's fingerprint, the payload checksum,
/// and every state/transition record before importing; all failures are
/// typed ErrorKind::MalformedInput and leave \p A unchanged. Plants the
/// fault::Site::RegistryLoad chaos site: an armed trigger fails the load
/// as if the file were corrupt, and the caller cold-starts.
Expected<WarmSnapshotStats> loadWarmSnapshot(OnDemandAutomaton &A,
                                             const Grammar &G,
                                             std::istream &IS);

} // namespace registry
} // namespace odburg

#endif // ODBURG_REGISTRY_WARMSNAPSHOT_H
