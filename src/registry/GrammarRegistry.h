//===- registry/GrammarRegistry.h - Multi-tenant grammar registry ---------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant layer between the labeling backends and the server:
/// one process, many grammars, shared warm state. A GrammarRegistry maps
/// a grammar name (and its content fingerprint) to a refcounted
/// GrammarEntry holding the per-grammar shared backend state — one
/// DP/offline/on-demand/hybrid LabelerBackend per kind, created lazily
/// and shared by every session on that grammar, so the paper's
/// amortization argument holds across *clients*, not just functions.
///
/// The pattern follows GF-core's PGF runtime (see
/// docs/pgf-reader-pattern.md): grammars are compiled once into on-disk
/// artifacts and revalidated, never re-derived, at load. The registry's
/// spool directory holds, per grammar name:
///
///   <name>.odg           grammar text (loadable on first GRAMMAR handshake)
///   <name>.tables        CompiledTables v2 for the offline backend
///   <name>.hybrid.tables CompiledTables v2 for the hybrid static partition
///   <name>.warm          warm on-demand automaton snapshot
///   <name>.hybrid.warm   warm snapshot of the hybrid automaton
///
/// Three policies live here:
///
///   - *Eviction.* Entries are pinned by RAII Leases (one per connection
///     or session). maintain() sums the resident backends' bytes against
///     the budget and drops the backend state of least-recently-used
///     unpinned entries (counted in stats; the entry itself stays and
///     cold-starts on re-access). When everything over budget is pinned,
///     it falls back to LabelerBackend::setMemoryPressure — degrade, not
///     drop. The fault::Site::RegistryEvict chaos site forces an eviction
///     pass regardless of budget.
///   - *Hot swap.* Installing a new version under an existing name bumps
///     the entry epoch: new acquires see the new entry immediately, while
///     leases on the old epoch keep its backends alive until the last one
///     drops — in-flight work completes byte-identically on the version
///     it started with.
///   - *Warm persistence.* On-demand/hybrid backends try their warm
///     snapshot at creation (a failed or fault-injected load degrades to
///     a cold start, counted as a snapshot miss); dumpWarmSnapshots()
///     writes them back, so a drained-and-restarted server serves its
///     first batch out of the warm tiers.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_REGISTRY_GRAMMARREGISTRY_H
#define ODBURG_REGISTRY_GRAMMARREGISTRY_H

#include "select/LabelerBackend.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace odburg {
namespace registry {

class GrammarRegistry;

/// A registry-wide counter snapshot; the server's STATS registry section.
struct RegistryStats {
  std::uint64_t ResidentGrammars = 0;
  std::uint64_t Acquires = 0;
  std::uint64_t Evictions = 0;
  std::uint64_t HotSwaps = 0;
  std::uint64_t SnapshotHits = 0;
  std::uint64_t SnapshotMisses = 0;
  std::uint64_t TablesLoads = 0;
  std::uint64_t BackendBytes = 0;
  bool MemoryPressure = false;
};

/// One resident grammar version: identity, the grammar (plus its
/// dyn-free variant for the offline lane, when available), and the
/// lazily created shared backends. Reached only through a Lease.
class GrammarEntry {
public:
  const std::string &name() const { return Name; }
  std::uint64_t fingerprint() const { return Fp; }
  /// Version counter under this name; bumped by every hot swap.
  std::uint64_t epoch() const { return Epoch; }

  /// The grammar backend kind \p K labels against: the dyn-free variant
  /// for the offline backend when the source provides one (built-in
  /// targets), the full grammar otherwise.
  const Grammar &grammar(BackendKind K) const {
    return K == BackendKind::Offline && Fixed ? *Fixed : Full;
  }
  /// The hook table for \p K; null for the offline backend (its grammar
  /// variant carries no hooks).
  const DynCostTable *dynCosts(BackendKind K) const {
    return K == BackendKind::Offline ? nullptr : &Dyn;
  }

  /// The shared backend of kind \p K, created on first use: compiled
  /// tables come from the registry spool when a valid dump exists
  /// (regenerated and respooled otherwise), and on-demand/hybrid
  /// automata restore their warm snapshot when one loads cleanly.
  /// Thread-safe; concurrent callers get the same backend. Propagates
  /// typed creation failures (e.g. offline × dynamic costs).
  Expected<LabelerBackend *> backend(BackendKind K);

  /// Bytes held by the created backends.
  std::size_t backendBytes() const;

private:
  friend class GrammarRegistry;
  friend class Lease;

  GrammarEntry(GrammarRegistry &Owner, std::string Name, Grammar Full,
               DynCostTable Dyn, std::optional<Grammar> Fixed,
               std::uint64_t Epoch);

  /// Drops all backend state (the eviction payload). Caller guarantees
  /// Pins == 0 — nothing can be labeling against the backends.
  void dropBackends();
  void touch();

  GrammarRegistry &Owner;
  std::string Name;
  std::uint64_t Fp;
  std::uint64_t Epoch;
  Grammar Full;
  DynCostTable Dyn;
  std::optional<Grammar> Fixed;

  mutable std::mutex M;
  std::array<std::unique_ptr<LabelerBackend>, NumBackendKinds>
      Backends;
  /// Outstanding leases; eviction skips pinned entries.
  std::atomic<std::uint64_t> Pins{0};
  /// Registry-clock tick of the last acquire/backend use (LRU key).
  std::atomic<std::uint64_t> LastUse{0};
};

/// RAII pin on a GrammarEntry. While any lease is live the entry's
/// backends are never evicted and a hot-swapped-out entry stays alive —
/// release order is therefore: stop labeling, destroy the services
/// borrowing the backends, then drop the lease. Move-only. The registry
/// must outlive every lease it issued.
class Lease {
public:
  Lease() = default;
  Lease(Lease &&O) noexcept : E(std::move(O.E)) { O.E = nullptr; }
  Lease &operator=(Lease &&O) noexcept {
    if (this != &O) {
      release();
      E = std::move(O.E);
      O.E = nullptr;
    }
    return *this;
  }
  Lease(const Lease &) = delete;
  Lease &operator=(const Lease &) = delete;
  ~Lease() { release(); }

  /// Unpins now instead of at destruction.
  void release() {
    if (E)
      E->Pins.fetch_sub(1, std::memory_order_acq_rel);
    E = nullptr;
  }

  /// A second pin on the same entry. Safe without the registry lock:
  /// this lease already holds a pin, so the entry cannot be mid-eviction
  /// — maintain()'s "Pins == 0 stays 0 for the whole pass" invariant
  /// only needs fresh pins to come from under the registry mutex or from
  /// an existing pin. The server's lane cache uses this to keep an entry
  /// pinned for a lane's whole life, not just one connection's.
  Lease clone() const { return Lease(E); }

  explicit operator bool() const { return E != nullptr; }
  GrammarEntry *operator->() const { return E.get(); }
  GrammarEntry &operator*() const { return *E; }
  GrammarEntry *entry() const { return E.get(); }

private:
  friend class GrammarRegistry;
  explicit Lease(std::shared_ptr<GrammarEntry> Entry) : E(std::move(Entry)) {
    if (E)
      E->Pins.fetch_add(1, std::memory_order_acq_rel);
  }

  std::shared_ptr<GrammarEntry> E;
};

/// The registry. Thread-safe throughout; one per server process.
class GrammarRegistry {
public:
  struct Options {
    /// Spool directory (grammar text, compiled tables, warm snapshots).
    /// Empty = purely in-memory: only built-in targets and
    /// registerGrammar() sources resolve, nothing persists.
    std::string Dir;
    /// Global budget over all resident backends' bytes; 0 = unlimited.
    std::uint64_t MemBudgetBytes = 0;
    /// Creation options for every backend the registry builds.
    LabelerBackend::Options BackendOpts;
    /// Try <name>.warm / <name>.hybrid.warm at backend creation.
    bool LoadSnapshots = true;
    /// Write freshly generated tables back to the spool.
    bool SaveTables = true;
  };

  explicit GrammarRegistry(Options O) : Opts(std::move(O)) {}

  /// Resolves \p Name to a pinned lease on its current version, loading
  /// it on first use: a resident entry, a 16-hex-digit fingerprint of a
  /// resident entry, a built-in target name (x86, mips, ...), or
  /// <Dir>/<Name>.odg grammar text (hooks bound from
  /// targets::standardHooks). Unknown names and path-escaping characters
  /// fail typed. Runs maintain() on the way out.
  Expected<Lease> acquire(std::string_view Name);

  /// Installs \p Full (with \p Dyn bound to it, and optionally the
  /// dyn-free \p Fixed variant for the offline lane) under \p Name. A
  /// different fingerprint than the resident version is a hot swap: the
  /// epoch bumps and the old entry retires once its leases drop; an
  /// identical fingerprint returns the resident entry untouched.
  Expected<Lease> registerGrammar(std::string_view Name, Grammar Full,
                                  DynCostTable Dyn,
                                  std::optional<Grammar> Fixed = std::nullopt);

  /// Re-resolves \p Name from its source (built-in or .odg text) and
  /// hot-swaps if the content changed. The .odg-file path of a live
  /// reload ("edit the grammar, poke the server").
  Expected<Lease> reload(std::string_view Name);

  /// The eviction pass; also run by acquire(). Over budget it drops the
  /// backends of LRU unpinned entries until under; if pinned entries
  /// alone exceed the budget it turns memory pressure on instead
  /// (released below 90% of budget). fault::Site::RegistryEvict forces
  /// the drop of every unpinned entry's backends.
  void maintain();

  /// Writes the warm snapshot of every resident on-demand/hybrid backend
  /// to the spool (tmp-file-then-rename). No-op without a spool dir.
  /// Call when quiescent (server drain).
  Error dumpWarmSnapshots();

  /// Bytes over all resident entries' backends.
  std::size_t backendBytes() const;

  RegistryStats statsSnapshot() const;

  const Options &options() const { return Opts; }

private:
  friend class GrammarEntry;

  Expected<std::shared_ptr<GrammarEntry>> resolveLocked(std::string_view Name);
  Expected<std::shared_ptr<GrammarEntry>> buildFromSource(std::string_view Name,
                                                          std::uint64_t Epoch);
  std::uint64_t tick() { return Clock.fetch_add(1, std::memory_order_relaxed); }
  void applyPressure(bool On);

  Options Opts;
  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<GrammarEntry>, std::less<>> Entries;
  std::atomic<std::uint64_t> Clock{1};
  std::atomic<bool> Pressure{false};

  std::atomic<std::uint64_t> Acquires{0};
  std::atomic<std::uint64_t> Evictions{0};
  std::atomic<std::uint64_t> HotSwaps{0};
  std::atomic<std::uint64_t> SnapshotHits{0};
  std::atomic<std::uint64_t> SnapshotMisses{0};
  std::atomic<std::uint64_t> TablesLoads{0};
};

} // namespace registry
} // namespace odburg

#endif // ODBURG_REGISTRY_GRAMMARREGISTRY_H
