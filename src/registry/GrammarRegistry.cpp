//===- registry/GrammarRegistry.cpp - Multi-tenant grammar registry -------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "registry/GrammarRegistry.h"

#include "grammar/GrammarParser.h"
#include "registry/WarmSnapshot.h"
#include "support/FaultInjection.h"
#include "targets/Target.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

using namespace odburg;
using namespace odburg::registry;

namespace {

/// Spool file names are derived from client-supplied grammar names, so
/// the alphabet is a strict allowlist — no separators, no dots, nothing
/// that could escape the spool directory.
bool isSpoolableName(std::string_view Name) {
  if (Name.empty() || Name.size() > 128)
    return false;
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '-')
      return false;
  return true;
}

bool isBuiltinTarget(std::string_view Name) {
  const std::vector<std::string> &Names = targets::targetNames();
  return std::find(Names.begin(), Names.end(), Name) != Names.end();
}

bool parseHexFingerprint(std::string_view Name, std::uint64_t &Fp) {
  if (Name.size() != 16)
    return false;
  Fp = 0;
  for (char C : Name) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    Fp = (Fp << 4) | D;
  }
  return true;
}

/// Writes \p Body to \p Path atomically (tmp file + rename) so a crashed
/// or concurrent writer can never leave a torn artifact for load() to
/// trip over.
template <typename WriteBody>
Error writeSpoolFile(const std::string &Path, WriteBody &&Body) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return Error::make("cannot open '" + Tmp + "' for writing");
    if (Error E = Body(OS))
      return E;
    if (!OS.flush())
      return Error::make("failed to write '" + Tmp + "'");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return Error::make("failed to rename '" + Tmp + "' into place");
  return Error::success();
}

} // namespace

//===----------------------------------------------------------------------===//
// GrammarEntry
//===----------------------------------------------------------------------===//

GrammarEntry::GrammarEntry(GrammarRegistry &Owner, std::string Name,
                           Grammar FullG, DynCostTable DynT,
                           std::optional<Grammar> FixedG, std::uint64_t Epoch)
    : Owner(Owner), Name(std::move(Name)), Epoch(Epoch), Full(std::move(FullG)),
      Dyn(std::move(DynT)), Fixed(std::move(FixedG)) {
  Fp = Full.fingerprint();
}

void GrammarEntry::touch() { LastUse.store(Owner.tick(), std::memory_order_relaxed); }

void GrammarEntry::dropBackends() {
  std::lock_guard<std::mutex> Lock(M);
  for (std::unique_ptr<LabelerBackend> &B : Backends)
    B.reset();
}

std::size_t GrammarEntry::backendBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  std::size_t Bytes = 0;
  for (const std::unique_ptr<LabelerBackend> &B : Backends)
    if (B)
      Bytes += B->memoryBytes();
  return Bytes;
}

Expected<LabelerBackend *> GrammarEntry::backend(BackendKind K) {
  std::lock_guard<std::mutex> Lock(M);
  touch();
  std::unique_ptr<LabelerBackend> &Slot = Backends[static_cast<unsigned>(K)];
  if (Slot)
    return Slot.get();

  const GrammarRegistry::Options &RO = Owner.options();
  const Grammar &G = grammar(K);
  const DynCostTable *D = dynCosts(K);
  std::string TablesPath, WarmPath;
  if (!RO.Dir.empty() && isSpoolableName(Name)) {
    const char *TablesSuffix =
        K == BackendKind::Hybrid ? ".hybrid.tables" : ".tables";
    const char *WarmSuffix = K == BackendKind::Hybrid ? ".hybrid.warm" : ".warm";
    TablesPath = RO.Dir + "/" + Name + TablesSuffix;
    WarmPath = RO.Dir + "/" + Name + WarmSuffix;
  }

  // Tables-bearing backends first try the spool; a missing, corrupt,
  // mismatched, or fault-injected dump degrades to regeneration, and the
  // regenerated tables are written back so the cost is paid once.
  std::unique_ptr<LabelerBackend> Built;
  bool LoadedTables = false;
  if ((K == BackendKind::Offline || K == BackendKind::Hybrid) &&
      !TablesPath.empty() && !fault::shouldFail(fault::Site::RegistryLoad)) {
    std::ifstream IS(TablesPath, std::ios::binary);
    if (IS) {
      Expected<CompiledTables> T = CompiledTables::load(IS, G);
      if (T) {
        if (K == BackendKind::Offline) {
          Built = std::make_unique<OfflineBackend>(std::move(*T));
          LoadedTables = true;
        } else {
          Expected<std::unique_ptr<HybridBackend>> H =
              HybridBackend::createWithTables(G, D, RO.BackendOpts,
                                              std::move(*T));
          if (H) {
            Built = std::move(*H);
            LoadedTables = true;
          }
        }
      }
    }
  }
  if (LoadedTables)
    Owner.TablesLoads.fetch_add(1, std::memory_order_relaxed);

  if (!Built) {
    Expected<std::unique_ptr<LabelerBackend>> B =
        LabelerBackend::create(K, G, D, RO.BackendOpts);
    if (!B)
      return B.takeError();
    Built = std::move(*B);
    // Respool freshly generated tables, best-effort: a failed write only
    // costs the next process a regeneration.
    if (RO.SaveTables && !TablesPath.empty() &&
        (K == BackendKind::Offline || K == BackendKind::Hybrid)) {
      const CompiledTables &T =
          K == BackendKind::Offline
              ? static_cast<const OfflineBackend &>(*Built).tables()
              : static_cast<const HybridBackend &>(*Built).tables();
      Error W = writeSpoolFile(TablesPath,
                               [&](std::ostream &OS) { return T.dump(OS); });
      W.consume();
    }
  }

  // Warm-automaton restore: only ever additive (the snapshot replays
  // states and memoized transitions), so a failure is a cold start, never
  // an error — label traffic rebuilds what the snapshot would have
  // provided.
  if ((K == BackendKind::OnDemand || K == BackendKind::Hybrid) &&
      RO.LoadSnapshots && !WarmPath.empty()) {
    OnDemandAutomaton &A = static_cast<OnDemandBackend &>(*Built).automaton();
    std::ifstream IS(WarmPath, std::ios::binary);
    bool Hit = false;
    if (IS) {
      Expected<WarmSnapshotStats> S = loadWarmSnapshot(A, G, IS);
      Hit = static_cast<bool>(S);
    }
    if (Hit)
      Owner.SnapshotHits.fetch_add(1, std::memory_order_relaxed);
    else
      Owner.SnapshotMisses.fetch_add(1, std::memory_order_relaxed);
  }

  if (Owner.Pressure.load(std::memory_order_relaxed))
    Built->setMemoryPressure(true);
  Slot = std::move(Built);
  return Slot.get();
}

//===----------------------------------------------------------------------===//
// GrammarRegistry
//===----------------------------------------------------------------------===//

Expected<std::shared_ptr<GrammarEntry>>
GrammarRegistry::buildFromSource(std::string_view Name, std::uint64_t Epoch) {
  if (isBuiltinTarget(Name)) {
    Expected<std::unique_ptr<targets::Target>> T = targets::makeTarget(Name);
    if (!T)
      return T.takeError();
    return std::shared_ptr<GrammarEntry>(new GrammarEntry(
        *this, std::string(Name), std::move((*T)->G), std::move((*T)->Dyn),
        std::move((*T)->Fixed), Epoch));
  }
  if (!isSpoolableName(Name))
    return Error::make(ErrorKind::MalformedInput,
                       "invalid grammar name '" + std::string(Name) +
                           "' (want [A-Za-z0-9_-]+, a built-in target, or a "
                           "resident fingerprint)");
  if (Opts.Dir.empty())
    return Error::make("unknown grammar '" + std::string(Name) +
                       "' (no registry directory configured)");
  std::string Path = Opts.Dir + "/" + std::string(Name) + ".odg";
  std::ifstream IS(Path);
  if (!IS)
    return Error::make("unknown grammar '" + std::string(Name) + "' (no '" +
                       Path + "')");
  std::ostringstream Text;
  Text << IS.rdbuf();
  Expected<Grammar> G = parseGrammar(Text.str());
  if (!G)
    return G.takeError();
  Expected<DynCostTable> Dyn = DynCostTable::build(*G, targets::standardHooks());
  if (!Dyn)
    return Dyn.takeError();
  return std::shared_ptr<GrammarEntry>(
      new GrammarEntry(*this, std::string(Name), std::move(*G),
                       std::move(*Dyn), std::nullopt, Epoch));
}

Expected<std::shared_ptr<GrammarEntry>>
GrammarRegistry::resolveLocked(std::string_view Name) {
  auto It = Entries.find(Name);
  if (It != Entries.end())
    return It->second;
  std::uint64_t Fp = 0;
  if (parseHexFingerprint(Name, Fp)) {
    for (auto &[N, E] : Entries)
      if (E->fingerprint() == Fp)
        return E;
    // Fall through: a 16-hex name could still be a spool file.
  }
  Expected<std::shared_ptr<GrammarEntry>> E = buildFromSource(Name, 1);
  if (!E)
    return E.takeError();
  Entries.emplace(std::string(Name), *E);
  return *E;
}

Expected<Lease> GrammarRegistry::acquire(std::string_view Name) {
  Lease L;
  {
    std::lock_guard<std::mutex> Lock(M);
    Expected<std::shared_ptr<GrammarEntry>> E = resolveLocked(Name);
    if (!E)
      return E.takeError();
    Acquires.fetch_add(1, std::memory_order_relaxed);
    (*E)->touch();
    L = Lease(std::move(*E));
  }
  maintain();
  return L;
}

Expected<Lease> GrammarRegistry::registerGrammar(std::string_view Name,
                                                 Grammar Full, DynCostTable Dyn,
                                                 std::optional<Grammar> Fixed) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find(Name);
  std::uint64_t Epoch = It != Entries.end() ? It->second->epoch() + 1 : 1;
  std::shared_ptr<GrammarEntry> E(
      new GrammarEntry(*this, std::string(Name), std::move(Full),
                       std::move(Dyn), std::move(Fixed), Epoch));
  if (It != Entries.end()) {
    if (It->second->fingerprint() == E->fingerprint()) {
      It->second->touch();
      return Lease(It->second);
    }
    HotSwaps.fetch_add(1, std::memory_order_relaxed);
    It->second = E; // The old entry retires when its last lease drops.
  } else {
    Entries.emplace(std::string(Name), E);
  }
  E->touch();
  return Lease(std::move(E));
}

Expected<Lease> GrammarRegistry::reload(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find(Name);
  std::uint64_t Epoch = It != Entries.end() ? It->second->epoch() + 1 : 1;
  Expected<std::shared_ptr<GrammarEntry>> E = buildFromSource(Name, Epoch);
  if (!E)
    return E.takeError();
  if (It != Entries.end()) {
    if (It->second->fingerprint() == (*E)->fingerprint()) {
      It->second->touch();
      return Lease(It->second);
    }
    HotSwaps.fetch_add(1, std::memory_order_relaxed);
    It->second = *E;
  } else {
    Entries.emplace(std::string(Name), *E);
  }
  (*E)->touch();
  return Lease(std::move(*E));
}

void GrammarRegistry::maintain() {
  // The whole pass holds the registry mutex: leases are only ever created
  // under it, so an entry observed unpinned here stays unpinned until we
  // are done — dropping its backends cannot race a labeling session.
  std::lock_guard<std::mutex> Lock(M);
  bool Forced = fault::shouldFail(fault::Site::RegistryEvict);
  std::uint64_t Budget = Opts.MemBudgetBytes;
  if (Budget == 0 && !Forced)
    return;

  struct Candidate {
    GrammarEntry *E;
    std::uint64_t LastUse;
    std::size_t Bytes;
  };
  std::uint64_t Total = 0;
  std::vector<Candidate> Unpinned;
  for (auto &[N, E] : Entries) {
    std::size_t Bytes = E->backendBytes();
    Total += Bytes;
    if (E->Pins.load(std::memory_order_acquire) == 0 && Bytes > 0)
      Unpinned.push_back(
          {E.get(), E->LastUse.load(std::memory_order_relaxed), Bytes});
  }
  std::sort(Unpinned.begin(), Unpinned.end(),
            [](const Candidate &A, const Candidate &B) {
              return A.LastUse < B.LastUse;
            });

  for (const Candidate &C : Unpinned) {
    if (!Forced && (Budget == 0 || Total <= Budget))
      break;
    C.E->dropBackends();
    Total -= C.Bytes;
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }

  // Pressure hysteresis over what eviction could not reclaim (pinned
  // entries): on above budget, off below 90% of it.
  if (Budget != 0) {
    bool On = Pressure.load(std::memory_order_relaxed);
    if (!On && Total > Budget)
      applyPressure(true);
    else if (On && Total * 10 < Budget * 9)
      applyPressure(false);
  }
}

void GrammarRegistry::applyPressure(bool On) {
  Pressure.store(On, std::memory_order_relaxed);
  for (auto &[N, E] : Entries) {
    std::lock_guard<std::mutex> Lock(E->M);
    for (std::unique_ptr<LabelerBackend> &B : E->Backends)
      if (B)
        B->setMemoryPressure(On);
  }
}

Error GrammarRegistry::dumpWarmSnapshots() {
  if (Opts.Dir.empty())
    return Error::success();
  std::vector<std::shared_ptr<GrammarEntry>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[N, E] : Entries)
      Snapshot.push_back(E);
  }
  Error First = Error::success();
  for (const std::shared_ptr<GrammarEntry> &E : Snapshot) {
    if (!isSpoolableName(E->name()))
      continue;
    for (BackendKind K : {BackendKind::OnDemand, BackendKind::Hybrid}) {
      std::lock_guard<std::mutex> Lock(E->M);
      const std::unique_ptr<LabelerBackend> &B =
          E->Backends[static_cast<unsigned>(K)];
      if (!B)
        continue;
      const OnDemandAutomaton &A =
          static_cast<const OnDemandBackend &>(*B).automaton();
      std::string Path =
          Opts.Dir + "/" + E->name() +
          (K == BackendKind::Hybrid ? ".hybrid.warm" : ".warm");
      Error W = writeSpoolFile(Path, [&](std::ostream &OS) {
        return dumpWarmSnapshot(A, E->grammar(K), OS);
      });
      if (W && !First)
        First = std::move(W);
    }
  }
  return First;
}

std::size_t GrammarRegistry::backendBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  std::size_t Total = 0;
  for (const auto &[N, E] : Entries)
    Total += E->backendBytes();
  return Total;
}

RegistryStats GrammarRegistry::statsSnapshot() const {
  RegistryStats S;
  {
    std::lock_guard<std::mutex> Lock(M);
    S.ResidentGrammars = Entries.size();
    for (const auto &[N, E] : Entries)
      S.BackendBytes += E->backendBytes();
  }
  S.Acquires = Acquires.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.HotSwaps = HotSwaps.load(std::memory_order_relaxed);
  S.SnapshotHits = SnapshotHits.load(std::memory_order_relaxed);
  S.SnapshotMisses = SnapshotMisses.load(std::memory_order_relaxed);
  S.TablesLoads = TablesLoads.load(std::memory_order_relaxed);
  S.MemoryPressure = Pressure.load(std::memory_order_relaxed);
  return S;
}
