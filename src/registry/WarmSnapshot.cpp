//===- registry/WarmSnapshot.cpp - Warm automaton persistence -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "registry/WarmSnapshot.h"

#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

using namespace odburg;
using namespace odburg::registry;

namespace {

// Header layout (little-endian, after the 8-byte magic):
//   u32 version | u64 grammar fingerprint | u32 numNts | u32 numStates |
//   u64 numTransitions | u64 payloadWords | u64 checksum
// The payload is a flat u32 sequence: all states in id order
// (op, costs[numNts], rules[numNts]), then all transitions
// (header, children..., outcomes..., value). Every validation failure is
// ErrorKind::MalformedInput — a snapshot is untrusted input like any
// other on-disk artifact.
constexpr char Magic[8] = {'O', 'D', 'B', 'U', 'R', 'G', 'W', '\0'};
constexpr std::uint32_t Version = 1;
constexpr std::uint64_t ChecksumSeed = 0x0DB09A28u;
/// Allocation guard for the payload read: 2^28 words = 1 GiB, far above
/// any real automaton (states are bounded at 4M).
constexpr std::uint64_t MaxPayloadWords = 1ull << 28;

template <typename T> void writeRaw(std::ostream &OS, T V) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &V, sizeof(T));
  OS.write(Buf, sizeof(T));
}

template <typename T> bool readRaw(std::istream &IS, T &V) {
  char Buf[sizeof(T)];
  IS.read(Buf, sizeof(T));
  if (IS.gcount() != sizeof(T))
    return false;
  std::memcpy(&V, Buf, sizeof(T));
  return true;
}

Error truncatedError() {
  return Error::make(ErrorKind::MalformedInput,
                     "warm snapshot is truncated or not a snapshot file");
}

Error corruptError(const char *What) {
  return Error::make(ErrorKind::MalformedInput,
                     std::string("warm snapshot is corrupt: ") + What);
}

} // namespace

Error registry::dumpWarmSnapshot(const OnDemandAutomaton &A, const Grammar &G,
                                 std::ostream &OS) {
  unsigned NumNts = G.numNonterminals();
  std::vector<const State *> States = A.stateTable().states();

  std::vector<std::uint32_t> Payload;
  Payload.reserve(States.size() * (1 + 2 * static_cast<std::size_t>(NumNts)));
  for (const State *S : States) {
    Payload.push_back(S->Op);
    for (NonterminalId Nt = 0; Nt < NumNts; ++Nt)
      Payload.push_back(S->costOf(Nt).raw());
    for (NonterminalId Nt = 0; Nt < NumNts; ++Nt)
      Payload.push_back(S->ruleOf(Nt));
  }

  std::uint64_t NumTransitions = 0;
  A.forEachTransition(
      [&](const std::uint32_t *Key, unsigned Words, StateId Value) {
        // Skip entries whose value points past the state snapshot: a
        // racing insert between states() and this walk. Quiescent dumps
        // never hit this; it keeps a sloppy caller consistent.
        if (Value >= States.size())
          return;
        Payload.insert(Payload.end(), Key, Key + Words);
        Payload.push_back(Value);
        ++NumTransitions;
      });

  OS.write(Magic, sizeof(Magic));
  writeRaw(OS, Version);
  writeRaw(OS, G.fingerprint());
  writeRaw(OS, static_cast<std::uint32_t>(NumNts));
  writeRaw(OS, static_cast<std::uint32_t>(States.size()));
  writeRaw(OS, NumTransitions);
  writeRaw(OS, static_cast<std::uint64_t>(Payload.size()));
  writeRaw(OS, hashRange(Payload.data(), Payload.data() + Payload.size(),
                         ChecksumSeed));
  OS.write(reinterpret_cast<const char *>(Payload.data()),
           static_cast<std::streamsize>(Payload.size() * sizeof(std::uint32_t)));
  if (!OS)
    return Error::make("failed to write warm snapshot stream");
  return Error::success();
}

Expected<WarmSnapshotStats> registry::loadWarmSnapshot(OnDemandAutomaton &A,
                                                       const Grammar &G,
                                                       std::istream &IS) {
  if (fault::shouldFail(fault::Site::RegistryLoad))
    return Error::make(ErrorKind::MalformedInput,
                       "fault injection: registry-load");

  char Got[sizeof(Magic)];
  IS.read(Got, sizeof(Got));
  if (IS.gcount() != sizeof(Got) || std::memcmp(Got, Magic, sizeof(Magic)) != 0)
    return truncatedError();

  std::uint32_t Ver = 0, NumNts = 0, NumStates = 0;
  std::uint64_t Fp = 0, NumTransitions = 0, PayloadWords = 0, Checksum = 0;
  if (!readRaw(IS, Ver) || !readRaw(IS, Fp) || !readRaw(IS, NumNts) ||
      !readRaw(IS, NumStates) || !readRaw(IS, NumTransitions) ||
      !readRaw(IS, PayloadWords) || !readRaw(IS, Checksum))
    return truncatedError();
  if (Ver != Version)
    return corruptError("unsupported version");
  if (Fp != G.fingerprint())
    return Error::make(ErrorKind::MalformedInput,
                       "warm snapshot was dumped for a different grammar "
                       "(fingerprint mismatch)");
  if (NumNts != G.numNonterminals())
    return corruptError("nonterminal count mismatch");
  if (NumStates > StateTable::maxCapacity())
    return corruptError("state count exceeds table capacity");
  if (PayloadWords > MaxPayloadWords)
    return corruptError("payload size exceeds sanity cap");

  std::uint64_t StateWords =
      static_cast<std::uint64_t>(NumStates) * (1 + 2 * NumNts);
  if (PayloadWords < StateWords)
    return corruptError("payload smaller than its state section");

  // Read and checksum the whole payload before importing anything, so a
  // damaged file can never half-populate the shared automaton.
  std::vector<std::uint32_t> Payload(PayloadWords);
  IS.read(reinterpret_cast<char *>(Payload.data()),
          static_cast<std::streamsize>(PayloadWords * sizeof(std::uint32_t)));
  if (static_cast<std::uint64_t>(IS.gcount()) !=
      PayloadWords * sizeof(std::uint32_t))
    return truncatedError();
  if (hashRange(Payload.data(), Payload.data() + Payload.size(),
                ChecksumSeed) != Checksum)
    return corruptError("payload checksum mismatch");

  unsigned NumOps = G.numOperators();
  unsigned NumRules = G.numNormRules();
  std::size_t Cur = 0;

  // Validate the state section fully before touching the automaton.
  for (std::uint32_t Id = 0; Id < NumStates; ++Id) {
    std::size_t Base = Cur + static_cast<std::size_t>(Id) * (1 + 2 * NumNts);
    if (Payload[Base] >= NumOps)
      return corruptError("state operator out of range");
    for (unsigned Nt = 0; Nt < NumNts; ++Nt) {
      std::uint32_t R = Payload[Base + 1 + NumNts + Nt];
      if (R != InvalidRule && R >= NumRules)
        return corruptError("state rule out of range");
    }
  }

  // Validate the transition section against the state count.
  std::size_t TransBegin = static_cast<std::size_t>(StateWords);
  std::size_t P = TransBegin;
  for (std::uint64_t T = 0; T < NumTransitions; ++T) {
    if (P >= Payload.size())
      return corruptError("transition section shorter than its count");
    std::uint32_t Header = Payload[P];
    OperatorId Op = static_cast<OperatorId>(Header & 0xFFFF);
    unsigned NumChildren = (Header >> 16) & 0xFF;
    unsigned NumDyn = Header >> 24;
    unsigned Words = TransitionCache::keyWords(Header);
    if (Op >= NumOps || NumChildren != G.operatorArity(Op) ||
        NumDyn != G.dynRulesFor(Op).size())
      return corruptError("transition key shape mismatch");
    if (P + Words + 1 > Payload.size())
      return corruptError("transition record truncated");
    for (unsigned C = 0; C < NumChildren; ++C)
      if (Payload[P + 1 + C] >= NumStates)
        return corruptError("transition child state out of range");
    if (Payload[P + Words] >= NumStates)
      return corruptError("transition value state out of range");
    P += Words + 1;
  }
  if (P != Payload.size())
    return corruptError("trailing bytes after the last transition");

  // Any table-seeded prefix must match the snapshot exactly (read-only
  // check): a snapshot of the same grammar but different tables is stale.
  unsigned Seeded = A.numStates();
  if (Seeded > NumStates)
    return Error::make(ErrorKind::MalformedInput,
                       "warm snapshot is stale: fewer states than the "
                       "automaton's seeded tables");
  for (StateId Id = 0; Id < Seeded; ++Id) {
    const State *S = A.stateTable().byId(Id);
    std::size_t Base = static_cast<std::size_t>(Id) * (1 + 2 * NumNts);
    bool Match = S && S->Op == Payload[Base];
    for (unsigned Nt = 0; Match && Nt < NumNts; ++Nt)
      Match = S->costOf(Nt).raw() == Payload[Base + 1 + Nt] &&
              S->ruleOf(Nt) == Payload[Base + 1 + NumNts + Nt];
    if (!Match)
      return Error::make(ErrorKind::MalformedInput,
                         "warm snapshot is stale: seeded state prefix does "
                         "not match");
  }

  // Import. States first (ids must replay exactly — a canonical dump has
  // no duplicates, so a mismatch means the snapshot was hand-assembled),
  // then transitions, whose values are all interned by construction.
  std::vector<Cost> Costs(NumNts);
  for (StateId Id = Seeded; Id < NumStates; ++Id) {
    std::size_t Base = static_cast<std::size_t>(Id) * (1 + 2 * NumNts);
    for (unsigned Nt = 0; Nt < NumNts; ++Nt)
      Costs[Nt] = Cost(Payload[Base + 1 + Nt]);
    if (!A.importWarmState(static_cast<OperatorId>(Payload[Base]),
                           Costs.data(), &Payload[Base + 1 + NumNts], Id))
      return corruptError("duplicate state in snapshot");
  }
  P = TransBegin;
  for (std::uint64_t T = 0; T < NumTransitions; ++T) {
    unsigned Words = TransitionCache::keyWords(Payload[P]);
    A.importWarmTransition(&Payload[P], Words, Payload[P + Words]);
    P += Words + 1;
  }

  WarmSnapshotStats S;
  S.NumStates = NumStates;
  S.NumTransitions = NumTransitions;
  return S;
}
