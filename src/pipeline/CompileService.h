//===- pipeline/CompileService.h - Asynchronous streaming compilation -----===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline's native operating mode: a persistent compile service.
/// The paper's amortization argument — a long-lived on-demand automaton
/// gets cheaper per function the longer it serves — is a *service* shape,
/// not a batch shape, so the public API is continuous submission:
///
///   - construct once per grammar: the service owns the labeling backend
///     (any BackendKind) and a pool of worker threads with persistent
///     per-worker scratch (reduction scratch, DP tables, L1 micro-cache);
///   - submit(F) hands one function to the pool and returns a
///     std::future<CompileResult>; submitBatch() submits a span in order;
///   - results are *delivered* strictly in submission order: the optional
///     Options::OnResult sink fires for seq 0, 1, 2, … while later
///     submissions are still compiling (streaming), and each future
///     becomes ready only after its callback fired — so a ready future
///     implies every earlier submission has been delivered;
///   - the submission queue is bounded (Options::QueueCapacity counts
///     *undelivered* submissions): when a slow consumer or a deep backlog
///     hits the bound, submit() blocks — backpressure, not unbounded
///     memory;
///   - drain() waits until everything submitted is delivered; shutdown()
///     drains, stops the workers, and makes further submissions fail with
///     ErrorKind::ServiceShutdown.
///
/// Determinism carries over from the batch pipeline unchanged: each
/// function's compilation depends only on its own labels and virtual
/// register numbering restarts per function, so concatenating results in
/// submission order is byte-identical to CompileSession::compileFunctions
/// on the same sequence — for any worker count, any backend.
///
/// CompileSession::compileFunctions is a thin compatibility wrapper over
/// this class; new callers should target the service directly.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_PIPELINE_COMPILESERVICE_H
#define ODBURG_PIPELINE_COMPILESERVICE_H

#include "select/LabelerBackend.h"
#include "select/Reducer.h"
#include "targets/AsmEmitter.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace odburg {
namespace pipeline {

/// The outcome of compiling one function end-to-end.
struct CompileResult {
  /// Empty on success; the reducer/emitter diagnostic otherwise.
  std::string Diagnostic;
  /// Fired rules in emission order and the selected cover's total cost.
  Selection Sel;
  /// Newline-terminated assembly text.
  std::string Asm;
  /// Emitted instruction count.
  unsigned Instructions = 0;
  /// Work counters for this function's labeling.
  SelectionStats Stats;
  /// Per-phase wall time, nanoseconds.
  std::uint64_t LabelNs = 0;
  std::uint64_t ReduceNs = 0;
  std::uint64_t EmitNs = 0;
  /// Machine-checkable failure category when !ok(): Generic for
  /// reducer/emitter diagnostics, DeadlineExceeded when the submission
  /// expired in the queue (Options::DeadlineNs) and was never compiled.
  ErrorKind Kind = ErrorKind::Generic;

  bool ok() const { return Diagnostic.empty(); }
};

/// Per-worker reusable compile state, cache-line separated across a pool.
/// Owned by exactly one worker at a time; persistent for the owner's
/// lifetime so the labeler scratch (DP tables, L1 micro-cache) and the
/// reduction scratch stay warm across functions and batches.
struct alignas(64) WorkerState {
  LabelerScratch Labeler;
  ReductionScratch Reduction;
};

/// Compiles one function end-to-end — label, reduce, emit — against \p B
/// using \p WS, on the calling thread. The shared primitive under the
/// service workers and CompileSession's serial entry point.
void compileFunctionWith(const Grammar &G, const DynCostTable *Dyn,
                         LabelerBackend &B, ir::IRFunction &F, WorkerState &WS,
                         CompileResult &Out);

/// A coherent point-in-time view of a service's lifetime counters and
/// recent latency distribution — the numbers bench_p5_service measures,
/// exported as API so a metrics endpoint (odburg-serve's STATS request)
/// can serve them from a live process. Counters are lifetime totals;
/// percentiles cover a sliding window of the most recent deliveries.
struct ServiceStats {
  /// Total submissions accepted so far.
  std::size_t Submitted = 0;
  /// Total results delivered so far (ordered sink fired).
  std::size_t Delivered = 0;
  /// Undelivered submissions right now (== Submitted - Delivered; queued,
  /// compiling, or awaiting their in-order delivery slot).
  std::size_t QueueDepth = 0;
  /// Current worker-thread count.
  unsigned Workers = 0;
  /// Submissions that expired in the queue (Options::DeadlineNs) and were
  /// delivered as DeadlineExceeded failures instead of being compiled.
  std::size_t DeadlineExpired = 0;
  /// Latency samples backing the percentiles (bounded window).
  std::size_t LatencySamples = 0;
  /// Submit -> in-order delivery latency percentiles over the window, in
  /// microseconds (0 while no delivery has happened yet).
  double P50Us = 0.0;
  double P90Us = 0.0;
  double P99Us = 0.0;
  /// Lifetime labeling work counters, summed over every delivered result
  /// — the per-tier probe/hit evidence behind the rates below (and the
  /// same counters a TierController consumes).
  SelectionStats Label;

  /// \name Per-tier hit rates, in [0, 1].
  /// All zero-guarded: a tier that took no probes (disabled, adaptive-
  /// bypassed, or absent from the backend) reads as 0, never NaN.
  /// @{
  double l1HitRate() const {
    return Label.L1Probes ? static_cast<double>(Label.L1Hits) /
                                static_cast<double>(Label.L1Probes)
                          : 0.0;
  }
  double denseHitRate() const {
    return Label.DenseProbes ? static_cast<double>(Label.DenseHits) /
                                   static_cast<double>(Label.DenseProbes)
                             : 0.0;
  }
  double cacheHitRate() const {
    return Label.CacheProbes ? static_cast<double>(Label.CacheHits) /
                                   static_cast<double>(Label.CacheProbes)
                             : 0.0;
  }
  /// Share of labeled nodes the hybrid backend resolved by direct
  /// offline-partition table indexing; 0 for every other backend.
  double offlineHitRate() const {
    return Label.NodesLabeled ? static_cast<double>(Label.OfflineHits) /
                                    static_cast<double>(Label.NodesLabeled)
                              : 0.0;
  }
  /// @}
};

/// A persistent asynchronous compile service over one grammar. Submission
/// (submit/submitBatch/drain/shutdown) is thread-safe; many producers may
/// feed one service.
class CompileService {
public:
  /// The ordered streaming sink: fired once per submission, in submission
  /// order (\p Seq is 0-based), from a worker thread, while later
  /// submissions may still be compiling. At most one callback runs at a
  /// time and seq N fires before seq N+1, so the sink needs no locking of
  /// its own for per-stream state. Must not block on this service's own
  /// backpressure (submitting from the sink can deadlock a full queue).
  using ResultSink =
      std::function<void(std::size_t Seq, const CompileResult &R)>;

  /// Like ResultSink, with the submission's tag (see submit(F, Tag)). The
  /// multiplexing entry point: a server tags each submission with its
  /// connection id and routes the ordered deliveries back per client.
  using TaggedResultSink = std::function<void(
      std::size_t Seq, std::uint64_t Tag, const CompileResult &R)>;

  struct Options {
    /// Which labeling engine the service runs on (owned-backend creation).
    BackendKind Backend = BackendKind::OnDemand;
    /// The backend's tunables, passed through to LabelerBackend::create.
    LabelerBackend::Options BackendOpts;
    /// Worker pool size (0 = hardware concurrency).
    unsigned Workers = 0;
    /// Bound on undelivered submissions (queued + compiling + awaiting
    /// in-order delivery); submit() blocks at the bound. 0 = 4x workers,
    /// at least 16.
    std::size_t QueueCapacity = 0;
    /// Per-submission deadline from submit() until a worker dequeues the
    /// job, in nanoseconds; 0 = none. An expired job skips compilation
    /// entirely and is delivered in its ordered slot as a failure with
    /// Kind == ErrorKind::DeadlineExceeded — later submissions flow on
    /// undisturbed. Checked only at dequeue: a compile that has started
    /// always runs to completion, so results can never be torn.
    std::uint64_t DeadlineNs = 0;
    /// Ordered streaming sink; may be empty (futures only).
    ResultSink OnResult;
    /// Tag-aware ordered sink; fired after OnResult for each delivery.
    /// Same ordering and non-blocking contracts.
    TaggedResultSink OnResultTagged;
  };

  /// Builds a service owning its backend. Fails with the backend's typed
  /// error (e.g. ErrorKind::UnsupportedDynamicCosts for offline x dynamic
  /// costs). \p G and \p Dyn must outlive the service; \p Dyn may be null.
  static Expected<std::unique_ptr<CompileService>>
  create(const Grammar &G, const DynCostTable *Dyn, Options Opts);

  /// Builds a service around a ready-made backend — the entry point for
  /// deserialized offline tables (CompiledTables::load) or any custom
  /// LabelerBackend. Cannot fail.
  static std::unique_ptr<CompileService>
  create(const Grammar &G, const DynCostTable *Dyn, Options Opts,
         std::unique_ptr<LabelerBackend> Backend);

  /// Borrowed-backend service: \p B outlives the service and may also be
  /// used by the owner (CompileSession's serial path labels on the caller
  /// thread against the same backend). Workers start immediately.
  CompileService(const Grammar &G, const DynCostTable *Dyn, LabelerBackend &B,
                 Options Opts);

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Drains and stops the pool.
  ~CompileService();

  /// Submits one function; blocks while the service is at QueueCapacity
  /// undelivered submissions. The function must stay alive until its
  /// result is delivered. Fails with ErrorKind::ServiceShutdown once
  /// shutdown() has begun (including while blocked on backpressure).
  Expected<std::future<CompileResult>> submit(ir::IRFunction &F) {
    return submit(F, 0);
  }

  /// Tagged submission: \p Tag is opaque to the service and handed back to
  /// Options::OnResultTagged at this submission's delivery — the routing
  /// key for servers multiplexing many clients onto one service.
  Expected<std::future<CompileResult>> submit(ir::IRFunction &F,
                                              std::uint64_t Tag);

  /// Non-blocking admission variant of submit(): instead of waiting for a
  /// slot, fails immediately with ErrorKind::ResourceExhausted when
  /// undelivered submissions have reached \p MaxDepth (0 = the service's
  /// own capacity; larger values are clamped to it). The server's queue
  /// high-watermark shed path — reader threads must answer overload, not
  /// join it.
  Expected<std::future<CompileResult>>
  trySubmit(ir::IRFunction &F, std::uint64_t Tag, std::size_t MaxDepth = 0);

  /// Submits a span in order; the returned futures are in submission
  /// order. Stops at the first submission failure (shutdown mid-batch)
  /// and returns the typed error.
  Expected<std::vector<std::future<CompileResult>>>
  submitBatch(std::span<ir::IRFunction *const> Fns);

  /// Blocks until every accepted submission has been delivered (callback
  /// fired, future ready). The service stays open for more work.
  void drain();

  /// Stops accepting work, drains what was accepted, and joins the
  /// workers. Idempotent; safe to race with blocked submitters (they fail
  /// with ErrorKind::ServiceShutdown). The destructor calls it.
  void shutdown();

  /// True once shutdown() has begun.
  bool stopped() const;

  /// Grows or shrinks the worker pool; waits for the service to go idle
  /// first. Per-worker scratch is kept (grow-only), so shrinking and
  /// re-growing does not lose cache warmth. No-op after shutdown.
  void resizeWorkers(unsigned Workers);

  /// Total submissions accepted so far.
  std::size_t submitted() const;
  /// Total results delivered so far.
  std::size_t delivered() const;

  /// A coherent snapshot of the service's counters and recent-latency
  /// percentiles, taken under one lock acquisition — Submitted, Delivered
  /// and QueueDepth are mutually consistent (QueueDepth == Submitted -
  /// Delivered at the snapshot instant). Safe to call at any time,
  /// including during and after shutdown (the final counts stay
  /// readable). Latency is measured submit() -> the moment the result
  /// reaches its in-order delivery slot, over a bounded window of the
  /// most recent LatencyWindow deliveries.
  ServiceStats statsSnapshot() const;

  /// Latency samples retained for statsSnapshot percentiles.
  static constexpr std::size_t LatencyWindow = 4096;

  /// Current worker-thread count.
  unsigned workers() const;
  const Grammar &grammar() const { return G; }
  const LabelerBackend &backend() const { return *B; }
  /// Mutable backend access for runtime governors (memory pressure); the
  /// backend's own contract says which mutations are labeling-safe.
  LabelerBackend &backend() { return *B; }

private:
  struct Job {
    ir::IRFunction *F = nullptr;
    std::size_t Seq = 0;
    std::uint64_t Tag = 0;
    std::uint64_t SubmitNs = 0;
    std::promise<CompileResult> Promise;
  };
  /// A completed compilation parked until its turn in the delivery order.
  struct Parked {
    CompileResult R;
    std::uint64_t Tag = 0;
    std::uint64_t SubmitNs = 0;
    std::promise<CompileResult> Promise;
  };

  void start(unsigned Workers);
  void workerLoop(unsigned W);
  void deliver(Job J, CompileResult R);
  /// Joins all workers; Stopping must already be set (under M) by the
  /// caller. Resets Stopping so the pool can be restarted.
  void joinWorkers();

  const Grammar &G;
  const DynCostTable *Dyn;
  Options Opts;
  std::unique_ptr<LabelerBackend> OwnedBackend;
  LabelerBackend *B;
  std::size_t Capacity;

  /// One mutex rules submission, queueing, and delivery bookkeeping. The
  /// expensive work (compiling, the sink callback) runs outside it.
  mutable std::mutex M;
  std::condition_variable CanSubmit; ///< Signaled when a slot frees.
  std::condition_variable HasWork;   ///< Signaled on push / stop.
  std::condition_variable Idle;      ///< Signaled when Undelivered hits 0.
  std::deque<Job> Queue;
  std::map<std::size_t, Parked> ReorderBuffer;
  /// Circular window of recent submit->delivery latencies (ns), guarded
  /// by M; LatTotal counts lifetime samples.
  std::vector<std::uint64_t> LatRing;
  std::size_t LatTotal = 0;
  /// Lifetime labeling counters summed at delivery time, guarded by M.
  SelectionStats LabelTotals;
  /// Submissions delivered as queue-deadline failures, guarded by M.
  std::size_t DeadlineExpiredCount = 0;
  std::size_t NextSeq = 0;
  std::size_t NextDeliver = 0;
  std::size_t Undelivered = 0;
  bool Accepting = true;
  bool Stopping = false;  ///< Workers exit when set and the queue is empty.
  bool Flushing = false;  ///< A worker is inside the in-order delivery loop.
  bool ShutdownDone = false;     ///< A shutdown() call owns the teardown.
  bool ShutdownComplete = false; ///< That teardown has fully finished.

  /// Grow-only per-worker scratch; Pool[W] belongs to worker W.
  std::vector<std::unique_ptr<WorkerState>> Pool;
  std::vector<std::thread> Threads;
};

} // namespace pipeline
} // namespace odburg

#endif // ODBURG_PIPELINE_COMPILESERVICE_H
