//===- pipeline/CompileSession.h - End-to-end batch compilation -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile pipeline: one long-lived CompileSession owns the grammar,
/// the dynamic-cost hooks, and a shared LabelerBackend, and compiles
/// corpora of IR functions end-to-end — label, reduce, emit — with a pool
/// of worker threads. The backend is runtime-selectable
/// (Options::Backend): the paper's three labeling engines — DP labeling,
/// offline tables, the on-demand automaton — all run behind the same
/// session, and for static-cost grammars they produce byte-identical
/// assembly. The default on-demand backend is the paper's amortization
/// argument run as a service loop: the automaton persists across batches,
/// so after warm-up every node labels with one probe of the worker's L1
/// micro-cache or one lock-free probe of the shared transition cache, and
/// reduction and emission are embarrassingly parallel per function.
///
/// Concurrency is two-layered:
///   - *across functions*, workers pull corpus indices from an atomic
///     counter and run all three phases for a function in the same worker
///     that labeled it (no phase barriers, no cross-worker hand-off);
///   - *within the backend*, shared state (the automaton's sharded state
///     table and seqlock transition cache, or the frozen offline tables)
///     serves all workers, and per-worker state (reduction scratch, DP
///     label table, L1 micro-cache) lives in the worker's scratch.
///
/// Determinism: results are indexed by corpus position, each function's
/// reduction depends only on its own labels (which are thread-count
/// invariant), and virtual-register numbering restarts per function — so
/// the concatenated assembly and the total cost are byte-identical for
/// any thread count. Per-function failures (e.g. a root with no
/// derivation) are captured in that function's CompileResult and never
/// poison the rest of the batch.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_PIPELINE_COMPILESESSION_H
#define ODBURG_PIPELINE_COMPILESESSION_H

#include "select/LabelerBackend.h"
#include "select/Reducer.h"
#include "targets/AsmEmitter.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace odburg {

namespace targets {
struct Target;
}

namespace pipeline {

/// The outcome of compiling one function end-to-end.
struct CompileResult {
  /// Empty on success; the reducer/emitter diagnostic otherwise.
  std::string Diagnostic;
  /// Fired rules in emission order and the selected cover's total cost.
  Selection Sel;
  /// Newline-terminated assembly text.
  std::string Asm;
  /// Emitted instruction count.
  unsigned Instructions = 0;
  /// Work counters for this function's labeling.
  SelectionStats Stats;
  /// Per-phase wall time, nanoseconds.
  std::uint64_t LabelNs = 0;
  std::uint64_t ReduceNs = 0;
  std::uint64_t EmitNs = 0;

  bool ok() const { return Diagnostic.empty(); }
};

/// Aggregates over one compileFunctions() batch. Phase times are summed
/// across workers, so on a multicore run they exceed WallNs — use them
/// for the relative label/reduce/emit split.
struct SessionStats {
  /// Labeling work counters summed over the batch.
  SelectionStats Label;
  std::uint64_t LabelNs = 0;
  std::uint64_t ReduceNs = 0;
  std::uint64_t EmitNs = 0;
  /// End-to-end batch wall time.
  std::uint64_t WallNs = 0;
  std::uint64_t Functions = 0;
  std::uint64_t Failed = 0;
  std::uint64_t Instructions = 0;
  std::uint64_t AsmBytes = 0;
  /// Summed cost of the successful functions' selected covers.
  Cost TotalCost = Cost::zero();
  /// Shared-state footprint of the backend at batch end (the automaton's
  /// state table, hashed transition cache AND dense rows — including
  /// retired arrays kept alive for lock-free readers — or the offline
  /// tables). Snapshot, not a sum, so memory benches stay honest.
  std::size_t BackendBytes = 0;

  void reset() { *this = SessionStats(); }

  /// Hit rate of the per-worker L1 transition micro-caches over the batch,
  /// in [0, 1]; 0 when no L1 probes happened (non-on-demand backend, L1
  /// disabled, or oversized keys).
  double l1HitRate() const {
    return Label.L1Probes ? static_cast<double>(Label.L1Hits) /
                                static_cast<double>(Label.L1Probes)
                          : 0.0;
  }

  /// Hit rate of the dense-row tier over the batch, in [0, 1]; 0 when no
  /// dense probes happened (tier disabled, non-on-demand backend, or no
  /// eligible operators).
  double denseHitRate() const {
    return Label.DenseProbes ? static_cast<double>(Label.DenseHits) /
                                   static_cast<double>(Label.DenseProbes)
                             : 0.0;
  }
};

/// Renders the label/reduce/emit share of a batch's summed phase time as
/// "62/25/13" (percent, rounded), or "-" when no time was recorded. The
/// common reporting format of odburg-run and bench_p2_pipeline.
std::string phaseSplit(const SessionStats &S);

/// A persistent compile service over one grammar: construct once, feed it
/// corpora forever. Not itself thread-safe — one batch at a time; the
/// concurrency lives inside compileFunctions().
class CompileSession {
public:
  struct Options {
    /// Which labeling engine the session runs on.
    BackendKind Backend = BackendKind::OnDemand;
    /// The chosen backend's tunables (automaton options, L1 micro-cache,
    /// offline generation bounds/threads), passed through verbatim to
    /// LabelerBackend::create — one source of truth, no per-field copies
    /// to drift out of sync.
    LabelerBackend::Options BackendOpts;
    /// Default worker count for compileFunctions (0 = hardware
    /// concurrency); per-call Threads overrides.
    unsigned Threads = 0;
  };

  /// \p Dyn may be null for grammars without dynamic costs; it must
  /// outlive the session, as must \p G.
  ///
  /// The constructors are for configurations that cannot fail — the
  /// default on-demand backend and the DP backend. Backend creation
  /// failure (offline tables over a dynamic-cost grammar, a state-limit
  /// blowout) aborts via reportFatalError; use create() where such
  /// configurations are reachable from user input.
  explicit CompileSession(const Grammar &G, const DynCostTable *Dyn = nullptr);
  CompileSession(const Grammar &G, const DynCostTable *Dyn, Options Opts);
  /// Convenience: a session over a target's full (dynamic-cost) grammar.
  explicit CompileSession(const targets::Target &T);

  /// Fallible construction: returns the backend's typed error (e.g.
  /// ErrorKind::UnsupportedDynamicCosts for offline x dynamic costs)
  /// instead of aborting.
  static Expected<std::unique_ptr<CompileSession>>
  create(const Grammar &G, const DynCostTable *Dyn, Options Opts);

  CompileSession(const CompileSession &) = delete;
  CompileSession &operator=(const CompileSession &) = delete;

  /// Compiles one function end-to-end on the calling thread.
  CompileResult compileFunction(ir::IRFunction &F);

  /// Compiles a corpus with \p Threads workers (0 = the session default).
  /// Each worker labels, reduces and emits a whole function before pulling
  /// the next index, and results come back in corpus order regardless of
  /// scheduling. The automaton stays warm across calls.
  std::vector<CompileResult>
  compileFunctions(std::span<ir::IRFunction *const> Fns, unsigned Threads = 0,
                   SessionStats *Stats = nullptr);

  /// The batch's assembly in corpus order (failed functions contribute
  /// nothing). Byte-identical for any thread count.
  static std::string concatAsm(const std::vector<CompileResult> &Results);

  /// Summed cover cost of the successful results.
  static Cost totalCost(const std::vector<CompileResult> &Results);

  const Grammar &grammar() const { return G; }

  /// The labeling engine the session runs on.
  const LabelerBackend &backend() const { return *B; }

  /// The shared automaton; only valid when the session runs the (default)
  /// on-demand backend — use backend() for engine-agnostic introspection.
  const OnDemandAutomaton &automaton() const {
    assert(B->kind() == BackendKind::OnDemand &&
           "automaton() on a session without an on-demand backend");
    return static_cast<const OnDemandBackend &>(*B).automaton();
  }

private:
  /// Per-worker reusable state, cache-line separated across the pool.
  struct alignas(64) WorkerScratch {
    LabelerScratch Labeler;
    ReductionScratch Reduction;
    SelectionStats Stats;
    std::uint64_t LabelNs = 0;
    std::uint64_t ReduceNs = 0;
    std::uint64_t EmitNs = 0;
  };

  CompileSession(const Grammar &G, const DynCostTable *Dyn, Options Opts,
                 std::unique_ptr<LabelerBackend> Backend);

  void compileOne(ir::IRFunction &F, WorkerScratch &WS, CompileResult &Out);

  const Grammar &G;
  const DynCostTable *Dyn;
  Options Opts;
  std::unique_ptr<LabelerBackend> B;
  /// The worker scratch pool, persistent across batches so per-worker
  /// state (reduction scratch, DP table storage, L1 micro-cache) stays
  /// warm for the session's lifetime. Grown to the largest worker count
  /// seen; per-batch counters are reset at batch start.
  std::vector<std::unique_ptr<WorkerScratch>> Pool;
  /// Scratch for the serial compileFunction() entry point.
  WorkerScratch Serial;
};

} // namespace pipeline
} // namespace odburg

#endif // ODBURG_PIPELINE_COMPILESESSION_H
