//===- pipeline/CompileSession.h - Batch compilation compatibility --------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch face of the compile pipeline. Historically the pipeline's
/// only entry point was CompileSession::compileFunctions(span, threads);
/// since the service redesign the session is a thin compatibility wrapper
/// over pipeline::CompileService — it owns the grammar, the dynamic-cost
/// hooks, and a shared LabelerBackend, plus one lazily created service
/// whose worker pool persists across batches. compileFunctions submits the
/// span through the service and waits for all futures, so its guarantees
/// are exactly the service's:
///
///   - results are indexed by corpus position, and the concatenated
///     assembly and total cost are byte-identical for any thread count;
///   - the backend stays warm across batches (the automaton's tables, the
///     per-worker L1 micro-caches, the DP label tables);
///   - per-function failures are captured per CompileResult and never
///     poison the rest of the batch.
///
/// New code should target CompileService directly: continuous submission
/// (submit -> std::future, ordered OnResult streaming, backpressure,
/// drain/shutdown) is the system's native operating mode, and the batch
/// call is just "submit everything, then wait". The wrapper stays for the
/// corpus-at-once drivers (odburg-run, benches, tests) where gathering
/// the whole corpus first is the point.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_PIPELINE_COMPILESESSION_H
#define ODBURG_PIPELINE_COMPILESESSION_H

#include "pipeline/CompileService.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace odburg {

namespace targets {
struct Target;
}

namespace pipeline {

/// Aggregates over one compileFunctions() batch. Phase times are summed
/// across workers, so on a multicore run they exceed WallNs — use them
/// for the relative label/reduce/emit split.
struct SessionStats {
  /// Labeling work counters summed over the batch.
  SelectionStats Label;
  std::uint64_t LabelNs = 0;
  std::uint64_t ReduceNs = 0;
  std::uint64_t EmitNs = 0;
  /// End-to-end batch wall time.
  std::uint64_t WallNs = 0;
  std::uint64_t Functions = 0;
  std::uint64_t Failed = 0;
  std::uint64_t Instructions = 0;
  std::uint64_t AsmBytes = 0;
  /// Summed cost of the successful functions' selected covers.
  Cost TotalCost = Cost::zero();
  /// Shared-state footprint of the backend at batch end (the automaton's
  /// state table, hashed transition cache AND dense rows — including
  /// retired arrays kept alive for lock-free readers — or the offline
  /// tables). Snapshot, not a sum, so memory benches stay honest.
  std::size_t BackendBytes = 0;
  /// Warm-path tier configuration in effect at batch end — the
  /// TierController's current decisions when the backend is adaptive,
  /// the static configuration otherwise (Tier.Adaptive distinguishes).
  TierDecisions Tier;

  void reset() { *this = SessionStats(); }

  /// Hit rate of the per-worker L1 transition micro-caches over the batch,
  /// in [0, 1]; 0 when no L1 probes happened (non-on-demand backend, L1
  /// disabled, or oversized keys).
  double l1HitRate() const {
    return Label.L1Probes ? static_cast<double>(Label.L1Hits) /
                                static_cast<double>(Label.L1Probes)
                          : 0.0;
  }

  /// Hit rate of the dense-row tier over the batch, in [0, 1]; 0 when no
  /// dense probes happened (tier disabled, non-on-demand backend, or no
  /// eligible operators).
  double denseHitRate() const {
    return Label.DenseProbes ? static_cast<double>(Label.DenseHits) /
                                   static_cast<double>(Label.DenseProbes)
                             : 0.0;
  }

  /// Share of labeled nodes the hybrid backend resolved by direct
  /// offline-partition table indexing, in [0, 1]; 0 for every other
  /// backend (and for an empty batch).
  double offlineHitRate() const {
    return Label.NodesLabeled ? static_cast<double>(Label.OfflineHits) /
                                    static_cast<double>(Label.NodesLabeled)
                              : 0.0;
  }
};

/// Renders the label/reduce/emit share of a batch's summed phase time as
/// "62/25/13" (percent, rounded), or "-" when no time was recorded. The
/// common reporting format of odburg-run and bench_p2_pipeline.
std::string phaseSplit(const SessionStats &S);

/// A persistent compile session over one grammar: construct once, feed it
/// corpora forever. Not itself thread-safe — one batch at a time; the
/// concurrency lives in the underlying CompileService.
class CompileSession {
public:
  struct Options {
    /// Which labeling engine the session runs on.
    BackendKind Backend = BackendKind::OnDemand;
    /// The chosen backend's tunables (automaton options, L1 micro-cache,
    /// offline generation bounds/threads), passed through verbatim to
    /// LabelerBackend::create — one source of truth, no per-field copies
    /// to drift out of sync.
    LabelerBackend::Options BackendOpts;
    /// Default worker count for compileFunctions (0 = hardware
    /// concurrency); per-call Threads overrides.
    unsigned Threads = 0;
  };

  /// \p Dyn may be null for grammars without dynamic costs; it must
  /// outlive the session, as must \p G.
  ///
  /// The constructors are for configurations that cannot fail — the
  /// default on-demand backend and the DP backend. Backend creation
  /// failure (offline tables over a dynamic-cost grammar, a state-limit
  /// blowout) aborts via reportFatalError; use create() where such
  /// configurations are reachable from user input.
  explicit CompileSession(const Grammar &G, const DynCostTable *Dyn = nullptr);
  CompileSession(const Grammar &G, const DynCostTable *Dyn, Options Opts);
  /// Convenience: a session over a target's full (dynamic-cost) grammar.
  explicit CompileSession(const targets::Target &T);

  ~CompileSession();

  /// Fallible construction: returns the backend's typed error (e.g.
  /// ErrorKind::UnsupportedDynamicCosts for offline x dynamic costs)
  /// instead of aborting.
  static Expected<std::unique_ptr<CompileSession>>
  create(const Grammar &G, const DynCostTable *Dyn, Options Opts);

  CompileSession(const CompileSession &) = delete;
  CompileSession &operator=(const CompileSession &) = delete;

  /// Compiles one function end-to-end on the calling thread (no worker
  /// pool involved; the session's serial scratch stays warm).
  CompileResult compileFunction(ir::IRFunction &F);

  /// Compiles a corpus with \p Threads workers (0 = the session default):
  /// submits every function through the persistent service and waits for
  /// all results. Results come back in corpus order regardless of
  /// scheduling, and the backend stays warm across calls. The service's
  /// worker pool is created on first use and resized when \p Threads
  /// changes between batches (per-worker scratch is kept either way).
  std::vector<CompileResult>
  compileFunctions(std::span<ir::IRFunction *const> Fns, unsigned Threads = 0,
                   SessionStats *Stats = nullptr);

  /// The batch's assembly in corpus order (failed functions contribute
  /// nothing). Byte-identical for any thread count.
  static std::string concatAsm(const std::vector<CompileResult> &Results);

  /// Summed cover cost of the successful results.
  static Cost totalCost(const std::vector<CompileResult> &Results);

  const Grammar &grammar() const { return G; }

  /// The labeling engine the session runs on.
  const LabelerBackend &backend() const { return *B; }

  /// The shared automaton; only valid when the session runs the (default)
  /// on-demand backend or the hybrid (whose automaton serves the dyn-cost
  /// remainder) — use backend() for engine-agnostic introspection.
  const OnDemandAutomaton &automaton() const {
    assert((B->kind() == BackendKind::OnDemand ||
            B->kind() == BackendKind::Hybrid) &&
           "automaton() on a session without an on-demand automaton");
    return static_cast<const OnDemandBackend &>(*B).automaton();
  }

private:
  CompileSession(const Grammar &G, const DynCostTable *Dyn, Options Opts,
                 std::unique_ptr<LabelerBackend> Backend);

  /// The service behind compileFunctions, created on first batch with the
  /// batch's worker count and resized on demand afterwards.
  CompileService &serviceFor(unsigned Threads);

  const Grammar &G;
  const DynCostTable *Dyn;
  Options Opts;
  std::unique_ptr<LabelerBackend> B;
  std::unique_ptr<CompileService> Svc;
  /// Scratch for the serial compileFunction() entry point.
  WorkerState Serial;
};

} // namespace pipeline
} // namespace odburg

#endif // ODBURG_PIPELINE_COMPILESESSION_H
