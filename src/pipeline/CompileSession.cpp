//===- pipeline/CompileSession.cpp - Batch compilation compatibility ------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"

#include "support/ErrorHandling.h"
#include "support/Timer.h"
#include "targets/Target.h"

#include <algorithm>
#include <thread>

using namespace odburg;
using namespace odburg::pipeline;

CompileSession::CompileSession(const Grammar &G, const DynCostTable *Dyn)
    : CompileSession(G, Dyn, Options()) {}

CompileSession::CompileSession(const Grammar &G, const DynCostTable *Dyn,
                               Options Opts)
    : G(G), Dyn(Dyn), Opts(Opts) {
  Expected<std::unique_ptr<LabelerBackend>> Backend =
      LabelerBackend::create(Opts.Backend, G, Dyn, Opts.BackendOpts);
  if (!Backend)
    reportFatalError(Backend.message().c_str());
  B = std::move(*Backend);
}

CompileSession::CompileSession(const Grammar &G, const DynCostTable *Dyn,
                               Options Opts,
                               std::unique_ptr<LabelerBackend> Backend)
    : G(G), Dyn(Dyn), Opts(Opts), B(std::move(Backend)) {}

CompileSession::CompileSession(const targets::Target &T)
    : CompileSession(T.G, &T.Dyn) {}

CompileSession::~CompileSession() = default;

Expected<std::unique_ptr<CompileSession>>
CompileSession::create(const Grammar &G, const DynCostTable *Dyn,
                       Options Opts) {
  Expected<std::unique_ptr<LabelerBackend>> Backend =
      LabelerBackend::create(Opts.Backend, G, Dyn, Opts.BackendOpts);
  if (!Backend)
    return Backend.takeError();
  return std::unique_ptr<CompileSession>(
      new CompileSession(G, Dyn, Opts, std::move(*Backend)));
}

CompileResult CompileSession::compileFunction(ir::IRFunction &F) {
  CompileResult Out;
  compileFunctionWith(G, Dyn, *B, F, Serial, Out);
  return Out;
}

CompileService &CompileSession::serviceFor(unsigned Threads) {
  if (!Svc) {
    CompileService::Options SvcOpts;
    SvcOpts.Workers = Threads;
    Svc = std::make_unique<CompileService>(G, Dyn, *B, SvcOpts);
  } else if (Svc->workers() != Threads) {
    Svc->resizeWorkers(Threads);
  }
  return *Svc;
}

std::vector<CompileResult>
CompileSession::compileFunctions(std::span<ir::IRFunction *const> Fns,
                                 unsigned Threads, SessionStats *Stats) {
  Stopwatch Wall;
  if (Threads == 0)
    Threads = Opts.Threads;
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = static_cast<unsigned>(std::min<std::size_t>(Threads, Fns.size()));
  Threads = std::max(Threads, 1u);

  // The batch call in service terms: submit everything in corpus order,
  // wait for every future. In-order delivery makes the futures complete
  // front to back, so the collection loop below finishes roughly as the
  // last function does.
  CompileService &Service = serviceFor(Threads);
  Expected<std::vector<std::future<CompileResult>>> Futures =
      Service.submitBatch(Fns);
  if (!Futures)
    reportFatalError(Futures.message().c_str()); // Session never shuts
                                                 // its own service down.
  std::vector<CompileResult> Results(Fns.size());
  for (std::size_t I = 0; I < Futures->size(); ++I)
    Results[I] = (*Futures)[I].get();

  if (Stats) {
    for (const CompileResult &R : Results) {
      Stats->Label += R.Stats;
      Stats->LabelNs += R.LabelNs;
      Stats->ReduceNs += R.ReduceNs;
      Stats->EmitNs += R.EmitNs;
      ++Stats->Functions;
      if (!R.ok()) {
        ++Stats->Failed;
        continue;
      }
      Stats->Instructions += R.Instructions;
      Stats->AsmBytes += R.Asm.size();
      Stats->TotalCost += R.Sel.TotalCost;
    }
    Stats->WallNs += Wall.elapsedNs();
    Stats->BackendBytes = B->memoryBytes();
    Stats->Tier = B->tierDecisions();
  }
  return Results;
}

std::string
CompileSession::concatAsm(const std::vector<CompileResult> &Results) {
  std::size_t Bytes = 0;
  for (const CompileResult &R : Results)
    Bytes += R.Asm.size();
  std::string Out;
  Out.reserve(Bytes);
  for (const CompileResult &R : Results)
    Out += R.Asm;
  return Out;
}

Cost CompileSession::totalCost(const std::vector<CompileResult> &Results) {
  Cost Total = Cost::zero();
  for (const CompileResult &R : Results)
    if (R.ok())
      Total += R.Sel.TotalCost;
  return Total;
}

std::string odburg::pipeline::phaseSplit(const SessionStats &S) {
  double Total = static_cast<double>(S.LabelNs) +
                 static_cast<double>(S.ReduceNs) +
                 static_cast<double>(S.EmitNs);
  if (Total == 0)
    return "-";
  auto Pct = [Total](std::uint64_t Ns) {
    return static_cast<unsigned>(100.0 * static_cast<double>(Ns) / Total +
                                 0.5);
  };
  return std::to_string(Pct(S.LabelNs)) + "/" + std::to_string(Pct(S.ReduceNs)) +
         "/" + std::to_string(Pct(S.EmitNs));
}
