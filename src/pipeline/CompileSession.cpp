//===- pipeline/CompileSession.cpp - End-to-end batch compilation ---------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileSession.h"

#include "support/ErrorHandling.h"
#include "support/Timer.h"
#include "targets/Target.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace odburg;
using namespace odburg::pipeline;

CompileSession::CompileSession(const Grammar &G, const DynCostTable *Dyn)
    : CompileSession(G, Dyn, Options()) {}

CompileSession::CompileSession(const Grammar &G, const DynCostTable *Dyn,
                               Options Opts)
    : G(G), Dyn(Dyn), Opts(Opts) {
  Expected<std::unique_ptr<LabelerBackend>> Backend =
      LabelerBackend::create(Opts.Backend, G, Dyn, Opts.BackendOpts);
  if (!Backend)
    reportFatalError(Backend.message().c_str());
  B = std::move(*Backend);
}

CompileSession::CompileSession(const Grammar &G, const DynCostTable *Dyn,
                               Options Opts,
                               std::unique_ptr<LabelerBackend> Backend)
    : G(G), Dyn(Dyn), Opts(Opts), B(std::move(Backend)) {}

CompileSession::CompileSession(const targets::Target &T)
    : CompileSession(T.G, &T.Dyn) {}

Expected<std::unique_ptr<CompileSession>>
CompileSession::create(const Grammar &G, const DynCostTable *Dyn,
                       Options Opts) {
  Expected<std::unique_ptr<LabelerBackend>> Backend =
      LabelerBackend::create(Opts.Backend, G, Dyn, Opts.BackendOpts);
  if (!Backend)
    return Backend.takeError();
  return std::unique_ptr<CompileSession>(
      new CompileSession(G, Dyn, Opts, std::move(*Backend)));
}

void CompileSession::compileOne(ir::IRFunction &F, WorkerScratch &WS,
                                CompileResult &Out) {
  SelectionStats FnStats;
  Stopwatch Phase;
  const Labeling &L = B->labelFunction(F, WS.Labeler, &FnStats);
  Out.LabelNs = Phase.elapsedNs();

  Phase.restart();
  Expected<Selection> S = reduce(G, F, L, Dyn, WS.Reduction);
  Out.ReduceNs = Phase.elapsedNs();
  Out.Stats = FnStats;
  WS.Stats += FnStats;
  WS.LabelNs += Out.LabelNs;
  WS.ReduceNs += Out.ReduceNs;
  if (!S) {
    Out.Diagnostic = S.message();
    return;
  }
  Out.Sel = std::move(*S);

  Phase.restart();
  targets::AsmBuffer Buf;
  Error E = targets::emitAsm(G, F, Out.Sel, Buf);
  Out.EmitNs = Phase.elapsedNs();
  WS.EmitNs += Out.EmitNs;
  if (E) {
    Out.Diagnostic = E.message();
    return;
  }
  Out.Asm = std::move(Buf.Text);
  Out.Instructions = Buf.Instructions;
}

CompileResult CompileSession::compileFunction(ir::IRFunction &F) {
  CompileResult Out;
  compileOne(F, Serial, Out);
  return Out;
}

std::vector<CompileResult>
CompileSession::compileFunctions(std::span<ir::IRFunction *const> Fns,
                                 unsigned Threads, SessionStats *Stats) {
  Stopwatch Wall;
  if (Threads == 0)
    Threads = Opts.Threads;
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Threads = static_cast<unsigned>(std::min<std::size_t>(Threads, Fns.size()));

  std::vector<CompileResult> Results(Fns.size());
  // Workers reuse the session's persistent scratch pool: reduction scratch
  // and DP tables keep their capacity, and the on-demand backend's L1
  // micro-caches stay warm across batches. Per-batch counters reset here.
  unsigned PoolSize = std::max(Threads, 1u);
  while (Pool.size() < PoolSize)
    Pool.push_back(std::make_unique<WorkerScratch>());
  for (unsigned W = 0; W < PoolSize; ++W) {
    WorkerScratch &WS = *Pool[W];
    WS.Stats.reset();
    WS.LabelNs = WS.ReduceNs = WS.EmitNs = 0;
  }

  if (Threads <= 1) {
    for (std::size_t I = 0; I < Fns.size(); ++I)
      compileOne(*Fns[I], *Pool[0], Results[I]);
  } else {
    // Functions are handed out by index, so results land in corpus order
    // no matter which worker compiles what; uneven sizes self-balance.
    std::atomic<std::size_t> Next{0};
    auto Work = [&](unsigned W) {
      std::size_t I;
      while ((I = Next.fetch_add(1, std::memory_order_relaxed)) < Fns.size())
        compileOne(*Fns[I], *Pool[W], Results[I]);
    };
    std::vector<std::thread> Workers;
    Workers.reserve(Threads - 1);
    for (unsigned W = 1; W < Threads; ++W)
      Workers.emplace_back(Work, W);
    Work(0);
    for (std::thread &T : Workers)
      T.join();
  }

  if (Stats) {
    for (unsigned W = 0; W < PoolSize; ++W) {
      const WorkerScratch &WS = *Pool[W];
      Stats->Label += WS.Stats;
      Stats->LabelNs += WS.LabelNs;
      Stats->ReduceNs += WS.ReduceNs;
      Stats->EmitNs += WS.EmitNs;
    }
    Stats->WallNs += Wall.elapsedNs();
    Stats->BackendBytes = B->memoryBytes();
    for (const CompileResult &R : Results) {
      ++Stats->Functions;
      if (!R.ok()) {
        ++Stats->Failed;
        continue;
      }
      Stats->Instructions += R.Instructions;
      Stats->AsmBytes += R.Asm.size();
      Stats->TotalCost += R.Sel.TotalCost;
    }
  }
  return Results;
}

std::string
CompileSession::concatAsm(const std::vector<CompileResult> &Results) {
  std::size_t Bytes = 0;
  for (const CompileResult &R : Results)
    Bytes += R.Asm.size();
  std::string Out;
  Out.reserve(Bytes);
  for (const CompileResult &R : Results)
    Out += R.Asm;
  return Out;
}

Cost CompileSession::totalCost(const std::vector<CompileResult> &Results) {
  Cost Total = Cost::zero();
  for (const CompileResult &R : Results)
    if (R.ok())
      Total += R.Sel.TotalCost;
  return Total;
}

std::string odburg::pipeline::phaseSplit(const SessionStats &S) {
  double Total = static_cast<double>(S.LabelNs) +
                 static_cast<double>(S.ReduceNs) +
                 static_cast<double>(S.EmitNs);
  if (Total == 0)
    return "-";
  auto Pct = [Total](std::uint64_t Ns) {
    return static_cast<unsigned>(100.0 * static_cast<double>(Ns) / Total +
                                 0.5);
  };
  return std::to_string(Pct(S.LabelNs)) + "/" + std::to_string(Pct(S.ReduceNs)) +
         "/" + std::to_string(Pct(S.EmitNs));
}
