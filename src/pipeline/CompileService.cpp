//===- pipeline/CompileService.cpp - Asynchronous streaming compilation ---===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompileService.h"

#include "support/FaultInjection.h"
#include "support/Timer.h"

#include <algorithm>

using namespace odburg;
using namespace odburg::pipeline;

void pipeline::compileFunctionWith(const Grammar &G, const DynCostTable *Dyn,
                                   LabelerBackend &B, ir::IRFunction &F,
                                   WorkerState &WS, CompileResult &Out) {
  SelectionStats FnStats;
  Stopwatch Phase;
  const Labeling &L = B.labelFunction(F, WS.Labeler, &FnStats);
  Out.LabelNs = Phase.elapsedNs();

  Phase.restart();
  Expected<Selection> S = reduce(G, F, L, Dyn, WS.Reduction);
  Out.ReduceNs = Phase.elapsedNs();
  Out.Stats = FnStats;
  if (!S) {
    Out.Diagnostic = S.message();
    return;
  }
  Out.Sel = std::move(*S);

  Phase.restart();
  targets::AsmBuffer Buf;
  Error E = targets::emitAsm(G, F, Out.Sel, Buf);
  Out.EmitNs = Phase.elapsedNs();
  if (E) {
    Out.Diagnostic = E.message();
    return;
  }
  Out.Asm = std::move(Buf.Text);
  Out.Instructions = Buf.Instructions;
}

static unsigned resolveWorkers(unsigned N) {
  if (N == 0)
    N = std::thread::hardware_concurrency();
  return std::max(1u, N);
}

static std::size_t resolveCapacity(std::size_t Requested, unsigned Workers) {
  if (Requested)
    return Requested;
  return std::max<std::size_t>(static_cast<std::size_t>(Workers) * 4, 16);
}

Expected<std::unique_ptr<CompileService>>
CompileService::create(const Grammar &G, const DynCostTable *Dyn,
                       Options Opts) {
  Expected<std::unique_ptr<LabelerBackend>> Backend =
      LabelerBackend::create(Opts.Backend, G, Dyn, Opts.BackendOpts);
  if (!Backend)
    return Backend.takeError();
  return create(G, Dyn, std::move(Opts), std::move(*Backend));
}

std::unique_ptr<CompileService>
CompileService::create(const Grammar &G, const DynCostTable *Dyn, Options Opts,
                       std::unique_ptr<LabelerBackend> Backend) {
  LabelerBackend &B = *Backend;
  auto Svc =
      std::make_unique<CompileService>(G, Dyn, B, std::move(Opts));
  Svc->OwnedBackend = std::move(Backend);
  return Svc;
}

CompileService::CompileService(const Grammar &G, const DynCostTable *Dyn,
                               LabelerBackend &B, Options Opts)
    : G(G), Dyn(Dyn), Opts(std::move(Opts)), B(&B) {
  unsigned Workers = resolveWorkers(this->Opts.Workers);
  Capacity = resolveCapacity(this->Opts.QueueCapacity, Workers);
  start(Workers);
}

CompileService::~CompileService() { shutdown(); }

void CompileService::start(unsigned Workers) {
  // Only ever called with no workers running (construction, or after
  // joinWorkers()). The scratch pool must be fully grown before the
  // first thread spawns: workerLoop reads Pool[W] without the lock, so
  // no push_back may reallocate once a worker exists. Threads itself is
  // mutated under M because workers() reads it concurrently.
  std::lock_guard<std::mutex> L(M);
  while (Pool.size() < Workers)
    Pool.push_back(std::make_unique<WorkerState>());
  Threads.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([this, W] { workerLoop(W); });
}

unsigned CompileService::workers() const {
  std::lock_guard<std::mutex> L(M);
  return static_cast<unsigned>(Threads.size());
}

std::size_t CompileService::submitted() const {
  std::lock_guard<std::mutex> L(M);
  return NextSeq;
}

std::size_t CompileService::delivered() const {
  std::lock_guard<std::mutex> L(M);
  return NextDeliver;
}

bool CompileService::stopped() const {
  std::lock_guard<std::mutex> L(M);
  return !Accepting;
}

Expected<std::future<CompileResult>>
CompileService::submit(ir::IRFunction &F, std::uint64_t Tag) {
  if (fault::shouldFail(fault::Site::ServiceSubmit))
    return Error::make(ErrorKind::ResourceExhausted,
                       "injected fault: submission rejected at service entry");
  std::future<CompileResult> Fut;
  {
    std::unique_lock<std::mutex> L(M);
    // Backpressure: wait for an undelivered-submission slot. Shutdown
    // releases blocked submitters with the typed error instead of letting
    // them hang on a queue that will never drain below the bound.
    CanSubmit.wait(L, [&] { return !Accepting || Undelivered < Capacity; });
    if (!Accepting)
      return Error::make(ErrorKind::ServiceShutdown,
                         "compile service is shut down; submission rejected");
    Job J;
    J.F = &F;
    J.Seq = NextSeq++;
    J.Tag = Tag;
    J.SubmitNs = nowNs();
    Fut = J.Promise.get_future();
    ++Undelivered;
    Queue.push_back(std::move(J));
  }
  HasWork.notify_one();
  return Fut;
}

Expected<std::future<CompileResult>>
CompileService::trySubmit(ir::IRFunction &F, std::uint64_t Tag,
                          std::size_t MaxDepth) {
  if (fault::shouldFail(fault::Site::ServiceSubmit))
    return Error::make(ErrorKind::ResourceExhausted,
                       "injected fault: submission rejected at service entry");
  std::size_t Bound = MaxDepth ? std::min(MaxDepth, Capacity) : Capacity;
  std::future<CompileResult> Fut;
  {
    std::unique_lock<std::mutex> L(M);
    if (!Accepting)
      return Error::make(ErrorKind::ServiceShutdown,
                         "compile service is shut down; submission rejected");
    if (Undelivered >= Bound)
      return Error::make(ErrorKind::ResourceExhausted,
                         "service queue at high-watermark (" +
                             std::to_string(Undelivered) + "/" +
                             std::to_string(Bound) + " undelivered)");
    Job J;
    J.F = &F;
    J.Seq = NextSeq++;
    J.Tag = Tag;
    J.SubmitNs = nowNs();
    Fut = J.Promise.get_future();
    ++Undelivered;
    Queue.push_back(std::move(J));
  }
  HasWork.notify_one();
  return Fut;
}

ServiceStats CompileService::statsSnapshot() const {
  ServiceStats S;
  std::vector<std::uint64_t> Window;
  {
    std::lock_guard<std::mutex> L(M);
    S.Submitted = NextSeq;
    S.Delivered = NextDeliver;
    S.QueueDepth = Undelivered;
    S.Workers = static_cast<unsigned>(Threads.size());
    S.DeadlineExpired = DeadlineExpiredCount;
    S.Label = LabelTotals;
    std::size_t Samples = std::min(LatTotal, LatRing.size());
    S.LatencySamples = Samples;
    Window.assign(LatRing.begin(),
                  LatRing.begin() + static_cast<std::ptrdiff_t>(Samples));
  }
  if (Window.empty())
    return S;
  // Sort outside the lock; the window is a private copy.
  std::sort(Window.begin(), Window.end());
  auto Pct = [&](double P) {
    std::size_t Idx = static_cast<std::size_t>(
        P * static_cast<double>(Window.size() - 1) + 0.5);
    return static_cast<double>(Window[Idx]) / 1e3;
  };
  S.P50Us = Pct(0.5);
  S.P90Us = Pct(0.9);
  S.P99Us = Pct(0.99);
  return S;
}

Expected<std::vector<std::future<CompileResult>>>
CompileService::submitBatch(std::span<ir::IRFunction *const> Fns) {
  std::vector<std::future<CompileResult>> Futures;
  Futures.reserve(Fns.size());
  for (ir::IRFunction *F : Fns) {
    Expected<std::future<CompileResult>> Fut = submit(*F);
    if (!Fut)
      return Fut.takeError();
    Futures.push_back(std::move(*Fut));
  }
  return Futures;
}

void CompileService::workerLoop(unsigned W) {
  WorkerState &WS = *Pool[W];
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> L(M);
      HasWork.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and fully drained.
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    CompileResult R;
    // Deadline policy runs at dequeue, before any compile work: a job
    // that already overstayed its budget is answered typed instead of
    // compiled (its client stopped waiting), while a compile that has
    // started always runs to completion. The ordered slot is kept — the
    // expiry is delivered like any other per-function failure.
    if (Opts.DeadlineNs && nowNs() - J.SubmitNs > Opts.DeadlineNs) {
      R.Diagnostic =
          "deadline exceeded: queued " +
          std::to_string((nowNs() - J.SubmitNs) / 1000000) + " ms against a " +
          std::to_string(Opts.DeadlineNs / 1000000) + " ms budget";
      R.Kind = ErrorKind::DeadlineExceeded;
    } else {
      compileFunctionWith(G, Dyn, *B, *J.F, WS, R);
    }
    deliver(std::move(J), std::move(R));
  }
}

void CompileService::deliver(Job J, CompileResult R) {
  std::unique_lock<std::mutex> L(M);
  std::size_t Seq = J.Seq;
  ReorderBuffer.emplace(
      Seq, Parked{std::move(R), J.Tag, J.SubmitNs, std::move(J.Promise)});
  if (Flushing)
    return; // The active flusher will pick this up when its turn comes.
  Flushing = true;
  while (true) {
    auto It = ReorderBuffer.find(NextDeliver);
    if (It == ReorderBuffer.end())
      break;
    Parked P = std::move(It->second);
    ReorderBuffer.erase(It);
    std::size_t DeliverSeq = NextDeliver;
    // Latency sample: submission to reaching the in-order delivery slot.
    if (LatRing.size() < LatencyWindow)
      LatRing.resize(LatencyWindow);
    LatRing[LatTotal % LatencyWindow] = nowNs() - P.SubmitNs;
    ++LatTotal;
    LabelTotals += P.R.Stats;
    if (!P.R.ok() && P.R.Kind == ErrorKind::DeadlineExceeded)
      ++DeadlineExpiredCount;
    // The sink and the promise fulfil outside the lock: the callback may
    // be slow (it is the consumer), and other workers must keep parking
    // completions meanwhile. Order is safe — Flushing keeps this the only
    // delivering thread, and NextDeliver only advances here.
    L.unlock();
    if (Opts.OnResult)
      Opts.OnResult(DeliverSeq, P.R);
    if (Opts.OnResultTagged)
      Opts.OnResultTagged(DeliverSeq, P.Tag, P.R);
    P.Promise.set_value(std::move(P.R));
    L.lock();
    ++NextDeliver;
    --Undelivered;
    CanSubmit.notify_one();
  }
  Flushing = false;
  if (Undelivered == 0)
    Idle.notify_all();
}

void CompileService::drain() {
  std::unique_lock<std::mutex> L(M);
  Idle.wait(L, [&] { return Undelivered == 0; });
}

void CompileService::shutdown() {
  {
    std::unique_lock<std::mutex> L(M);
    Accepting = false;
    CanSubmit.notify_all();
    if (ShutdownDone) {
      // A concurrent caller owns the teardown; wait for it to finish so
      // every returning shutdown() means "the pool is gone" — a second
      // caller racing ahead into destruction would tear the mutex and
      // threads out from under the first.
      Idle.wait(L, [&] { return ShutdownComplete; });
      return;
    }
    ShutdownDone = true;
    Idle.wait(L, [&] { return Undelivered == 0; });
    Stopping = true;
  }
  joinWorkers();
  {
    std::lock_guard<std::mutex> L(M);
    ShutdownComplete = true;
  }
  Idle.notify_all();
}

void CompileService::joinWorkers() {
  // Joining must happen outside M (exiting workers take it), but the
  // vector itself is only touched under M — workers() may be probing
  // Threads.size() from another thread.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> L(M);
    ToJoin.swap(Threads);
  }
  HasWork.notify_all();
  for (std::thread &T : ToJoin)
    T.join();
  std::lock_guard<std::mutex> L(M);
  Stopping = false;
}

void CompileService::resizeWorkers(unsigned Workers) {
  Workers = std::max(1u, Workers);
  {
    std::unique_lock<std::mutex> L(M);
    if (!Accepting)
      return;
    Idle.wait(L, [&] { return Undelivered == 0; });
    if (Workers == Threads.size())
      return;
    Stopping = true;
  }
  joinWorkers();
  start(Workers);
}
