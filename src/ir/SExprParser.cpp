//===- ir/SExprParser.cpp - Parse IR from s-expressions ---------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"

#include "support/SmallVector.h"

#include <cctype>
#include <istream>
#include <string>

using namespace odburg;
using namespace odburg::ir;

namespace {

/// Minimal recursive-descent reader over the s-expression text.
class Reader {
public:
  Reader(std::string_view Text, const Grammar &G, IRFunction &F,
         unsigned FirstLine)
      : Text(Text), G(G), F(F), Line(FirstLine) {}

  Expected<Node *> parseOne() {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != '(')
      return err("expected '('");
    ++Pos;
    skipSpace();
    std::string_view Name = lexAtom();
    if (Name.empty())
      return err("expected operator name");
    OperatorId Op = G.findOperator(Name);
    if (Op == InvalidOperator)
      return errAt(Pos - Name.size(),
                   "unknown operator '" + std::string(Name) + "'");
    unsigned Arity = G.operatorArity(Op);

    Node *N = nullptr;
    if (Arity == 0) {
      // Leaf: one payload atom (integer value or symbol), optional.
      skipSpace();
      std::int64_t Value = 0;
      const char *Symbol = nullptr;
      if (Pos < Text.size() && Text[Pos] != ')') {
        std::string_view Payload = lexAtom();
        if (Payload.empty())
          return err("expected payload atom");
        if (isInteger(Payload))
          Value = std::stoll(std::string(Payload));
        else
          Symbol = F.internString(Payload);
      }
      N = F.makeLeaf(Op, Value, Symbol);
    } else {
      // Optional interior payload (branch target etc.) before the children.
      std::int64_t Value = 0;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')') {
        std::string_view Payload = lexAtom();
        if (!isInteger(Payload))
          return errAt(Pos - Payload.size(),
                       "expected integer payload or '(' after '" +
                           G.operatorName(Op) + "'");
        Value = std::stoll(std::string(Payload));
      }
      SmallVector<Node *, 4> Children;
      for (unsigned I = 0; I < Arity; ++I) {
        Expected<Node *> Child = parseOne();
        if (!Child)
          return Child;
        Children.push_back(*Child);
      }
      N = F.makeNode(Op, Children, Value);
    }
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != ')')
      return err("expected ')' closing '" + G.operatorName(Op) + "'");
    ++Pos;
    return N;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

private:
  static bool isInteger(std::string_view S) {
    std::size_t Start = S[0] == '-' ? 1 : 0;
    if (Start == S.size())
      return false;
    for (std::size_t I = Start; I < S.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
    return true;
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') { // Comment to end of line.
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view lexAtom() {
    std::size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  Error err(const std::string &Msg) { return errAt(Pos, Msg); }

  /// \p At is the text offset the diagnostic points at; it must be on the
  /// current line (errors never point backwards past a newline).
  Error errAt(std::size_t At, const std::string &Msg) {
    unsigned Column = static_cast<unsigned>(At - LineStart) + 1;
    return Error::make(ErrorKind::MalformedInput,
                       "s-expression: " + Msg + " on line " +
                           std::to_string(Line) + ", column " +
                           std::to_string(Column));
  }

  std::string_view Text;
  const Grammar &G;
  IRFunction &F;
  std::size_t Pos = 0;
  std::size_t LineStart = 0;
  unsigned Line = 1;
};

} // namespace

Expected<Node *> ir::parseSExpr(std::string_view Text, const Grammar &G,
                                IRFunction &F) {
  Reader R(Text, G, F, 1);
  return R.parseOne();
}

Error ir::parseSExprProgram(std::string_view Text, const Grammar &G,
                            IRFunction &F, unsigned FirstLine) {
  Reader R(Text, G, F, FirstLine);
  while (!R.atEnd()) {
    Expected<Node *> Root = R.parseOne();
    if (!Root)
      return Root.takeError();
    F.addRoot(*Root);
  }
  return Error::success();
}

Expected<bool> SExprFunctionStream::next(IRFunction &F) {
  // A chunk of only comments parses to zero roots; treat it like blank
  // space and keep scanning rather than yielding an empty function.
  while (true) {
    // Gather the next function: skip blank lines, then collect lines
    // until a blank line or end of input. The chunk keeps its newlines so
    // diagnostics can be offset to stream-absolute lines. Comment-only
    // lines inside a function do not split it.
    Chunk.clear();
    unsigned FirstLine = 0;
    std::string Line;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      bool Blank = true;
      for (char C : Line)
        if (!std::isspace(static_cast<unsigned char>(C))) {
          Blank = false;
          break;
        }
      if (Blank) {
        if (!Chunk.empty())
          break; // Function complete.
        continue; // Leading blank lines before any content.
      }
      if (Chunk.empty())
        FirstLine = LineNo;
      Chunk += Line;
      Chunk += '\n';
    }
    // Distinguish end-of-input from an I/O failure: badbit means the
    // read itself broke mid-stream, and whatever was gathered must not
    // be passed off as a complete function. Deliberately not
    // MalformedInput — skipping cannot recover a broken stream, so
    // consumers must stop, not skip.
    if (In.bad())
      return Error::make("s-expression stream: input read error near line " +
                         std::to_string(LineNo));
    if (Chunk.empty())
      return false; // Clean end of input.

    if (Error E = parseSExprProgram(Chunk, G, F, FirstLine))
      return E;
    if (!F.roots().empty())
      return true;
  }
}
