//===- ir/SExprParser.cpp - Parse IR from s-expressions ---------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"

#include "support/SmallVector.h"

#include <cctype>
#include <string>

using namespace odburg;
using namespace odburg::ir;

namespace {

/// Minimal recursive-descent reader over the s-expression text.
class Reader {
public:
  Reader(std::string_view Text, const Grammar &G, IRFunction &F)
      : Text(Text), G(G), F(F) {}

  Expected<Node *> parseOne() {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != '(')
      return err("expected '('");
    ++Pos;
    skipSpace();
    std::string_view Name = lexAtom();
    if (Name.empty())
      return err("expected operator name");
    OperatorId Op = G.findOperator(Name);
    if (Op == InvalidOperator)
      return err("unknown operator '" + std::string(Name) + "'");
    unsigned Arity = G.operatorArity(Op);

    Node *N = nullptr;
    if (Arity == 0) {
      // Leaf: one payload atom (integer value or symbol), optional.
      skipSpace();
      std::int64_t Value = 0;
      const char *Symbol = nullptr;
      if (Pos < Text.size() && Text[Pos] != ')') {
        std::string_view Payload = lexAtom();
        if (Payload.empty())
          return err("expected payload atom");
        if (isInteger(Payload))
          Value = std::stoll(std::string(Payload));
        else
          Symbol = F.internString(Payload);
      }
      N = F.makeLeaf(Op, Value, Symbol);
    } else {
      // Optional interior payload (branch target etc.) before the children.
      std::int64_t Value = 0;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')') {
        std::string_view Payload = lexAtom();
        if (!isInteger(Payload))
          return err("expected integer payload or '(' after '" +
                     G.operatorName(Op) + "'");
        Value = std::stoll(std::string(Payload));
      }
      SmallVector<Node *, 4> Children;
      for (unsigned I = 0; I < Arity; ++I) {
        Expected<Node *> Child = parseOne();
        if (!Child)
          return Child;
        Children.push_back(*Child);
      }
      N = F.makeNode(Op, Children, Value);
    }
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != ')')
      return err("expected ')' closing '" + G.operatorName(Op) + "'");
    ++Pos;
    return N;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

private:
  static bool isInteger(std::string_view S) {
    std::size_t Start = S[0] == '-' ? 1 : 0;
    if (Start == S.size())
      return false;
    for (std::size_t I = Start; I < S.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
    return true;
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') { // Comment to end of line.
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view lexAtom() {
    std::size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  Error err(const std::string &Msg) {
    return Error::make("s-expression: " + Msg + " on line " +
                       std::to_string(Line));
  }

  std::string_view Text;
  const Grammar &G;
  IRFunction &F;
  std::size_t Pos = 0;
  unsigned Line = 1;
};

} // namespace

Expected<Node *> ir::parseSExpr(std::string_view Text, const Grammar &G,
                                IRFunction &F) {
  Reader R(Text, G, F);
  return R.parseOne();
}

Error ir::parseSExprProgram(std::string_view Text, const Grammar &G,
                            IRFunction &F) {
  Reader R(Text, G, F);
  while (!R.atEnd()) {
    Expected<Node *> Root = R.parseOne();
    if (!Root)
      return Root.takeError();
    F.addRoot(*Root);
  }
  return Error::success();
}
