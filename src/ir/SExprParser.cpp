//===- ir/SExprParser.cpp - Parse IR from s-expressions ---------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/SExprParser.h"

#include "support/SmallVector.h"
#include "support/StringUtil.h"

#include <cctype>
#include <istream>
#include <string>

using namespace odburg;
using namespace odburg::ir;

namespace {

/// Minimal recursive-descent reader over the s-expression text.
class Reader {
public:
  Reader(std::string_view Text, const Grammar &G, IRFunction &F,
         unsigned FirstLine)
      : Text(Text), G(G), F(F), Line(FirstLine) {}

  Expected<Node *> parseOne() {
    // Depth guard: the reader recurses per nesting level, so pathological
    // input ("((((…") must fail typed before the call stack does.
    if (Depth >= MaxSExprDepth)
      return err("nesting exceeds depth limit (" +
                 std::to_string(MaxSExprDepth) + ")");
    ++Depth;
    Expected<Node *> N = parseOneGuarded();
    --Depth;
    return N;
  }

  Expected<Node *> parseOneGuarded() {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != '(')
      return err("expected '('");
    ++Pos;
    skipSpace();
    std::string_view Name = lexAtom();
    if (Name.empty())
      return err("expected operator name");
    if (Name.size() > MaxSExprAtomBytes)
      return errAt(Pos - Name.size(), "atom exceeds length limit (" +
                                          std::to_string(MaxSExprAtomBytes) +
                                          " bytes)");
    OperatorId Op = G.findOperator(Name);
    if (Op == InvalidOperator)
      return errAt(Pos - Name.size(),
                   "unknown operator '" + std::string(Name) + "'");
    unsigned Arity = G.operatorArity(Op);

    Node *N = nullptr;
    if (Arity == 0) {
      // Leaf: one payload atom (integer value or symbol), optional.
      skipSpace();
      std::int64_t Value = 0;
      const char *Symbol = nullptr;
      if (Pos < Text.size() && Text[Pos] != ')') {
        std::string_view Payload = lexAtom();
        if (Payload.empty())
          return err("expected payload atom");
        if (Payload.size() > MaxSExprAtomBytes)
          return errAt(Pos - Payload.size(),
                       "atom exceeds length limit (" +
                           std::to_string(MaxSExprAtomBytes) + " bytes)");
        if (isInteger(Payload)) {
          if (!parseInt(Payload, Value))
            return errAt(Pos - Payload.size(),
                         "integer payload out of range");
        } else {
          Symbol = F.internString(Payload);
        }
      }
      N = F.makeLeaf(Op, Value, Symbol);
    } else {
      // Optional interior payload (branch target etc.) before the children.
      std::int64_t Value = 0;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')') {
        std::string_view Payload = lexAtom();
        if (!isInteger(Payload))
          return errAt(Pos - Payload.size(),
                       "expected integer payload or '(' after '" +
                           G.operatorName(Op) + "'");
        if (!parseInt(Payload, Value))
          return errAt(Pos - Payload.size(), "integer payload out of range");
      }
      SmallVector<Node *, 4> Children;
      for (unsigned I = 0; I < Arity; ++I) {
        Expected<Node *> Child = parseOne();
        if (!Child)
          return Child;
        Children.push_back(*Child);
      }
      N = F.makeNode(Op, Children, Value);
    }
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != ')')
      return err("expected ')' closing '" + G.operatorName(Op) + "'");
    ++Pos;
    return N;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

private:
  static bool isInteger(std::string_view S) {
    std::size_t Start = S[0] == '-' ? 1 : 0;
    if (Start == S.size())
      return false;
    for (std::size_t I = Start; I < S.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
    return true;
  }

  /// Overflow-checked decimal parse of an isInteger() atom; std::stoll
  /// would throw on out-of-range digits, which untrusted input can send.
  static bool parseInt(std::string_view S, std::int64_t &Out) {
    bool Neg = S[0] == '-';
    std::uint64_t Mag = 0;
    const std::uint64_t Limit =
        Neg ? 0x8000000000000000ULL : 0x7fffffffffffffffULL;
    for (std::size_t I = Neg ? 1 : 0; I < S.size(); ++I) {
      unsigned D = static_cast<unsigned>(S[I] - '0');
      if (Mag > (Limit - D) / 10)
        return false;
      Mag = Mag * 10 + D;
    }
    // Two's-complement negate via unsigned arithmetic: -INT64_MIN would
    // overflow a signed negation.
    Out = static_cast<std::int64_t>(Neg ? 0 - Mag : Mag);
    return true;
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') { // Comment to end of line.
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view lexAtom() {
    std::size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '(' && Text[Pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  Error err(const std::string &Msg) { return errAt(Pos, Msg); }

  /// \p At is the text offset the diagnostic points at; it must be on the
  /// current line (errors never point backwards past a newline).
  Error errAt(std::size_t At, const std::string &Msg) {
    unsigned Column = static_cast<unsigned>(At - LineStart) + 1;
    return Error::make(ErrorKind::MalformedInput,
                       "s-expression: " + Msg + " on line " +
                           std::to_string(Line) + ", column " +
                           std::to_string(Column));
  }

  std::string_view Text;
  const Grammar &G;
  IRFunction &F;
  std::size_t Pos = 0;
  std::size_t LineStart = 0;
  unsigned Line = 1;
  unsigned Depth = 0;
};

} // namespace

Expected<Node *> ir::parseSExpr(std::string_view Text, const Grammar &G,
                                IRFunction &F) {
  Reader R(Text, G, F, 1);
  return R.parseOne();
}

Error ir::parseSExprProgram(std::string_view Text, const Grammar &G,
                            IRFunction &F, unsigned FirstLine) {
  Reader R(Text, G, F, FirstLine);
  while (!R.atEnd()) {
    Expected<Node *> Root = R.parseOne();
    if (!Root)
      return Root.takeError();
    F.addRoot(*Root);
  }
  return Error::success();
}

bool SExprFunctionStream::readLine(std::string &Line, bool &Overflow) {
  // Byte-budgeted replacement for std::getline: getline grows its string
  // to whatever one line holds, so a single endless line from a malicious
  // peer would balloon memory before any frame-level cap could act. Stop
  // storing (and stop consuming) once the budget is spent; the caller
  // reports the typed cap error and treats the stream as poisoned.
  Line.clear();
  Overflow = false;
  std::streambuf *SB = In.rdbuf();
  bool Any = false;
  for (int C = SB->sbumpc(); C != std::char_traits<char>::eof();
       C = SB->sbumpc()) {
    Any = true;
    if (C == '\n')
      return true;
    if (Line.size() >= MaxBytes) {
      Overflow = true;
      return true;
    }
    Line.push_back(static_cast<char>(C));
  }
  return Any;
}

Expected<bool> SExprFunctionStream::next(IRFunction &F) {
  Expected<Item> I = nextImpl(F, /*AllowControl=*/false);
  if (!I)
    return I.takeError();
  return *I == Item::Function;
}

Expected<SExprFunctionStream::Item>
SExprFunctionStream::nextItem(IRFunction &F) {
  return nextImpl(F, /*AllowControl=*/true);
}

Expected<SExprFunctionStream::Item>
SExprFunctionStream::nextImpl(IRFunction &F, bool AllowControl) {
  // A chunk of only comments parses to zero roots; treat it like blank
  // space and keep scanning rather than yielding an empty function.
  while (true) {
    // Gather the next function: skip blank lines, then collect lines
    // until a blank line or end of input. The chunk keeps its newlines so
    // diagnostics can be offset to stream-absolute lines. Comment-only
    // lines inside a function do not split it.
    Chunk.clear();
    unsigned FirstLine = 0;
    std::string Line;
    bool Overflow = false;
    while (readLine(Line, Overflow)) {
      ++LineNo;
      if (Overflow)
        break;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      std::string_view Content = trim(Line);
      if (Content.empty()) {
        if (!Chunk.empty())
          break; // Function complete.
        continue; // Leading blank lines before any content.
      }
      if (Chunk.empty()) {
        // Outside any frame. A line that cannot start an s-expression or
        // a comment is an in-band control request when the caller speaks
        // that dialect (the socket server); otherwise it joins the chunk
        // and fails in the parser with a precise diagnostic.
        if (AllowControl && Content.front() != '(' && Content.front() != ';') {
          Control.assign(Content);
          return Item::Control;
        }
        FirstLine = LineNo;
      }
      if (Chunk.size() + Line.size() + 1 > MaxBytes) {
        Overflow = true;
        break;
      }
      Chunk += Line;
      Chunk += '\n';
    }
    if (Overflow) {
      // The cap fired mid-frame: framing is lost, so the stream cannot
      // promise clean recovery — consumers should close the connection.
      Poisoned = true;
      return Error::make(ErrorKind::MalformedInput,
                         "s-expression stream: function frame exceeds byte "
                         "cap (" +
                             std::to_string(MaxBytes) + " bytes) near line " +
                             std::to_string(LineNo));
    }
    // Distinguish end-of-input from an I/O failure: badbit means the
    // read itself broke mid-stream, and whatever was gathered must not
    // be passed off as a complete function. Deliberately not
    // MalformedInput — skipping cannot recover a broken stream, so
    // consumers must stop, not skip.
    if (In.bad())
      return Error::make("s-expression stream: input read error near line " +
                         std::to_string(LineNo));
    if (Chunk.empty())
      return Item::End; // Clean end of input.

    if (Error E = parseSExprProgram(Chunk, *G, F, FirstLine))
      return E;
    if (!F.roots().empty())
      return Item::Function;
  }
}
