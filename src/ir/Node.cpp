//===- ir/Node.cpp - Intermediate representation nodes --------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "ir/Node.h"

#include "grammar/Grammar.h"
#include "support/Hashing.h"

#include <cstring>

using namespace odburg;
using namespace odburg::ir;

Node *IRFunction::makeNode(OperatorId Op,
                           const SmallVectorImpl<Node *> &Children,
                           std::int64_t Value, const char *Symbol) {
  Node *N = NodeArena.create<Node>();
  N->Op = Op;
  N->NumChildren = static_cast<std::uint16_t>(Children.size());
  N->Value = Value;
  N->Sym = Symbol;
  N->Id = static_cast<std::uint32_t>(Nodes.size());
  if (N->NumChildren) {
    N->Children = NodeArena.allocateArray<Node *>(N->NumChildren);
    for (unsigned I = 0; I < N->NumChildren; ++I) {
      assert(Children[I]->Id < N->Id &&
             "children must be created before parents");
      N->Children[I] = Children[I];
    }
  }
  Nodes.push_back(N);
  return N;
}

Node *IRFunction::makeLeaf(OperatorId Op, std::int64_t Value,
                           const char *Symbol) {
  SmallVector<Node *, 1> NoChildren;
  NoChildren.clear();
  return makeNode(Op, NoChildren, Value, Symbol);
}

const char *IRFunction::internString(std::string_view Name) {
  return NodeArena.copyString(Name.data(), Name.size());
}

bool ir::structurallyEqual(const Node *A, const Node *B) {
  if (A == B)
    return true;
  if (A->op() != B->op() || A->value() != B->value() ||
      A->numChildren() != B->numChildren())
    return false;
  const char *SA = A->symbol();
  const char *SB = B->symbol();
  if ((SA == nullptr) != (SB == nullptr))
    return false;
  if (SA && std::strcmp(SA, SB) != 0)
    return false;
  for (unsigned I = 0; I < A->numChildren(); ++I)
    if (!structurallyEqual(A->child(I), B->child(I)))
      return false;
  return true;
}

std::uint64_t ir::structuralHash(const Node *N) {
  std::uint64_t H = hashCombine(N->op(), static_cast<std::uint64_t>(N->value()));
  if (const char *S = N->symbol())
    H = hashCombine(H, hashString(S));
  for (unsigned I = 0; I < N->numChildren(); ++I)
    H = hashCombine(H, structuralHash(N->child(I)));
  return H;
}

static void sexprInto(const Node *N, const Grammar &G, std::string &Out) {
  const std::string &Name = G.operatorName(N->op());
  if (N->numChildren() == 0) {
    Out += '(';
    Out += Name;
    if (N->symbol()) {
      Out += ' ';
      Out += N->symbol();
    } else {
      Out += ' ';
      Out += std::to_string(N->value());
    }
    Out += ')';
    return;
  }
  Out += '(';
  Out += Name;
  // Interior payloads (e.g. branch targets) print before the children so
  // the format round-trips; zero payloads are omitted for readability.
  if (N->value() != 0) {
    Out += ' ';
    Out += std::to_string(N->value());
  }
  for (unsigned I = 0; I < N->numChildren(); ++I) {
    Out += ' ';
    sexprInto(N->child(I), G, Out);
  }
  Out += ')';
}

std::string ir::toSExpr(const Node *N, const Grammar &G) {
  std::string Out;
  sexprInto(N, G, Out);
  return Out;
}
