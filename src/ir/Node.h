//===- ir/Node.h - Intermediate representation nodes ----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The subject trees/DAGs that instruction selection runs on. Nodes are
/// arena-allocated and immutable after construction except for the Label
/// scratch slot, which the currently running labeling engine owns (state id
/// for the automata, label-table index for the DP labeler).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_IR_NODE_H
#define ODBURG_IR_NODE_H

#include "grammar/Ids.h"
#include "support/Arena.h"
#include "support/SmallVector.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace odburg {

class Grammar;

namespace ir {

/// One IR operation. Children point downward (operands); a node may be
/// shared by several parents (DAG), in which case it appears once in the
/// function's topological node order.
class Node {
public:
  OperatorId op() const { return Op; }
  unsigned numChildren() const { return NumChildren; }

  Node *child(unsigned I) const {
    assert(I < NumChildren && "child index out of range");
    return Children[I];
  }

  /// All children as a span (operand order).
  std::span<Node *const> children() const { return {Children, NumChildren}; }

  /// Integer payload: constant value, frame offset, label id, register
  /// number — meaning depends on the operator.
  std::int64_t value() const { return Value; }

  /// Symbol payload (global name), or nullptr.
  const char *symbol() const { return Sym; }

  /// Dense per-function node id; also the node's position in the function's
  /// topological order.
  std::uint32_t id() const { return Id; }

  /// \name Labeling scratch
  /// Engine-owned slot. Automata store a StateId, the DP labeler stores an
  /// index into its label table. Only the engine that labeled last may
  /// interpret it.
  /// @{
  std::uint32_t label() const { return Label; }
  void setLabel(std::uint32_t L) { Label = L; }
  /// @}

private:
  friend class IRFunction;

  OperatorId Op = InvalidOperator;
  std::uint16_t NumChildren = 0;
  std::uint32_t Id = 0;
  std::uint32_t Label = 0;
  std::int64_t Value = 0;
  const char *Sym = nullptr;
  Node **Children = nullptr;
};

/// A compilation unit for the selector: a list of statement roots over a
/// pool of nodes in topological (children-before-parents) order. Roots may
/// share subtrees (DAG mode).
class IRFunction {
public:
  IRFunction() = default;
  IRFunction(IRFunction &&) = default;
  IRFunction &operator=(IRFunction &&) = default;

  /// Creates a node; children must already belong to this function (this
  /// guarantees topological creation order).
  Node *makeNode(OperatorId Op, const SmallVectorImpl<Node *> &Children,
                 std::int64_t Value = 0, const char *Symbol = nullptr);

  /// Creates a leaf node.
  Node *makeLeaf(OperatorId Op, std::int64_t Value = 0,
                 const char *Symbol = nullptr);

  /// Copies \p Name into the function's arena (for symbol payloads).
  const char *internString(std::string_view Name);

  /// Marks \p N as a statement root, in program order.
  void addRoot(Node *N) { Roots.push_back(N); }

  const std::vector<Node *> &roots() const { return Roots; }

  /// All nodes in topological order (children before parents).
  const std::vector<Node *> &nodes() const { return Nodes; }

  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }

private:
  Arena NodeArena;
  std::vector<Node *> Nodes;
  std::vector<Node *> Roots;
};

/// Structural equality of two subtrees (operator, payloads, children).
/// Shared nodes compare equal by pointer fast path.
bool structurallyEqual(const Node *A, const Node *B);

/// Structural hash of a subtree; equal trees hash equal.
std::uint64_t structuralHash(const Node *N);

/// Renders \p N as an s-expression, printing operator names via \p G.
/// Example: (Store (AddrL 8) (Add (Load (AddrL 8)) (Reg 1))).
std::string toSExpr(const Node *N, const Grammar &G);

} // namespace ir
} // namespace odburg

#endif // ODBURG_IR_NODE_H
