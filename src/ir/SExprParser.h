//===- ir/SExprParser.h - Parse IR from s-expressions -----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses subject trees from the s-expression syntax toSExpr() prints:
///
///   (Store (AddrL 8) (Add (Load (AddrL 8)) (Const 1)))
///
/// Leaves take one payload atom — an integer, or anything else as a
/// symbol. Operators must exist in the grammar with matching arity. Used
/// by data-driven tests and the automaton-explorer tooling; together with
/// toSExpr it round-trips any tree.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_IR_SEXPRPARSER_H
#define ODBURG_IR_SEXPRPARSER_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "support/Error.h"

#include <string_view>

namespace odburg {
namespace ir {

/// Parses one tree from \p Text into \p F (nodes are created in \p F; the
/// root is returned but not added to F's root list). Fails with a line
/// number on malformed input, unknown operators, or arity mismatches.
Expected<Node *> parseSExpr(std::string_view Text, const Grammar &G,
                            IRFunction &F);

/// Parses a sequence of trees, adding each as a statement root of \p F.
Error parseSExprProgram(std::string_view Text, const Grammar &G,
                        IRFunction &F);

} // namespace ir
} // namespace odburg

#endif // ODBURG_IR_SEXPRPARSER_H
