//===- ir/SExprParser.h - Parse IR from s-expressions -----------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses subject trees from the s-expression syntax toSExpr() prints:
///
///   (Store (AddrL 8) (Add (Load (AddrL 8)) (Const 1)))
///
/// Leaves take one payload atom — an integer, or anything else as a
/// symbol. Operators must exist in the grammar with matching arity. Every
/// diagnostic carries the 1-based line and column of the offending token
/// and is typed ErrorKind::MalformedInput, so stream consumers
/// (odburg-serve) can skip a bad unit and keep going. Used by data-driven
/// tests, the automaton-explorer tooling, and the compile service's wire
/// format; together with toSExpr it round-trips any tree.
///
/// SExprFunctionStream is the streaming entry point: it incrementally
/// reads *functions* — maximal runs of s-expression statements separated
/// by blank lines — from an std::istream, which is exactly the
/// odburg-serve wire format and the shape odburg-run --dump-corpus
/// writes.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_IR_SEXPRPARSER_H
#define ODBURG_IR_SEXPRPARSER_H

#include "grammar/Grammar.h"
#include "ir/Node.h"
#include "support/Error.h"

#include <iosfwd>
#include <string>
#include <string_view>

namespace odburg {
namespace ir {

/// Untrusted-input guards. The s-expression reader faces network bytes
/// (odburg-serve's socket front), so every dimension an attacker controls
/// is bounded with a typed error instead of unbounded recursion or
/// allocation: nesting depth (recursive-descent stack), atom length, and
/// — in SExprFunctionStream — total bytes per function frame.
inline constexpr unsigned MaxSExprDepth = 1024;
inline constexpr std::size_t MaxSExprAtomBytes = 4096;

/// Parses one tree from \p Text into \p F (nodes are created in \p F; the
/// root is returned but not added to F's root list). Fails with
/// ErrorKind::MalformedInput — carrying line and column — on malformed
/// input, unknown operators, arity mismatches, or inputs exceeding the
/// nesting/atom guards above.
Expected<Node *> parseSExpr(std::string_view Text, const Grammar &G,
                            IRFunction &F);

/// Parses a sequence of trees, adding each as a statement root of \p F.
/// \p FirstLine offsets the line numbers in diagnostics (streaming callers
/// hand in chunks that start mid-stream).
Error parseSExprProgram(std::string_view Text, const Grammar &G, IRFunction &F,
                        unsigned FirstLine = 1);

/// Incremental reader of the service wire format: a stream of functions,
/// each function a maximal run of s-expression statements, functions
/// separated by one or more blank lines. ';' comments and surrounding
/// whitespace are ignored; an s-expression may span lines within its
/// function. The reader owns no storage beyond one function's text.
class SExprFunctionStream {
public:
  /// What nextItem() read from the stream.
  enum class Item {
    End,      ///< Clean end of input.
    Function, ///< A function was parsed into the caller's IRFunction.
    Control,  ///< A control line (see controlLine()).
  };

  /// Bound on one function frame's total bytes (text between blank-line
  /// separators, including one overlong line). A frame past the cap fails
  /// typed (MalformedInput mentioning the cap) with memory bounded by the
  /// cap — a malicious connection streaming one endless unterminated
  /// frame cannot grow memory without bound. Cap errors poison the
  /// stream: framing is lost mid-frame, so consumers should treat them as
  /// fatal for the stream/connection (see poisoned()).
  static constexpr std::size_t DefaultMaxFunctionBytes = 8u << 20;

  /// \p In and \p G must outlive the stream.
  SExprFunctionStream(std::istream &In, const Grammar &G) : In(In), G(&G) {}

  /// Reads the next function into \p F (statements become roots, in
  /// order). Returns true when a function was parsed, false at clean end
  /// of input. A parse failure returns the typed MalformedInput error
  /// with stream-absolute line/column; the offending function's text has
  /// already been consumed up to its blank-line boundary, so the caller
  /// can report, skip, and call next() again — the stream stays alive.
  /// \p F may contain partially created nodes after a failure; use a
  /// fresh function per call.
  Expected<bool> next(IRFunction &F);

  /// Like next(), but additionally recognizes *control lines* — the
  /// socket server's in-band requests (`BACKEND ondemand`, `STATS`). A
  /// line outside any function frame whose first character is neither '('
  /// nor ';' is returned as Item::Control (text in controlLine(),
  /// trimmed) instead of a parse error; it is its own unit and needs no
  /// blank-line separator. Inside a frame such a line stays part of the
  /// function text (and fails in the parser), so framing is unchanged.
  Expected<Item> nextItem(IRFunction &F);

  /// The last control line nextItem() returned (without the newline).
  const std::string &controlLine() const { return Control; }

  /// Rebinds the grammar functions are parsed against (the socket server
  /// switches grammars when a BACKEND handshake selects a backend that
  /// serves the stripped grammar). Affects subsequent reads only.
  void rebind(const Grammar &NewG) { G = &NewG; }

  /// Caps one frame's bytes; see DefaultMaxFunctionBytes.
  void setMaxFunctionBytes(std::size_t Max) { MaxBytes = Max; }

  /// True once a frame overran the byte cap: line framing is lost
  /// mid-frame, so subsequent reads may mis-frame. Treat as fatal.
  bool poisoned() const { return Poisoned; }

  /// Stream-absolute 1-based line number of the line that will be read
  /// next (after a successful next(): the line following the function).
  unsigned line() const { return LineNo + 1; }

private:
  Expected<Item> nextImpl(IRFunction &F, bool AllowControl);
  /// Bounded line reader: reads up to '\n' into Line (budget-capped).
  /// Returns false at end of input with nothing read.
  bool readLine(std::string &Line, bool &Overflow);

  std::istream &In;
  const Grammar *G;
  std::size_t MaxBytes = DefaultMaxFunctionBytes;
  unsigned LineNo = 0;   ///< Lines consumed so far.
  std::string Chunk;     ///< Reused text buffer for one function.
  std::string Control;   ///< Last control line.
  bool Poisoned = false;
};

} // namespace ir
} // namespace odburg

#endif // ODBURG_IR_SEXPRPARSER_H
