//===- grammar/Synthesize.h - Parameterized random grammars -----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes well-formed tree grammars of controlled size. Two uses:
///
///  * the grammar-size scaling experiment (A2): the paper's claim is that
///    DP labeling cost grows with the number of applicable rules per
///    operator while automaton labeling stays flat — demonstrating that
///    needs grammars whose rules-per-operator is a free parameter;
///  * fuzz-style property testing: engines must agree on *any* valid
///    grammar, not just the hand-written ones.
///
/// Synthesized grammars are guaranteed to converge as automata: the value
/// nonterminals are connected by a cost-1 chain cycle, which bounds every
/// relative cost by the nonterminal count (the termination condition of
/// Proebsting's BURS construction).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_GRAMMAR_SYNTHESIZE_H
#define ODBURG_GRAMMAR_SYNTHESIZE_H

#include "grammar/Grammar.h"
#include "support/Error.h"

namespace odburg {

/// Size knobs for a synthesized grammar.
struct SynthesisParams {
  unsigned NumLeafOps = 3;
  unsigned NumUnaryOps = 3;
  unsigned NumBinaryOps = 6;
  /// Value nonterminals v0..v{NumNts-1}; v0 is the start symbol.
  unsigned NumNts = 4;
  /// Rule alternatives per interior operator (the DP-cost driver).
  unsigned RulesPerOp = 4;
  /// Maximum fixed rule cost (costs drawn uniformly from [1, MaxCost]).
  unsigned MaxCost = 3;
  std::uint64_t Seed = 1;
};

/// Builds a finalized random grammar per \p P. Deterministic in P.
Expected<Grammar> synthesizeGrammar(const SynthesisParams &P);

} // namespace odburg

#endif // ODBURG_GRAMMAR_SYNTHESIZE_H
