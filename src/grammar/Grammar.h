//===- grammar/Grammar.h - Tree grammars for instruction selection --------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree grammars in the burg tradition. A grammar consists of operators
/// (IR opcodes with fixed arity), nonterminals, and rules. Source rules may
/// have arbitrarily nested patterns and optional dynamic-cost hooks; the
/// grammar converts itself to *normal form* (only chain rules `n ← n1` and
/// base rules `n ← Op(n1,…,nk)`) by introducing helper nonterminals, which
/// is the form all labeling engines consume.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_GRAMMAR_GRAMMAR_H
#define ODBURG_GRAMMAR_GRAMMAR_H

#include "grammar/Ids.h"
#include "support/Arena.h"
#include "support/Cost.h"
#include "support/Error.h"
#include "support/SmallVector.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace odburg {

/// A node of a source-rule pattern: either a nonterminal leaf or an operator
/// with child patterns. Arena-allocated, owned by the Grammar.
struct PatternNode {
  /// The operator, or InvalidOperator for a nonterminal leaf.
  OperatorId Op = InvalidOperator;
  /// The nonterminal, for a leaf.
  NonterminalId Nt = InvalidNonterminal;
  /// Child patterns (operator nodes only); size equals the operator arity.
  PatternNode **Children = nullptr;
  unsigned NumChildren = 0;

  bool isLeaf() const { return Op == InvalidOperator; }
};

/// A rule as written by the grammar author.
struct SourceRule {
  /// Left-hand-side nonterminal.
  NonterminalId Lhs = InvalidNonterminal;
  /// Right-hand-side pattern (nonterminal leaf => chain rule).
  const PatternNode *Pattern = nullptr;
  /// Fixed cost of applying the rule (dynamic hooks add to this).
  Cost FixedCost = Cost::zero();
  /// Dynamic-cost hook, or InvalidDynCost. Hook outcomes add to FixedCost;
  /// Cost::infinity() means "not applicable here".
  DynCostId DynHook = InvalidDynCost;
  /// External rule number (unique, 1-based; auto-assigned if not given).
  unsigned ExtNumber = 0;
  /// Emission template (see targets/AsmEmitter.h for the placeholder
  /// language); may be empty.
  std::string EmitTemplate;
};

/// A rule in normal form. Exactly one of the chain/base interpretations
/// applies, see isChain().
struct NormRule {
  NonterminalId Lhs = InvalidNonterminal;
  /// Chain rules: the right-hand-side nonterminal; InvalidNonterminal for
  /// base rules.
  NonterminalId ChainRhs = InvalidNonterminal;
  /// Base rules: the operator; InvalidOperator for chain rules.
  OperatorId Op = InvalidOperator;
  /// Base rules: operand nonterminals, one per operator arity slot.
  SmallVector<NonterminalId, 2> Operands;
  /// Cost carried by this normal rule. When a source rule is split, the
  /// outermost fragment carries the full source cost; inner fragments cost 0.
  Cost FixedCost = Cost::zero();
  /// Dynamic hook; only ever set on the outermost fragment of a split.
  DynCostId DynHook = InvalidDynCost;
  /// The source rule this normal rule was derived from.
  RuleId Source = InvalidRule;
  /// True if firing this rule completes the source rule's pattern match
  /// (always true for unsplit rules; true only for the outermost fragment
  /// of a split rule). Only final rules trigger emission.
  bool IsFinal = true;

  bool isChain() const { return ChainRhs != InvalidNonterminal; }
};

/// Aggregate statistics, as reported in grammar tables of the papers in
/// this line of work.
struct GrammarStats {
  unsigned SourceRules = 0;
  unsigned NormRules = 0;
  unsigned ChainRules = 0;
  unsigned BaseRules = 0;
  unsigned DynCostRules = 0;
  unsigned Operators = 0;
  unsigned Nonterminals = 0;
  unsigned HelperNonterminals = 0;
  unsigned MaxArity = 0;
};

/// A tree grammar. Build programmatically (addOperator/addNonterminal/
/// addRule + finalize) or from text via GrammarParser. After finalize() the
/// normal form and the per-operator rule indices are available and the
/// grammar is immutable.
class Grammar {
public:
  Grammar() = default;
  Grammar(Grammar &&) = default;
  Grammar &operator=(Grammar &&) = default;

  /// \name Construction
  /// @{

  /// Adds an operator with the given \p Arity; returns its id. Re-adding an
  /// existing name with the same arity returns the existing id.
  OperatorId addOperator(std::string_view Name, unsigned Arity);

  /// Adds (or finds) a nonterminal.
  NonterminalId addNonterminal(std::string_view Name);

  /// Adds (or finds) a dynamic-cost hook name.
  DynCostId addDynHook(std::string_view Name);

  /// Creates a pattern leaf for nonterminal \p Nt.
  PatternNode *makeLeaf(NonterminalId Nt);

  /// Creates a pattern node for \p Op over \p Children (must match arity).
  PatternNode *makeNode(OperatorId Op,
                        const SmallVectorImpl<PatternNode *> &Children);

  /// Adds a source rule; returns its id. \p ExtNumber 0 = auto-assign.
  RuleId addRule(NonterminalId Lhs, const PatternNode *Pattern, Cost FixedCost,
                 DynCostId DynHook = InvalidDynCost, unsigned ExtNumber = 0,
                 std::string EmitTemplate = {});

  /// Sets the start nonterminal (defaults to the LHS of the first rule).
  void setStart(NonterminalId Nt) { StartNt = Nt; }

  /// Validates the grammar, converts to normal form and builds indices.
  /// After success the grammar is ready for labeling engines.
  Error finalize();

  /// @}
  /// \name Queries (valid after finalize())
  /// @{

  bool isFinalized() const { return Finalized; }

  NonterminalId startNt() const { return StartNt; }

  unsigned numOperators() const { return static_cast<unsigned>(OpNames.size()); }
  unsigned numNonterminals() const {
    return static_cast<unsigned>(NtNames.size());
  }
  unsigned numSourceRules() const {
    return static_cast<unsigned>(SourceRules.size());
  }
  unsigned numNormRules() const {
    return static_cast<unsigned>(NormRules.size());
  }
  unsigned numDynHooks() const {
    return static_cast<unsigned>(DynHookNames.size());
  }

  const std::string &operatorName(OperatorId Op) const { return OpNames[Op]; }
  unsigned operatorArity(OperatorId Op) const { return OpArities[Op]; }
  const std::string &nonterminalName(NonterminalId Nt) const {
    return NtNames[Nt];
  }
  const std::string &dynHookName(DynCostId H) const { return DynHookNames[H]; }

  /// Looks up an operator by name; InvalidOperator if absent.
  OperatorId findOperator(std::string_view Name) const;
  /// Looks up a nonterminal by name; InvalidNonterminal if absent.
  NonterminalId findNonterminal(std::string_view Name) const;

  const SourceRule &sourceRule(RuleId R) const { return SourceRules[R]; }
  const NormRule &normRule(RuleId R) const { return NormRules[R]; }

  /// Normal-form base rules applicable at operator \p Op.
  const SmallVectorImpl<RuleId> &baseRulesFor(OperatorId Op) const {
    return BaseRulesByOp[Op];
  }

  /// All normal-form chain rules.
  const std::vector<RuleId> &chainRules() const { return ChainRuleIds; }

  /// Normal-form rules with dynamic hooks at operator \p Op, in a fixed
  /// order. The on-demand automaton evaluates these per node to build its
  /// transition key (see core/OnDemandAutomaton.h).
  const SmallVectorImpl<RuleId> &dynRulesFor(OperatorId Op) const {
    return DynRulesByOp[Op];
  }

  /// True if any rule carries a dynamic-cost hook.
  bool hasDynCosts() const { return NumDynRules != 0; }

  GrammarStats stats() const;

  /// Content fingerprint over everything labeling observes: operators
  /// (names + arities), nonterminals, dynamic-cost hook names, the start
  /// nonterminal, emission templates, and the full normal form. Two
  /// grammars with equal fingerprints label and emit identically; a
  /// changed rule, cost, or template changes the fingerprint. This is the
  /// registry's keying primitive (registry/GrammarRegistry.h) and the
  /// identity stamped into warm-automaton snapshots.
  std::uint64_t fingerprint() const;

  /// Renders a normal-form rule as text, for diagnostics and tests.
  std::string normRuleToString(RuleId R) const;

  /// @}

private:
  Error validate() const;
  Error buildNormalForm();
  /// Recursively splits \p P, returning the nonterminal that derives it.
  NonterminalId splitPattern(const PatternNode *P, RuleId Source);

  std::vector<std::string> OpNames;
  std::vector<unsigned> OpArities;
  std::vector<std::string> NtNames;
  std::vector<bool> NtIsHelper;
  std::vector<std::string> DynHookNames;
  std::unordered_map<std::string, OperatorId> OpByName;
  std::unordered_map<std::string, NonterminalId> NtByName;
  std::unordered_map<std::string, DynCostId> DynHookByName;

  std::vector<SourceRule> SourceRules;
  std::vector<NormRule> NormRules;
  std::vector<SmallVector<RuleId, 8>> BaseRulesByOp;
  std::vector<SmallVector<RuleId, 2>> DynRulesByOp;
  std::vector<RuleId> ChainRuleIds;
  unsigned NumDynRules = 0;

  NonterminalId StartNt = InvalidNonterminal;
  Arena PatternArena;
  unsigned NextAutoExtNumber = 1;
  bool Finalized = false;
};

} // namespace odburg

#endif // ODBURG_GRAMMAR_GRAMMAR_H
