//===- grammar/Ids.h - Dense identifier types -------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer identifiers for grammar entities. Kept as plain integers
/// (not wrapper classes) because they index flat arrays on the labeling hot
/// path; the distinct typedef names document intent.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_GRAMMAR_IDS_H
#define ODBURG_GRAMMAR_IDS_H

#include <cstdint>

namespace odburg {

/// Identifies an IR operator (terminal of the tree grammar).
using OperatorId = std::uint16_t;
/// Identifies a nonterminal.
using NonterminalId = std::uint16_t;
/// Identifies a rule. Source rules and normal-form rules use separate
/// RuleId spaces (see Grammar).
using RuleId = std::uint32_t;
/// Identifies a dynamic-cost hook by position in the grammar's hook list.
using DynCostId = std::uint16_t;

inline constexpr OperatorId InvalidOperator = 0xFFFF;
inline constexpr NonterminalId InvalidNonterminal = 0xFFFF;
inline constexpr RuleId InvalidRule = 0xFFFFFFFFu;
inline constexpr DynCostId InvalidDynCost = 0xFFFF;

} // namespace odburg

#endif // ODBURG_GRAMMAR_IDS_H
