//===- grammar/GrammarParser.cpp - burg-style grammar text parser ---------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/GrammarParser.h"

#include "support/SmallVector.h"

#include <cctype>
#include <string>

using namespace odburg;

namespace {

enum class TokKind {
  Ident,      // operator or nonterminal name
  Number,     // unsigned integer
  String,     // "..." emit template (quotes stripped)
  Colon,      // :
  LParen,     // (
  RParen,     // )
  Comma,      // ,
  Equals,     // =
  Semi,       // ;
  Question,   // ?
  Directive,  // %start etc. (text includes the %)
  End,
};

struct Token {
  TokKind Kind;
  std::string_view Text;
  unsigned Line;
};

/// Hand-rolled lexer; '#' starts a comment to end of line.
class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  Token next() {
    skipTrivia();
    if (Pos >= Text.size())
      return {TokKind::End, {}, Line};
    char C = Text[Pos];
    unsigned TokLine = Line;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
      return {TokKind::Ident, lexWord(), TokLine};
    if (std::isdigit(static_cast<unsigned char>(C)))
      return {TokKind::Number, lexNumber(), TokLine};
    if (C == '%')
      return {TokKind::Directive, lexWord(), TokLine};
    if (C == '"')
      return lexString(TokLine);
    ++Pos;
    switch (C) {
    case ':':
      return {TokKind::Colon, ":", TokLine};
    case '(':
      return {TokKind::LParen, "(", TokLine};
    case ')':
      return {TokKind::RParen, ")", TokLine};
    case ',':
      return {TokKind::Comma, ",", TokLine};
    case '=':
      return {TokKind::Equals, "=", TokLine};
    case ';':
      return {TokKind::Semi, ";", TokLine};
    case '?':
      return {TokKind::Question, "?", TokLine};
    default:
      HadError = true;
      ErrorMsg = "unexpected character '" + std::string(1, C) + "' on line " +
                 std::to_string(TokLine);
      return {TokKind::End, {}, TokLine};
    }
  }

  bool hadError() const { return HadError; }
  const std::string &errorMessage() const { return ErrorMsg; }

private:
  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view lexWord() {
    std::size_t Start = Pos;
    ++Pos; // Consume the leading %, letter, '_' or '$'.
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.' ||
          C == '$')
        ++Pos;
      else
        break;
    }
    return Text.substr(Start, Pos - Start);
  }

  std::string_view lexNumber() {
    std::size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  Token lexString(unsigned TokLine) {
    ++Pos; // Opening quote.
    std::size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '"' && Text[Pos] != '\n')
      ++Pos;
    if (Pos >= Text.size() || Text[Pos] != '"') {
      HadError = true;
      ErrorMsg = "unterminated string on line " + std::to_string(TokLine);
      return {TokKind::End, {}, TokLine};
    }
    std::string_view Body = Text.substr(Start, Pos - Start);
    ++Pos; // Closing quote.
    return {TokKind::String, Body, TokLine};
  }

  std::string_view Text;
  std::size_t Pos = 0;
  unsigned Line = 1;
  bool HadError = false;
  std::string ErrorMsg;
};

/// Recursive-descent parser producing a finalized Grammar.
class Parser {
public:
  explicit Parser(std::string_view Text) : Lex(Text) { advance(); }

  Expected<Grammar> run() {
    while (Tok.Kind != TokKind::End) {
      Error E = Tok.Kind == TokKind::Directive ? parseDirective()
                                               : parseRule();
      if (E) {
        // A lexical error surfaces as an unexpected End token; report the
        // lexer's message, which is more precise.
        if (Lex.hadError()) {
          E.consume();
          return Error::make(Lex.errorMessage());
        }
        return E;
      }
      E.consume();
      if (Lex.hadError())
        return Error::make(Lex.errorMessage());
    }
    if (!PendingStart.empty()) {
      NonterminalId Nt = G.findNonterminal(PendingStart);
      if (Nt == InvalidNonterminal)
        return Error::make("%start nonterminal '" + PendingStart +
                           "' has no rules");
      G.setStart(Nt);
    }
    if (Error E = G.finalize())
      return E;
    return std::move(G);
  }

private:
  void advance() {
    if (HasPeeked) {
      Tok = Peeked;
      HasPeeked = false;
      return;
    }
    Tok = Lex.next();
  }

  /// One-token lookahead, needed to tell `Op (child)` from `Op (cost)`.
  const Token &peek() {
    if (!HasPeeked) {
      Peeked = Lex.next();
      HasPeeked = true;
    }
    return Peeked;
  }

  Error err(const std::string &Msg) {
    return Error::make(Msg + " on line " + std::to_string(Tok.Line));
  }

  Error expect(TokKind K, const char *What) {
    if (Tok.Kind != K)
      return err(std::string("expected ") + What);
    advance();
    return Error::success();
  }

  static bool isOperatorName(std::string_view Name) {
    return !Name.empty() && std::isupper(static_cast<unsigned char>(Name[0]));
  }

  Error parseDirective() {
    if (Tok.Text == "%start") {
      advance();
      if (Tok.Kind != TokKind::Ident || isOperatorName(Tok.Text))
        return err("expected nonterminal name after %start");
      PendingStart = std::string(Tok.Text);
      advance();
      return Error::success();
    }
    return err("unknown directive '" + std::string(Tok.Text) + "'");
  }

  /// pattern := nt | Op | Op '(' pattern {',' pattern} ')'
  Error parsePattern(PatternNode *&Out) {
    if (Tok.Kind != TokKind::Ident)
      return err("expected pattern");
    std::string_view Name = Tok.Text;
    unsigned NameLine = Tok.Line;
    advance();
    if (!isOperatorName(Name)) {
      if (Name[0] == '$')
        return err("'" + std::string(Name) +
                   "': names starting with $ are reserved");
      Out = G.makeLeaf(G.addNonterminal(Name));
      return Error::success();
    }
    SmallVector<PatternNode *, 4> Children;
    // `Reg (0)` is a leaf operator followed by the rule's cost clause, not
    // an operator with children: pattern children never start with a
    // number, so one token of lookahead disambiguates.
    if (Tok.Kind == TokKind::LParen && peek().Kind != TokKind::Number) {
      advance();
      while (true) {
        PatternNode *Child = nullptr;
        if (Error E = parsePattern(Child))
          return E;
        Children.push_back(Child);
        if (Tok.Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
      if (Error E = expect(TokKind::RParen, "')'"))
        return E;
    }
    OperatorId Op = G.findOperator(Name);
    if (Op == InvalidOperator) {
      Op = G.addOperator(Name, Children.size());
    } else if (G.operatorArity(Op) != Children.size()) {
      return Error::make("operator '" + std::string(Name) + "' used with " +
                         std::to_string(Children.size()) +
                         " operands but has arity " +
                         std::to_string(G.operatorArity(Op)) + " on line " +
                         std::to_string(NameLine));
    }
    Out = G.makeNode(Op, Children);
    return Error::success();
  }

  /// rule := nt ':' pattern ['=' num] ['(' num ')'] ['?' ident] [string] ';'
  Error parseRule() {
    if (Tok.Kind != TokKind::Ident || isOperatorName(Tok.Text))
      return err("expected rule left-hand-side nonterminal");
    if (Tok.Text[0] == '$')
      return err("'" + std::string(Tok.Text) +
                 "': names starting with $ are reserved");
    NonterminalId Lhs = G.addNonterminal(Tok.Text);
    advance();
    if (Error E = expect(TokKind::Colon, "':'"))
      return E;

    PatternNode *Pattern = nullptr;
    if (Error E = parsePattern(Pattern))
      return E;

    unsigned ExtNumber = 0;
    if (Tok.Kind == TokKind::Equals) {
      advance();
      if (Tok.Kind != TokKind::Number)
        return err("expected rule number after '='");
      ExtNumber = static_cast<unsigned>(std::stoul(std::string(Tok.Text)));
      advance();
    }

    Cost RuleCost = Cost::zero();
    if (Tok.Kind == TokKind::LParen) {
      advance();
      if (Tok.Kind != TokKind::Number)
        return err("expected cost");
      RuleCost = Cost(static_cast<Cost::ValueType>(
          std::stoul(std::string(Tok.Text))));
      advance();
      if (Error E = expect(TokKind::RParen, "')' after cost"))
        return E;
    }

    DynCostId Hook = InvalidDynCost;
    if (Tok.Kind == TokKind::Question) {
      advance();
      if (Tok.Kind != TokKind::Ident)
        return err("expected dynamic-cost hook name after '?'");
      Hook = G.addDynHook(Tok.Text);
      advance();
    }

    std::string Template;
    if (Tok.Kind == TokKind::String) {
      Template = std::string(Tok.Text);
      advance();
    }

    if (Error E = expect(TokKind::Semi, "';' at end of rule"))
      return E;

    G.addRule(Lhs, Pattern, RuleCost, Hook, ExtNumber, std::move(Template));
    return Error::success();
  }

  Lexer Lex;
  Token Tok{TokKind::End, {}, 0};
  Token Peeked{TokKind::End, {}, 0};
  bool HasPeeked = false;
  Grammar G;
  std::string PendingStart;
};

} // namespace

Expected<Grammar> odburg::parseGrammar(std::string_view Text) {
  return Parser(Text).run();
}
