//===- grammar/Transform.h - Grammar-to-grammar transformations -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-grammar transformations used by the experiments:
///
///  - withoutDynCostRules: drops every rule carrying a dynamic-cost hook.
///    This is the "fixed costs only" variant the papers compare against
///    (offline tables require it, and the code-quality experiment measures
///    what the dynamic rules buy).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_GRAMMAR_TRANSFORM_H
#define ODBURG_GRAMMAR_TRANSFORM_H

#include "grammar/Grammar.h"
#include "support/Error.h"

namespace odburg {

/// Returns a finalized copy of \p G with all dynamic-cost rules removed.
/// Fails if the remaining rules do not form a valid grammar (e.g. some
/// nonterminal loses all its rules).
Expected<Grammar> withoutDynCostRules(const Grammar &G);

/// Returns a finalized copy of \p G with only the rules guarded by hook
/// \p HookName removed (e.g. "memop" to disable read-modify-write rules
/// while keeping immediate-range rules) — the paper's "constrained rules
/// disabled" code-quality experiment. Removal cascades like
/// withoutDynCostRules.
Expected<Grammar> withoutDynHook(const Grammar &G, std::string_view HookName);

} // namespace odburg

#endif // ODBURG_GRAMMAR_TRANSFORM_H
