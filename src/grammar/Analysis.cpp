//===- grammar/Analysis.cpp - Grammar diagnostics -----------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Analysis.h"

#include <algorithm>

using namespace odburg;

/// Collects the nonterminals appearing as leaves of \p P.
static void patternLeaves(const PatternNode *P,
                          std::vector<NonterminalId> &Out) {
  if (P->isLeaf()) {
    Out.push_back(P->Nt);
    return;
  }
  for (unsigned I = 0; I < P->NumChildren; ++I)
    patternLeaves(P->Children[I], Out);
}

/// Sums the pattern's fixed contribution: each operator node is free (its
/// cost is the rule's), each leaf contributes the current minimal cost of
/// its nonterminal.
static Cost patternMinCost(const PatternNode *P,
                           const std::vector<Cost> &MinCost) {
  if (P->isLeaf())
    return MinCost[P->Nt];
  Cost C = Cost::zero();
  for (unsigned I = 0; I < P->NumChildren && C.isFinite(); ++I)
    C += patternMinCost(P->Children[I], MinCost);
  return C;
}

GrammarDiagnostics odburg::analyzeGrammar(const Grammar &G) {
  assert(G.isFinalized() && "analysis requires a finalized grammar");
  GrammarDiagnostics D;
  unsigned NumNts = G.numNonterminals();
  unsigned NumRules = G.numSourceRules();
  D.NtReachable.assign(NumNts, false);
  D.NtProductive.assign(NumNts, false);
  D.RuleReachable.assign(NumRules, false);
  D.RuleProductive.assign(NumRules, false);
  D.MinTreeCost.assign(NumNts, Cost::infinity());

  // Productivity + minimal tree cost: Bellman-Ford-style fixpoint over
  // source rules (rule cost + sum of leaf nonterminal minima).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId R = 0; R < NumRules; ++R) {
      const SourceRule &SR = G.sourceRule(R);
      Cost C = SR.FixedCost + patternMinCost(SR.Pattern, D.MinTreeCost);
      if (C < D.MinTreeCost[SR.Lhs]) {
        D.MinTreeCost[SR.Lhs] = C;
        Changed = true;
      }
    }
  }
  for (NonterminalId Nt = 0; Nt < NumNts; ++Nt)
    D.NtProductive[Nt] = D.MinTreeCost[Nt].isFinite();
  for (RuleId R = 0; R < NumRules; ++R) {
    std::vector<NonterminalId> Leaves;
    patternLeaves(G.sourceRule(R).Pattern, Leaves);
    D.RuleProductive[R] = std::all_of(
        Leaves.begin(), Leaves.end(),
        [&](NonterminalId Nt) { return D.NtProductive[Nt]; });
  }

  // Reachability from the start symbol: a nonterminal is reachable if the
  // start is, or if it appears in the pattern of a rule whose LHS is
  // reachable.
  D.NtReachable[G.startNt()] = true;
  Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId R = 0; R < NumRules; ++R) {
      const SourceRule &SR = G.sourceRule(R);
      if (!D.NtReachable[SR.Lhs])
        continue;
      if (!D.RuleReachable[R]) {
        D.RuleReachable[R] = true;
        Changed = true;
      }
      std::vector<NonterminalId> Leaves;
      patternLeaves(SR.Pattern, Leaves);
      for (NonterminalId Nt : Leaves) {
        if (!D.NtReachable[Nt]) {
          D.NtReachable[Nt] = true;
          Changed = true;
        }
      }
    }
  }

  // Warnings. Helper nonterminals are synthesized, so only report
  // user-visible names (helpers start with '$').
  auto IsHelper = [&](NonterminalId Nt) {
    return !G.nonterminalName(Nt).empty() && G.nonterminalName(Nt)[0] == '$';
  };
  if (!D.NtProductive[G.startNt()])
    D.Warnings.push_back("start nonterminal '" +
                         G.nonterminalName(G.startNt()) +
                         "' derives no finite tree");
  for (NonterminalId Nt = 0; Nt < NumNts; ++Nt) {
    if (IsHelper(Nt))
      continue;
    if (!D.NtProductive[Nt])
      D.Warnings.push_back("nonterminal '" + G.nonterminalName(Nt) +
                           "' is unproductive (derives no finite tree)");
    else if (!D.NtReachable[Nt])
      D.Warnings.push_back("nonterminal '" + G.nonterminalName(Nt) +
                           "' is unreachable from the start symbol");
  }
  for (RuleId R = 0; R < NumRules; ++R) {
    if (D.ruleIsUseful(R))
      continue;
    const char *Why = !D.RuleProductive[R] ? "uses an unproductive "
                                             "nonterminal"
                                           : "is unreachable from the start "
                                             "symbol";
    D.Warnings.push_back("rule #" +
                         std::to_string(G.sourceRule(R).ExtNumber) + " " +
                         Why);
  }
  return D;
}
