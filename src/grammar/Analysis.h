//===- grammar/Analysis.h - Grammar diagnostics ------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analyses over finalized grammars, for machine-description
/// authors: which nonterminals are reachable from the start symbol, which
/// are productive (derive at least one finite subject tree), which rules
/// can never fire, and the cheapest tree each nonterminal derives. burg
/// and iburg ship the same category of diagnostics; selectors themselves
/// tolerate imperfect grammars (underivable combinations label as
/// infinite), but authors want to hear about them.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_GRAMMAR_ANALYSIS_H
#define ODBURG_GRAMMAR_ANALYSIS_H

#include "grammar/Grammar.h"
#include "support/Cost.h"

#include <string>
#include <vector>

namespace odburg {

/// The result of analyzeGrammar().
struct GrammarDiagnostics {
  /// Per source-rule flags.
  std::vector<bool> RuleReachable;
  std::vector<bool> RuleProductive;
  /// Per nonterminal flags (indexed by NonterminalId).
  std::vector<bool> NtReachable;
  std::vector<bool> NtProductive;
  /// Cheapest finite tree derivable from each nonterminal
  /// (Cost::infinity() for unproductive ones). Dynamic-cost hooks are
  /// assumed applicable (they can only remove derivations).
  std::vector<Cost> MinTreeCost;
  /// Human-readable findings, one line each (empty = clean grammar).
  std::vector<std::string> Warnings;

  /// True if a rule can fire in some derivation from the start symbol.
  bool ruleIsUseful(RuleId R) const {
    return RuleReachable[R] && RuleProductive[R];
  }
};

/// Analyzes a finalized grammar. Never fails; problems come back as
/// warnings in the result.
GrammarDiagnostics analyzeGrammar(const Grammar &G);

} // namespace odburg

#endif // ODBURG_GRAMMAR_ANALYSIS_H
