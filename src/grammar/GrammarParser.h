//===- grammar/GrammarParser.h - burg-style grammar text parser -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses tree grammars from text in a burg-flavored syntax:
///
/// \code
///   # comment to end of line
///   %start stmt
///
///   reg:  Reg (0) "=%%t%c";
///   reg:  con (1) "movq $%c, %0";
///   addr: Add(reg, con) (0) ?imm32 "=%2(%1)";
///   stmt: Store(addr, Add(Load(addr), reg)) = 6 (1) ?memop "addq %3, %1";
/// \endcode
///
/// Following the instruction-selection literature, identifiers starting
/// with an upper-case letter are operators (their arity is inferred from
/// use and checked for consistency); lower-case identifiers are
/// nonterminals. Each rule is `nt ':' pattern ['=' extnum] ['(' cost ')']
/// ['?' dynhook] [emit-template] ';'`; cost defaults to 0.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_GRAMMAR_GRAMMARPARSER_H
#define ODBURG_GRAMMAR_GRAMMARPARSER_H

#include "grammar/Grammar.h"
#include "support/Error.h"

#include <string_view>

namespace odburg {

/// Parses \p Text into a finalized Grammar. On failure the message includes
/// the line number.
Expected<Grammar> parseGrammar(std::string_view Text);

} // namespace odburg

#endif // ODBURG_GRAMMAR_GRAMMARPARSER_H
