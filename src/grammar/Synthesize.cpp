//===- grammar/Synthesize.cpp - Parameterized random grammars ---------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Synthesize.h"

#include "support/RNG.h"
#include "support/SmallVector.h"

using namespace odburg;

Expected<Grammar> odburg::synthesizeGrammar(const SynthesisParams &P) {
  if (P.NumNts < 2 || P.NumLeafOps == 0)
    return Error::make("synthesis needs >= 2 nonterminals and a leaf "
                       "operator");
  RNG Rand(P.Seed);
  Grammar G;

  SmallVector<NonterminalId, 8> Nts;
  for (unsigned I = 0; I < P.NumNts; ++I)
    Nts.push_back(G.addNonterminal("v" + std::to_string(I)));

  SmallVector<OperatorId, 8> LeafOps, UnaryOps, BinaryOps;
  for (unsigned I = 0; I < P.NumLeafOps; ++I)
    LeafOps.push_back(G.addOperator("L" + std::to_string(I), 0));
  for (unsigned I = 0; I < P.NumUnaryOps; ++I)
    UnaryOps.push_back(G.addOperator("U" + std::to_string(I), 1));
  for (unsigned I = 0; I < P.NumBinaryOps; ++I)
    BinaryOps.push_back(G.addOperator("B" + std::to_string(I), 2));

  auto RandomNt = [&] { return Nts[Rand.nextBelow(Nts.size())]; };
  auto RandomCost = [&] {
    return Cost(static_cast<Cost::ValueType>(Rand.nextInRange(1, P.MaxCost)));
  };

  // The chain cycle v0 -> v1 -> … -> v0, each step cost 1: guarantees every
  // nonterminal derives every other (within NumNts steps) and bounds the
  // automaton's relative costs, so state enumeration terminates.
  for (unsigned I = 0; I < P.NumNts; ++I)
    G.addRule(Nts[I], G.makeLeaf(Nts[(I + 1) % P.NumNts]), Cost(1));

  // Every leaf operator derives one random nonterminal (plus v0 for the
  // first, so trees are always coverable from the start symbol).
  SmallVector<PatternNode *, 2> NoChildren;
  for (unsigned I = 0; I < P.NumLeafOps; ++I) {
    NonterminalId Lhs = I == 0 ? Nts[0] : RandomNt();
    G.addRule(Lhs, G.makeNode(LeafOps[I], NoChildren), RandomCost());
  }

  // Interior operators: RulesPerOp alternatives each, random shapes.
  for (OperatorId Op : UnaryOps) {
    for (unsigned R = 0; R < P.RulesPerOp; ++R) {
      SmallVector<PatternNode *, 1> C{G.makeLeaf(RandomNt())};
      G.addRule(RandomNt(), G.makeNode(Op, C), RandomCost());
    }
  }
  for (OperatorId Op : BinaryOps) {
    for (unsigned R = 0; R < P.RulesPerOp; ++R) {
      SmallVector<PatternNode *, 2> C{G.makeLeaf(RandomNt()),
                                      G.makeLeaf(RandomNt())};
      G.addRule(RandomNt(), G.makeNode(Op, C), RandomCost());
    }
  }

  G.setStart(Nts[0]);
  if (Error E = G.finalize())
    return E;
  return G;
}
