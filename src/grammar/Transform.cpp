//===- grammar/Transform.cpp - Grammar-to-grammar transformations ---------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Transform.h"

#include "support/SmallVector.h"

#include <vector>

using namespace odburg;

/// Deep-copies \p P from \p From into \p To, registering names as needed.
static PatternNode *clonePattern(const Grammar &From, Grammar &To,
                                 const PatternNode *P) {
  if (P->isLeaf())
    return To.makeLeaf(To.addNonterminal(From.nonterminalName(P->Nt)));
  OperatorId Op =
      To.addOperator(From.operatorName(P->Op), From.operatorArity(P->Op));
  SmallVector<PatternNode *, 4> Children;
  for (unsigned I = 0; I < P->NumChildren; ++I)
    Children.push_back(clonePattern(From, To, P->Children[I]));
  return To.makeNode(Op, Children);
}

/// Collects the nonterminals referenced by \p P into \p Used.
static void collectUsedNts(const PatternNode *P, std::vector<bool> &Used) {
  if (P->isLeaf()) {
    Used[P->Nt] = true;
    return;
  }
  for (unsigned I = 0; I < P->NumChildren; ++I)
    collectUsedNts(P->Children[I], Used);
}

/// Shared implementation: drops rules for which \p Drop returns true,
/// cascades, rebuilds.
template <typename DropFnT>
static Expected<Grammar> stripRules(const Grammar &G, DropFnT Drop) {
  // Removing a dynamic rule can leave its LHS nonterminal without rules,
  // which invalidates every rule whose pattern mentions that nonterminal.
  // Cascade until stable (the paper's "without constrained rules" grammars
  // are exactly the fixed point).
  std::vector<bool> Keep(G.numSourceRules(), true);
  for (RuleId R = 0; R < G.numSourceRules(); ++R)
    Keep[R] = !Drop(G.sourceRule(R));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<bool> HasRule(G.numNonterminals(), false);
    for (RuleId R = 0; R < G.numSourceRules(); ++R)
      if (Keep[R])
        HasRule[G.sourceRule(R).Lhs] = true;
    for (RuleId R = 0; R < G.numSourceRules(); ++R) {
      if (!Keep[R])
        continue;
      std::vector<bool> Used(G.numNonterminals(), false);
      collectUsedNts(G.sourceRule(R).Pattern, Used);
      for (NonterminalId Nt = 0; Nt < G.numNonterminals(); ++Nt) {
        if (Used[Nt] && !HasRule[Nt]) {
          Keep[R] = false;
          Changed = true;
          break;
        }
      }
    }
  }

  Grammar Out;
  // Register all operators up front so operator ids remain stable between
  // the two grammars (IR built against one labels correctly under both).
  for (OperatorId Op = 0; Op < G.numOperators(); ++Op)
    Out.addOperator(G.operatorName(Op), G.operatorArity(Op));
  for (RuleId R = 0; R < G.numSourceRules(); ++R) {
    if (!Keep[R])
      continue;
    const SourceRule &SR = G.sourceRule(R);
    NonterminalId Lhs = Out.addNonterminal(G.nonterminalName(SR.Lhs));
    PatternNode *P = clonePattern(G, Out, SR.Pattern);
    DynCostId Hook = SR.DynHook == InvalidDynCost
                         ? InvalidDynCost
                         : Out.addDynHook(G.dynHookName(SR.DynHook));
    Out.addRule(Lhs, P, SR.FixedCost, Hook, SR.ExtNumber, SR.EmitTemplate);
  }
  NonterminalId Start = Out.findNonterminal(G.nonterminalName(G.startNt()));
  if (Start == InvalidNonterminal)
    return Error::make("start nonterminal lost all rules after stripping "
                       "dynamic-cost rules");
  Out.setStart(Start);
  if (Error E = Out.finalize())
    return E;
  return Out;
}

Expected<Grammar> odburg::withoutDynCostRules(const Grammar &G) {
  return stripRules(
      G, [](const SourceRule &R) { return R.DynHook != InvalidDynCost; });
}

Expected<Grammar> odburg::withoutDynHook(const Grammar &G,
                                         std::string_view HookName) {
  return stripRules(G, [&](const SourceRule &R) {
    return R.DynHook != InvalidDynCost &&
           G.dynHookName(R.DynHook) == HookName;
  });
}
