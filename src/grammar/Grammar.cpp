//===- grammar/Grammar.cpp - Tree grammars ---------------------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "grammar/Grammar.h"

#include "support/ErrorHandling.h"
#include "support/Hashing.h"
#include "support/StringUtil.h"

#include <algorithm>

using namespace odburg;

OperatorId Grammar::addOperator(std::string_view Name, unsigned Arity) {
  assert(!Finalized && "grammar is frozen");
  auto It = OpByName.find(std::string(Name));
  if (It != OpByName.end()) {
    assert(OpArities[It->second] == Arity && "operator re-added with new arity");
    return It->second;
  }
  OperatorId Id = static_cast<OperatorId>(OpNames.size());
  OpNames.emplace_back(Name);
  OpArities.push_back(Arity);
  OpByName.emplace(std::string(Name), Id);
  return Id;
}

NonterminalId Grammar::addNonterminal(std::string_view Name) {
  assert(!Finalized && "grammar is frozen");
  auto It = NtByName.find(std::string(Name));
  if (It != NtByName.end())
    return It->second;
  NonterminalId Id = static_cast<NonterminalId>(NtNames.size());
  NtNames.emplace_back(Name);
  NtIsHelper.push_back(false);
  NtByName.emplace(std::string(Name), Id);
  return Id;
}

DynCostId Grammar::addDynHook(std::string_view Name) {
  assert(!Finalized && "grammar is frozen");
  auto It = DynHookByName.find(std::string(Name));
  if (It != DynHookByName.end())
    return It->second;
  DynCostId Id = static_cast<DynCostId>(DynHookNames.size());
  DynHookNames.emplace_back(Name);
  DynHookByName.emplace(std::string(Name), Id);
  return Id;
}

PatternNode *Grammar::makeLeaf(NonterminalId Nt) {
  PatternNode *P = PatternArena.create<PatternNode>();
  P->Nt = Nt;
  return P;
}

PatternNode *Grammar::makeNode(OperatorId Op,
                               const SmallVectorImpl<PatternNode *> &Children) {
  assert(Children.size() == operatorArity(Op) &&
         "pattern child count does not match operator arity");
  PatternNode *P = PatternArena.create<PatternNode>();
  P->Op = Op;
  P->NumChildren = Children.size();
  if (P->NumChildren) {
    P->Children = PatternArena.allocateArray<PatternNode *>(P->NumChildren);
    std::copy(Children.begin(), Children.end(), P->Children);
  }
  return P;
}

RuleId Grammar::addRule(NonterminalId Lhs, const PatternNode *Pattern,
                        Cost FixedCost, DynCostId DynHook, unsigned ExtNumber,
                        std::string EmitTemplate) {
  assert(!Finalized && "grammar is frozen");
  assert(FixedCost.isFinite() && "rules must have finite fixed costs");
  SourceRule R;
  R.Lhs = Lhs;
  R.Pattern = Pattern;
  R.FixedCost = FixedCost;
  R.DynHook = DynHook;
  R.ExtNumber = ExtNumber ? ExtNumber : NextAutoExtNumber;
  NextAutoExtNumber = std::max(NextAutoExtNumber, R.ExtNumber) + 1;
  R.EmitTemplate = std::move(EmitTemplate);
  RuleId Id = static_cast<RuleId>(SourceRules.size());
  SourceRules.push_back(std::move(R));
  if (StartNt == InvalidNonterminal)
    StartNt = Lhs;
  return Id;
}

OperatorId Grammar::findOperator(std::string_view Name) const {
  auto It = OpByName.find(std::string(Name));
  return It == OpByName.end() ? InvalidOperator : It->second;
}

NonterminalId Grammar::findNonterminal(std::string_view Name) const {
  auto It = NtByName.find(std::string(Name));
  return It == NtByName.end() ? InvalidNonterminal : It->second;
}

/// Checks pattern well-formedness recursively.
static Error checkPattern(const Grammar &G, const PatternNode *P) {
  if (P->isLeaf()) {
    if (P->Nt == InvalidNonterminal)
      return Error::make("pattern leaf has no nonterminal");
    return Error::success();
  }
  if (P->NumChildren != G.operatorArity(P->Op))
    return Error::make("pattern for operator '" + G.operatorName(P->Op) +
                       "' has wrong child count");
  for (unsigned I = 0; I < P->NumChildren; ++I)
    if (Error E = checkPattern(G, P->Children[I]))
      return E;
  return Error::success();
}

Error Grammar::validate() const {
  if (SourceRules.empty())
    return Error::make("grammar has no rules");
  if (StartNt == InvalidNonterminal)
    return Error::make("grammar has no start nonterminal");
  for (const SourceRule &R : SourceRules) {
    if (Error E = checkPattern(*this, R.Pattern))
      return E;
    if (R.Pattern->isLeaf() && R.Pattern->Nt == R.Lhs)
      return Error::make("self-chain rule '" + NtNames[R.Lhs] + ": " +
                         NtNames[R.Lhs] + "' is useless");
  }
  // Every nonterminal used in a pattern must be derivable (appear as LHS).
  std::vector<bool> HasRule(NtNames.size(), false);
  for (const SourceRule &R : SourceRules)
    HasRule[R.Lhs] = true;
  for (const SourceRule &R : SourceRules) {
    SmallVector<const PatternNode *, 8> Stack;
    Stack.push_back(R.Pattern);
    while (!Stack.empty()) {
      const PatternNode *P = Stack.back();
      Stack.pop_back();
      if (P->isLeaf()) {
        if (!HasRule[P->Nt])
          return Error::make("nonterminal '" + NtNames[P->Nt] +
                             "' is used but has no rules");
        continue;
      }
      for (unsigned I = 0; I < P->NumChildren; ++I)
        Stack.push_back(P->Children[I]);
    }
  }
  return Error::success();
}

NonterminalId Grammar::splitPattern(const PatternNode *P, RuleId Source) {
  assert(!P->isLeaf() && "splitPattern on a leaf");
  // Helper nonterminals get reserved names that the parser rejects, so they
  // cannot collide with user nonterminals.
  std::string Name =
      "$h" + std::to_string(NtNames.size()) + "." +
      std::to_string(SourceRules[Source].ExtNumber);
  NonterminalId Helper = addNonterminal(Name);
  NtIsHelper[Helper] = true;

  NormRule NR;
  NR.Lhs = Helper;
  NR.Op = P->Op;
  NR.FixedCost = Cost::zero();
  NR.Source = Source;
  NR.IsFinal = false;
  for (unsigned I = 0; I < P->NumChildren; ++I) {
    const PatternNode *C = P->Children[I];
    NR.Operands.push_back(C->isLeaf() ? C->Nt : splitPattern(C, Source));
  }
  NormRules.push_back(std::move(NR));
  return Helper;
}

Error Grammar::buildNormalForm() {
  NormRules.clear();
  for (RuleId Id = 0; Id < SourceRules.size(); ++Id) {
    const SourceRule &R = SourceRules[Id];
    const PatternNode *P = R.Pattern;
    NormRule NR;
    NR.Lhs = R.Lhs;
    NR.FixedCost = R.FixedCost;
    NR.DynHook = R.DynHook;
    NR.Source = Id;
    NR.IsFinal = true;
    if (P->isLeaf()) {
      NR.ChainRhs = P->Nt;
      NormRules.push_back(std::move(NR));
      continue;
    }
    NR.Op = P->Op;
    for (unsigned I = 0; I < P->NumChildren; ++I) {
      const PatternNode *C = P->Children[I];
      // Inner operator subpatterns become 0-cost helper rules; the final
      // fragment keeps the cost and the dynamic hook (the hook inspects the
      // whole matched subtree, which is rooted here).
      NR.Operands.push_back(C->isLeaf() ? C->Nt : splitPattern(C, Id));
    }
    NormRules.push_back(std::move(NR));
  }

  // Build per-operator indices.
  BaseRulesByOp.assign(OpNames.size(), {});
  DynRulesByOp.assign(OpNames.size(), {});
  ChainRuleIds.clear();
  NumDynRules = 0;
  for (RuleId Id = 0; Id < NormRules.size(); ++Id) {
    const NormRule &NR = NormRules[Id];
    if (NR.isChain()) {
      ChainRuleIds.push_back(Id);
      if (NR.DynHook != InvalidDynCost)
        return Error::make("dynamic costs on chain rules are not supported "
                           "(rule for '" +
                           NtNames[NR.Lhs] + "')");
      continue;
    }
    BaseRulesByOp[NR.Op].push_back(Id);
    if (NR.DynHook != InvalidDynCost) {
      DynRulesByOp[NR.Op].push_back(Id);
      ++NumDynRules;
    }
  }
  return Error::success();
}

Error Grammar::finalize() {
  assert(!Finalized && "finalize() called twice");
  if (Error E = validate())
    return E;
  if (Error E = buildNormalForm())
    return E;
  Finalized = true;
  return Error::success();
}

GrammarStats Grammar::stats() const {
  GrammarStats S;
  S.SourceRules = numSourceRules();
  S.NormRules = numNormRules();
  S.Operators = numOperators();
  S.Nonterminals = numNonterminals();
  for (bool H : NtIsHelper)
    S.HelperNonterminals += H;
  for (const NormRule &R : NormRules) {
    if (R.isChain())
      ++S.ChainRules;
    else
      ++S.BaseRules;
  }
  for (const SourceRule &R : SourceRules)
    S.DynCostRules += R.DynHook != InvalidDynCost;
  for (unsigned A : OpArities)
    S.MaxArity = std::max(S.MaxArity, A);
  return S;
}

std::uint64_t Grammar::fingerprint() const {
  assert(Finalized && "fingerprint() requires a finalized grammar");
  // Hash exactly what the labeling engines and the emitter consume: the
  // normal form plus the name/arity tables it indexes into. Helper-
  // nonterminal naming is deterministic in source-rule order, so two
  // parses of the same text always agree.
  std::uint64_t H = 0x0DB09E06u; // Distinct seed from the tables formats.
  H = hashCombine(H, OpNames.size());
  for (std::size_t I = 0; I < OpNames.size(); ++I) {
    H = hashCombine(H, hashString(OpNames[I]));
    H = hashCombine(H, OpArities[I]);
  }
  H = hashCombine(H, NtNames.size());
  for (const std::string &N : NtNames)
    H = hashCombine(H, hashString(N));
  H = hashCombine(H, DynHookNames.size());
  for (const std::string &N : DynHookNames)
    H = hashCombine(H, hashString(N));
  H = hashCombine(H, StartNt);
  H = hashCombine(H, NormRules.size());
  for (const NormRule &NR : NormRules) {
    H = hashCombine(H, NR.Lhs);
    H = hashCombine(H, NR.ChainRhs);
    H = hashCombine(H, NR.Op);
    H = hashCombine(H, NR.Operands.size());
    for (NonterminalId Nt : NR.Operands)
      H = hashCombine(H, Nt);
    H = hashCombine(H, NR.FixedCost.raw());
    H = hashCombine(H, NR.DynHook);
    H = hashCombine(H, NR.IsFinal);
    // Reduction follows NR.Source to the source rule's emission template
    // and external number, so they are identity too.
    const SourceRule &SR = SourceRules[NR.Source];
    H = hashCombine(H, SR.ExtNumber);
    H = hashCombine(H, hashString(SR.EmitTemplate));
  }
  return H;
}

std::string Grammar::normRuleToString(RuleId R) const {
  const NormRule &NR = NormRules[R];
  std::string Out = NtNames[NR.Lhs] + ": ";
  if (NR.isChain()) {
    Out += NtNames[NR.ChainRhs];
  } else {
    Out += OpNames[NR.Op];
    if (!NR.Operands.empty()) {
      Out += '(';
      for (unsigned I = 0; I < NR.Operands.size(); ++I) {
        if (I)
          Out += ',';
        Out += NtNames[NR.Operands[I]];
      }
      Out += ')';
    }
  }
  Out += " (" + std::to_string(NR.FixedCost.value()) + ")";
  if (NR.DynHook != InvalidDynCost)
    Out += " ?" + DynHookNames[NR.DynHook];
  Out += " [#" + std::to_string(SourceRules[NR.Source].ExtNumber) + "]";
  return Out;
}
