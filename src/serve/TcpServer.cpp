//===- serve/TcpServer.cpp - Socket front for the compile service ---------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "serve/TcpServer.h"

#include "support/FaultInjection.h"
#include "support/StringUtil.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <istream>

using namespace odburg;
using namespace odburg::serve;

/// One client connection: a reader thread (parse + submit), a writer
/// thread (drain the bounded Out queue to the socket), and the accounting
/// that ties the connection's lifetime to its deliveries.
///
/// Invariant the Live deque depends on: this connection submits to exactly
/// one lane, and the lane delivers in global submission order — so this
/// connection's deliveries arrive in this connection's submission order,
/// and the function owning each in-flight tree is always Live.front() at
/// its delivery. Functions must outlive their compilation (the service
/// compiles in place), which is exactly Live's job; pop happens at
/// delivery, after the compile finished.
struct TcpServer::Conn {
  std::uint64_t Id = 0;
  Socket Sock;

  std::mutex M;
  std::condition_variable CanPush; ///< Out below its bound, or Dead.
  std::condition_variable CanPop;  ///< Out non-empty, OutputDone, or Dead.
  std::condition_variable DrainedCv; ///< Delivered caught up to Submitted.
  /// Rendered responses awaiting the writer, bounded by MaxPendingWrites.
  std::deque<std::string> Out;
  /// One in-flight function plus its wire sequence number — the index of
  /// its frame among this connection's function frames, which diagnostic
  /// records quote (`seq=K`) so a client can map out-of-band sheds and
  /// ordered-slot deadline records back to the frame it sent.
  struct LiveFn {
    std::unique_ptr<ir::IRFunction> F;
    std::uint64_t Frame = 0;
  };
  /// Functions submitted and not yet delivered, in submission order.
  std::deque<LiveFn> Live;
  /// Function frames read so far (shed or submitted) — the seq counter.
  /// Reader-thread-only.
  std::uint64_t Frames = 0;
  std::uint64_t Submitted = 0;
  std::uint64_t Delivered = 0;
  /// Abrupt end (client disconnect, transport error, server stop): output
  /// is abandoned, blocked pushers/writers release immediately.
  bool Dead = false;
  /// Reader is done and drained; the writer exits once Out empties.
  bool OutputDone = false;

  std::thread ReaderT; ///< Joined by the reaper (or stop()).
  std::thread WriterT; ///< Joined by the reader's epilogue.
  /// Set as the reader's last act; tells the reaper this Conn is joinable.
  std::atomic<bool> Finished{false};
};

TcpServer::TcpServer(const targets::Target &T, Options Opts)
    : T(T), Opts(std::move(Opts)) {}

TcpServer::~TcpServer() { stop(); }

Expected<std::unique_ptr<TcpServer>> TcpServer::start(const targets::Target &T,
                                                      Options Opts) {
  Expected<Socket> L = Socket::listenOn(Opts.Host, Opts.Port);
  if (!L)
    return L.takeError();
  Expected<std::uint16_t> P = L->boundPort();
  if (!P)
    return P.takeError();
  std::unique_ptr<TcpServer> S(new TcpServer(T, std::move(Opts)));
  S->Listener = std::move(*L);
  S->BoundPort = *P;
  TcpServer *Srv = S.get();
  S->AcceptThread = std::thread([Srv] { Srv->acceptLoop(); });
  // The governor also owns registry-lane reaping and eviction, so it
  // runs whenever a registry is attached, budget or not.
  if (S->Opts.MemBudgetBytes || S->Opts.Registry)
    S->GovThread = std::thread([Srv] { Srv->governorLoop(); });
  return S;
}

const Grammar &TcpServer::laneGrammar(BackendKind K) const {
  // The offline lane always serves the stripped fixed-cost grammar (fixed
  // tables cannot encode dynamic costs); ForceFixed levels the others
  // onto it so all lanes produce byte-identical assembly. The hybrid
  // lane serves the full grammar: its dyn-cost remainder runs on the
  // automaton, so nothing needs stripping.
  if (Opts.ForceFixed || K == BackendKind::Offline)
    return T.Fixed;
  return T.G;
}

const DynCostTable *TcpServer::laneDyn(BackendKind K) const {
  if (Opts.ForceFixed || K == BackendKind::Offline)
    return nullptr;
  return &T.Dyn;
}

pipeline::CompileService::Options TcpServer::laneServiceOpts(BackendKind K) {
  pipeline::CompileService::Options SO;
  SO.Backend = K;
  SO.BackendOpts = Opts.BackendOpts;
  SO.Workers = Opts.Workers;
  SO.QueueCapacity = Opts.QueueCapacity;
  SO.DeadlineNs = Opts.CompileDeadlineMs * 1000000ull;
  SO.OnResultTagged = [this](std::size_t, std::uint64_t Tag,
                             const pipeline::CompileResult &R) {
    dispatch(Tag, R);
  };
  return SO;
}

Expected<pipeline::CompileService *> TcpServer::lane(BackendKind K) {
  std::lock_guard<std::mutex> L(LanesM);
  std::unique_ptr<pipeline::CompileService> &Slot =
      Lanes[static_cast<std::size_t>(K)];
  if (Slot)
    return Slot.get();
  Expected<std::unique_ptr<pipeline::CompileService>> S =
      pipeline::CompileService::create(laneGrammar(K), laneDyn(K),
                                       laneServiceOpts(K));
  if (!S)
    return S.takeError();
  Slot = std::move(*S);
  // A lane born while the governor already holds pressure starts degraded
  // — it would otherwise grow the very tiers the governor is shedding.
  if (Pressure.load(std::memory_order_relaxed))
    Slot->backend().setMemoryPressure(true);
  return Slot.get();
}

Expected<TcpServer::RegLane *> TcpServer::regLane(const registry::Lease &L,
                                                  BackendKind K) {
  registry::GrammarEntry *E = L.entry();
  // Materialize the shared backend before taking LanesM: creation can
  // mean table generation or a snapshot load, and the caller's lease
  // already keeps it alive.
  Expected<LabelerBackend *> B = E->backend(K);
  if (!B)
    return B.takeError();
  std::lock_guard<std::mutex> Lk(LanesM);
  std::unique_ptr<RegLane> &Slot =
      RegLanes[std::make_pair(static_cast<const registry::GrammarEntry *>(E),
                              static_cast<unsigned>(K))];
  if (!Slot) {
    auto RL = std::make_unique<RegLane>();
    RL->Pin = L.clone();
    RL->Svc = std::make_unique<pipeline::CompileService>(
        E->grammar(K), E->dynCosts(K), **B, laneServiceOpts(K));
    Slot = std::move(RL);
  }
  ++Slot->Active;
  return Slot.get();
}

void TcpServer::releaseRegLane(RegLane *L) {
  std::lock_guard<std::mutex> Lk(LanesM);
  if (--L->Active == 0)
    L->IdleSince = std::chrono::steady_clock::now();
}

void TcpServer::reapIdleRegLanes(bool Force) {
  // Collect under the lock, destroy outside it: shutdown() joins worker
  // threads and must not stall lane creation or stats. A lane at
  // Active == 0 has no reader left that could submit (connections
  // release only after their drain wait), so shutting its service down
  // severs nothing. The RegLane member order drops the service before
  // the entry pin.
  std::vector<std::unique_ptr<RegLane>> Dead;
  auto Now = std::chrono::steady_clock::now();
  auto Grace = std::chrono::milliseconds(Opts.RegistryLaneIdleMillis);
  {
    std::lock_guard<std::mutex> Lk(LanesM);
    for (auto It = RegLanes.begin(); It != RegLanes.end();) {
      if (It->second->Active == 0 &&
          (Force || Now - It->second->IdleSince >= Grace)) {
        Dead.push_back(std::move(It->second));
        It = RegLanes.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (std::unique_ptr<RegLane> &L : Dead)
    L->Svc->shutdown();
}

const pipeline::CompileService *TcpServer::laneService(BackendKind K) const {
  std::lock_guard<std::mutex> L(LanesM);
  return Lanes[static_cast<std::size_t>(K)].get();
}

std::size_t TcpServer::registryLanes() const {
  std::lock_guard<std::mutex> L(LanesM);
  return RegLanes.size();
}

unsigned TcpServer::connectionsActive() const {
  std::lock_guard<std::mutex> L(ConnsM);
  return static_cast<unsigned>(Conns.size());
}

bool TcpServer::pushOut(Conn &C, std::string Bytes) {
  std::unique_lock<std::mutex> L(C.M);
  // The slow-consumer backpressure point: a full Out queue blocks here,
  // which blocks the lane's delivery sink, which fills the service's
  // bounded queue, which blocks the readers feeding it. markDead releases
  // the wait.
  C.CanPush.wait(L, [&] {
    return C.Dead || C.Out.size() < Opts.MaxPendingWrites;
  });
  if (C.Dead)
    return false;
  C.Out.push_back(std::move(Bytes));
  C.CanPop.notify_one();
  return true;
}

void TcpServer::markDead(Conn &C) {
  {
    std::lock_guard<std::mutex> L(C.M);
    if (C.Dead)
      return;
    C.Dead = true;
    // Rendered-but-unwritten responses die with the connection; count
    // them so operators can see vanished-client waste, then free the
    // bytes now rather than at reap time.
    CancelledCount.fetch_add(C.Out.size(), std::memory_order_relaxed);
    C.Out.clear();
  }
  C.CanPush.notify_all();
  C.CanPop.notify_all();
  C.DrainedCv.notify_all();
  // Severs (not closes) the socket: the reader and writer threads may be
  // blocked in recv/send on it right now, and shutdown(2) is the
  // thread-safe way to fail them out.
  C.Sock.shutdownBoth();
}

/// Flattens an error message onto one line for the wire.
static std::string oneLine(std::string Msg) {
  for (char &C : Msg)
    if (C == '\n')
      C = ' ';
  return Msg;
}

void TcpServer::dispatch(std::uint64_t Tag, const pipeline::CompileResult &R) {
  std::shared_ptr<Conn> C;
  {
    std::lock_guard<std::mutex> L(ConnsM);
    auto It = Conns.find(Tag);
    if (It != Conns.end())
      C = It->second;
  }
  if (!C) {
    // Connection reaped before delivery; result dropped.
    CancelledCount.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // This delivery's function is Live.front() (per-connection deliveries
  // arrive in per-connection submission order — see Conn). Freeing it here
  // is safe: the compile is finished, only delivery remains.
  Conn::LiveFn Done;
  {
    std::lock_guard<std::mutex> L(C->M);
    if (!C->Live.empty()) {
      Done = std::move(C->Live.front());
      C->Live.pop_front();
    }
  }

  std::string Bytes;
  if (R.ok()) {
    Bytes = R.Asm;
  } else if (R.Kind == ErrorKind::DeadlineExceeded) {
    // The deadline record fills the function's ordered slot; quote its
    // frame seq so a retrying client can re-send exactly that function.
    Bytes = "ERROR DeadlineExceeded: " + oneLine(R.Diagnostic) +
            "; seq=" + std::to_string(Done.Frame) + "\n";
  } else {
    // One diagnostic record per failed function, in its ordered slot.
    // Responses are line-framed, so the diagnostic must stay one line.
    Bytes = "ERROR compile: " + oneLine(R.Diagnostic) + "\n";
  }

  // Enqueue-or-drop and the Delivered increment are one critical section:
  // once a client can observe the response bytes (they reached Out), any
  // STATS snapshot already counts this delivery. Blocking happens here
  // too (bounded queue) — the slow-consumer backpressure point; a dead
  // connection drops the bytes but the delivery still counts, so
  // drained-waiters see every submission resolve exactly once.
  {
    std::unique_lock<std::mutex> L(C->M);
    C->CanPush.wait(L, [&] {
      return C->Dead || C->Out.size() < Opts.MaxPendingWrites;
    });
    if (!C->Dead) {
      C->Out.push_back(std::move(Bytes));
      C->CanPop.notify_one();
    } else {
      CancelledCount.fetch_add(1, std::memory_order_relaxed);
    }
    ++C->Delivered;
  }
  C->DrainedCv.notify_all();
}

std::string TcpServer::statsJson(BackendKind K, Conn &C,
                                 pipeline::CompileService *Svc,
                                 const std::string &GrammarName) {
  pipeline::ServiceStats S;
  TierDecisions Tier;
  Tier.Config = TierConfig{false, 1, false};
  Tier.PromoteThreshold = 0;
  {
    std::lock_guard<std::mutex> L(LanesM);
    if (!Svc)
      Svc = Lanes[static_cast<std::size_t>(K)].get();
    if (Svc) {
      S = Svc->statsSnapshot();
      Tier = Svc->backend().tierDecisions();
    }
  }
  std::uint64_t ConnSub = 0, ConnDel = 0;
  {
    std::lock_guard<std::mutex> L(C.M);
    ConnSub = C.Submitted;
    ConnDel = C.Delivered;
  }
  std::string Line = formatf(
      "STATS {\"backend\":\"%s\",\"grammar\":\"%s\","
      "\"submitted\":%zu,\"delivered\":%zu,"
      "\"queueDepth\":%zu,\"workers\":%u,\"latencySamples\":%zu,"
      "\"p50Us\":%.1f,\"p90Us\":%.1f,\"p99Us\":%.1f,"
      "\"l1HitRate\":%.4f,\"denseHitRate\":%.4f,\"cacheHitRate\":%.4f,"
      "\"offlineHitRate\":%.4f,"
      "\"adaptive\":%s,\"tierL1On\":%s,\"tierL1Ways\":%u,"
      "\"tierDenseOn\":%s,\"tierPromoteThreshold\":%u,"
      "\"tierWindows\":%llu,\"tierReconfigs\":%llu,"
      "\"connSubmitted\":%llu,\"connDelivered\":%llu,"
      "\"connectionsActive\":%u,\"connectionsAccepted\":%llu,"
      "\"deadlineExpired\":%zu,\"maxConns\":%u,"
      "\"shedConnections\":%llu,\"shedSubmits\":%llu,"
      "\"idleReaped\":%llu,\"cancelledDeliveries\":%llu,"
      "\"faultsInjected\":%llu,\"degraded\":%s,"
      "\"backendBytes\":%zu,\"memBudget\":%zu,\"draining\":%s",
      backendName(K), GrammarName.c_str(), S.Submitted, S.Delivered,
      S.QueueDepth, S.Workers,
      S.LatencySamples, S.P50Us, S.P90Us, S.P99Us, S.l1HitRate(),
      S.denseHitRate(), S.cacheHitRate(), S.offlineHitRate(),
      Tier.Adaptive ? "true" : "false",
      Tier.Config.L1On ? "true" : "false", Tier.Config.L1Ways,
      Tier.Config.DenseOn ? "true" : "false", Tier.PromoteThreshold,
      static_cast<unsigned long long>(Tier.Windows),
      static_cast<unsigned long long>(Tier.Reconfigs),
      static_cast<unsigned long long>(ConnSub),
      static_cast<unsigned long long>(ConnDel), connectionsActive(),
      static_cast<unsigned long long>(connectionsAccepted()),
      S.DeadlineExpired, Opts.MaxConns,
      static_cast<unsigned long long>(ShedConns.load()),
      static_cast<unsigned long long>(ShedSubmits.load()),
      static_cast<unsigned long long>(IdleReapedCount.load()),
      static_cast<unsigned long long>(CancelledCount.load()),
      static_cast<unsigned long long>(fault::firedTotal()),
      (Tier.Degraded || Pressure.load()) ? "true" : "false",
      BackendBytes.load(), Opts.MemBudgetBytes,
      Draining.load() ? "true" : "false");
  if (Opts.Registry) {
    registry::RegistryStats R = Opts.Registry->statsSnapshot();
    std::size_t LaneCount;
    {
      std::lock_guard<std::mutex> L(LanesM);
      LaneCount = RegLanes.size();
    }
    Line += formatf(
        ",\"registry\":{\"residentGrammars\":%llu,\"registryLanes\":%zu,"
        "\"acquires\":%llu,\"evictions\":%llu,\"hotSwaps\":%llu,"
        "\"snapshotHits\":%llu,\"snapshotMisses\":%llu,"
        "\"tablesLoads\":%llu,\"registryBytes\":%llu,"
        "\"registryPressure\":%s,\"memBudget\":%llu}",
        static_cast<unsigned long long>(R.ResidentGrammars), LaneCount,
        static_cast<unsigned long long>(R.Acquires),
        static_cast<unsigned long long>(R.Evictions),
        static_cast<unsigned long long>(R.HotSwaps),
        static_cast<unsigned long long>(R.SnapshotHits),
        static_cast<unsigned long long>(R.SnapshotMisses),
        static_cast<unsigned long long>(R.TablesLoads),
        static_cast<unsigned long long>(R.BackendBytes),
        R.MemoryPressure ? "true" : "false",
        static_cast<unsigned long long>(
            Opts.Registry->options().MemBudgetBytes));
  }
  Line += "}\n";
  return Line;
}

void TcpServer::connReader(std::shared_ptr<Conn> C) {
  if (Opts.IdleTimeoutMillis)
    C->Sock.setRecvTimeout(Opts.IdleTimeoutMillis);
  SocketStreamBuf SB(C->Sock);
  std::istream In(&SB);
  BackendKind Kind = Opts.DefaultBackend;
  ir::SExprFunctionStream Stream(In, laneGrammar(Kind));
  Stream.setMaxFunctionBytes(Opts.MaxFrameBytes);
  pipeline::CompileService *Svc = nullptr;

  // Multi-tenant state: a GRAMMAR handshake pins a registry entry for
  // this connection's lifetime and routes it to a shared per-(grammar,
  // backend) registry lane instead of the server target's lanes.
  registry::Lease Lease;
  RegLane *RLane = nullptr;
  std::string GrammarName = T.Name;

  // The grammar this connection parses and labels against right now.
  auto CurGrammar = [&]() -> const Grammar & {
    return Lease ? Lease->grammar(Kind) : laneGrammar(Kind);
  };
  // Binds Svc to the lane for the current (grammar, Kind). On failure
  // pushes the diagnostic and returns false with Svc still null.
  auto Bind = [&]() -> bool {
    if (Lease) {
      Expected<RegLane *> L = regLane(Lease, Kind);
      if (!L) {
        pushOut(*C, "ERROR backend: " + oneLine(L.message()) + "\n");
        return false;
      }
      RLane = *L;
      Svc = RLane->Svc.get();
      return true;
    }
    Expected<pipeline::CompileService *> L = lane(Kind);
    if (!L) {
      pushOut(*C, "ERROR backend: " + oneLine(L.message()) + "\n");
      return false;
    }
    Svc = *L;
    return true;
  };

  for (;;) {
    auto F = std::make_unique<ir::IRFunction>();
    Expected<ir::SExprFunctionStream::Item> I = Stream.nextItem(*F);
    if (SB.timedOut()) {
      // The idle reaper: the client went quiet past the receive-timeout
      // bound. Depending on where the silence fell, nextItem read it as
      // end-of-input or as a truncated frame — either way this is a reap,
      // not a clean half-close; say so and stop reading. Results already
      // in flight still deliver through the normal epilogue below.
      IdleReapedCount.fetch_add(1, std::memory_order_relaxed);
      pushOut(*C, formatf("ERROR IdleTimeout: no input for %u ms; "
                          "closing connection\n",
                          Opts.IdleTimeoutMillis));
      break;
    }
    if (!I) {
      // Parse errors are recoverable per function: the stream consumed
      // the bad frame up to its blank-line boundary, so report the
      // diagnostic record and keep serving. A poisoned stream (byte-cap
      // overrun) or an I/O error broke framing — report and stop.
      pushOut(*C, "ERROR parse: " + oneLine(I.message()) + "\n");
      if (I.kind() == ErrorKind::MalformedInput && !Stream.poisoned())
        continue;
      break;
    }
    if (*I == ir::SExprFunctionStream::Item::End)
      break;

    if (*I == ir::SExprFunctionStream::Item::Control) {
      const std::string &Line = Stream.controlLine();
      if (Line == "STATS") {
        // Warm the lane so STATS reports the real worker pool even before
        // the first function. Out-of-band: the snapshot is pushed now, not
        // in order with pending compile results. A target-lane warm does
        // not bind the connection (BACKEND may still follow); a registry
        // lane does — its refcount keeps the service alive while we read.
        if (Svc) {
          pushOut(*C, statsJson(Kind, *C, Svc, GrammarName));
        } else if (Lease) {
          if (Bind())
            pushOut(*C, statsJson(Kind, *C, Svc, GrammarName));
        } else if (Expected<pipeline::CompileService *> L = lane(Kind)) {
          pushOut(*C, statsJson(Kind, *C, *L, GrammarName));
        } else {
          pushOut(*C, "ERROR backend: " + oneLine(L.message()) + "\n");
        }
        continue;
      }
      if (startsWith(Line, "GRAMMAR ")) {
        // Must come before the lane exists: the stream has to parse
        // against the right grammar from the first function, and the lane
        // key is the grammar. (So: GRAMMAR, then BACKEND, then traffic.)
        if (!Opts.Registry) {
          pushOut(*C, "ERROR protocol: no grammar registry configured\n");
          continue;
        }
        if (Svc) {
          pushOut(*C, "ERROR protocol: GRAMMAR must precede BACKEND and "
                      "the first function\n");
          continue;
        }
        std::string_view Name = trim(std::string_view(Line).substr(8));
        Expected<registry::Lease> L = Opts.Registry->acquire(Name);
        if (!L) {
          pushOut(*C, "ERROR grammar: " + oneLine(L.message()) + "\n");
          continue;
        }
        Lease = std::move(*L);
        GrammarName = Lease->name();
        Stream.rebind(CurGrammar());
        continue;
      }
      if (startsWith(Line, "RELOAD ")) {
        // Admin request, answered out-of-band: re-resolve from source and
        // hot-swap on content change. This connection keeps its own
        // version; only new GRAMMAR handshakes see the new epoch.
        if (!Opts.Registry) {
          pushOut(*C, "ERROR protocol: no grammar registry configured\n");
          continue;
        }
        std::string_view Name = trim(std::string_view(Line).substr(7));
        Expected<registry::Lease> L = Opts.Registry->reload(Name);
        if (!L) {
          pushOut(*C, "ERROR grammar: " + oneLine(L.message()) + "\n");
          continue;
        }
        pushOut(*C, formatf("OK RELOAD %s epoch=%llu\n",
                            (*L)->name().c_str(),
                            static_cast<unsigned long long>((*L)->epoch())));
        continue;
      }
      if (startsWith(Line, "BACKEND ")) {
        if (Svc) {
          pushOut(*C, "ERROR protocol: BACKEND must precede the first "
                      "function\n");
          continue;
        }
        std::string_view Name = trim(std::string_view(Line).substr(8));
        Expected<BackendKind> K = parseBackendKind(Name);
        if (!K) {
          pushOut(*C, "ERROR protocol: " + oneLine(K.message()) + "\n");
          continue;
        }
        // Bind the lane now: grammar switches (offline/ForceFixed serve
        // the stripped grammar) must happen before any function parses,
        // and a lane the server cannot build should fail the handshake,
        // not the first compile.
        Kind = *K;
        if (!Bind())
          break;
        Stream.rebind(CurGrammar());
        continue;
      }
      pushOut(*C, "ERROR protocol: unknown request '" + Line + "'\n");
      continue;
    }

    // A function. Bind the default lane on first use.
    if (!Svc && !Bind())
      break;
    ir::IRFunction &Ref = *F;
    std::uint64_t Seq = C->Frames++;
    {
      std::lock_guard<std::mutex> L(C->M);
      C->Live.push_back(Conn::LiveFn{std::move(F), Seq});
      ++C->Submitted;
    }
    // With a high-watermark configured, never block in submit: shed at
    // the bound and keep reading — an overloaded lane must not be able to
    // wedge this client's input side.
    Expected<std::future<pipeline::CompileResult>> Fut =
        Opts.LaneHighWatermark
            ? Svc->trySubmit(Ref, C->Id, Opts.LaneHighWatermark)
            : Svc->submit(Ref, C->Id);
    if (!Fut) {
      // Nothing was enqueued for this function, so un-count it. It is
      // still Live.back(): this reader is the only pusher, and deliveries
      // only pop the front.
      {
        std::lock_guard<std::mutex> L(C->M);
        C->Live.pop_back();
        --C->Submitted;
      }
      if (Fut.kind() == ErrorKind::ResourceExhausted) {
        // Shed (watermark hit, or an injected submit fault). Out-of-band
        // record — it can overtake earlier functions' results on the wire
        // — so it quotes the frame seq it refuses. The connection keeps
        // serving.
        ShedSubmits.fetch_add(1, std::memory_order_relaxed);
        pushOut(*C, "ERROR ResourceExhausted: " + oneLine(Fut.message()) +
                        "; seq=" + std::to_string(Seq) +
                        " retry-after-ms=50\n");
        continue;
      }
      break; // Shutdown raced the submission.
    }
    // The future is intentionally dropped: the tagged sink delivers.
  }

  // Input is done (EOF, half-close, fatal input error, or severed socket).
  // Wait for every accepted submission to resolve — delivered to Out, or
  // dropped against a dead connection; both count — before letting the
  // writer finish. The Live deque must not die before the lane is done
  // compiling its functions, and Delivered == Submitted is exactly that.
  {
    std::unique_lock<std::mutex> L(C->M);
    C->DrainedCv.wait(L, [&] { return C->Delivered >= C->Submitted; });
    C->OutputDone = true;
  }
  C->CanPop.notify_all();
  if (C->WriterT.joinable())
    C->WriterT.join();
  C->Sock.shutdownBoth();
  // Everything this connection submitted has resolved, so its registry
  // lane (and through it the grammar pin) can be let go — the governor
  // reaps the lane once idle, which is what makes the entry evictable.
  if (RLane)
    releaseRegLane(RLane);
  Lease.release();
  C->Finished.store(true);
}

void TcpServer::connWriter(std::shared_ptr<Conn> C) {
  for (;;) {
    std::string Bytes;
    {
      std::unique_lock<std::mutex> L(C->M);
      C->CanPop.wait(L, [&] {
        return C->Dead || !C->Out.empty() || C->OutputDone;
      });
      if (C->Dead)
        return;
      if (C->Out.empty())
        return; // OutputDone and drained: orderly end of responses.
      Bytes = std::move(C->Out.front());
      C->Out.pop_front();
    }
    C->CanPush.notify_one();
    if (!C->Sock.writeAll(Bytes)) {
      // Peer vanished mid-write: abandon this connection's output
      // promptly. markDead counts and frees what was still queued; the
      // response in hand never reached the peer either, so it counts too.
      // The reader fails out via the severed socket.
      markDead(*C);
      CancelledCount.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void TcpServer::reapFinished() {
  // Runs on the accept thread only (as does registration), so the map
  // mutates from one thread and readers-of-the-map (dispatch, stats) just
  // lock. Joining outside ConnsM keeps dispatch unblocked.
  std::vector<std::shared_ptr<Conn>> Done;
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto It = Conns.begin(); It != Conns.end();) {
      if (It->second->Finished.load()) {
        Done.push_back(It->second);
        It = Conns.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (const std::shared_ptr<Conn> &C : Done)
    if (C->ReaderT.joinable())
      C->ReaderT.join();
}

void TcpServer::acceptLoop() {
  for (;;) {
    Expected<Socket> S = Listener.accept();
    if (!S) {
      S.takeError().consume();
      if (Stopping.load())
        break;
      // Transient accept failure (EMFILE and friends): back off briefly
      // rather than spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (Stopping.load())
        break;
      continue;
    }
    // Admission control: past the connection cap, answer with one shed
    // record and close — never block the accept loop behind an overloaded
    // server, and never let an unbounded connection storm grow the thread
    // count. Reap first so finished-but-unreaped connections don't eat
    // the cap.
    if (Opts.MaxConns) {
      reapFinished();
      unsigned Active;
      {
        std::lock_guard<std::mutex> L(ConnsM);
        Active = static_cast<unsigned>(Conns.size());
      }
      if (Active >= Opts.MaxConns) {
        ShedConns.fetch_add(1, std::memory_order_relaxed);
        // Short write into a fresh socket's empty send buffer — cannot
        // meaningfully block; best-effort anyway (the client may already
        // be gone). RAII closes the socket at scope exit.
        S->writeAll(formatf("ERROR ResourceExhausted: server at "
                            "connection cap (%u); retry-after-ms=100\n",
                            Opts.MaxConns));
        continue;
      }
    }
    auto C = std::make_shared<Conn>();
    C->Sock = std::move(*S);
    {
      std::lock_guard<std::mutex> L(ConnsM);
      C->Id = NextConnId++;
      Conns.emplace(C->Id, C);
    }
    Accepted.fetch_add(1);
    C->WriterT = std::thread([this, C] { connWriter(C); });
    C->ReaderT = std::thread([this, C] { connReader(C); });
    reapFinished();
  }
}

void TcpServer::governorLoop() {
  std::unique_lock<std::mutex> G(GovM);
  for (;;) {
    GovCv.wait_for(G, std::chrono::milliseconds(20), [&] { return GovStop; });
    if (GovStop)
      return;
    G.unlock();
    std::size_t Total = 0;
    {
      std::lock_guard<std::mutex> L(LanesM);
      for (const std::unique_ptr<pipeline::CompileService> &Lp : Lanes)
        if (Lp)
          Total += Lp->backend().memoryBytes();
    }
    if (Opts.Registry)
      Total += Opts.Registry->backendBytes();
    BackendBytes.store(Total, std::memory_order_relaxed);
    if (Opts.MemBudgetBytes) {
      // Hysteresis: engage above the budget, release only once shedding
      // (plus the clamp stopping growth) brought usage under 90% of it —
      // one sample hovering at the line must not flap the tiers.
      bool P = Pressure.load(std::memory_order_relaxed);
      bool NewP = P ? Total >= Opts.MemBudgetBytes - Opts.MemBudgetBytes / 10
                    : Total > Opts.MemBudgetBytes;
      if (NewP != P) {
        Pressure.store(NewP, std::memory_order_relaxed);
        std::lock_guard<std::mutex> L(LanesM);
        for (const std::unique_ptr<pipeline::CompileService> &Lp : Lanes)
          if (Lp)
            Lp->backend().setMemoryPressure(NewP);
      }
    }
    if (Opts.Registry) {
      // Registry upkeep: over budget, reap idle lanes immediately (their
      // pins are what keeps entries unevictable), then let the registry
      // evict LRU backends and manage its own pressure lever.
      bool Over = Opts.MemBudgetBytes && Total > Opts.MemBudgetBytes;
      reapIdleRegLanes(/*Force=*/Over);
      Opts.Registry->maintain();
    }
    G.lock();
  }
}

bool TcpServer::beginDrain() {
  std::lock_guard<std::mutex> SL(StopM);
  if (StopDone)
    return false;
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return false;
  // Sever only the listener: in-flight connections keep compiling and
  // delivering. Joining the accept thread hands its registration/reaping
  // duty to whoever polls drained() — after this, the connection map only
  // shrinks.
  Stopping.store(true);
  Listener.shutdownBoth();
  if (AcceptThread.joinable())
    AcceptThread.join();
  return true;
}

bool TcpServer::drained() {
  // Safe off the accept thread: beginDrain() joined it, so the polling
  // caller is the sole map mutator now. (Not safe concurrently with
  // stop(), which also joins readers — drive the drain from one thread.)
  reapFinished();
  std::lock_guard<std::mutex> L(ConnsM);
  return Conns.empty();
}

void TcpServer::stop() {
  std::lock_guard<std::mutex> SL(StopM);
  if (StopDone)
    return;
  Stopping.store(true);

  // 0. Retire the governor first so nothing re-tunes lanes mid-teardown.
  {
    std::lock_guard<std::mutex> G(GovM);
    GovStop = true;
  }
  GovCv.notify_all();
  if (GovThread.joinable())
    GovThread.join();

  // 1. No new connections: sever the listener (fails the blocked accept)
  //    and join the accept thread. After this the connection map only
  //    shrinks — registration and reaping both lived on that thread.
  //    (A prior beginDrain() already did both; these are idempotent.)
  Listener.shutdownBoth();
  if (AcceptThread.joinable())
    AcceptThread.join();

  // 2. Sever every connection. This releases every blocked thread in the
  //    backpressure chain: writers blocked in send fail out, delivery
  //    sinks blocked on full Out queues drop, the freed service queues
  //    unblock readers stuck in submit.
  std::vector<std::shared_ptr<Conn>> All;
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &KV : Conns)
      All.push_back(KV.second);
  }
  for (const std::shared_ptr<Conn> &C : All)
    markDead(*C);

  // 3. Join the readers (each joins its writer). Connections stay in the
  //    map meanwhile so in-flight deliveries keep resolving against them —
  //    the readers' drain waits depend on it.
  for (const std::shared_ptr<Conn> &C : All)
    if (C->ReaderT.joinable())
      C->ReaderT.join();
  {
    std::lock_guard<std::mutex> L(ConnsM);
    Conns.clear();
  }

  // 4. Quiesce the lanes. Everything submitted was already delivered (the
  //    reader epilogues waited on it), so this is a clean join. Every
  //    reader released its registry lane in its epilogue, so the forced
  //    reap sees only idle lanes; dropping them releases the grammar pins
  //    (the entries and their warm backends stay resident in the
  //    registry, ready for a snapshot dump).
  reapIdleRegLanes(/*Force=*/true);
  for (std::unique_ptr<pipeline::CompileService> &L : Lanes)
    if (L)
      L->shutdown();
  Listener.close();
  StopDone = true;
}
