//===- serve/Socket.cpp - Minimal POSIX TCP socket wrappers ---------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "serve/Socket.h"

#include "support/FaultInjection.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace odburg;
using namespace odburg::serve;

Socket &Socket::operator=(Socket &&RHS) noexcept {
  if (this != &RHS) {
    close();
    Fd = RHS.Fd;
    RHS.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Socket::shutdownWrite() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

static Expected<sockaddr_in> resolve(const std::string &Host,
                                     std::uint16_t Port) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  std::string H = Host.empty() || Host == "localhost" ? "127.0.0.1" : Host;
  if (inet_pton(AF_INET, H.c_str(), &Addr.sin_addr) != 1)
    return Error::make("cannot parse IPv4 address '" + Host + "'");
  return Addr;
}

Expected<Socket> Socket::listenOn(const std::string &Host, std::uint16_t Port,
                                  int Backlog) {
  Expected<sockaddr_in> Addr = resolve(Host, Port);
  if (!Addr)
    return Addr.takeError();
  Socket S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid())
    return Error::make(std::string("socket: ") + std::strerror(errno));
  int One = 1;
  ::setsockopt(S.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(S.fd(), reinterpret_cast<const sockaddr *>(&*Addr),
             sizeof(*Addr)) != 0)
    return Error::make("bind " + Host + ":" + std::to_string(Port) + ": " +
                       std::strerror(errno));
  if (::listen(S.fd(), Backlog) != 0)
    return Error::make(std::string("listen: ") + std::strerror(errno));
  return S;
}

Expected<Socket> Socket::connectTo(const std::string &Host,
                                   std::uint16_t Port) {
  Expected<sockaddr_in> Addr = resolve(Host, Port);
  if (!Addr)
    return Addr.takeError();
  Socket S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid())
    return Error::make(std::string("socket: ") + std::strerror(errno));
  int One = 1;
  ::setsockopt(S.fd(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  if (::connect(S.fd(), reinterpret_cast<const sockaddr *>(&*Addr),
                sizeof(*Addr)) != 0)
    return Error::make("connect " + Host + ":" + std::to_string(Port) + ": " +
                       std::strerror(errno));
  return S;
}

Expected<Socket> Socket::accept() const {
  if (fault::shouldFail(fault::Site::SocketAccept))
    return Error::make("accept: injected fault");
  for (;;) {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C >= 0) {
      Socket S(C);
      int One = 1;
      ::setsockopt(S.fd(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      return S;
    }
    if (errno == EINTR)
      continue;
    return Error::make(std::string("accept: ") + std::strerror(errno));
  }
}

Expected<std::uint16_t> Socket::boundPort() const {
  sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return Error::make(std::string("getsockname: ") + std::strerror(errno));
  return static_cast<std::uint16_t>(ntohs(Addr.sin_port));
}

bool Socket::writeAll(const void *Data, std::size_t Len) {
  if (fault::shouldFail(fault::Site::SocketSend))
    return false;
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as an
    // error on this connection, not a process-wide SIGPIPE.
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<std::size_t>(N);
  }
  return true;
}

long Socket::readSome(void *Buf, std::size_t Len) {
  if (fault::shouldFail(fault::Site::SocketRecv))
    return -1;
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, Len, 0);
    if (N >= 0)
      return static_cast<long>(N);
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return -2; // The SO_RCVTIMEO receive timeout elapsed.
    return -1;
  }
}

bool Socket::setRecvTimeout(unsigned Millis) {
  timeval TV;
  TV.tv_sec = Millis / 1000;
  TV.tv_usec = static_cast<suseconds_t>((Millis % 1000) * 1000);
  return ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV)) == 0;
}

SocketStreamBuf::int_type SocketStreamBuf::underflow() {
  if (gptr() < egptr())
    return traits_type::to_int_type(*gptr());
  long N = S.readSome(Buf, sizeof(Buf));
  if (N <= 0) {
    TimedOut = TimedOut || N == -2;
    Err = Err || N == -1;
    return traits_type::eof();
  }
  setg(Buf, Buf, Buf + N);
  return traits_type::to_int_type(*gptr());
}
