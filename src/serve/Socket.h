//===- serve/Socket.h - Minimal POSIX TCP socket wrappers -----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin socket layer under the network front: a move-only RAII fd
/// with the handful of operations the server and the load-generator
/// client need (listen/accept/connect, full writes without SIGPIPE,
/// thread-safe severing via shutdown(2)), plus an input std::streambuf so
/// ir::SExprFunctionStream — the wire-format reader — works over a
/// connection exactly as it does over stdin. Deliberately blocking I/O:
/// the server is thread-per-connection (see TcpServer.h), and blocking
/// reads/writes are what propagate backpressure end to end.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SERVE_SOCKET_H
#define ODBURG_SERVE_SOCKET_H

#include "support/Error.h"

#include <cstdint>
#include <streambuf>
#include <string>
#include <string_view>

namespace odburg {
namespace serve {

/// Move-only RAII TCP socket. All operations are safe on an invalid
/// socket (they fail cleanly). shutdownBoth() may be called from another
/// thread while this thread blocks in accept/read/write — that is the
/// supported way to sever a connection without racing close(2)'s fd
/// reuse.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&RHS) noexcept : Fd(RHS.Fd) { RHS.Fd = -1; }
  Socket &operator=(Socket &&RHS) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Creates a listening socket bound to \p Host (a numeric IPv4 address,
  /// or "localhost"; empty means 127.0.0.1) and \p Port (0 = ephemeral,
  /// read the outcome with boundPort()).
  static Expected<Socket> listenOn(const std::string &Host,
                                   std::uint16_t Port, int Backlog = 128);

  /// Connects to \p Host:\p Port (numeric IPv4 or "localhost").
  static Expected<Socket> connectTo(const std::string &Host,
                                    std::uint16_t Port);

  /// Accepts one connection; blocks. Fails once the listener has been
  /// severed with shutdownBoth() (the accept loop's exit path).
  Expected<Socket> accept() const;

  /// The locally bound port (after listenOn with Port 0).
  Expected<std::uint16_t> boundPort() const;

  /// Writes all of \p Data, retrying short writes; SIGPIPE-free. False on
  /// any transport error (connection reset, severed socket).
  bool writeAll(const void *Data, std::size_t Len);
  bool writeAll(std::string_view S) { return writeAll(S.data(), S.size()); }

  /// Reads up to \p Len bytes. >0: bytes read; 0: orderly EOF; -1:
  /// transport error; -2: the setRecvTimeout() bound elapsed with no
  /// data (the idle-reaper signal — the connection itself is intact).
  long readSome(void *Buf, std::size_t Len);

  /// Bounds blocking reads (readSome returns -2 once \p Millis pass
  /// without data); 0 disables the timeout.
  bool setRecvTimeout(unsigned Millis);

  /// Severs both directions without closing the fd: blocked peers (and
  /// our own blocked reader/writer threads) fail out immediately.
  void shutdownBoth();
  /// Half-close: no more writes from this side (the client's "input
  /// done" signal; the server's responses keep flowing).
  void shutdownWrite();

  void close();

private:
  int Fd = -1;
};

/// Input streambuf over a socket, making a connection a std::istream for
/// ir::SExprFunctionStream. An orderly close reads as end of input; a
/// transport error also ends the stream but is distinguishable through
/// hadError() — the server treats it as an abrupt disconnect, not a clean
/// end of the function stream.
class SocketStreamBuf : public std::streambuf {
public:
  explicit SocketStreamBuf(Socket &S) : S(S) {}

  bool hadError() const { return Err; }
  /// The stream ended because the receive timeout elapsed (idle peer),
  /// not because of EOF or a transport error.
  bool timedOut() const { return TimedOut; }

protected:
  int_type underflow() override;

private:
  Socket &S;
  char Buf[8192];
  bool Err = false;
  bool TimedOut = false;
};

} // namespace serve
} // namespace odburg

#endif // ODBURG_SERVE_SOCKET_H
