//===- serve/TcpServer.h - Socket front for the compile service -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network layer over pipeline::CompileService: a TCP server
/// multiplexing many client connections onto long-lived per-backend
/// compile services for one target — ROADMAP item 1, the "heavy traffic"
/// shape of the paper's amortization argument. One automaton (or table
/// set) per backend serves every connection, so each new client starts
/// warm.
///
/// Threading model: thread-per-connection (one reader, one writer), plus
/// one accept thread — the simplest shape that makes backpressure
/// end-to-end: a slow client's TCP window stalls its writer, the writer
/// stalls the bounded per-connection output queue, a full output queue
/// stalls that lane's ordered delivery, and the service's bounded
/// submission queue stalls the readers feeding it. Nothing is unbounded.
///
/// Wire protocol (line-oriented, the odburg-serve stdin format plus two
/// control requests):
///
///   client -> server
///     BACKEND dp|offline|ondemand|hybrid
///                                   optional handshake, before the first
///                                   function; selects this connection's
///                                   labeling backend (default ondemand)
///     STATS                         request a metrics snapshot, any time
///     <s-expr function frames>      blank-line separated, as produced by
///                                   odburg-run --dump-corpus
///     (half-close / EOF)            input done; the server finishes
///                                   delivering this connection's results,
///                                   then closes
///
///   server -> client (per-connection, compile results in submission
///   order)
///     <assembly bytes>              one block per ok function, in this
///                                   connection's submission order
///     ERROR <kind>: <message>\n     diagnostic record: parse errors
///                                   (function skipped, connection stays
///                                   alive), per-function compile
///                                   failures (in their ordered slot),
///                                   protocol misuse
///     STATS {<json>}\n              one-line metrics snapshot of this
///                                   connection's lane: submitted,
///                                   delivered, queue depth, p50/p90/p99
///                                   submit->delivery latency,
///                                   per-connection and server counters
///
/// Failure semantics: a malformed function is skipped with a diagnostic
/// record and the connection keeps serving; a frame over the byte cap
/// poisons framing and closes the connection; an abrupt client disconnect
/// cancels that connection's undelivered results (already-queued work
/// still compiles but its delivery is dropped) without disturbing other
/// connections; stop() severs every connection, drains the services, and
/// joins every thread.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SERVE_TCPSERVER_H
#define ODBURG_SERVE_TCPSERVER_H

#include "ir/SExprParser.h"
#include "pipeline/CompileService.h"
#include "serve/Socket.h"
#include "targets/Target.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace odburg {
namespace serve {

class TcpServer {
public:
  struct Options {
    /// Listen address (numeric IPv4 or "localhost").
    std::string Host = "127.0.0.1";
    /// Listen port; 0 = ephemeral (read the outcome with port()).
    std::uint16_t Port = 0;
    /// Serve the stripped fixed-cost grammar on every backend (offline
    /// always does; this levels dp/ondemand/hybrid onto it so all lanes
    /// produce byte-identical assembly).
    bool ForceFixed = false;
    /// Per-lane CompileService worker-pool size (0 = hardware).
    unsigned Workers = 0;
    /// Per-lane service submission bound (0 = service default).
    std::size_t QueueCapacity = 0;
    /// Byte cap per function frame on every connection.
    std::size_t MaxFrameBytes = ir::SExprFunctionStream::DefaultMaxFunctionBytes;
    /// Bound on rendered-but-unwritten results per connection; a full
    /// queue blocks that lane's delivery (the slow-consumer backpressure
    /// point).
    std::size_t MaxPendingWrites = 256;
    /// Lane used by connections that skip the BACKEND handshake.
    BackendKind DefaultBackend = BackendKind::OnDemand;
    /// Tunables for lazily created lane backends.
    LabelerBackend::Options BackendOpts;
  };

  /// Binds, listens, and starts accepting. \p T must outlive the server.
  static Expected<std::unique_ptr<TcpServer>> start(const targets::Target &T,
                                                    Options Opts);

  TcpServer(const TcpServer &) = delete;
  TcpServer &operator=(const TcpServer &) = delete;

  /// stop()s if still running.
  ~TcpServer();

  /// The bound listen port.
  std::uint16_t port() const { return BoundPort; }

  /// Stops accepting, severs every connection, waits for every accepted
  /// submission to finish (delivered or dropped), shuts the lane services
  /// down, and joins all threads. Idempotent; safe to call concurrently
  /// with active traffic — blocked submitters and blocked writers are
  /// released, never deadlocked.
  void stop();

  /// Lifetime count of accepted connections.
  std::uint64_t connectionsAccepted() const { return Accepted.load(); }
  /// Currently registered (not yet reaped) connections.
  unsigned connectionsActive() const;
  /// The lane service for \p K if a connection has created it (tests and
  /// metrics); null otherwise.
  const pipeline::CompileService *laneService(BackendKind K) const;

private:
  struct Conn;

  TcpServer(const targets::Target &T, Options Opts);

  void acceptLoop();
  void connReader(std::shared_ptr<Conn> C);
  void connWriter(std::shared_ptr<Conn> C);
  void dispatch(std::uint64_t Tag, const pipeline::CompileResult &R);
  Expected<pipeline::CompileService *> lane(BackendKind K);
  const Grammar &laneGrammar(BackendKind K) const;
  const DynCostTable *laneDyn(BackendKind K) const;
  std::string statsJson(BackendKind K, Conn &C);
  bool pushOut(Conn &C, std::string Bytes);
  void markDead(Conn &C);
  void reapFinished();

  const targets::Target &T;
  Options Opts;
  Socket Listener;
  std::uint16_t BoundPort = 0;
  std::thread AcceptThread;

  mutable std::mutex LanesM;
  std::array<std::unique_ptr<pipeline::CompileService>, NumBackendKinds> Lanes;

  mutable std::mutex ConnsM;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> Conns;
  std::uint64_t NextConnId = 1;

  std::atomic<std::uint64_t> Accepted{0};
  std::atomic<bool> Stopping{false};
  std::mutex StopM;
  bool StopDone = false;
};

} // namespace serve
} // namespace odburg

#endif // ODBURG_SERVE_TCPSERVER_H
