//===- serve/TcpServer.h - Socket front for the compile service -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network layer over pipeline::CompileService: a TCP server
/// multiplexing many client connections onto long-lived per-backend
/// compile services for one target — ROADMAP item 1, the "heavy traffic"
/// shape of the paper's amortization argument. One automaton (or table
/// set) per backend serves every connection, so each new client starts
/// warm.
///
/// Threading model: thread-per-connection (one reader, one writer), plus
/// one accept thread — the simplest shape that makes backpressure
/// end-to-end: a slow client's TCP window stalls its writer, the writer
/// stalls the bounded per-connection output queue, a full output queue
/// stalls that lane's ordered delivery, and the service's bounded
/// submission queue stalls the readers feeding it. Nothing is unbounded.
///
/// Wire protocol (line-oriented, the odburg-serve stdin format plus two
/// control requests):
///
///   client -> server
///     GRAMMAR <name-or-fingerprint>
///                                   optional handshake (requires a
///                                   registry, Options::Registry): bind
///                                   this connection to that grammar —
///                                   a built-in target name, a spooled
///                                   <name>.odg, or the 16-hex-digit
///                                   fingerprint of a resident version.
///                                   Must precede BACKEND and the first
///                                   function; without it the connection
///                                   serves the server's own target
///     BACKEND dp|offline|ondemand|hybrid
///                                   optional handshake, before the first
///                                   function; selects this connection's
///                                   labeling backend (default ondemand)
///     RELOAD <name>                 admin request (requires a registry):
///                                   re-resolve the grammar from its
///                                   source and hot-swap if it changed.
///                                   Answered out-of-band with
///                                   `OK RELOAD <name> epoch=N`;
///                                   connections already streaming keep
///                                   their version until they close
///     STATS                         request a metrics snapshot, any time
///     <s-expr function frames>      blank-line separated, as produced by
///                                   odburg-run --dump-corpus
///     (half-close / EOF)            input done; the server finishes
///                                   delivering this connection's results,
///                                   then closes
///
///   server -> client (per-connection, compile results in submission
///   order)
///     <assembly bytes>              one block per ok function, in this
///                                   connection's submission order
///     ERROR <kind>: <message>\n     diagnostic record: parse errors
///                                   (function skipped, connection stays
///                                   alive), per-function compile
///                                   failures (in their ordered slot),
///                                   protocol misuse
///     STATS {<json>}\n              one-line metrics snapshot of this
///                                   connection's lane: submitted,
///                                   delivered, queue depth, p50/p90/p99
///                                   submit->delivery latency,
///                                   per-connection and server counters
///
/// Failure semantics: a malformed function is skipped with a diagnostic
/// record and the connection keeps serving; a frame over the byte cap
/// poisons framing and closes the connection; an abrupt client disconnect
/// cancels that connection's undelivered results (already-queued work
/// still compiles but its delivery is dropped, counted in
/// cancelledDeliveries()) without disturbing other connections; stop()
/// severs every connection, drains the services, and joins every thread.
///
/// Overload control (all opt-in, see Options): a connection cap answered
/// at accept time with `ERROR ResourceExhausted` instead of queueing, a
/// per-lane submission high-watermark shedding functions with an
/// out-of-band `ERROR ResourceExhausted ... seq=K` record instead of
/// blocking the reader, an idle-connection reaper (`ERROR IdleTimeout`),
/// per-function compile deadlines answered in the ordered slot
/// (`ERROR DeadlineExceeded ... seq=K`), and a memory governor that holds
/// lane backends degraded while their shared state exceeds a byte budget.
/// beginDrain()/drained() implement graceful shutdown: stop accepting,
/// finish in-flight work, then stop(). Every path counts — see the
/// counter accessors and the STATS line.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_SERVE_TCPSERVER_H
#define ODBURG_SERVE_TCPSERVER_H

#include "ir/SExprParser.h"
#include "pipeline/CompileService.h"
#include "registry/GrammarRegistry.h"
#include "serve/Socket.h"
#include "targets/Target.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

namespace odburg {
namespace serve {

class TcpServer {
public:
  struct Options {
    /// Listen address (numeric IPv4 or "localhost").
    std::string Host = "127.0.0.1";
    /// Listen port; 0 = ephemeral (read the outcome with port()).
    std::uint16_t Port = 0;
    /// Serve the stripped fixed-cost grammar on every backend (offline
    /// always does; this levels dp/ondemand/hybrid onto it so all lanes
    /// produce byte-identical assembly).
    bool ForceFixed = false;
    /// Per-lane CompileService worker-pool size (0 = hardware).
    unsigned Workers = 0;
    /// Per-lane service submission bound (0 = service default).
    std::size_t QueueCapacity = 0;
    /// Byte cap per function frame on every connection.
    std::size_t MaxFrameBytes = ir::SExprFunctionStream::DefaultMaxFunctionBytes;
    /// Bound on rendered-but-unwritten results per connection; a full
    /// queue blocks that lane's delivery (the slow-consumer backpressure
    /// point).
    std::size_t MaxPendingWrites = 256;
    /// Lane used by connections that skip the BACKEND handshake.
    BackendKind DefaultBackend = BackendKind::OnDemand;
    /// Tunables for lazily created lane backends.
    LabelerBackend::Options BackendOpts;

    /// \name Overload control (0 = feature off, for every knob)
    /// @{
    /// Accept-time connection cap: a connection past the cap is answered
    /// with one `ERROR ResourceExhausted` record and closed — the accept
    /// loop never blocks on an overloaded server.
    unsigned MaxConns = 0;
    /// Per-lane undelivered-submission high-watermark: at or above it the
    /// reader sheds the function with an out-of-band
    /// `ERROR ResourceExhausted` record instead of blocking in submit.
    /// Clamped to the lane's queue capacity (see
    /// CompileService::trySubmit).
    std::size_t LaneHighWatermark = 0;
    /// Reap connections idle (no bytes from the client) past this long.
    /// The client sees an `ERROR IdleTimeout` record, then the close.
    unsigned IdleTimeoutMillis = 0;
    /// Per-function compile deadline: a submission still queued past it
    /// is answered with `ERROR DeadlineExceeded` in its ordered slot
    /// instead of being compiled (see CompileService::Options::DeadlineNs).
    std::uint64_t CompileDeadlineMs = 0;
    /// Global budget for the lanes' shared backend state (automata,
    /// tables). A governor thread samples against it and, under pressure,
    /// drives every lane's backend to shed regrowable tiers
    /// (LabelerBackend::setMemoryPressure) until usage falls back under.
    /// With a registry attached the sample includes the registry's
    /// resident backends, and the governor additionally reaps idle
    /// registry lanes and runs GrammarRegistry::maintain() each tick —
    /// the eviction path.
    std::size_t MemBudgetBytes = 0;
    /// @}

    /// Multi-tenant mode: the grammar registry behind the `GRAMMAR` and
    /// `RELOAD` requests. Non-owning; must outlive the server. Null =
    /// single-tenant (GRAMMAR/RELOAD answer a protocol error).
    registry::GrammarRegistry *Registry = nullptr;
    /// How long a registry lane (its worker pool and entry pin) survives
    /// with no connections before the governor reaps it, letting the
    /// entry become evictable. Over budget, idle lanes are reaped
    /// immediately.
    unsigned RegistryLaneIdleMillis = 500;
  };

  /// Binds, listens, and starts accepting. \p T must outlive the server.
  static Expected<std::unique_ptr<TcpServer>> start(const targets::Target &T,
                                                    Options Opts);

  TcpServer(const TcpServer &) = delete;
  TcpServer &operator=(const TcpServer &) = delete;

  /// stop()s if still running.
  ~TcpServer();

  /// The bound listen port.
  std::uint16_t port() const { return BoundPort; }

  /// Stops accepting, severs every connection, waits for every accepted
  /// submission to finish (delivered or dropped), shuts the lane services
  /// down, and joins all threads. Idempotent; safe to call concurrently
  /// with active traffic — blocked submitters and blocked writers are
  /// released, never deadlocked.
  void stop();

  /// Graceful drain, step 1: stop accepting (severs the listener, joins
  /// the accept thread) while existing connections keep compiling and
  /// delivering. Poll drained() for completion, then stop() — or stop()
  /// straight away to force-sever whatever is still in flight. Returns
  /// false if a drain (or stop) already began.
  bool beginDrain();
  /// Whether every connection present at beginDrain() has finished and
  /// been reaped. Only meaningful after beginDrain(); the caller's polling
  /// thread takes over the accept thread's reaping duty.
  bool drained();

  /// Lifetime count of accepted connections.
  std::uint64_t connectionsAccepted() const { return Accepted.load(); }
  /// Currently registered (not yet reaped) connections.
  unsigned connectionsActive() const;
  /// The lane service for \p K if a connection has created it (tests and
  /// metrics); null otherwise.
  const pipeline::CompileService *laneService(BackendKind K) const;
  /// Live registry lanes — (grammar version, backend kind) services
  /// created by GRAMMAR connections and not yet reaped (tests/metrics).
  std::size_t registryLanes() const;

  /// \name Overload/robustness counters (lifetime totals)
  /// @{
  /// Connections refused at accept time by Options::MaxConns.
  std::uint64_t shedConnections() const { return ShedConns.load(); }
  /// Function frames shed at the lane high-watermark.
  std::uint64_t shedSubmits() const { return ShedSubmits.load(); }
  /// Connections reaped by the idle timeout.
  std::uint64_t idleReaped() const { return IdleReapedCount.load(); }
  /// Responses dropped against dead connections — results whose client
  /// vanished before delivery (plus any queued records the death voided).
  std::uint64_t cancelledDeliveries() const { return CancelledCount.load(); }
  /// The memory governor currently holds the lanes in degraded mode.
  bool degraded() const { return Pressure.load(); }
  /// Last backend-bytes sample the governor took (0 until its first tick).
  std::size_t backendBytesSampled() const { return BackendBytes.load(); }
  /// @}

private:
  struct Conn;

  /// One registry lane: the shared compile service for a (grammar
  /// version, backend kind) pair, plus its own pin on the entry — the
  /// service borrows the entry's backend, so the pin must outlive the
  /// service (member order below guarantees destruction order).
  struct RegLane {
    registry::Lease Pin;
    std::unique_ptr<pipeline::CompileService> Svc;
    /// Connections currently bound to this lane; guarded by LanesM. The
    /// governor only reaps lanes at zero.
    unsigned Active = 0;
    /// When Active last hit zero; guarded by LanesM.
    std::chrono::steady_clock::time_point IdleSince;
  };

  TcpServer(const targets::Target &T, Options Opts);

  void acceptLoop();
  void governorLoop();
  void connReader(std::shared_ptr<Conn> C);
  void connWriter(std::shared_ptr<Conn> C);
  void dispatch(std::uint64_t Tag, const pipeline::CompileResult &R);
  Expected<pipeline::CompileService *> lane(BackendKind K);
  Expected<RegLane *> regLane(const registry::Lease &L, BackendKind K);
  void releaseRegLane(RegLane *L);
  void reapIdleRegLanes(bool Force);
  pipeline::CompileService::Options laneServiceOpts(BackendKind K);
  const Grammar &laneGrammar(BackendKind K) const;
  const DynCostTable *laneDyn(BackendKind K) const;
  std::string statsJson(BackendKind K, Conn &C, pipeline::CompileService *Svc,
                        const std::string &GrammarName);
  bool pushOut(Conn &C, std::string Bytes);
  void markDead(Conn &C);
  void reapFinished();

  const targets::Target &T;
  Options Opts;
  Socket Listener;
  std::uint16_t BoundPort = 0;
  std::thread AcceptThread;

  mutable std::mutex LanesM;
  std::array<std::unique_ptr<pipeline::CompileService>, NumBackendKinds> Lanes;
  /// Registry lanes, keyed by (entry identity, kind) — a hot swap makes a
  /// new entry, hence a new lane, while old-epoch lanes drain out.
  /// Guarded by LanesM.
  std::map<std::pair<const registry::GrammarEntry *, unsigned>,
           std::unique_ptr<RegLane>>
      RegLanes;

  mutable std::mutex ConnsM;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> Conns;
  std::uint64_t NextConnId = 1;

  std::atomic<std::uint64_t> Accepted{0};
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Draining{false};
  std::mutex StopM;
  bool StopDone = false;

  std::atomic<std::uint64_t> ShedConns{0};
  std::atomic<std::uint64_t> ShedSubmits{0};
  std::atomic<std::uint64_t> IdleReapedCount{0};
  std::atomic<std::uint64_t> CancelledCount{0};

  /// The memory governor (runs only with Options::MemBudgetBytes set):
  /// samples lane backend bytes every ~20ms and flips the lanes'
  /// setMemoryPressure lever with hysteresis (on above the budget, off
  /// below 90% of it).
  std::thread GovThread;
  std::mutex GovM;
  std::condition_variable GovCv;
  bool GovStop = false; ///< Under GovM.
  std::atomic<bool> Pressure{false};
  std::atomic<std::size_t> BackendBytes{0};
};

} // namespace serve
} // namespace odburg

#endif // ODBURG_SERVE_TCPSERVER_H
