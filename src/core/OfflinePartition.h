//===- core/OfflinePartition.h - Offline tables seen from core ------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid backend's bridge between the two automata of the paper:
/// a non-owning, flattened view of an offline table set (generated over
/// the grammar's static-cost operator partition, see offline/ and
/// select/Partition.h) that the on-demand automaton can dispatch through
/// without depending on the offline layer.
///
/// The bridge rests on one invariant the hybrid backend establishes
/// before any labeling: the on-demand StateTable is *seeded* with the
/// partition's K offline states, in offline id order, so offline state
/// id i and on-demand state id i denote bit-identical states. Hash
/// consing then keeps the identification stable forever — any state the
/// on-demand slow path computes that equals an offline state dedups to
/// its id < K. A node whose operator is in the partition and whose child
/// labels are all < K can therefore be resolved by pure offline table
/// indexing (RepMaps are indexed by offline state id == on-demand state
/// id, and the resulting table entry is already a valid on-demand id),
/// skipping key construction and every warm-path tier. Anything else —
/// dyn-cost operators, children labeled by dyn-cost subtrees — falls
/// through to the normal on-demand probe, and the two resolutions agree
/// exactly (delta normalization makes offline states bit-equal to
/// on-demand states; tests/offline/OfflineTest proves it).
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_OFFLINEPARTITION_H
#define ODBURG_CORE_OFFLINEPARTITION_H

#include "core/State.h"
#include "grammar/Ids.h"

#include <cstdint>
#include <vector>

namespace odburg {

/// Flattened per-operator offline-table pointers, built by
/// CompiledTables::makePartitionView(). Non-owning: the CompiledTables it
/// was built from must outlive every automaton the view is attached to
/// (the hybrid backend owns both, tables first).
struct OfflinePartitionView {
  /// Offline table rows for one operator. Fixed-width arrays because the
  /// partition policy admits only arity <= 4 (the offline generator's
  /// bound); unused slots are null/zero.
  struct OpEntry {
    /// Per position: offline StateId -> representer index, size NumStates.
    const std::uint32_t *RepMaps[4] = {nullptr, nullptr, nullptr, nullptr};
    /// Per position: representer count (the table stride).
    std::uint32_t Dims[4] = {0, 0, 0, 0};
    /// Dense row-major transition table over representer indices.
    const StateId *Table = nullptr;
    /// Leaf state; InvalidState for interior operators.
    StateId Leaf = InvalidState;
    /// True when the operator is in the static partition (its transitions
    /// are fully covered by the tables above).
    bool InPartition = false;
  };

  /// Indexed by OperatorId; size is the grammar's operator count.
  std::vector<OpEntry> Ops;

  /// K: the partition's offline state count. The hybrid automaton's
  /// seeded state ids 0..K-1 are exactly these states; a child label
  /// < K is an offline state and indexes the RepMaps directly.
  StateId NumStates = 0;
};

} // namespace odburg

#endif // ODBURG_CORE_OFFLINEPARTITION_H
