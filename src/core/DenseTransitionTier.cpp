//===- core/DenseTransitionTier.cpp - Hot-row dense transition tier -------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "core/DenseTransitionTier.h"

#include <algorithm>

using namespace odburg;

DenseTransitionTier::DenseTransitionTier(const Grammar &G, Options Opts)
    : G(G), Opts(Opts), PromoteThreshold(Opts.PromoteThreshold < 1
                                             ? 1
                                             : Opts.PromoteThreshold),
      MaxBytesLive(Opts.MaxBytes), Eligible(G.numOperators(), 0),
      UnaryRows(new std::atomic<const Row *>[G.numOperators()]()),
      BinaryDirs(new std::atomic<const RowDir *>[G.numOperators()]()),
      HotCounters(new std::atomic<std::uint32_t>[NumHotCounters]()) {
  for (OperatorId Op = 0; Op < G.numOperators(); ++Op) {
    unsigned Arity = G.operatorArity(Op);
    if ((Arity == 1 || Arity == 2) && G.dynRulesFor(Op).empty())
      Eligible[Op] = 1;
  }
}

std::size_t DenseTransitionTier::rowSizeFor(unsigned StateCountHint,
                                            std::uint32_t Child) {
  // Cover every live state plus the triggering child, with 25% headroom
  // rounded to a power of two so warm-up stragglers land inside the row.
  std::size_t Need = std::max<std::size_t>(
      {std::size_t(StateCountHint) + StateCountHint / 4,
       std::size_t(Child) + 1, 64});
  std::size_t Size = 64;
  while (Size < Need)
    Size *= 2;
  return Size;
}

const DenseTransitionTier::Row *
DenseTransitionTier::buildRow(const Row *Old, std::uint32_t Child,
                              unsigned StateCountHint) {
  std::size_t Size = rowSizeFor(StateCountHint, Child);
  if (Old && Size <= Old->Size)
    Size = Old->Size * 2; // Regrow requests always at least double.
  // Budget check before the allocation touches memory; on exhaustion,
  // latch so the warm path stops paying the mutex for doomed retries.
  std::size_t NeedBytes = sizeof(Row) + Size * sizeof(std::atomic<StateId>);
  if (LiveBytes + RetiredBytesCount + NeedBytes >
      MaxBytesLive.load(std::memory_order_relaxed)) {
    Exhausted.store(true, std::memory_order_relaxed);
    return nullptr; // Keep serving what exists.
  }
  auto Fresh = std::make_unique<Row>(Size);
  if (Old) {
    for (std::size_t I = 0; I < Old->Size; ++I)
      Fresh->Entries[I].store(Old->Entries[I].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    RetiredBytesCount += Old->bytes();
    LiveBytes -= Old->bytes();
  } else {
    ++NumLiveRows;
  }
  LiveBytes += Fresh->bytes();
  const Row *Raw = Fresh.get();
  AllRows.push_back(std::move(Fresh));
  return Raw;
}

void DenseTransitionTier::promoteOrBackfillUnary(OperatorId Op,
                                                 std::uint32_t Child,
                                                 StateId Result,
                                                 unsigned StateCountHint) {
  std::lock_guard<std::mutex> Lock(M);
  const Row *R = UnaryRows[Op].load(std::memory_order_relaxed);
  if (R && Child < R->Size) {
    // A racing promoter already built coverage; just backfill.
    R->Entries[Child].store(Result, std::memory_order_release);
    return;
  }
  const Row *Fresh = buildRow(R, Child, StateCountHint);
  if (!Fresh)
    return;
  Fresh->Entries[Child].store(Result, std::memory_order_relaxed);
  ++Promotions;
  // Release-publish: entry stores above happen-before any reader that
  // acquires the row pointer.
  UnaryRows[Op].store(Fresh, std::memory_order_release);
}

void DenseTransitionTier::promoteOrBackfillBinary(OperatorId Op,
                                                  std::uint32_t Left,
                                                  std::uint32_t Right,
                                                  StateId Result,
                                                  unsigned StateCountHint) {
  std::lock_guard<std::mutex> Lock(M);
  const RowDir *D = BinaryDirs[Op].load(std::memory_order_relaxed);
  if (!D || Left >= D->Size) {
    // Build (or grow) the directory of left-state rows for this operator.
    std::size_t Size = rowSizeFor(StateCountHint, Left);
    if (D && Size <= D->Size)
      Size = D->Size * 2;
    std::size_t NeedBytes =
        sizeof(RowDir) + Size * sizeof(std::atomic<const Row *>);
    if (LiveBytes + RetiredBytesCount + NeedBytes >
      MaxBytesLive.load(std::memory_order_relaxed)) {
      Exhausted.store(true, std::memory_order_relaxed);
      return;
    }
    auto Fresh = std::make_unique<RowDir>(Size);
    if (D) {
      for (std::size_t I = 0; I < D->Size; ++I)
        Fresh->Rows[I].store(D->Rows[I].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
      RetiredBytesCount += D->bytes();
      LiveBytes -= D->bytes();
    }
    LiveBytes += Fresh->bytes();
    const RowDir *Raw = Fresh.get();
    AllDirs.push_back(std::move(Fresh));
    BinaryDirs[Op].store(Raw, std::memory_order_release);
    D = Raw;
  }
  const Row *R = D->Rows[Left].load(std::memory_order_relaxed);
  if (R && Right < R->Size) {
    // A racing promoter already built coverage; just backfill.
    R->Entries[Right].store(Result, std::memory_order_release);
    return;
  }
  const Row *Fresh = buildRow(R, Right, StateCountHint);
  if (!Fresh)
    return;
  Fresh->Entries[Right].store(Result, std::memory_order_relaxed);
  ++Promotions;
  D->Rows[Left].store(Fresh, std::memory_order_release);
}

void DenseTransitionTier::noteResolved(OperatorId Op, unsigned NumChildren,
                                       const std::uint32_t *ChildIds,
                                       StateId Result,
                                       unsigned StateCountHint) {
  // Fast backfill: the row already exists and covers the child — publish
  // the entry lock-free. Entries only ever move InvalidState -> canonical
  // id, so racing writers write the same value.
  if (NumChildren == 1) {
    if (const Row *R = UnaryRows[Op].load(std::memory_order_acquire)) {
      if (ChildIds[0] < R->Size) {
        R->Entries[ChildIds[0]].store(Result, std::memory_order_release);
        return;
      }
      if (!Exhausted.load(std::memory_order_relaxed))
        promoteOrBackfillUnary(Op, ChildIds[0], Result, StateCountHint);
      return;
    }
  } else {
    const RowDir *D = BinaryDirs[Op].load(std::memory_order_acquire);
    if (D && ChildIds[0] < D->Size) {
      if (const Row *R = D->Rows[ChildIds[0]].load(std::memory_order_acquire)) {
        if (ChildIds[1] < R->Size) {
          R->Entries[ChildIds[1]].store(Result, std::memory_order_release);
          return;
        }
        if (!Exhausted.load(std::memory_order_relaxed))
          promoteOrBackfillBinary(Op, ChildIds[0], ChildIds[1], Result,
                                  StateCountHint);
        return;
      }
    }
  }
  if (Exhausted.load(std::memory_order_relaxed))
    return;

  // No row yet: bump the (approximate) hot counter; promote on crossing.
  std::uint32_t Left = NumChildren == 2 ? ChildIds[0] : 0;
  std::atomic<std::uint32_t> &C = HotCounters[counterIndex(Op, Left)];
  if (C.fetch_add(1, std::memory_order_relaxed) + 1 <
      PromoteThreshold.load(std::memory_order_relaxed))
    return;
  C.store(0, std::memory_order_relaxed);
  if (NumChildren == 1)
    promoteOrBackfillUnary(Op, ChildIds[0], Result, StateCountHint);
  else
    promoteOrBackfillBinary(Op, ChildIds[0], ChildIds[1], Result,
                            StateCountHint);
}

std::size_t DenseTransitionTier::numRows() const {
  std::lock_guard<std::mutex> Lock(M);
  return NumLiveRows;
}

std::size_t DenseTransitionTier::memoryBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return LiveBytes + RetiredBytesCount +
         2 * G.numOperators() * sizeof(std::atomic<const Row *>) +
         NumHotCounters * sizeof(std::atomic<std::uint32_t>);
}

std::size_t DenseTransitionTier::retiredBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return RetiredBytesCount;
}
