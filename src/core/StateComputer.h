//===- core/StateComputer.h - DP over states (slow path) ------------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes automaton states: the iburg dynamic-programming step lifted
/// from concrete nodes to state cost vectors, followed by chain-rule
/// closure and delta normalization. Shared by the on-demand automaton
/// (cache-miss slow path) and the offline table generator.
///
/// Soundness of normalization: every base rule reads exactly one
/// nonterminal of each child position, so replacing a child's absolute
/// costs by delta-normalized ones shifts all candidate sums at this node by
/// the same constant; relative comparisons — and therefore rule choices —
/// are unchanged, and the node's own normalization removes the shift.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_STATECOMPUTER_H
#define ODBURG_CORE_STATECOMPUTER_H

#include "core/State.h"
#include "grammar/Grammar.h"
#include "support/SmallVector.h"
#include "support/Statistic.h"

namespace odburg {

/// Stateless (apart from precomputed indices) state computation.
class StateComputer {
public:
  explicit StateComputer(const Grammar &G);

  /// Computes the normalized cost/rule vectors for a node with operator
  /// \p Op whose child costs are supplied by \p ChildCost(Position, Nt).
  /// \p DynOutcome(J) is the evaluated outcome of the J-th dynamic rule of
  /// \p Op (order of Grammar::dynRulesFor); it is never called for
  /// operators without dynamic rules. Output vectors are sized to the
  /// nonterminal count.
  template <typename ChildCostFn, typename DynOutcomeFn>
  void compute(OperatorId Op, ChildCostFn ChildCost, DynOutcomeFn DynOutcome,
               SmallVectorImpl<Cost> &CostsOut, SmallVectorImpl<RuleId> &RulesOut,
               SelectionStats *Stats = nullptr) const {
    unsigned N = G.numNonterminals();
    CostsOut.assign(N, Cost::infinity());
    RulesOut.assign(N, InvalidRule);

    for (RuleId RId : G.baseRulesFor(Op)) {
      const NormRule &R = G.normRule(RId);
      if (Stats)
        ++Stats->RuleChecks;
      Cost C = R.FixedCost;
      if (R.DynHook != InvalidDynCost)
        C += DynOutcome(DynIndexOfRule[RId]);
      for (unsigned I = 0; I < R.Operands.size() && C.isFinite(); ++I)
        C += ChildCost(I, R.Operands[I]);
      if (C < CostsOut[R.Lhs]) {
        CostsOut[R.Lhs] = C;
        RulesOut[R.Lhs] = RId;
      }
    }

    closeChainsAndNormalize(CostsOut, RulesOut, Stats);
  }

  /// The position of a dynamic rule within its operator's dynamic-rule
  /// list (Grammar::dynRulesFor order); only valid for rules with hooks.
  unsigned dynIndexOf(RuleId R) const { return DynIndexOfRule[R]; }

private:
  void closeChainsAndNormalize(SmallVectorImpl<Cost> &Costs,
                               SmallVectorImpl<RuleId> &Rules,
                               SelectionStats *Stats) const;

  const Grammar &G;
  std::vector<unsigned> DynIndexOfRule;
};

} // namespace odburg

#endif // ODBURG_CORE_STATECOMPUTER_H
