//===- core/L1Cache.h - Per-worker transition micro-cache -----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-local, set-associative (direct-mapped or 2-way) L1 front for
/// the shared TransitionCache.
/// The shared cache's warm path is already lock-free (one seqlock probe),
/// but it is still a shared-memory access: the sequence counter and slot
/// loads bounce cache lines between cores when many workers label against
/// one automaton. Each worker therefore keeps a small private cache of the
/// transitions it has recently resolved; an L1 hit touches only worker-
/// local memory and no atomics at all.
///
/// Design constraints, in order:
///  - *Bounded*: a fixed power-of-two entry count, fixed-width inline keys
///    (keys longer than MaxKeyWords bypass the L1 entirely). No growth, no
///    heap traffic after construction.
///  - *Correct under reuse*: entries are epoch-tagged. Rebinding the cache
///    to a different automaton (a worker scratch outliving a session, or a
///    session swapping backends) bumps the epoch, which invalidates every
///    entry in O(1) without touching the array.
///  - *Monotone consistency*: the shared cache is insert-only and a
///    transition's value never changes, so an L1 entry can never go stale
///    while its owner lives — eviction is purely a capacity decision
///    (set overwrite), never a correctness one.
///
/// The cache is intentionally not thread-safe: exactly one worker owns it.
/// Hit/miss counts are accounted in the caller's SelectionStats (L1Probes,
/// L1Hits) so they aggregate through the existing batch plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_L1CACHE_H
#define ODBURG_CORE_L1CACHE_H

#include "core/State.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace odburg {

/// Set-associative (direct-mapped by default, optionally 2-way),
/// epoch-invalidated micro-cache of transition-key -> StateId mappings,
/// private to one labeling worker.
class L1TransitionCache {
public:
  /// Longest key cached inline: header + up to 4 children + 3 dynamic
  /// outcomes. Longer keys (rare, deep dynamic-rule operators) skip the L1
  /// and go straight to the shared cache.
  static constexpr unsigned MaxKeyWords = 8;

  /// \p Log2Entries is clamped to [1, 20]; the default (1024 entries)
  /// keeps the whole cache around 48 KB — resident in a core's private L2
  /// alongside the worker's other hot state. Tests use tiny caches to
  /// force collisions.
  ///
  /// \p Ways selects the associativity (1 = direct-mapped, 2 = 2-way with
  /// round-robin eviction; other values are clamped). The entry count
  /// stays 2^Log2Entries either way — 2-way halves the set count, trading
  /// one extra compare per probe for resilience against two hot keys that
  /// alias the same set (the collision pattern of dynamic-cost grammars,
  /// whose outcome words pad keys into fewer distinct index bits).
  explicit L1TransitionCache(unsigned Log2Entries = 10, unsigned Ways = 1)
      : NumWays(Ways < 2 ? 1 : 2),
        SetMask(((std::size_t(1) << clampLog2(Log2Entries)) / NumWays) - 1),
        Entries(std::size_t(1) << clampLog2(Log2Entries)),
        NextVictim(NumWays == 2 ? SetMask + 1 : 0, 0) {}

  L1TransitionCache(const L1TransitionCache &) = delete;
  L1TransitionCache &operator=(const L1TransitionCache &) = delete;

  /// True if a key of \p Words words fits an inline entry.
  static bool cacheable(unsigned Words) { return Words <= MaxKeyWords; }

  /// Rebinds the cache to owner token \p NewOwner (a process-unique id of
  /// the automaton generation — see OnDemandAutomaton::generation(); 0
  /// means unbound). A change of owner invalidates all entries; rebinding
  /// to the current owner is free. Tokens, not pointers: a destroyed
  /// automaton's address can be recycled by the next allocation, which
  /// would let stale state ids survive a pointer-identity check.
  void bindTo(std::uint64_t NewOwner) {
    if (Owner != NewOwner) {
      Owner = NewOwner;
      invalidateAll();
    }
  }

  std::uint64_t owner() const { return Owner; }

  /// Drops every entry in O(1) by bumping the epoch; entries whose tag no
  /// longer matches are dead. On (32-bit) epoch wrap the array is cleared
  /// for real so stale tags cannot alias.
  void invalidateAll() {
    if (++Epoch == 0) {
      for (Entry &E : Entries)
        E.EpochTag = 0;
      Epoch = 1;
    }
  }

  /// Looks up the key under \p Hash (the TransitionCache::hashKey hash, so
  /// one hash serves both levels). Returns InvalidState on miss. The
  /// caller must have checked cacheable(Words).
  StateId lookup(const std::uint32_t *Key, unsigned Words,
                 std::uint64_t Hash) const {
    const Entry *Set = &Entries[(Hash & SetMask) * NumWays];
    for (unsigned W = 0; W < NumWays; ++W) {
      const Entry &E = Set[W];
      if (E.EpochTag == Epoch && E.Words == Words &&
          std::memcmp(E.Key, Key, Words * sizeof(std::uint32_t)) == 0)
        return E.Value;
    }
    return InvalidState;
  }

  /// Installs the entry for the key, overwriting an existing mapping of
  /// the same key, filling an invalid way, or evicting the set's
  /// round-robin victim. The caller must have checked cacheable(Words).
  void insert(const std::uint32_t *Key, unsigned Words, std::uint64_t Hash,
              StateId Value) {
    std::size_t SetIdx = Hash & SetMask;
    Entry *Set = &Entries[SetIdx * NumWays];
    unsigned Way = 0;
    if (NumWays == 2) {
      auto Matches = [&](const Entry &E) {
        return E.EpochTag == Epoch && E.Words == Words &&
               std::memcmp(E.Key, Key, Words * sizeof(std::uint32_t)) == 0;
      };
      if (Matches(Set[0]))
        Way = 0;
      else if (Matches(Set[1]))
        Way = 1;
      else if (Set[0].EpochTag != Epoch)
        Way = 0;
      else if (Set[1].EpochTag != Epoch)
        Way = 1;
      else {
        Way = NextVictim[SetIdx];
        NextVictim[SetIdx] ^= 1;
      }
    }
    Entry &E = Set[Way];
    E.EpochTag = Epoch;
    E.Words = Words;
    std::memcpy(E.Key, Key, Words * sizeof(std::uint32_t));
    E.Value = Value;
  }

  /// Entry count (capacity, not occupancy).
  std::size_t size() const { return Entries.size(); }

  /// Associativity (1 = direct-mapped, 2 = 2-way).
  unsigned ways() const { return NumWays; }

  /// Heap footprint in bytes.
  std::size_t memoryBytes() const {
    return Entries.size() * sizeof(Entry) + NextVictim.size();
  }

private:
  struct Entry {
    std::uint32_t EpochTag = 0; ///< Valid iff == the cache's Epoch.
    std::uint32_t Words = 0;
    std::uint32_t Key[MaxKeyWords] = {};
    StateId Value = InvalidState;
  };

  static unsigned clampLog2(unsigned Log2Entries) {
    return Log2Entries < 1 ? 1 : (Log2Entries > 20 ? 20 : Log2Entries);
  }

  std::uint64_t Owner = 0;
  std::uint32_t Epoch = 1;
  unsigned NumWays;
  std::size_t SetMask;
  std::vector<Entry> Entries;
  /// 2-way only: the way each set evicts next (round-robin).
  std::vector<std::uint8_t> NextVictim;
};

} // namespace odburg

#endif // ODBURG_CORE_L1CACHE_H
