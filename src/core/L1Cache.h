//===- core/L1Cache.h - Per-worker transition micro-cache -----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-local, direct-mapped L1 front for the shared TransitionCache.
/// The shared cache's warm path is already lock-free (one seqlock probe),
/// but it is still a shared-memory access: the sequence counter and slot
/// loads bounce cache lines between cores when many workers label against
/// one automaton. Each worker therefore keeps a small private cache of the
/// transitions it has recently resolved; an L1 hit touches only worker-
/// local memory and no atomics at all.
///
/// Design constraints, in order:
///  - *Bounded*: a fixed power-of-two entry count, fixed-width inline keys
///    (keys longer than MaxKeyWords bypass the L1 entirely). No growth, no
///    heap traffic after construction.
///  - *Correct under reuse*: entries are epoch-tagged. Rebinding the cache
///    to a different automaton (a worker scratch outliving a session, or a
///    session swapping backends) bumps the epoch, which invalidates every
///    entry in O(1) without touching the array.
///  - *Monotone consistency*: the shared cache is insert-only and a
///    transition's value never changes, so an L1 entry can never go stale
///    while its owner lives — eviction is purely a capacity decision
///    (direct-mapped overwrite), never a correctness one.
///
/// The cache is intentionally not thread-safe: exactly one worker owns it.
/// Hit/miss counts are accounted in the caller's SelectionStats (L1Probes,
/// L1Hits) so they aggregate through the existing batch plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_L1CACHE_H
#define ODBURG_CORE_L1CACHE_H

#include "core/State.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace odburg {

/// Direct-mapped, epoch-invalidated micro-cache of transition-key ->
/// StateId mappings, private to one labeling worker.
class L1TransitionCache {
public:
  /// Longest key cached inline: header + up to 4 children + 3 dynamic
  /// outcomes. Longer keys (rare, deep dynamic-rule operators) skip the L1
  /// and go straight to the shared cache.
  static constexpr unsigned MaxKeyWords = 8;

  /// \p Log2Entries is clamped to [1, 20]; the default (1024 entries)
  /// keeps the whole cache around 48 KB — resident in a core's private L2
  /// alongside the worker's other hot state. Tests use tiny caches to
  /// force collisions.
  explicit L1TransitionCache(unsigned Log2Entries = 10)
      : Mask((std::size_t(1) << clampLog2(Log2Entries)) - 1),
        Entries(std::size_t(1) << clampLog2(Log2Entries)) {}

  L1TransitionCache(const L1TransitionCache &) = delete;
  L1TransitionCache &operator=(const L1TransitionCache &) = delete;

  /// True if a key of \p Words words fits an inline entry.
  static bool cacheable(unsigned Words) { return Words <= MaxKeyWords; }

  /// Rebinds the cache to owner token \p NewOwner (a process-unique id of
  /// the automaton generation — see OnDemandAutomaton::generation(); 0
  /// means unbound). A change of owner invalidates all entries; rebinding
  /// to the current owner is free. Tokens, not pointers: a destroyed
  /// automaton's address can be recycled by the next allocation, which
  /// would let stale state ids survive a pointer-identity check.
  void bindTo(std::uint64_t NewOwner) {
    if (Owner != NewOwner) {
      Owner = NewOwner;
      invalidateAll();
    }
  }

  std::uint64_t owner() const { return Owner; }

  /// Drops every entry in O(1) by bumping the epoch; entries whose tag no
  /// longer matches are dead. On (32-bit) epoch wrap the array is cleared
  /// for real so stale tags cannot alias.
  void invalidateAll() {
    if (++Epoch == 0) {
      for (Entry &E : Entries)
        E.EpochTag = 0;
      Epoch = 1;
    }
  }

  /// Looks up the key under \p Hash (the TransitionCache::hashKey hash, so
  /// one hash serves both levels). Returns InvalidState on miss. The
  /// caller must have checked cacheable(Words).
  StateId lookup(const std::uint32_t *Key, unsigned Words,
                 std::uint64_t Hash) const {
    const Entry &E = Entries[Hash & Mask];
    if (E.EpochTag != Epoch || E.Words != Words)
      return InvalidState;
    if (std::memcmp(E.Key, Key, Words * sizeof(std::uint32_t)) != 0)
      return InvalidState;
    return E.Value;
  }

  /// Installs (or direct-mapped-overwrites) the entry for the key. The
  /// caller must have checked cacheable(Words).
  void insert(const std::uint32_t *Key, unsigned Words, std::uint64_t Hash,
              StateId Value) {
    Entry &E = Entries[Hash & Mask];
    E.EpochTag = Epoch;
    E.Words = Words;
    std::memcpy(E.Key, Key, Words * sizeof(std::uint32_t));
    E.Value = Value;
  }

  /// Entry count (capacity, not occupancy).
  std::size_t size() const { return Entries.size(); }

  /// Heap footprint in bytes.
  std::size_t memoryBytes() const { return Entries.size() * sizeof(Entry); }

private:
  struct Entry {
    std::uint32_t EpochTag = 0; ///< Valid iff == the cache's Epoch.
    std::uint32_t Words = 0;
    std::uint32_t Key[MaxKeyWords] = {};
    StateId Value = InvalidState;
  };

  static unsigned clampLog2(unsigned Log2Entries) {
    return Log2Entries < 1 ? 1 : (Log2Entries > 20 ? 20 : Log2Entries);
  }

  std::uint64_t Owner = 0;
  std::uint32_t Epoch = 1;
  std::size_t Mask;
  std::vector<Entry> Entries;
};

} // namespace odburg

#endif // ODBURG_CORE_L1CACHE_H
