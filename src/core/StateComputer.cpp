//===- core/StateComputer.cpp - DP over states (slow path) ----------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//

#include "core/StateComputer.h"

#include "support/FaultInjection.h"

using namespace odburg;

StateComputer::StateComputer(const Grammar &G) : G(G) {
  DynIndexOfRule.assign(G.numNormRules(), ~0u);
  for (OperatorId Op = 0; Op < G.numOperators(); ++Op) {
    const auto &DynRules = G.dynRulesFor(Op);
    for (unsigned J = 0; J < DynRules.size(); ++J)
      DynIndexOfRule[DynRules[J]] = J;
  }
}

void StateComputer::closeChainsAndNormalize(SmallVectorImpl<Cost> &Costs,
                                            SmallVectorImpl<RuleId> &Rules,
                                            SelectionStats *Stats) const {
  // Every state computation funnels through here, making it the chaos
  // hook for "the slow path got slow": the armed trigger turns a
  // microsecond computation into a few hundred — enough to pile up a
  // service queue and trip compile deadlines in tests and chaos runs.
  if (fault::shouldFail(fault::Site::StateCompute))
    fault::injectLatency();
  // Chain closure, identical relaxation discipline to the DP labeler so
  // that tie-breaking (and hence chosen rules) match exactly.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (RuleId RId : G.chainRules()) {
      const NormRule &R = G.normRule(RId);
      if (Stats)
        ++Stats->ChainRelaxations;
      Cost C = Costs[R.ChainRhs] + R.FixedCost;
      if (C < Costs[R.Lhs]) {
        Costs[R.Lhs] = C;
        Rules[R.Lhs] = RId;
        Changed = true;
      }
    }
  }

  // Delta normalization: subtract the minimum finite cost.
  Cost Min = Cost::infinity();
  for (const Cost &C : Costs)
    Min = std::min(Min, C);
  if (Min.isInfinite() || Min == Cost::zero())
    return;
  for (Cost &C : Costs)
    C = C - Min;
}
