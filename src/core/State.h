//===- core/State.h - Hash-consed tree-parsing automaton states -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automaton states. A state summarizes everything labeling needs to know
/// about the class of subtrees it represents: for each nonterminal, the
/// delta-normalized minimal derivation cost and the rule beginning that
/// derivation. Two subtrees with the same state behave identically in any
/// context, which is what makes transition caching sound.
///
/// States are hash-consed in a StateTable so that equality is pointer/id
/// equality and the automaton stays small.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_STATE_H
#define ODBURG_CORE_STATE_H

#include "grammar/Ids.h"
#include "support/Arena.h"
#include "support/Cost.h"
#include "support/SmallVector.h"

#include <cstdint>
#include <vector>

namespace odburg {

/// Dense automaton state id.
using StateId = std::uint32_t;
inline constexpr StateId InvalidState = 0xFFFFFFFFu;

/// One automaton state. Immutable; owned by a StateTable.
struct State {
  StateId Id = InvalidState;
  /// The operator of the nodes this state labels.
  OperatorId Op = InvalidOperator;
  /// Delta-normalized cost per nonterminal (the minimum finite entry is 0).
  /// Array of the grammar's nonterminal count, arena-owned.
  const Cost *Costs = nullptr;
  /// Optimal first rule per nonterminal (InvalidRule = not derivable).
  const RuleId *Rules = nullptr;
  /// Content hash over (Op, Costs, Rules).
  std::uint64_t Hash = 0;

  Cost costOf(NonterminalId Nt) const { return Costs[Nt]; }
  RuleId ruleOf(NonterminalId Nt) const { return Rules[Nt]; }
};

/// Hash-consing container of states.
class StateTable {
public:
  explicit StateTable(unsigned NumNonterminals);

  /// Interns the state described by (\p Op, \p Costs, \p Rules); returns
  /// the canonical State (existing if an identical one was seen before).
  /// The arrays must have exactly the nonterminal count the table was
  /// created with.
  const State *intern(OperatorId Op, const Cost *Costs, const RuleId *Rules);

  const State *byId(StateId Id) const { return States[Id]; }

  unsigned size() const { return static_cast<unsigned>(States.size()); }

  /// Approximate heap+arena footprint in bytes.
  std::size_t memoryBytes() const;

  /// All states, in creation order.
  const std::vector<const State *> &states() const { return States; }

private:
  void rehash();

  unsigned NumNts;
  Arena StateArena;
  std::vector<const State *> States;
  std::vector<StateId> Buckets; // Open addressing; InvalidState = empty.
};

} // namespace odburg

#endif // ODBURG_CORE_STATE_H
