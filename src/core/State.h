//===- core/State.h - Hash-consed tree-parsing automaton states -----------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automaton states. A state summarizes everything labeling needs to know
/// about the class of subtrees it represents: for each nonterminal, the
/// delta-normalized minimal derivation cost and the rule beginning that
/// derivation. Two subtrees with the same state behave identically in any
/// context, which is what makes transition caching sound.
///
/// States are hash-consed in a StateTable so that equality is pointer/id
/// equality and the automaton stays small. The table is safe for concurrent
/// interning: it is striped into shards keyed by content hash (each shard a
/// mutex, an open-addressed bucket array and an arena), while id lookup is
/// lock-free through a two-level block index so the labeling fast path
/// never takes a lock here. Ids are allocated from one atomic counter, so
/// they stay dense across shards and byId() stays an array index.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_STATE_H
#define ODBURG_CORE_STATE_H

#include "grammar/Ids.h"
#include "support/Arena.h"
#include "support/Cost.h"
#include "support/SmallVector.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

namespace odburg {

/// Dense automaton state id.
using StateId = std::uint32_t;
inline constexpr StateId InvalidState = 0xFFFFFFFFu;

/// One automaton state. Immutable; owned by a StateTable.
struct State {
  StateId Id = InvalidState;
  /// The operator of the nodes this state labels.
  OperatorId Op = InvalidOperator;
  /// Delta-normalized cost per nonterminal (the minimum finite entry is 0).
  /// Array of the grammar's nonterminal count, arena-owned.
  const Cost *Costs = nullptr;
  /// Optimal first rule per nonterminal (InvalidRule = not derivable).
  const RuleId *Rules = nullptr;
  /// Content hash over (Op, Costs, Rules).
  std::uint64_t Hash = 0;

  Cost costOf(NonterminalId Nt) const { return Costs[Nt]; }
  RuleId ruleOf(NonterminalId Nt) const { return Rules[Nt]; }
};

/// Hash-consing container of states; safe for concurrent intern()/byId().
class StateTable {
public:
  /// Interning stripes. Content hashes pick the stripe, so identical
  /// contents always meet in the same shard and stay canonical.
  static constexpr unsigned NumShards = 16;

  explicit StateTable(unsigned NumNonterminals);
  ~StateTable();

  StateTable(const StateTable &) = delete;
  StateTable &operator=(const StateTable &) = delete;

  /// Interns the state described by (\p Op, \p Costs, \p Rules); returns
  /// the canonical State (existing if an identical one was seen before).
  /// The arrays must have exactly the nonterminal count the table was
  /// created with. Thread-safe; two threads interning the same content
  /// serialize on the content's shard and get the same canonical state.
  const State *intern(OperatorId Op, const Cost *Costs, const RuleId *Rules);

  /// Lock-free id lookup. \p Id must have been obtained from a completed
  /// intern() (directly, via the transition cache, or via a node label);
  /// racing an in-flight intern of a fresh id returns nullptr (the block
  /// or slot may not be published yet), it never faults.
  const State *byId(StateId Id) const {
    const std::atomic<const State *> *Block =
        Blocks[Id >> BlockBits].load(std::memory_order_acquire);
    if (!Block)
      return nullptr;
    return Block[Id & (BlockSize - 1)].load(std::memory_order_acquire);
  }

  /// Hard capacity of the id index; intern() aborts beyond this.
  static constexpr unsigned maxCapacity() { return NumBlocks * BlockSize; }

  /// Number of states interned so far. Under concurrent interning this is
  /// an instantaneous snapshot (ids below it may still be publishing).
  unsigned size() const { return NextId.load(std::memory_order_acquire); }

  /// Width of every state's cost/rule vectors (the grammar's nonterminal
  /// count the table was created with).
  unsigned numNonterminals() const { return NumNts; }

  /// Approximate heap+arena footprint in bytes.
  std::size_t memoryBytes() const;

  /// Snapshot of all states in creation (id) order. Intended for quiescent
  /// introspection; states mid-publication in other threads are skipped.
  std::vector<const State *> states() const;

private:
  /// Two-level id index: 1024 blocks of 4096 slots bounds the table at
  /// 4M states — far above OnDemandAutomaton's MaxStates safety default.
  static constexpr unsigned BlockBits = 12;
  static constexpr unsigned BlockSize = 1u << BlockBits;
  static constexpr unsigned NumBlocks = 1u << 10;

  struct alignas(64) Shard {
    mutable std::mutex M;
    Arena StateArena;
    /// Open addressing; nullptr = empty.
    std::vector<const State *> Buckets;
    unsigned Count = 0;
  };

  /// The id-index slot for \p Id, allocating its block if needed.
  std::atomic<const State *> &slotFor(StateId Id);

  static void growShard(Shard &Sh);

  unsigned NumNts;
  std::array<Shard, NumShards> Shards;
  std::array<std::atomic<std::atomic<const State *> *>, NumBlocks> Blocks{};
  std::atomic<StateId> NextId{0};
  std::mutex BlockAllocMutex;
};

} // namespace odburg

#endif // ODBURG_CORE_STATE_H
