//===- core/TransitionCache.h - Memoized labeling transitions -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transition cache is the fast path of the on-demand automaton: a
/// hash map from (operator, child state ids, dynamic-cost outcomes) to the
/// resulting state. Keys are variable-length little arrays of 32-bit words
/// packed as [header | children… | outcomes…]; they are interned in an
/// arena so a slot is just {key pointer, state}.
///
/// The map is striped into shards keyed by the transition hash; each shard
/// is an open-addressed table behind its own mutex. A labeling thread
/// therefore contends only with threads probing the same stripe, which for
/// well-mixed hashes means almost never. Within a shard, linear probing
/// keeps the hit path to one hash, one probe and one short word-compare.
///
/// Insert is insert-if-absent: when two threads race on the same miss they
/// compute the same canonical state (the state table dedups contents), and
/// the second insert finds the key already present and drops out.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_TRANSITIONCACHE_H
#define ODBURG_CORE_TRANSITIONCACHE_H

#include "core/State.h"
#include "support/Arena.h"
#include "support/Hashing.h"

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

namespace odburg {

/// Hash map (op, child states, dyn outcomes) -> StateId; thread-safe via
/// striped shards.
class TransitionCache {
public:
  static constexpr unsigned NumShards = 64;

  TransitionCache();

  TransitionCache(const TransitionCache &) = delete;
  TransitionCache &operator=(const TransitionCache &) = delete;

  /// Packs a key header: operator and the two length fields.
  static std::uint32_t packHeader(OperatorId Op, unsigned NumChildren,
                                  unsigned NumDyn) {
    return static_cast<std::uint32_t>(Op) | (NumChildren << 16) |
           (NumDyn << 24);
  }

  /// Looks up \p Key (\p Words 32-bit words, first is the header).
  /// Returns InvalidState on miss.
  StateId lookup(const std::uint32_t *Key, unsigned Words) const {
    std::uint64_t H = hashRange(Key, Key + Words);
    const Shard &Sh = Shards[H & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(Sh.M);
    std::size_t Mask = Sh.Slots.size() - 1;
    std::size_t Idx = (H >> 8) & Mask;
    while (Sh.Slots[Idx].Key) {
      if (Sh.Slots[Idx].Hash == H && keyEquals(Sh.Slots[Idx].Key, Key, Words))
        return Sh.Slots[Idx].Value;
      Idx = (Idx + 1) & Mask;
    }
    return InvalidState;
  }

  /// Inserts \p Key if absent. A concurrent insert of the same key wins
  /// harmlessly: both map to the same canonical state.
  void insert(const std::uint32_t *Key, unsigned Words, StateId Value);

  /// Number of memoized transitions (sums the shards).
  std::size_t size() const;

  /// Approximate heap+arena footprint in bytes.
  std::size_t memoryBytes() const;

private:
  struct Slot {
    const std::uint32_t *Key = nullptr; // First word encodes the length.
    std::uint64_t Hash = 0;
    StateId Value = InvalidState;
  };

  struct alignas(64) Shard {
    mutable std::mutex M;
    std::vector<Slot> Slots;
    std::size_t Count = 0;
    Arena KeyArena;
  };

  static bool keyEquals(const std::uint32_t *A, const std::uint32_t *B,
                        unsigned Words) {
    for (unsigned I = 0; I < Words; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }

  static void growShard(Shard &Sh);

  std::array<Shard, NumShards> Shards;
};

} // namespace odburg

#endif // ODBURG_CORE_TRANSITIONCACHE_H
