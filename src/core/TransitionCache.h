//===- core/TransitionCache.h - Memoized labeling transitions -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transition cache is the fast path of the on-demand automaton: a
/// hash map from (operator, child state ids, dynamic-cost outcomes) to the
/// resulting state. Keys are variable-length little arrays of 32-bit words
/// packed as [header | children… | outcomes…]; they are interned in an
/// arena so a slot is just {key pointer, state}.
///
/// Open addressing with linear probing keeps the hit path to one hash, one
/// probe and one short word-compare in the common case.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_TRANSITIONCACHE_H
#define ODBURG_CORE_TRANSITIONCACHE_H

#include "core/State.h"
#include "support/Arena.h"
#include "support/Hashing.h"

#include <cstdint>
#include <vector>

namespace odburg {

/// Hash map (op, child states, dyn outcomes) -> StateId.
class TransitionCache {
public:
  TransitionCache();

  /// Packs a key header: operator and the two length fields.
  static std::uint32_t packHeader(OperatorId Op, unsigned NumChildren,
                                  unsigned NumDyn) {
    return static_cast<std::uint32_t>(Op) | (NumChildren << 16) |
           (NumDyn << 24);
  }

  /// Looks up \p Key (\p Words 32-bit words, first is the header).
  /// Returns InvalidState on miss.
  StateId lookup(const std::uint32_t *Key, unsigned Words) const {
    std::uint64_t H = hashRange(Key, Key + Words);
    std::size_t Mask = Slots.size() - 1;
    std::size_t Idx = H & Mask;
    while (Slots[Idx].Key) {
      if (Slots[Idx].Hash == H && keyEquals(Slots[Idx].Key, Key, Words))
        return Slots[Idx].Value;
      Idx = (Idx + 1) & Mask;
    }
    return InvalidState;
  }

  /// Inserts a key that lookup() just missed.
  void insert(const std::uint32_t *Key, unsigned Words, StateId Value);

  std::size_t size() const { return Count; }

  /// Approximate heap+arena footprint in bytes.
  std::size_t memoryBytes() const;

private:
  struct Slot {
    const std::uint32_t *Key = nullptr; // First word encodes the length.
    std::uint64_t Hash = 0;
    StateId Value = InvalidState;
  };

  static unsigned keyWords(const std::uint32_t *Key) {
    std::uint32_t Header = Key[0];
    return 1 + ((Header >> 16) & 0xFF) + (Header >> 24);
  }

  static bool keyEquals(const std::uint32_t *A, const std::uint32_t *B,
                        unsigned Words) {
    for (unsigned I = 0; I < Words; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }

  void rehash();

  std::vector<Slot> Slots;
  std::size_t Count = 0;
  Arena KeyArena;
};

} // namespace odburg

#endif // ODBURG_CORE_TRANSITIONCACHE_H
