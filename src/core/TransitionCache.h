//===- core/TransitionCache.h - Memoized labeling transitions -------------===//
//
// Part of the odburg project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transition cache is the fast path of the on-demand automaton: a
/// hash map from (operator, child state ids, dynamic-cost outcomes) to the
/// resulting state. Keys are variable-length little arrays of 32-bit words
/// packed as [header | children… | outcomes…]; they are interned in an
/// arena so a slot is just {key pointer, state}.
///
/// The map is striped into shards keyed by the transition hash. Writers
/// (insert, grow) serialize on a per-shard mutex; readers are lock-free.
/// Each shard is a seqlock: writers bump an atomic sequence counter to odd
/// before mutating and back to even after, and a reader that observes a
/// sequence change across its probe retries, so it never trusts a torn
/// view. Slot fields are relaxed atomics with a release-published key
/// pointer, which makes the racing accesses well-defined (and TSan-clean)
/// and guarantees a reader that sees a key also sees its hash, value and
/// interned words. Grown slot arrays are retired, not freed, so a reader
/// still probing a superseded array only ever reads valid (slightly stale)
/// memory; the geometric growth bounds retired memory by the live array.
///
/// The warm labeling path therefore touches no mutex at all: one hash, one
/// acquire load of the sequence counter, a short probe, and one validating
/// load. Writers are rare after warm-up, so retries are, too.
///
/// Insert is insert-if-absent: when two threads race on the same miss they
/// compute the same canonical state (the state table dedups contents), and
/// the second insert finds the key already present and drops out. A
/// lock-free lookup may spuriously miss a key that a racing writer is just
/// publishing; the caller then recomputes the same canonical state and the
/// insert dedups, so misses are a throughput detail, never an error.
///
//===----------------------------------------------------------------------===//

#ifndef ODBURG_CORE_TRANSITIONCACHE_H
#define ODBURG_CORE_TRANSITIONCACHE_H

#include "core/State.h"
#include "support/Arena.h"
#include "support/Hashing.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace odburg {

/// Hash map (op, child states, dyn outcomes) -> StateId; sharded, with
/// mutex-serialized writers and lock-free seqlock readers.
class TransitionCache {
public:
  static constexpr unsigned NumShards = 64;

  TransitionCache();

  TransitionCache(const TransitionCache &) = delete;
  TransitionCache &operator=(const TransitionCache &) = delete;

  /// Packs a key header: operator and the two length fields.
  static std::uint32_t packHeader(OperatorId Op, unsigned NumChildren,
                                  unsigned NumDyn) {
    return static_cast<std::uint32_t>(Op) | (NumChildren << 16) |
           (NumDyn << 24);
  }

  /// Hash of a packed key; exposed so tests can steer keys onto one shard
  /// (shard index is hash & (NumShards - 1)).
  static std::uint64_t hashKey(const std::uint32_t *Key, unsigned Words) {
    return hashRange(Key, Key + Words);
  }

  /// Looks up \p Key (\p Words 32-bit words, first is the header).
  /// Returns InvalidState on miss. Lock-free: retries the probe when a
  /// writer's sequence bump indicates a possibly torn read.
  StateId lookup(const std::uint32_t *Key, unsigned Words) const {
    return lookupHashed(Key, Words, hashKey(Key, Words));
  }

  /// As lookup(), with the key's hashKey() value precomputed — callers
  /// that front this cache with an L1TransitionCache hash once and probe
  /// both levels with it.
  StateId lookupHashed(const std::uint32_t *Key, unsigned Words,
                       std::uint64_t H) const {
    const Shard &Sh = Shards[H & (NumShards - 1)];
    for (unsigned Spins = 0;; ++Spins) {
      std::uint32_t Seq = Sh.Seq.load(std::memory_order_acquire);
      if (Seq & 1) {
        // A writer is mid-mutation; wait it out.
        if (Spins > 64)
          std::this_thread::yield();
        continue;
      }
      const SlotArray *T = Sh.Current.load(std::memory_order_acquire);
      std::size_t Mask = T->Mask;
      std::size_t Idx = (H >> 8) & Mask;
      StateId Result = InvalidState;
      for (;;) {
        const Slot &S = T->Slots[Idx];
        const std::uint32_t *K = S.Key.load(std::memory_order_acquire);
        if (!K)
          break;
        if (S.Hash.load(std::memory_order_relaxed) == H &&
            keyEquals(K, Key, Words)) {
          Result = S.Value.load(std::memory_order_relaxed);
          break;
        }
        Idx = (Idx + 1) & Mask;
      }
      if (Sh.Seq.load(std::memory_order_acquire) == Seq)
        return Result;
      // Torn read: a writer published during the probe; retry.
    }
  }

  /// Inserts \p Key if absent. A concurrent insert of the same key wins
  /// harmlessly: both map to the same canonical state.
  void insert(const std::uint32_t *Key, unsigned Words, StateId Value) {
    insertHashed(Key, Words, hashKey(Key, Words), Value);
  }

  /// As insert(), with the key's hashKey() value precomputed.
  void insertHashed(const std::uint32_t *Key, unsigned Words, std::uint64_t H,
                    StateId Value);

  /// Enumerates every memoized transition as (key words, word count,
  /// value), shard by shard under the shard's writer mutex — lock-free
  /// readers are unaffected, concurrent writers briefly serialize. The
  /// word count is recovered from the packed header (1 + children + dyn
  /// outcomes). Intended for quiescent snapshotting (the warm-snapshot
  /// dump in registry/WarmSnapshot.h); entries inserted concurrently with
  /// the walk may or may not be seen.
  template <typename Fn> void forEach(Fn &&Visit) const {
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.M);
      const SlotArray *T = Sh.Current.load(std::memory_order_relaxed);
      for (std::size_t I = 0; I <= T->Mask; ++I) {
        const std::uint32_t *K = T->Slots[I].Key.load(std::memory_order_relaxed);
        if (!K)
          continue;
        Visit(K, keyWords(K[0]),
              T->Slots[I].Value.load(std::memory_order_relaxed));
      }
    }
  }

  /// Word count of a key whose header word is \p Header.
  static unsigned keyWords(std::uint32_t Header) {
    return 1 + ((Header >> 16) & 0xFF) + (Header >> 24);
  }

  /// Number of memoized transitions (sums the shards).
  std::size_t size() const;

  /// Approximate heap+arena footprint in bytes, including retired slot
  /// arrays kept alive for lock-free readers.
  std::size_t memoryBytes() const;

private:
  /// One table entry. Hash and Value are stored before Key is
  /// release-published, so a reader that acquires a non-null Key sees the
  /// complete slot (and the interned key words behind it).
  struct Slot {
    std::atomic<const std::uint32_t *> Key{nullptr};
    std::atomic<std::uint64_t> Hash{0};
    std::atomic<StateId> Value{InvalidState};
  };

  /// One open-addressed probe array. Arrays are only ever superseded,
  /// never mutated after retirement.
  struct SlotArray {
    explicit SlotArray(std::size_t N) : Slots(new Slot[N]), Mask(N - 1) {}
    std::unique_ptr<Slot[]> Slots;
    std::size_t Mask;
  };

  struct alignas(64) Shard {
    mutable std::mutex M; // Serializes writers only.
    std::atomic<std::uint32_t> Seq{0};
    std::atomic<const SlotArray *> Current{nullptr};
    /// Owns every array ever published (including Current); superseded
    /// arrays stay alive so in-flight lock-free readers never touch freed
    /// memory.
    std::vector<std::unique_ptr<SlotArray>> Arrays;
    std::size_t Count = 0;
    Arena KeyArena;
  };

  static bool keyEquals(const std::uint32_t *A, const std::uint32_t *B,
                        unsigned Words) {
    for (unsigned I = 0; I < Words; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }

  static const SlotArray *growShard(Shard &Sh);

  std::array<Shard, NumShards> Shards;
};

} // namespace odburg

#endif // ODBURG_CORE_TRANSITIONCACHE_H
